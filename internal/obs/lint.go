package obs

import (
	"fmt"
	"sort"
	"strings"
)

// CheckMetrics lints a Prometheus text exposition against the fleet's
// naming contract: every family must be
//
//   - a counter, named *_total,
//   - a histogram, emitting the complete _bucket/_sum/_count triple, or
//   - an explicitly allowlisted gauge.
//
// It returns one human-readable violation per offending family (empty
// means clean). Both daemons' metric tests and the cluster smoke's
// observability phase run every /metrics page through this, so a counter
// that loses its _total suffix — or a histogram missing a member of its
// triple — fails CI instead of silently confusing dashboards.
func CheckMetrics(text string, gauges map[string]bool) []string {
	families := make(map[string]bool)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if name != "" {
			families[name] = true
		}
	}

	var violations []string
	histBases := make(map[string]bool)
	for name := range families {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				histBases[strings.TrimSuffix(name, suffix)] = true
			}
		}
	}
	for base := range histBases {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if !families[base+suffix] {
				violations = append(violations,
					fmt.Sprintf("histogram %s is missing its %s%s series", base, base, suffix))
			}
		}
	}
	for name := range families {
		switch {
		case strings.HasSuffix(name, "_total"):
		case strings.HasSuffix(name, "_bucket"), strings.HasSuffix(name, "_sum"), strings.HasSuffix(name, "_count"):
			// Judged per-base above.
		case gauges[name]:
		default:
			violations = append(violations,
				fmt.Sprintf("metric %s is neither a *_total counter, a histogram series, nor an allowlisted gauge", name))
		}
	}
	sort.Strings(violations)
	return violations
}
