package obs

import (
	"sort"
	"sync"
)

// TopK is a space-saving heavy-hitter counter: it tracks at most k keys and,
// when a new key arrives with the table full, evicts the current minimum and
// credits the newcomer with min+1 (the classic Metwally et al. scheme). Counts
// are therefore overestimates bounded by the evicted minimum — exactly the
// right trade for labeling a Prometheus counter by "which keys spill most"
// without unbounded label cardinality: the hot keys' counts are accurate, the
// cold ones never become series at all.
type TopK struct {
	mu     sync.Mutex
	k      int
	counts map[string]int64
}

// TopKEntry is one tracked key and its (over)count.
type TopKEntry struct {
	Key   string
	Count int64
}

// NewTopK returns a counter tracking at most k keys (minimum 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, counts: make(map[string]int64, k)}
}

// Add credits one occurrence of key, evicting the current minimum if key is
// untracked and the table is full.
func (t *TopK) Add(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.counts[key]; ok {
		t.counts[key]++
		return
	}
	if len(t.counts) < t.k {
		t.counts[key] = 1
		return
	}
	minKey, minN := "", int64(-1)
	for k2, n := range t.counts {
		if minN < 0 || n < minN || (n == minN && k2 < minKey) {
			minKey, minN = k2, n
		}
	}
	delete(t.counts, minKey)
	t.counts[key] = minN + 1
}

// Snapshot returns the tracked keys ordered by descending count (ties by
// ascending key, so renderings are deterministic).
func (t *TopK) Snapshot() []TopKEntry {
	t.mu.Lock()
	out := make([]TopKEntry, 0, len(t.counts))
	for k, n := range t.counts {
		out = append(out, TopKEntry{Key: k, Count: n})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}
