package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds a daemon's structured logger writing to w: format "json"
// emits one JSON object per line (machine-shippable), "text" the slog text
// handler (human-first). Any other format is an error, so a typoed flag
// fails startup instead of silently logging in the wrong shape.
func NewLogger(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	case "text", "":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}

// NopLogger returns a logger that drops everything. The daemons' libraries
// take a *slog.Logger and fall back to this when none is configured, so
// call sites never nil-check.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
