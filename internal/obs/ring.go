package obs

import (
	"sync"
	"time"
)

// durSince is the trace's total wall time at publish.
func durSince(t *Trace) time.Duration { return time.Since(t.Start) }

// Ring is a bounded buffer of the most recent published traces, indexed by
// request ID for GET /v1/debug/traces/{id}. Publishing copies the trace
// into a preallocated slot and recycles the *Trace, so a serving daemon's
// steady-state trace cost is bounded: no growth, no retained pointers into
// request-scoped state.
type Ring struct {
	mu   sync.Mutex
	buf  []Trace
	n    int // slots filled (≤ len(buf))
	pos  int // next slot to overwrite
	byID map[string]int
}

// NewRing returns a ring retaining the last capacity traces (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Trace, capacity), byID: make(map[string]int, capacity)}
}

// Publish finalizes t (total duration from its start), copies it into the
// ring — evicting the oldest trace — and recycles t. The caller must not
// touch t afterwards. A nil t is a no-op.
func (r *Ring) Publish(t *Trace) {
	if t == nil {
		return
	}
	t.DurUS = durSince(t).Microseconds()
	r.mu.Lock()
	if old := &r.buf[r.pos]; old.ID != "" {
		// The evicted slot's ID leaves the index unless a newer trace
		// reused it (same-ID republish, e.g. retries of one request).
		if i, ok := r.byID[old.ID]; ok && i == r.pos {
			delete(r.byID, old.ID)
		}
	}
	r.buf[r.pos] = *t
	r.byID[t.ID] = r.pos
	r.pos = (r.pos + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
	tracePool.Put(t)
}

// Get returns a copy of the trace published under id, if it is still in
// the ring.
func (r *Ring) Get(id string) (Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.byID[id]
	if !ok {
		return Trace{}, false
	}
	return r.buf[i], true
}

// Recent returns up to max traces, newest first.
func (r *Ring) Recent(max int) []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if max > 0 && max < n {
		n = max
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.pos - 1 - i + len(r.buf)*2) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// Len returns the number of retained traces.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
