// Package obs is the fleet's observability toolkit: a zero-alloc-on-hot-path
// per-request span recorder with a bounded ring of recent traces, fixed-bucket
// Prometheus histograms with a shared layout, request-ID minting and
// propagation helpers, and a metric-name lint shared by both daemons' tests.
//
// Everything here is strictly out-of-band: traces travel in headers
// (X-Request-Id, X-Phase-Timing) and debug endpoints, histograms in /metrics
// — never inside a response body. The byte-determinism invariants the
// schedulers are gated on (golden CSVs, cache replay, shadow byte-compare)
// are therefore untouched by instrumentation.
package obs

import (
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"time"
)

// MaxPhases is the fixed phase capacity of one Trace. Recording past it
// drops the extra phases (counted in Dropped) instead of growing: the hot
// path must never allocate for instrumentation.
const MaxPhases = 16

// Phase is one recorded span of a request: a name, its offset from the
// trace start and its duration (both microseconds), and an optional
// free-form note ("node=w1 rank=1 spilled=true").
type Phase struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Note    string `json:"note,omitempty"`
}

// Trace is one request's span record: fixed-capacity phase slots plus
// identity and outcome metadata. Acquire one from the pool with
// AcquireTrace, record phases while serving, and hand it to a Ring with
// Publish (which recycles it). All methods are nil-receiver-safe so
// call sites that trace optionally need no branches.
type Trace struct {
	ID      string    `json:"id"`
	Op      string    `json:"op"`
	Node    string    `json:"node,omitempty"`
	Start   time.Time `json:"start"`
	Outcome string    `json:"outcome,omitempty"`
	DurUS   int64     `json:"dur_us"`
	Dropped int       `json:"dropped_phases,omitempty"`

	n      int
	phases [MaxPhases]Phase
}

var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// AcquireTrace returns a pooled, reset Trace stamped with the request
// identity and the current time. Steady-state it allocates nothing.
func AcquireTrace(id, op string) *Trace {
	t := tracePool.Get().(*Trace)
	*t = Trace{ID: id, Op: op, Start: time.Now()}
	return t
}

// ReleaseTrace recycles a trace that will not be published (error paths
// that bail before the ring). Publish releases on its own.
func ReleaseTrace(t *Trace) {
	if t != nil {
		tracePool.Put(t)
	}
}

// Phase records one completed span of duration d ending now.
func (t *Trace) Phase(name string, d time.Duration) { t.PhaseNote(name, "", d) }

// PhaseNote is Phase with a free-form annotation attached.
func (t *Trace) PhaseNote(name, note string, d time.Duration) {
	if t == nil {
		return
	}
	if t.n >= MaxPhases {
		t.Dropped++
		return
	}
	off := time.Since(t.Start) - d
	if off < 0 {
		off = 0
	}
	t.phases[t.n] = Phase{Name: name, StartUS: off.Microseconds(), DurUS: d.Microseconds(), Note: note}
	t.n++
}

// SetNode stamps the serving node's identity on the trace.
func (t *Trace) SetNode(node string) {
	if t != nil {
		t.Node = node
	}
}

// SetOutcome records how the request ended ("hit", "miss", "failover",
// "error", ...).
func (t *Trace) SetOutcome(outcome string) {
	if t != nil {
		t.Outcome = outcome
	}
}

// Phases returns the recorded spans (a view into the trace's own storage;
// valid until the trace is released).
func (t *Trace) Phases() []Phase {
	if t == nil {
		return nil
	}
	return t.phases[:t.n]
}

// ServerTiming renders the phases as a Server-Timing-style header value:
//
//	queue;dur=0.31, partition;dur=2.70, schedule;dur=1.05
//
// Durations are milliseconds, matching the Server-Timing convention. The
// value goes in the X-Phase-Timing response header — out-of-band by
// construction, so cached bodies stay byte-identical.
func (t *Trace) ServerTiming() string {
	if t == nil || t.n == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < t.n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.phases[i].Name)
		b.WriteString(";dur=")
		b.WriteString(strconv.FormatFloat(float64(t.phases[i].DurUS)/1000, 'f', 2, 64))
	}
	return b.String()
}

// traceJSON is the wire shape of a Trace: the fixed phase array rendered as
// only its populated slots.
type traceJSON struct {
	ID      string    `json:"id"`
	Op      string    `json:"op"`
	Node    string    `json:"node,omitempty"`
	Start   time.Time `json:"start"`
	Outcome string    `json:"outcome,omitempty"`
	DurUS   int64     `json:"dur_us"`
	Dropped int       `json:"dropped_phases,omitempty"`
	Phases  []Phase   `json:"phases"`
}

// MarshalJSON renders the trace with only its populated phase slots.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(traceJSON{t.ID, t.Op, t.Node, t.Start, t.Outcome, t.DurUS, t.Dropped, t.phases[:t.n]})
}

// UnmarshalJSON is MarshalJSON's inverse, so debug-endpoint clients (and
// the tests driving them) can decode a published trace back into a Trace.
// Phases beyond MaxPhases are dropped and counted, like recording.
func (t *Trace) UnmarshalJSON(b []byte) error {
	var w traceJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*t = Trace{ID: w.ID, Op: w.Op, Node: w.Node, Start: w.Start, Outcome: w.Outcome, DurUS: w.DurUS, Dropped: w.Dropped}
	for _, p := range w.Phases {
		if t.n >= MaxPhases {
			t.Dropped++
			continue
		}
		t.phases[t.n] = p
		t.n++
	}
	return nil
}
