package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the one fixed bucket layout every latency histogram in
// the fleet shares (upper bounds, seconds). A shared layout means
// histograms from different daemons, endpoints and label sets aggregate
// exactly — summing bucket counts across series is lossless — which is what
// lets p50/p99 gauges be derived from any union of series. The range spans
// a body-hash cache hit (~100µs) to a full sweep cell (minutes).
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket latency histogram over LatencyBuckets with
// atomic counters: observation is lock-free and allocation-free, fit for
// the schedule hot path. It renders in the Prometheus text exposition as
// the _bucket/_sum/_count triple.
type Histogram struct {
	counts []atomic.Int64 // len(LatencyBuckets)+1; last is +Inf
	count  atomic.Int64
	sumNS  atomic.Int64
}

// NewHistogram returns an empty histogram over the shared bucket layout.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, len(LatencyBuckets)+1)}
}

// Observe records one duration. le bounds are inclusive, matching
// Prometheus semantics: a value exactly on a bound lands in that bucket.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	// First bucket whose upper bound is ≥ s; past the last finite bound
	// this is the +Inf bucket.
	i := sort.SearchFloat64s(LatencyBuckets, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// snapshotInto accumulates this histogram's per-bucket counts into cum
// (same length as counts). Used for both rendering and quantiles, and for
// aggregating a Vec's cells (exact, thanks to the shared layout).
func (h *Histogram) snapshotInto(cum []int64) {
	for i := range h.counts {
		cum[i] += h.counts[i].Load()
	}
}

// Quantile estimates the q-quantile (0 < q < 1) from the buckets the way
// Prometheus' histogram_quantile does: find the bucket the target rank
// falls in and interpolate linearly inside it. Observations beyond the
// last finite bound report that bound. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	cum := make([]int64, len(h.counts))
	h.snapshotInto(cum)
	return quantileFromBuckets(cum, q)
}

func quantileFromBuckets(perBucket []int64, q float64) time.Duration {
	var total int64
	for _, n := range perBucket {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range perBucket {
		cum += n
		if float64(cum) < target {
			continue
		}
		if i >= len(LatencyBuckets) {
			// +Inf bucket: the last finite bound is the best estimate.
			return secondsToDuration(LatencyBuckets[len(LatencyBuckets)-1])
		}
		lo := 0.0
		if i > 0 {
			lo = LatencyBuckets[i-1]
		}
		hi := LatencyBuckets[i]
		if n == 0 {
			return secondsToDuration(hi)
		}
		frac := (target - float64(cum-n)) / float64(n)
		return secondsToDuration(lo + (hi-lo)*frac)
	}
	return secondsToDuration(LatencyBuckets[len(LatencyBuckets)-1])
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Write renders the histogram as name_bucket/name_sum/name_count. labels
// is a pre-rendered label body (`endpoint="schedule",cache="hit"`) or "".
func (h *Histogram) Write(w io.Writer, name, labels string) {
	cum := make([]int64, len(h.counts))
	h.snapshotInto(cum)
	writeBuckets(w, name, labels, cum, float64(h.sumNS.Load())/1e9)
}

func writeBuckets(w io.Writer, name, labels string, perBucket []int64, sumSeconds float64) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, bound := range LatencyBuckets {
		cum += perBucket[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(bound), cum)
	}
	cum += perBucket[len(LatencyBuckets)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, sumSeconds)
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, sumSeconds)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, cum)
	}
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

// Vec is a family of Histograms keyed by a pre-rendered label body. Hot
// paths resolve their cell once (With at setup time) and observe lock-free
// afterwards; Write and Quantile walk the cells under the lock.
type Vec struct {
	mu    sync.Mutex
	cells map[string]*Histogram
}

// NewVec returns an empty histogram family.
func NewVec() *Vec { return &Vec{cells: make(map[string]*Histogram)} }

// With returns (creating if needed) the cell for a pre-rendered label body
// like `endpoint="schedule",cache="hit"`. Callers on hot paths should call
// this once at setup and keep the *Histogram.
func (v *Vec) With(labels string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.cells[labels]
	if !ok {
		h = NewHistogram()
		v.cells[labels] = h
	}
	return h
}

// Write renders every cell of the family under name, label bodies in
// sorted order so the exposition is deterministic.
func (v *Vec) Write(w io.Writer, name string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.cells))
	for k := range v.cells {
		keys = append(keys, k)
	}
	cells := make([]*Histogram, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		cells = append(cells, v.cells[k])
	}
	v.mu.Unlock()
	for i, k := range keys {
		cells[i].Write(w, name, k)
	}
}

// Quantile estimates the q-quantile across the union of every cell's
// observations — exact aggregation, since all cells share one bucket
// layout. This is how the legacy p50/p99 gauges are derived from buckets.
func (v *Vec) Quantile(q float64) time.Duration {
	cum := make([]int64, len(LatencyBuckets)+1)
	v.mu.Lock()
	for _, h := range v.cells {
		h.snapshotInto(cum)
	}
	v.mu.Unlock()
	return quantileFromBuckets(cum, q)
}
