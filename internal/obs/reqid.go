package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
)

// RequestIDHeader carries one request's identity end to end: minted at the
// edge (coordinator, or a directly-hit worker), propagated on every
// coordinator→worker forward — including failover retries, batch fan-out
// loops and sweep cells — and echoed on every response, so one ID stitches
// the coordinator's placement trace to the worker's phase trace.
const RequestIDHeader = "X-Request-Id"

var reqSeq atomic.Uint64

// NewRequestID mints a 16-hex-char request ID. Random, not sequential: IDs
// must not collide across coordinator restarts or between independent
// edges. Falls back to a process-local counter if the entropy source
// fails.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("seq-%016x", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// RequestID resolves a request's ID: the propagated header when present,
// a freshly minted one otherwise (this daemon is the edge). The resolved
// ID is written back onto r's headers so later reads agree, and minted
// reports which case happened.
func RequestID(r *http.Request) (id string, minted bool) {
	if id = r.Header.Get(RequestIDHeader); id != "" {
		return id, false
	}
	id = NewRequestID()
	r.Header.Set(RequestIDHeader, id)
	return id, true
}

// SuffixID derives the deterministic per-loop request ID of a batch
// fan-out: loop i of request id traces as "id#i" on the worker it lands
// on, while the envelope keeps id. Deterministic so a retried envelope
// produces identical loop IDs.
func SuffixID(id string, i int) string { return fmt.Sprintf("%s#%d", id, i) }
