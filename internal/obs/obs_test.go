package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestHistogramBucketBoundariesInclusive(t *testing.T) {
	h := NewHistogram()
	// A value exactly on a bound must land in that bound's bucket
	// (Prometheus le semantics), and a value just above must not.
	h.Observe(time.Millisecond)        // == 0.001 bound
	h.Observe(1100 * time.Microsecond) // just above 0.001
	h.Observe(90 * time.Microsecond)   // below first bound
	h.Observe(2 * time.Minute)         // beyond last finite bound → +Inf

	var sb strings.Builder
	h.Write(&sb, "x_seconds", "")
	text := sb.String()

	mustContain := []string{
		`x_seconds_bucket{le="0.0001"} 1`,
		`x_seconds_bucket{le="0.001"} 2`,
		`x_seconds_bucket{le="0.0025"} 3`,
		`x_seconds_bucket{le="60"} 3`,
		`x_seconds_bucket{le="+Inf"} 4`,
		"x_seconds_count 4",
	}
	for _, want := range mustContain {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if got := h.Count(); got != 4 {
		t.Errorf("Count() = %d, want 4", got)
	}
}

func TestHistogramEmitsCompleteTriple(t *testing.T) {
	h := NewHistogram()
	h.Observe(3 * time.Millisecond)
	var sb strings.Builder
	h.Write(&sb, "y_seconds", `endpoint="schedule"`)
	text := sb.String()
	for _, want := range []string{
		`y_seconds_bucket{endpoint="schedule",le="+Inf"} 1`,
		`y_seconds_sum{endpoint="schedule"} 0.003`,
		`y_seconds_count{endpoint="schedule"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if v := CheckMetrics(text, nil); len(v) != 0 {
		t.Errorf("complete histogram triple flagged by lint: %v", v)
	}
}

// TestHistogramQuantileVsExact compares bucket-interpolated quantiles with
// the exact sorted-sample quantiles the old latency ring computed. The
// histogram can only be as precise as its buckets, so the assertion is
// "same bucket": the estimate must land within the bucket containing the
// exact value.
func TestHistogramQuantileVsExact(t *testing.T) {
	h := NewHistogram()
	var samples []float64
	// Deterministic spread over several buckets.
	for i := 1; i <= 1000; i++ {
		s := float64(i%97+1) * 150e-6 // 150µs .. 14.7ms
		samples = append(samples, s)
		h.Observe(time.Duration(s * float64(time.Second)))
	}
	sort.Float64s(samples)

	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)-1))]
		est := h.Quantile(q).Seconds()
		lo, hi := bucketFor(exact)
		if est < lo-1e-9 || est > hi+1e-9 {
			t.Errorf("q=%g: estimate %g outside bucket [%g, %g] of exact %g", q, est, lo, hi, exact)
		}
	}
}

func bucketFor(s float64) (lo, hi float64) {
	i := sort.SearchFloat64s(LatencyBuckets, s)
	if i >= len(LatencyBuckets) {
		return LatencyBuckets[len(LatencyBuckets)-1], math.Inf(1)
	}
	if i > 0 {
		lo = LatencyBuckets[i-1]
	}
	return lo, LatencyBuckets[i]
}

func TestHistogramQuantileEmpty(t *testing.T) {
	if got := NewHistogram().Quantile(0.99); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
}

func TestVecAggregatesAcrossCells(t *testing.T) {
	v := NewVec()
	v.With(`cache="hit"`).Observe(200 * time.Microsecond)
	v.With(`cache="miss"`).Observe(40 * time.Millisecond)
	v.With(`cache="miss"`).Observe(45 * time.Millisecond)

	// Union has 3 observations; the median is the 40ms one → (25ms, 50ms]
	// bucket.
	p50 := v.Quantile(0.5).Seconds()
	if p50 <= 0.025 || p50 > 0.05 {
		t.Errorf("cross-cell p50 = %g, want within (0.025, 0.05]", p50)
	}

	var sb strings.Builder
	v.Write(&sb, "z_seconds")
	text := sb.String()
	hitIdx := strings.Index(text, `z_seconds_bucket{cache="hit"`)
	missIdx := strings.Index(text, `z_seconds_bucket{cache="miss"`)
	if hitIdx < 0 || missIdx < 0 || hitIdx > missIdx {
		t.Errorf("cells missing or not rendered in sorted label order:\n%s", text)
	}
}

func TestTracePhaseOverflowDrops(t *testing.T) {
	tr := AcquireTrace("req-1", "schedule")
	for i := 0; i < MaxPhases+3; i++ {
		tr.Phase(fmt.Sprintf("p%d", i), time.Millisecond)
	}
	if got := len(tr.Phases()); got != MaxPhases {
		t.Errorf("retained %d phases, want %d", got, MaxPhases)
	}
	if tr.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", tr.Dropped)
	}
	ReleaseTrace(tr)
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Phase("x", time.Millisecond)
	tr.PhaseNote("x", "n", time.Millisecond)
	tr.SetNode("w1")
	tr.SetOutcome("hit")
	if tr.Phases() != nil || tr.ServerTiming() != "" {
		t.Error("nil trace must report no phases")
	}
	ReleaseTrace(tr)
}

func TestServerTimingFormat(t *testing.T) {
	tr := AcquireTrace("req-2", "schedule")
	tr.Phase("queue", 310*time.Microsecond)
	tr.Phase("schedule", 1050*time.Microsecond)
	got := tr.ServerTiming()
	if got != "queue;dur=0.31, schedule;dur=1.05" {
		t.Errorf("ServerTiming = %q", got)
	}
	ReleaseTrace(tr)
}

func TestRingEviction(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		tr := AcquireTrace(fmt.Sprintf("id-%d", i), "schedule")
		r.Publish(tr)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	// id-0 and id-1 were evicted; id-2..id-5 remain.
	for i := 0; i < 2; i++ {
		if _, ok := r.Get(fmt.Sprintf("id-%d", i)); ok {
			t.Errorf("id-%d should be evicted", i)
		}
	}
	for i := 2; i < 6; i++ {
		if _, ok := r.Get(fmt.Sprintf("id-%d", i)); !ok {
			t.Errorf("id-%d should be retrievable", i)
		}
	}
	recent := r.Recent(0)
	if len(recent) != 4 || recent[0].ID != "id-5" || recent[3].ID != "id-2" {
		ids := make([]string, len(recent))
		for i, tr := range recent {
			ids[i] = tr.ID
		}
		t.Errorf("Recent order = %v, want [id-5 id-4 id-3 id-2]", ids)
	}
}

func TestRingSameIDRepublish(t *testing.T) {
	// Failover retries publish under one ID; the index must follow the
	// newest copy and survive eviction of the older one.
	r := NewRing(2)
	first := AcquireTrace("dup", "schedule")
	first.SetOutcome("error")
	r.Publish(first)
	second := AcquireTrace("dup", "schedule")
	second.SetOutcome("failover")
	r.Publish(second)
	got, ok := r.Get("dup")
	if !ok || got.Outcome != "failover" {
		t.Errorf("Get(dup) = %+v ok=%v, want newest (failover)", got, ok)
	}
	// Evict the older dup slot; the newer must stay indexed.
	r.Publish(AcquireTrace("other", "schedule"))
	if got, ok := r.Get("dup"); !ok || got.Outcome != "failover" {
		t.Errorf("after eviction Get(dup) = %+v ok=%v, want newest retained", got, ok)
	}
}

func TestRequestIDResolution(t *testing.T) {
	id := NewRequestID()
	if len(id) != 16 {
		t.Errorf("NewRequestID length = %d, want 16 hex chars: %q", len(id), id)
	}
	if SuffixID("abc", 3) != "abc#3" {
		t.Errorf("SuffixID = %q", SuffixID("abc", 3))
	}
}

func TestCheckMetrics(t *testing.T) {
	good := strings.Join([]string{
		"a_total 3",
		`a_labeled_total{x="y"} 1`,
		`h_seconds_bucket{le="+Inf"} 2`,
		"h_seconds_sum 0.5",
		"h_seconds_count 2",
		"g_depth 7",
		"# HELP ignored",
	}, "\n")
	if v := CheckMetrics(good, map[string]bool{"g_depth": true}); len(v) != 0 {
		t.Errorf("clean exposition flagged: %v", v)
	}

	if v := CheckMetrics("spills 3\n", nil); len(v) != 1 {
		t.Errorf("bare counter not flagged: %v", v)
	}
	if v := CheckMetrics("g_depth 7\n", nil); len(v) != 1 {
		t.Errorf("unallowlisted gauge not flagged: %v", v)
	}
	incomplete := "h_seconds_bucket{le=\"+Inf\"} 2\nh_seconds_sum 0.5\n"
	if v := CheckMetrics(incomplete, nil); len(v) != 1 || !strings.Contains(v[0], "h_seconds_count") {
		t.Errorf("incomplete histogram triple not flagged: %v", v)
	}
}

func TestTopKSpaceSaving(t *testing.T) {
	k := NewTopK(2)
	for i := 0; i < 5; i++ {
		k.Add("hot")
	}
	k.Add("warm")
	k.Add("warm")

	snap := k.Snapshot()
	if len(snap) != 2 || snap[0].Key != "hot" || snap[0].Count != 5 || snap[1].Key != "warm" || snap[1].Count != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}

	// A newcomer at capacity evicts the current minimum and inherits
	// min+1 — the space-saving overestimate that keeps truly-hot keys from
	// being churned out by a stream of singletons.
	k.Add("new")
	snap = k.Snapshot()
	if len(snap) != 2 || snap[0].Key != "hot" {
		t.Fatalf("after eviction snapshot = %+v", snap)
	}
	if snap[1].Key != "new" || snap[1].Count != 3 {
		t.Fatalf("newcomer = %+v, want {new 3}", snap[1])
	}

	// Snapshot order is deterministic: count desc, then key asc.
	k2 := NewTopK(4)
	for _, key := range []string{"b", "a", "c", "a"} {
		k2.Add(key)
	}
	snap = k2.Snapshot()
	want := []TopKEntry{{"a", 2}, {"b", 1}, {"c", 1}}
	for i, e := range want {
		if snap[i] != e {
			t.Fatalf("snapshot[%d] = %+v, want %+v (full: %+v)", i, snap[i], e, snap)
		}
	}
}
