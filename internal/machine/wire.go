package machine

// MarshalText renders the configuration in the Format text description, so
// a Config embeds directly into JSON request/response bodies as a string.
// Together with UnmarshalText it gives the wire round-trip the gpserved
// HTTP API relies on: Format output always re-parses to an equivalent,
// validated configuration.
func (c *Config) MarshalText() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return []byte(Format(c)), nil
}

// UnmarshalText parses a machine description in the Format text format.
func (c *Config) UnmarshalText(data []byte) error {
	parsed, err := ParseString(string(data))
	if err != nil {
		return err
	}
	*c = *parsed
	return nil
}
