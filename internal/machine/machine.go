// Package machine describes clustered VLIW processor configurations.
//
// The paper's evaluation grid (MICRO-34, Table 1) is homogeneous: every
// configuration is 12-issue with the same total resources divided evenly
// among the clusters,
//
//	unified:   1 cluster  × (4 INT, 4 FP, 4 MEM), all registers
//	2-cluster: 2 clusters × (2 INT, 2 FP, 2 MEM), half the registers each
//	4-cluster: 4 clusters × (1 INT, 1 FP, 1 MEM), a quarter of the registers each
//
// communicating over NBus shared, non-pipelined buses of latency LatBus.
// The paper's motivating hardware (TI C6x, TigerSHARC, Lx — §1) is not
// homogeneous, so the model also supports
//
//   - per-cluster functional-unit mixes and register-file sizes
//     (PerCluster), e.g. an integer-heavy cluster next to an FP-heavy one;
//   - a pipelined shared bus (Pipelined: a transfer occupies a bus for one
//     issue slot instead of LatBus consecutive cycles, latency unchanged);
//   - per-cluster-pair point-to-point links (PointToPoint: NBus parallel
//     links per ordered cluster pair instead of a shared broadcast bus).
//
// Machines can be described in a small line-oriented text format (Parse /
// Format) so the command-line tools can load arbitrary configurations.
// The memory hierarchy is shared by all clusters and perfect (every access
// hits), exactly as in the paper's evaluation.
package machine

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/isa"
)

// Topology selects the inter-cluster interconnect model.
type Topology int8

const (
	// SharedBus is the paper's interconnect: NBus shared buses; a transfer
	// broadcasts its value to every other cluster.
	SharedBus Topology = iota
	// PointToPoint replaces the shared buses with NBus dedicated links per
	// ordered cluster pair; a transfer delivers to exactly one destination.
	PointToPoint
)

// String returns "bus" or "p2p", the mnemonics of the text format.
func (t Topology) String() string {
	if t == PointToPoint {
		return "p2p"
	}
	return "bus"
}

// ClusterSpec is the resource mix of one cluster of a heterogeneous
// machine.
type ClusterSpec struct {
	// Units holds the number of functional units of each kind.
	Units [isa.NumUnitKinds]int
	// Regs is the size of the cluster's register file.
	Regs int
}

// Config describes one clustered VLIW configuration. The zero value is not a
// valid configuration; use one of the constructors or fill every field and
// call Validate.
type Config struct {
	// Name identifies the configuration in tables and benchmark output,
	// e.g. "2-cluster/32reg/1bus/lat1".
	Name string

	// Clusters is the number of clusters (1 for the unified machine).
	Clusters int

	// Units holds the number of functional units of each kind per cluster
	// for homogeneous machines. It is ignored when PerCluster is set.
	Units [isa.NumUnitKinds]int

	// RegsPerCluster is the number of registers in each cluster's register
	// file for homogeneous machines. It is ignored when PerCluster is set.
	RegsPerCluster int

	// PerCluster, when non-nil, gives each cluster its own unit mix and
	// register file; its length must equal Clusters. Nil means the
	// homogeneous Units/RegsPerCluster fields apply to every cluster.
	PerCluster []ClusterSpec

	// Topology selects the interconnect model (SharedBus or PointToPoint).
	Topology Topology

	// NBus is the number of inter-cluster buses (SharedBus) or the number
	// of parallel links per ordered cluster pair (PointToPoint). Zero is
	// only valid for the unified configuration.
	NBus int

	// LatBus is the latency, in cycles, of an inter-cluster transfer.
	LatBus int

	// Pipelined makes the interconnect accept a new transfer every cycle:
	// a transfer occupies its bus or link for a single issue slot instead
	// of LatBus consecutive cycles. Latency is unchanged.
	Pipelined bool

	// Latency maps each operation class to its producer latency in cycles.
	Latency [isa.NumOpClasses]int
}

// NewUnified returns the paper's unified baseline: a single cluster holding
// all twelve functional units and all totalRegs registers. It has no
// inter-cluster bus.
func NewUnified(totalRegs int) *Config {
	return &Config{
		Name:           fmt.Sprintf("unified/%dreg", totalRegs),
		Clusters:       1,
		Units:          [isa.NumUnitKinds]int{4, 4, 4},
		RegsPerCluster: totalRegs,
		NBus:           0,
		LatBus:         0,
		Latency:        isa.DefaultLatencies(),
	}
}

// UnifiedOf returns the unified (single-cluster) counterpart of m: one
// cluster holding m's machine-wide functional units and registers, with m's
// latency table. It is the upper-bound baseline the experiment harness
// compares clustered machines against.
func UnifiedOf(m *Config) *Config {
	var units [isa.NumUnitKinds]int
	for k := 0; k < isa.NumUnitKinds; k++ {
		units[k] = m.TotalUnits(isa.UnitKind(k))
	}
	return &Config{
		Name:           fmt.Sprintf("unified-of/%s", m.Name),
		Clusters:       1,
		Units:          units,
		RegsPerCluster: m.TotalRegs(),
		Latency:        m.Latency,
	}
}

// NewClustered returns an n-cluster 12-issue configuration with totalRegs
// registers split evenly, nbus inter-cluster buses of latency latBus.
// n must divide 4 (the per-kind unit count of the unified machine) and
// totalRegs must divide evenly by n.
func NewClustered(n, totalRegs, nbus, latBus int) (*Config, error) {
	switch {
	case n < 1:
		return nil, fmt.Errorf("machine: cluster count %d < 1", n)
	case 4%n != 0:
		return nil, fmt.Errorf("machine: cluster count %d does not divide the 12-issue machine evenly", n)
	case totalRegs%n != 0:
		return nil, fmt.Errorf("machine: %d registers do not split evenly over %d clusters", totalRegs, n)
	case n > 1 && nbus < 1:
		return nil, fmt.Errorf("machine: clustered configuration requires at least one bus")
	case n > 1 && latBus < 1:
		return nil, fmt.Errorf("machine: bus latency %d < 1", latBus)
	}
	per := 4 / n
	c := &Config{
		Name:           fmt.Sprintf("%d-cluster/%dreg/%dbus/lat%d", n, totalRegs, nbus, latBus),
		Clusters:       n,
		Units:          [isa.NumUnitKinds]int{per, per, per},
		RegsPerCluster: totalRegs / n,
		NBus:           nbus,
		LatBus:         latBus,
		Latency:        isa.DefaultLatencies(),
	}
	if n == 1 {
		c.NBus, c.LatBus = 0, 0
		c.Name = fmt.Sprintf("unified/%dreg", totalRegs)
	}
	return c, nil
}

// MustClustered is NewClustered but panics on invalid parameters. It is
// intended for the fixed, known-good configurations used in tests, examples
// and benchmarks.
func MustClustered(n, totalRegs, nbus, latBus int) *Config {
	c, err := NewClustered(n, totalRegs, nbus, latBus)
	if err != nil {
		panic(err)
	}
	return c
}

// NewHetero returns a heterogeneous machine: one ClusterSpec per cluster,
// connected by the given interconnect. Latencies are the defaults; mutate
// Latency afterwards for custom tables.
func NewHetero(name string, specs []ClusterSpec, topo Topology, nbus, latBus int, pipelined bool) (*Config, error) {
	c := &Config{
		Name:       name,
		Clusters:   len(specs),
		PerCluster: append([]ClusterSpec(nil), specs...),
		Topology:   topo,
		NBus:       nbus,
		LatBus:     latBus,
		Pipelined:  pipelined,
		Latency:    isa.DefaultLatencies(),
	}
	if c.Clusters == 1 {
		c.NBus, c.LatBus, c.Pipelined = 0, 0, false
		c.Topology = SharedBus
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustHetero is NewHetero but panics on invalid parameters.
func MustHetero(name string, specs []ClusterSpec, topo Topology, nbus, latBus int, pipelined bool) *Config {
	c, err := NewHetero(name, specs, topo, nbus, latBus, pipelined)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate checks internal consistency of a hand-built configuration.
func (c *Config) Validate() error {
	if c.Clusters < 1 {
		return fmt.Errorf("machine %q: cluster count %d < 1", c.Name, c.Clusters)
	}
	if c.PerCluster != nil && len(c.PerCluster) != c.Clusters {
		return fmt.Errorf("machine %q: %d cluster specs for %d clusters", c.Name, len(c.PerCluster), c.Clusters)
	}
	if c.Topology != SharedBus && c.Topology != PointToPoint {
		return fmt.Errorf("machine %q: unknown topology %d", c.Name, int(c.Topology))
	}
	for cl := 0; cl < c.Clusters; cl++ {
		total := 0
		for k := 0; k < isa.NumUnitKinds; k++ {
			u := c.UnitsIn(cl, isa.UnitKind(k))
			if u < 0 {
				return fmt.Errorf("machine %q: cluster %d has negative %s unit count", c.Name, cl, isa.UnitKind(k))
			}
			total += u
		}
		if total == 0 {
			return fmt.Errorf("machine %q: cluster %d has no functional units", c.Name, cl)
		}
		if c.RegsIn(cl) < 1 {
			return fmt.Errorf("machine %q: cluster %d has %d registers", c.Name, cl, c.RegsIn(cl))
		}
	}
	if c.Clusters > 1 {
		if c.NBus < 1 {
			return fmt.Errorf("machine %q: clustered but no interconnect", c.Name)
		}
		if c.LatBus < 1 {
			return fmt.Errorf("machine %q: transfer latency %d < 1", c.Name, c.LatBus)
		}
	}
	for cl := 0; cl < isa.NumOpClasses; cl++ {
		if c.Latency[cl] < 1 {
			return fmt.Errorf("machine %q: latency %d for %s", c.Name, c.Latency[cl], isa.OpClass(cl))
		}
	}
	return nil
}

// OpLatency returns the producer latency of an operation of class op.
func (c *Config) OpLatency(op isa.OpClass) int { return c.Latency[op] }

// Heterogeneous reports whether the machine has per-cluster resource
// overrides.
func (c *Config) Heterogeneous() bool { return c.PerCluster != nil }

// UnitsIn returns the number of functional units of kind k in cluster cl.
func (c *Config) UnitsIn(cl int, k isa.UnitKind) int {
	if c.PerCluster != nil {
		return c.PerCluster[cl].Units[k]
	}
	return c.Units[k]
}

// RegsIn returns the register-file size of cluster cl.
func (c *Config) RegsIn(cl int) int {
	if c.PerCluster != nil {
		return c.PerCluster[cl].Regs
	}
	return c.RegsPerCluster
}

// UnitsPerCluster returns the per-cluster unit count of kind k on a
// homogeneous machine. Consumers that know the cluster should use UnitsIn,
// which also handles heterogeneous machines; for those, UnitsPerCluster
// returns the maximum over clusters.
func (c *Config) UnitsPerCluster(k isa.UnitKind) int {
	if c.PerCluster == nil {
		return c.Units[k]
	}
	max := 0
	for cl := range c.PerCluster {
		if u := c.PerCluster[cl].Units[k]; u > max {
			max = u
		}
	}
	return max
}

// TotalUnits returns the machine-wide number of functional units of kind k.
func (c *Config) TotalUnits(k isa.UnitKind) int {
	if c.PerCluster == nil {
		return c.Units[k] * c.Clusters
	}
	n := 0
	for cl := range c.PerCluster {
		n += c.PerCluster[cl].Units[k]
	}
	return n
}

// TotalRegs returns the machine-wide register count.
func (c *Config) TotalRegs() int {
	if c.PerCluster == nil {
		return c.RegsPerCluster * c.Clusters
	}
	n := 0
	for cl := range c.PerCluster {
		n += c.PerCluster[cl].Regs
	}
	return n
}

// IssueWidth returns the machine-wide issue width, which equals the total
// number of functional units (each unit issues one operation per cycle).
func (c *Config) IssueWidth() int {
	n := 0
	for k := 0; k < isa.NumUnitKinds; k++ {
		n += c.TotalUnits(isa.UnitKind(k))
	}
	return n
}

// XferOccupancy returns the number of consecutive cycles one transfer
// occupies its bus or link: LatBus for the paper's non-pipelined
// interconnect, 1 when pipelined.
func (c *Config) XferOccupancy() int {
	if c.Pipelined {
		return 1
	}
	return c.LatBus
}

// Channels returns the number of independent transfer channels: 1 for the
// shared-bus pool, one per ordered cluster pair for point-to-point links.
func (c *Config) Channels() int {
	if c.Topology == PointToPoint {
		return c.Clusters * (c.Clusters - 1)
	}
	if c.Clusters <= 1 {
		return 0
	}
	return 1
}

// String returns the configuration name.
func (c *Config) String() string { return c.Name }

// Table1 returns the three processor configurations of the paper's Table 1
// for a given total register count: unified, 2-cluster and 4-cluster, each
// 12-issue with resources split homogeneously, with nbus buses of latency
// latBus for the clustered machines.
func Table1(totalRegs, nbus, latBus int) []*Config {
	return []*Config{
		NewUnified(totalRegs),
		MustClustered(2, totalRegs, nbus, latBus),
		MustClustered(4, totalRegs, nbus, latBus),
	}
}

// SweepSet returns the default machine grid of `gpbench -sweep`: the paper's
// Table-1 4-cluster configuration, a heterogeneous C6x-flavored two-cluster
// machine (uneven unit mixes and register files), a pipelined-bus variant
// and a point-to-point variant. Every machine keeps at least one unit of
// each kind machine-wide so both corpora are schedulable everywhere.
func SweepSet() []*Config {
	het := MustHetero("c6x-het/2x6w/24+40reg/1bus/lat1",
		[]ClusterSpec{
			{Units: [isa.NumUnitKinds]int{3, 1, 2}, Regs: 24},
			{Units: [isa.NumUnitKinds]int{1, 3, 2}, Regs: 40},
		}, SharedBus, 1, 1, false)
	pipe := MustClustered(4, 64, 1, 2)
	pipe.Pipelined = true
	pipe.Name = "4-cluster/64reg/1pbus/lat2"
	p2p := MustClustered(4, 64, 1, 1)
	p2p.Topology = PointToPoint
	p2p.Name = "4-cluster/64reg/p2p/lat1"
	return []*Config{
		MustClustered(4, 64, 1, 1),
		het,
		pipe,
		p2p,
	}
}

// Format renders the machine in the text description format read by Parse:
//
//	machine <name>
//	cluster <int> <fp> <mem> <regs>        # one line per cluster, in order
//	interconnect <bus|p2p> <n> <lat> <pipelined|blocking>
//	latency <opclass> <cycles>             # one line per operation class
//
// Unified machines omit the interconnect line. Format output always
// re-parses to an equivalent configuration.
func Format(c *Config) string {
	var b strings.Builder
	// The name must survive strings.Fields on the way back in: every
	// whitespace rune becomes an underscore.
	name := strings.Map(func(r rune) rune {
		if unicode.IsSpace(r) {
			return '_'
		}
		return r
	}, c.Name)
	if name == "" {
		name = "machine"
	}
	fmt.Fprintf(&b, "machine %s\n", name)
	for cl := 0; cl < c.Clusters; cl++ {
		fmt.Fprintf(&b, "cluster %d %d %d %d\n",
			c.UnitsIn(cl, isa.IntUnit), c.UnitsIn(cl, isa.FPUnit), c.UnitsIn(cl, isa.MemUnit), c.RegsIn(cl))
	}
	if c.Clusters > 1 {
		pipe := "blocking"
		if c.Pipelined {
			pipe = "pipelined"
		}
		fmt.Fprintf(&b, "interconnect %s %d %d %s\n", c.Topology, c.NBus, c.LatBus, pipe)
	}
	for op := 0; op < isa.NumOpClasses; op++ {
		fmt.Fprintf(&b, "latency %s %d\n", isa.OpClass(op), c.Latency[op])
	}
	return b.String()
}

// Parse reads one machine description in the Format text format. Latency
// lines are optional (defaults apply); the interconnect line is optional for
// single-cluster machines. The parsed configuration is validated.
func Parse(r io.Reader) (*Config, error) {
	c := &Config{Latency: isa.DefaultLatencies()}
	sawName := false
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "machine":
			if len(fields) != 2 {
				return nil, fmt.Errorf("machine: line %d: machine wants <name>", lineno)
			}
			if sawName {
				return nil, fmt.Errorf("machine: line %d: duplicate machine line", lineno)
			}
			c.Name = fields[1]
			sawName = true
		case "cluster":
			if len(fields) != 5 {
				return nil, fmt.Errorf("machine: line %d: cluster wants <int> <fp> <mem> <regs>", lineno)
			}
			var nums [4]int
			for i := range nums {
				v, err := strconv.Atoi(fields[1+i])
				if err != nil {
					return nil, fmt.Errorf("machine: line %d: bad number %q", lineno, fields[1+i])
				}
				nums[i] = v
			}
			c.PerCluster = append(c.PerCluster, ClusterSpec{
				Units: [isa.NumUnitKinds]int{nums[0], nums[1], nums[2]},
				Regs:  nums[3],
			})
		case "interconnect":
			if len(fields) != 5 {
				return nil, fmt.Errorf("machine: line %d: interconnect wants <bus|p2p> <n> <lat> <pipelined|blocking>", lineno)
			}
			switch fields[1] {
			case "bus":
				c.Topology = SharedBus
			case "p2p":
				c.Topology = PointToPoint
			default:
				return nil, fmt.Errorf("machine: line %d: unknown topology %q", lineno, fields[1])
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("machine: line %d: bad count %q", lineno, fields[2])
			}
			lat, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("machine: line %d: bad latency %q", lineno, fields[3])
			}
			c.NBus, c.LatBus = n, lat
			switch fields[4] {
			case "pipelined":
				c.Pipelined = true
			case "blocking":
				c.Pipelined = false
			default:
				return nil, fmt.Errorf("machine: line %d: want pipelined or blocking, got %q", lineno, fields[4])
			}
		case "latency":
			if len(fields) != 3 {
				return nil, fmt.Errorf("machine: line %d: latency wants <opclass> <cycles>", lineno)
			}
			op, ok := parseOpClass(fields[1])
			if !ok {
				return nil, fmt.Errorf("machine: line %d: unknown op class %q", lineno, fields[1])
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("machine: line %d: bad latency %q", lineno, fields[2])
			}
			c.Latency[op] = v
		default:
			return nil, fmt.Errorf("machine: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	if !sawName {
		return nil, fmt.Errorf("machine: missing machine line")
	}
	if len(c.PerCluster) == 0 {
		return nil, fmt.Errorf("machine %q: no cluster lines", c.Name)
	}
	c.Clusters = len(c.PerCluster)
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseString is Parse over an in-memory description.
func ParseString(s string) (*Config, error) { return Parse(strings.NewReader(s)) }

func parseOpClass(s string) (isa.OpClass, bool) {
	for op := 0; op < isa.NumOpClasses; op++ {
		if strings.EqualFold(isa.OpClass(op).String(), s) {
			return isa.OpClass(op), true
		}
	}
	return 0, false
}
