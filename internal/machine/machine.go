// Package machine describes the clustered VLIW processor configurations of
// the paper (MICRO-34, Table 1).
//
// All configurations are 12-issue with the same total resources, divided
// homogeneously among the clusters:
//
//	unified:   1 cluster  × (4 INT, 4 FP, 4 MEM), all registers
//	2-cluster: 2 clusters × (2 INT, 2 FP, 2 MEM), half the registers each
//	4-cluster: 4 clusters × (1 INT, 1 FP, 1 MEM), a quarter of the registers each
//
// Clusters communicate through NBus shared, non-pipelined buses of latency
// LatBus. The memory hierarchy is shared by all clusters and perfect (every
// access hits), exactly as in the paper's evaluation.
package machine

import (
	"fmt"

	"repro/internal/isa"
)

// Config describes one clustered VLIW configuration. The zero value is not a
// valid configuration; use one of the constructors or fill every field and
// call Validate.
type Config struct {
	// Name identifies the configuration in tables and benchmark output,
	// e.g. "2-cluster/32reg/1bus/lat1".
	Name string

	// Clusters is the number of clusters (1 for the unified machine).
	Clusters int

	// Units holds the number of functional units of each kind per cluster.
	Units [isa.NumUnitKinds]int

	// RegsPerCluster is the number of registers in each cluster's register
	// file. The paper reports total registers (32 or 64) split evenly.
	RegsPerCluster int

	// NBus is the number of inter-cluster buses. Zero is only valid for the
	// unified configuration.
	NBus int

	// LatBus is the latency, in cycles, of an inter-cluster bus transfer.
	// The bus is not pipelined: a transfer occupies a bus for LatBus
	// consecutive cycles.
	LatBus int

	// Latency maps each operation class to its producer latency in cycles.
	Latency [isa.NumOpClasses]int
}

// NewUnified returns the paper's unified baseline: a single cluster holding
// all twelve functional units and all totalRegs registers. It has no
// inter-cluster bus.
func NewUnified(totalRegs int) *Config {
	return &Config{
		Name:           fmt.Sprintf("unified/%dreg", totalRegs),
		Clusters:       1,
		Units:          [isa.NumUnitKinds]int{4, 4, 4},
		RegsPerCluster: totalRegs,
		NBus:           0,
		LatBus:         0,
		Latency:        isa.DefaultLatencies(),
	}
}

// NewClustered returns an n-cluster 12-issue configuration with totalRegs
// registers split evenly, nbus inter-cluster buses of latency latBus.
// n must divide 4 (the per-kind unit count of the unified machine) and
// totalRegs must divide evenly by n.
func NewClustered(n, totalRegs, nbus, latBus int) (*Config, error) {
	switch {
	case n < 1:
		return nil, fmt.Errorf("machine: cluster count %d < 1", n)
	case 4%n != 0:
		return nil, fmt.Errorf("machine: cluster count %d does not divide the 12-issue machine evenly", n)
	case totalRegs%n != 0:
		return nil, fmt.Errorf("machine: %d registers do not split evenly over %d clusters", totalRegs, n)
	case n > 1 && nbus < 1:
		return nil, fmt.Errorf("machine: clustered configuration requires at least one bus")
	case n > 1 && latBus < 1:
		return nil, fmt.Errorf("machine: bus latency %d < 1", latBus)
	}
	per := 4 / n
	c := &Config{
		Name:           fmt.Sprintf("%d-cluster/%dreg/%dbus/lat%d", n, totalRegs, nbus, latBus),
		Clusters:       n,
		Units:          [isa.NumUnitKinds]int{per, per, per},
		RegsPerCluster: totalRegs / n,
		NBus:           nbus,
		LatBus:         latBus,
		Latency:        isa.DefaultLatencies(),
	}
	if n == 1 {
		c.NBus, c.LatBus = 0, 0
		c.Name = fmt.Sprintf("unified/%dreg", totalRegs)
	}
	return c, nil
}

// MustClustered is NewClustered but panics on invalid parameters. It is
// intended for the fixed, known-good configurations used in tests, examples
// and benchmarks.
func MustClustered(n, totalRegs, nbus, latBus int) *Config {
	c, err := NewClustered(n, totalRegs, nbus, latBus)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate checks internal consistency of a hand-built configuration.
func (c *Config) Validate() error {
	if c.Clusters < 1 {
		return fmt.Errorf("machine %q: cluster count %d < 1", c.Name, c.Clusters)
	}
	for k := 0; k < isa.NumUnitKinds; k++ {
		if c.Units[k] < 0 {
			return fmt.Errorf("machine %q: negative %s unit count", c.Name, isa.UnitKind(k))
		}
	}
	if c.Units[isa.IntUnit]+c.Units[isa.FPUnit]+c.Units[isa.MemUnit] == 0 {
		return fmt.Errorf("machine %q: no functional units", c.Name)
	}
	if c.RegsPerCluster < 1 {
		return fmt.Errorf("machine %q: %d registers per cluster", c.Name, c.RegsPerCluster)
	}
	if c.Clusters > 1 {
		if c.NBus < 1 {
			return fmt.Errorf("machine %q: clustered but no bus", c.Name)
		}
		if c.LatBus < 1 {
			return fmt.Errorf("machine %q: bus latency %d < 1", c.Name, c.LatBus)
		}
	}
	for cl := 0; cl < isa.NumOpClasses; cl++ {
		if c.Latency[cl] < 1 {
			return fmt.Errorf("machine %q: latency %d for %s", c.Name, c.Latency[cl], isa.OpClass(cl))
		}
	}
	return nil
}

// OpLatency returns the producer latency of an operation of class op.
func (c *Config) OpLatency(op isa.OpClass) int { return c.Latency[op] }

// UnitsPerCluster returns the number of functional units of kind k in each
// cluster.
func (c *Config) UnitsPerCluster(k isa.UnitKind) int { return c.Units[k] }

// TotalUnits returns the machine-wide number of functional units of kind k.
func (c *Config) TotalUnits(k isa.UnitKind) int { return c.Units[k] * c.Clusters }

// TotalRegs returns the machine-wide register count.
func (c *Config) TotalRegs() int { return c.RegsPerCluster * c.Clusters }

// IssueWidth returns the machine-wide issue width, which equals the total
// number of functional units (each unit issues one operation per cycle).
func (c *Config) IssueWidth() int {
	n := 0
	for k := 0; k < isa.NumUnitKinds; k++ {
		n += c.TotalUnits(isa.UnitKind(k))
	}
	return n
}

// String returns the configuration name.
func (c *Config) String() string { return c.Name }

// Table1 returns the three processor configurations of the paper's Table 1
// for a given total register count: unified, 2-cluster and 4-cluster, each
// 12-issue with resources split homogeneously, with nbus buses of latency
// latBus for the clustered machines.
func Table1(totalRegs, nbus, latBus int) []*Config {
	return []*Config{
		NewUnified(totalRegs),
		MustClustered(2, totalRegs, nbus, latBus),
		MustClustered(4, totalRegs, nbus, latBus),
	}
}
