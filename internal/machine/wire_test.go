package machine

import (
	"encoding/json"
	"testing"

	"repro/internal/isa"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	machines := []*Config{
		NewUnified(64),
		MustClustered(4, 64, 1, 2),
		MustHetero("het", []ClusterSpec{
			{Units: [isa.NumUnitKinds]int{3, 1, 2}, Regs: 24},
			{Units: [isa.NumUnitKinds]int{1, 3, 2}, Regs: 40},
		}, PointToPoint, 2, 3, true),
	}
	for _, m := range machines {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("%s: marshal: %v", m.Name, err)
		}
		var got Config
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: unmarshal: %v", m.Name, err)
		}
		if got.Clusters != m.Clusters || got.NBus != m.NBus || got.LatBus != m.LatBus ||
			got.Topology != m.Topology || got.Pipelined != m.Pipelined ||
			got.TotalRegs() != m.TotalRegs() {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", m.Name, &got, m)
		}
		for cl := 0; cl < m.Clusters; cl++ {
			if got.RegsIn(cl) != m.RegsIn(cl) {
				t.Errorf("%s: cluster %d regs %d != %d", m.Name, cl, got.RegsIn(cl), m.RegsIn(cl))
			}
			for k := 0; k < isa.NumUnitKinds; k++ {
				if got.UnitsIn(cl, isa.UnitKind(k)) != m.UnitsIn(cl, isa.UnitKind(k)) {
					t.Errorf("%s: cluster %d unit kind %d mismatch", m.Name, cl, k)
				}
			}
		}
		if got.Latency != m.Latency {
			t.Errorf("%s: latency table mismatch", m.Name)
		}
	}
}

func TestConfigMarshalInvalid(t *testing.T) {
	bad := &Config{} // zero value is not a valid configuration
	if _, err := bad.MarshalText(); err == nil {
		t.Fatal("marshal of invalid config: want error")
	}
	var c Config
	if err := c.UnmarshalText([]byte("machine x\n")); err == nil {
		t.Fatal("unmarshal of clusterless description: want error")
	}
}
