package machine

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestNewUnified(t *testing.T) {
	c := NewUnified(64)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.Clusters != 1 {
		t.Errorf("Clusters = %d, want 1", c.Clusters)
	}
	if c.IssueWidth() != 12 {
		t.Errorf("IssueWidth = %d, want 12", c.IssueWidth())
	}
	if c.TotalRegs() != 64 {
		t.Errorf("TotalRegs = %d, want 64", c.TotalRegs())
	}
	if c.NBus != 0 {
		t.Errorf("NBus = %d, want 0", c.NBus)
	}
}

func TestNewClusteredTable1Shapes(t *testing.T) {
	// The paper's Table 1: all configurations are 12-issue with the same
	// total resources divided homogeneously.
	for _, n := range []int{1, 2, 4} {
		c, err := NewClustered(n, 64, 1, 1)
		if err != nil {
			t.Fatalf("NewClustered(%d): %v", n, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("Validate(%d-cluster): %v", n, err)
		}
		if got := c.IssueWidth(); got != 12 {
			t.Errorf("%d-cluster IssueWidth = %d, want 12", n, got)
		}
		if got := c.TotalRegs(); got != 64 {
			t.Errorf("%d-cluster TotalRegs = %d, want 64", n, got)
		}
		for k := 0; k < isa.NumUnitKinds; k++ {
			if got := c.TotalUnits(isa.UnitKind(k)); got != 4 {
				t.Errorf("%d-cluster TotalUnits(%v) = %d, want 4", n, isa.UnitKind(k), got)
			}
			if got := c.UnitsPerCluster(isa.UnitKind(k)); got != 4/n {
				t.Errorf("%d-cluster UnitsPerCluster(%v) = %d, want %d", n, isa.UnitKind(k), got, 4/n)
			}
		}
	}
}

func TestNewClusteredErrors(t *testing.T) {
	cases := []struct {
		n, regs, nbus, lat int
	}{
		{0, 32, 1, 1},  // no clusters
		{3, 32, 1, 1},  // 3 does not divide 4 units
		{2, 33, 1, 1},  // registers do not split
		{2, 32, 0, 1},  // clustered without bus
		{2, 32, 1, 0},  // zero bus latency
		{-1, 32, 1, 1}, // negative
	}
	for _, tc := range cases {
		if _, err := NewClustered(tc.n, tc.regs, tc.nbus, tc.lat); err == nil {
			t.Errorf("NewClustered(%+v): want error", tc)
		}
	}
}

func TestMustClusteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustClustered(3,...) did not panic")
		}
	}()
	MustClustered(3, 32, 1, 1)
}

func TestValidateHandBuilt(t *testing.T) {
	c := &Config{Name: "bad", Clusters: 2, RegsPerCluster: 16, NBus: 1, LatBus: 1}
	c.Latency = isa.DefaultLatencies()
	// No functional units.
	if err := c.Validate(); err == nil {
		t.Error("config with no units validated")
	}
	c.Units = [isa.NumUnitKinds]int{1, 1, 1}
	if err := c.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	c.Latency[isa.Load] = 0
	if err := c.Validate(); err == nil {
		t.Error("zero latency validated")
	}
}

func TestNameEncodesParameters(t *testing.T) {
	c := MustClustered(4, 32, 1, 2)
	for _, part := range []string{"4-cluster", "32reg", "1bus", "lat2"} {
		if !strings.Contains(c.Name, part) {
			t.Errorf("Name %q missing %q", c.Name, part)
		}
	}
	if c.String() != c.Name {
		t.Errorf("String() = %q, want %q", c.String(), c.Name)
	}
}

func TestTable1(t *testing.T) {
	cfgs := Table1(32, 1, 1)
	if len(cfgs) != 3 {
		t.Fatalf("Table1 returned %d configs, want 3", len(cfgs))
	}
	wantClusters := []int{1, 2, 4}
	for i, c := range cfgs {
		if c.Clusters != wantClusters[i] {
			t.Errorf("config %d: Clusters = %d, want %d", i, c.Clusters, wantClusters[i])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("config %d invalid: %v", i, err)
		}
		if c.TotalRegs() != 32 {
			t.Errorf("config %d: TotalRegs = %d, want 32", i, c.TotalRegs())
		}
	}
}

func TestOpLatencyMatchesTable(t *testing.T) {
	c := NewUnified(32)
	for cl := 0; cl < isa.NumOpClasses; cl++ {
		if got := c.OpLatency(isa.OpClass(cl)); got != isa.DefaultLatency(isa.OpClass(cl)) {
			t.Errorf("OpLatency(%v) = %d, want default %d", isa.OpClass(cl), got, isa.DefaultLatency(isa.OpClass(cl)))
		}
	}
}

func TestUnifiedAliasOfOneCluster(t *testing.T) {
	a := NewUnified(32)
	b := MustClustered(1, 32, 0, 0)
	if a.Name != b.Name || a.Units != b.Units || a.RegsPerCluster != b.RegsPerCluster {
		t.Errorf("NewClustered(1,...) = %+v, want equivalent of NewUnified: %+v", b, a)
	}
}

func TestHeteroAccessors(t *testing.T) {
	m, err := NewHetero("het", []ClusterSpec{
		{Units: [isa.NumUnitKinds]int{3, 1, 2}, Regs: 24},
		{Units: [isa.NumUnitKinds]int{1, 3, 2}, Regs: 40},
	}, SharedBus, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Heterogeneous() {
		t.Error("Heterogeneous() = false")
	}
	if m.UnitsIn(0, isa.IntUnit) != 3 || m.UnitsIn(1, isa.IntUnit) != 1 {
		t.Error("per-cluster INT units wrong")
	}
	if m.RegsIn(0) != 24 || m.RegsIn(1) != 40 {
		t.Error("per-cluster registers wrong")
	}
	if m.TotalUnits(isa.IntUnit) != 4 || m.TotalUnits(isa.FPUnit) != 4 || m.TotalUnits(isa.MemUnit) != 4 {
		t.Error("totals must sum per-cluster mixes")
	}
	if m.TotalRegs() != 64 {
		t.Errorf("TotalRegs = %d, want 64", m.TotalRegs())
	}
	if m.IssueWidth() != 12 {
		t.Errorf("IssueWidth = %d, want 12", m.IssueWidth())
	}
	if m.UnitsPerCluster(isa.IntUnit) != 3 {
		t.Errorf("UnitsPerCluster on hetero = %d, want max 3", m.UnitsPerCluster(isa.IntUnit))
	}
}

func TestHeteroValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		specs []ClusterSpec
		nbus  int
		lat   int
	}{
		{"empty", nil, 1, 1},
		{"no-units", []ClusterSpec{{Regs: 8}, {Units: [isa.NumUnitKinds]int{1, 1, 1}, Regs: 8}}, 1, 1},
		{"no-regs", []ClusterSpec{{Units: [isa.NumUnitKinds]int{1, 1, 1}}, {Units: [isa.NumUnitKinds]int{1, 1, 1}, Regs: 8}}, 1, 1},
		{"no-bus", []ClusterSpec{{Units: [isa.NumUnitKinds]int{1, 1, 1}, Regs: 8}, {Units: [isa.NumUnitKinds]int{1, 1, 1}, Regs: 8}}, 0, 1},
		{"no-lat", []ClusterSpec{{Units: [isa.NumUnitKinds]int{1, 1, 1}, Regs: 8}, {Units: [isa.NumUnitKinds]int{1, 1, 1}, Regs: 8}}, 1, 0},
	}
	for _, tc := range cases {
		if _, err := NewHetero(tc.name, tc.specs, SharedBus, tc.nbus, tc.lat, false); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestXferOccupancyAndChannels(t *testing.T) {
	m := MustClustered(4, 64, 1, 2)
	if m.XferOccupancy() != 2 {
		t.Errorf("blocking occupancy = %d, want LatBus", m.XferOccupancy())
	}
	m.Pipelined = true
	if m.XferOccupancy() != 1 {
		t.Errorf("pipelined occupancy = %d, want 1", m.XferOccupancy())
	}
	if m.Channels() != 1 {
		t.Errorf("bus channels = %d, want 1", m.Channels())
	}
	m.Topology = PointToPoint
	if m.Channels() != 12 {
		t.Errorf("p2p channels = %d, want 12", m.Channels())
	}
	if NewUnified(32).Channels() != 0 {
		t.Error("unified machine has no transfer channels")
	}
}

func TestUnifiedOf(t *testing.T) {
	het := MustHetero("het", []ClusterSpec{
		{Units: [isa.NumUnitKinds]int{3, 0, 2}, Regs: 24},
		{Units: [isa.NumUnitKinds]int{1, 4, 2}, Regs: 40},
	}, PointToPoint, 2, 2, true)
	u := UnifiedOf(het)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if u.Clusters != 1 || u.NBus != 0 {
		t.Error("UnifiedOf must be a single busless cluster")
	}
	for k := 0; k < isa.NumUnitKinds; k++ {
		if u.TotalUnits(isa.UnitKind(k)) != het.TotalUnits(isa.UnitKind(k)) {
			t.Errorf("unit totals differ for kind %v", isa.UnitKind(k))
		}
	}
	if u.TotalRegs() != het.TotalRegs() {
		t.Error("register totals differ")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	machines := append(SweepSet(), NewUnified(64), MustClustered(2, 32, 3, 2))
	for _, m := range machines {
		text := Format(m)
		got, err := ParseString(text)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", m.Name, err, text)
		}
		// Canonical-form fixpoint: formatting the parsed machine must
		// reproduce the text byte for byte.
		if Format(got) != text {
			t.Errorf("%s: round trip drifted:\n%s\nvs\n%s", m.Name, Format(got), text)
		}
		if got.Clusters != m.Clusters || got.TotalRegs() != m.TotalRegs() ||
			got.NBus != m.NBus || got.LatBus != m.LatBus ||
			got.Pipelined != m.Pipelined || got.Topology != m.Topology {
			t.Errorf("%s: parsed machine differs: %+v", m.Name, got)
		}
		for c := 0; c < m.Clusters; c++ {
			if got.RegsIn(c) != m.RegsIn(c) {
				t.Errorf("%s: cluster %d regs differ", m.Name, c)
			}
			for k := 0; k < isa.NumUnitKinds; k++ {
				if got.UnitsIn(c, isa.UnitKind(k)) != m.UnitsIn(c, isa.UnitKind(k)) {
					t.Errorf("%s: cluster %d units differ", m.Name, c)
				}
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",            // no machine line
		"machine m\n", // no clusters
		"machine m\nmachine n\ncluster 1 1 1 8\n",       // duplicate name
		"machine m\ncluster 1 1 1\n",                    // short cluster line
		"machine m\ncluster 1 1 1 x\n",                  // bad number
		"machine m\ncluster 1 1 1 8\ncluster 1 1 1 8\n", // clustered, no interconnect
		"machine m\ncluster 1 1 1 8\ninterconnect bogus 1 1 blocking\n",
		"machine m\ncluster 1 1 1 8\ninterconnect bus 1 1 maybe\n",
		"machine m\ncluster 1 1 1 8\nlatency Nope 1\n",
		"machine m\ncluster 1 1 1 8\nfrobnicate\n",
	}
	for i, tc := range cases {
		if _, err := ParseString(tc); err == nil {
			t.Errorf("case %d: want error for %q", i, tc)
		}
	}
}

func TestParseLatencyOverride(t *testing.T) {
	m, err := ParseString("machine dsp\ncluster 4 1 2 32\ncluster 4 1 2 32\ninterconnect bus 1 1 blocking\nlatency Load 5\n")
	if err != nil {
		t.Fatal(err)
	}
	if m.OpLatency(isa.Load) != 5 {
		t.Errorf("Load latency = %d, want 5", m.OpLatency(isa.Load))
	}
	if m.OpLatency(isa.FPMul) != isa.DefaultLatency(isa.FPMul) {
		t.Error("unspecified latencies must keep defaults")
	}
}

func TestSweepSetValid(t *testing.T) {
	set := SweepSet()
	if len(set) < 3 {
		t.Fatalf("SweepSet has %d machines, want ≥ 3", len(set))
	}
	var hetero, variant, paper bool
	for _, m := range set {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		for k := 0; k < isa.NumUnitKinds; k++ {
			if m.TotalUnits(isa.UnitKind(k)) == 0 {
				t.Errorf("%s: no %v units machine-wide", m.Name, isa.UnitKind(k))
			}
		}
		if m.Heterogeneous() {
			hetero = true
		}
		if m.Pipelined || m.Topology == PointToPoint {
			variant = true
		}
		if !m.Heterogeneous() && !m.Pipelined && m.Topology == SharedBus {
			paper = true
		}
	}
	if !hetero || !variant || !paper {
		t.Errorf("SweepSet must cover hetero/interconnect-variant/paper machines: %v %v %v", hetero, variant, paper)
	}
}
