package machine

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestNewUnified(t *testing.T) {
	c := NewUnified(64)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.Clusters != 1 {
		t.Errorf("Clusters = %d, want 1", c.Clusters)
	}
	if c.IssueWidth() != 12 {
		t.Errorf("IssueWidth = %d, want 12", c.IssueWidth())
	}
	if c.TotalRegs() != 64 {
		t.Errorf("TotalRegs = %d, want 64", c.TotalRegs())
	}
	if c.NBus != 0 {
		t.Errorf("NBus = %d, want 0", c.NBus)
	}
}

func TestNewClusteredTable1Shapes(t *testing.T) {
	// The paper's Table 1: all configurations are 12-issue with the same
	// total resources divided homogeneously.
	for _, n := range []int{1, 2, 4} {
		c, err := NewClustered(n, 64, 1, 1)
		if err != nil {
			t.Fatalf("NewClustered(%d): %v", n, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("Validate(%d-cluster): %v", n, err)
		}
		if got := c.IssueWidth(); got != 12 {
			t.Errorf("%d-cluster IssueWidth = %d, want 12", n, got)
		}
		if got := c.TotalRegs(); got != 64 {
			t.Errorf("%d-cluster TotalRegs = %d, want 64", n, got)
		}
		for k := 0; k < isa.NumUnitKinds; k++ {
			if got := c.TotalUnits(isa.UnitKind(k)); got != 4 {
				t.Errorf("%d-cluster TotalUnits(%v) = %d, want 4", n, isa.UnitKind(k), got)
			}
			if got := c.UnitsPerCluster(isa.UnitKind(k)); got != 4/n {
				t.Errorf("%d-cluster UnitsPerCluster(%v) = %d, want %d", n, isa.UnitKind(k), got, 4/n)
			}
		}
	}
}

func TestNewClusteredErrors(t *testing.T) {
	cases := []struct {
		n, regs, nbus, lat int
	}{
		{0, 32, 1, 1},  // no clusters
		{3, 32, 1, 1},  // 3 does not divide 4 units
		{2, 33, 1, 1},  // registers do not split
		{2, 32, 0, 1},  // clustered without bus
		{2, 32, 1, 0},  // zero bus latency
		{-1, 32, 1, 1}, // negative
	}
	for _, tc := range cases {
		if _, err := NewClustered(tc.n, tc.regs, tc.nbus, tc.lat); err == nil {
			t.Errorf("NewClustered(%+v): want error", tc)
		}
	}
}

func TestMustClusteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustClustered(3,...) did not panic")
		}
	}()
	MustClustered(3, 32, 1, 1)
}

func TestValidateHandBuilt(t *testing.T) {
	c := &Config{Name: "bad", Clusters: 2, RegsPerCluster: 16, NBus: 1, LatBus: 1}
	c.Latency = isa.DefaultLatencies()
	// No functional units.
	if err := c.Validate(); err == nil {
		t.Error("config with no units validated")
	}
	c.Units = [isa.NumUnitKinds]int{1, 1, 1}
	if err := c.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	c.Latency[isa.Load] = 0
	if err := c.Validate(); err == nil {
		t.Error("zero latency validated")
	}
}

func TestNameEncodesParameters(t *testing.T) {
	c := MustClustered(4, 32, 1, 2)
	for _, part := range []string{"4-cluster", "32reg", "1bus", "lat2"} {
		if !strings.Contains(c.Name, part) {
			t.Errorf("Name %q missing %q", c.Name, part)
		}
	}
	if c.String() != c.Name {
		t.Errorf("String() = %q, want %q", c.String(), c.Name)
	}
}

func TestTable1(t *testing.T) {
	cfgs := Table1(32, 1, 1)
	if len(cfgs) != 3 {
		t.Fatalf("Table1 returned %d configs, want 3", len(cfgs))
	}
	wantClusters := []int{1, 2, 4}
	for i, c := range cfgs {
		if c.Clusters != wantClusters[i] {
			t.Errorf("config %d: Clusters = %d, want %d", i, c.Clusters, wantClusters[i])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("config %d invalid: %v", i, err)
		}
		if c.TotalRegs() != 32 {
			t.Errorf("config %d: TotalRegs = %d, want 32", i, c.TotalRegs())
		}
	}
}

func TestOpLatencyMatchesTable(t *testing.T) {
	c := NewUnified(32)
	for cl := 0; cl < isa.NumOpClasses; cl++ {
		if got := c.OpLatency(isa.OpClass(cl)); got != isa.DefaultLatency(isa.OpClass(cl)) {
			t.Errorf("OpLatency(%v) = %d, want default %d", isa.OpClass(cl), got, isa.DefaultLatency(isa.OpClass(cl)))
		}
	}
}

func TestUnifiedAliasOfOneCluster(t *testing.T) {
	a := NewUnified(32)
	b := MustClustered(1, 32, 0, 0)
	if a.Name != b.Name || a.Units != b.Units || a.RegsPerCluster != b.RegsPerCluster {
		t.Errorf("NewClustered(1,...) = %+v, want equivalent of NewUnified: %+v", b, a)
	}
}
