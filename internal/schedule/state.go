// Package schedule implements the paper's single-phase modulo scheduler:
// instruction scheduling, register allocation and on-the-fly spill code in
// one pass, following the URACAM framework (§3.3) that the GP scheme builds
// on.
//
// Nodes are visited in a Swing-Modulo-Scheduling order (§3.3.3). Each node
// is placed into a (cluster, cycle) slot; inter-cluster register
// dependences are routed over the shared bus (one broadcast transfer per
// value) or — via the §3.3.2 transformations — through memory as a
// store/load pair. Placements are compared with the multi-dimensional
// figure of merit of §3.3.1: the fraction of the *remaining* bus, memory
// and register-lifetime capacity a placement consumes, so that scarce
// resources weigh more than abundant ones.
package schedule

import (
	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mrt"
	"repro/internal/regpress"
)

// noUse marks a cluster with no scheduled consumer of a value. It must be
// far below any legitimate use cycle: start cycles may be negative
// (bottom-up SMS placement), so -1 would collide.
const noUse = -1 << 40

// comm is the interconnect routing of one value. On a shared bus a single
// broadcast transfer departs the home cluster at start and arrives in every
// other cluster at start+LatBus. On point-to-point links each destination
// cluster has its own transfer on the home→dest link, recorded in dests;
// start is unused.
type comm struct {
	start int
	dests map[int]int // destination cluster → departure cycle (PointToPoint)
}

// startFor returns the departure cycle of the transfer serving cluster c,
// or ok=false when no transfer reaches c.
func (cm *comm) startFor(c int, p2p bool) (int, bool) {
	if !p2p {
		return cm.start, true
	}
	s, ok := cm.dests[c]
	return s, ok
}

// memRoute is a value routed through memory: one store in the home cluster
// and one load per destination cluster.
type memRoute struct {
	store int         // store issue cycle (home cluster memory port)
	loads map[int]int // destination cluster → load issue cycle
}

// spill is spill code for a register-pressure-bound value in its home
// cluster: the value is stored right after definition and reloaded before
// its first use, freeing the register in between (§3.3.2).
type spill struct {
	store, load int
}

// value tracks the register residency of one produced value.
type value struct {
	home int // producing cluster
	def  int // cycle the value is written (producer start + latency)

	// minUse/maxUse record, per cluster, the earliest and latest cycles at
	// which a scheduled consumer reads the value there (consumer start +
	// II·dist); noUse marks a cluster with no consumers. Indexed by cluster.
	minUse, maxUse []int

	comm  *comm     // bus transfer, if the value crosses clusters by bus
	mem   *memRoute // memory route, if transformed
	spill *spill    // spill code in the home cluster, if transformed
}

func newValue(home, def, clusters int) *value {
	v := &value{home: home, def: def, minUse: make([]int, clusters), maxUse: make([]int, clusters)}
	for c := 0; c < clusters; c++ {
		v.minUse[c], v.maxUse[c] = noUse, noUse
	}
	return v
}

// arrival returns the cycle the value becomes readable in cluster c, or
// (0, false) when it is not routed there.
func (v *value) arrival(c int, m *machine.Config) (int, bool) {
	if c == v.home {
		if v.spill != nil {
			// Readable before the spill store and after the reload; the
			// conservative single figure is the reload completion for uses
			// after the gap. Callers needing the gap use spans().
			return v.def, true
		}
		return v.def, true
	}
	if v.mem != nil {
		if l, ok := v.mem.loads[c]; ok {
			return l + m.OpLatency(isa.Load), true
		}
		return 0, false
	}
	if v.comm != nil {
		if s, ok := v.comm.startFor(c, m.Topology == machine.PointToPoint); ok {
			return s + m.LatBus, true
		}
	}
	return 0, false
}

// spans returns the register intervals the value occupies in cluster c
// under its current routing and uses.
func (v *value) spans(c int, m *machine.Config) []regpress.Span {
	if c == v.home {
		end := v.def + 1 // the write itself occupies the register
		if u := v.maxUse[c]; u != noUse && u+1 > end {
			end = u + 1
		}
		// The register must survive until an outgoing transfer or store.
		if v.comm != nil {
			if v.comm.dests == nil {
				if v.comm.start+1 > end {
					end = v.comm.start + 1
				}
			} else {
				for _, s := range v.comm.dests {
					if s+1 > end {
						end = s + 1
					}
				}
			}
		}
		if v.mem != nil && v.mem.store+1 > end {
			end = v.mem.store + 1
		}
		if v.spill == nil {
			return []regpress.Span{{Start: v.def, End: end}}
		}
		// Spilled: live [def, store+1) and [load+lat, end).
		s1 := regpress.Span{Start: v.def, End: v.spill.store + 1}
		s2 := regpress.Span{Start: v.spill.load + m.OpLatency(isa.Load), End: end}
		if s2.End <= s2.Start {
			return []regpress.Span{s1}
		}
		return []regpress.Span{s1, s2}
	}
	// Remote cluster: live from arrival to last use there.
	arr, ok := v.arrival(c, m)
	if !ok {
		return nil
	}
	end := v.maxUse[c]
	if end == noUse {
		return nil
	}
	return []regpress.Span{{Start: arr, End: end + 1}}
}

// state is the mutable scheduling state for one II attempt.
type state struct {
	g  *ddg.Graph
	m  *machine.Config
	ii int

	time    []int  // node → start cycle (may be negative; see sched)
	cluster []int  // node → cluster
	sched   []bool // node → placed?
	rt      *mrt.Table
	press   []*regpress.Pressure // per cluster
	vals    []*value             // per node; nil until the producer schedules

	nMemOps [2]int // [stores, loads] added by transformations (statistics)
	simBuf  []int  // scratch for plan-time register simulation
}

func newState(g *ddg.Graph, m *machine.Config, ii int) *state {
	st := &state{
		g: g, m: m, ii: ii,
		time:    make([]int, g.N()),
		cluster: make([]int, g.N()),
		sched:   make([]bool, g.N()),
		rt:      mrt.New(m, ii),
		press:   make([]*regpress.Pressure, m.Clusters),
		vals:    make([]*value, g.N()),
	}
	for i := range st.time {
		st.time[i], st.cluster[i] = -1, -1
	}
	for c := range st.press {
		st.press[c] = regpress.New(ii)
	}
	return st
}

// addSpans registers the spans of value v in cluster c with the pressure
// tracker.
func (st *state) addValueSpans(v *value, c int) {
	for _, sp := range v.spans(c, st.m) {
		st.press[c].Add(sp.Start, sp.End)
	}
}

// removeValueSpans removes the current spans of value v in cluster c.
func (st *state) removeValueSpans(v *value, c int) {
	for _, sp := range v.spans(c, st.m) {
		st.press[c].Remove(sp.Start, sp.End)
	}
}

// withSpanUpdate runs mutate on v while keeping the pressure trackers
// consistent: spans in every cluster are removed, the mutation applied, and
// the new spans added.
func (st *state) withSpanUpdate(v *value, mutate func()) {
	for c := 0; c < st.m.Clusters; c++ {
		st.removeValueSpans(v, c)
	}
	mutate()
	for c := 0; c < st.m.Clusters; c++ {
		st.addValueSpans(v, c)
	}
}

// maxLive returns the current MaxLive of cluster c.
func (st *state) maxLive(c int) int { return st.press[c].MaxLive() }

// regsOK reports whether every cluster currently fits its register file.
func (st *state) regsOK() bool {
	for c := 0; c < st.m.Clusters; c++ {
		if st.maxLive(c) > st.m.RegsIn(c) {
			return false
		}
	}
	return true
}

// p2p reports whether the interconnect is point-to-point (per-destination
// transfers) rather than the shared broadcast bus.
func (st *state) p2p() bool { return st.m.Topology == machine.PointToPoint }

// freeXfer and friends report remaining capacity, used by the figure of
// merit (fraction of *free* resources a candidate consumes).
func (st *state) freeXfer() int { return st.rt.FreeXferSlots() }

func (st *state) freeMem(c int) int { return st.rt.FreeOpSlots(c, isa.MemUnit) }

func (st *state) freeLifetime(c int) int64 {
	return st.press[c].Free(st.m.RegsIn(c))
}
