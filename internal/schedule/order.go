package schedule

import (
	"repro/internal/ddg"
	"repro/internal/machine"
)

// Order computes the node scheduling order following the Swing Modulo
// Scheduling ordering algorithm (Llosa et al., PACT'96), which the paper
// uses verbatim (§3.3.3): recurrences are processed in decreasing RecMII
// order, each extended with the nodes on paths to previously ordered
// groups, and within a group the order alternates between top-down and
// bottom-up sweeps so that every node (except the first of a group) is
// ordered while having scheduled neighbors on one side only. Priorities
// within a sweep use criticality (mobility, then position), computed from
// the ASAP/ALAP times at II = MII.
func Order(g *ddg.Graph, m *machine.Config, mii int) []int {
	n := g.N()
	if n == 0 {
		return nil
	}
	times, ok := g.StartTimes(m, mii, nil)
	if !ok {
		// mii below RecMII cannot happen when mii = g.MII(m); fall back to
		// the smallest feasible II to keep Order total.
		times, _ = g.StartTimes(m, g.RecMII(nil), nil)
	}

	groups := buildGroups(g)
	ordered := make([]bool, n)
	order := make([]int, 0, n)

	// Adjacency over all dependence edges (data and memory ordering alike:
	// both constrain placement windows).
	preds := make([][]int, n)
	succs := make([][]int, n)
	for _, e := range g.Edges {
		if e.From == e.To {
			continue
		}
		preds[e.To] = append(preds[e.To], e.From)
		succs[e.From] = append(succs[e.From], e.To)
	}

	mobility := func(v int) int { return times.Latest[v] - times.Earliest[v] }

	// pick returns the best candidate of set under the sweep direction:
	// most critical first (lowest mobility); ties prefer earlier ASAP for
	// top-down sweeps and later ALAP for bottom-up ones; final tie on ID.
	pick := func(set map[int]bool, topDown bool) int {
		best := -1
		for v := range set {
			if best == -1 {
				best = v
				continue
			}
			mv, mb := mobility(v), mobility(best)
			switch {
			case mv != mb:
				if mv < mb {
					best = v
				}
			case topDown && times.Earliest[v] != times.Earliest[best]:
				if times.Earliest[v] < times.Earliest[best] {
					best = v
				}
			case !topDown && times.Latest[v] != times.Latest[best]:
				if times.Latest[v] > times.Latest[best] {
					best = v
				}
			default:
				if v < best {
					best = v
				}
			}
		}
		return best
	}

	for _, group := range groups {
		inGroup := make(map[int]bool, len(group))
		for _, v := range group {
			if !ordered[v] {
				inGroup[v] = true
			}
		}
		for len(inGroup) > 0 {
			// Seed set: group nodes adjacent to already-ordered nodes.
			td := map[int]bool{} // have an ordered predecessor → top-down
			bu := map[int]bool{} // have an ordered successor → bottom-up
			for v := range inGroup {
				for _, p := range preds[v] {
					if ordered[p] {
						td[v] = true
						break
					}
				}
				for _, s := range succs[v] {
					if ordered[s] {
						bu[v] = true
						break
					}
				}
			}
			topDown := true
			var frontier map[int]bool
			switch {
			case len(td) > 0:
				frontier = td
			case len(bu) > 0:
				frontier, topDown = bu, false
			default:
				// Nothing ordered yet touches this group: start top-down
				// from the group's most critical source-like node.
				frontier = map[int]bool{pick(inGroup, true): true}
			}
			// Sweep until the frontier empties; then swing direction.
			for len(frontier) > 0 {
				v := pick(frontier, topDown)
				delete(frontier, v)
				if ordered[v] {
					continue
				}
				ordered[v] = true
				delete(inGroup, v)
				order = append(order, v)
				// Grow the frontier along the sweep direction.
				var next []int
				if topDown {
					next = succs[v]
				} else {
					next = preds[v]
				}
				for _, w := range next {
					if inGroup[w] && !ordered[w] {
						frontier[w] = true
					}
				}
				if len(frontier) == 0 {
					// Swing: continue in the opposite direction from the
					// nodes adjacent to what has been ordered so far.
					topDown = !topDown
					for w := range inGroup {
						adj := preds[w]
						if !topDown {
							adj = succs[w]
						}
						for _, x := range adj {
							if ordered[x] {
								frontier[w] = true
								break
							}
						}
					}
					if len(frontier) == 0 {
						break // disconnected remainder: outer loop reseeds
					}
				}
			}
		}
	}
	return order
}

// buildGroups returns the SMS set list: one group per recurrence in
// decreasing RecMII order, each union the nodes on paths between it and the
// previously grouped nodes; remaining nodes form one final group per
// weakly-connected component.
func buildGroups(g *ddg.Graph) [][]int {
	n := g.N()
	recs := g.Recurrences()
	grouped := make([]bool, n)
	var groups [][]int

	reach := reachability(g)

	for _, rec := range recs {
		group := map[int]bool{}
		for _, v := range rec.Nodes {
			if !grouped[v] {
				group[v] = true
			}
		}
		if len(group) == 0 {
			continue
		}
		// Nodes on paths between earlier groups and this recurrence:
		// v with (grouped ⇝ v and v ⇝ rec) or (rec ⇝ v and v ⇝ grouped).
		for v := 0; v < n; v++ {
			if grouped[v] || group[v] {
				continue
			}
			fromPrev, toPrev := false, false
			for w := 0; w < n; w++ {
				if grouped[w] {
					if reach[w][v] {
						fromPrev = true
					}
					if reach[v][w] {
						toPrev = true
					}
				}
			}
			toRec, fromRec := false, false
			for _, w := range rec.Nodes {
				if reach[v][w] {
					toRec = true
				}
				if reach[w][v] {
					fromRec = true
				}
			}
			if (fromPrev && toRec) || (fromRec && toPrev) {
				group[v] = true
			}
		}
		flat := make([]int, 0, len(group))
		for v := 0; v < n; v++ {
			if group[v] {
				flat = append(flat, v)
				grouped[v] = true
			}
		}
		groups = append(groups, flat)
	}

	// Remaining nodes: weakly-connected components, in node-ID order.
	undirected := make([][]int, n)
	for _, e := range g.Edges {
		if e.From != e.To {
			undirected[e.From] = append(undirected[e.From], e.To)
			undirected[e.To] = append(undirected[e.To], e.From)
		}
	}
	for v := 0; v < n; v++ {
		if grouped[v] {
			continue
		}
		var comp []int
		stack := []int{v}
		grouped[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, x)
			for _, w := range undirected[x] {
				if !grouped[w] {
					grouped[w] = true
					stack = append(stack, w)
				}
			}
		}
		groups = append(groups, comp)
	}
	return groups
}

// reachability returns the boolean transitive closure over all edges
// (O(n·E) BFS per node; loop bodies are small).
func reachability(g *ddg.Graph) [][]bool {
	n := g.N()
	reach := make([][]bool, n)
	for v := 0; v < n; v++ {
		reach[v] = make([]bool, n)
		stack := []int{v}
		seen := make([]bool, n)
		seen[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, ei := range g.Out(x) {
				w := g.Edges[ei].To
				if !seen[w] {
					seen[w] = true
					reach[v][w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return reach
}
