package schedule

import (
	"repro/internal/ddg"
	"repro/internal/isa"
)

// Ejection: a node whose scheduled predecessors and successors pin an empty
// placement window would fail at every II (zero-distance windows do not
// grow with II). Like Rau's iterative modulo scheduling, the scheduler then
// unschedules the binding neighbors and retries; ejected nodes re-enter the
// work list. A budget bounds total ejections per II attempt.

// ejectVictims returns the scheduled neighbors to evict so that node v
// regains a one-sided window: its scheduled successors when both sides are
// pinned (the predecessors placed first usually carry more context), or
// nil when ejection cannot help.
func (st *state) ejectVictims(v int) []int {
	var succs []int
	hasPred := false
	seen := map[int]bool{}
	for _, ei := range st.g.In(v) {
		if e := st.g.Edges[ei]; e.From != v && st.sched[e.From] {
			hasPred = true
			break
		}
	}
	for _, ei := range st.g.Out(v) {
		e := st.g.Edges[ei]
		if e.To != v && st.sched[e.To] && !seen[e.To] {
			seen[e.To] = true
			succs = append(succs, e.To)
		}
	}
	if hasPred && len(succs) > 0 {
		return succs
	}
	return nil
}

// unschedule removes node v from the schedule, releasing its functional
// unit, its value's registers and routing resources, and shrinking the
// lifetimes of the values it consumed.
func (st *state) unschedule(v int) {
	node := st.g.Nodes[v]
	st.rt.RemoveOp(st.cluster[v], node.Op.Unit(), st.time[v])
	if val := st.vals[v]; val != nil {
		for c := 0; c < st.m.Clusters; c++ {
			st.removeValueSpans(val, c)
		}
		if val.comm != nil {
			st.removeXfersOf(val.home, val.comm)
		}
		if val.mem != nil {
			st.rt.RemoveOp(val.home, isa.MemUnit, val.mem.store)
			st.nMemOps[0]--
			for c, l := range val.mem.loads {
				st.rt.RemoveOp(c, isa.MemUnit, l)
				st.nMemOps[1]--
			}
		}
		if val.spill != nil {
			st.rt.RemoveOp(val.home, isa.MemUnit, val.spill.store)
			st.rt.RemoveOp(val.home, isa.MemUnit, val.spill.load)
			st.nMemOps[0]--
			st.nMemOps[1]--
		}
		st.vals[v] = nil
	}
	st.time[v], st.cluster[v] = 0, 0
	st.sched[v] = false

	// The values v consumed may shrink (and shed now-unused routing).
	seen := map[int]bool{}
	for _, ei := range st.g.In(v) {
		e := st.g.Edges[ei]
		if e.Kind != ddg.Data || e.From == v || !st.sched[e.From] || seen[e.From] {
			continue
		}
		seen[e.From] = true
		st.rebuildUses(e.From)
	}
}

// rebuildUses recomputes the use records of the value produced by u from
// the currently scheduled consumers and prunes routing (bus transfer,
// memory loads) that no longer serves anyone.
func (st *state) rebuildUses(u int) {
	val := st.vals[u]
	if val == nil {
		return
	}
	st.withSpanUpdate(val, func() {
		for c := range val.minUse {
			val.minUse[c], val.maxUse[c] = noUse, noUse
		}
		for _, ei := range st.g.Out(u) {
			e := st.g.Edges[ei]
			if e.Kind != ddg.Data || !st.sched[e.To] {
				continue
			}
			c := st.cluster[e.To]
			use := st.time[e.To] + st.ii*e.Dist
			if cur := val.minUse[c]; cur == noUse || use < cur {
				val.minUse[c] = use
			}
			if cur := val.maxUse[c]; cur == noUse || use > cur {
				val.maxUse[c] = use
			}
		}
		if val.mem != nil {
			for c, l := range val.mem.loads {
				if val.minUse[c] == noUse {
					st.rt.RemoveOp(c, isa.MemUnit, l)
					st.nMemOps[1]--
					delete(val.mem.loads, c)
				}
			}
			if len(val.mem.loads) == 0 {
				st.rt.RemoveOp(val.home, isa.MemUnit, val.mem.store)
				st.nMemOps[0]--
				val.mem = nil
			}
		}
		if val.comm != nil {
			if val.comm.dests != nil {
				// Point-to-point: drop the transfers of destinations that
				// lost their last consumer.
				for c, s := range val.comm.dests {
					if val.minUse[c] == noUse {
						st.rt.RemoveXfer(val.home, c, s)
						delete(val.comm.dests, c)
					}
				}
				if len(val.comm.dests) == 0 {
					val.comm = nil
				}
			} else {
				cross := false
				for c, first := range val.minUse {
					if c != val.home && first != noUse {
						cross = true
						break
					}
				}
				if !cross {
					st.rt.RemoveXfer(val.home, -1, val.comm.start)
					val.comm = nil
				}
			}
		}
	})
}
