package schedule

import (
	"sort"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
)

// ListSchedule produces a non-pipelined schedule of one loop iteration:
// the fallback the paper applies to the few loops whose initiation interval
// escalates past the point where modulo scheduling is worthwhile (§4.1).
// Iterations execute back to back, so the effective II equals the schedule
// length and no value lives across iterations.
//
// Nodes are placed greedily in ALAP-criticality order at the earliest cycle
// where their dependences (with bus latency on cut data edges) and a
// functional unit are available. Cluster choice follows assign when
// non-nil; otherwise each node goes to the least-loaded feasible cluster.
func ListSchedule(g *ddg.Graph, m *machine.Config, assign []int) *Schedule {
	n := g.N()
	s := &Schedule{
		Time:    make([]int, n),
		Cluster: make([]int, n),
		MaxLive: make([]int, m.Clusters),
		List:    true,
	}
	if n == 0 {
		s.II, s.SL = 1, 1
		return s
	}

	// Criticality order: ALAP under a dependence-only schedule at a large
	// II (loop-carried edges are inactive since iterations do not overlap).
	big := 1
	for _, e := range g.Edges {
		big += e.Lat
	}
	times, ok := g.StartTimes(m, big, nil)
	if !ok {
		big = g.RecMII(nil)
		times, _ = g.StartTimes(m, big, nil)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if times.Latest[order[a]] != times.Latest[order[b]] {
			return times.Latest[order[a]] < times.Latest[order[b]]
		}
		return order[a] < order[b]
	})

	// Resource tables indexed by absolute cycle (grown on demand).
	type row [isa.NumUnitKinds]int
	var usage [][]row // [cluster][cycle]
	usage = make([][]row, m.Clusters)
	free := func(c, k, cyc int) bool {
		if cyc >= len(usage[c]) {
			return true
		}
		return usage[c][cyc][k] < m.UnitsIn(c, isa.UnitKind(k))
	}
	take := func(c, k, cyc int) {
		for cyc >= len(usage[c]) {
			usage[c] = append(usage[c], row{})
		}
		usage[c][cyc][k]++
	}
	load := make([]int, m.Clusters)

	for i := range s.Time {
		s.Time[i], s.Cluster[i] = -1, -1
	}
	for _, v := range order {
		op := g.Nodes[v].Op
		kind := int(op.Unit())
		bestC, bestT := -1, 0
		var candidates []int
		if assign != nil && m.UnitsIn(assign[v], op.Unit()) > 0 {
			candidates = []int{assign[v]}
		} else {
			// No assignment — or the assigned cluster cannot execute this
			// operation kind (possible on heterogeneous machines): consider
			// every cluster that can.
			candidates = make([]int, 0, m.Clusters)
			for c := 0; c < m.Clusters; c++ {
				if m.UnitsIn(c, op.Unit()) > 0 {
					candidates = append(candidates, c)
				}
			}
			if len(candidates) == 0 {
				panic("schedule: no cluster can execute " + op.String())
			}
		}
		for _, c := range candidates {
			// Dependence-ready cycle in this cluster.
			ready := 0
			for _, ei := range g.In(v) {
				e := g.Edges[ei]
				if e.Dist > 0 || s.Time[e.From] < 0 {
					continue // loop-carried: satisfied across iterations
				}
				t := s.Time[e.From] + e.Lat
				if e.Kind == ddg.Data && s.Cluster[e.From] != c {
					t += m.LatBus
				}
				if t > ready {
					ready = t
				}
			}
			t := ready
			for !free(c, kind, t) {
				t++
			}
			if bestC == -1 || t < bestT || (t == bestT && load[c] < load[bestC]) {
				bestC, bestT = c, t
			}
		}
		take(bestC, kind, bestT)
		load[bestC]++
		s.Time[v] = bestT
		s.Cluster[v] = bestC
		if f := bestT + m.OpLatency(op); f > s.SL {
			s.SL = f
		}
	}
	if s.SL < 1 {
		s.SL = 1
	}
	// Loop-carried dependences are normally satisfied by the non-overlapping
	// iterations, but an edge latency beyond the producer's completion — or
	// the transfer latency of a cut data edge — can still outrun the
	// iteration period. Growing SL only loosens these constraints, so bump
	// it until every one holds.
	for changed := true; changed; {
		changed = false
		for _, e := range g.Edges {
			if e.Dist == 0 {
				continue
			}
			lat := e.Lat
			if e.Kind == ddg.Data && s.Cluster[e.From] != s.Cluster[e.To] {
				lat += m.LatBus
			}
			if deficit := s.Time[e.From] + lat - s.Time[e.To] - s.SL*e.Dist; deficit > 0 {
				s.SL += (deficit + e.Dist - 1) / e.Dist
				changed = true
			}
		}
	}
	s.II = s.SL // iterations do not overlap

	// Register pressure: within one iteration, values live def→last use.
	for c := 0; c < m.Clusters; c++ {
		lastUse := map[int]int{}
		for _, e := range g.Edges {
			if e.Kind != ddg.Data || e.Dist > 0 || s.Cluster[e.To] != c {
				continue
			}
			if t := s.Time[e.To]; t > lastUse[e.From] {
				lastUse[e.From] = t
			}
		}
		depth := make([]int, s.SL+1)
		for u, end := range lastUse {
			def := s.Time[u] + m.OpLatency(g.Nodes[u].Op)
			for t := def; t <= end && t < len(depth); t++ {
				depth[t]++
			}
		}
		for _, d := range depth {
			if d > s.MaxLive[c] {
				s.MaxLive[c] = d
			}
		}
	}
	return s
}
