package schedule

import (
	"sort"

	"repro/internal/isa"
)

// transform applies one §3.3.2 transformation aimed at relieving the most
// saturated resource (the failure reason of the blocked node breaks ties in
// its favor). It reports whether any transformation was applied:
//
//   - register pressure → insert spill code (store after def, reload before
//     first use) in the most pressured cluster;
//   - bus pressure → reroute a communicated value through memory
//     (store in the source cluster, loads in the destinations);
//   - memory pressure → reroute a memory-routed value back over the bus, or
//     remove spill code.
func (st *state) transform(reason FailReason) bool {
	type target struct {
		apply func() bool
		sat   float64
	}
	var targets []target

	// Register saturation per cluster.
	for c := 0; c < st.m.Clusters; c++ {
		c := c
		sat := float64(st.maxLive(c)) / float64(st.m.RegsIn(c))
		if reason == FailRegs {
			sat += 1 // prioritize the failing resource class
		}
		targets = append(targets, target{sat: sat, apply: func() bool { return st.trySpill(c) }})
	}
	// Interconnect saturation.
	{
		sat := st.rt.XferUtilization()
		if reason == FailBus {
			sat += 1
		}
		targets = append(targets, target{sat: sat, apply: st.tryBusToMem})
	}
	// Memory saturation per cluster.
	for c := 0; c < st.m.Clusters; c++ {
		c := c
		sat := st.rt.MemUtilization(c)
		if reason == FailMem {
			sat += 1
		}
		targets = append(targets, target{sat: sat, apply: func() bool {
			return st.tryMemToBus(c) || st.tryUnspill(c)
		}})
	}

	sort.SliceStable(targets, func(i, j int) bool { return targets[i].sat > targets[j].sat })
	for _, tg := range targets {
		if tg.apply() {
			return true
		}
	}
	return false
}

// trySpill inserts spill code for the value in cluster c whose
// definition-to-first-use gap is largest: the register is freed between the
// store and the reload (§3.3.2: "register pressure can be reduced by
// inserting spill code", at the cost of memory ports).
func (st *state) trySpill(c int) bool {
	m := st.m
	latS, latL := m.OpLatency(isa.Store), m.OpLatency(isa.Load)
	// Candidates: unspilled values home in c with a local use and a gap
	// wide enough that freeing [store+1, load+latLoad) pays for the two
	// memory operations.
	type cand struct {
		id  int
		gap int
	}
	var cands []cand
	for id, val := range st.vals {
		if val == nil || val.home != c || val.spill != nil || val.mem != nil {
			continue
		}
		first := val.minUse[c]
		if first == noUse {
			continue
		}
		gap := first - val.def
		if gap >= latS+latL+2 {
			cands = append(cands, cand{id, gap})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gap != cands[j].gap {
			return cands[i].gap > cands[j].gap
		}
		return cands[i].id < cands[j].id
	})
	for _, cd := range cands {
		val := st.vals[cd.id]
		first := val.minUse[c]
		// Earliest free store slot after def; latest free load slot that
		// still feeds the first use.
		store, ok := st.findMemSlot(c, val.def, first-latL-latS, +1)
		if !ok {
			continue
		}
		// Existing transfers must depart while the value is still
		// register-resident, i.e. before the spill store frees the register.
		if val.comm != nil {
			late := false
			if val.comm.dests == nil {
				late = val.comm.start > store
			} else {
				for _, s := range val.comm.dests {
					if s > store {
						late = true
					}
				}
			}
			if late {
				continue
			}
		}
		// Reserve the store before searching the load so both cannot claim
		// the last unit of a shared modulo slot.
		st.rt.PlaceOp(c, isa.MemUnit, store)
		load, ok := st.findMemSlot(c, first-latL, store+latS, -1)
		if !ok || load < store+latS || load+latL-store <= latS+latL {
			st.rt.RemoveOp(c, isa.MemUnit, store)
			continue
		}
		st.rt.PlaceOp(c, isa.MemUnit, load)
		st.withSpanUpdate(val, func() {
			val.spill = &spill{store: store, load: load}
		})
		st.nMemOps[0]++
		st.nMemOps[1]++
		return true
	}
	return false
}

// tryUnspill removes spill code in cluster c (freeing its memory ports)
// when the register file can absorb the restored lifetime.
func (st *state) tryUnspill(c int) bool {
	for id, val := range st.vals {
		_ = id
		if val == nil || val.home != c || val.spill == nil {
			continue
		}
		sp := val.spill
		st.withSpanUpdate(val, func() { val.spill = nil })
		if st.maxLive(c) > st.m.RegsIn(c) {
			st.withSpanUpdate(val, func() { val.spill = sp })
			continue
		}
		st.rt.RemoveOp(c, isa.MemUnit, sp.store)
		st.rt.RemoveOp(c, isa.MemUnit, sp.load)
		st.nMemOps[0]--
		st.nMemOps[1]--
		return true
	}
	return false
}

// tryBusToMem reroutes one bus-communicated value through memory, freeing
// LatBus bus slots at the cost of a store and one load per destination
// cluster.
func (st *state) tryBusToMem() bool {
	m := st.m
	latS, latL := m.OpLatency(isa.Store), m.OpLatency(isa.Load)
	for id, val := range st.vals {
		_ = id
		if val == nil || val.comm == nil || val.spill != nil {
			continue
		}
		// Destination clusters and their earliest deadlines.
		dests := make(map[int]int)
		feasible := true
		for c, first := range val.minUse {
			if c == val.home || first == noUse {
				continue
			}
			dests[c] = first
			if first-latL < val.def+latS {
				feasible = false
			}
		}
		if len(dests) == 0 || !feasible {
			continue
		}
		// Store as early as possible, loads as late as their deadline allows.
		minFirst := 1 << 30
		for _, f := range dests {
			if f < minFirst {
				minFirst = f
			}
		}
		store, ok := st.findMemSlot(val.home, val.def, minFirst-latL-latS, +1)
		if !ok {
			continue
		}
		loads := make(map[int]int, len(dests))
		ok = true
		for c, first := range dests {
			l, found := st.findMemSlot(c, first-latL, store+latS, -1)
			if !found || l < store+latS {
				ok = false
				break
			}
			loads[c] = l
		}
		if !ok {
			continue
		}
		// Apply, then verify register pressure (arrival times change);
		// revert on overflow.
		oldComm := val.comm
		st.rt.PlaceOp(val.home, isa.MemUnit, store)
		for c, l := range loads {
			st.rt.PlaceOp(c, isa.MemUnit, l)
		}
		st.withSpanUpdate(val, func() {
			val.comm = nil
			val.mem = &memRoute{store: store, loads: loads}
		})
		if !st.regsOK() {
			st.withSpanUpdate(val, func() {
				val.mem = nil
				val.comm = oldComm
			})
			st.rt.RemoveOp(val.home, isa.MemUnit, store)
			for c, l := range loads {
				st.rt.RemoveOp(c, isa.MemUnit, l)
			}
			continue
		}
		st.removeXfersOf(val.home, oldComm)
		st.nMemOps[0]++
		st.nMemOps[1] += len(loads)
		return true
	}
	return false
}

// tryMemToBus reroutes a memory-routed value that touches cluster c back
// over the bus, freeing memory ports (§3.3.2: "memory pressure can be
// reduced … by inserting copy operations that use the interconnection
// network").
func (st *state) tryMemToBus(c int) bool {
	for id, val := range st.vals {
		_ = id
		if val == nil || val.mem == nil {
			continue
		}
		if _, touches := val.mem.loads[c]; !touches && val.home != c {
			continue
		}
		// The single transfer must meet every destination's deadline.
		minFirst := 1 << 30
		for cc, f := range val.minUse {
			if cc == val.home || f == noUse {
				continue
			}
			if f < minFirst {
				minFirst = f
			}
		}
		if minFirst == 1<<30 {
			continue
		}
		newComm, ok := st.placeXfersFor(val, minFirst)
		if !ok {
			continue
		}
		oldMem := val.mem
		st.withSpanUpdate(val, func() {
			val.mem = nil
			val.comm = newComm
		})
		if !st.regsOK() {
			st.withSpanUpdate(val, func() {
				val.comm = nil
				val.mem = oldMem
			})
			st.removeXfersOf(val.home, newComm)
			continue
		}
		st.rt.RemoveOp(val.home, isa.MemUnit, oldMem.store)
		for cc, l := range oldMem.loads {
			st.rt.RemoveOp(cc, isa.MemUnit, l)
		}
		st.nMemOps[0]--
		st.nMemOps[1] -= len(oldMem.loads)
		return true
	}
	return false
}

// findMemSlot scans for a free memory-port cycle in cluster c from `from`
// toward `to` in the given direction (+1/-1), inclusive, bounded to one II
// window of distinct slots.
func (st *state) findMemSlot(c, from, to, dir int) (int, bool) {
	n := 0
	for t := from; n < st.ii; t += dir {
		if dir > 0 && t > to || dir < 0 && t < to {
			break
		}
		if st.rt.CanPlaceOp(c, isa.MemUnit, t) {
			return t, true
		}
		n++
	}
	return 0, false
}

// placeXfersFor reserves the interconnect transfers that route val to every
// cluster where it has scheduled uses: one shared-bus broadcast meeting the
// tightest deadline (minFirst), or one point-to-point transfer per
// destination meeting that destination's own deadline. On failure nothing
// stays reserved.
func (st *state) placeXfersFor(val *value, minFirst int) (*comm, bool) {
	m := st.m
	if st.p2p() {
		dests := map[int]int{}
		for c, first := range val.minUse {
			if c == val.home || first == noUse {
				continue
			}
			start := -1
			for s := val.def; s+m.LatBus <= first && s < val.def+st.ii; s++ {
				if st.rt.CanPlaceXfer(val.home, c, s) {
					start = s
					break
				}
			}
			if start < 0 {
				for cc, ss := range dests {
					st.rt.RemoveXfer(val.home, cc, ss)
				}
				return nil, false
			}
			st.rt.PlaceXfer(val.home, c, start)
			dests[c] = start
		}
		if len(dests) == 0 {
			return nil, false
		}
		return &comm{dests: dests}, true
	}
	for s := val.def; s+m.LatBus <= minFirst && s < val.def+st.ii; s++ {
		if st.rt.CanPlaceXfer(val.home, -1, s) {
			st.rt.PlaceXfer(val.home, -1, s)
			return &comm{start: s}, true
		}
	}
	return nil, false
}

// removeXfersOf releases every interconnect reservation of cm (nil-safe).
func (st *state) removeXfersOf(home int, cm *comm) {
	if cm == nil {
		return
	}
	if cm.dests == nil {
		st.rt.RemoveXfer(home, -1, cm.start)
		return
	}
	for c, s := range cm.dests {
		st.rt.RemoveXfer(home, c, s)
	}
}
