package schedule

import (
	"fmt"
	"strings"

	"repro/internal/ddg"
	"repro/internal/machine"
)

// FormatKernel renders the steady-state kernel of a modulo schedule as a
// reservation-table picture: one row per modulo slot, one column per
// cluster, listing the operations issued there (with their pipeline stage)
// and the bus transfers in flight.
func FormatKernel(s *Schedule, g *ddg.Graph, m *machine.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel II=%d SL=%d stages=%d\n", s.II, s.SL, s.Stages())

	cells := make([][]string, s.II) // [slot][cluster]
	for i := range cells {
		cells[i] = make([]string, m.Clusters)
	}
	for v, nd := range g.Nodes {
		t := s.Time[v]
		slot := t % s.II
		if slot < 0 {
			slot += s.II
		}
		stage := t / s.II
		label := nd.Name
		if label == "" {
			label = fmt.Sprintf("n%d:%s", v, nd.Op)
		}
		entry := fmt.Sprintf("%s(s%d)", label, stage)
		c := s.Cluster[v]
		if cells[slot][c] != "" {
			cells[slot][c] += " "
		}
		cells[slot][c] += entry
	}

	bus := make([]string, s.II)
	for _, c := range s.Comms {
		for d := 0; d < m.XferOccupancy(); d++ {
			slot := (c.Start + d) % s.II
			if slot < 0 {
				slot += s.II
			}
			if bus[slot] != "" {
				bus[slot] += " "
			}
			bus[slot] += fmt.Sprintf("xfer(n%d)", c.Producer)
		}
	}
	for _, op := range s.MemOps {
		slot := op.Cycle % s.II
		if slot < 0 {
			slot += s.II
		}
		kind := "reload"
		if op.IsStore {
			kind = "spillst"
		}
		entry := fmt.Sprintf("%s(n%d)", kind, op.Producer)
		if cells[slot][op.Cluster] != "" {
			cells[slot][op.Cluster] += " "
		}
		cells[slot][op.Cluster] += entry
	}

	width := 24
	for _, row := range cells {
		for _, cell := range row {
			if len(cell)+2 > width {
				width = len(cell) + 2
			}
		}
	}
	fmt.Fprintf(&b, "%-5s", "slot")
	for c := 0; c < m.Clusters; c++ {
		fmt.Fprintf(&b, "%-*s", width, fmt.Sprintf("cluster %d", c))
	}
	if m.NBus > 0 {
		b.WriteString("bus")
	}
	b.WriteString("\n")
	for slot := 0; slot < s.II; slot++ {
		fmt.Fprintf(&b, "%-5d", slot)
		for c := 0; c < m.Clusters; c++ {
			fmt.Fprintf(&b, "%-*s", width, cells[slot][c])
		}
		if m.NBus > 0 {
			b.WriteString(bus[slot])
		}
		b.WriteString("\n")
	}
	return b.String()
}
