package schedule

import (
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
)

// placeAll schedules a whole graph with URACAM mode at the given II and
// returns the internal state for white-box transformation tests.
func placeAll(t *testing.T, g *ddg.Graph, m *machine.Config, ii int) *state {
	t.Helper()
	st := newState(g, m, ii)
	static, ok := g.StartTimes(m, ii, nil)
	if !ok {
		t.Fatal("infeasible II")
	}
	opts := &Options{Mode: ModeURACAM}
	for _, v := range Order(g, m, ii) {
		placed, fail := st.placeNode(v, opts, static)
		if !placed {
			t.Fatalf("node %d unplaceable: %v", v, fail)
		}
	}
	if err := st.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	return st
}

// crossGraph builds producer (cluster decided by scheduler) feeding a
// consumer, with a long def-to-use gap to make spilling attractive.
func gapGraph() *ddg.Graph {
	g := ddg.New("gap", 50)
	p := g.AddNode(isa.IntALU, "p")
	mid := p
	for i := 0; i < 6; i++ {
		v := g.AddNode(isa.IntALU, "")
		g.AddEdge(ddg.Edge{From: mid, To: v, Lat: 1, Kind: ddg.Data})
		mid = v
	}
	// p also read at the very end: long lifetime for p's value.
	g.AddEdge(ddg.Edge{From: p, To: mid, Lat: 1, Kind: ddg.Data})
	return g
}

func TestTrySpillBookkeeping(t *testing.T) {
	g := gapGraph()
	m := machine.MustClustered(2, 32, 1, 1)
	st := placeAll(t, g, m, 4)
	usedBefore := st.press[st.cluster[0]].Used()
	memBefore := st.rt.FreeOpSlots(st.cluster[0], isa.MemUnit)
	if !st.trySpill(st.cluster[0]) {
		t.Skip("no spill candidate at this II (gap too small)")
	}
	c := st.cluster[0]
	if st.press[c].Used() >= usedBefore {
		t.Errorf("spill did not reduce lifetime units: %d → %d", usedBefore, st.press[c].Used())
	}
	if got := st.rt.FreeOpSlots(c, isa.MemUnit); got != memBefore-2 {
		t.Errorf("spill consumed %d mem slots, want 2", memBefore-got)
	}
	if err := st.checkInvariants(); err != nil {
		t.Errorf("invariants after spill: %v", err)
	}
	// Unspill restores everything.
	if !st.tryUnspill(c) {
		t.Fatal("unspill refused")
	}
	if st.press[c].Used() != usedBefore {
		t.Errorf("unspill lifetime units %d, want %d", st.press[c].Used(), usedBefore)
	}
	if got := st.rt.FreeOpSlots(c, isa.MemUnit); got != memBefore {
		t.Errorf("unspill left %d free mem slots, want %d", got, memBefore)
	}
}

// forceCross builds a state with a guaranteed cross-cluster communication.
// The dependence latency is loose (5 cycles) so the consumer sits late
// enough that both the bus and the store/load path can serve it.
func forceCross(t *testing.T, m *machine.Config, ii int) (*state, *ddg.Graph) {
	t.Helper()
	g := ddg.New("cross", 50)
	p := g.AddNode(isa.IntALU, "p")
	c := g.AddNode(isa.IntALU, "c")
	g.AddEdge(ddg.Edge{From: p, To: c, Lat: 5, Kind: ddg.Data})
	st := newState(g, m, ii)
	static, _ := g.StartTimes(m, ii, nil)
	opts := &Options{Mode: ModeFixed, Assign: []int{0, 1}}
	for _, v := range Order(g, m, ii) {
		placed, fail := st.placeNode(v, opts, static)
		if !placed {
			t.Fatalf("placement failed: %v", fail)
		}
	}
	if st.vals[p].comm == nil {
		t.Fatal("no communication scheduled")
	}
	return st, g
}

func TestBusToMemAndBack(t *testing.T) {
	m := machine.MustClustered(2, 32, 1, 1)
	st, _ := forceCross(t, m, 6)
	busFree := st.rt.FreeXferSlots()
	if !st.tryBusToMem() {
		t.Fatal("bus→memory transformation refused")
	}
	if st.rt.FreeXferSlots() != busFree+m.LatBus {
		t.Errorf("bus slots not freed: %d → %d", busFree, st.rt.FreeXferSlots())
	}
	val := st.vals[0]
	if val.comm != nil || val.mem == nil {
		t.Fatal("value routing not switched to memory")
	}
	if err := st.checkInvariants(); err != nil {
		t.Errorf("invariants after bus→mem: %v", err)
	}
	// And back.
	if !st.tryMemToBus(1) {
		t.Fatal("memory→bus transformation refused")
	}
	if val.mem != nil || val.comm == nil {
		t.Fatal("value routing not switched back to bus")
	}
	if st.rt.FreeXferSlots() != busFree {
		t.Errorf("bus occupancy wrong after round trip")
	}
	if err := st.checkInvariants(); err != nil {
		t.Errorf("invariants after mem→bus: %v", err)
	}
}

func TestBusToMemRespectsDeadline(t *testing.T) {
	// With the consumer scheduled right at the bus arrival, the slower
	// store+load path cannot meet the deadline and the transformation
	// must refuse.
	m := machine.MustClustered(2, 32, 1, 1)
	st, g := forceCross(t, m, 2)
	// Consumer time: producer at t, comm at t+1, consumer ≥ t+2. The
	// store+load path needs ≥ def+latS+latL = t+1+1+2 = t+4 > consumer
	// unless the consumer sits later.
	need := st.time[1]
	def := st.vals[0].def
	if need-def >= m.OpLatency(isa.Store)+m.OpLatency(isa.Load) {
		t.Skip("consumer scheduled late enough for the memory path")
	}
	if st.tryBusToMem() {
		t.Error("bus→memory accepted although the deadline is unreachable")
	}
	_ = g
}

func TestEjectionRestoresState(t *testing.T) {
	m := machine.MustClustered(2, 32, 1, 1)
	st, g := forceCross(t, m, 6)
	// Unschedule the consumer: the producer's comm must be pruned (no
	// cross-cluster reader remains) and every pressure tracker must match
	// a freshly rebuilt one.
	st.unschedule(1)
	if st.sched[1] {
		t.Fatal("consumer still marked scheduled")
	}
	if st.vals[0].comm != nil {
		t.Error("orphaned communication not pruned")
	}
	for c, u := range st.vals[0].maxUse {
		if u != noUse {
			t.Errorf("stale use in cluster %d: %d", c, u)
		}
	}
	if err := st.checkInvariants(); err != nil {
		t.Errorf("invariants after unschedule: %v", err)
	}
	_ = g
}

func TestFormatKernel(t *testing.T) {
	g := ddg.New("fmt", 50)
	a := g.AddNode(isa.Load, "ld")
	b := g.AddNode(isa.FPAdd, "add")
	g.AddEdge(ddg.Edge{From: a, To: b, Lat: 2, Kind: ddg.Data})
	m := machine.MustClustered(2, 32, 1, 1)
	s, fail := TrySchedule(g, m, 2, &Options{Mode: ModeURACAM})
	if fail != nil {
		t.Fatal(fail)
	}
	out := FormatKernel(s, g, m)
	for _, want := range []string{"kernel II=2", "slot", "cluster 0", "cluster 1", "ld", "add"} {
		if !strings.Contains(out, want) {
			t.Errorf("kernel picture missing %q:\n%s", want, out)
		}
	}
}

func TestFormatKernelShowsTransfers(t *testing.T) {
	m := machine.MustClustered(2, 32, 1, 1)
	st, g := forceCross(t, m, 4)
	s := st.finish(0)
	out := FormatKernel(s, g, m)
	if !strings.Contains(out, "xfer(n0)") {
		t.Errorf("kernel picture missing bus transfer:\n%s", out)
	}
}
