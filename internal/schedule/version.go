package schedule

// AlgoVersion identifies the generation of the scheduling algorithms this
// binary implements. It is part of the served content address: gpserved
// salts every cache key with it and advertises it to the coordinator, so a
// mixed-version fleet can never silently serve bytes computed by a
// different algorithm under the same key.
//
// Bump it on ANY change that can alter an emitted schedule — partitioner
// candidate screening, tie-breaks, scheduler placement order, register
// allocation, list fallback — even when the change is "only" a performance
// refactor that is believed selection-neutral. The cache and the fleet's
// shadow-verify canary treat two binaries with the same AlgoVersion as
// byte-interchangeable; an unbumped behavioral change is exactly the silent
// stale-cache bug this constant exists to prevent.
//
// History:
//
//	gp/1  the original PR 1–2 schedulers
//	gp/2  incremental allocation-free partition refinement (apply/undo move
//	      engine, three-stage candidate screening, map-order tie-break fix)
const AlgoVersion = "gp/2"
