package schedule

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
)

// verifyMachines is a small grid covering the homogeneous paper
// configurations and every generalized-machine axis: heterogeneous unit
// mixes, uneven register files, a pipelined bus and point-to-point links.
func verifyMachines() []*machine.Config {
	het := machine.MustHetero("het2", []machine.ClusterSpec{
		{Units: [isa.NumUnitKinds]int{3, 1, 2}, Regs: 24},
		{Units: [isa.NumUnitKinds]int{1, 3, 2}, Regs: 40},
	}, machine.SharedBus, 1, 1, false)
	pipe := machine.MustClustered(4, 64, 1, 2)
	pipe.Pipelined = true
	pipe.Name = "4-cluster/64reg/1pbus/lat2"
	p2p := machine.MustClustered(2, 32, 1, 1)
	p2p.Topology = machine.PointToPoint
	p2p.Name = "2-cluster/32reg/p2p/lat1"
	return []*machine.Config{
		machine.NewUnified(64),
		machine.MustClustered(2, 32, 1, 1),
		machine.MustClustered(4, 64, 1, 2),
		het,
		pipe,
		p2p,
	}
}

// verifyLoop builds a connected random loop exercising transfers, spills
// and recurrences.
func verifyLoop(seed int64, n int) *ddg.Graph {
	r := rand.New(rand.NewSource(seed))
	g := ddg.New("rnd", 50)
	ops := []isa.OpClass{isa.IntALU, isa.IntMul, isa.FPAdd, isa.FPMul, isa.Load, isa.Store}
	for i := 0; i < n; i++ {
		op := ops[r.Intn(len(ops))]
		if i == 0 && op == isa.Store {
			op = isa.Load
		}
		g.AddNode(op, "")
	}
	var producers []int
	for i := 0; i < n; i++ {
		for k := 0; k < 1+r.Intn(2) && len(producers) > 0; k++ {
			g.AddDep(producers[r.Intn(len(producers))], i, 0)
		}
		if g.Nodes[i].Op.ProducesValue() {
			producers = append(producers, i)
		}
	}
	if len(producers) > 1 {
		from := producers[len(producers)-1]
		g.AddDep(from, producers[0], 1+r.Intn(2))
	}
	return g
}

func scheduleOn(t *testing.T, g *ddg.Graph, m *machine.Config) *Schedule {
	t.Helper()
	mii := g.MII(m)
	for ii := mii; ii <= mii+64; ii++ {
		s, fail := TrySchedule(g, m, ii, &Options{Mode: ModeURACAM})
		if fail == nil {
			return s
		}
	}
	t.Fatalf("no schedule found on %s", m.Name)
	return nil
}

func TestVerifyAcceptsValidSchedules(t *testing.T) {
	for _, m := range verifyMachines() {
		for seed := int64(1); seed <= 8; seed++ {
			g := verifyLoop(seed, 12+int(seed))
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			s := scheduleOn(t, g, m)
			if err := Verify(g, m, s); err != nil {
				t.Errorf("%s seed %d: %v", m.Name, seed, err)
			}
		}
	}
}

func TestVerifyAcceptsListSchedules(t *testing.T) {
	for _, m := range verifyMachines() {
		g := verifyLoop(3, 14)
		s := ListSchedule(g, m, nil)
		if !s.List {
			t.Fatal("ListSchedule did not mark the schedule")
		}
		if err := Verify(g, m, s); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

// TestVerifyRejectsTampering corrupts valid schedules along every checked
// axis and requires Verify to notice.
func TestVerifyRejectsTampering(t *testing.T) {
	m := machine.MustClustered(2, 32, 1, 1)
	g := verifyLoop(5, 14)
	base := scheduleOn(t, g, m)
	if err := Verify(g, m, base); err != nil {
		t.Fatal(err)
	}
	clone := func() *Schedule {
		c := *base
		c.Time = append([]int(nil), base.Time...)
		c.Cluster = append([]int(nil), base.Cluster...)
		c.MaxLive = append([]int(nil), base.MaxLive...)
		c.Comms = append([]Comm(nil), base.Comms...)
		c.MemOps = append([]MemOp(nil), base.MemOps...)
		return &c
	}

	cases := []struct {
		name   string
		mutate func(s *Schedule) bool // false = mutation not applicable
		expect string
	}{
		{"shift-one-node", func(s *Schedule) bool {
			s.Time[g.N()-1] += 1 + s.II
			s.SL += 1 + s.II
			return true
		}, ""},
		{"move-cluster", func(s *Schedule) bool {
			s.Cluster[0] = 1 - s.Cluster[0]
			return true
		}, ""},
		{"drop-comm", func(s *Schedule) bool {
			if len(s.Comms) == 0 {
				return false
			}
			s.Comms = s.Comms[:len(s.Comms)-1]
			return true
		}, "not routed"},
		{"early-comm", func(s *Schedule) bool {
			if len(s.Comms) == 0 {
				return false
			}
			s.Comms[0].Start = -100
			return true
		}, "before its value exists"},
		{"lie-maxlive", func(s *Schedule) bool {
			s.MaxLive[0]++
			return true
		}, "differs from recorded"},
		{"truncate-sl", func(s *Schedule) bool {
			s.SL = 1
			return true
		}, "past SL"},
		{"bad-ii", func(s *Schedule) bool {
			s.II = 0
			return true
		}, "II 0 < 1"},
	}
	for _, tc := range cases {
		s := clone()
		if !tc.mutate(s) {
			continue
		}
		err := Verify(g, m, s)
		if err == nil {
			t.Errorf("%s: tampered schedule passed Verify", tc.name)
			continue
		}
		if tc.expect != "" && !strings.Contains(err.Error(), tc.expect) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.expect)
		}
	}
}

func TestVerifyRejectsOverfullUnits(t *testing.T) {
	// Five IntALU ops forced into one 1-wide cluster slot.
	m := machine.MustClustered(4, 64, 1, 1)
	g := ddg.New("jam", 10)
	for i := 0; i < 5; i++ {
		g.AddNode(isa.IntALU, "")
	}
	s := &Schedule{
		II: 1, SL: 1,
		Time:    []int{0, 0, 0, 0, 0},
		Cluster: []int{0, 0, 0, 0, 0},
		MaxLive: make([]int, 4),
	}
	if err := Verify(g, m, s); err == nil || !strings.Contains(err.Error(), "overfull") {
		t.Errorf("overfull unit slot not caught: %v", err)
	}
}

func TestVerifyRejectsZeroUnitCluster(t *testing.T) {
	het := machine.MustHetero("nofp0", []machine.ClusterSpec{
		{Units: [isa.NumUnitKinds]int{3, 0, 1}, Regs: 16},
		{Units: [isa.NumUnitKinds]int{1, 2, 1}, Regs: 16},
	}, machine.SharedBus, 1, 1, false)
	g := ddg.New("fp", 10)
	g.AddNode(isa.FPAdd, "")
	s := &Schedule{
		II: 1, SL: 3,
		Time:    []int{0},
		Cluster: []int{0}, // cluster 0 has no FP units
		MaxLive: []int{1, 0},
	}
	if err := Verify(g, het, s); err == nil || !strings.Contains(err.Error(), "no FP units") {
		t.Errorf("zero-unit cluster not caught: %v", err)
	}
}
