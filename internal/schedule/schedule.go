package schedule

import (
	"fmt"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
)

// Mode selects how cluster assignment interacts with scheduling (Figure 1
// of the paper).
type Mode int8

const (
	// ModeGP follows the precomputed partition but may place a node in
	// another cluster when the assigned one fails (alternative (b), §3.1).
	ModeGP Mode = iota
	// ModeFixed follows the partition rigidly: a node that does not fit its
	// assigned cluster fails the whole II (alternative (a), "Fixed
	// Partition").
	ModeFixed
	// ModeURACAM has no precomputed partition: every node considers all
	// clusters and the figure of merit picks one (the URACAM baseline,
	// which is why it is the slowest scheme — Table 2).
	ModeURACAM
)

func (md Mode) String() string {
	switch md {
	case ModeGP:
		return "GP"
	case ModeFixed:
		return "FixedPartition"
	case ModeURACAM:
		return "URACAM"
	}
	return fmt.Sprintf("Mode(%d)", int8(md))
}

// Options configures one scheduling attempt.
type Options struct {
	// Mode selects the cluster-assignment policy.
	Mode Mode
	// Assign is the precomputed cluster assignment (required for ModeGP and
	// ModeFixed; ignored by ModeURACAM).
	Assign []int
	// MeritThreshold is the significance threshold of the figure-of-merit
	// comparison (§3.3.1). Zero means the 0.05 default.
	MeritThreshold float64
	// MaxTransforms caps the §3.3.2 transformations per II attempt.
	// Zero means the default 2·nodes+8.
	MaxTransforms int
}

func (o *Options) threshold() float64 {
	if o.MeritThreshold > 0 {
		return o.MeritThreshold
	}
	return 0.05
}

// Failure reports why an II attempt failed.
type Failure struct {
	Node   int
	Reason FailReason
}

func (f *Failure) Error() string {
	return fmt.Sprintf("schedule: node %d unplaceable (%s)", f.Node, f.Reason)
}

// Comm is a scheduled inter-cluster transfer in a final Schedule. The JSON
// tags are the gpserved wire format; they are stable API.
type Comm struct {
	Producer int `json:"producer"` // producing node
	Start    int `json:"start"`    // departure cycle
	// Dest is the destination cluster of a point-to-point transfer, or -1
	// for a shared-bus broadcast (which reaches every other cluster).
	Dest int `json:"dest"`
}

// MemOp is a transformation-inserted memory operation in a final Schedule.
// The JSON tags are the gpserved wire format; they are stable API.
type MemOp struct {
	Producer int  `json:"producer"`
	Cluster  int  `json:"cluster"`
	Cycle    int  `json:"cycle"`
	IsStore  bool `json:"is_store,omitempty"`
}

// Schedule is a completed modulo schedule.
type Schedule struct {
	II      int
	SL      int // schedule length: last completion cycle of any operation
	Time    []int
	Cluster []int
	// MaxLive is the per-cluster register pressure of the steady state.
	MaxLive []int
	// Comms are the bus transfers; NComm == len(Comms).
	Comms []Comm
	// MemOps are the loads/stores added by spills and memory-routed
	// communications.
	MemOps []MemOp
	// Spills counts spilled values; MemRoutes counts values rerouted
	// through memory instead of the bus.
	Spills, MemRoutes int
	// Transforms counts applied §3.3.2 transformations.
	Transforms int
	// List marks a non-pipelined fallback schedule (ListSchedule):
	// iterations run back to back, II equals SL, and inter-cluster
	// transfers are implicit in the cut-edge latencies rather than
	// reserved on the interconnect.
	List bool
}

// Cycles returns the execution time of the loop for a trip count:
// (niter−1)·II + SL, including prolog and epilog.
func (s *Schedule) Cycles(niter int) int64 {
	return int64(niter-1)*int64(s.II) + int64(s.SL)
}

// Stages returns the number of pipeline stages, ceil(SL/II).
func (s *Schedule) Stages() int {
	if s.II == 0 {
		return 0
	}
	return (s.SL + s.II - 1) / s.II
}

// TrySchedule attempts a modulo schedule of g on m at initiation interval
// ii. It returns the schedule, or the failure that ended the attempt (the
// driver then raises the II and possibly recomputes the partition, §3.1).
func TrySchedule(g *ddg.Graph, m *machine.Config, ii int, opts *Options) (*Schedule, *Failure) {
	if opts == nil {
		opts = &Options{Mode: ModeURACAM}
	}
	if (opts.Mode == ModeGP || opts.Mode == ModeFixed) && len(opts.Assign) != g.N() {
		panic("schedule: partition-following mode without an assignment")
	}
	st := newState(g, m, ii)
	order := Order(g, m, ii)
	static, ok := g.StartTimes(m, ii, nil)
	if !ok {
		return nil, &Failure{Node: -1, Reason: FailWindow}
	}

	maxTransforms := opts.MaxTransforms
	if maxTransforms == 0 {
		maxTransforms = 2*g.N() + 8
	}
	transforms := 0
	ejections := 0
	maxEjections := 2*g.N() + 8

	queue := append([]int(nil), order...)
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		if st.sched[v] {
			continue // re-placed before its ejected entry came up again
		}
	retry:
		placed, lastFail := st.placeNode(v, opts, static)
		for !placed && transforms < maxTransforms {
			if !st.transform(lastFail) {
				break
			}
			transforms++
			placed, lastFail = st.placeNode(v, opts, static)
		}
		if !placed && lastFail == FailWindow && ejections < maxEjections {
			// Two-sided empty window: evict the binding successors and
			// retry (they re-enter the work list).
			if victims := st.ejectVictims(v); len(victims) > 0 {
				for _, w := range victims {
					st.unschedule(w)
					queue = append(queue, w)
				}
				ejections++
				goto retry
			}
		}
		if !placed {
			return nil, &Failure{Node: v, Reason: lastFail}
		}
		if debugChecks {
			if err := st.checkInvariants(); err != nil {
				panic(fmt.Sprintf("schedule: invariant broken after placing node %d: %v", v, err))
			}
		}
	}
	for v := range st.sched {
		if !st.sched[v] {
			panic(fmt.Sprintf("schedule: node %d left unscheduled after work list drained", v))
		}
	}
	return st.finish(transforms), nil
}

// placeNode tries every allowed cluster for node v and applies the best
// placement by figure of merit. It reports the dominant failure reason when
// no cluster admits the node.
func (st *state) placeNode(v int, opts *Options, static *ddg.Times) (bool, FailReason) {
	var clusters []int
	switch opts.Mode {
	case ModeFixed:
		clusters = []int{opts.Assign[v]}
	case ModeGP:
		// Assigned cluster first; the others only when it fails.
		clusters = []int{opts.Assign[v]}
	case ModeURACAM:
		clusters = make([]int, st.m.Clusters)
		for c := range clusters {
			clusters[c] = c
		}
	}

	best, fail := st.bestCandidate(v, clusters, opts.threshold(), static)
	if best == nil && opts.Mode == ModeGP {
		others := make([]int, 0, st.m.Clusters-1)
		for c := 0; c < st.m.Clusters; c++ {
			if c != opts.Assign[v] {
				others = append(others, c)
			}
		}
		var fail2 FailReason
		best, fail2 = st.bestCandidate(v, others, opts.threshold(), static)
		if best == nil && fail2 > fail {
			fail = fail2
		}
	}
	if best == nil {
		return false, fail
	}
	st.apply(best)
	return true, FailNone
}

// bestCandidate scans each cluster's placement window for its first
// feasible slot and returns the merit-best plan among clusters, or the
// dominant failure reason.
func (st *state) bestCandidate(v int, clusters []int, threshold float64, static *ddg.Times) (*plan, FailReason) {
	var best *plan
	worstFail := FailNone
	for _, c := range clusters {
		p, reason := st.scanCluster(v, c, static)
		if p == nil {
			if reason > worstFail {
				worstFail = reason
			}
			continue
		}
		if best == nil || betterMerit(p.merit, best.merit, threshold) {
			best = p
		}
	}
	if best == nil && worstFail == FailNone {
		worstFail = FailWindow
	}
	return best, worstFail
}

// scanCluster computes the SMS placement window of v in cluster c and
// returns the plan for the first feasible slot.
func (st *state) scanCluster(v, c int, static *ddg.Times) (*plan, FailReason) {
	g, m, ii := st.g, st.m, st.ii
	lb, hasPred := -1<<30, false
	ub, hasSucc := 1<<30, false
	for _, ei := range g.In(v) {
		e := g.Edges[ei]
		if !st.sched[e.From] || e.From == v {
			continue
		}
		hasPred = true
		b := st.time[e.From] + e.Lat - ii*e.Dist
		if e.Kind == ddg.Data && st.cluster[e.From] != c {
			b += m.LatBus
		}
		if b > lb {
			lb = b
		}
	}
	for _, ei := range g.Out(v) {
		e := g.Edges[ei]
		if !st.sched[e.To] || e.To == v {
			continue
		}
		hasSucc = true
		b := st.time[e.To] - e.Lat + ii*e.Dist
		if e.Kind == ddg.Data && st.cluster[e.To] != c {
			b -= m.LatBus
		}
		if b < ub {
			ub = b
		}
	}

	worst := FailNone
	try := func(t int) (*plan, bool) {
		p, reason := st.planPlace(v, c, t)
		if p != nil {
			return p, true
		}
		if reason > worst {
			worst = reason
		}
		return nil, false
	}

	// Start cycles may be negative (bottom-up placement below cycle 0):
	// modulo schedules are shift-invariant and finish() normalizes.
	switch {
	case hasPred && hasSucc:
		hi := ub
		if lb+ii-1 < hi {
			hi = lb + ii - 1
		}
		for t := lb; t <= hi; t++ {
			if p, ok := try(t); ok {
				return p, FailNone
			}
		}
	case hasPred:
		for t := lb; t < lb+ii; t++ {
			if p, ok := try(t); ok {
				return p, FailNone
			}
		}
	case hasSucc:
		lo := ub - ii + 1
		for t := ub; t >= lo; t-- {
			if p, ok := try(t); ok {
				return p, FailNone
			}
		}
	default:
		start := static.Earliest[v]
		for t := start; t < start+ii; t++ {
			if p, ok := try(t); ok {
				return p, FailNone
			}
		}
	}
	if worst == FailNone {
		worst = FailWindow
	}
	return nil, worst
}

// apply commits a plan to the state.
func (st *state) apply(p *plan) {
	g, m := st.g, st.m
	node := g.Nodes[p.v]

	// 1. Producer bookkeeping for v.
	st.rt.PlaceOp(p.cluster, node.Op.Unit(), p.t)
	st.time[p.v] = p.t
	st.cluster[p.v] = p.cluster
	st.sched[p.v] = true
	if node.Op.ProducesValue() {
		st.vals[p.v] = newValue(p.cluster, p.t+m.OpLatency(node.Op), m.Clusters)
	}

	// 2. Batch span-safe mutations per touched value.
	touched := map[int]bool{p.v: node.Op.ProducesValue()}
	for _, mv := range p.moves {
		touched[mv.val] = true
	}
	for _, cp := range p.comms {
		touched[cp.val] = true
	}
	for _, lp := range p.loads {
		touched[lp.val] = true
	}
	for _, up := range p.uses {
		touched[up.val] = true
	}
	// Remove current spans of every touched value (v has none yet).
	for id, isVal := range touched {
		if !isVal || id == p.v {
			continue
		}
		for c := 0; c < m.Clusters; c++ {
			st.removeValueSpans(st.vals[id], c)
		}
	}
	// Mutate. Transfer channels are keyed by the value's home cluster and
	// the planned destination (ignored on the shared bus).
	for _, mv := range p.moves {
		val := st.vals[mv.val]
		st.rt.RemoveXfer(val.home, mv.dest, mv.old)
		st.rt.PlaceXfer(val.home, mv.dest, mv.new)
		if mv.dest < 0 {
			val.comm.start = mv.new
		} else {
			val.comm.dests[mv.dest] = mv.new
		}
	}
	for _, cp := range p.comms {
		val := st.vals[cp.val]
		st.rt.PlaceXfer(val.home, cp.dest, cp.start)
		if cp.dest < 0 {
			val.comm = &comm{start: cp.start}
		} else {
			if val.comm == nil {
				val.comm = &comm{dests: map[int]int{}}
			}
			val.comm.dests[cp.dest] = cp.start
		}
	}
	for _, lp := range p.loads {
		st.rt.PlaceOp(lp.cluster, isa.MemUnit, lp.cycle)
		st.vals[lp.val].mem.loads[lp.cluster] = lp.cycle
		st.nMemOps[1]++
	}
	for _, up := range p.uses {
		val := st.vals[up.val]
		if cur := val.minUse[up.cluster]; cur == noUse || up.use < cur {
			val.minUse[up.cluster] = up.use
		}
		if cur := val.maxUse[up.cluster]; cur == noUse || up.use > cur {
			val.maxUse[up.cluster] = up.use
		}
	}
	// Re-add spans.
	for id, isVal := range touched {
		if !isVal {
			continue
		}
		for c := 0; c < m.Clusters; c++ {
			st.addValueSpans(st.vals[id], c)
		}
	}
}

// finish assembles the Schedule from a fully placed state, normalizing
// start cycles so the earliest operation issues at cycle 0 (a uniform shift
// rotates every modulo slot identically, so resources and dependences are
// unaffected).
func (st *state) finish(transforms int) *Schedule {
	g, m := st.g, st.m
	s := &Schedule{
		II:         st.ii,
		Time:       append([]int(nil), st.time...),
		Cluster:    append([]int(nil), st.cluster...),
		MaxLive:    make([]int, m.Clusters),
		Transforms: transforms,
	}
	shift := 0
	for _, t := range s.Time {
		if t < shift {
			shift = t
		}
	}
	if shift < 0 {
		for v := range s.Time {
			s.Time[v] -= shift
		}
	}
	for c := 0; c < m.Clusters; c++ {
		s.MaxLive[c] = st.maxLive(c)
	}
	// SL must be computed from the normalized times: with a negative shift,
	// the unshifted st.time would understate it by |shift|.
	for v := range g.Nodes {
		if f := s.Time[v] + m.OpLatency(g.Nodes[v].Op); f > s.SL {
			s.SL = f
		}
	}
	for id, val := range st.vals {
		if val == nil {
			continue
		}
		if val.comm != nil {
			if val.comm.dests == nil {
				start := val.comm.start - shift
				s.Comms = append(s.Comms, Comm{Producer: id, Start: start, Dest: -1})
				if f := start + m.LatBus; f > s.SL {
					s.SL = f
				}
			} else {
				// Point-to-point: one transfer per destination link, in
				// deterministic cluster order.
				for c := 0; c < m.Clusters; c++ {
					start, ok := val.comm.dests[c]
					if !ok {
						continue
					}
					start -= shift
					s.Comms = append(s.Comms, Comm{Producer: id, Start: start, Dest: c})
					if f := start + m.LatBus; f > s.SL {
						s.SL = f
					}
				}
			}
		}
		if val.mem != nil {
			s.MemRoutes++
			store := val.mem.store - shift
			s.MemOps = append(s.MemOps, MemOp{Producer: id, Cluster: val.home, Cycle: store, IsStore: true})
			if f := store + m.OpLatency(isa.Store); f > s.SL {
				s.SL = f
			}
			// Deterministic cluster order: loads is a map, and MemOps is
			// part of the served response bytes.
			for c := 0; c < m.Clusters; c++ {
				l, ok := val.mem.loads[c]
				if !ok {
					continue
				}
				s.MemOps = append(s.MemOps, MemOp{Producer: id, Cluster: c, Cycle: l - shift})
				if f := l - shift + m.OpLatency(isa.Load); f > s.SL {
					s.SL = f
				}
			}
		}
		if val.spill != nil {
			s.Spills++
			s.MemOps = append(s.MemOps,
				MemOp{Producer: id, Cluster: val.home, Cycle: val.spill.store - shift, IsStore: true},
				MemOp{Producer: id, Cluster: val.home, Cycle: val.spill.load - shift})
			if f := val.spill.load - shift + m.OpLatency(isa.Load); f > s.SL {
				s.SL = f
			}
		}
	}
	return s
}

// Validate cross-checks a finished schedule against the dependence graph:
// every edge constraint must hold, including bus latency on cut data edges.
// It is used by tests and by the driver's paranoia mode.
func (s *Schedule) Validate(g *ddg.Graph, m *machine.Config) error {
	for i, e := range g.Edges {
		if e.From == e.To && e.Dist > 0 {
			if e.Lat > s.II*e.Dist {
				return fmt.Errorf("schedule: self recurrence %d violated: lat %d > II·dist %d", i, e.Lat, s.II*e.Dist)
			}
			continue
		}
		tf, tt := s.Time[e.From], s.Time[e.To]
		slack := tt + s.II*e.Dist - tf - e.Lat
		if e.Kind == ddg.Data && s.Cluster[e.From] != s.Cluster[e.To] {
			// The transfer path adds at least the bus latency (or the
			// store+load path, which is at least as long).
			slack -= m.LatBus
		}
		if slack < 0 {
			return fmt.Errorf("schedule: edge %d (%d→%d lat %d dist %d) violated: t=%d→%d II=%d",
				i, e.From, e.To, e.Lat, e.Dist, tf, tt, s.II)
		}
	}
	for c, ml := range s.MaxLive {
		if ml > m.RegsIn(c) {
			return fmt.Errorf("schedule: cluster %d MaxLive %d exceeds %d registers", c, ml, m.RegsIn(c))
		}
	}
	return nil
}
