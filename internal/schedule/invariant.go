package schedule

import (
	"fmt"

	"repro/internal/ddg"
	"repro/internal/isa"
)

// debugChecks enables per-placement invariant checking inside TrySchedule.
// Tests flip it on; it is far too expensive for production use.
var debugChecks = false

// checkInvariants validates the partial schedule: every dependence between
// two scheduled nodes must hold under the value's actual routing, and every
// value's recorded use bounds must match the scheduled consumers.
func (st *state) checkInvariants() error {
	g, m, ii := st.g, st.m, st.ii
	for i, e := range g.Edges {
		if !st.sched[e.From] || !st.sched[e.To] || e.From == e.To {
			continue
		}
		tf, tt := st.time[e.From], st.time[e.To]
		need := tt + ii*e.Dist
		if tf+e.Lat > need {
			return fmt.Errorf("edge %d (%d→%d lat %d dist %d): %d+%d > %d", i, e.From, e.To, e.Lat, e.Dist, tf, e.Lat, need)
		}
		if e.Kind != ddg.Data {
			continue
		}
		val := st.vals[e.From]
		if val == nil {
			return fmt.Errorf("edge %d: producer %d scheduled but has no value", i, e.From)
		}
		c := st.cluster[e.To]
		arr, ok := val.arrival(c, m)
		if !ok {
			return fmt.Errorf("edge %d: value of %d not routed to cluster %d", i, e.From, c)
		}
		if arr > need {
			return fmt.Errorf("edge %d: value of %d arrives in cluster %d at %d after use %d", i, e.From, c, arr, need)
		}
		if mu := val.maxUse[c]; mu < need {
			return fmt.Errorf("edge %d: use %d in cluster %d not recorded (maxUse=%v)", i, e.From, c, val.maxUse)
		}
	}
	for c := 0; c < m.Clusters; c++ {
		if st.maxLive(c) > m.RegsIn(c) {
			return fmt.Errorf("cluster %d MaxLive %d > %d", c, st.maxLive(c), m.RegsIn(c))
		}
	}
	// Spill/memory ops must sit on valid cycles.
	for id, val := range st.vals {
		if val == nil {
			continue
		}
		if val.spill != nil {
			if val.spill.store < val.def || val.spill.load < val.spill.store+m.OpLatency(isa.Store) {
				return fmt.Errorf("value %d: inconsistent spill %+v (def %d)", id, *val.spill, val.def)
			}
		}
		if val.mem != nil && val.mem.store < val.def {
			return fmt.Errorf("value %d: memory store at %d before def %d", id, val.mem.store, val.def)
		}
	}
	return nil
}
