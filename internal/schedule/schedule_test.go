package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
)

func chain(n, niter int) *ddg.Graph {
	g := ddg.New("chain", niter)
	for i := 0; i < n; i++ {
		g.AddNode(isa.IntALU, "")
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(ddg.Edge{From: i, To: i + 1, Lat: 1, Kind: ddg.Data})
	}
	return g
}

func zeros(n int) []int { return make([]int, n) }

func mustSchedule(t *testing.T, g *ddg.Graph, m *machine.Config, ii int, opts *Options) *Schedule {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s, fail := TrySchedule(g, m, ii, opts)
	if fail != nil {
		t.Fatalf("TrySchedule(II=%d): %v", ii, fail)
	}
	if err := s.Validate(g, m); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	return s
}

func TestChainUnified(t *testing.T) {
	// 4 int ops on 4 integer units: II = 1, SL = chain length.
	g := chain(4, 100)
	m := machine.NewUnified(32)
	s := mustSchedule(t, g, m, g.MII(m), &Options{Mode: ModeGP, Assign: zeros(4)})
	if s.II != 1 {
		t.Errorf("II = %d, want 1", s.II)
	}
	if s.SL != 4 {
		t.Errorf("SL = %d, want 4 (dependence-bound chain)", s.SL)
	}
	if len(s.Comms) != 0 {
		t.Errorf("unified schedule has %d comms", len(s.Comms))
	}
	if got := s.Cycles(100); got != 99+4 {
		t.Errorf("Cycles(100) = %d, want 103", got)
	}
}

func TestResourceBoundII(t *testing.T) {
	// 9 independent loads on a unified machine (4 memory units): II = 3.
	g := ddg.New("loads", 50)
	for i := 0; i < 9; i++ {
		g.AddNode(isa.Load, "")
	}
	m := machine.NewUnified(64)
	s := mustSchedule(t, g, m, g.MII(m), &Options{Mode: ModeURACAM})
	if s.II != 3 {
		t.Errorf("II = %d, want 3", s.II)
	}
}

func TestCrossClusterCommScheduled(t *testing.T) {
	// A producer in cluster 0 feeding a consumer forced into cluster 1:
	// the schedule must contain exactly one bus transfer and respect the
	// bus latency.
	g := ddg.New("cross", 50)
	a := g.AddNode(isa.IntALU, "")
	b := g.AddNode(isa.IntALU, "")
	g.AddEdge(ddg.Edge{From: a, To: b, Lat: 1, Kind: ddg.Data})
	m := machine.MustClustered(2, 32, 1, 2)
	s := mustSchedule(t, g, m, 3, &Options{Mode: ModeFixed, Assign: []int{0, 1}})
	if len(s.Comms) != 1 {
		t.Fatalf("got %d comms, want 1", len(s.Comms))
	}
	c := s.Comms[0]
	if c.Producer != a {
		t.Errorf("comm producer = %d, want %d", c.Producer, a)
	}
	def := s.Time[a] + 1
	if c.Start < def {
		t.Errorf("comm departs at %d before value ready at %d", c.Start, def)
	}
	if s.Time[b] < c.Start+2 {
		t.Errorf("consumer at %d before transfer arrives at %d", s.Time[b], c.Start+2)
	}
}

func TestBroadcastSingleTransfer(t *testing.T) {
	// One producer, three consumers in the other cluster: broadcast bus →
	// one transfer.
	g := ddg.New("bcast", 50)
	p := g.AddNode(isa.IntALU, "")
	assign := []int{0}
	for i := 0; i < 3; i++ {
		c := g.AddNode(isa.IntALU, "")
		g.AddEdge(ddg.Edge{From: p, To: c, Lat: 1, Kind: ddg.Data})
		assign = append(assign, 1)
	}
	m := machine.MustClustered(2, 32, 1, 1)
	s := mustSchedule(t, g, m, 2, &Options{Mode: ModeFixed, Assign: assign})
	if len(s.Comms) != 1 {
		t.Errorf("broadcast used %d transfers, want 1", len(s.Comms))
	}
}

func TestFixedModeRespectsAssignment(t *testing.T) {
	g := chain(8, 50)
	assign := []int{0, 0, 0, 0, 1, 1, 1, 1}
	m := machine.MustClustered(2, 32, 1, 1)
	s := mustSchedule(t, g, m, 2, &Options{Mode: ModeFixed, Assign: assign})
	for v, c := range s.Cluster {
		if c != assign[v] {
			t.Errorf("node %d in cluster %d, assigned %d", v, c, assign[v])
		}
	}
	if len(s.Comms) != 1 {
		t.Errorf("chain split once: %d comms, want 1", len(s.Comms))
	}
}

func TestGPModeMayOverride(t *testing.T) {
	// Assign everything to cluster 0 but make cluster 0's integer unit too
	// narrow at II=1: GP mode must move overflow nodes to cluster 1 instead
	// of failing (1 INT unit per cluster on the 4-cluster machine).
	g := ddg.New("wide", 50)
	for i := 0; i < 4; i++ {
		g.AddNode(isa.IntALU, "")
	}
	m := machine.MustClustered(4, 64, 1, 1)
	s, fail := TrySchedule(g, m, 1, &Options{Mode: ModeGP, Assign: zeros(4)})
	if fail != nil {
		t.Fatalf("GP mode failed: %v", fail)
	}
	if err := s.Validate(g, m); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range s.Cluster {
		seen[c] = true
	}
	if len(seen) < 4 {
		t.Errorf("GP mode did not spread 4 int ops over 4 single-issue clusters: %v", s.Cluster)
	}
	// Fixed mode must fail instead.
	if _, fail := TrySchedule(g, m, 1, &Options{Mode: ModeFixed, Assign: zeros(4)}); fail == nil {
		t.Error("Fixed mode scheduled 4 int ops on a 1-unit cluster at II=1")
	}
}

func TestRecurrenceScheduledAtRecMII(t *testing.T) {
	g := ddg.New("rec", 50)
	a := g.AddNode(isa.FPAdd, "")
	b := g.AddNode(isa.FPAdd, "")
	g.AddEdge(ddg.Edge{From: a, To: b, Lat: 3, Kind: ddg.Data})
	g.AddEdge(ddg.Edge{From: b, To: a, Lat: 3, Dist: 1, Kind: ddg.Data})
	m := machine.NewUnified(32)
	mii := g.MII(m)
	if mii != 6 {
		t.Fatalf("MII = %d, want 6", mii)
	}
	s := mustSchedule(t, g, m, mii, &Options{Mode: ModeURACAM})
	if s.II != 6 {
		t.Errorf("II = %d, want 6", s.II)
	}
}

func TestRegisterPressureRespected(t *testing.T) {
	// Many long-lived values on a tiny register file: every cluster's
	// MaxLive must stay within the file (spilling if needed).
	g := ddg.New("press", 50)
	prod := make([]int, 6)
	for i := range prod {
		prod[i] = g.AddNode(isa.Load, "")
	}
	sink := g.AddNode(isa.IntALU, "")
	for _, p := range prod {
		g.AddEdge(ddg.Edge{From: p, To: sink, Lat: 2, Kind: ddg.Data})
	}
	m := machine.MustClustered(2, 32, 1, 1)
	s := mustSchedule(t, g, m, 4, &Options{Mode: ModeURACAM})
	for c, ml := range s.MaxLive {
		if ml > m.RegsPerCluster {
			t.Errorf("cluster %d MaxLive %d > %d", c, ml, m.RegsPerCluster)
		}
	}
}

func TestFailureReportedWhenImpossible(t *testing.T) {
	// 5 int ops in one cluster at II=1 on a 2-wide cluster is impossible.
	g := ddg.New("jam", 50)
	for i := 0; i < 5; i++ {
		g.AddNode(isa.IntALU, "")
	}
	m := machine.MustClustered(2, 32, 1, 1)
	_, fail := TrySchedule(g, m, 1, &Options{Mode: ModeFixed, Assign: zeros(5)})
	if fail == nil {
		t.Fatal("impossible schedule succeeded")
	}
	if fail.Reason != FailFU {
		t.Errorf("failure reason = %v, want fu", fail.Reason)
	}
	if fail.Error() == "" {
		t.Error("empty failure message")
	}
}

func TestOrderProperties(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	m := machine.NewUnified(64)
	for trial := 0; trial < 40; trial++ {
		g := randomLoop(r, 3+r.Intn(30))
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		order := Order(g, m, g.MII(m))
		if len(order) != g.N() {
			t.Fatalf("order has %d nodes, want %d", len(order), g.N())
		}
		seen := make(map[int]bool)
		for _, v := range order {
			if seen[v] {
				t.Fatalf("node %d ordered twice", v)
			}
			seen[v] = true
		}
	}
}

func TestOrderNeighborProperty(t *testing.T) {
	// SMS locality invariant: every ordered node except the seed of each
	// group has at least one neighbor among the earlier-ordered nodes, so
	// the scheduler almost always places nodes with scheduled neighbors on
	// one side (recurrence closers and inter-recurrence path nodes are the
	// unavoidable exceptions, and they still have earlier neighbors).
	r := rand.New(rand.NewSource(23))
	m := machine.NewUnified(64)
	for trial := 0; trial < 40; trial++ {
		g := randomLoop(r, 3+r.Intn(25))
		order := Order(g, m, g.MII(m))
		groups := buildGroups(g)
		pos := make([]int, g.N())
		for i, v := range order {
			pos[v] = i
		}
		seeds := 0
		for i, v := range order {
			hasEarlier := false
			for _, ei := range g.In(v) {
				if e := g.Edges[ei]; e.From != v && pos[e.From] < i {
					hasEarlier = true
				}
			}
			for _, ei := range g.Out(v) {
				if e := g.Edges[ei]; e.To != v && pos[e.To] < i {
					hasEarlier = true
				}
			}
			if !hasEarlier {
				seeds++
			}
		}
		if seeds > len(groups) {
			t.Fatalf("trial %d: %d seed nodes without earlier neighbors, only %d groups",
				trial, seeds, len(groups))
		}
	}
}

// randomLoop builds a random loop body mixing op classes with a few
// loop-carried edges.
func randomLoop(r *rand.Rand, n int) *ddg.Graph {
	g := ddg.New("rand", 20+r.Intn(200))
	ops := []isa.OpClass{isa.IntALU, isa.IntMul, isa.FPAdd, isa.FPMul, isa.Load, isa.Load}
	for i := 0; i < n; i++ {
		g.AddNode(ops[r.Intn(len(ops))], "")
	}
	for i := 1; i < n; i++ {
		for k := 0; k < 1+r.Intn(2); k++ {
			from := r.Intn(i)
			g.AddEdge(ddg.Edge{From: from, To: i, Lat: isa.DefaultLatency(g.Nodes[from].Op), Kind: ddg.Data})
		}
	}
	for k := 0; k < r.Intn(3) && n > 3; k++ {
		to := r.Intn(n - 1)
		from := to + 1 + r.Intn(n-to-1)
		g.AddEdge(ddg.Edge{From: from, To: to, Lat: isa.DefaultLatency(g.Nodes[from].Op), Dist: 1 + r.Intn(2), Kind: ddg.Data})
	}
	return g
}

// TestRandomLoopsScheduleAndValidate drives all three modes over random
// loops with escalating II until success, validating every result.
func TestRandomLoopsScheduleAndValidate(t *testing.T) {
	debugChecks = true // per-placement invariant checking
	defer func() { debugChecks = false }()
	r := rand.New(rand.NewSource(29))
	machines := []*machine.Config{
		machine.NewUnified(32),
		machine.MustClustered(2, 32, 1, 1),
		machine.MustClustered(2, 64, 1, 2),
		machine.MustClustered(4, 64, 1, 1),
	}
	for trial := 0; trial < 40; trial++ {
		g := randomLoop(r, 4+r.Intn(24))
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		m := machines[trial%len(machines)]
		for _, mode := range []Mode{ModeURACAM, ModeGP, ModeFixed} {
			opts := &Options{Mode: mode}
			if mode != ModeURACAM {
				opts.Assign = make([]int, g.N())
				for v := range opts.Assign {
					opts.Assign[v] = v % m.Clusters
				}
			}
			ii := g.MII(m)
			var s *Schedule
			for ; ii < g.MII(m)+64; ii++ {
				var fail *Failure
				s, fail = TrySchedule(g, m, ii, opts)
				if fail == nil {
					break
				}
				s = nil
			}
			if s == nil {
				if mode == ModeFixed {
					continue // a rigid arbitrary assignment may be unschedulable
				}
				t.Fatalf("trial %d mode %v: no II ≤ MII+64 schedules", trial, mode)
			}
			if err := s.Validate(g, m); err != nil {
				t.Fatalf("trial %d mode %v machine %v: %v\ntimes=%v\nclusters=%v",
					trial, mode, m, err, s.Time, s.Cluster)
			}
		}
	}
}

func TestListScheduleBasics(t *testing.T) {
	g := chain(5, 50)
	m := machine.MustClustered(2, 32, 1, 1)
	s := ListSchedule(g, m, nil)
	if s.II != s.SL {
		t.Errorf("list schedule II %d != SL %d", s.II, s.SL)
	}
	// Dependences hold.
	for _, e := range g.Edges {
		if e.Dist > 0 {
			continue
		}
		lat := e.Lat
		if e.Kind == ddg.Data && s.Cluster[e.From] != s.Cluster[e.To] {
			lat += m.LatBus
		}
		if s.Time[e.To] < s.Time[e.From]+lat {
			t.Errorf("edge %d→%d violated: %d < %d+%d", e.From, e.To, s.Time[e.To], s.Time[e.From], lat)
		}
	}
}

func TestListScheduleRespectsAssign(t *testing.T) {
	g := chain(4, 10)
	m := machine.MustClustered(2, 32, 1, 1)
	assign := []int{0, 1, 0, 1}
	s := ListSchedule(g, m, assign)
	for v, c := range s.Cluster {
		if c != assign[v] {
			t.Errorf("node %d in cluster %d, want %d", v, c, assign[v])
		}
	}
}

func TestListScheduleEmpty(t *testing.T) {
	g := ddg.New("empty", 1)
	m := machine.NewUnified(32)
	s := ListSchedule(g, m, nil)
	if s.II < 1 || s.SL < 1 {
		t.Errorf("empty list schedule II=%d SL=%d", s.II, s.SL)
	}
}

func TestStagesAndCycles(t *testing.T) {
	s := &Schedule{II: 3, SL: 7}
	if s.Stages() != 3 {
		t.Errorf("Stages = %d, want 3", s.Stages())
	}
	if s.Cycles(10) != 9*3+7 {
		t.Errorf("Cycles(10) = %d, want 34", s.Cycles(10))
	}
}

func TestMeritComparison(t *testing.T) {
	// Clear difference beyond threshold: lower max component wins.
	a := merit{0.9, 0.1}
	b := merit{0.5, 0.5}
	if !betterMerit(b, a, 0.05) {
		t.Error("b (max 0.5) should beat a (max 0.9)")
	}
	if betterMerit(a, b, 0.05) {
		t.Error("a should not beat b")
	}
	// All components within threshold: smaller sum wins.
	c := merit{0.50, 0.10}
	d := merit{0.52, 0.30}
	if !betterMerit(c, d, 0.05) {
		t.Error("c (sum 0.6) should beat d (sum 0.82) via sum rule")
	}
	// Equal: not better either way.
	if betterMerit(a, a, 0.05) {
		t.Error("a vs a: strict better must be false")
	}
}

func TestModeString(t *testing.T) {
	if ModeGP.String() != "GP" || ModeFixed.String() != "FixedPartition" || ModeURACAM.String() != "URACAM" {
		t.Error("mode names wrong")
	}
}
