package schedule

import (
	"fmt"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mrt"
	"repro/internal/regpress"
)

// Verify validates a complete schedule against the dependence graph and the
// machine, independently of the scheduler that produced it:
//
//   - every dependence holds under the value's actual routing (same-cluster
//     read, bus broadcast or point-to-point transfer arrival, memory-route
//     load arrival, spill reload);
//   - per-cluster functional-unit and memory-port occupancy fits the
//     (possibly heterogeneous) unit mix, including transformation-inserted
//     loads and stores;
//   - interconnect occupancy fits the buses or links, honoring the
//     pipelined/non-pipelined transfer occupancy;
//   - reconstructed per-cluster register pressure fits each register file
//     and matches the schedule's recorded MaxLive.
//
// It accepts both modulo schedules and the list-scheduling fallback
// (s.List), whose weaker contract — back-to-back iterations, implicit
// transfers — is checked instead. Tests use Verify as a differential oracle
// over every scheme × machine × loop.
func Verify(g *ddg.Graph, m *machine.Config, s *Schedule) error {
	if s == nil {
		return fmt.Errorf("schedule: Verify: nil schedule")
	}
	if err := m.Validate(); err != nil {
		return fmt.Errorf("schedule: Verify: %w", err)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("schedule: Verify: %w", err)
	}
	n := g.N()
	if len(s.Time) != n || len(s.Cluster) != n {
		return fmt.Errorf("schedule: Verify: %d nodes but %d times / %d clusters", n, len(s.Time), len(s.Cluster))
	}
	if s.II < 1 {
		return fmt.Errorf("schedule: Verify: II %d < 1", s.II)
	}
	if len(s.MaxLive) != m.Clusters {
		return fmt.Errorf("schedule: Verify: %d MaxLive entries for %d clusters", len(s.MaxLive), m.Clusters)
	}
	for v := 0; v < n; v++ {
		c := s.Cluster[v]
		if c < 0 || c >= m.Clusters {
			return fmt.Errorf("schedule: Verify: node %d in cluster %d of %d", v, c, m.Clusters)
		}
		op := g.Nodes[v].Op
		if m.UnitsIn(c, op.Unit()) == 0 {
			return fmt.Errorf("schedule: Verify: node %d (%s) in cluster %d with no %s units", v, op, c, op.Unit())
		}
		if end := s.Time[v] + m.OpLatency(op); end > s.SL {
			return fmt.Errorf("schedule: Verify: node %d completes at %d past SL %d", v, end, s.SL)
		}
	}
	if s.List {
		// The list fallback performs no register allocation (the paper's
		// escape hatch for loops where modulo scheduling is inappropriate,
		// §4.1), so its MaxLive is a report, not a guarantee: it is checked
		// for honesty in verifyList but not against the register file.
		return verifyList(g, m, s)
	}
	for c := 0; c < m.Clusters; c++ {
		if s.MaxLive[c] > m.RegsIn(c) {
			return fmt.Errorf("schedule: Verify: cluster %d MaxLive %d exceeds %d registers", c, s.MaxLive[c], m.RegsIn(c))
		}
	}

	vals, err := reconstructValues(g, m, s)
	if err != nil {
		return err
	}

	// Resource occupancy, replayed through a fresh reservation table so the
	// capacity rules (per-cluster unit mixes, channel occupancy windows,
	// self-collision) are exactly the scheduler's.
	rt := mrt.New(m, s.II)
	for v := 0; v < n; v++ {
		k := g.Nodes[v].Op.Unit()
		if !rt.CanPlaceOp(s.Cluster[v], k, s.Time[v]) {
			return fmt.Errorf("schedule: Verify: %s units of cluster %d overfull at slot %d", k, s.Cluster[v], s.Time[v]%s.II)
		}
		rt.PlaceOp(s.Cluster[v], k, s.Time[v])
	}
	for _, mo := range s.MemOps {
		if mo.Cluster < 0 || mo.Cluster >= m.Clusters {
			return fmt.Errorf("schedule: Verify: mem op of node %d in cluster %d", mo.Producer, mo.Cluster)
		}
		if !rt.CanPlaceOp(mo.Cluster, isa.MemUnit, mo.Cycle) {
			return fmt.Errorf("schedule: Verify: memory ports of cluster %d overfull at slot %d", mo.Cluster, mo.Cycle%s.II)
		}
		rt.PlaceOp(mo.Cluster, isa.MemUnit, mo.Cycle)
	}
	for _, cm := range s.Comms {
		src := s.Cluster[cm.Producer]
		if !rt.CanPlaceXfer(src, cm.Dest, cm.Start) {
			return fmt.Errorf("schedule: Verify: interconnect overfull for transfer of node %d at cycle %d", cm.Producer, cm.Start)
		}
		rt.PlaceXfer(src, cm.Dest, cm.Start)
	}

	// Dependences under actual routing.
	for i, e := range g.Edges {
		if e.From == e.To {
			if e.Dist > 0 && e.Lat > s.II*e.Dist {
				return fmt.Errorf("schedule: Verify: self recurrence %d violated: lat %d > II·dist %d", i, e.Lat, s.II*e.Dist)
			}
			continue
		}
		need := s.Time[e.To] + s.II*e.Dist
		if s.Time[e.From]+e.Lat > need {
			return fmt.Errorf("schedule: Verify: edge %d (%d→%d lat %d dist %d) violated: t=%d→%d II=%d",
				i, e.From, e.To, e.Lat, e.Dist, s.Time[e.From], s.Time[e.To], s.II)
		}
		if e.Kind != ddg.Data {
			continue
		}
		val := vals[e.From]
		if val == nil {
			return fmt.Errorf("schedule: Verify: edge %d reads node %d, which produces no value", i, e.From)
		}
		c := s.Cluster[e.To]
		arr, ok := val.arrival(c, m)
		if !ok {
			return fmt.Errorf("schedule: Verify: value of node %d not routed to cluster %d (edge %d)", e.From, c, i)
		}
		if arr > need {
			return fmt.Errorf("schedule: Verify: value of node %d arrives in cluster %d at %d after its use at %d (edge %d)",
				e.From, c, arr, need, i)
		}
		if c == val.home && val.spill != nil {
			if reload := val.spill.load + m.OpLatency(isa.Load); need > val.spill.store && need < reload {
				return fmt.Errorf("schedule: Verify: edge %d reads node %d at %d inside its spill dead window (%d, %d)",
					i, e.From, need, val.spill.store, reload)
			}
		}
	}

	// Transfers of spilled values must depart while the value is
	// register-resident: before the spill store or after the reload.
	for id, val := range vals {
		if val == nil || val.spill == nil || val.comm == nil {
			continue
		}
		reload := val.spill.load + m.OpLatency(isa.Load)
		starts := []int{val.comm.start}
		if val.comm.dests != nil {
			starts = starts[:0]
			for _, st := range val.comm.dests {
				starts = append(starts, st)
			}
		}
		for _, st := range starts {
			if st > val.spill.store && st < reload {
				return fmt.Errorf("schedule: Verify: transfer of node %d departs at %d inside its spill dead window (%d, %d)",
					id, st, val.spill.store, reload)
			}
		}
	}

	// Register pressure, reconstructed from scratch.
	for c := 0; c < m.Clusters; c++ {
		p := regpress.New(s.II)
		for _, val := range vals {
			if val == nil {
				continue
			}
			for _, sp := range val.spans(c, m) {
				p.Add(sp.Start, sp.End)
			}
		}
		if ml := p.MaxLive(); ml > m.RegsIn(c) {
			return fmt.Errorf("schedule: Verify: cluster %d reconstructed MaxLive %d exceeds %d registers", c, ml, m.RegsIn(c))
		} else if ml != s.MaxLive[c] {
			return fmt.Errorf("schedule: Verify: cluster %d reconstructed MaxLive %d differs from recorded %d", c, ml, s.MaxLive[c])
		}
	}
	return nil
}

// reconstructValues rebuilds the per-value routing state (home cluster,
// definition cycle, per-cluster use bounds, transfers, memory routes, spill
// code) of a finished modulo schedule from the schedule alone.
func reconstructValues(g *ddg.Graph, m *machine.Config, s *Schedule) ([]*value, error) {
	n := g.N()
	p2p := m.Topology == machine.PointToPoint
	vals := make([]*value, n)
	for v := 0; v < n; v++ {
		if op := g.Nodes[v].Op; op.ProducesValue() {
			vals[v] = newValue(s.Cluster[v], s.Time[v]+m.OpLatency(op), m.Clusters)
		}
	}
	for _, e := range g.Edges {
		if e.Kind != ddg.Data || e.From == e.To {
			continue
		}
		val := vals[e.From]
		if val == nil {
			continue // reported as a dependence error by the caller
		}
		c := s.Cluster[e.To]
		use := s.Time[e.To] + s.II*e.Dist
		if cur := val.minUse[c]; cur == noUse || use < cur {
			val.minUse[c] = use
		}
		if cur := val.maxUse[c]; cur == noUse || use > cur {
			val.maxUse[c] = use
		}
	}
	for _, cm := range s.Comms {
		if cm.Producer < 0 || cm.Producer >= n || vals[cm.Producer] == nil {
			return nil, fmt.Errorf("schedule: Verify: transfer of invalid producer %d", cm.Producer)
		}
		val := vals[cm.Producer]
		if cm.Start < val.def {
			return nil, fmt.Errorf("schedule: Verify: transfer of node %d departs at %d before its value exists at %d",
				cm.Producer, cm.Start, val.def)
		}
		if cm.Dest < 0 {
			if p2p {
				return nil, fmt.Errorf("schedule: Verify: broadcast transfer of node %d on a point-to-point machine", cm.Producer)
			}
			if val.comm != nil {
				return nil, fmt.Errorf("schedule: Verify: duplicate broadcast transfer of node %d", cm.Producer)
			}
			val.comm = &comm{start: cm.Start}
			continue
		}
		if !p2p {
			return nil, fmt.Errorf("schedule: Verify: destination-addressed transfer of node %d on a shared-bus machine", cm.Producer)
		}
		if cm.Dest >= m.Clusters || cm.Dest == val.home {
			return nil, fmt.Errorf("schedule: Verify: transfer of node %d to invalid cluster %d", cm.Producer, cm.Dest)
		}
		if val.comm == nil {
			val.comm = &comm{dests: map[int]int{}}
		}
		if _, dup := val.comm.dests[cm.Dest]; dup {
			return nil, fmt.Errorf("schedule: Verify: duplicate transfer of node %d to cluster %d", cm.Producer, cm.Dest)
		}
		val.comm.dests[cm.Dest] = cm.Start
	}
	// Memory operations: one store plus home-cluster load is spill code; one
	// store plus remote loads is a memory route.
	type memGroup struct {
		stores []MemOp
		loads  map[int]int
	}
	groups := map[int]*memGroup{}
	for _, mo := range s.MemOps {
		if mo.Producer < 0 || mo.Producer >= n || vals[mo.Producer] == nil {
			return nil, fmt.Errorf("schedule: Verify: mem op of invalid producer %d", mo.Producer)
		}
		grp := groups[mo.Producer]
		if grp == nil {
			grp = &memGroup{loads: map[int]int{}}
			groups[mo.Producer] = grp
		}
		if mo.IsStore {
			grp.stores = append(grp.stores, mo)
		} else {
			if _, dup := grp.loads[mo.Cluster]; dup {
				return nil, fmt.Errorf("schedule: Verify: duplicate reload of node %d in cluster %d", mo.Producer, mo.Cluster)
			}
			grp.loads[mo.Cluster] = mo.Cycle
		}
	}
	latS := m.OpLatency(isa.Store)
	for id, grp := range groups {
		val := vals[id]
		if len(grp.stores) != 1 {
			return nil, fmt.Errorf("schedule: Verify: node %d has %d spill/route stores, want 1", id, len(grp.stores))
		}
		store := grp.stores[0]
		if store.Cluster != val.home {
			return nil, fmt.Errorf("schedule: Verify: store of node %d in cluster %d, home is %d", id, store.Cluster, val.home)
		}
		if store.Cycle < val.def {
			return nil, fmt.Errorf("schedule: Verify: store of node %d at %d before def %d", id, store.Cycle, val.def)
		}
		if len(grp.loads) == 0 {
			return nil, fmt.Errorf("schedule: Verify: store of node %d has no reloads", id)
		}
		_, homeLoad := grp.loads[val.home]
		if homeLoad {
			if len(grp.loads) != 1 {
				return nil, fmt.Errorf("schedule: Verify: node %d mixes spill code and memory routing", id)
			}
			load := grp.loads[val.home]
			if load < store.Cycle+latS {
				return nil, fmt.Errorf("schedule: Verify: spill reload of node %d at %d before store completes at %d",
					id, load, store.Cycle+latS)
			}
			val.spill = &spill{store: store.Cycle, load: load}
			continue
		}
		if val.comm != nil {
			return nil, fmt.Errorf("schedule: Verify: node %d has both a transfer and a memory route", id)
		}
		route := &memRoute{store: store.Cycle, loads: map[int]int{}}
		for c, l := range grp.loads {
			if c == val.home {
				return nil, fmt.Errorf("schedule: Verify: memory route of node %d reloads in its home cluster", id)
			}
			if l < store.Cycle+latS {
				return nil, fmt.Errorf("schedule: Verify: reload of node %d in cluster %d at %d before store completes at %d",
					id, c, l, store.Cycle+latS)
			}
			route.loads[c] = l
		}
		val.mem = route
	}
	return vals, nil
}

// verifyList checks the weaker contract of the list-scheduling fallback:
// iterations execute back to back (II = SL), no interconnect or memory
// bookkeeping exists, cut data edges pay the transfer latency in their
// ready times, and per-cluster unit usage fits every absolute cycle.
func verifyList(g *ddg.Graph, m *machine.Config, s *Schedule) error {
	if s.II != s.SL {
		return fmt.Errorf("schedule: Verify: list schedule with II %d ≠ SL %d", s.II, s.SL)
	}
	if len(s.Comms) != 0 || len(s.MemOps) != 0 {
		return fmt.Errorf("schedule: Verify: list schedule with explicit transfers or mem ops")
	}
	for i, e := range g.Edges {
		lat := e.Lat
		if e.Kind == ddg.Data && s.Cluster[e.From] != s.Cluster[e.To] {
			lat += m.LatBus
		}
		if e.From == e.To {
			if e.Dist > 0 && lat > s.II*e.Dist {
				return fmt.Errorf("schedule: Verify: list self recurrence %d violated", i)
			}
			continue
		}
		if s.Time[e.From]+lat > s.Time[e.To]+s.II*e.Dist {
			return fmt.Errorf("schedule: Verify: list edge %d (%d→%d lat %d dist %d) violated: t=%d→%d period=%d",
				i, e.From, e.To, e.Lat, e.Dist, s.Time[e.From], s.Time[e.To], s.II)
		}
	}
	type key struct{ c, k, t int }
	usage := map[key]int{}
	for v := range g.Nodes {
		k := key{s.Cluster[v], int(g.Nodes[v].Op.Unit()), s.Time[v]}
		usage[k]++
		if usage[k] > m.UnitsIn(k.c, g.Nodes[v].Op.Unit()) {
			return fmt.Errorf("schedule: Verify: list schedule overfills %s units of cluster %d at cycle %d",
				g.Nodes[v].Op.Unit(), k.c, k.t)
		}
	}
	// Recorded MaxLive must match the pressure the placement actually
	// creates (one iteration, values live def → last same-iteration use).
	// The reconstruction goes through the regpress tracker rather than
	// ListSchedule's own depth-array code; a window of SL+1 slots means no
	// modulo wrap-around, so it counts plain single-iteration lifetimes.
	for c := 0; c < m.Clusters; c++ {
		press := regpress.New(s.SL + 1)
		for u := range g.Nodes {
			last := -1
			for _, ei := range g.Out(u) {
				e := g.Edges[ei]
				if e.Kind != ddg.Data || e.Dist > 0 || e.From == e.To || s.Cluster[e.To] != c {
					continue
				}
				if t := s.Time[e.To]; t > last {
					last = t
				}
			}
			if last < 0 {
				continue
			}
			press.Add(s.Time[u]+m.OpLatency(g.Nodes[u].Op), last+1)
		}
		if ml := press.MaxLive(); ml != s.MaxLive[c] {
			return fmt.Errorf("schedule: Verify: list schedule cluster %d reconstructed MaxLive %d differs from recorded %d",
				c, ml, s.MaxLive[c])
		}
	}
	return nil
}
