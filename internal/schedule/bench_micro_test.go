package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
)

// Micro-benchmarks for the scheduler's hot paths.

func BenchmarkTryScheduleMedium(b *testing.B) {
	r := rand.New(rand.NewSource(51))
	g := randomLoop(r, 40)
	m := machine.MustClustered(2, 32, 1, 1)
	ii := g.MII(m)
	assign := make([]int, g.N())
	for v := range assign {
		assign[v] = v % 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for try := ii; ; try++ {
			if _, fail := TrySchedule(g, m, try, &Options{Mode: ModeGP, Assign: assign}); fail == nil {
				break
			}
		}
	}
}

func BenchmarkTryScheduleURACAM(b *testing.B) {
	r := rand.New(rand.NewSource(51))
	g := randomLoop(r, 40)
	m := machine.MustClustered(4, 64, 1, 1)
	ii := g.MII(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for try := ii; ; try++ {
			if _, fail := TrySchedule(g, m, try, &Options{Mode: ModeURACAM}); fail == nil {
				break
			}
		}
	}
}

func BenchmarkSMSOrder(b *testing.B) {
	r := rand.New(rand.NewSource(53))
	g := randomLoop(r, 80)
	m := machine.NewUnified(64)
	mii := g.MII(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Order(g, m, mii)
	}
}

func BenchmarkListSchedule(b *testing.B) {
	r := rand.New(rand.NewSource(54))
	g := randomLoop(r, 60)
	m := machine.MustClustered(2, 32, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ListSchedule(g, m, nil)
	}
}
