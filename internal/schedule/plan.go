package schedule

import (
	"sort"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/regpress"
)

// FailReason classifies why a placement (or a whole node) failed; it seeds
// the choice of transformation (§3.3.2: start with the most saturated
// resource).
type FailReason int8

const (
	FailNone   FailReason = iota
	FailFU                // no functional-unit slot in the window
	FailWindow            // dependence window empty
	FailBus               // no bus slot for a required communication
	FailRegs              // register file would overflow
	FailMem               // no memory port for a required load
)

var failNames = [...]string{"none", "fu", "window", "bus", "regs", "mem"}

// String returns a short name for the failure reason.
func (f FailReason) String() string { return failNames[f] }

// commPlan is a new transfer for the value produced by val. dest is the
// destination cluster on point-to-point links and -1 for a shared-bus
// broadcast.
type commPlan struct {
	val   int
	dest  int
	start int
}

// movePlan reschedules an existing transfer of val from old to new (always
// earlier, to meet a tighter consumer deadline; existing consumers only see
// the value arrive sooner). dest is -1 for a shared-bus broadcast.
type movePlan struct {
	val      int
	dest     int
	old, new int
}

// loadPlan adds a load of a memory-routed value into a cluster.
type loadPlan struct {
	val     int
	cluster int
	cycle   int
}

// usePlan records a consumer read: value val is read in cluster at cycle
// use (consumer start + II·dist).
type usePlan struct {
	val     int
	cluster int
	use     int
}

// plan is a fully-checked tentative placement of node v at (cluster, t).
type plan struct {
	v, cluster, t int

	comms []commPlan
	moves []movePlan
	loads []loadPlan
	uses  []usePlan

	merit merit
}

// merit is the §3.3.1 figure of merit: the fractions of remaining bus,
// per-cluster memory and per-cluster register-lifetime capacity this
// placement consumes (2·NClusters+1 components, with the per-cluster
// memory components of the §3.3.4 extension).
type merit []float64

// betterMerit reports whether a beats b: components sorted in decreasing
// order are compared pairwise until one pair differs by more than
// threshold (the smaller component wins); otherwise the smaller sum wins.
func betterMerit(a, b merit, threshold float64) bool {
	as := append(merit(nil), a...)
	bs := append(merit(nil), b...)
	sort.Sort(sort.Reverse(sort.Float64Slice(as)))
	sort.Sort(sort.Reverse(sort.Float64Slice(bs)))
	n := len(as)
	if len(bs) < n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		if d := as[i] - bs[i]; d > threshold {
			return false
		} else if d < -threshold {
			return true
		}
	}
	var sa, sb float64
	for _, x := range as {
		sa += x
	}
	for _, x := range bs {
		sb += x
	}
	return sa < sb
}

// planPlace attempts to construct a placement of node v at (c, t): it
// checks the functional unit, routes every dependence with already
// scheduled endpoints (reusing, moving or creating bus transfers; reusing
// or extending memory routes), verifies register capacity in every touched
// cluster, and computes the figure of merit. It never mutates the state.
func (st *state) planPlace(v, c, t int) (*plan, FailReason) {
	g, m, ii := st.g, st.m, st.ii
	node := g.Nodes[v]

	if !st.rt.CanPlaceOp(c, node.Op.Unit(), t) {
		return nil, FailFU
	}

	p := &plan{v: v, cluster: c, t: t}
	p2p := st.p2p()
	occ := m.XferOccupancy()
	// xferDelta tracks tentative transfer occupancy changes by channel and
	// modulo slot.
	xferDelta := map[[2]int]int{}
	slot := func(cyc int) int {
		s := cyc % ii
		if s < 0 {
			s += ii
		}
		return s
	}
	canXfer := func(src, dst, start int) bool {
		if m.NBus == 0 || (!m.Pipelined && m.LatBus >= ii) {
			return false
		}
		ch := st.rt.Channel(src, dst)
		for d := 0; d < occ; d++ {
			s := slot(start + d)
			if st.rt.ChannelAt(ch, s)+xferDelta[[2]int{ch, s}] >= m.NBus {
				return false
			}
		}
		return true
	}
	takeXfer := func(src, dst, start int) {
		ch := st.rt.Channel(src, dst)
		for d := 0; d < occ; d++ {
			xferDelta[[2]int{ch, slot(start + d)}]++
		}
	}
	dropXfer := func(src, dst, start int) {
		ch := st.rt.Channel(src, dst)
		for d := 0; d < occ; d++ {
			xferDelta[[2]int{ch, slot(start + d)}]--
		}
	}
	// memDelta tracks tentative load placements per cluster and slot. It
	// starts with v's own reservation when v is a memory operation, so a
	// planned load cannot claim the same last free port.
	memDelta := map[[2]int]int{}
	canMem := func(cl, cyc int) bool {
		return st.rt.MemAt(cl, slot(cyc))+memDelta[[2]int{cl, slot(cyc)}] < m.UnitsIn(cl, isa.MemUnit)
	}
	if node.Op.Unit() == isa.MemUnit {
		memDelta[[2]int{c, slot(t)}]++
	}

	def := t + m.OpLatency(node.Op) // when v's value is written

	// movedTo records transfer placements already planned for a (value,
	// destination) pair (several in-edges may read the same producer). The
	// destination is -1 for shared-bus broadcasts.
	movedTo := map[[2]int]int{}
	commAt := func(val *value, id, dest int) (int, bool) {
		if n, ok := movedTo[[2]int{id, dest}]; ok {
			return n, true
		}
		if val.comm != nil {
			return val.comm.startFor(dest, p2p)
		}
		return 0, false
	}

	// Incoming data dependences from scheduled producers.
	for _, ei := range g.In(v) {
		e := g.Edges[ei]
		u := e.From
		if !st.sched[u] {
			continue
		}
		need := t + ii*e.Dist
		if e.Kind != ddg.Data {
			if st.time[u]+e.Lat > need {
				return nil, FailWindow
			}
			continue
		}
		val := st.vals[u]
		uc := st.cluster[u]
		if st.time[u]+e.Lat > need || val.def > need {
			return nil, FailWindow
		}
		if uc == c {
			// A spilled value is register-dead between its store and the
			// reload completion: new home uses must wait for the reload.
			if val.spill != nil && need > val.spill.store && need < val.spill.load+m.OpLatency(isa.Load) {
				return nil, FailWindow
			}
			p.uses = append(p.uses, usePlan{val: u, cluster: c, use: need})
			continue
		}
		// Cross-cluster read.
		if val.mem != nil {
			if l, ok := val.mem.loads[c]; ok {
				if l+m.OpLatency(isa.Load) > need {
					return nil, FailWindow
				}
				p.uses = append(p.uses, usePlan{val: u, cluster: c, use: need})
				continue
			}
			// Add a load in c: latest feasible slot keeps the lifetime short.
			lo := val.mem.store + m.OpLatency(isa.Store)
			hi := need - m.OpLatency(isa.Load)
			found := false
			for l := hi; l >= lo && l > hi-ii; l-- {
				if canMem(c, l) {
					p.loads = append(p.loads, loadPlan{val: u, cluster: c, cycle: l})
					memDelta[[2]int{c, slot(l)}]++
					p.uses = append(p.uses, usePlan{val: u, cluster: c, use: need})
					found = true
					break
				}
			}
			if !found {
				return nil, FailMem
			}
			continue
		}
		dest := -1 // shared bus: one broadcast serves every cluster
		if p2p {
			dest = c // point-to-point: a dedicated transfer must reach c
		}
		if start, ok := commAt(val, u, dest); ok {
			if start+m.LatBus <= need {
				p.uses = append(p.uses, usePlan{val: u, cluster: c, use: need})
				continue
			}
			// Try moving the transfer earlier (never violates the comm's
			// existing consumers: they only see the value arrive sooner).
			moved := false
			for s := need - m.LatBus; s >= val.def && s > need-m.LatBus-ii; s-- {
				if !xferDepartOK(val, s, m) {
					continue
				}
				dropXfer(uc, c, start)
				if canXfer(uc, c, s) {
					takeXfer(uc, c, s)
					if _, already := movedTo[[2]int{u, dest}]; already {
						// The transfer was created or moved earlier in this
						// plan: update that entry (a plan-created transfer
						// lives in p.comms, a moved existing one in p.moves).
						updated := false
						for i := range p.moves {
							if p.moves[i].val == u && p.moves[i].dest == dest {
								p.moves[i].new = s
								updated = true
							}
						}
						if !updated {
							for i := range p.comms {
								if p.comms[i].val == u && p.comms[i].dest == dest {
									p.comms[i].start = s
								}
							}
						}
					} else {
						old, _ := val.comm.startFor(dest, p2p)
						p.moves = append(p.moves, movePlan{val: u, dest: dest, old: old, new: s})
					}
					movedTo[[2]int{u, dest}] = s
					p.uses = append(p.uses, usePlan{val: u, cluster: c, use: need})
					moved = true
					break
				}
				takeXfer(uc, c, start)
			}
			if !moved {
				return nil, FailBus
			}
			continue
		}
		// New transfer: earliest feasible start preserves later flexibility.
		placed := false
		for s := val.def; s+m.LatBus <= need && s < val.def+ii; s++ {
			if !xferDepartOK(val, s, m) {
				continue
			}
			if canXfer(uc, c, s) {
				takeXfer(uc, c, s)
				p.comms = append(p.comms, commPlan{val: u, dest: dest, start: s})
				movedTo[[2]int{u, dest}] = s
				p.uses = append(p.uses, usePlan{val: u, cluster: c, use: need})
				placed = true
				break
			}
		}
		if !placed {
			return nil, FailBus
		}
	}

	// Outgoing dependences toward scheduled consumers: v must deliver.
	crossNeeds := map[int]int{} // dest cluster → earliest deadline
	for _, ei := range g.Out(v) {
		e := g.Edges[ei]
		w := e.To
		if !st.sched[w] || w == v {
			continue
		}
		need := st.time[w] + ii*e.Dist
		if t+e.Lat > need {
			return nil, FailWindow
		}
		if e.Kind != ddg.Data {
			continue
		}
		wc := st.cluster[w]
		if wc == c {
			if def > need {
				return nil, FailWindow
			}
			p.uses = append(p.uses, usePlan{val: v, cluster: c, use: need})
			continue
		}
		if cur, ok := crossNeeds[wc]; !ok || need < cur {
			crossNeeds[wc] = need
		}
		p.uses = append(p.uses, usePlan{val: v, cluster: wc, use: need})
	}
	if len(crossNeeds) > 0 {
		if p2p {
			// One transfer per destination link, each meeting that
			// destination's own deadline (deterministic cluster order).
			for wc := 0; wc < m.Clusters; wc++ {
				need, ok := crossNeeds[wc]
				if !ok {
					continue
				}
				placed := false
				for s := def; s+m.LatBus <= need && s < def+ii; s++ {
					if canXfer(c, wc, s) {
						takeXfer(c, wc, s)
						p.comms = append(p.comms, commPlan{val: v, dest: wc, start: s})
						placed = true
						break
					}
				}
				if !placed {
					return nil, FailBus
				}
			}
		} else {
			// One broadcast transfer must meet the tightest deadline.
			minNeed := 1 << 30
			for _, n := range crossNeeds {
				if n < minNeed {
					minNeed = n
				}
			}
			placed := false
			for s := def; s+m.LatBus <= minNeed && s < def+ii; s++ {
				if canXfer(c, -1, s) {
					takeXfer(c, -1, s)
					p.comms = append(p.comms, commPlan{val: v, dest: -1, start: s})
					placed = true
					break
				}
			}
			if !placed {
				return nil, FailBus
			}
		}
	}

	// Register capacity: rebuild the spans of every touched value under the
	// planned routing and check each affected cluster.
	addUnits := make(map[int]int64)
	if !st.checkRegs(p, def, addUnits) {
		return nil, FailRegs
	}

	// Figure of merit: fractions of remaining capacity consumed.
	xferUsed := 0
	for _, d := range xferDelta {
		if d > 0 {
			xferUsed += d
		}
	}
	fm := make(merit, 0, 2*m.Clusters+1)
	fm = append(fm, fraction(int64(xferUsed), int64(st.freeXfer())))
	memUsed := make([]int64, m.Clusters)
	for k, d := range memDelta {
		if d > 0 {
			memUsed[k[0]] += int64(d)
		}
	}
	for cl := 0; cl < m.Clusters; cl++ {
		fm = append(fm, fraction(memUsed[cl], int64(st.freeMem(cl))))
	}
	for cl := 0; cl < m.Clusters; cl++ {
		fm = append(fm, fraction(addUnits[cl], st.freeLifetime(cl)))
	}
	p.merit = fm
	return p, FailNone
}

// fraction returns used/free, saturating at 1 when free is exhausted.
func fraction(used, free int64) float64 {
	if used <= 0 {
		return 0
	}
	if free <= 0 {
		return 1
	}
	f := float64(used) / float64(free)
	if f > 1 {
		return 1
	}
	return f
}

// checkRegs verifies that applying p keeps every cluster's MaxLive within
// the register file, and accumulates the net added lifetime units per
// cluster into addUnits. It never mutates st.
func (st *state) checkRegs(p *plan, def int, addUnits map[int]int64) bool {
	m := st.m
	// Hypothetical value views for every touched producer.
	type view struct {
		val    *value
		tmp    value
		before map[int][]regpress.Span
	}
	views := map[int]*view{}
	getView := func(id int) *view {
		if vw, ok := views[id]; ok {
			return vw
		}
		val := st.vals[id]
		vw := &view{val: val, before: map[int][]regpress.Span{}}
		vw.tmp = *val
		vw.tmp.minUse = append([]int(nil), val.minUse...)
		vw.tmp.maxUse = append([]int(nil), val.maxUse...)
		if val.comm != nil {
			cc := *val.comm
			if val.comm.dests != nil {
				cc.dests = make(map[int]int, len(val.comm.dests))
				for k, x := range val.comm.dests {
					cc.dests[k] = x
				}
			}
			vw.tmp.comm = &cc
		}
		if val.mem != nil {
			mm := *val.mem
			mm.loads = map[int]int{}
			for k, x := range val.mem.loads {
				mm.loads[k] = x
			}
			vw.tmp.mem = &mm
		}
		for c := 0; c < m.Clusters; c++ {
			vw.before[c] = val.spans(c, m)
		}
		views[id] = vw
		return vw
	}

	// v's own (new) value.
	if st.g.Nodes[p.v].Op.ProducesValue() {
		nv := newValue(p.cluster, def, m.Clusters)
		views[p.v] = &view{val: nil, tmp: *nv, before: map[int][]regpress.Span{}}
	}

	// setXfer records a planned transfer start on a hypothetical value view:
	// the broadcast start for the shared bus, one dests entry per link on
	// point-to-point machines.
	setXfer := func(tmp *value, dest, start int) {
		if dest < 0 {
			if tmp.comm == nil {
				tmp.comm = &comm{}
			}
			tmp.comm.start = start
			return
		}
		if tmp.comm == nil {
			tmp.comm = &comm{dests: map[int]int{}}
		} else if tmp.comm.dests == nil {
			tmp.comm.dests = map[int]int{}
		}
		tmp.comm.dests[dest] = start
	}
	for _, mv := range p.moves {
		setXfer(&getView(mv.val).tmp, mv.dest, mv.new)
	}
	for _, cp := range p.comms {
		if cp.val == p.v {
			setXfer(&views[p.v].tmp, cp.dest, cp.start)
		} else {
			setXfer(&getView(cp.val).tmp, cp.dest, cp.start)
		}
	}
	for _, lp := range p.loads {
		vw := getView(lp.val)
		vw.tmp.mem.loads[lp.cluster] = lp.cycle
	}
	for _, up := range p.uses {
		var vw *view
		if up.val == p.v {
			vw = views[p.v]
		} else {
			vw = getView(up.val)
		}
		if cur := vw.tmp.minUse[up.cluster]; cur == noUse || up.use < cur {
			vw.tmp.minUse[up.cluster] = up.use
		}
		if cur := vw.tmp.maxUse[up.cluster]; cur == noUse || up.use > cur {
			vw.tmp.maxUse[up.cluster] = up.use
		}
	}

	// Per-cluster simulation on a reusable scratch buffer. The after-spans
	// are computed once per (view, cluster).
	if cap(st.simBuf) < st.ii {
		st.simBuf = make([]int, st.ii)
	}
	for c := 0; c < m.Clusters; c++ {
		var before, after int64
		var rem, add []regpress.Span
		for _, vw := range views {
			for _, sp := range vw.before[c] {
				rem = append(rem, sp)
				before += int64(sp.Len())
			}
			for _, sp := range vw.tmp.spans(c, m) {
				add = append(add, sp)
				after += int64(sp.Len())
			}
		}
		if len(rem) == 0 && len(add) == 0 {
			continue
		}
		if !st.press[c].FitsWith(rem, add, m.RegsIn(c), st.simBuf[:st.ii]) {
			return false
		}
		if d := after - before; d > 0 {
			addUnits[c] += d
		}
	}
	return true
}

// xferDepartOK reports whether a transfer of val may depart at cycle s: the
// value must already be written and register-resident — for spilled values,
// outside the dead window between the spill store and the reload
// completion.
func xferDepartOK(val *value, s int, m *machine.Config) bool {
	if s < val.def {
		return false
	}
	if val.spill != nil {
		if reload := val.spill.load + m.OpLatency(isa.Load); s > val.spill.store && s < reload {
			return false
		}
	}
	return true
}
