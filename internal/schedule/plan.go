package schedule

import (
	"sort"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/regpress"
)

// FailReason classifies why a placement (or a whole node) failed; it seeds
// the choice of transformation (§3.3.2: start with the most saturated
// resource).
type FailReason int8

const (
	FailNone   FailReason = iota
	FailFU                // no functional-unit slot in the window
	FailWindow            // dependence window empty
	FailBus               // no bus slot for a required communication
	FailRegs              // register file would overflow
	FailMem               // no memory port for a required load
)

var failNames = [...]string{"none", "fu", "window", "bus", "regs", "mem"}

// String returns a short name for the failure reason.
func (f FailReason) String() string { return failNames[f] }

// commPlan is a new bus transfer for the value produced by val.
type commPlan struct {
	val   int
	start int
}

// movePlan reschedules an existing transfer of val from old to new (always
// earlier, to meet a tighter consumer deadline; existing consumers only see
// the value arrive sooner).
type movePlan struct {
	val      int
	old, new int
}

// loadPlan adds a load of a memory-routed value into a cluster.
type loadPlan struct {
	val     int
	cluster int
	cycle   int
}

// usePlan records a consumer read: value val is read in cluster at cycle
// use (consumer start + II·dist).
type usePlan struct {
	val     int
	cluster int
	use     int
}

// plan is a fully-checked tentative placement of node v at (cluster, t).
type plan struct {
	v, cluster, t int

	comms []commPlan
	moves []movePlan
	loads []loadPlan
	uses  []usePlan

	merit merit
}

// merit is the §3.3.1 figure of merit: the fractions of remaining bus,
// per-cluster memory and per-cluster register-lifetime capacity this
// placement consumes (2·NClusters+1 components, with the per-cluster
// memory components of the §3.3.4 extension).
type merit []float64

// betterMerit reports whether a beats b: components sorted in decreasing
// order are compared pairwise until one pair differs by more than
// threshold (the smaller component wins); otherwise the smaller sum wins.
func betterMerit(a, b merit, threshold float64) bool {
	as := append(merit(nil), a...)
	bs := append(merit(nil), b...)
	sort.Sort(sort.Reverse(sort.Float64Slice(as)))
	sort.Sort(sort.Reverse(sort.Float64Slice(bs)))
	n := len(as)
	if len(bs) < n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		if d := as[i] - bs[i]; d > threshold {
			return false
		} else if d < -threshold {
			return true
		}
	}
	var sa, sb float64
	for _, x := range as {
		sa += x
	}
	for _, x := range bs {
		sb += x
	}
	return sa < sb
}

// planPlace attempts to construct a placement of node v at (c, t): it
// checks the functional unit, routes every dependence with already
// scheduled endpoints (reusing, moving or creating bus transfers; reusing
// or extending memory routes), verifies register capacity in every touched
// cluster, and computes the figure of merit. It never mutates the state.
func (st *state) planPlace(v, c, t int) (*plan, FailReason) {
	g, m, ii := st.g, st.m, st.ii
	node := g.Nodes[v]

	if !st.rt.CanPlaceOp(c, node.Op.Unit(), t) {
		return nil, FailFU
	}

	p := &plan{v: v, cluster: c, t: t}
	// busDelta tracks tentative bus occupancy changes by modulo slot.
	busDelta := map[int]int{}
	slot := func(cyc int) int {
		s := cyc % ii
		if s < 0 {
			s += ii
		}
		return s
	}
	canBus := func(start int) bool {
		if m.NBus == 0 || m.LatBus >= ii {
			return false
		}
		for d := 0; d < m.LatBus; d++ {
			s := slot(start + d)
			if st.rt.BusAt(s)+busDelta[s] >= m.NBus {
				return false
			}
		}
		return true
	}
	takeBus := func(start int) {
		for d := 0; d < m.LatBus; d++ {
			busDelta[slot(start+d)]++
		}
	}
	dropBus := func(start int) {
		for d := 0; d < m.LatBus; d++ {
			busDelta[slot(start+d)]--
		}
	}
	// memDelta tracks tentative load placements per cluster and slot. It
	// starts with v's own reservation when v is a memory operation, so a
	// planned load cannot claim the same last free port.
	memDelta := map[[2]int]int{}
	canMem := func(cl, cyc int) bool {
		return st.rt.MemAt(cl, slot(cyc))+memDelta[[2]int{cl, slot(cyc)}] < m.UnitsPerCluster(isa.MemUnit)
	}
	if node.Op.Unit() == isa.MemUnit {
		memDelta[[2]int{c, slot(t)}]++
	}

	def := t + m.OpLatency(node.Op) // when v's value is written

	// movedTo records comm moves already planned for a value (several
	// in-edges may read the same producer).
	movedTo := map[int]int{}
	commAt := func(val *value, id int) (int, bool) {
		if n, ok := movedTo[id]; ok {
			return n, true
		}
		if val.comm != nil {
			return val.comm.start, true
		}
		return 0, false
	}

	// Incoming data dependences from scheduled producers.
	for _, ei := range g.In(v) {
		e := g.Edges[ei]
		u := e.From
		if !st.sched[u] {
			continue
		}
		need := t + ii*e.Dist
		if e.Kind != ddg.Data {
			if st.time[u]+e.Lat > need {
				return nil, FailWindow
			}
			continue
		}
		val := st.vals[u]
		uc := st.cluster[u]
		if st.time[u]+e.Lat > need || val.def > need {
			return nil, FailWindow
		}
		if uc == c {
			p.uses = append(p.uses, usePlan{val: u, cluster: c, use: need})
			continue
		}
		// Cross-cluster read.
		if val.mem != nil {
			if l, ok := val.mem.loads[c]; ok {
				if l+m.OpLatency(isa.Load) > need {
					return nil, FailWindow
				}
				p.uses = append(p.uses, usePlan{val: u, cluster: c, use: need})
				continue
			}
			// Add a load in c: latest feasible slot keeps the lifetime short.
			lo := val.mem.store + m.OpLatency(isa.Store)
			hi := need - m.OpLatency(isa.Load)
			found := false
			for l := hi; l >= lo && l > hi-ii; l-- {
				if canMem(c, l) {
					p.loads = append(p.loads, loadPlan{val: u, cluster: c, cycle: l})
					memDelta[[2]int{c, slot(l)}]++
					p.uses = append(p.uses, usePlan{val: u, cluster: c, use: need})
					found = true
					break
				}
			}
			if !found {
				return nil, FailMem
			}
			continue
		}
		if start, ok := commAt(val, u); ok {
			if start+m.LatBus <= need {
				p.uses = append(p.uses, usePlan{val: u, cluster: c, use: need})
				continue
			}
			// Try moving the transfer earlier (never violates the comm's
			// existing consumers).
			moved := false
			for s := need - m.LatBus; s >= val.def && s > need-m.LatBus-ii; s-- {
				dropBus(start)
				if canBus(s) {
					takeBus(s)
					if _, already := movedTo[u]; already {
						// The transfer was created or moved earlier in this
						// plan: update that entry (a plan-created transfer
						// lives in p.comms, a moved existing one in p.moves).
						updated := false
						for i := range p.moves {
							if p.moves[i].val == u {
								p.moves[i].new = s
								updated = true
							}
						}
						if !updated {
							for i := range p.comms {
								if p.comms[i].val == u {
									p.comms[i].start = s
								}
							}
						}
					} else {
						p.moves = append(p.moves, movePlan{val: u, old: val.comm.start, new: s})
					}
					movedTo[u] = s
					p.uses = append(p.uses, usePlan{val: u, cluster: c, use: need})
					moved = true
					break
				}
				takeBus(start)
			}
			if !moved {
				return nil, FailBus
			}
			continue
		}
		// New transfer: earliest feasible start preserves later flexibility.
		placed := false
		for s := val.def; s+m.LatBus <= need && s < val.def+ii; s++ {
			if canBus(s) {
				takeBus(s)
				p.comms = append(p.comms, commPlan{val: u, start: s})
				movedTo[u] = s
				p.uses = append(p.uses, usePlan{val: u, cluster: c, use: need})
				placed = true
				break
			}
		}
		if !placed {
			return nil, FailBus
		}
	}

	// Outgoing dependences toward scheduled consumers: v must deliver.
	crossNeeds := map[int]int{} // dest cluster → earliest deadline
	for _, ei := range g.Out(v) {
		e := g.Edges[ei]
		w := e.To
		if !st.sched[w] || w == v {
			continue
		}
		need := st.time[w] + ii*e.Dist
		if t+e.Lat > need {
			return nil, FailWindow
		}
		if e.Kind != ddg.Data {
			continue
		}
		wc := st.cluster[w]
		if wc == c {
			if def > need {
				return nil, FailWindow
			}
			p.uses = append(p.uses, usePlan{val: v, cluster: c, use: need})
			continue
		}
		if cur, ok := crossNeeds[wc]; !ok || need < cur {
			crossNeeds[wc] = need
		}
		p.uses = append(p.uses, usePlan{val: v, cluster: wc, use: need})
	}
	if len(crossNeeds) > 0 {
		// One broadcast transfer must meet the tightest deadline.
		minNeed := 1 << 30
		for _, n := range crossNeeds {
			if n < minNeed {
				minNeed = n
			}
		}
		placed := false
		for s := def; s+m.LatBus <= minNeed && s < def+ii; s++ {
			if canBus(s) {
				takeBus(s)
				p.comms = append(p.comms, commPlan{val: v, start: s})
				placed = true
				break
			}
		}
		if !placed {
			return nil, FailBus
		}
	}

	// Register capacity: rebuild the spans of every touched value under the
	// planned routing and check each affected cluster.
	addUnits := make(map[int]int64)
	if !st.checkRegs(p, def, addUnits) {
		return nil, FailRegs
	}

	// Figure of merit: fractions of remaining capacity consumed.
	busUsed := 0
	for _, d := range busDelta {
		if d > 0 {
			busUsed += d
		}
	}
	fm := make(merit, 0, 2*m.Clusters+1)
	fm = append(fm, fraction(int64(busUsed), int64(st.freeBus())))
	memUsed := make([]int64, m.Clusters)
	for k, d := range memDelta {
		if d > 0 {
			memUsed[k[0]] += int64(d)
		}
	}
	for cl := 0; cl < m.Clusters; cl++ {
		fm = append(fm, fraction(memUsed[cl], int64(st.freeMem(cl))))
	}
	for cl := 0; cl < m.Clusters; cl++ {
		fm = append(fm, fraction(addUnits[cl], st.freeLifetime(cl)))
	}
	p.merit = fm
	return p, FailNone
}

// fraction returns used/free, saturating at 1 when free is exhausted.
func fraction(used, free int64) float64 {
	if used <= 0 {
		return 0
	}
	if free <= 0 {
		return 1
	}
	f := float64(used) / float64(free)
	if f > 1 {
		return 1
	}
	return f
}

// checkRegs verifies that applying p keeps every cluster's MaxLive within
// the register file, and accumulates the net added lifetime units per
// cluster into addUnits. It never mutates st.
func (st *state) checkRegs(p *plan, def int, addUnits map[int]int64) bool {
	m := st.m
	// Hypothetical value views for every touched producer.
	type view struct {
		val    *value
		tmp    value
		before map[int][]regpress.Span
	}
	views := map[int]*view{}
	getView := func(id int) *view {
		if vw, ok := views[id]; ok {
			return vw
		}
		val := st.vals[id]
		vw := &view{val: val, before: map[int][]regpress.Span{}}
		vw.tmp = *val
		vw.tmp.minUse = append([]int(nil), val.minUse...)
		vw.tmp.maxUse = append([]int(nil), val.maxUse...)
		if val.comm != nil {
			cc := *val.comm
			vw.tmp.comm = &cc
		}
		if val.mem != nil {
			mm := *val.mem
			mm.loads = map[int]int{}
			for k, x := range val.mem.loads {
				mm.loads[k] = x
			}
			vw.tmp.mem = &mm
		}
		for c := 0; c < m.Clusters; c++ {
			vw.before[c] = val.spans(c, m)
		}
		views[id] = vw
		return vw
	}

	// v's own (new) value.
	if st.g.Nodes[p.v].Op.ProducesValue() {
		nv := newValue(p.cluster, def, m.Clusters)
		views[p.v] = &view{val: nil, tmp: *nv, before: map[int][]regpress.Span{}}
	}

	for _, mv := range p.moves {
		getView(mv.val).tmp.comm = &comm{start: mv.new}
	}
	for _, cp := range p.comms {
		if cp.val == p.v {
			views[p.v].tmp.comm = &comm{start: cp.start}
		} else {
			getView(cp.val).tmp.comm = &comm{start: cp.start}
		}
	}
	for _, lp := range p.loads {
		vw := getView(lp.val)
		vw.tmp.mem.loads[lp.cluster] = lp.cycle
	}
	for _, up := range p.uses {
		var vw *view
		if up.val == p.v {
			vw = views[p.v]
		} else {
			vw = getView(up.val)
		}
		if cur := vw.tmp.minUse[up.cluster]; cur == noUse || up.use < cur {
			vw.tmp.minUse[up.cluster] = up.use
		}
		if cur := vw.tmp.maxUse[up.cluster]; cur == noUse || up.use > cur {
			vw.tmp.maxUse[up.cluster] = up.use
		}
	}

	// Per-cluster simulation on a reusable scratch buffer. The after-spans
	// are computed once per (view, cluster).
	if cap(st.simBuf) < st.ii {
		st.simBuf = make([]int, st.ii)
	}
	for c := 0; c < m.Clusters; c++ {
		var before, after int64
		var rem, add []regpress.Span
		for _, vw := range views {
			for _, sp := range vw.before[c] {
				rem = append(rem, sp)
				before += int64(sp.Len())
			}
			for _, sp := range vw.tmp.spans(c, m) {
				add = append(add, sp)
				after += int64(sp.Len())
			}
		}
		if len(rem) == 0 && len(add) == 0 {
			continue
		}
		if !st.press[c].FitsWith(rem, add, m.RegsPerCluster, st.simBuf[:st.ii]) {
			return false
		}
		if d := after - before; d > 0 {
			addUnits[c] += d
		}
	}
	return true
}
