package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Journal is the durable Store: an append-only WAL of CRC-framed JSON
// records plus a checkpoint file for compaction.
//
// Directory layout:
//
//	<dir>/VERSION     format marker ("gpcoordd-journal-v1"); a mismatch
//	                  fails Open rather than misreading foreign bytes
//	<dir>/checkpoint  one frame: {last_seq, state} — the fold of every
//	                  record with Seq ≤ last_seq
//	<dir>/wal         appended frames; replay skips Seq ≤ checkpoint
//	                  last_seq (a crash between checkpoint rename and WAL
//	                  truncate leaves already-folded records behind)
//
// Each frame is [4-byte LE payload length][4-byte LE CRC-32C][payload].
// Replay stops at the first frame that is short, oversized, or fails its
// CRC — the torn tail a crash mid-append leaves — and truncates the WAL
// there, so the journal self-heals from kill -9 at any byte. A frame
// whose CRC passes but whose payload does not parse or apply is real
// corruption (or a foreign writer) and fails Open: better a loud refusal
// than silently adopting wrong state.
//
// Compaction: when the WAL exceeds CompactBytes, the current tables are
// checkpointed (write tmp, fsync, rename, fsync dir) and the WAL is
// truncated. Every append fsyncs unless NoSync is set.
type Journal struct {
	mu      sync.Mutex
	dir     string
	opts    JournalOptions
	t       *tables
	wal     *os.File
	walSize int64
	seq     uint64 // last assigned LSN
	stats   Stats
	closed  bool
}

// JournalOptions tunes OpenJournal. The zero value is the production
// configuration.
type JournalOptions struct {
	// NoSync skips the per-append fsync. Only benchmarks and tests that
	// measure the encoding path should set it: a power loss can then lose
	// acknowledged records (kill -9 still cannot corrupt the journal).
	NoSync bool
	// CompactBytes is the WAL size that triggers a checkpoint+truncate
	// cycle (default 4 MiB).
	CompactBytes int64
}

func (o JournalOptions) compactBytes() int64 {
	if o.CompactBytes > 0 {
		return o.CompactBytes
	}
	return 4 << 20
}

const (
	journalVersion = "gpcoordd-journal-v1"
	versionFile    = "VERSION"
	checkpointFile = "checkpoint"
	walFile        = "wal"
	frameHeader    = 8
	// maxFrameBytes bounds one record so a corrupt length field cannot
	// drive a giant allocation; real records are a few hundred bytes plus
	// a cell's CSV fragment.
	maxFrameBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checkpoint is the payload of the checkpoint file.
type checkpoint struct {
	LastSeq uint64 `json:"last_seq"`
	State   *State `json:"state"`
}

// OpenJournal opens (creating if needed) the journal in dir, replays it,
// and fails fast — rather than running silently non-durable — when the
// directory is unwritable, carries a different format version, or holds
// corrupt non-tail records.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create dir: %w", err)
	}
	if err := checkVersion(dir); err != nil {
		return nil, err
	}

	j := &Journal{dir: dir, opts: opts, t: newTables()}
	lastSeq, err := j.loadCheckpoint()
	if err != nil {
		return nil, err
	}
	j.seq = lastSeq

	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open wal: %w", err)
	}
	if err := j.replay(wal, lastSeq); err != nil {
		wal.Close()
		return nil, err
	}
	j.wal = wal
	return j, nil
}

// checkVersion enforces the format marker: a fresh/empty directory gets
// one written, anything else must match exactly.
func checkVersion(dir string) error {
	path := filepath.Join(dir, versionFile)
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if got := strings.TrimSpace(string(data)); got != journalVersion {
			return fmt.Errorf("journal: %s holds version %q, this gpcoordd writes %q — migrate or point -journal at a fresh directory", dir, got, journalVersion)
		}
		return nil
	case os.IsNotExist(err):
		for _, f := range []string{checkpointFile, walFile} {
			if _, serr := os.Stat(filepath.Join(dir, f)); serr == nil {
				return fmt.Errorf("journal: %s has journal files but no %s marker — refusing to guess its format", dir, versionFile)
			}
		}
		if werr := writeFileSync(path, []byte(journalVersion+"\n")); werr != nil {
			return fmt.Errorf("journal: dir not writable: %w", werr)
		}
		return nil
	default:
		return fmt.Errorf("journal: read %s: %w", versionFile, err)
	}
}

// loadCheckpoint folds the checkpoint file (if any) into the tables and
// returns its last applied sequence number.
func (j *Journal) loadCheckpoint() (uint64, error) {
	data, err := os.ReadFile(filepath.Join(j.dir, checkpointFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("journal: read checkpoint: %w", err)
	}
	r := bufio.NewReader(bytes.NewReader(data))
	payload, _, err := readFrame(r)
	if err != nil {
		return 0, fmt.Errorf("journal: checkpoint corrupt: %v", err)
	}
	if _, rerr := r.ReadByte(); rerr != io.EOF {
		return 0, fmt.Errorf("journal: checkpoint has trailing bytes")
	}
	var cp checkpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		return 0, fmt.Errorf("journal: checkpoint corrupt: %v", err)
	}
	if cp.State != nil {
		j.t.load(cp.State)
	}
	return cp.LastSeq, nil
}

// replay folds the WAL into the tables, skipping records the checkpoint
// already covers, truncating the torn tail a crash may have left, and
// leaving the file positioned for appends.
func (j *Journal) replay(wal *os.File, lastSeq uint64) error {
	info, err := wal.Stat()
	if err != nil {
		return fmt.Errorf("journal: stat wal: %w", err)
	}
	size := info.Size()
	r := bufio.NewReader(io.NewSectionReader(wal, 0, size))
	var off int64
	for {
		payload, n, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: a crash mid-append. Drop it and heal.
			j.stats.TruncatedBytes = size - off
			if terr := wal.Truncate(off); terr != nil {
				return fmt.Errorf("journal: truncate torn wal tail: %w", terr)
			}
			break
		}
		var rec record
		if uerr := json.Unmarshal(payload, &rec); uerr != nil {
			return fmt.Errorf("journal: wal record at offset %d corrupt (CRC valid, payload not): %v", off, uerr)
		}
		if rec.Seq > lastSeq {
			if aerr := j.t.apply(&rec); aerr != nil {
				return fmt.Errorf("journal: wal record at offset %d: %v", off, aerr)
			}
			j.stats.ReplayedRecords++
			if rec.Seq > j.seq {
				j.seq = rec.Seq
			}
		}
		off += int64(n)
	}
	if _, err := wal.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("journal: seek wal: %w", err)
	}
	j.walSize = off
	return nil
}

func (j *Journal) mutate(rec *record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("store: closed")
	}
	if err := j.t.apply(rec); err != nil {
		return err
	}
	j.seq++
	rec.Seq = j.seq
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	n, err := writeFrame(j.wal, payload)
	if err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.wal.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	j.walSize += int64(n)
	j.stats.Appends++
	j.stats.AppendedBytes += int64(n)
	if j.walSize >= j.opts.compactBytes() {
		if err := j.compact(); err != nil {
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	return nil
}

// compact checkpoints the tables and truncates the WAL. Called with the
// lock held. Crash windows: before the rename, the old checkpoint + full
// WAL still reconstruct everything; between rename and truncate, the WAL
// records are all ≤ the new checkpoint's last_seq and replay skips them.
func (j *Journal) compact() error {
	payload, err := json.Marshal(&checkpoint{LastSeq: j.seq, State: j.t.snapshot()})
	if err != nil {
		return err
	}
	tmp := filepath.Join(j.dir, checkpointFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := writeFrame(f, payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, checkpointFile)); err != nil {
		return err
	}
	syncDir(j.dir)
	if err := j.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := j.wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if !j.opts.NoSync {
		if err := j.wal.Sync(); err != nil {
			return err
		}
	}
	j.walSize = 0
	j.stats.Compactions++
	return nil
}

// Load returns a deep snapshot of the replayed state.
func (j *Journal) Load() (*State, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, fmt.Errorf("store: closed")
	}
	return j.t.snapshot(), nil
}

// PutNode implements Store.
func (j *Journal) PutNode(n NodeRecord) error {
	return j.mutate(&record{Op: opNodePut, Node: &n})
}

// DeleteNode implements Store.
func (j *Journal) DeleteNode(id string) error {
	return j.mutate(&record{Op: opNodeDel, ID: id})
}

// PutJob implements Store.
func (j *Journal) PutJob(id string, seq int64, request []byte) error {
	return j.mutate(&record{Op: opJobPut, ID: id, JobSeq: seq, Request: request})
}

// FinishCell implements Store.
func (j *Journal) FinishCell(jobID string, cell CellRecord) error {
	return j.mutate(&record{Op: opCellDone, ID: jobID, Cell: &cell})
}

// SetJobState implements Store.
func (j *Journal) SetJobState(jobID, state string) error {
	return j.mutate(&record{Op: opJobState, ID: jobID, State: state})
}

// DeleteJob implements Store.
func (j *Journal) DeleteJob(id string) error {
	return j.mutate(&record{Op: opJobDel, ID: id})
}

// SetEpoch implements Store.
func (j *Journal) SetEpoch(epoch uint64) error {
	return j.mutate(&record{Op: opEpochSet, Epoch: epoch})
}

// PutPlacement implements Store.
func (j *Journal) PutPlacement(p PlacementRecord) error {
	return j.mutate(&record{Op: opPlacePut, Placement: &p})
}

// DeletePlacement implements Store.
func (j *Journal) DeletePlacement(key string) error {
	return j.mutate(&record{Op: opPlaceDel, ID: key})
}

// Stats implements Store.
// Durable reports true: journaled mutations survive a restart.
func (j *Journal) Durable() bool { return true }

func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Close syncs and closes the WAL.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if !j.opts.NoSync {
		if err := j.wal.Sync(); err != nil {
			j.wal.Close()
			return err
		}
	}
	return j.wal.Close()
}

// writeFrame appends one [len][crc][payload] frame.
func writeFrame(w io.Writer, payload []byte) (int, error) {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return frameHeader + len(payload), nil
}

var errTornFrame = fmt.Errorf("torn or corrupt frame")

// readFrame reads one frame. io.EOF means a clean end exactly at a frame
// boundary; any short read, oversized length, or CRC mismatch returns
// errTornFrame.
func readFrame(r *bufio.Reader) ([]byte, int, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:1]); err == io.EOF {
		return nil, 0, io.EOF
	} else if err != nil {
		return nil, 0, errTornFrame
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, 0, errTornFrame
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length > maxFrameBytes {
		return nil, 0, errTornFrame
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, errTornFrame
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, 0, errTornFrame
	}
	return payload, frameHeader + int(length), nil
}

// writeFileSync writes path atomically-enough for a marker file: write,
// sync, close.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir best-effort fsyncs a directory so a rename is durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
