// Package store persists the coordinator's mutable control-plane state —
// the node registry, sweep-job specs, and completed cell fragments —
// behind a tiny pluggable interface, in the spirit of ranger's persister
// and persys-scheduler's etcd state layout.
//
// Two implementations ship:
//
//   - Memory: maps behind a mutex. Tests, and the default when gpcoordd
//     runs without -journal (a restart forgets everything, exactly the
//     pre-durability behavior).
//   - Journal: an append-only file WAL with CRC-framed records, a
//     checkpoint file for compaction, and crash-truncation-tolerant
//     replay. gpcoordd -journal <dir> resumes in-flight sweeps across
//     restarts from it.
//
// The store records *facts*, not liveness: node endpoints and capacities,
// job requests, per-cell completed CSV fragments, terminal job states.
// Heartbeats, health states and in-flight attempt bookkeeping are runtime
// state the coordinator rebuilds — a journaled node is adopted as suspect
// until its next heartbeat, and a journaled running job re-dispatches
// every cell the journal does not prove finished.
package store

// NodeRecord is one registered worker: the immutable registration facts,
// not its health (which only heartbeats can prove).
type NodeRecord struct {
	ID       string `json:"id"`
	Endpoint string `json:"endpoint"`
	Capacity int    `json:"capacity"`
	// AlgoVersion is the scheduler algorithm identity the worker advertised
	// at registration (schedule.AlgoVersion plus any output-affecting
	// options). A registration fact, not liveness: the coordinator uses it
	// to refuse mixing fragments from different versions in one job.
	AlgoVersion string `json:"algo_version,omitempty"`
	// SchemaVersion is the wire-codec identity the worker advertised at
	// registration; the coordinator refuses mixed-schema fleets the same
	// way it refuses mixed algorithm versions inside one job.
	SchemaVersion string `json:"schema_version,omitempty"`
	// Draining marks an operator-initiated drain: the node stays registered
	// and heartbeating but receives no new placements. Persisted so a drain
	// decision survives a coordinator restart.
	Draining bool `json:"draining,omitempty"`
}

// PlacementRecord is one durable placement: a unit of work (a sweep-job
// cell, keyed by its content-address key) assigned to a node. Journaled at
// the Preparing transition and deleted at Dropped, so a restarted
// coordinator re-places in-flight work on the node that already holds its
// cache entry instead of re-running rendezvous from scratch.
type PlacementRecord struct {
	Key     string `json:"key"`
	Node    string `json:"node"`
	State   string `json:"state"`
	Spilled bool   `json:"spilled,omitempty"`
}

// CellRecord is one completed sweep-job cell: its position in the job's
// deterministic cell enumeration, the content-address key it was computed
// under (re-checked on restore — a fragment whose key no longer matches
// the re-derived enumeration is discarded and recomputed), and the CSV
// fragment itself, header stripped.
type CellRecord struct {
	Index int    `json:"index"`
	Key   string `json:"key"`
	Rows  []byte `json:"rows"`
	// AlgoVersion is the algorithm identity of the worker that produced the
	// fragment. On restore, fragments are readopted only when they all share
	// one version — a journal must never resurrect a mixed-version job.
	AlgoVersion string `json:"algo_version,omitempty"`
}

// Job states a store will accept and return.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobRecord is one sweep job: the canonical request body (cells are
// re-derived from it deterministically on restore, so the journal stays
// tiny), the creation sequence number, the terminal state if any, and the
// completed cell fragments.
type JobRecord struct {
	ID      string       `json:"id"`
	Seq     int64        `json:"seq"`
	Request []byte       `json:"request"`
	State   string       `json:"state"`
	Cells   []CellRecord `json:"cells,omitempty"`
}

// State is a point-in-time snapshot of everything a store holds. Nodes
// are sorted by ID, Jobs by Seq, each job's Cells by Index, so snapshots
// of equal state are deeply equal.
type State struct {
	Nodes []NodeRecord `json:"nodes,omitempty"`
	Jobs  []JobRecord  `json:"jobs,omitempty"`
	// JobSeq is the highest job sequence number ever put, including
	// deleted jobs — a restarted coordinator must never reissue an ID.
	JobSeq int64 `json:"job_seq,omitempty"`
	// Epoch is the fleet cache epoch: bumped by every POST /v1/cache/flush
	// and persisted before the flush fans out, so a restarted coordinator
	// never resurrects a pre-flush view of the fleet's caches.
	Epoch uint64 `json:"epoch,omitempty"`
	// Placements are the durable in-flight placements, sorted by Key.
	Placements []PlacementRecord `json:"placements,omitempty"`
}

// Stats counts a store's write traffic; the coordinator exposes them on
// /metrics.
type Stats struct {
	// Appends is the number of persisted mutations.
	Appends int64
	// AppendedBytes is the journal bytes written for them (0 for Memory).
	AppendedBytes int64
	// Compactions counts checkpoint+truncate cycles (0 for Memory).
	Compactions int64
	// ReplayedRecords counts WAL records applied at open.
	ReplayedRecords int64
	// TruncatedBytes is how much torn tail the last open discarded.
	TruncatedBytes int64
}

// Store is the persistence interface the coordinator writes through.
// Implementations must be safe for concurrent use.
type Store interface {
	// Load returns a deep snapshot of the persisted state. The
	// coordinator calls it once at startup.
	Load() (*State, error)
	// PutNode inserts or replaces a node's registration facts.
	PutNode(n NodeRecord) error
	// DeleteNode removes a node (deregistration or dead-node expiry).
	// Deleting an unknown ID is a no-op.
	DeleteNode(id string) error
	// PutJob registers a new job in state JobRunning. seq must be the
	// coordinator's monotonically increasing job counter.
	PutJob(id string, seq int64, request []byte) error
	// FinishCell records one completed cell fragment of a known job,
	// replacing any previous fragment at the same index.
	FinishCell(jobID string, cell CellRecord) error
	// SetJobState moves a known job to JobDone or JobFailed.
	SetJobState(jobID, state string) error
	// SetEpoch raises the persisted fleet cache epoch. Lowering is a no-op:
	// the epoch is monotonic by construction.
	SetEpoch(epoch uint64) error
	// PutPlacement inserts or replaces a durable placement by Key.
	PutPlacement(p PlacementRecord) error
	// DeletePlacement removes a placement (the work finished or was
	// abandoned). Deleting an unknown key is a no-op.
	DeletePlacement(key string) error
	// DeleteJob removes a job and its fragments (retention eviction).
	// Deleting an unknown ID is a no-op.
	DeleteJob(id string) error
	// Stats returns the write-traffic counters.
	Stats() Stats
	// Durable reports whether mutations survive a process restart (true
	// for the journal store, false for the in-memory one). The
	// coordinator's /healthz surfaces it so an operator can tell at a
	// glance whether this control plane can keep its durability promises.
	Durable() bool
	// Close releases the store. Mutations after Close fail.
	Close() error
}
