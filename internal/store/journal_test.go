package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// applyOps drives the same pseudo-random mutation sequence against any
// Store. Errors from mutations that reference unknown jobs are expected
// (the generator does not track liveness perfectly) — what matters is
// that both stores agree on every outcome.
func applyOps(t *testing.T, s Store, rng *rand.Rand, n int) []error {
	t.Helper()
	errs := make([]error, 0, n)
	var jobSeq int64
	for i := 0; i < n; i++ {
		var err error
		switch rng.Intn(7) {
		case 0:
			err = s.PutNode(NodeRecord{
				ID:          fmt.Sprintf("n%d", rng.Intn(4)),
				Endpoint:    fmt.Sprintf("127.0.0.1:%d", 9000+rng.Intn(100)),
				Capacity:    rng.Intn(8),
				AlgoVersion: fmt.Sprintf("gp/%d", 1+rng.Intn(3)),
			})
		case 1:
			err = s.DeleteNode(fmt.Sprintf("n%d", rng.Intn(5)))
		case 2:
			jobSeq++
			err = s.PutJob(fmt.Sprintf("job-%d", rng.Intn(6)), jobSeq,
				[]byte(fmt.Sprintf(`{"maxLoops":%d}`, rng.Intn(1000))))
		case 3:
			err = s.FinishCell(fmt.Sprintf("job-%d", rng.Intn(6)), CellRecord{
				Index:       rng.Intn(10),
				Key:         fmt.Sprintf("key-%d", rng.Intn(20)),
				Rows:        []byte(fmt.Sprintf("a,b,%d\n", rng.Intn(1000))),
				AlgoVersion: fmt.Sprintf("gp/%d", 1+rng.Intn(3)),
			})
		case 4:
			state := JobDone
			if rng.Intn(2) == 0 {
				state = JobFailed
			}
			err = s.SetJobState(fmt.Sprintf("job-%d", rng.Intn(6)), state)
		case 5:
			err = s.DeleteJob(fmt.Sprintf("job-%d", rng.Intn(6)))
		case 6:
			err = s.SetEpoch(uint64(rng.Intn(16)))
		}
		errs = append(errs, err)
	}
	return errs
}

// TestJournalMatchesMemory is the round-trip property test: the same
// random op sequence applied to Memory and to a Journal — with the
// journal reopened (replayed) mid-sequence and at the end — must yield
// deeply equal states and identical per-op outcomes.
func TestJournalMatchesMemory(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			mem := NewMemory()
			j, err := OpenJournal(dir, JournalOptions{CompactBytes: 2048})
			if err != nil {
				t.Fatal(err)
			}

			memRng := rand.New(rand.NewSource(seed))
			jRng := rand.New(rand.NewSource(seed))
			memErrs := applyOps(t, mem, memRng, 100)
			jErrs := applyOps(t, j, jRng, 100)
			for i := range memErrs {
				if (memErrs[i] == nil) != (jErrs[i] == nil) {
					t.Fatalf("op %d: memory err=%v journal err=%v", i, memErrs[i], jErrs[i])
				}
			}

			// Reopen mid-sequence: replay must reconstruct the fold.
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			j, err = OpenJournal(dir, JournalOptions{CompactBytes: 2048})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			applyOps(t, mem, memRng, 100)
			applyOps(t, j, jRng, 100)

			ms, err := mem.Load()
			if err != nil {
				t.Fatal(err)
			}
			js, err := j.Load()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ms, js) {
				t.Fatalf("states diverged after replay:\nmemory:  %+v\njournal: %+v", ms, js)
			}

			// And once more with a fresh handle, purely from disk.
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			j2, err := OpenJournal(dir, JournalOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			js2, err := j2.Load()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ms, js2) {
				t.Fatalf("states diverged after cold replay:\nmemory:  %+v\njournal: %+v", ms, js2)
			}
		})
	}
}

// TestJournalTornTail truncates the WAL at every byte offset inside its
// final record and verifies the journal reopens cleanly with exactly the
// prefix state, reporting the truncation — the kill -9 mid-append case.
func TestJournalTornTail(t *testing.T) {
	build := func(dir string) {
		j, err := OpenJournal(dir, JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.PutNode(NodeRecord{ID: "n1", Endpoint: "e1", Capacity: 2}); err != nil {
			t.Fatal(err)
		}
		if err := j.PutJob("job-1", 1, []byte(`{"maxLoops":64}`)); err != nil {
			t.Fatal(err)
		}
		if err := j.FinishCell("job-1", CellRecord{Index: 0, Key: "k0", Rows: []byte("r0\n")}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}

	ref := t.TempDir()
	build(ref)
	walBytes, err := os.ReadFile(filepath.Join(ref, walFile))
	if err != nil {
		t.Fatal(err)
	}
	// Find where the last record starts by walking the frames.
	r := bufio.NewReader(bytes.NewReader(walBytes))
	var offs []int
	off := 0
	for {
		_, n, err := readFrame(r)
		if err != nil {
			break
		}
		offs = append(offs, off)
		off += n
	}
	if len(offs) != 3 || off != len(walBytes) {
		t.Fatalf("expected 3 clean frames covering the wal, got %d frames / %d of %d bytes", len(offs), off, len(walBytes))
	}
	lastStart := offs[2]

	for cut := lastStart; cut < len(walBytes); cut++ {
		dir := t.TempDir()
		build(dir)
		if err := os.Truncate(filepath.Join(dir, walFile), int64(cut)); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(dir, JournalOptions{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		s, err := j.Load()
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(s.Jobs) != 1 || len(s.Jobs[0].Cells) != 0 {
			t.Fatalf("cut=%d: expected job without cells, got %+v", cut, s.Jobs)
		}
		if cut > lastStart && j.Stats().TruncatedBytes != int64(cut-lastStart) {
			t.Fatalf("cut=%d: TruncatedBytes=%d want %d", cut, j.Stats().TruncatedBytes, cut-lastStart)
		}
		// The healed journal must accept appends and survive another open.
		if err := j.FinishCell("job-1", CellRecord{Index: 0, Key: "k0", Rows: []byte("r0\n")}); err != nil {
			t.Fatalf("cut=%d: append after heal: %v", cut, err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j2, err := OpenJournal(dir, JournalOptions{})
		if err != nil {
			t.Fatalf("cut=%d: reopen after heal: %v", cut, err)
		}
		s2, err := j2.Load()
		if err != nil {
			t.Fatal(err)
		}
		if len(s2.Jobs) != 1 || len(s2.Jobs[0].Cells) != 1 {
			t.Fatalf("cut=%d: healed state wrong: %+v", cut, s2.Jobs)
		}
		j2.Close()
	}

	// A flipped byte mid-payload (CRC-invalid, not at the tail boundary)
	// also truncates from that record on.
	dir := t.TempDir()
	build(dir)
	corrupted := append([]byte(nil), walBytes...)
	corrupted[lastStart+frameHeader] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, walFile), corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatalf("reopen with bit flip: %v", err)
	}
	defer j.Close()
	if j.Stats().TruncatedBytes == 0 {
		t.Fatal("bit-flipped record should have been truncated")
	}
}

// TestJournalCompaction forces compaction, checks the WAL shrank and a
// reopen sees identical state from the checkpoint, and then exercises the
// crash window where the WAL survives with records the checkpoint already
// folded (replay must skip them, not double-apply).
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{CompactBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.PutJob("job-1", 1, []byte(`{"maxLoops":64}`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := j.FinishCell("job-1", CellRecord{Index: i, Key: fmt.Sprintf("k%d", i), Rows: []byte("rows\n")}); err != nil {
			t.Fatal(err)
		}
	}
	if j.Stats().Compactions == 0 {
		t.Fatal("expected at least one compaction")
	}
	want, err := j.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash window: re-append stale pre-compaction records to
	// the WAL. Their seq ≤ checkpoint last_seq, so replay must skip them.
	stale := &record{Seq: 1, Op: opJobPut, ID: "job-ghost", JobSeq: 99, Request: []byte(`{}`)}
	payload, err := json.Marshal(stale)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Prepend: write at offset 0 of the (possibly non-empty) wal would
	// corrupt real records, so instead build wal = stale ++ existing.
	existing, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(f, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(existing); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatalf("reopen after crash-window: %v", err)
	}
	defer j2.Close()
	got, err := j2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("state changed across compaction+crash-window:\nwant %+v\ngot  %+v", want, got)
	}
	for _, jr := range got.Jobs {
		if jr.ID == "job-ghost" {
			t.Fatal("stale pre-checkpoint record was replayed")
		}
	}
}

// TestJournalVersionMismatch covers the fail-fast satellite: wrong
// VERSION, journal files with no VERSION, and an unwritable directory
// must all refuse to open with a clear error.
func TestJournalVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, versionFile), []byte("gpcoordd-journal-v99\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir, JournalOptions{}); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("expected version mismatch error, got %v", err)
	}

	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, walFile), []byte("???"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir2, JournalOptions{}); err == nil || !strings.Contains(err.Error(), "VERSION") {
		t.Fatalf("expected missing-marker error, got %v", err)
	}

	if os.Geteuid() != 0 { // root ignores file modes; CI containers often run as root
		dir3 := t.TempDir()
		if err := os.Chmod(dir3, 0o555); err != nil {
			t.Fatal(err)
		}
		defer os.Chmod(dir3, 0o755)
		if _, err := OpenJournal(dir3, JournalOptions{}); err == nil {
			t.Fatal("expected error opening journal in unwritable dir")
		}
	}

	// A corrupt checkpoint is a hard error, never a silent reset.
	dir4 := t.TempDir()
	j, err := OpenJournal(dir4, JournalOptions{CompactBytes: 1}) // compact on first append
	if err != nil {
		t.Fatal(err)
	}
	if err := j.PutNode(NodeRecord{ID: "n1", Endpoint: "e", Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	cp, err := os.ReadFile(filepath.Join(dir4, checkpointFile))
	if err != nil {
		t.Fatal(err)
	}
	cp[len(cp)-1] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir4, checkpointFile), cp, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir4, JournalOptions{}); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("expected checkpoint corruption error, got %v", err)
	}
}

// TestJournalClosedErrors verifies post-Close mutations fail loudly.
func TestJournalClosedErrors(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := j.PutNode(NodeRecord{ID: "n"}); err == nil {
		t.Fatal("expected error mutating closed journal")
	}
	if _, err := j.Load(); err == nil {
		t.Fatal("expected error loading closed journal")
	}
}
