package store

import (
	"fmt"
	"sort"
)

// Every mutation — in memory or on disk — is one record. The journal
// serializes them; Memory applies them directly. Replay is therefore the
// same code path as live mutation: apply record after record to a tables
// mirror.
const (
	opNodePut  = "node_put"
	opNodeDel  = "node_del"
	opJobPut   = "job_put"
	opCellDone = "cell_done"
	opJobState = "job_state"
	opJobDel   = "job_del"
	opEpochSet = "epoch_set"
	opPlacePut = "place_put"
	opPlaceDel = "place_del"
)

// record is the wire/journal form of one mutation. Seq is the journal's
// log sequence number (unused by Memory); the operand fields are
// populated per op.
type record struct {
	Seq     uint64      `json:"seq"`
	Op      string      `json:"op"`
	Node    *NodeRecord `json:"node,omitempty"`
	ID      string      `json:"id,omitempty"`
	JobSeq  int64       `json:"job_seq,omitempty"`
	Request []byte      `json:"request,omitempty"`
	Cell    *CellRecord `json:"cell,omitempty"`
	State   string      `json:"state,omitempty"`
	Epoch   uint64      `json:"epoch,omitempty"`

	Placement *PlacementRecord `json:"placement,omitempty"`
}

// tables is the in-memory mirror every Store keeps: the state records
// fold into. Not goroutine-safe; callers lock.
type tables struct {
	nodes      map[string]NodeRecord
	jobs       map[string]*JobRecord
	placements map[string]PlacementRecord
	jobSeq     int64
	epoch      uint64
}

func newTables() *tables {
	return &tables{
		nodes:      make(map[string]NodeRecord),
		jobs:       make(map[string]*JobRecord),
		placements: make(map[string]PlacementRecord),
	}
}

// load replaces the tables with a checkpoint snapshot.
func (t *tables) load(s *State) {
	t.nodes = make(map[string]NodeRecord, len(s.Nodes))
	for _, n := range s.Nodes {
		t.nodes[n.ID] = n
	}
	t.jobs = make(map[string]*JobRecord, len(s.Jobs))
	for i := range s.Jobs {
		j := s.Jobs[i] // copy
		t.jobs[j.ID] = &j
	}
	t.placements = make(map[string]PlacementRecord, len(s.Placements))
	for _, p := range s.Placements {
		t.placements[p.Key] = p
	}
	t.jobSeq = s.JobSeq
	t.epoch = s.Epoch
}

// apply folds one record in. It is idempotent (puts replace, deletes of
// missing keys are no-ops) so a checkpoint racing a crash can safely be
// followed by a replay of records it already contains. Records that
// reference a job the tables do not hold are corruption — a WAL can
// never causally precede its own job_put — and fail the replay.
func (t *tables) apply(rec *record) error {
	switch rec.Op {
	case opNodePut:
		if rec.Node == nil || rec.Node.ID == "" {
			return fmt.Errorf("store: %s without node", rec.Op)
		}
		t.nodes[rec.Node.ID] = *rec.Node
	case opNodeDel:
		delete(t.nodes, rec.ID)
	case opJobPut:
		if rec.ID == "" {
			return fmt.Errorf("store: %s without job id", rec.Op)
		}
		t.jobs[rec.ID] = &JobRecord{ID: rec.ID, Seq: rec.JobSeq, Request: rec.Request, State: JobRunning}
		if rec.JobSeq > t.jobSeq {
			t.jobSeq = rec.JobSeq
		}
	case opCellDone:
		j, ok := t.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("store: %s for unknown job %q", rec.Op, rec.ID)
		}
		if rec.Cell == nil || rec.Cell.Index < 0 {
			return fmt.Errorf("store: %s without valid cell", rec.Op)
		}
		replaced := false
		for i := range j.Cells {
			if j.Cells[i].Index == rec.Cell.Index {
				j.Cells[i] = *rec.Cell
				replaced = true
				break
			}
		}
		if !replaced {
			j.Cells = append(j.Cells, *rec.Cell)
		}
	case opJobState:
		j, ok := t.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("store: %s for unknown job %q", rec.Op, rec.ID)
		}
		if rec.State != JobDone && rec.State != JobFailed {
			return fmt.Errorf("store: %s to invalid state %q", rec.Op, rec.State)
		}
		j.State = rec.State
	case opJobDel:
		delete(t.jobs, rec.ID)
	case opEpochSet:
		// Monotonic: a replayed lower epoch (a checkpoint already past it)
		// never rolls the fleet back to a pre-flush view.
		if rec.Epoch > t.epoch {
			t.epoch = rec.Epoch
		}
	case opPlacePut:
		if rec.Placement == nil || rec.Placement.Key == "" || rec.Placement.Node == "" {
			return fmt.Errorf("store: %s without valid placement", rec.Op)
		}
		t.placements[rec.Placement.Key] = *rec.Placement
	case opPlaceDel:
		delete(t.placements, rec.ID)
	default:
		return fmt.Errorf("store: unknown op %q", rec.Op)
	}
	return nil
}

// snapshot deep-copies the tables into the canonical sorted State shape.
func (t *tables) snapshot() *State {
	s := &State{JobSeq: t.jobSeq, Epoch: t.epoch}
	for _, n := range t.nodes {
		s.Nodes = append(s.Nodes, n)
	}
	sort.Slice(s.Nodes, func(i, j int) bool { return s.Nodes[i].ID < s.Nodes[j].ID })
	for _, j := range t.jobs {
		jc := *j
		jc.Request = append([]byte(nil), j.Request...)
		jc.Cells = make([]CellRecord, len(j.Cells))
		for i, c := range j.Cells {
			jc.Cells[i] = c
			jc.Cells[i].Rows = append([]byte(nil), c.Rows...)
		}
		sort.Slice(jc.Cells, func(a, b int) bool { return jc.Cells[a].Index < jc.Cells[b].Index })
		s.Jobs = append(s.Jobs, jc)
	}
	sort.Slice(s.Jobs, func(i, j int) bool { return s.Jobs[i].Seq < s.Jobs[j].Seq })
	for _, p := range t.placements {
		s.Placements = append(s.Placements, p)
	}
	sort.Slice(s.Placements, func(i, j int) bool { return s.Placements[i].Key < s.Placements[j].Key })
	return s
}
