package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes at the checkpoint and WAL
// files. The invariant: OpenJournal never panics, and when it does accept
// the files, the loaded state is well-formed and the journal still works
// (an append round-trips through one more reopen). Corrupt non-tail data
// must be rejected, never folded into state.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a real journal's bytes so the fuzzer starts from valid
	// frames and mutates from there.
	seedDir := f.TempDir()
	j, err := OpenJournal(seedDir, JournalOptions{})
	if err != nil {
		f.Fatal(err)
	}
	if err := j.PutNode(NodeRecord{ID: "n1", Endpoint: "127.0.0.1:9001", Capacity: 2}); err != nil {
		f.Fatal(err)
	}
	if err := j.PutJob("job-1", 1, []byte(`{"maxLoops":64}`)); err != nil {
		f.Fatal(err)
	}
	if err := j.FinishCell("job-1", CellRecord{Index: 0, Key: "k", Rows: []byte("r\n")}); err != nil {
		f.Fatal(err)
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(seedDir, walFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{}, wal)
	f.Add(wal, wal)
	f.Add([]byte{0x00, 0x01, 0x02}, []byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, cp, walBytes []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, versionFile), []byte(journalVersion+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if len(cp) > 0 {
			if err := os.WriteFile(filepath.Join(dir, checkpointFile), cp, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, walFile), walBytes, 0o644); err != nil {
			t.Fatal(err)
		}

		j, err := OpenJournal(dir, JournalOptions{NoSync: true})
		if err != nil {
			return // rejection is a valid outcome; panics are not
		}
		defer j.Close()

		s, err := j.Load()
		if err != nil {
			t.Fatalf("accepted journal failed Load: %v", err)
		}
		for _, jr := range s.Jobs {
			if jr.ID == "" {
				t.Fatalf("loaded job without ID: %+v", jr)
			}
			if jr.State != JobRunning && jr.State != JobDone && jr.State != JobFailed {
				t.Fatalf("loaded job %q with invalid state %q", jr.ID, jr.State)
			}
		}
		for _, n := range s.Nodes {
			if n.ID == "" {
				t.Fatalf("loaded node without ID: %+v", n)
			}
		}

		// The accepted journal must still be appendable and replayable.
		if err := j.PutNode(NodeRecord{ID: "probe", Endpoint: "e", Capacity: 1}); err != nil {
			t.Fatalf("accepted journal rejected append: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close after append: %v", err)
		}
		j2, err := OpenJournal(dir, JournalOptions{NoSync: true})
		if err != nil {
			t.Fatalf("accepted+appended journal failed reopen: %v", err)
		}
		defer j2.Close()
		s2, err := j2.Load()
		if err != nil {
			t.Fatalf("reopened journal failed Load: %v", err)
		}
		found := false
		for _, n := range s2.Nodes {
			if n.ID == "probe" {
				found = true
			}
		}
		if !found {
			b, _ := json.Marshal(s2)
			t.Fatalf("probe append lost across reopen; state: %s", b)
		}
	})
}
