package store

import (
	"fmt"
	"sync"
)

// Memory is the map-backed Store: nothing survives the process. It is
// the default when gpcoordd runs without -journal, and the reference
// implementation the journal's replay is property-tested against.
type Memory struct {
	mu     sync.Mutex
	t      *tables
	stats  Stats
	closed bool
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{t: newTables()}
}

func (m *Memory) mutate(rec *record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("store: closed")
	}
	if err := m.t.apply(rec); err != nil {
		return err
	}
	m.stats.Appends++
	return nil
}

// Load returns a deep snapshot of the current state.
func (m *Memory) Load() (*State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("store: closed")
	}
	return m.t.snapshot(), nil
}

// PutNode implements Store.
func (m *Memory) PutNode(n NodeRecord) error {
	return m.mutate(&record{Op: opNodePut, Node: &n})
}

// DeleteNode implements Store.
func (m *Memory) DeleteNode(id string) error {
	return m.mutate(&record{Op: opNodeDel, ID: id})
}

// PutJob implements Store.
func (m *Memory) PutJob(id string, seq int64, request []byte) error {
	return m.mutate(&record{Op: opJobPut, ID: id, JobSeq: seq, Request: request})
}

// FinishCell implements Store.
func (m *Memory) FinishCell(jobID string, cell CellRecord) error {
	return m.mutate(&record{Op: opCellDone, ID: jobID, Cell: &cell})
}

// SetJobState implements Store.
func (m *Memory) SetJobState(jobID, state string) error {
	return m.mutate(&record{Op: opJobState, ID: jobID, State: state})
}

// DeleteJob implements Store.
func (m *Memory) DeleteJob(id string) error {
	return m.mutate(&record{Op: opJobDel, ID: id})
}

// SetEpoch implements Store.
func (m *Memory) SetEpoch(epoch uint64) error {
	return m.mutate(&record{Op: opEpochSet, Epoch: epoch})
}

// PutPlacement implements Store.
func (m *Memory) PutPlacement(p PlacementRecord) error {
	return m.mutate(&record{Op: opPlacePut, Placement: &p})
}

// DeletePlacement implements Store.
func (m *Memory) DeletePlacement(key string) error {
	return m.mutate(&record{Op: opPlaceDel, ID: key})
}

// Stats implements Store.
// Durable reports false: Memory forgets everything on restart.
func (m *Memory) Durable() bool { return false }

func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Close implements Store.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
