// Package mrt implements the modulo reservation table used by the modulo
// scheduler: per-cluster functional-unit slots, per-cluster memory-port
// slots (the memory units) and the shared inter-cluster bus slots.
//
// A resource used at absolute cycle t occupies slot t mod II in every
// iteration of the steady state. The bus is non-pipelined (paper §3.1): one
// transfer occupies a bus for LatBus consecutive cycles, i.e. LatBus
// consecutive modulo slots.
package mrt

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/machine"
)

// Table is a modulo reservation table for one machine at one II.
type Table struct {
	II int

	m *machine.Config
	// fu[c][k*II + s] counts operations of unit kind k issued by cluster c
	// at modulo slot s.
	fu [][]int
	// bus[s] counts bus occupancy at modulo slot s.
	bus []int
}

// New returns an empty reservation table for machine m at initiation
// interval ii ≥ 1.
func New(m *machine.Config, ii int) *Table {
	if ii < 1 {
		panic(fmt.Sprintf("mrt: II %d < 1", ii))
	}
	t := &Table{II: ii, m: m}
	t.fu = make([][]int, m.Clusters)
	for c := range t.fu {
		t.fu[c] = make([]int, isa.NumUnitKinds*ii)
	}
	t.bus = make([]int, ii)
	return t
}

func (t *Table) slot(cycle int) int {
	s := cycle % t.II
	if s < 0 {
		s += t.II
	}
	return s
}

// CanPlaceOp reports whether a unit of kind k is free in cluster c at the
// given absolute cycle.
func (t *Table) CanPlaceOp(c int, k isa.UnitKind, cycle int) bool {
	return t.fu[c][int(k)*t.II+t.slot(cycle)] < t.m.UnitsPerCluster(k)
}

// PlaceOp reserves a unit of kind k in cluster c at the given cycle. It
// panics when the slot is full: callers must check CanPlaceOp first.
func (t *Table) PlaceOp(c int, k isa.UnitKind, cycle int) {
	i := int(k)*t.II + t.slot(cycle)
	if t.fu[c][i] >= t.m.UnitsPerCluster(k) {
		panic(fmt.Sprintf("mrt: overfull %v slot, cluster %d cycle %d", k, c, cycle))
	}
	t.fu[c][i]++
}

// RemoveOp releases a previously placed reservation.
func (t *Table) RemoveOp(c int, k isa.UnitKind, cycle int) {
	i := int(k)*t.II + t.slot(cycle)
	if t.fu[c][i] <= 0 {
		panic(fmt.Sprintf("mrt: removing free %v slot, cluster %d cycle %d", k, c, cycle))
	}
	t.fu[c][i]--
}

// CanPlaceBus reports whether one bus is free for the LatBus consecutive
// cycles starting at the given cycle.
func (t *Table) CanPlaceBus(start int) bool {
	if t.m.NBus == 0 {
		return false
	}
	if t.m.LatBus >= t.II {
		// A non-pipelined transfer longer than the II would collide with
		// itself in the next iteration.
		return false
	}
	for d := 0; d < t.m.LatBus; d++ {
		if t.bus[t.slot(start+d)] >= t.m.NBus {
			return false
		}
	}
	return true
}

// PlaceBus reserves a bus for LatBus cycles starting at start. Callers must
// check CanPlaceBus first.
func (t *Table) PlaceBus(start int) {
	if !t.CanPlaceBus(start) {
		panic(fmt.Sprintf("mrt: overfull bus at cycle %d", start))
	}
	for d := 0; d < t.m.LatBus; d++ {
		t.bus[t.slot(start+d)]++
	}
}

// RemoveBus releases a bus reservation made at start.
func (t *Table) RemoveBus(start int) {
	for d := 0; d < t.m.LatBus; d++ {
		s := t.slot(start + d)
		if t.bus[s] <= 0 {
			panic(fmt.Sprintf("mrt: removing free bus slot %d", s))
		}
		t.bus[s]--
	}
}

// BusAt returns the bus occupancy count at modulo slot s.
func (t *Table) BusAt(s int) int { return t.bus[t.slot(s)] }

// MemAt returns the memory-port occupancy of cluster c at modulo slot s.
func (t *Table) MemAt(c, s int) int {
	return t.fu[c][int(isa.MemUnit)*t.II+t.slot(s)]
}

// FreeOpSlots returns the number of free slots of kind k in cluster c
// across one II window.
func (t *Table) FreeOpSlots(c int, k isa.UnitKind) int {
	total := t.m.UnitsPerCluster(k) * t.II
	used := 0
	for s := 0; s < t.II; s++ {
		used += t.fu[c][int(k)*t.II+s]
	}
	return total - used
}

// FreeBusSlots returns the number of free bus slot-cycles across one II
// window.
func (t *Table) FreeBusSlots() int {
	total := t.m.NBus * t.II
	used := 0
	for s := 0; s < t.II; s++ {
		used += t.bus[s]
	}
	return total - used
}

// BusUtilization returns used/total bus slot-cycles, or 0 when the machine
// has no bus.
func (t *Table) BusUtilization() float64 {
	total := t.m.NBus * t.II
	if total == 0 {
		return 0
	}
	return float64(total-t.FreeBusSlots()) / float64(total)
}

// MemUtilization returns used/total memory slots in cluster c.
func (t *Table) MemUtilization(c int) float64 {
	total := t.m.UnitsPerCluster(isa.MemUnit) * t.II
	if total == 0 {
		return 0
	}
	return float64(total-t.FreeOpSlots(c, isa.MemUnit)) / float64(total)
}
