// Package mrt implements the modulo reservation table used by the modulo
// scheduler: per-cluster functional-unit slots (heterogeneous unit mixes
// supported), per-cluster memory-port slots (the memory units) and the
// inter-cluster transfer channels.
//
// A resource used at absolute cycle t occupies slot t mod II in every
// iteration of the steady state. The interconnect is either the paper's
// shared broadcast bus (§3.1) or per-cluster-pair point-to-point links;
// a non-pipelined transfer occupies its channel for LatBus consecutive
// modulo slots, a pipelined one for a single slot.
package mrt

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/machine"
)

// Table is a modulo reservation table for one machine at one II.
type Table struct {
	II int

	m *machine.Config
	// fu[c][k*II + s] counts operations of unit kind k issued by cluster c
	// at modulo slot s.
	fu [][]int
	// xfer[ch][s] counts transfer occupancy of channel ch at modulo slot s.
	// SharedBus machines have one channel; PointToPoint machines have one
	// per ordered cluster pair.
	xfer [][]int
	// occ is the number of consecutive slots one transfer occupies.
	occ int
}

// New returns an empty reservation table for machine m at initiation
// interval ii ≥ 1.
func New(m *machine.Config, ii int) *Table {
	if ii < 1 {
		panic(fmt.Sprintf("mrt: II %d < 1", ii))
	}
	t := &Table{II: ii, m: m, occ: m.XferOccupancy()}
	t.fu = make([][]int, m.Clusters)
	for c := range t.fu {
		t.fu[c] = make([]int, isa.NumUnitKinds*ii)
	}
	t.xfer = make([][]int, m.Channels())
	for ch := range t.xfer {
		t.xfer[ch] = make([]int, ii)
	}
	return t
}

func (t *Table) slot(cycle int) int {
	s := cycle % t.II
	if s < 0 {
		s += t.II
	}
	return s
}

// CanPlaceOp reports whether a unit of kind k is free in cluster c at the
// given absolute cycle.
func (t *Table) CanPlaceOp(c int, k isa.UnitKind, cycle int) bool {
	return t.fu[c][int(k)*t.II+t.slot(cycle)] < t.m.UnitsIn(c, k)
}

// PlaceOp reserves a unit of kind k in cluster c at the given cycle. It
// panics when the slot is full: callers must check CanPlaceOp first.
func (t *Table) PlaceOp(c int, k isa.UnitKind, cycle int) {
	i := int(k)*t.II + t.slot(cycle)
	if t.fu[c][i] >= t.m.UnitsIn(c, k) {
		panic(fmt.Sprintf("mrt: overfull %v slot, cluster %d cycle %d", k, c, cycle))
	}
	t.fu[c][i]++
}

// RemoveOp releases a previously placed reservation.
func (t *Table) RemoveOp(c int, k isa.UnitKind, cycle int) {
	i := int(k)*t.II + t.slot(cycle)
	if t.fu[c][i] <= 0 {
		panic(fmt.Sprintf("mrt: removing free %v slot, cluster %d cycle %d", k, c, cycle))
	}
	t.fu[c][i]--
}

// Channel returns the transfer-channel index for a src→dst transfer: 0 for
// the shared-bus pool, the ordered-pair index for point-to-point links.
// It returns -1 when the machine has no interconnect.
func (t *Table) Channel(src, dst int) int {
	if len(t.xfer) == 0 {
		return -1
	}
	if t.m.Topology == machine.PointToPoint {
		ch := src*(t.m.Clusters-1) + dst
		if dst > src {
			ch--
		}
		return ch
	}
	return 0
}

// ChannelAt returns the occupancy of channel ch at modulo slot s. It is
// used by the scheduler's tentative-placement deltas.
func (t *Table) ChannelAt(ch, s int) int { return t.xfer[ch][t.slot(s)] }

// CanPlaceXfer reports whether one src→dst transfer channel is free for the
// transfer's occupancy window starting at the given cycle.
func (t *Table) CanPlaceXfer(src, dst, start int) bool {
	ch := t.Channel(src, dst)
	if ch < 0 || t.m.NBus == 0 {
		return false
	}
	if t.occ >= t.II && !t.m.Pipelined {
		// A non-pipelined transfer longer than the II would collide with
		// itself in the next iteration.
		return false
	}
	for d := 0; d < t.occ; d++ {
		if t.xfer[ch][t.slot(start+d)] >= t.m.NBus {
			return false
		}
	}
	return true
}

// PlaceXfer reserves a src→dst transfer starting at start. Callers must
// check CanPlaceXfer first.
func (t *Table) PlaceXfer(src, dst, start int) {
	if !t.CanPlaceXfer(src, dst, start) {
		panic(fmt.Sprintf("mrt: overfull transfer channel %d→%d at cycle %d", src, dst, start))
	}
	ch := t.Channel(src, dst)
	for d := 0; d < t.occ; d++ {
		t.xfer[ch][t.slot(start+d)]++
	}
}

// RemoveXfer releases a transfer reservation made at start.
func (t *Table) RemoveXfer(src, dst, start int) {
	ch := t.Channel(src, dst)
	for d := 0; d < t.occ; d++ {
		s := t.slot(start + d)
		if t.xfer[ch][s] <= 0 {
			panic(fmt.Sprintf("mrt: removing free transfer slot %d, channel %d→%d", s, src, dst))
		}
		t.xfer[ch][s]--
	}
}

// MemAt returns the memory-port occupancy of cluster c at modulo slot s.
func (t *Table) MemAt(c, s int) int {
	return t.fu[c][int(isa.MemUnit)*t.II+t.slot(s)]
}

// FreeOpSlots returns the number of free slots of kind k in cluster c
// across one II window.
func (t *Table) FreeOpSlots(c int, k isa.UnitKind) int {
	total := t.m.UnitsIn(c, k) * t.II
	used := 0
	for s := 0; s < t.II; s++ {
		used += t.fu[c][int(k)*t.II+s]
	}
	return total - used
}

// FreeXferSlots returns the number of free transfer slot-cycles across one
// II window, summed over every channel.
func (t *Table) FreeXferSlots() int {
	total := t.m.NBus * t.II * len(t.xfer)
	used := 0
	for ch := range t.xfer {
		for s := 0; s < t.II; s++ {
			used += t.xfer[ch][s]
		}
	}
	return total - used
}

// XferUtilization returns used/total transfer slot-cycles, or 0 when the
// machine has no interconnect.
func (t *Table) XferUtilization() float64 {
	total := t.m.NBus * t.II * len(t.xfer)
	if total == 0 {
		return 0
	}
	return float64(total-t.FreeXferSlots()) / float64(total)
}

// MemUtilization returns used/total memory slots in cluster c.
func (t *Table) MemUtilization(c int) float64 {
	total := t.m.UnitsIn(c, isa.MemUnit) * t.II
	if total == 0 {
		return 0
	}
	return float64(total-t.FreeOpSlots(c, isa.MemUnit)) / float64(total)
}
