package mrt

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
)

func TestPlaceOpCapacity(t *testing.T) {
	m := machine.MustClustered(4, 64, 1, 1) // 1 unit of each kind per cluster
	tab := New(m, 3)
	if !tab.CanPlaceOp(0, isa.IntUnit, 5) {
		t.Fatal("fresh table refuses placement")
	}
	tab.PlaceOp(0, isa.IntUnit, 5) // slot 2
	if tab.CanPlaceOp(0, isa.IntUnit, 2) {
		t.Error("slot 2 should be full (cycle 5 ≡ 2 mod 3)")
	}
	if !tab.CanPlaceOp(0, isa.IntUnit, 3) {
		t.Error("slot 0 should be free")
	}
	if !tab.CanPlaceOp(1, isa.IntUnit, 5) {
		t.Error("other cluster should be free")
	}
	if !tab.CanPlaceOp(0, isa.FPUnit, 5) {
		t.Error("other kind should be free")
	}
	tab.RemoveOp(0, isa.IntUnit, 5)
	if !tab.CanPlaceOp(0, isa.IntUnit, 2) {
		t.Error("slot not freed after RemoveOp")
	}
}

func TestPlaceOpMultipleUnits(t *testing.T) {
	m := machine.MustClustered(2, 32, 1, 1) // 2 units per kind per cluster
	tab := New(m, 2)
	tab.PlaceOp(0, isa.MemUnit, 0)
	if !tab.CanPlaceOp(0, isa.MemUnit, 0) {
		t.Fatal("second memory unit should be free")
	}
	tab.PlaceOp(0, isa.MemUnit, 0)
	if tab.CanPlaceOp(0, isa.MemUnit, 0) {
		t.Error("both units taken, slot should be full")
	}
}

func TestPlaceOpPanicsWhenFull(t *testing.T) {
	m := machine.MustClustered(4, 64, 1, 1)
	tab := New(m, 1)
	tab.PlaceOp(0, isa.IntUnit, 0)
	defer func() {
		if recover() == nil {
			t.Error("PlaceOp on full slot did not panic")
		}
	}()
	tab.PlaceOp(0, isa.IntUnit, 0)
}

func TestRemoveOpPanicsWhenEmpty(t *testing.T) {
	m := machine.MustClustered(4, 64, 1, 1)
	tab := New(m, 1)
	defer func() {
		if recover() == nil {
			t.Error("RemoveOp on empty slot did not panic")
		}
	}()
	tab.RemoveOp(0, isa.IntUnit, 0)
}

func TestBusNonPipelined(t *testing.T) {
	m := machine.MustClustered(2, 32, 1, 2) // 1 bus, latency 2
	tab := New(m, 4)
	if !tab.CanPlaceXfer(0, 1, 1) {
		t.Fatal("fresh bus refused")
	}
	tab.PlaceXfer(0, 1, 1) // occupies slots 1 and 2
	for _, start := range []int{0, 1, 2} {
		if tab.CanPlaceXfer(0, 1, start) {
			t.Errorf("bus start %d should collide with transfer at 1-2", start)
		}
	}
	if !tab.CanPlaceXfer(0, 1, 3) {
		t.Error("bus start 3 (slots 3,0) should be free")
	}
	tab.RemoveXfer(0, 1, 1)
	if !tab.CanPlaceXfer(0, 1, 1) {
		t.Error("bus not freed")
	}
}

func TestBusWrapsModulo(t *testing.T) {
	m := machine.MustClustered(2, 32, 1, 2)
	tab := New(m, 3)
	tab.PlaceXfer(0, 1, 2) // slots 2 and 0
	if tab.CanPlaceXfer(0, 1, 0) {
		t.Error("slot 0 should be occupied by the wrapped transfer")
	}
	if tab.CanPlaceXfer(0, 1, 1) {
		t.Error("latency-2 transfer at 1 needs slots 1,2 and slot 2 is taken")
	}
}

func TestBusLongerThanII(t *testing.T) {
	m := machine.MustClustered(2, 32, 1, 2)
	tab := New(m, 2)
	// LatBus == II: a transfer would collide with itself each iteration.
	if tab.CanPlaceXfer(0, 1, 0) {
		t.Error("LatBus ≥ II must be rejected")
	}
}

func TestBusCapacityTwoBuses(t *testing.T) {
	m := machine.MustClustered(2, 32, 2, 1) // 2 buses, latency 1
	tab := New(m, 2)
	tab.PlaceXfer(0, 1, 0)
	if !tab.CanPlaceXfer(0, 1, 0) {
		t.Fatal("second bus should be free")
	}
	tab.PlaceXfer(0, 1, 0)
	if tab.CanPlaceXfer(0, 1, 0) {
		t.Error("both buses taken")
	}
}

func TestNoBusOnUnified(t *testing.T) {
	m := machine.NewUnified(32)
	tab := New(m, 4)
	if tab.CanPlaceXfer(0, 1, 0) {
		t.Error("unified machine has no bus")
	}
}

func TestFreeSlotAccounting(t *testing.T) {
	m := machine.MustClustered(2, 32, 1, 1) // 2 mem units/cluster
	tab := New(m, 3)
	if got := tab.FreeOpSlots(0, isa.MemUnit); got != 6 {
		t.Fatalf("FreeOpSlots = %d, want 6", got)
	}
	tab.PlaceOp(0, isa.MemUnit, 0)
	tab.PlaceOp(0, isa.MemUnit, 4)
	if got := tab.FreeOpSlots(0, isa.MemUnit); got != 4 {
		t.Errorf("FreeOpSlots = %d, want 4", got)
	}
	if got := tab.FreeXferSlots(); got != 3 {
		t.Errorf("FreeBusSlots = %d, want 3", got)
	}
	tab.PlaceXfer(0, 1, 1)
	if got := tab.FreeXferSlots(); got != 2 {
		t.Errorf("FreeBusSlots = %d, want 2", got)
	}
	if u := tab.XferUtilization(); u < 0.33 || u > 0.34 {
		t.Errorf("BusUtilization = %v, want 1/3", u)
	}
	if u := tab.MemUtilization(0); u < 0.33 || u > 0.34 {
		t.Errorf("MemUtilization = %v, want 2/6", u)
	}
	if u := tab.MemUtilization(1); u != 0 {
		t.Errorf("MemUtilization(1) = %v, want 0", u)
	}
}

func TestNegativeCycleSlots(t *testing.T) {
	m := machine.MustClustered(2, 32, 1, 1)
	tab := New(m, 4)
	tab.PlaceOp(0, isa.IntUnit, -1) // slot 3
	tab.PlaceOp(0, isa.IntUnit, -1)
	if tab.CanPlaceOp(0, isa.IntUnit, 3) {
		t.Error("cycle -1 should map to slot 3")
	}
}

func TestNewPanicsOnBadII(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(m, 0) did not panic")
		}
	}()
	New(machine.NewUnified(32), 0)
}

func TestHeterogeneousUnitCapacity(t *testing.T) {
	m := machine.MustHetero("het", []machine.ClusterSpec{
		{Units: [isa.NumUnitKinds]int{3, 0, 1}, Regs: 16},
		{Units: [isa.NumUnitKinds]int{1, 2, 1}, Regs: 16},
	}, machine.SharedBus, 1, 1, false)
	tab := New(m, 1)
	for i := 0; i < 3; i++ {
		if !tab.CanPlaceOp(0, isa.IntUnit, 0) {
			t.Fatalf("cluster 0 INT unit %d should be free", i)
		}
		tab.PlaceOp(0, isa.IntUnit, 0)
	}
	if tab.CanPlaceOp(0, isa.IntUnit, 0) {
		t.Error("cluster 0 has only 3 INT units")
	}
	if tab.CanPlaceOp(0, isa.FPUnit, 0) {
		t.Error("cluster 0 has no FP units")
	}
	if !tab.CanPlaceOp(1, isa.FPUnit, 0) {
		t.Error("cluster 1 FP unit should be free")
	}
	if tab.CanPlaceOp(1, isa.IntUnit, 0) == false {
		t.Error("cluster 1 INT unit should be free")
	}
}

func TestPointToPointChannelsIndependent(t *testing.T) {
	m := machine.MustClustered(4, 64, 1, 1)
	m.Topology = machine.PointToPoint
	tab := New(m, 2)
	tab.PlaceXfer(0, 1, 0)
	if tab.CanPlaceXfer(0, 1, 0) {
		t.Error("link 0→1 should be saturated at slot 0")
	}
	if !tab.CanPlaceXfer(0, 2, 0) {
		t.Error("link 0→2 must be independent of 0→1")
	}
	if !tab.CanPlaceXfer(1, 0, 0) {
		t.Error("link 1→0 must be independent of 0→1")
	}
	// Distinct ordered pairs must map to distinct channels.
	seen := map[int]bool{}
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			if src == dst {
				continue
			}
			ch := tab.Channel(src, dst)
			if ch < 0 || ch >= 12 {
				t.Fatalf("channel(%d,%d) = %d out of range", src, dst, ch)
			}
			if seen[ch] {
				t.Fatalf("channel(%d,%d) = %d collides", src, dst, ch)
			}
			seen[ch] = true
		}
	}
}

func TestPipelinedBusSingleSlot(t *testing.T) {
	m := machine.MustClustered(2, 32, 1, 3) // latency 3
	m.Pipelined = true
	tab := New(m, 4)
	tab.PlaceXfer(0, 1, 1)
	if tab.CanPlaceXfer(0, 1, 1) {
		t.Error("pipelined bus still has per-slot capacity 1")
	}
	if !tab.CanPlaceXfer(0, 1, 2) {
		t.Error("pipelined bus must accept a new transfer the next cycle")
	}
	// A pipelined transfer is legal even when LatBus ≥ II.
	small := New(m, 2)
	if !small.CanPlaceXfer(0, 1, 0) {
		t.Error("pipelined transfer with LatBus ≥ II must be accepted")
	}
}
