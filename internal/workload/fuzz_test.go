package workload

import (
	"testing"
)

// FuzzGenerate is the property test that Generate yields Validate-clean,
// connected loops for arbitrary (not just the fixed) profiles: any profile
// that passes Profile.Validate must generate successfully, and every
// generated loop must be a valid, connected DDG honoring the profile's
// size and trip-count bounds.
func FuzzGenerate(f *testing.F) {
	for _, p := range append(Profiles(), DSPProfiles()...) {
		f.Add(p.Seed, p.NumLoops, p.MinOps, p.MaxOps, p.MemFrac, p.FPFrac, p.RecDensity, p.TripMin, p.TripMax, p.MaxRecDist)
	}
	f.Add(int64(0), 1, 1, 1, 0.0, 0.0, 8.0, 1, 1, 0) // single-op loop, extreme density
	f.Fuzz(func(t *testing.T, seed int64, numLoops, minOps, maxOps int, memFrac, fpFrac, recDensity float64, tripMin, tripMax, maxRecDist int) {
		p := Profile{
			Name: "fuzz", Seed: seed,
			NumLoops: numLoops % 16, MinOps: minOps % 256, MaxOps: maxOps % 256,
			MemFrac: memFrac, FPFrac: fpFrac, RecDensity: recDensity,
			TripMin: tripMin, TripMax: tripMax, MaxRecDist: maxRecDist % 8,
		}
		if p.Validate() != nil {
			t.Skip()
		}
		b := Generate(p)
		if len(b.Loops) != p.NumLoops {
			t.Fatalf("%d loops, want %d", len(b.Loops), p.NumLoops)
		}
		for _, l := range b.Loops {
			if err := l.G.Validate(); err != nil {
				t.Fatalf("invalid loop: %v", err)
			}
			if !connected(l.G) {
				t.Fatalf("%s: disconnected body (%d ops)", l.G.Name, l.G.N())
			}
			if n := l.G.N(); n < p.MinOps || n > p.MaxOps {
				t.Fatalf("%s: %d ops outside [%d,%d]", l.G.Name, n, p.MinOps, p.MaxOps)
			}
			if l.G.Niter < p.TripMin || l.G.Niter > p.TripMax {
				t.Fatalf("%s: trip %d outside [%d,%d]", l.G.Name, l.G.Niter, p.TripMin, p.TripMax)
			}
		}
	})
}
