package workload

import (
	"testing"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
)

func TestCorpusShape(t *testing.T) {
	bms := SPECfp95()
	if len(bms) != 10 {
		t.Fatalf("corpus has %d benchmarks, want 10", len(bms))
	}
	want := []string{"tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d", "apsi", "fpppp", "wave5"}
	for i, b := range bms {
		if b.Name != want[i] {
			t.Errorf("benchmark %d = %q, want %q", i, b.Name, want[i])
		}
		if len(b.Loops) < 5 {
			t.Errorf("%s has only %d loops", b.Name, len(b.Loops))
		}
	}
}

func TestCorpusValidatesAndIsDeterministic(t *testing.T) {
	a := SPECfp95()
	b := SPECfp95()
	for i := range a {
		if len(a[i].Loops) != len(b[i].Loops) {
			t.Fatalf("%s: loop counts differ", a[i].Name)
		}
		for j := range a[i].Loops {
			ga, gb := a[i].Loops[j].G, b[i].Loops[j].G
			if err := ga.Validate(); err != nil {
				t.Fatalf("%s: %v", ga.Name, err)
			}
			if ga.N() != gb.N() || len(ga.Edges) != len(gb.Edges) || ga.Niter != gb.Niter {
				t.Fatalf("%s: regeneration differs", ga.Name)
			}
			for k := range ga.Edges {
				if ga.Edges[k] != gb.Edges[k] {
					t.Fatalf("%s: edge %d differs", ga.Name, k)
				}
			}
			if a[i].Loops[j].Weight != b[i].Loops[j].Weight {
				t.Fatalf("%s: weights differ", ga.Name)
			}
		}
	}
}

func TestProfilesRespected(t *testing.T) {
	for _, p := range Profiles() {
		b := Generate(p)
		if len(b.Loops) != p.NumLoops {
			t.Errorf("%s: %d loops, want %d", p.Name, len(b.Loops), p.NumLoops)
		}
		for _, l := range b.Loops {
			n := l.G.N()
			if n < p.MinOps || n > p.MaxOps {
				t.Errorf("%s/%s: %d ops outside [%d,%d]", p.Name, l.G.Name, n, p.MinOps, p.MaxOps)
			}
			if l.G.Niter < p.TripMin || l.G.Niter > p.TripMax {
				t.Errorf("%s/%s: trip %d outside [%d,%d]", p.Name, l.G.Name, l.G.Niter, p.TripMin, p.TripMax)
			}
			if l.Weight < 1 {
				t.Errorf("%s/%s: weight %v < 1", p.Name, l.G.Name, l.Weight)
			}
		}
	}
}

func TestOpMixTracksProfile(t *testing.T) {
	// Aggregate op mixes should be within a loose band of the profile
	// fractions.
	for _, p := range Profiles() {
		b := Generate(p)
		var mem, fp, total int
		for _, l := range b.Loops {
			for _, nd := range l.G.Nodes {
				total++
				switch nd.Op.Unit() {
				case isa.MemUnit:
					mem++
				case isa.FPUnit:
					fp++
				}
			}
		}
		memFrac := float64(mem) / float64(total)
		fpFrac := float64(fp) / float64(total)
		if memFrac < p.MemFrac-0.12 || memFrac > p.MemFrac+0.12 {
			t.Errorf("%s: mem fraction %.2f vs profile %.2f", p.Name, memFrac, p.MemFrac)
		}
		if fpFrac < p.FPFrac-0.12 || fpFrac > p.FPFrac+0.12 {
			t.Errorf("%s: fp fraction %.2f vs profile %.2f", p.Name, fpFrac, p.FPFrac)
		}
	}
}

func TestRecurrenceDensityOrdering(t *testing.T) {
	// hydro2d (density 1.0) must have more recurrences than swim (0.15).
	bms := SPECfp95()
	var hydro, swim Stats
	for _, b := range bms {
		switch b.Name {
		case "hydro2d":
			hydro = Summarize(b)
		case "swim":
			swim = Summarize(b)
		}
	}
	if hydro.Recurrences <= swim.Recurrences {
		t.Errorf("hydro2d recurrences %d not above swim %d", hydro.Recurrences, swim.Recurrences)
	}
}

func TestLoopsAreSchedulable(t *testing.T) {
	// Every loop must have a finite MII on the unified machine.
	m := machine.NewUnified(64)
	for _, b := range SPECfp95() {
		for _, l := range b.Loops {
			mii := l.G.MII(m)
			if mii < 1 || mii > 1000 {
				t.Errorf("%s: MII %d out of range", l.G.Name, mii)
			}
		}
	}
}

func TestSummarize(t *testing.T) {
	b := Generate(Profiles()[0])
	s := Summarize(b)
	if s.Loops != len(b.Loops) || s.Ops <= 0 {
		t.Errorf("stats wrong: %+v", s)
	}
	if s.MemOps == 0 || s.FPOps == 0 {
		t.Errorf("tomcatv should have both mem and FP ops: %+v", s)
	}
}

func TestDSPCorpusShape(t *testing.T) {
	bms := DSP()
	profiles := DSPProfiles()
	if len(bms) != len(profiles) {
		t.Fatalf("DSP corpus has %d benchmarks for %d profiles", len(bms), len(profiles))
	}
	for i, b := range bms {
		if b.Name != profiles[i].Name {
			t.Errorf("benchmark %d = %q, want %q", i, b.Name, profiles[i].Name)
		}
		for _, l := range b.Loops {
			if err := l.G.Validate(); err != nil {
				t.Fatalf("%s: %v", l.G.Name, err)
			}
		}
	}
}

func TestDSPCorpusIsIntHeavyAndRecurrenceBound(t *testing.T) {
	// The DSP family must be structurally different from SPECfp95: far
	// fewer FP ops per op, and denser recurrences.
	frac := func(bms []*Benchmark) (fp float64, recsPerOp float64) {
		var fpOps, ops, recs int
		for _, b := range bms {
			s := Summarize(b)
			fpOps += s.FPOps
			ops += s.Ops
			recs += s.Recurrences
		}
		return float64(fpOps) / float64(ops), float64(recs) / float64(ops)
	}
	dspFP, dspRec := frac(DSP())
	specFP, specRec := frac(SPECfp95())
	if dspFP >= specFP/4 {
		t.Errorf("DSP fp fraction %.3f not far below SPECfp95's %.3f", dspFP, specFP)
	}
	if dspRec <= specRec {
		t.Errorf("DSP recurrence density %.3f not above SPECfp95's %.3f", dspRec, specRec)
	}
}

func TestDSPLoopsSchedulable(t *testing.T) {
	// Every DSP loop must have a finite MII even on an FP-less C6x-like
	// machine... except loops that do contain FP ops, which need ≥ 1 FP
	// unit. Use the heterogeneous sweep machine.
	m := machine.MustHetero("c6x", []machine.ClusterSpec{
		{Units: [isa.NumUnitKinds]int{3, 1, 2}, Regs: 24},
		{Units: [isa.NumUnitKinds]int{1, 3, 2}, Regs: 40},
	}, machine.SharedBus, 1, 1, false)
	for _, b := range DSP() {
		for _, l := range b.Loops {
			mii := l.G.MII(m)
			if mii < 1 || mii > 2000 {
				t.Errorf("%s: MII %d out of range", l.G.Name, mii)
			}
		}
	}
}

func TestGeneratedLoopsConnected(t *testing.T) {
	for _, bms := range [][]*Benchmark{SPECfp95(), DSP()} {
		for _, b := range bms {
			for _, l := range b.Loops {
				if !connected(l.G) {
					t.Errorf("%s is not connected", l.G.Name)
				}
			}
		}
	}
}

// connected reports weak connectivity of the loop body.
func connected(g *ddg.Graph) bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	adj := make([][]int, n)
	for _, e := range g.Edges {
		if e.From != e.To {
			adj[e.From] = append(adj[e.From], e.To)
			adj[e.To] = append(adj[e.To], e.From)
		}
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				cnt++
				stack = append(stack, w)
			}
		}
	}
	return cnt == n
}

func TestGeneratePanicsOnInvalidProfile(t *testing.T) {
	bad := []Profile{
		{},
		{Name: "x"},
		{Name: "x", NumLoops: 1},
		{Name: "x", NumLoops: 1, MinOps: 5, MaxOps: 4, TripMin: 1, TripMax: 2},
		{Name: "x", NumLoops: 1, MinOps: 1, MaxOps: 2, MemFrac: 0.8, FPFrac: 0.5, TripMin: 1, TripMax: 2},
		{Name: "x", NumLoops: 1, MinOps: 1, MaxOps: 2, TripMin: 5, TripMax: 4},
		{Name: "x", NumLoops: 1, MinOps: 1, MaxOps: 2, TripMin: 1, TripMax: 2, RecDensity: -1},
		{Name: "x", NumLoops: 1, MinOps: 1, MaxOps: 2, TripMin: 1, TripMax: 2, MaxRecDist: -1},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: Generate(%+v) did not panic", i, p)
				}
			}()
			Generate(p)
		}()
		if p.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
	for _, p := range append(Profiles(), DSPProfiles()...) {
		if err := p.Validate(); err != nil {
			t.Errorf("fixed profile %s invalid: %v", p.Name, err)
		}
	}
}
