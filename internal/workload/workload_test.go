package workload

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
)

func TestCorpusShape(t *testing.T) {
	bms := SPECfp95()
	if len(bms) != 10 {
		t.Fatalf("corpus has %d benchmarks, want 10", len(bms))
	}
	want := []string{"tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d", "apsi", "fpppp", "wave5"}
	for i, b := range bms {
		if b.Name != want[i] {
			t.Errorf("benchmark %d = %q, want %q", i, b.Name, want[i])
		}
		if len(b.Loops) < 5 {
			t.Errorf("%s has only %d loops", b.Name, len(b.Loops))
		}
	}
}

func TestCorpusValidatesAndIsDeterministic(t *testing.T) {
	a := SPECfp95()
	b := SPECfp95()
	for i := range a {
		if len(a[i].Loops) != len(b[i].Loops) {
			t.Fatalf("%s: loop counts differ", a[i].Name)
		}
		for j := range a[i].Loops {
			ga, gb := a[i].Loops[j].G, b[i].Loops[j].G
			if err := ga.Validate(); err != nil {
				t.Fatalf("%s: %v", ga.Name, err)
			}
			if ga.N() != gb.N() || len(ga.Edges) != len(gb.Edges) || ga.Niter != gb.Niter {
				t.Fatalf("%s: regeneration differs", ga.Name)
			}
			for k := range ga.Edges {
				if ga.Edges[k] != gb.Edges[k] {
					t.Fatalf("%s: edge %d differs", ga.Name, k)
				}
			}
			if a[i].Loops[j].Weight != b[i].Loops[j].Weight {
				t.Fatalf("%s: weights differ", ga.Name)
			}
		}
	}
}

func TestProfilesRespected(t *testing.T) {
	for _, p := range Profiles() {
		b := Generate(p)
		if len(b.Loops) != p.NumLoops {
			t.Errorf("%s: %d loops, want %d", p.Name, len(b.Loops), p.NumLoops)
		}
		for _, l := range b.Loops {
			n := l.G.N()
			if n < p.MinOps || n > p.MaxOps {
				t.Errorf("%s/%s: %d ops outside [%d,%d]", p.Name, l.G.Name, n, p.MinOps, p.MaxOps)
			}
			if l.G.Niter < p.TripMin || l.G.Niter > p.TripMax {
				t.Errorf("%s/%s: trip %d outside [%d,%d]", p.Name, l.G.Name, l.G.Niter, p.TripMin, p.TripMax)
			}
			if l.Weight < 1 {
				t.Errorf("%s/%s: weight %v < 1", p.Name, l.G.Name, l.Weight)
			}
		}
	}
}

func TestOpMixTracksProfile(t *testing.T) {
	// Aggregate op mixes should be within a loose band of the profile
	// fractions.
	for _, p := range Profiles() {
		b := Generate(p)
		var mem, fp, total int
		for _, l := range b.Loops {
			for _, nd := range l.G.Nodes {
				total++
				switch nd.Op.Unit() {
				case isa.MemUnit:
					mem++
				case isa.FPUnit:
					fp++
				}
			}
		}
		memFrac := float64(mem) / float64(total)
		fpFrac := float64(fp) / float64(total)
		if memFrac < p.MemFrac-0.12 || memFrac > p.MemFrac+0.12 {
			t.Errorf("%s: mem fraction %.2f vs profile %.2f", p.Name, memFrac, p.MemFrac)
		}
		if fpFrac < p.FPFrac-0.12 || fpFrac > p.FPFrac+0.12 {
			t.Errorf("%s: fp fraction %.2f vs profile %.2f", p.Name, fpFrac, p.FPFrac)
		}
	}
}

func TestRecurrenceDensityOrdering(t *testing.T) {
	// hydro2d (density 1.0) must have more recurrences than swim (0.15).
	bms := SPECfp95()
	var hydro, swim Stats
	for _, b := range bms {
		switch b.Name {
		case "hydro2d":
			hydro = Summarize(b)
		case "swim":
			swim = Summarize(b)
		}
	}
	if hydro.Recurrences <= swim.Recurrences {
		t.Errorf("hydro2d recurrences %d not above swim %d", hydro.Recurrences, swim.Recurrences)
	}
}

func TestLoopsAreSchedulable(t *testing.T) {
	// Every loop must have a finite MII on the unified machine.
	m := machine.NewUnified(64)
	for _, b := range SPECfp95() {
		for _, l := range b.Loops {
			mii := l.G.MII(m)
			if mii < 1 || mii > 1000 {
				t.Errorf("%s: MII %d out of range", l.G.Name, mii)
			}
		}
	}
}

func TestSummarize(t *testing.T) {
	b := Generate(Profiles()[0])
	s := Summarize(b)
	if s.Loops != len(b.Loops) || s.Ops <= 0 {
		t.Errorf("stats wrong: %+v", s)
	}
	if s.MemOps == 0 || s.FPOps == 0 {
		t.Errorf("tomcatv should have both mem and FP ops: %+v", s)
	}
}
