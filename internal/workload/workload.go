// Package workload provides the reproduction's stand-in for the paper's
// evaluation corpus: the innermost-loop data dependence graphs that the
// ICTINEO compiler extracted from the SPECfp95 programs, with profiled trip
// counts.
//
// Neither ICTINEO nor SPECfp95 is available here, so the corpus is
// synthetic but deterministic (seeded per benchmark name): ten
// pseudo-benchmarks named after the SPECfp95 programs, each a weighted set
// of innermost loops whose structural parameters — loop size, memory/FP
// operation mix, recurrence density, trip counts — follow the programs'
// well-known characters (e.g. stencil codes are memory-heavy with almost no
// recurrences; hydro2d and applu are recurrence-bound; fpppp has huge
// straight-line FP bodies). The schedulers consume only the DDG and trip
// count, so a corpus spanning the same structural axes exercises the same
// code paths; see DESIGN.md §4 for the substitution argument.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/ddg"
	"repro/internal/isa"
)

// Loop is one innermost loop with its relative execution weight (how often
// the loop is entered, from profiling).
type Loop struct {
	G      *ddg.Graph
	Weight float64
}

// Benchmark is one pseudo-SPECfp95 program.
type Benchmark struct {
	Name  string
	Loops []*Loop
}

// Profile are the structural parameters of one benchmark's loops.
type Profile struct {
	Name     string
	Seed     int64
	NumLoops int
	// MinOps/MaxOps bound the loop body size.
	MinOps, MaxOps int
	// MemFrac and FPFrac are the fractions of memory and floating-point
	// operations (the rest is integer).
	MemFrac, FPFrac float64
	// RecDensity scales how many loop-carried recurrences are added
	// (recurrences per 8 operations).
	RecDensity float64
	// TripMin/TripMax bound the profiled trip counts.
	TripMin, TripMax int
	// MaxRecDist bounds the iteration distance of loop-carried recurrences;
	// 0 means the default of 2. DSP-style kernels use deeper recurrences.
	MaxRecDist int
}

// Validate checks that the profile's parameters are generatable. Generate
// panics on an invalid profile; callers constructing profiles at run time
// (fuzzers, config files) should call Validate first.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile without a name")
	case p.NumLoops < 1:
		return fmt.Errorf("workload: profile %q: NumLoops %d < 1", p.Name, p.NumLoops)
	case p.MinOps < 1:
		return fmt.Errorf("workload: profile %q: MinOps %d < 1", p.Name, p.MinOps)
	case p.MaxOps < p.MinOps:
		return fmt.Errorf("workload: profile %q: MaxOps %d < MinOps %d", p.Name, p.MaxOps, p.MinOps)
	case p.MemFrac < 0 || p.FPFrac < 0 || p.MemFrac+p.FPFrac > 1:
		return fmt.Errorf("workload: profile %q: op-mix fractions mem=%v fp=%v invalid", p.Name, p.MemFrac, p.FPFrac)
	case p.RecDensity < 0:
		return fmt.Errorf("workload: profile %q: negative recurrence density", p.Name)
	case p.TripMin < 1:
		return fmt.Errorf("workload: profile %q: TripMin %d < 1", p.Name, p.TripMin)
	case p.TripMax < p.TripMin:
		return fmt.Errorf("workload: profile %q: TripMax %d < TripMin %d", p.Name, p.TripMax, p.TripMin)
	case p.MaxRecDist < 0:
		return fmt.Errorf("workload: profile %q: negative MaxRecDist", p.Name)
	}
	return nil
}

func (p Profile) recDist() int {
	if p.MaxRecDist > 0 {
		return p.MaxRecDist
	}
	return 2
}

// Profiles returns the ten SPECfp95 stand-in profiles, in the paper's
// customary listing order.
func Profiles() []Profile {
	return []Profile{
		{Name: "tomcatv", Seed: 101, NumLoops: 7, MinOps: 18, MaxOps: 42, MemFrac: 0.34, FPFrac: 0.46, RecDensity: 0.5, TripMin: 60, TripMax: 260},
		{Name: "swim", Seed: 102, NumLoops: 8, MinOps: 26, MaxOps: 60, MemFrac: 0.40, FPFrac: 0.45, RecDensity: 0.15, TripMin: 120, TripMax: 500},
		{Name: "su2cor", Seed: 103, NumLoops: 9, MinOps: 14, MaxOps: 40, MemFrac: 0.30, FPFrac: 0.50, RecDensity: 0.7, TripMin: 40, TripMax: 200},
		{Name: "hydro2d", Seed: 104, NumLoops: 10, MinOps: 12, MaxOps: 34, MemFrac: 0.28, FPFrac: 0.48, RecDensity: 1.0, TripMin: 50, TripMax: 220},
		{Name: "mgrid", Seed: 105, NumLoops: 6, MinOps: 10, MaxOps: 26, MemFrac: 0.46, FPFrac: 0.44, RecDensity: 0.2, TripMin: 100, TripMax: 400},
		{Name: "applu", Seed: 106, NumLoops: 9, MinOps: 22, MaxOps: 52, MemFrac: 0.30, FPFrac: 0.50, RecDensity: 0.85, TripMin: 30, TripMax: 160},
		{Name: "turb3d", Seed: 107, NumLoops: 8, MinOps: 16, MaxOps: 44, MemFrac: 0.24, FPFrac: 0.58, RecDensity: 0.4, TripMin: 60, TripMax: 260},
		{Name: "apsi", Seed: 108, NumLoops: 10, MinOps: 12, MaxOps: 40, MemFrac: 0.32, FPFrac: 0.46, RecDensity: 0.55, TripMin: 40, TripMax: 220},
		{Name: "fpppp", Seed: 109, NumLoops: 5, MinOps: 60, MaxOps: 110, MemFrac: 0.18, FPFrac: 0.66, RecDensity: 0.1, TripMin: 20, TripMax: 90},
		{Name: "wave5", Seed: 110, NumLoops: 9, MinOps: 16, MaxOps: 48, MemFrac: 0.38, FPFrac: 0.44, RecDensity: 0.35, TripMin: 60, TripMax: 280},
	}
}

// DSPProfiles returns a second corpus family in the style of the paper's
// motivating DSP/media workloads (MediaBench kernels on C6x-class VLIWs):
// small integer-heavy loop bodies with little or no floating point, deep
// loop-carried recurrences (feedback filters, bit-serial state machines)
// and large trip counts.
func DSPProfiles() []Profile {
	return []Profile{
		{Name: "adpcm", Seed: 201, NumLoops: 6, MinOps: 6, MaxOps: 18, MemFrac: 0.30, FPFrac: 0.00, RecDensity: 2.4, TripMin: 200, TripMax: 2000, MaxRecDist: 3},
		{Name: "g721", Seed: 202, NumLoops: 7, MinOps: 8, MaxOps: 22, MemFrac: 0.28, FPFrac: 0.00, RecDensity: 2.0, TripMin: 160, TripMax: 1200, MaxRecDist: 4},
		{Name: "gsm", Seed: 203, NumLoops: 8, MinOps: 8, MaxOps: 24, MemFrac: 0.34, FPFrac: 0.04, RecDensity: 1.6, TripMin: 120, TripMax: 900, MaxRecDist: 3},
		{Name: "jpeg", Seed: 204, NumLoops: 8, MinOps: 10, MaxOps: 28, MemFrac: 0.40, FPFrac: 0.06, RecDensity: 1.2, TripMin: 64, TripMax: 640, MaxRecDist: 2},
		{Name: "mpeg2", Seed: 205, NumLoops: 7, MinOps: 10, MaxOps: 26, MemFrac: 0.42, FPFrac: 0.05, RecDensity: 1.4, TripMin: 96, TripMax: 720, MaxRecDist: 2},
		{Name: "fir", Seed: 206, NumLoops: 5, MinOps: 6, MaxOps: 16, MemFrac: 0.38, FPFrac: 0.08, RecDensity: 1.8, TripMin: 256, TripMax: 4096, MaxRecDist: 2},
		{Name: "iir", Seed: 207, NumLoops: 5, MinOps: 6, MaxOps: 14, MemFrac: 0.26, FPFrac: 0.08, RecDensity: 3.0, TripMin: 256, TripMax: 4096, MaxRecDist: 4},
		{Name: "viterbi", Seed: 208, NumLoops: 6, MinOps: 8, MaxOps: 20, MemFrac: 0.32, FPFrac: 0.00, RecDensity: 2.6, TripMin: 128, TripMax: 1024, MaxRecDist: 3},
	}
}

// SPECfp95 generates the full deterministic corpus.
func SPECfp95() []*Benchmark {
	return generateAll(Profiles())
}

// DSP generates the deterministic DSP/MediaBench-style corpus.
func DSP() []*Benchmark {
	return generateAll(DSPProfiles())
}

func generateAll(profiles []Profile) []*Benchmark {
	bms := make([]*Benchmark, 0, len(profiles))
	for _, p := range profiles {
		bms = append(bms, Generate(p))
	}
	return bms
}

// Generate builds one benchmark from a profile. The same profile always
// yields the same loops. It panics on an invalid profile (see
// Profile.Validate) and on a generator bug that produces an invalid loop.
func Generate(p Profile) *Benchmark {
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
	r := rand.New(rand.NewSource(p.Seed))
	b := &Benchmark{Name: p.Name}
	for i := 0; i < p.NumLoops; i++ {
		n := p.MinOps + r.Intn(p.MaxOps-p.MinOps+1)
		g := genLoop(r, p, i, n)
		if err := g.Validate(); err != nil {
			// Generation is constructive (dist-0 edges only go forward), so
			// this indicates a generator bug; fail loudly.
			panic("workload: generated invalid loop: " + err.Error())
		}
		b.Loops = append(b.Loops, &Loop{G: g, Weight: 1 + float64(r.Intn(9))})
	}
	return b
}

// genLoop builds one loop body: a connected forward DAG of data dependences
// with profile-controlled operation mix, plus loop-carried recurrences and
// occasional memory-ordering edges.
func genLoop(r *rand.Rand, p Profile, idx, n int) *ddg.Graph {
	niter := p.TripMin + r.Intn(p.TripMax-p.TripMin+1)
	g := ddg.New(p.Name+"/loop"+strconv.Itoa(idx), niter)

	for i := 0; i < n; i++ {
		op := pickOp(r, p)
		if i == 0 && !op.ProducesValue() {
			// The first node must produce a value so every later node can
			// draw at least one producer edge, keeping the body connected.
			op = isa.Load
		}
		g.AddNode(op, "")
	}

	// Forward data edges: every node after the first gets 1–3 producers
	// among the earlier value-producing nodes, keeping the body connected.
	producers := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if len(producers) > 0 {
			k := 1 + r.Intn(2)
			if r.Float64() < 0.25 {
				k++
			}
			seen := map[int]bool{}
			for j := 0; j < k; j++ {
				from := producers[r.Intn(len(producers))]
				if seen[from] {
					continue
				}
				seen[from] = true
				g.AddEdge(ddg.Edge{
					From: from, To: i,
					Lat:  isa.DefaultLatency(g.Nodes[from].Op),
					Kind: ddg.Data,
				})
			}
		}
		if g.Nodes[i].Op.ProducesValue() {
			producers = append(producers, i)
		}
	}

	// Loop-carried recurrences: back edges j→i (i < j) at distance
	// 1–MaxRecDist.
	recs := int(p.RecDensity * float64(n) / 8)
	if n < 2 {
		recs = 0
	}
	for k := 0; k < recs; k++ {
		i := r.Intn(n - 1)
		j := i + 1 + r.Intn(n-i-1)
		if !g.Nodes[j].Op.ProducesValue() {
			continue
		}
		g.AddEdge(ddg.Edge{
			From: j, To: i,
			Lat:  isa.DefaultLatency(g.Nodes[j].Op),
			Dist: 1 + r.Intn(p.recDist()),
			Kind: ddg.Data,
		})
	}

	// Memory ordering: each store gets a distance-1 ordering edge to one
	// later (or wrapped) load with some probability, modelling may-alias
	// store→load pairs.
	var loads, stores []int
	for i, nd := range g.Nodes {
		switch nd.Op {
		case isa.Load:
			loads = append(loads, i)
		case isa.Store:
			stores = append(stores, i)
		}
	}
	for _, s := range stores {
		if len(loads) == 0 || r.Float64() > 0.3 {
			continue
		}
		l := loads[r.Intn(len(loads))]
		if l == s {
			continue
		}
		dist := 1
		if l > s {
			dist = 0
		}
		// Zero-distance ordering must go forward to keep the body acyclic.
		if dist == 0 && l < s {
			continue
		}
		g.AddEdge(ddg.Edge{From: s, To: l, Lat: isa.DefaultLatency(isa.Store), Dist: dist, Kind: ddg.Mem})
	}
	return g
}

// pickOp samples an operation class according to the profile's mix.
func pickOp(r *rand.Rand, p Profile) isa.OpClass {
	x := r.Float64()
	switch {
	case x < p.MemFrac:
		if r.Float64() < 0.68 {
			return isa.Load
		}
		return isa.Store
	case x < p.MemFrac+p.FPFrac:
		y := r.Float64()
		switch {
		case y < 0.48:
			return isa.FPAdd
		case y < 0.93:
			return isa.FPMul
		default:
			return isa.FPDiv
		}
	default:
		if r.Float64() < 0.85 {
			return isa.IntALU
		}
		return isa.IntMul
	}
}

// Stats summarizes a benchmark's structure, used by tests and tools.
type Stats struct {
	Loops       int
	Ops         int
	MemOps      int
	FPOps       int
	Recurrences int
}

// Summarize computes structural statistics of a benchmark.
func Summarize(b *Benchmark) Stats {
	var s Stats
	s.Loops = len(b.Loops)
	for _, l := range b.Loops {
		s.Ops += l.G.N()
		for _, nd := range l.G.Nodes {
			switch nd.Op.Unit() {
			case isa.MemUnit:
				s.MemOps++
			case isa.FPUnit:
				s.FPOps++
			}
		}
		s.Recurrences += len(l.G.Recurrences())
	}
	return s
}
