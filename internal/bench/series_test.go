package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
)

func fakeReport() *Report {
	return &Report{
		Machine: machine.MustClustered(2, 32, 1, 1),
		Rows: []Row{
			{Benchmark: "tomcatv", IPC: map[string]float64{
				SchemeUnified: 4.4, SchemeURACAM: 3.3, SchemeFixed: 3.2, SchemeGP: 3.5}},
		},
		MeanIPC: map[string]float64{
			SchemeUnified: 4.4, SchemeURACAM: 3.3, SchemeFixed: 3.2, SchemeGP: 3.5},
		SchedTime: map[string]time.Duration{
			SchemeUnified: time.Second, SchemeURACAM: 5 * time.Second,
			SchemeFixed: time.Second, SchemeGP: time.Second},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := fakeReport().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header+row+mean:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "config,program,unified,URACAM,Fixed,GP") {
		t.Errorf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "tomcatv") || !strings.Contains(lines[1], "3.5000") {
		t.Errorf("bad row: %s", lines[1])
	}
	if !strings.Contains(lines[2], "MEAN") {
		t.Errorf("bad mean row: %s", lines[2])
	}
}

func TestWriteTimesCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimesCSV(&buf, []*Report{fakeReport()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "URACAM,5.0000") {
		t.Errorf("missing URACAM time:\n%s", out)
	}
	if strings.Contains(out, "unified") {
		t.Errorf("Table 2 must not include the unified scheme:\n%s", out)
	}
}
