package bench

import "math/rand"

// ZipfSampler draws key indices from a Zipf(s) distribution — the standard
// model of hot-key skew, where rank-k popularity falls off as 1/(k+1)^s.
// It is fully deterministic: the same seed yields the same index sequence
// on every platform and Go release (math/rand's generator and rand.Zipf
// are covered by the Go 1 compatibility promise), which is what lets the
// hot-key benchmark and its tests replay the exact same traffic against
// different placement policies and compare throughput apples-to-apples.
type ZipfSampler struct {
	z *rand.Zipf
}

// NewZipfSampler returns a sampler over indices [0, imax] with skew
// exponent s (s must be > 1; the canonical hot-key benchmark uses 2.0,
// under which index 0 draws roughly 60% of the traffic for an 81-key
// space).
func NewZipfSampler(seed int64, s float64, imax uint64) *ZipfSampler {
	return &ZipfSampler{z: rand.NewZipf(rand.New(rand.NewSource(seed)), s, 1, imax)}
}

// Next draws the next index. Index 0 is the hottest key.
func (z *ZipfSampler) Next() uint64 { return z.z.Uint64() }
