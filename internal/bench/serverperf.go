package bench

import (
	"encoding/json"
	"io"
)

// ServerPerfSnapshot is the machine-readable result of one gpserved
// sustained-throughput measurement (`gpserved -bench-json`), written to
// BENCH_server.json the same way MeasurePerf's snapshot goes to
// BENCH_partition.json. The measurement itself lives in internal/server
// (which imports this package for the sweep runner, so the types sit here
// to keep the dependency one-way).
type ServerPerfSnapshot struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// Requests is the total number of /v1/schedule requests fired;
	// UniqueRequests of them were distinct (the rest re-request the same
	// loops and should be cache hits or coalesced).
	Requests       int `json:"requests"`
	UniqueRequests int `json:"unique_requests"`
	Concurrency    int `json:"concurrency"`
	Errors         int `json:"errors"`
	Rejected       int `json:"rejected"` // 429 backpressure responses

	DurationSec    float64 `json:"duration_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	P50Micros      float64 `json:"p50_micros"`
	P99Micros      float64 `json:"p99_micros"`

	// Cache-warm amortization comparison: after the sustained mix every
	// distinct loop is hot, and the same working set is re-driven twice —
	// once as verbatim singleton requests (the body-hash fast path) and
	// once packed into /v1/schedule/batch envelopes. Both rates are
	// loops per second; BatchSpeedup is their ratio, the measured value of
	// amortizing HTTP round-trips and admission over a compilation unit.
	BatchLoops          int     `json:"batch_loops"`
	SingletonWarmPerSec float64 `json:"singleton_warm_per_sec"`
	BatchLoopsPerSec    float64 `json:"batch_loops_per_sec"`
	BatchSpeedup        float64 `json:"batch_speedup"`
}

// WriteServerPerfJSON writes the snapshot as indented JSON.
func WriteServerPerfJSON(w io.Writer, s *ServerPerfSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
