package bench

import (
	"encoding/json"
	"io"
)

// ServerPerfSnapshot is the machine-readable result of one gpserved
// sustained-throughput measurement (`gpserved -bench-json`), written to
// BENCH_server.json the same way MeasurePerf's snapshot goes to
// BENCH_partition.json. The measurement itself lives in internal/server
// (which imports this package for the sweep runner, so the types sit here
// to keep the dependency one-way).
type ServerPerfSnapshot struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// Requests is the total number of /v1/schedule requests fired;
	// UniqueRequests of them were distinct (the rest re-request the same
	// loops and should be cache hits or coalesced).
	Requests       int `json:"requests"`
	UniqueRequests int `json:"unique_requests"`
	Concurrency    int `json:"concurrency"`
	Errors         int `json:"errors"`
	Rejected       int `json:"rejected"` // 429 backpressure responses

	DurationSec    float64 `json:"duration_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	P50Micros      float64 `json:"p50_micros"`
	P99Micros      float64 `json:"p99_micros"`

	// Cache-warm amortization comparison: after the sustained mix every
	// distinct loop is hot, and the same working set is re-driven twice —
	// once as verbatim singleton requests (the body-hash fast path) and
	// once packed into /v1/schedule/batch envelopes. Both rates are
	// loops per second; BatchSpeedup is their ratio, the measured value of
	// amortizing HTTP round-trips and admission over a compilation unit.
	BatchLoops          int     `json:"batch_loops"`
	SingletonWarmPerSec float64 `json:"singleton_warm_per_sec"`
	BatchLoopsPerSec    float64 `json:"batch_loops_per_sec"`
	BatchSpeedup        float64 `json:"batch_speedup"`

	// HotKey, when present, is the Zipf-skew bounded-load measurement
	// (coordinator benchmarks only).
	HotKey *HotKeySnapshot `json:"hot_key,omitempty"`
}

// HotKeySnapshot is the result of the cluster hot-key benchmark: the same
// Zipf-skewed traffic driven against the fleet with bounded-load spilling
// off and on, plus a uniform-traffic baseline, all under an identical
// per-worker serve gate. The claim it measures: with spilling, hot-key
// throughput approaches uniform-traffic throughput instead of collapsing
// to a single owner's capacity — without giving up byte-identical
// responses.
type HotKeySnapshot struct {
	Workers     int `json:"workers"`
	Requests    int `json:"requests"` // per phase
	Concurrency int `json:"concurrency"`

	ZipfS       float64 `json:"zipf_s"`
	ZipfSeed    int64   `json:"zipf_seed"`
	UniqueKeys  int     `json:"unique_keys"`
	HotKeyShare float64 `json:"hot_key_share"` // traffic fraction of the hottest key
	LoadBound   float64 `json:"load_bound"`

	UniformPerSec    float64 `json:"uniform_per_sec"`
	HotNoSpillPerSec float64 `json:"hot_nospill_per_sec"`
	HotSpillPerSec   float64 `json:"hot_spill_per_sec"`
	Spills           int64   `json:"spills"` // spill placements during the spill phase

	// SpeedupVsNoSpill is hot-spill over hot-no-spill throughput (the win);
	// UniformOverSpill is uniform over hot-spill (how close skewed traffic
	// gets to the unskewed ceiling; 1.0 means no hot-key penalty remains).
	SpeedupVsNoSpill float64 `json:"speedup_vs_no_spill"`
	UniformOverSpill float64 `json:"uniform_over_spill"`

	Errors   int `json:"errors"`
	Rejected int `json:"rejected"` // 429s across all phases
}

// WriteServerPerfJSON writes the snapshot as indented JSON.
func WriteServerPerfJSON(w io.Writer, s *ServerPerfSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
