package bench

import (
	"fmt"
	"io"
	"strings"
)

// WriteCSV emits a report as comma-separated values — one row per
// benchmark, one column per scheme — so the paper's bar charts (Figures 2
// and 3) can be re-plotted directly from the harness output.
func (r *Report) WriteCSV(w io.Writer) error {
	header := append([]string{"config", "program"}, Schemes...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, row := range r.Rows {
		fields := []string{r.Machine.Name, row.Benchmark}
		for _, s := range Schemes {
			fields = append(fields, fmt.Sprintf("%.4f", row.IPC[s]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	fields := []string{r.Machine.Name, "MEAN"}
	for _, s := range Schemes {
		fields = append(fields, fmt.Sprintf("%.4f", r.MeanIPC[s]))
	}
	_, err := fmt.Fprintln(w, strings.Join(fields, ","))
	return err
}

// WriteTimesCSV emits Table 2's scheduling-time series for several reports.
func WriteTimesCSV(w io.Writer, reports []*Report) error {
	if _, err := fmt.Fprintln(w, "config,scheme,seconds"); err != nil {
		return err
	}
	for _, r := range reports {
		for _, s := range Schemes {
			if s == SchemeUnified {
				continue // the paper's Table 2 compares the clustered schemes
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%.4f\n", r.Machine.Name, s, r.SchedTime[s].Seconds()); err != nil {
				return err
			}
		}
	}
	return nil
}
