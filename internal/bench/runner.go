package bench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/schedule"
)

// job is one independent scheduling unit of a panel: one loop of one
// benchmark under one scheme. Jobs are laid out in the exact order the
// sequential harness visits them, so the reduction can walk the result
// slice with a single running index and reproduce the sequential
// floating-point accumulation order bit for bit.
type job struct {
	benchmark string
	scheme    string
	g         *ddg.Graph
	m         *machine.Config
	opts      *core.Options
	verify    bool
}

func (j *job) wrap(err error) error {
	return fmt.Errorf("bench: %s/%s on %s: %w", j.benchmark, j.g.Name, j.scheme, err)
}

// run schedules the job and, when the differential oracle is enabled,
// verifies the produced schedule against the dependence graph and machine.
func (j *job) run(ctx context.Context) (*core.Result, error) {
	res, err := core.ScheduleLoopContext(ctx, j.g, j.m, j.opts)
	if err != nil {
		return nil, j.wrap(err)
	}
	if j.verify {
		if err := schedule.Verify(j.g, j.m, res.Schedule); err != nil {
			return nil, j.wrap(err)
		}
	}
	return res, nil
}

// runJobs executes every job and returns results index-aligned with jobs:
// results[i] is jobs[i]'s outcome. With workers ≤ 1 the jobs run strictly
// sequentially on the calling goroutine (the pre-parallel harness
// behavior); otherwise a pool of `workers` goroutines drains the job list.
//
// The first failure cancels in-flight work. Error selection prefers the
// lowest-indexed failure that is not an artifact of the pool's own
// cancellation, so a corpus with a single bad loop — the common case —
// fails with the same error regardless of goroutine interleaving. (When
// several jobs fail genuinely at once, cancellation may reach an
// earlier-indexed job before its own failure does, so which genuine error
// is reported can vary.)
func runJobs(ctx context.Context, jobs []job, workers int) ([]*core.Result, error) {
	if workers < 1 {
		workers = 1 // the GOMAXPROCS default lives in Config.workers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]*core.Result, len(jobs))

	if workers <= 1 {
		for i := range jobs {
			res, err := jobs[i].run(ctx)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}

	// The same *ddg.Graph is scheduled by all four schemes; warm its lazy
	// adjacency caches once, before any concurrent readers exist.
	for i := range jobs {
		jobs[i].g.Freeze()
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				res, err := jobs[i].run(ctx)
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()

	// Prefer the lowest-indexed genuine failure; jobs that died with a
	// cancellation error were collateral of cancel() (or of the caller's
	// own context, in which case any of them reports it faithfully).
	var first error
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			first = err
			break
		}
	}
	if first == nil {
		for _, err := range errs {
			if err != nil {
				first = err
				break
			}
		}
	}
	if first == nil {
		// A canceled caller context can drain the pool before any worker
		// records an error (workers bail on ctx before claiming a job).
		if err := ctx.Err(); err != nil {
			first = err
		}
	}
	if first != nil {
		return nil, first
	}
	return results, nil
}
