package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/store"
	"repro/internal/workload"
)

// Perf snapshots give the repo a measured performance trajectory: gpbench
// -bench-json writes one BENCH_partition.json per run (CI keeps them as
// artifacts), so a regression in the partitioner's hot path shows up as a
// diff between snapshots rather than as an anecdote.

// PerfBenchmark is one micro-benchmark measurement.
type PerfBenchmark struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// PerfSnapshot is the machine-readable result of one MeasurePerf run.
type PerfSnapshot struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Benchmarks are the micro-benchmarks: full partitioning of a medium
	// and a large loop, the steady-state evaluate (whose allocs_per_op
	// must stay 0 — the allocation-free contract), and the coordinator
	// journal's append path.
	Benchmarks []PerfBenchmark `json:"benchmarks"`
	// LoopsScheduled and SchedulesPerSec measure end-to-end GP scheduling
	// throughput over the SPECfp95 corpus on the paper's 4-cluster machine.
	LoopsScheduled  int     `json:"loops_scheduled"`
	SchedulesPerSec float64 `json:"schedules_per_sec"`
}

// perfLoops returns deterministic workloads for the micro-benchmarks: the
// first tomcatv loop (medium) and a generated 100-op loop (large).
func perfLoops() (medium, large *workload.Loop) {
	spec := workload.SPECfp95()
	medium = spec[0].Loops[0]
	big := workload.Generate(workload.Profile{
		Name: "perf-large", Seed: 7, NumLoops: 1,
		MinOps: 96, MaxOps: 104, MemFrac: 0.30, FPFrac: 0.40,
		RecDensity: 0.25, TripMin: 100, TripMax: 120,
	})
	large = big.Loops[0]
	return medium, large
}

// MeasurePerf runs the partitioner micro-benchmarks (via testing.Benchmark)
// and an end-to-end GP scheduling throughput measurement, and returns the
// snapshot.
func MeasurePerf() (*PerfSnapshot, error) {
	medium, large := perfLoops()
	m2 := machine.MustClustered(2, 32, 1, 1)
	m4 := machine.MustClustered(4, 64, 1, 2)

	snap := &PerfSnapshot{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}

	record := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		snap.Benchmarks = append(snap.Benchmarks, PerfBenchmark{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	// The partition benches reuse one warmed arena across iterations — the
	// serving pattern: gpserved threads a pooled arena through every
	// request, so the steady-state op is "partition with retained scratch",
	// not "partition plus cold allocation of every buffer".
	record("partition_medium_2cluster", func(b *testing.B) {
		ii := medium.G.MII(m2)
		ar := partition.NewArena()
		partition.NewWithArena(medium.G, m2, nil, ar).Partition(ii) // warm the arena
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			partition.NewWithArena(medium.G, m2, nil, ar).Partition(ii)
		}
	})
	record("partition_large_4cluster", func(b *testing.B) {
		ii := large.G.MII(m4)
		ar := partition.NewArena()
		partition.NewWithArena(large.G, m4, nil, ar).Partition(ii)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			partition.NewWithArena(large.G, m4, nil, ar).Partition(ii)
		}
	})
	// Portfolio search manages its own pooled per-seed arenas; the warm run
	// primes that pool so the measured op is the steady serving state. The
	// medium loop keeps the op short enough for the harness to average many
	// iterations — the K=4 race on the large loop runs whole seconds, which
	// would gate on a single noisy sample.
	record("portfolio_medium_2cluster", func(b *testing.B) {
		opts := &core.Options{Portfolio: 4}
		if _, err := core.ScheduleLoop(medium.G, m2, opts); err != nil {
			b.Fatalf("portfolio schedule: %v", err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.ScheduleLoop(medium.G, m2, opts); err != nil {
				b.Fatalf("portfolio schedule: %v", err)
			}
		}
	})
	record("evaluate_steady_state", func(b *testing.B) {
		ii := large.G.MII(m4)
		p := partition.New(large.G, m4, nil)
		assign := make([]int, large.G.N())
		for v := range assign {
			assign[v] = v % m4.Clusters
		}
		p.EvaluateForBenchmark(assign, ii) // warm the scratch arena
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.EvaluateForBenchmark(assign, ii)
		}
	})

	// Coordinator write-path overhead: one journaled cell completion
	// (marshal + CRC frame + buffered write), the store operation on the
	// job hot path. NoSync isolates the encoding cost from device fsync
	// latency, which CI machines cannot measure stably; the cell index
	// cycles a bounded set so the measured op is the steady-state
	// replacement write, not an ever-growing append scan.
	journalDir, err := os.MkdirTemp("", "gpbench-journal")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(journalDir)
	journal, err := store.OpenJournal(journalDir, store.JournalOptions{NoSync: true})
	if err != nil {
		return nil, err
	}
	defer journal.Close()
	if err := journal.PutJob("bench-job", 1, []byte(`{"maxLoops":64}`)); err != nil {
		return nil, err
	}
	cellRows := []byte("SPECfp95,machine,loop,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16\n")
	record("journal_append", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := journal.FinishCell("bench-job", store.CellRecord{
				Index: i % 64,
				Key:   "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",
				Rows:  cellRows,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// End-to-end throughput: every SPECfp95 loop through the GP scheme.
	corpus := workload.SPECfp95()
	var loops []*workload.Loop
	for _, bm := range corpus {
		loops = append(loops, bm.Loops...)
	}
	sched := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, l := range loops {
				if _, err := core.ScheduleLoop(l.G, m4, nil); err != nil {
					b.Fatalf("schedule %s: %v", l.G.Name, err)
				}
			}
		}
	})
	snap.LoopsScheduled = len(loops)
	if perCorpus := sched.NsPerOp(); perCorpus > 0 {
		snap.SchedulesPerSec = float64(len(loops)) / (float64(perCorpus) / 1e9)
	}
	if len(loops) == 0 {
		return nil, fmt.Errorf("bench: empty SPECfp95 corpus")
	}
	return snap, nil
}

// WritePerfJSON writes the snapshot as indented JSON.
func WritePerfJSON(w io.Writer, s *PerfSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
