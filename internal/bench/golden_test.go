package bench

import (
	"bytes"
	"testing"
)

// Golden tests pin the exact byte output of every renderer on the fixed
// single-row report from series_test.go. The parallel harness promises
// bit-for-bit identical output for every worker count, so these strings
// are a contract: a formatting change here is a breaking change for anyone
// re-plotting the paper's figures from the CSV series.

const goldenRender = `2-cluster/32reg/1bus/lat1
program      unified    URACAM     Fixed        GP
tomcatv        4.400     3.300     3.200     3.500
MEAN           4.400     3.300     3.200     3.500
`

const goldenCSV = `config,program,unified,URACAM,Fixed,GP
2-cluster/32reg/1bus/lat1,tomcatv,4.4000,3.3000,3.2000,3.5000
2-cluster/32reg/1bus/lat1,MEAN,4.4000,3.3000,3.2000,3.5000
`

const goldenTimesCSV = `config,scheme,seconds
2-cluster/32reg/1bus/lat1,URACAM,5.0000
2-cluster/32reg/1bus/lat1,Fixed,1.0000
2-cluster/32reg/1bus/lat1,GP,1.0000
`

const goldenTable2 = `configuration                     URACAM       Fixed          GP     ratio
2-cluster/32reg/1bus/lat1             5s          1s          1s      5.0x
`

func TestRenderGolden(t *testing.T) {
	if got := fakeReport().Render(); got != goldenRender {
		t.Errorf("Render:\n%q\nwant:\n%q", got, goldenRender)
	}
}

func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fakeReport().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != goldenCSV {
		t.Errorf("WriteCSV:\n%q\nwant:\n%q", buf.String(), goldenCSV)
	}
}

func TestWriteTimesCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimesCSV(&buf, []*Report{fakeReport()}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != goldenTimesCSV {
		t.Errorf("WriteTimesCSV:\n%q\nwant:\n%q", buf.String(), goldenTimesCSV)
	}
}

func TestRenderTable2Golden(t *testing.T) {
	if got := RenderTable2([]*Report{fakeReport()}); got != goldenTable2 {
		t.Errorf("RenderTable2:\n%q\nwant:\n%q", got, goldenTable2)
	}
}
