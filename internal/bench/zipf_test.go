package bench

import "testing"

// The hot-key benchmark's whole comparison rests on replaying the exact
// same skewed traffic under different placement policies, so the sampler
// must be bit-for-bit deterministic per seed — and actually skewed.
func TestZipfSamplerDeterministicAndSkewed(t *testing.T) {
	const n = 2000
	a := NewZipfSampler(1, 1.5, 80)
	b := NewZipfSampler(1, 1.5, 80)
	counts := make(map[uint64]int)
	for i := 0; i < n; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("draw %d: seed-1 samplers diverged (%d vs %d)", i, va, vb)
		}
		if va > 80 {
			t.Fatalf("draw %d: index %d out of [0,80]", i, va)
		}
		counts[va]++
	}

	// Index 0 is the hot key: at s=1.5 over 81 keys it should dominate.
	hottest, share := uint64(0), 0
	for idx, c := range counts {
		if c > share {
			hottest, share = idx, c
		}
	}
	if hottest != 0 {
		t.Fatalf("hottest index is %d, want 0 (counts %v)", hottest, counts)
	}
	if frac := float64(share) / n; frac < 0.35 {
		t.Fatalf("hot-key share %.2f, want >= 0.35 at s=1.5", frac)
	}

	// A different seed draws a different sequence.
	c := NewZipfSampler(2, 1.5, 80)
	same := true
	d := NewZipfSampler(1, 1.5, 80)
	for i := 0; i < 64; i++ {
		if c.Next() != d.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 2 reproduced seed 1's sequence")
	}
}
