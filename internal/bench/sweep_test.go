package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/workload"
)

// TestSweepRunsOracleOverAllCells fans the default machine set over both
// (trimmed) corpora with the schedule.Verify oracle enabled: a single
// invalid schedule anywhere fails the sweep.
func TestSweepRunsOracleOverAllCells(t *testing.T) {
	corpora := SweepCorpora(1)
	points, err := Sweep(context.Background(), machine.SweepSet(), corpora, Config{Parallel: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(machine.SweepSet()) * len(corpora)
	if len(points) != wantCells {
		t.Fatalf("%d sweep points, want %d", len(points), wantCells)
	}
	for _, pt := range points {
		if pt.Report == nil {
			t.Errorf("cell %s × %s skipped: %s", pt.Machine.Name, pt.Corpus, pt.SkipReason)
			continue
		}
		if pt.Report.Loops == 0 || len(pt.Report.Rows) == 0 {
			t.Errorf("cell %s × %s produced an empty report", pt.Machine.Name, pt.Corpus)
		}
	}
}

func TestSweepSkipsInfeasibleCells(t *testing.T) {
	// A C6x-faithful machine with no FP units at all: the FP-heavy
	// SPECfp95 corpus must be skipped, the FP-free DSP benchmarks still
	// depend on their own mix.
	noFP := machine.MustHetero("c6x-nofp", []machine.ClusterSpec{
		{Units: [isa.NumUnitKinds]int{3, 0, 1}, Regs: 16},
		{Units: [isa.NumUnitKinds]int{3, 0, 1}, Regs: 16},
	}, machine.SharedBus, 1, 1, false)
	spec := Corpus{Name: "SPECfp95", Benchmarks: workload.SPECfp95()[:1]}
	points, err := Sweep(context.Background(), []*machine.Config{noFP}, []Corpus{spec}, Config{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].Report != nil {
		t.Fatalf("infeasible cell was not skipped: %+v", points)
	}
	if !strings.Contains(points[0].SkipReason, "FP") {
		t.Errorf("skip reason %q does not name the missing unit kind", points[0].SkipReason)
	}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SKIPPED") {
		t.Errorf("sweep CSV does not mark the skipped cell:\n%s", buf.String())
	}
}

func TestSweepCSVShape(t *testing.T) {
	corpora := []Corpus{{Name: "DSP", Benchmarks: workload.DSP()[:2]}}
	for _, c := range corpora[0].Benchmarks {
		c.Loops = c.Loops[:1]
	}
	m := machine.MustClustered(2, 64, 1, 1)
	points, err := Sweep(context.Background(), []*machine.Config{m}, corpora, Config{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "corpus,config,program,"+strings.Join(Schemes, ",") {
		t.Errorf("header = %q", lines[0])
	}
	// Two benchmarks + one MEAN row.
	if len(lines) != 1+2+1 {
		t.Errorf("%d CSV lines, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[len(lines)-1], "DSP,"+m.Name+",MEAN,") {
		t.Errorf("last line %q is not the MEAN row", lines[len(lines)-1])
	}
}

func TestSweepInputValidation(t *testing.T) {
	if _, err := Sweep(context.Background(), nil, SweepCorpora(1), Config{}); err == nil {
		t.Error("sweep without machines accepted")
	}
	if _, err := Sweep(context.Background(), machine.SweepSet(), nil, Config{}); err == nil {
		t.Error("sweep without corpora accepted")
	}
	bad := &machine.Config{Name: "broken"}
	if _, err := Sweep(context.Background(), []*machine.Config{bad}, SweepCorpora(1), Config{}); err == nil {
		t.Error("invalid machine accepted")
	}
}

// TestRunWithCustomMachineVerified runs one full panel on a heterogeneous
// machine with the oracle enabled, exercising Config.Machine.
func TestRunWithCustomMachineVerified(t *testing.T) {
	het := machine.MustHetero("het-bench", []machine.ClusterSpec{
		{Units: [isa.NumUnitKinds]int{3, 1, 2}, Regs: 24},
		{Units: [isa.NumUnitKinds]int{1, 3, 2}, Regs: 40},
	}, machine.SharedBus, 1, 1, false)
	bms := workload.SPECfp95()[:2]
	for _, bm := range bms {
		bm.Loops = bm.Loops[:2]
	}
	rep, err := Run(bms, Config{Machine: het, Parallel: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Machine.Name != "het-bench" {
		t.Errorf("report machine %q", rep.Machine.Name)
	}
	for _, row := range rep.Rows {
		for _, s := range Schemes {
			if row.IPC[s] <= 0 {
				t.Errorf("%s/%s: IPC %v", row.Benchmark, s, row.IPC[s])
			}
		}
	}
}
