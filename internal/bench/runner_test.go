package bench

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/workload"
)

// TestParallelMatchesSequential is the determinism contract of the worker
// pool: any worker count must produce a Report whose IPC, fallback counts,
// means and CSV/table renderings are bit-for-bit identical to the
// sequential run. Run it under -race to also exercise the concurrency
// safety of sharing one graph across the four schemes.
func TestParallelMatchesSequential(t *testing.T) {
	corpus := smallCorpus()
	cfg := Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1}

	cfg.Parallel = 1
	seq, err := Run(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Parallel = workers
		par, err := Run(corpus, cfg)
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		if len(par.Rows) != len(seq.Rows) {
			t.Fatalf("parallel=%d: %d rows, want %d", workers, len(par.Rows), len(seq.Rows))
		}
		for i, prow := range par.Rows {
			srow := seq.Rows[i]
			if prow.Benchmark != srow.Benchmark {
				t.Fatalf("parallel=%d: row %d is %q, want %q", workers, i, prow.Benchmark, srow.Benchmark)
			}
			for _, s := range Schemes {
				if prow.IPC[s] != srow.IPC[s] {
					t.Errorf("parallel=%d: %s/%s IPC %v != sequential %v",
						workers, prow.Benchmark, s, prow.IPC[s], srow.IPC[s])
				}
				if prow.Fallbacks[s] != srow.Fallbacks[s] {
					t.Errorf("parallel=%d: %s/%s fallbacks %d != sequential %d",
						workers, prow.Benchmark, s, prow.Fallbacks[s], srow.Fallbacks[s])
				}
			}
		}
		for _, s := range Schemes {
			if par.MeanIPC[s] != seq.MeanIPC[s] {
				t.Errorf("parallel=%d: mean %s IPC %v != sequential %v", workers, s, par.MeanIPC[s], seq.MeanIPC[s])
			}
			if par.SchedTime[s] <= 0 {
				t.Errorf("parallel=%d: SchedTime[%s] = %v, want > 0 (sum of per-job times)", workers, s, par.SchedTime[s])
			}
		}
		if par.Loops != seq.Loops {
			t.Errorf("parallel=%d: Loops %d != %d", workers, par.Loops, seq.Loops)
		}
		if par.Render() != seq.Render() {
			t.Errorf("parallel=%d: Render differs from sequential", workers)
		}
		var pbuf, sbuf bytes.Buffer
		if err := par.WriteCSV(&pbuf); err != nil {
			t.Fatal(err)
		}
		if err := seq.WriteCSV(&sbuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pbuf.Bytes(), sbuf.Bytes()) {
			t.Errorf("parallel=%d: CSV differs from sequential:\n%s\nvs\n%s", workers, pbuf.String(), sbuf.String())
		}
	}
}

func TestRunEmptyCorpus(t *testing.T) {
	_, err := Run(nil, Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1})
	var empty *EmptyCorpusError
	if !errors.As(err, &empty) {
		t.Fatalf("Run(nil) = %v, want *EmptyCorpusError", err)
	}
	if empty.Benchmark != "" {
		t.Errorf("empty corpus error names benchmark %q", empty.Benchmark)
	}
}

func TestRunLooplessBenchmark(t *testing.T) {
	corpus := []*workload.Benchmark{{Name: "hollow"}}
	_, err := Run(corpus, Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1})
	var empty *EmptyCorpusError
	if !errors.As(err, &empty) {
		t.Fatalf("Run = %v, want *EmptyCorpusError", err)
	}
	if empty.Benchmark != "hollow" {
		t.Errorf("error names benchmark %q, want hollow", empty.Benchmark)
	}
}

func TestRunZeroWeightBenchmark(t *testing.T) {
	g := ddg.New("w0/loop0", 10)
	a := g.AddNode(isa.FPAdd, "a")
	b := g.AddNode(isa.FPAdd, "b")
	g.AddDep(a, b, 0)
	corpus := []*workload.Benchmark{{Name: "w0", Loops: []*workload.Loop{{G: g, Weight: 0}}}}
	_, err := Run(corpus, Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1})
	var zero *ZeroCycleError
	if !errors.As(err, &zero) {
		t.Fatalf("Run = %v, want *ZeroCycleError", err)
	}
	if zero.Benchmark != "w0" {
		t.Errorf("error names benchmark %q, want w0", zero.Benchmark)
	}
}

func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		cfg := Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1, Parallel: workers}
		_, err := RunContext(ctx, smallCorpus(), cfg)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallel=%d: RunContext on canceled ctx = %v, want context.Canceled", workers, err)
		}
	}
}

// TestRunnerMoreWorkersThanJobs pins the pool's clamp: a panel with fewer
// jobs than workers must still complete and stay deterministic.
func TestRunnerMoreWorkersThanJobs(t *testing.T) {
	corpus := smallCorpus()[:1]
	corpus[0].Loops = corpus[0].Loops[:1]
	cfg := Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1, Parallel: 64}
	rep, err := Run(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Loops != 1 {
		t.Errorf("got %d rows / %d loops, want 1 / 1", len(rep.Rows), rep.Loops)
	}
}
