// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§4) over the synthetic SPECfp95 corpus.
//
// For each machine configuration it runs the four compared schemes —
// unified (upper bound), URACAM, Fixed Partition and GP — over every loop
// of every benchmark, and aggregates weighted IPC per benchmark plus
// average scheduling time per scheme (Table 2's metric).
package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

// Scheme names the four compared bars of Figures 2 and 3.
const (
	SchemeUnified = "unified"
	SchemeURACAM  = "URACAM"
	SchemeFixed   = "Fixed"
	SchemeGP      = "GP"
)

// Schemes lists the scheme names in the paper's bar order.
var Schemes = []string{SchemeUnified, SchemeURACAM, SchemeFixed, SchemeGP}

// Row is the result of one benchmark under one machine configuration.
type Row struct {
	Benchmark string
	// IPC maps scheme name → weighted instructions per cycle.
	IPC map[string]float64
	// Fallbacks counts list-scheduling fallbacks per scheme.
	Fallbacks map[string]int
}

// Report is one full figure panel: all benchmarks on one configuration.
type Report struct {
	// Machine is the clustered configuration (the unified bar always uses a
	// single cluster with the same total resources and registers).
	Machine *machine.Config
	Rows    []Row
	// MeanIPC is the arithmetic mean across benchmarks per scheme (the
	// paper's "average" summary).
	MeanIPC map[string]float64
	// SchedTime is the total scheduling wall time per scheme, Table 2's
	// relative-cost metric.
	SchedTime map[string]time.Duration
	// Loops is the number of loops scheduled (per scheme).
	Loops int
}

// Config selects one evaluation point.
type Config struct {
	Clusters  int
	TotalRegs int
	NBus      int
	LatBus    int
	// Machine, when non-nil, overrides the four homogeneous-grid fields
	// above with an arbitrary (possibly heterogeneous) configuration. The
	// unified baseline is then derived via machine.UnifiedOf.
	Machine *machine.Config
	// PartitionOpts forwards ablation settings to GP and Fixed.
	PartitionOpts *corePartitionOpts
	// Parallel is the number of worker goroutines scheduling loops.
	// 0 means runtime.GOMAXPROCS(0); 1 reproduces the sequential harness
	// exactly. Aggregates are reduced in a fixed order either way, so the
	// report is identical for every value.
	Parallel int
	// Verify runs schedule.Verify on every produced schedule (the
	// differential oracle); a violation fails the run.
	Verify bool
}

func (c Config) workers() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

type corePartitionOpts = core.Options

// Run evaluates all four schemes on one configuration over the given
// corpus.
func Run(bms []*workload.Benchmark, cfg Config) (*Report, error) {
	return RunContext(context.Background(), bms, cfg)
}

// RunContext is Run with cancellation. Every (benchmark, scheme, loop)
// scheduling job is independent; cfg.Parallel of them run concurrently on a
// worker pool, and the first failure cancels the rest. The per-job results
// are collected into an index-addressed slice and reduced in the fixed
// sequential order, so IPC, fallback counts and CSV output are bit-for-bit
// identical for every worker count, and SchedTime remains the sum of
// per-job scheduling times (Table 2's metric), not pool wall time.
func RunContext(ctx context.Context, bms []*workload.Benchmark, cfg Config) (*Report, error) {
	if len(bms) == 0 {
		return nil, &EmptyCorpusError{}
	}
	for _, bm := range bms {
		if len(bm.Loops) == 0 {
			return nil, &EmptyCorpusError{Benchmark: bm.Name}
		}
	}
	clustered := cfg.Machine
	if clustered == nil {
		var err error
		clustered, err = machine.NewClustered(cfg.Clusters, cfg.TotalRegs, cfg.NBus, cfg.LatBus)
		if err != nil {
			return nil, err
		}
	} else if err := clustered.Validate(); err != nil {
		return nil, err
	}
	unified := machine.UnifiedOf(clustered)

	rep := &Report{
		Machine:   clustered,
		MeanIPC:   map[string]float64{},
		SchedTime: map[string]time.Duration{},
	}

	type scheme struct {
		name string
		m    *machine.Config
		opts *core.Options
	}
	schemes := []scheme{
		{SchemeUnified, unified, optsFor(core.GP, cfg)},
		{SchemeURACAM, clustered, optsFor(core.URACAM, cfg)},
		{SchemeFixed, clustered, optsFor(core.FixedPartition, cfg)},
		{SchemeGP, clustered, optsFor(core.GP, cfg)},
	}

	// Fan out: one job per (benchmark, scheme, loop), laid out in the
	// sequential visiting order.
	jobs := make([]job, 0, countLoops(bms)*len(schemes))
	for _, bm := range bms {
		for _, sc := range schemes {
			for _, loop := range bm.Loops {
				jobs = append(jobs, job{benchmark: bm.Name, scheme: sc.name, g: loop.G, m: sc.m, opts: sc.opts, verify: cfg.Verify})
			}
		}
	}
	results, err := runJobs(ctx, jobs, cfg.workers())
	if err != nil {
		return nil, err
	}

	// Reduce in the same nested order the jobs were laid out, so the
	// floating-point accumulation order matches the sequential harness.
	k := 0
	for _, bm := range bms {
		row := Row{Benchmark: bm.Name, IPC: map[string]float64{}, Fallbacks: map[string]int{}}
		for _, sc := range schemes {
			var ops, cycles float64
			for _, loop := range bm.Loops {
				res := results[k]
				k++
				ops += loop.Weight * float64(loop.G.N()) * float64(loop.G.Niter)
				cycles += loop.Weight * float64(res.Schedule.Cycles(loop.G.Niter))
				rep.SchedTime[sc.name] += res.Elapsed
				if res.ListFallback {
					row.Fallbacks[sc.name]++
				}
			}
			if cycles == 0 {
				return nil, &ZeroCycleError{Benchmark: bm.Name, Scheme: sc.name}
			}
			row.IPC[sc.name] = ops / cycles
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Loops = countLoops(bms)
	for _, sc := range schemes {
		var sum float64
		for _, row := range rep.Rows {
			sum += row.IPC[sc.name]
		}
		rep.MeanIPC[sc.name] = sum / float64(len(rep.Rows))
	}
	return rep, nil
}

func optsFor(alg core.Algorithm, cfg Config) *core.Options {
	o := &core.Options{Algorithm: alg}
	if cfg.PartitionOpts != nil {
		o.Partition = cfg.PartitionOpts.Partition
	}
	return o
}

func countLoops(bms []*workload.Benchmark) int {
	n := 0
	for _, bm := range bms {
		n += len(bm.Loops)
	}
	return n
}

// ReportTo publishes the panel's aggregates as custom benchmark metrics.
func (r *Report) ReportTo(b interface{ ReportMetric(float64, string) }) {
	for _, s := range Schemes {
		b.ReportMetric(r.MeanIPC[s], "IPC-"+s)
	}
	b.ReportMetric(r.Speedup(SchemeURACAM), "%GP-vs-URACAM")
}

// Speedup returns mean(GP)/mean(other) − 1 as a percentage: the paper's
// headline "+23% over URACAM" metric.
func (r *Report) Speedup(over string) float64 {
	base := r.MeanIPC[over]
	if base == 0 {
		return 0
	}
	return (r.MeanIPC[SchemeGP]/base - 1) * 100
}

// TimeRatio returns SchedTime[URACAM] / SchedTime[GP]: Table 2's claim is
// that URACAM is 2–7× slower.
func (r *Report) TimeRatio() float64 {
	gp := r.SchedTime[SchemeGP].Seconds()
	if gp == 0 {
		return 0
	}
	return r.SchedTime[SchemeURACAM].Seconds() / gp
}

// Render prints the report as a fixed-width table in the style of the
// paper's figures (one row per benchmark, one column per scheme).
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Machine.Name)
	fmt.Fprintf(&b, "%-10s", "program")
	for _, s := range Schemes {
		fmt.Fprintf(&b, "%10s", s)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s", row.Benchmark)
		for _, s := range Schemes {
			fmt.Fprintf(&b, "%10.3f", row.IPC[s])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-10s", "MEAN")
	for _, s := range Schemes {
		fmt.Fprintf(&b, "%10.3f", r.MeanIPC[s])
	}
	b.WriteString("\n")
	return b.String()
}

// RenderTable2 prints the scheduling-time comparison of several reports in
// the shape of the paper's Table 2.
func RenderTable2(reports []*Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s%12s%12s%12s%10s\n", "configuration", "URACAM", "Fixed", "GP", "ratio")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-28s%12s%12s%12s%9.1fx\n",
			r.Machine.Name,
			r.SchedTime[SchemeURACAM].Round(time.Millisecond),
			r.SchedTime[SchemeFixed].Round(time.Millisecond),
			r.SchedTime[SchemeGP].Round(time.Millisecond),
			r.TimeRatio())
	}
	return b.String()
}

// RenderTable1 prints the machine configurations (the paper's Table 1).
func RenderTable1(totalRegs, nbus, latbus int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s%10s%10s%10s%8s%8s%8s\n",
		"configuration", "INT/clus", "FP/clus", "MEM/clus", "regs", "buses", "latbus")
	for _, m := range machine.Table1(totalRegs, nbus, latbus) {
		fmt.Fprintf(&b, "%-24s%10d%10d%10d%8d%8d%8d\n",
			m.Name, m.Units[0], m.Units[1], m.Units[2], m.RegsPerCluster, m.NBus, m.LatBus)
	}
	return b.String()
}

// Figure2Configs returns the four panels of Figure 2: 2- and 4-cluster
// machines with 32 and 64 total registers, 1 bus of latency 1.
func Figure2Configs() []Config {
	return []Config{
		{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1},
		{Clusters: 2, TotalRegs: 64, NBus: 1, LatBus: 1},
		{Clusters: 4, TotalRegs: 32, NBus: 1, LatBus: 1},
		{Clusters: 4, TotalRegs: 64, NBus: 1, LatBus: 1},
	}
}

// Figure3Configs returns the two panels of Figure 3: the 4-cluster machine
// with a 2-cycle bus.
func Figure3Configs() []Config {
	return []Config{
		{Clusters: 4, TotalRegs: 32, NBus: 1, LatBus: 2},
		{Clusters: 4, TotalRegs: 64, NBus: 1, LatBus: 2},
	}
}

// SortRowsLike orders report rows to match the canonical benchmark listing.
func SortRowsLike(rep *Report, names []string) {
	pos := map[string]int{}
	for i, n := range names {
		pos[n] = i
	}
	sort.SliceStable(rep.Rows, func(a, b int) bool {
		return pos[rep.Rows[a].Benchmark] < pos[rep.Rows[b].Benchmark]
	})
}
