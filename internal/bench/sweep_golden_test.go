package bench

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/machine"
)

// TestSweepShortGolden pins the -short sweep CSV byte for byte against the
// snapshot captured before the incremental-refinement refactor
// (testdata/sweep_short_golden.csv): the partitioner rewrite must choose
// exactly the same moves, assignments and schedules. CI re-checks the same
// bytes against the gpbench artifact. Regenerate the golden only for an
// intentional behavior change:
//
//	go run ./cmd/gpbench -sweep -short -parallel 4 -csv internal/bench/testdata/sweep_short_golden.csv
func TestSweepShortGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full short-sweep comparison (seconds); CI covers it via the artifact step")
	}
	points, err := Sweep(context.Background(), machine.SweepSet(), SweepCorpora(2),
		Config{Parallel: 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := WriteSweepCSV(&got, points); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/sweep_short_golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("sweep CSV diverged from the pre-refactor golden:\n%s", firstDiff(want, got.Bytes()))
	}
}

// firstDiff renders the first differing line of two CSV bodies.
func firstDiff(want, got []byte) string {
	wl, gl := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g []byte
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if !bytes.Equal(w, g) {
			return fmt.Sprintf("line %d:\n  want %q\n  got  %q", i+1, w, g)
		}
	}
	return "(no line-level diff: length mismatch)"
}
