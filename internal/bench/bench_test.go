package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

// smallCorpus trims the corpus so unit tests stay fast; the full corpus
// runs in bench_test.go at the repository root and in cmd/gpbench.
func smallCorpus() []*workload.Benchmark {
	full := workload.SPECfp95()
	small := make([]*workload.Benchmark, 0, 3)
	for _, b := range full {
		switch b.Name {
		case "tomcatv", "mgrid", "hydro2d":
			trimmed := &workload.Benchmark{Name: b.Name, Loops: b.Loops}
			if len(trimmed.Loops) > 4 {
				trimmed.Loops = trimmed.Loops[:4]
			}
			small = append(small, trimmed)
		}
	}
	return small
}

func TestRunPanelShape(t *testing.T) {
	rep, err := Run(smallCorpus(), Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("got %d rows", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		for _, s := range Schemes {
			ipc := row.IPC[s]
			if ipc <= 0 || ipc > 12 {
				t.Errorf("%s/%s: IPC %v out of range", row.Benchmark, s, ipc)
			}
		}
		// The unified machine is an upper bound for every scheme.
		for _, s := range []string{SchemeURACAM, SchemeFixed, SchemeGP} {
			if row.IPC[s] > row.IPC[SchemeUnified]*1.0001 {
				t.Errorf("%s: %s IPC %v exceeds unified bound %v",
					row.Benchmark, s, row.IPC[s], row.IPC[SchemeUnified])
			}
		}
	}
	for _, s := range Schemes {
		if rep.MeanIPC[s] <= 0 {
			t.Errorf("mean IPC for %s missing", s)
		}
		if rep.SchedTime[s] <= 0 {
			t.Errorf("scheduling time for %s missing", s)
		}
	}
}

func TestGPBeatsOrMatchesFixedOnAverage(t *testing.T) {
	rep, err := Run(smallCorpus(), Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's ordering: GP ≥ Fixed on average (GP only adds freedom).
	if rep.MeanIPC[SchemeGP] < rep.MeanIPC[SchemeFixed]*0.98 {
		t.Errorf("GP mean %.3f below Fixed mean %.3f", rep.MeanIPC[SchemeGP], rep.MeanIPC[SchemeFixed])
	}
}

func TestRenderContainsAllRows(t *testing.T) {
	rep, err := Run(smallCorpus(), Config{Clusters: 2, TotalRegs: 64, NBus: 1, LatBus: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, name := range []string{"tomcatv", "mgrid", "hydro2d", "MEAN", "unified", "URACAM", "Fixed", "GP"} {
		if !strings.Contains(out, name) {
			t.Errorf("render missing %q:\n%s", name, out)
		}
	}
}

func TestRenderTable1(t *testing.T) {
	out := RenderTable1(64, 1, 1)
	for _, want := range []string{"unified", "2-cluster", "4-cluster"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTable2(t *testing.T) {
	rep, err := Run(smallCorpus(), Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable2([]*Report{rep})
	if !strings.Contains(out, "URACAM") || !strings.Contains(out, "x") {
		t.Errorf("Table 2 malformed:\n%s", out)
	}
}

func TestConfigsMatchPaper(t *testing.T) {
	f2 := Figure2Configs()
	if len(f2) != 4 {
		t.Fatalf("Figure 2 has %d panels, want 4", len(f2))
	}
	for _, cfg := range f2 {
		if cfg.LatBus != 1 || cfg.NBus != 1 {
			t.Errorf("Figure 2 config %+v: want 1 bus latency 1", cfg)
		}
	}
	f3 := Figure3Configs()
	if len(f3) != 2 {
		t.Fatalf("Figure 3 has %d panels, want 2", len(f3))
	}
	for _, cfg := range f3 {
		if cfg.LatBus != 2 || cfg.Clusters != 4 {
			t.Errorf("Figure 3 config %+v: want 4 clusters latency 2", cfg)
		}
	}
}

func TestSortRowsLike(t *testing.T) {
	rep := &Report{Rows: []Row{{Benchmark: "b"}, {Benchmark: "a"}}}
	SortRowsLike(rep, []string{"a", "b"})
	if rep.Rows[0].Benchmark != "a" {
		t.Error("sort failed")
	}
}

func TestSpeedupAndRatio(t *testing.T) {
	rep := &Report{MeanIPC: map[string]float64{SchemeGP: 4, SchemeURACAM: 3.2}}
	if got := rep.Speedup(SchemeURACAM); got < 24.9 || got > 25.1 {
		t.Errorf("Speedup = %v, want 25", got)
	}
	if got := rep.Speedup("missing"); got != 0 {
		t.Errorf("Speedup over missing scheme = %v", got)
	}
	empty := &Report{SchedTime: map[string]time.Duration{}}
	if empty.TimeRatio() != 0 {
		t.Error("TimeRatio on empty report should be 0")
	}
}
