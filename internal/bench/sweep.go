package bench

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/workload"
)

// Corpus is a named benchmark family for the sweep harness.
type Corpus struct {
	Name       string
	Benchmarks []*workload.Benchmark
}

// SweepCorpora returns the harness's two workload families: the synthetic
// SPECfp95 stand-in and the integer-heavy DSP/MediaBench-style family.
// maxLoops > 0 trims every benchmark to its first maxLoops loops (the
// -short CI artifact run).
func SweepCorpora(maxLoops int) []Corpus {
	corpora := []Corpus{
		{Name: "SPECfp95", Benchmarks: workload.SPECfp95()},
		{Name: "DSP", Benchmarks: workload.DSP()},
	}
	if maxLoops > 0 {
		for _, c := range corpora {
			for _, bm := range c.Benchmarks {
				if len(bm.Loops) > maxLoops {
					bm.Loops = bm.Loops[:maxLoops]
				}
			}
		}
	}
	return corpora
}

// SweepPoint is the outcome of one machine × corpus cell of a sweep.
type SweepPoint struct {
	Machine *machine.Config
	Corpus  string
	// Report is the full four-scheme panel, nil when the cell was skipped.
	Report *Report
	// SkipReason explains a skipped cell (e.g. the machine has no units of
	// a kind the corpus needs).
	SkipReason string
}

// SweepCell is one machine × corpus cell of a sweep — the unit of work the
// cluster coordinator shards across gpserved workers.
type SweepCell struct {
	Machine *machine.Config
	Corpus  Corpus
}

// SweepCells enumerates the machines × corpora cross-product in the
// deterministic order Sweep and SweepStream evaluate it (machines outer,
// corpora inner). A sharded execution that reassembles per-cell results in
// this order is byte-identical to the single-node sweep.
func SweepCells(machines []*machine.Config, corpora []Corpus) []SweepCell {
	cells := make([]SweepCell, 0, len(machines)*len(corpora))
	for _, m := range machines {
		for _, c := range corpora {
			cells = append(cells, SweepCell{Machine: m, Corpus: c})
		}
	}
	return cells
}

// Sweep runs the cross-product of machines × corpora through the parallel
// runner, one four-scheme panel per cell, in deterministic order (machines
// outer, corpora inner). Cells whose machine cannot execute an operation
// kind the corpus uses are skipped with a reason instead of failing the
// sweep. cfg's grid fields are ignored; Parallel, Verify and PartitionOpts
// apply to every cell.
func Sweep(ctx context.Context, machines []*machine.Config, corpora []Corpus, cfg Config) ([]SweepPoint, error) {
	var points []SweepPoint
	err := SweepStream(ctx, machines, corpora, cfg, func(pt SweepPoint) error {
		points = append(points, pt)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// SweepStream is Sweep with incremental delivery: emit is called with each
// cell's point as soon as its panel completes, in the same deterministic
// order Sweep returns, so long sweeps can be streamed (the gpserved
// /v1/sweep endpoint streams each cell as CSV rows). An emit error aborts
// the sweep.
func SweepStream(ctx context.Context, machines []*machine.Config, corpora []Corpus, cfg Config, emit func(SweepPoint) error) error {
	if len(machines) == 0 {
		return fmt.Errorf("bench: sweep without machines")
	}
	if len(corpora) == 0 {
		return fmt.Errorf("bench: sweep without corpora")
	}
	for _, cell := range SweepCells(machines, corpora) {
		pt, err := RunSweepCell(ctx, cell, cfg)
		if err != nil {
			return err
		}
		if err := emit(pt); err != nil {
			return err
		}
	}
	return nil
}

// RunSweepCell evaluates one cell: the full four-scheme panel on one
// machine × corpus pair, or a skip marker when the machine cannot execute
// an operation kind the corpus needs. Both the single-node SweepStream and
// a gpserved worker executing one sharded cell of a cluster job run cells
// through this function, so a reassembled distributed sweep reproduces the
// single-node bytes exactly.
func RunSweepCell(ctx context.Context, cell SweepCell, cfg Config) (SweepPoint, error) {
	m, corpus := cell.Machine, cell.Corpus
	pt := SweepPoint{Machine: m, Corpus: corpus.Name}
	if err := m.Validate(); err != nil {
		return pt, fmt.Errorf("bench: sweep machine: %w", err)
	}
	if reason := infeasible(m, corpus.Benchmarks); reason != "" {
		pt.SkipReason = reason
		return pt, nil
	}
	cc := cfg
	cc.Machine = m
	cc.Clusters, cc.TotalRegs, cc.NBus, cc.LatBus = 0, 0, 0, 0
	rep, err := RunContext(ctx, corpus.Benchmarks, cc)
	if err != nil {
		return pt, fmt.Errorf("bench: sweep %s × %s: %w", m.Name, corpus.Name, err)
	}
	names := make([]string, 0, len(corpus.Benchmarks))
	for _, bm := range corpus.Benchmarks {
		names = append(names, bm.Name)
	}
	SortRowsLike(rep, names)
	pt.Report = rep
	return pt, nil
}

// infeasible reports why a machine cannot run a corpus: an operation kind
// with no machine-wide functional unit would make the resource MII
// unbounded. An empty string means the cell is runnable.
func infeasible(m *machine.Config, bms []*workload.Benchmark) string {
	var needed [isa.NumUnitKinds]bool
	for _, bm := range bms {
		for _, l := range bm.Loops {
			for _, nd := range l.G.Nodes {
				needed[nd.Op.Unit()] = true
			}
		}
	}
	for k := 0; k < isa.NumUnitKinds; k++ {
		if needed[k] && m.TotalUnits(isa.UnitKind(k)) == 0 {
			return fmt.Sprintf("machine has no %v units", isa.UnitKind(k))
		}
	}
	return ""
}

// WriteSweepCSV emits the sweep as one deterministic CSV: a header, then
// one row per (corpus, machine, benchmark) plus a MEAN row per cell, with
// skipped cells marked. Identical sweeps produce byte-identical output for
// every worker count.
func WriteSweepCSV(w io.Writer, points []SweepPoint) error {
	if err := WriteSweepHeader(w); err != nil {
		return err
	}
	for _, pt := range points {
		if err := WriteSweepPointCSV(w, pt); err != nil {
			return err
		}
	}
	return nil
}

// WriteSweepHeader writes the sweep CSV header row.
func WriteSweepHeader(w io.Writer) error {
	header := append([]string{"corpus", "config", "program"}, Schemes...)
	_, err := fmt.Fprintln(w, strings.Join(header, ","))
	return err
}

// WriteSweepPointCSV writes one cell's CSV rows (benchmarks plus MEAN, or
// the SKIPPED marker). SweepStream emitters use it to stream a sweep.
func WriteSweepPointCSV(w io.Writer, pt SweepPoint) error {
	if pt.Report == nil {
		_, err := fmt.Fprintf(w, "%s,%s,SKIPPED(%s),,,,\n", pt.Corpus, pt.Machine.Name, pt.SkipReason)
		return err
	}
	for _, row := range pt.Report.Rows {
		fields := []string{pt.Corpus, pt.Machine.Name, row.Benchmark}
		for _, s := range Schemes {
			fields = append(fields, fmt.Sprintf("%.4f", row.IPC[s]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	fields := []string{pt.Corpus, pt.Machine.Name, "MEAN"}
	for _, s := range Schemes {
		fields = append(fields, fmt.Sprintf("%.4f", pt.Report.MeanIPC[s]))
	}
	_, err := fmt.Fprintln(w, strings.Join(fields, ","))
	return err
}
