package bench

import "fmt"

// EmptyCorpusError reports a corpus that cannot produce a figure panel:
// either no benchmarks at all, or a benchmark with no loops. Run returns it
// instead of emitting NaN IPC rows (0/0 from an empty weighted sum).
type EmptyCorpusError struct {
	// Benchmark names the loopless benchmark, or is empty when the corpus
	// itself is empty.
	Benchmark string
}

func (e *EmptyCorpusError) Error() string {
	if e.Benchmark != "" {
		return fmt.Sprintf("bench: benchmark %q has no loops", e.Benchmark)
	}
	return "bench: empty corpus"
}

// ZeroCycleError reports a benchmark whose loops sum to zero weighted
// cycles under some scheme (every loop weight is zero), which would make
// the weighted IPC 0/0.
type ZeroCycleError struct {
	Benchmark string
	Scheme    string
}

func (e *ZeroCycleError) Error() string {
	return fmt.Sprintf("bench: benchmark %q has zero weighted cycles under %s", e.Benchmark, e.Scheme)
}
