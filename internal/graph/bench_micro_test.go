package graph

import (
	"math/rand"
	"testing"
)

func BenchmarkExactMatching14(b *testing.B) {
	r := rand.New(rand.NewSource(71))
	g := randomGraph(r, 14, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exactMatching(g)
	}
}

func BenchmarkGreedyMatching200(b *testing.B) {
	r := rand.New(rand.NewSource(72))
	g := randomGraph(r, 200, 1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyMatching(g)
	}
}

func BenchmarkMaxWeightMatching200(b *testing.B) {
	r := rand.New(rand.NewSource(73))
	g := randomGraph(r, 200, 1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeightMatching(g)
	}
}
