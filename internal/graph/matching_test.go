package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// validMatching checks structural invariants: matched edges are vertex
// disjoint, Mate is symmetric and consistent with EdgeIdx, Weight is the
// sum of matched edge weights.
func validMatching(t *testing.T, g *Graph, m *Matching) {
	t.Helper()
	if len(m.Mate) != g.N {
		t.Fatalf("Mate length %d, want %d", len(m.Mate), g.N)
	}
	for v, u := range m.Mate {
		if u == -1 {
			continue
		}
		if u < 0 || u >= g.N {
			t.Fatalf("Mate[%d] = %d out of range", v, u)
		}
		if m.Mate[u] != v {
			t.Fatalf("Mate not symmetric: Mate[%d]=%d, Mate[%d]=%d", v, u, u, m.Mate[u])
		}
	}
	seen := make(map[int]bool)
	var w int64
	for _, ei := range m.EdgeIdx {
		e := g.Edges[ei]
		if seen[e.U] || seen[e.V] {
			t.Fatalf("edge %d (%d-%d) shares a vertex with another matched edge", ei, e.U, e.V)
		}
		seen[e.U], seen[e.V] = true, true
		if m.Mate[e.U] != e.V || m.Mate[e.V] != e.U {
			t.Fatalf("EdgeIdx and Mate disagree on edge %d", ei)
		}
		w += e.W
	}
	if w != m.Weight {
		t.Fatalf("Weight = %d, sum of matched edges = %d", m.Weight, w)
	}
}

func TestExactTriangle(t *testing.T) {
	// Triangle with weights 5, 4, 3: best matching is the single edge 5.
	g := &Graph{N: 3, Edges: []Edge{{0, 1, 5}, {1, 2, 4}, {0, 2, 3}}}
	m := MaxWeightMatching(g)
	validMatching(t, g, m)
	if m.Weight != 5 {
		t.Errorf("Weight = %d, want 5", m.Weight)
	}
}

func TestExactBeatsGreedy(t *testing.T) {
	// Path a-b-c-d with weights 3, 4, 3: greedy picks the middle edge
	// (weight 4); optimum picks the two outer edges (weight 6).
	g := &Graph{N: 4, Edges: []Edge{{0, 1, 3}, {1, 2, 4}, {2, 3, 3}}}
	greedy := GreedyMatching(g)
	if greedy.Weight != 4 {
		t.Fatalf("greedy Weight = %d, want 4", greedy.Weight)
	}
	m := MaxWeightMatching(g)
	validMatching(t, g, m)
	if m.Weight != 6 {
		t.Errorf("exact Weight = %d, want 6", m.Weight)
	}
}

func TestPerfectMatchingCycle(t *testing.T) {
	// Even cycle with uniform weights: perfect matching of n/2 edges.
	n := 8
	g := &Graph{N: n}
	for i := 0; i < n; i++ {
		g.Edges = append(g.Edges, Edge{i, (i + 1) % n, 10})
	}
	m := MaxWeightMatching(g)
	validMatching(t, g, m)
	if m.Weight != int64(n/2*10) {
		t.Errorf("Weight = %d, want %d", m.Weight, n/2*10)
	}
}

func TestParallelEdgesPickHeaviest(t *testing.T) {
	g := &Graph{N: 2, Edges: []Edge{{0, 1, 3}, {0, 1, 9}, {0, 1, 1}}}
	m := MaxWeightMatching(g)
	validMatching(t, g, m)
	if m.Weight != 9 {
		t.Errorf("Weight = %d, want 9 (heaviest parallel edge)", m.Weight)
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	g := &Graph{N: 2, Edges: []Edge{{0, 0, 100}, {0, 1, 1}}}
	m := MaxWeightMatching(g)
	validMatching(t, g, m)
	if m.Weight != 1 {
		t.Errorf("Weight = %d, want 1 (self loop must be ignored)", m.Weight)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	for _, n := range []int{0, 1} {
		g := &Graph{N: n}
		m := MaxWeightMatching(g)
		validMatching(t, g, m)
		if m.Weight != 0 || len(m.EdgeIdx) != 0 {
			t.Errorf("n=%d: Weight=%d edges=%d, want empty", n, m.Weight, len(m.EdgeIdx))
		}
	}
}

func randomGraph(r *rand.Rand, n, maxEdges int) *Graph {
	g := &Graph{N: n}
	e := r.Intn(maxEdges + 1)
	for i := 0; i < e; i++ {
		g.Edges = append(g.Edges, Edge{r.Intn(n), r.Intn(n), int64(r.Intn(50) + 1)})
	}
	return g
}

// TestGreedyHalfApproximation checks the classical guarantee
// greedy ≥ ½·optimal on random small graphs, comparing against the exact
// subset-DP matching.
func TestGreedyHalfApproximation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(10) + 2
		g := randomGraph(r, n, 25)
		exact := exactMatching(g)
		greedy := GreedyMatching(g)
		validMatching(t, g, exact)
		validMatching(t, g, greedy)
		if 2*greedy.Weight < exact.Weight {
			t.Fatalf("trial %d: greedy %d < ½·exact %d on %+v", trial, greedy.Weight, exact.Weight, g)
		}
		if greedy.Weight > exact.Weight {
			t.Fatalf("trial %d: greedy %d exceeds exact %d", trial, greedy.Weight, exact.Weight)
		}
	}
}

// TestImprovementNeverHurts checks that local improvement only increases
// weight and preserves matching validity.
func TestImprovementNeverHurts(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(30) + 2
		g := randomGraph(r, n, 80)
		greedy := GreedyMatching(g)
		gw := greedy.Weight
		improveMatching(g, greedy)
		validMatching(t, g, greedy)
		if greedy.Weight < gw {
			t.Fatalf("trial %d: improvement reduced weight %d → %d", trial, gw, greedy.Weight)
		}
	}
}

// TestExactMatchesBruteForce cross-checks the subset DP against a direct
// recursive enumeration on tiny graphs.
func TestExactMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var brute func(g *Graph, used int) int64
	brute = func(g *Graph, used int) int64 {
		var best int64
		for _, e := range g.Edges {
			if e.U == e.V || used&(1<<e.U) != 0 || used&(1<<e.V) != 0 {
				continue
			}
			if w := e.W + brute(g, used|1<<e.U|1<<e.V); w > best {
				best = w
			}
		}
		return best
	}
	for trial := 0; trial < 150; trial++ {
		n := r.Intn(7) + 1
		g := randomGraph(r, n, 14)
		exact := exactMatching(g)
		if want := brute(g, 0); exact.Weight != want {
			t.Fatalf("trial %d: exact %d, brute force %d", trial, exact.Weight, want)
		}
	}
}

// TestMatchingDisjointProperty is a quick-check property: no vertex appears
// in two matched edges for arbitrary random graphs (including above the
// exact threshold).
func TestMatchingDisjointProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, eRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		g := randomGraph(r, n, int(eRaw))
		m := MaxWeightMatching(g)
		used := make(map[int]bool)
		for _, ei := range m.EdgeIdx {
			e := g.Edges[ei]
			if used[e.U] || used[e.V] {
				return false
			}
			used[e.U], used[e.V] = true, true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeGraphUsesGreedyPath(t *testing.T) {
	// A graph above ExactLimit must still produce a valid matching quickly.
	r := rand.New(rand.NewSource(4))
	g := randomGraph(r, 200, 1000)
	m := MaxWeightMatching(g)
	validMatching(t, g, m)
	if len(m.EdgeIdx) == 0 {
		t.Error("large random graph produced empty matching")
	}
}

func TestMaximality(t *testing.T) {
	// The returned matching must be maximal: no remaining edge has both
	// endpoints free (otherwise coarsening stalls).
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(50) + 2
		g := randomGraph(r, n, 150)
		m := MaxWeightMatching(g)
		for _, e := range g.Edges {
			if e.U != e.V && e.W > 0 && m.Mate[e.U] == -1 && m.Mate[e.V] == -1 {
				t.Fatalf("trial %d: matching not maximal, edge %d-%d free", trial, e.U, e.V)
			}
		}
	}
}
