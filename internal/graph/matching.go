// Package graph provides the weighted undirected graphs and maximum-weight
// matching used by the multilevel coarsening phase of the partitioner.
//
// The paper computes a maximum-weight matching at every coarsening step
// using the implementation in the LEDA library (paper §2.1.2, footnote).
// LEDA's exact general-graph matching is not available here, so this package
// substitutes:
//
//   - an exact maximum-weight matching via dynamic programming over vertex
//     subsets for graphs with at most ExactLimit vertices (which covers the
//     small coarse graphs near the end of coarsening, where the matching
//     choice matters most), and
//   - greedy heavy-edge matching followed by 2-exchange local improvement
//     for larger graphs (the standard multilevel-partitioning practice,
//     e.g. METIS; greedy alone is a ½-approximation, which the tests check
//     against the exact algorithm on random small graphs).
//
// The substitution is recorded in DESIGN.md §4.
package graph

import "sort"

// Edge is an undirected edge with a non-negative weight. Parallel edges are
// allowed (the partitioner merges them before matching); self loops are
// ignored by the matching algorithms.
type Edge struct {
	U, V int
	W    int64
}

// Graph is a simple edge-list representation of an undirected weighted
// graph over vertices 0..N-1.
type Graph struct {
	N     int
	Edges []Edge
}

// ExactLimit is the largest vertex count for which MaxWeightMatching uses
// the exact subset-DP algorithm (2^N·N time, 2^N space). 14 keeps the DP
// in the tens of microseconds; above it, greedy matching with 2-exchange
// improvement is both fast and within a few percent of optimal.
const ExactLimit = 14

// Matching is a set of vertex-disjoint edges, given by indices into the
// graph's edge list.
type Matching struct {
	// EdgeIdx are indices into Graph.Edges.
	EdgeIdx []int
	// Weight is the total weight of the matched edges.
	Weight int64
	// Mate maps each vertex to its partner, or -1 if unmatched.
	Mate []int
}

// MaxWeightMatching returns a maximum-weight matching of g: exact for
// graphs with at most ExactLimit vertices, greedy heavy-edge matching with
// 2-exchange improvement above that.
func MaxWeightMatching(g *Graph) *Matching {
	if g.N <= ExactLimit {
		return exactMatching(g)
	}
	m := GreedyMatching(g)
	improveMatching(g, m)
	return m
}

// GreedyMatching returns the heavy-edge greedy matching: edges are scanned
// in order of decreasing weight (ties by lower edge index, for determinism)
// and added when both endpoints are free. This is a ½-approximation of the
// maximum-weight matching.
func GreedyMatching(g *Graph) *Matching {
	order := make([]int, len(g.Edges))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ea, eb := g.Edges[order[a]], g.Edges[order[b]]
		if ea.W != eb.W {
			return ea.W > eb.W
		}
		return order[a] < order[b]
	})
	mate := newMate(g.N)
	m := &Matching{Mate: mate}
	for _, ei := range order {
		e := g.Edges[ei]
		if e.U == e.V || e.W < 0 {
			continue
		}
		if mate[e.U] == -1 && mate[e.V] == -1 {
			mate[e.U], mate[e.V] = e.V, e.U
			m.EdgeIdx = append(m.EdgeIdx, ei)
			m.Weight += e.W
		}
	}
	return m
}

// improveMatching applies 2-exchange local search: for every pair of
// matched edges (a,b),(c,d) it considers rematching as (a,c),(b,d) or
// (a,d),(b,c) when those edges exist and are heavier; and for every matched
// edge it considers replacing it with a heavier incident edge whose other
// endpoint is free. Repeats until no improvement (bounded by total weight,
// which strictly increases).
func improveMatching(g *Graph, m *Matching) {
	// Index edges by endpoint pair for O(1) lookup (heaviest parallel edge).
	best := make(map[[2]int]int, len(g.Edges))
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for i, e := range g.Edges {
		if e.U == e.V {
			continue
		}
		k := key(e.U, e.V)
		if j, ok := best[k]; !ok || g.Edges[j].W < e.W {
			best[k] = i
		}
	}
	weightOf := func(u, v int) (int64, int, bool) {
		j, ok := best[key(u, v)]
		if !ok {
			return 0, -1, false
		}
		return g.Edges[j].W, j, true
	}
	for pass := 0; pass < 8; pass++ {
		improved := false
		// Single-edge upgrades: matched edge (u,v) vs incident (u,x) with x free.
		for _, e := range g.Edges {
			if e.U == e.V {
				continue
			}
			u, v := e.U, e.V
			if m.Mate[u] == -1 && m.Mate[v] == -1 {
				// Both free: greedy missed only if weight positive; take it.
				if e.W > 0 {
					matchPair(m, g, u, v)
					improved = true
				}
				continue
			}
			if m.Mate[u] != -1 && m.Mate[v] != -1 {
				continue
			}
			// Exactly one endpoint matched; try replacing its current edge.
			if m.Mate[v] != -1 {
				u, v = v, u // u matched, v free
			}
			w := m.Mate[u]
			cur, _, _ := weightOf(u, w)
			if e.W > cur {
				unmatchPair(m, u, w)
				matchPair(m, g, u, v)
				improved = true
			}
		}
		// Pair exchanges.
		matched := append([]int(nil), m.EdgeIdx...)
		for i := 0; i < len(matched); i++ {
			for j := i + 1; j < len(matched); j++ {
				e1, e2 := g.Edges[matched[i]], g.Edges[matched[j]]
				a, b, c, d := e1.U, e1.V, e2.U, e2.V
				if m.Mate[a] != b || m.Mate[c] != d {
					continue // already rewired this pass
				}
				base := e1.W + e2.W
				if w1, _, ok1 := weightOf(a, c); ok1 {
					if w2, _, ok2 := weightOf(b, d); ok2 && w1+w2 > base {
						unmatchPair(m, a, b)
						unmatchPair(m, c, d)
						matchPair(m, g, a, c)
						matchPair(m, g, b, d)
						improved = true
						continue
					}
				}
				if w1, _, ok1 := weightOf(a, d); ok1 {
					if w2, _, ok2 := weightOf(b, c); ok2 && w1+w2 > base {
						unmatchPair(m, a, b)
						unmatchPair(m, c, d)
						matchPair(m, g, a, d)
						matchPair(m, g, b, c)
						improved = true
					}
				}
			}
		}
		if !improved {
			break
		}
	}
	rebuild(g, m)
}

// matchPair records u–v as matched using the heaviest parallel edge.
func matchPair(m *Matching, g *Graph, u, v int) {
	m.Mate[u], m.Mate[v] = v, u
}

func unmatchPair(m *Matching, u, v int) {
	m.Mate[u], m.Mate[v] = -1, -1
}

// rebuild recomputes EdgeIdx and Weight from Mate, picking the heaviest
// parallel edge for each matched pair.
func rebuild(g *Graph, m *Matching) {
	m.EdgeIdx = m.EdgeIdx[:0]
	m.Weight = 0
	bestIdx := make(map[[2]int]int)
	for i, e := range g.Edges {
		if e.U == e.V {
			continue
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		k := [2]int{u, v}
		if j, ok := bestIdx[k]; !ok || g.Edges[j].W < e.W {
			bestIdx[k] = i
		}
	}
	for u := 0; u < g.N; u++ {
		v := m.Mate[u]
		if v > u {
			if j, ok := bestIdx[[2]int{u, v}]; ok {
				m.EdgeIdx = append(m.EdgeIdx, j)
				m.Weight += g.Edges[j].W
			}
		}
	}
}

// exactMatching computes a maximum-weight matching by dynamic programming
// over subsets of vertices. For each subset S, dp[S] is the best matching
// weight using only vertices in S. Transition: let v be the lowest set bit;
// either leave v unmatched, or match v with any other u in S via the
// heaviest parallel edge.
func exactMatching(g *Graph) *Matching {
	n := g.N
	// Heaviest parallel edge between each pair.
	type pe struct {
		w   int64
		idx int
	}
	pair := make([][]pe, n)
	for i := range pair {
		pair[i] = make([]pe, n)
		for j := range pair[i] {
			pair[i][j] = pe{0, -1}
		}
	}
	for i, e := range g.Edges {
		if e.U == e.V || e.W <= 0 {
			continue
		}
		if e.W > pair[e.U][e.V].w {
			pair[e.U][e.V] = pe{e.W, i}
			pair[e.V][e.U] = pe{e.W, i}
		}
	}
	size := 1 << n
	dp := make([]int64, size)
	choice := make([]int32, size) // matched partner of lowest bit, or -1
	for s := 1; s < size; s++ {
		v := lowestBit(s)
		rest := s &^ (1 << v)
		bestW := dp[rest] // leave v unmatched
		bestU := int32(-1)
		for u := v + 1; u < n; u++ {
			if rest&(1<<u) == 0 {
				continue
			}
			if p := pair[v][u]; p.idx >= 0 {
				if w := dp[rest&^(1<<u)] + p.w; w > bestW {
					bestW, bestU = w, int32(u)
				}
			}
		}
		dp[s] = bestW
		choice[s] = bestU
	}
	m := &Matching{Mate: newMate(n), Weight: dp[size-1]}
	for s := size - 1; s > 0; {
		v := lowestBit(s)
		u := choice[s]
		if u < 0 {
			s &^= 1 << v
			continue
		}
		m.Mate[v], m.Mate[u] = int(u), v
		m.EdgeIdx = append(m.EdgeIdx, pair[v][u].idx)
		s &^= (1 << v) | (1 << int(u))
	}
	return m
}

func lowestBit(s int) int {
	b := 0
	for s&1 == 0 {
		s >>= 1
		b++
	}
	return b
}

func newMate(n int) []int {
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	return mate
}
