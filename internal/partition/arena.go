// Request-scoped scratch arena for the partitioner.
//
// PR 3 made the refinement inner loop allocation-free by giving the
// Partitioner a persistent evaluation scratch, but every Partition call
// still paid the cold-path allocations: the coarsening levels (group
// membership lists, collapsed edge sets), the engine's delta-maintained
// state, the edge weights and the CSR group adjacency were rebuilt with
// fresh heap memory per request. The Arena extends the scratch discipline
// to all of it: one Arena owns every buffer a full Partition run needs, and
// reusing the Arena across runs (the serving path acquires one per request
// from a sync.Pool) turns the cold path into a handful of unavoidable
// allocations (the Result and its Assign slice).
//
// Ownership contract (docs/ARCHITECTURE.md "Request arenas"):
//
//   - An Arena serves at most one Partitioner at a time. Two live
//     Partitioners sharing an Arena corrupt each other's state; portfolio
//     search therefore acquires one Arena per seed.
//   - The Arena may retain buffer capacity between runs, never content: a
//     Partition run fully reinitializes every buffer it reads, so results
//     are a pure function of (graph, machine, options) no matter what the
//     previous run left behind. The determinism suite pins this by
//     comparing fresh-arena and reused-arena outputs.
//   - Release returns the Arena to the package pool. The caller must not
//     touch the Arena, or any Partitioner bound to it, afterwards. Results
//     (Result, Assign) are independently allocated and stay valid.
package partition

import (
	"sync"

	"repro/internal/ddg"
	"repro/internal/graph"
)

// Arena holds every reusable buffer of one partitioning run: the evaluation
// scratch, the incremental engine, the coarsening level hierarchy and the
// coarsening/refinement work lists. The zero value is ready to use.
type Arena struct {
	sc      scratch
	en      engine
	extra   []int   // per-edge latency additions (cut edges get LatBus)
	weights []int64 // per-edge coarsening weights

	levels []*level // level hierarchy, reused finest-first per run

	// Coarsening scratch: collapseEdges accumulator and key order, fuse's
	// remap table and matched-edge order.
	owner []int
	sum   map[[2]int]int64
	keys  [][2]int
	remap []int
	idx   []int

	// minimizeCut's CSR group adjacency.
	nbrHead []int
	nbrList []int
	nbrFill []int
}

// NewArena returns an empty arena. Most callers should prefer
// AcquireArena/Release, which reuse arenas through a package pool.
func NewArena() *Arena { return &Arena{} }

var arenaPool = sync.Pool{New: func() any { return &Arena{} }}

// AcquireArena returns an arena from the package pool, ready for
// NewWithArena. Pair with Release.
func AcquireArena() *Arena { return arenaPool.Get().(*Arena) }

// Release returns the arena to the package pool. The caller must not use
// the arena, or any Partitioner bound to it, after Release.
func (a *Arena) Release() { arenaPool.Put(a) }

// freshLevel returns the arena-owned level object for hierarchy index i,
// reset for reuse (groups emptied, slab rewound, cached group counts
// invalidated). Buffer capacity is retained.
func (p *Partitioner) freshLevel(i int) *level {
	ar := p.ar
	for len(ar.levels) <= i {
		ar.levels = append(ar.levels, &level{})
	}
	lv := ar.levels[i]
	lv.groups = lv.groups[:0]
	lv.used = 0
	lv.gcsOK = false
	lv.slab = resizeInts(lv.slab, p.g.N())
	return lv
}

// addGroup appends one macro-node holding the concatenation of the given
// member lists, copied into the level's slab (every level's groups
// partition the original node set, so the slab never exceeds g.N()).
func (lv *level) addGroup(parts ...[]int) {
	start := lv.used
	for _, part := range parts {
		lv.used += copy(lv.slab[lv.used:], part)
	}
	lv.groups = append(lv.groups, lv.slab[start:lv.used:lv.used])
}

// collapseEdgesInto rebuilds lv.edges as the inter-group data edges with
// summed weights (parallel edges combine, intra-group edges disappear —
// §2.1.2), using only arena storage.
func (p *Partitioner) collapseEdgesInto(lv *level) {
	ar := p.ar
	owner := resizeInts(ar.owner, p.g.N())
	ar.owner = owner
	for gi, members := range lv.groups {
		for _, v := range members {
			owner[v] = gi
		}
	}
	if ar.sum == nil {
		ar.sum = make(map[[2]int]int64, len(p.g.Edges))
	} else {
		clear(ar.sum)
	}
	sum := ar.sum
	for i, e := range p.g.Edges {
		if e.Kind != ddg.Data {
			continue
		}
		a, b := owner[e.From], owner[e.To]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		sum[[2]int{a, b}] += p.weights[i]
	}
	// Deterministic order: scan pairs in sorted order.
	keys := ar.keys[:0]
	for k := range sum {
		keys = append(keys, k)
	}
	ar.keys = keys
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && lessPair(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	lv.edges = lv.edges[:0]
	for _, k := range keys {
		lv.edges = append(lv.edges, graph.Edge{U: k[0], V: k[1], W: sum[k]})
	}
}
