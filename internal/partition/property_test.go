package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ddg"
	"repro/internal/machine"
)

// Property suite over random loop bodies: every partition the package
// produces must satisfy the structural invariants regardless of machine
// shape or options.

func machines() []*machine.Config {
	return []*machine.Config{
		machine.MustClustered(2, 32, 1, 1),
		machine.MustClustered(2, 64, 1, 2),
		machine.MustClustered(4, 32, 1, 1),
		machine.MustClustered(4, 64, 2, 2),
	}
}

func TestPropPartitionInvariants(t *testing.T) {
	f := func(seed int64, mIdx uint8, optBits uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 4+r.Intn(30))
		if g.Validate() != nil {
			return false
		}
		m := machines()[int(mIdx)%4]
		opts := &Options{
			Weights:            WeightScheme(optBits & 1),
			SkipRefinement:     optBits&2 != 0,
			GreedyMatchingOnly: optBits&4 != 0,
			RegisterAware:      optBits&8 != 0,
		}
		res := New(g, m, opts).Partition(g.MII(m))
		if len(res.Assign) != g.N() {
			return false
		}
		for _, c := range res.Assign {
			if c < 0 || c >= m.Clusters {
				return false
			}
		}
		// IIBus/NComm must be consistent with the assignment.
		iiBus, nComm := IIBusFor(g, m, res.Assign)
		if iiBus != res.IIBus || nComm != res.NComm {
			return false
		}
		// The estimate can never beat the recurrence bound or the bus bound.
		if res.EstII < g.RecMII(nil) || res.EstII < res.IIBus {
			return false
		}
		return res.EstTime >= int64(g.Niter-1)*int64(res.EstII)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: NComm counts each producer at most once (broadcast bus), so it
// can never exceed the number of value-producing nodes with cross edges.
func TestPropNCommBounded(t *testing.T) {
	f := func(seed int64, mIdx uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 4+r.Intn(25))
		m := machines()[int(mIdx)%4]
		res := New(g, m, nil).Partition(g.MII(m))
		producers := 0
		for _, n := range g.Nodes {
			if n.Op.ProducesValue() {
				producers++
			}
		}
		cut := 0
		for _, e := range g.Edges {
			if e.Kind == ddg.Data && res.Assign[e.From] != res.Assign[e.To] {
				cut++
			}
		}
		return res.NComm <= producers && res.NComm <= cut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: refinement never makes the estimator's verdict worse than the
// unrefined partition of the same graph.
func TestPropRefinementMonotone(t *testing.T) {
	f := func(seed int64, mIdx uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 6+r.Intn(24))
		m := machines()[int(mIdx)%4]
		ii := g.MII(m)
		refined := New(g, m, nil).Partition(ii)
		raw := New(g, m, &Options{SkipRefinement: true}).Partition(ii)
		return refined.EstTime <= raw.EstTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
