// Package partition implements the paper's multilevel graph-partitioning
// cluster assignment (§3.2): the first half of the GP scheme.
//
// The data dependence graph is coarsened by repeated maximum-weight
// matching, where the weight of an edge estimates the execution-time damage
// of cutting it:
//
//	weight(e) = delay(e)·(maxslack+1) + maxslack − slack(e) + 1
//
// with delay(e) the increase of the estimated software-pipelined execution
// time T = (niter−1)·II + max_path when a bus latency is added to e, and
// slack(e) the number of cycles e can be delayed without growing T. Any
// difference in delay therefore outweighs the largest difference in slack,
// and no edge has zero weight (paper §3.2.1).
//
// Coarsening stops when as many macro-nodes remain as there are clusters;
// each macro-node seeds one cluster. The partition is then refined from the
// coarsest level back to the original graph with two heuristics (§3.2.2):
// workload balancing (no per-cluster resource may exceed 100% utilization)
// and cut-impact minimization (single moves and pair interchanges, selected
// by execution-time benefit, with slack-of-cut and cut-size tie-breakers).
//
// The execution-time estimator assumes unlimited registers and an ideal
// single-cycle memory but models the inter-cluster bus and per-cluster
// functional units realistically, exactly as the paper prescribes.
package partition

import (
	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/machine"
)

// WeightScheme selects how coarsening edge weights are computed. The paper
// scheme is the default; Uniform is an ablation (DESIGN.md A1).
type WeightScheme int8

const (
	// PaperWeights uses delay/slack execution-time-aware weights (§3.2.1).
	PaperWeights WeightScheme = iota
	// UniformWeights gives every data edge weight 1 (cut-size-only
	// partitioning, as in conventional graph partitioning).
	UniformWeights
)

// Options tunes the partitioner. The zero value reproduces the paper.
type Options struct {
	// Weights selects the coarsening edge-weight scheme.
	Weights WeightScheme
	// SkipRefinement disables the uncoarsening refinement passes
	// (ablation A2: the induced initial partition is returned as is,
	// after a single balancing pass to keep it feasible).
	SkipRefinement bool
	// GreedyMatchingOnly forces greedy heavy-edge matching even on small
	// coarse graphs where the exact algorithm would be used (ablation A4).
	GreedyMatchingOnly bool
	// MaxMoves caps the number of applied refinement transformations per
	// level as a safety valve; 0 means the default (4·nodes).
	MaxMoves int
	// RegisterAware makes the refinement estimator model register
	// pressure: per-cluster lifetimes are estimated from the ASAP times
	// and clusters whose estimated MaxLive exceeds the register file pay
	// the spill cost (two memory operations per overflowing value per
	// iteration), which can raise the cluster's resource MII. The paper
	// identifies exactly this blind spot — "the partitioning phase
	// ignores register pressure, and then it tends to schedule operations
	// in the fewest number of clusters" (§4.2) — and names
	// pressure-aware partitioning as future work; this option implements
	// it (ablation A6).
	RegisterAware bool
	// BalanceBestFit makes the workload-balancing pass scan every feasible
	// destination cluster and move the macro-node to the one least loaded
	// on the overloaded resource. The default (false) is first-fit by
	// construction — the first feasible cluster in index order is taken —
	// which preserves the golden paper outputs; see TestBalanceFirstFit.
	BalanceBestFit bool
	// Seed selects a deterministic variant of the coarsest-level initial
	// placement for portfolio search: 0 is the canonical paper start
	// (heaviest macro-node first); any other value deterministically
	// shuffles the macro-node order before the round-robin cluster seeding,
	// giving refinement a different, reproducible starting point. Output
	// remains a pure function of (graph, machine, options).
	Seed int
}

// Result is a computed cluster assignment.
type Result struct {
	// Assign maps each node ID of the partitioned graph to a cluster.
	Assign []int
	// IIBus is the initiation-interval lower bound imposed by the
	// inter-cluster bus: ceil(NComm·LatBus / NBus) (paper §3.1).
	IIBus int
	// NComm is the number of values communicated across clusters.
	NComm int
	// EstTime and EstII are the estimator's execution time and the II it
	// was achieved at, for the returned assignment.
	EstTime int64
	EstII   int
	// Levels is the number of coarsening levels built (≥ 1).
	Levels int
	// Moves is the total number of refinement transformations applied.
	Moves int
	// Candidate-screening stage tallies for the refinement inner loop:
	// ScreenLowerBound counts candidates rejected by the closed-form lower
	// bound, ScreenExact those rejected by the exact-t forward analysis,
	// and ScreenFull those that survived to the full evaluation (ALAP
	// slack pass). Their sum is the number of candidates considered.
	ScreenLowerBound, ScreenExact, ScreenFull int64
}

// Partitioner computes cluster assignments for one loop on one machine.
type Partitioner struct {
	g    *ddg.Graph
	m    *machine.Config
	opts Options

	// ar owns every reusable buffer of a Partition run; weights, extra and
	// sc alias into it. See arena.go for the ownership contract.
	ar      *Arena
	weights []int64 // per original edge; 0 for non-data edges
	extra   []int   // scratch per-edge latency additions

	// maxOpLat is the largest single-operation latency of the loop body on
	// m: a lower bound on any schedule length, used by the refinement
	// candidate screen.
	maxOpLat int
	sc       *scratch // persistent evaluation arena, reused across calls

	// debugFullEval forces full re-evaluation (no incremental state, no
	// screening) for every refinement candidate. Test hook: the engine
	// equivalence suite pins that both paths choose the same moves.
	debugFullEval bool

	// Per-run screening tallies, reset by Partition and copied into its
	// Result. Mutated only by the (single-goroutine) refinement loop.
	screenLB, screenExact, screenFull int64
}

// New returns a partitioner for graph g on machine m with a private arena.
// opts may be nil for the paper-faithful defaults.
func New(g *ddg.Graph, m *machine.Config, opts *Options) *Partitioner {
	return NewWithArena(g, m, opts, nil)
}

// NewWithArena returns a partitioner whose scratch lives in ar, so repeated
// runs (across requests, or across II escalations of one request) reuse the
// same buffers. A nil ar gets a private arena. The arena must not serve two
// live Partitioners at once.
func NewWithArena(g *ddg.Graph, m *machine.Config, opts *Options, ar *Arena) *Partitioner {
	if ar == nil {
		ar = NewArena()
	}
	p := &Partitioner{g: g, m: m, ar: ar, sc: &ar.sc}
	if opts != nil {
		p.opts = *opts
	}
	ar.extra = resizeInts(ar.extra, len(g.Edges))
	p.extra = ar.extra
	for _, n := range g.Nodes {
		if lat := m.OpLatency(n.Op); lat > p.maxOpLat {
			p.maxOpLat = lat
		}
	}
	return p
}

// Partition computes a cluster assignment for initiation interval ii (the
// MII on the first call; a raised II on recomputation, per §3.1).
func (p *Partitioner) Partition(ii int) *Result {
	n := p.g.N()
	p.screenLB, p.screenExact, p.screenFull = 0, 0, 0
	res := &Result{Assign: make([]int, n), Levels: 1}
	if p.m.Clusters <= 1 || n == 0 {
		est := p.evaluate(res.Assign, ii)
		res.IIBus, res.NComm, res.EstTime, res.EstII = est.iiBus, est.nComm, est.t, est.ii
		return res
	}

	p.computeWeights(ii)
	levels := p.coarsen()
	res.Levels = len(levels)

	// Initial partition: one coarsest macro-node per cluster (deterministic:
	// heaviest macro-node — most operations — first).
	coarsest := levels[len(levels)-1]
	order := resizeInts(p.ar.idx, len(coarsest.groups))
	p.ar.idx = order
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if len(coarsest.groups[a]) < len(coarsest.groups[b]) ||
				(len(coarsest.groups[a]) == len(coarsest.groups[b]) && a > b) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	if p.opts.Seed != 0 {
		shuffleSeeded(order, p.opts.Seed)
	}
	for rank, gi := range order {
		for _, v := range coarsest.groups[gi] {
			res.Assign[v] = rank % p.m.Clusters
		}
	}

	// Refinement from coarsest to finest (paper §3.2.2). Even with
	// refinement disabled, one balancing pass keeps the partition feasible.
	// One incremental engine carries the cut/count/transfer state across
	// all levels; its moves mutate res.Assign in place.
	en := newEngine(p, res.Assign)
	for li := len(levels) - 1; li >= 0; li-- {
		lv := levels[li]
		res.Moves += p.balance(lv, en, ii)
		if !p.opts.SkipRefinement {
			res.Moves += p.minimizeCut(lv, en, ii)
		}
	}

	final := p.evaluate(res.Assign, ii)
	res.IIBus, res.NComm = final.iiBus, final.nComm
	res.EstTime, res.EstII = final.t, final.ii
	res.ScreenLowerBound, res.ScreenExact, res.ScreenFull = p.screenLB, p.screenExact, p.screenFull
	return res
}

// EvaluateForBenchmark runs the internal partition-quality estimator once
// for the given assignment at interval ii and returns the estimated
// execution time and II. It exists for the perf-snapshot harness
// (internal/bench, gpbench -bench-json), which pins the estimator's
// steady-state allocation count from outside the package.
func (p *Partitioner) EvaluateForBenchmark(assign []int, ii int) (estTime int64, estII int) {
	e := p.evaluate(assign, ii)
	return e.t, e.ii
}

// IIBusFor returns the interconnect-imposed II bound for an assignment: the
// minimum number of cycles needed to schedule the partition's
// communications on the available buses (paper §3.1) or, for point-to-point
// machines, on the busiest link.
func IIBusFor(g *ddg.Graph, m *machine.Config, assign []int) (iiBus, nComm int) {
	return iiXfer(g, m, assign)
}

// iiXfer computes the interconnect II bound and the number of communicated
// values. On the shared bus each communicated value costs one broadcast of
// XferOccupancy bus slots; on point-to-point links each (producer,
// destination-cluster) pair costs one transfer on its home→dest link, and
// the busiest link bounds the II.
func iiXfer(g *ddg.Graph, m *machine.Config, assign []int) (iiBus, nComm int) {
	var s xferScratch
	return s.compute(g, m, assign)
}

// xferScratch holds the reusable tally buffers behind iiXfer so the hot
// evaluation path recomputes the interconnect bound without allocating.
type xferScratch struct {
	cross   []bool // per node: has a cut outgoing data edge
	destCnt []int  // node·C+dest cut-edge counts (point-to-point only)
	perLink []int  // home·C+dest distinct-transfer counts (p2p only)
}

func (x *xferScratch) compute(g *ddg.Graph, m *machine.Config, assign []int) (iiBus, nComm int) {
	if m.Clusters <= 1 || m.NBus == 0 {
		return 0, 0
	}
	occ := m.XferOccupancy()
	n := g.N()
	x.cross = resizeBools(x.cross, n)
	for i := range x.cross {
		x.cross[i] = false
	}
	if m.Topology == machine.PointToPoint {
		c := m.Clusters
		x.destCnt = resizeInts(x.destCnt, n*c)
		for i := range x.destCnt {
			x.destCnt[i] = 0
		}
		x.perLink = resizeInts(x.perLink, c*c)
		for i := range x.perLink {
			x.perLink[i] = 0
		}
		for _, e := range g.Edges {
			if e.Kind != ddg.Data || assign[e.From] == assign[e.To] {
				continue
			}
			x.cross[e.From] = true
			di := e.From*c + assign[e.To]
			if x.destCnt[di]++; x.destCnt[di] == 1 {
				x.perLink[assign[e.From]*c+assign[e.To]]++
			}
		}
		for _, crossed := range x.cross {
			if crossed {
				nComm++
			}
		}
		for _, cnt := range x.perLink {
			if v := ceilDiv(cnt*occ, m.NBus); v > iiBus {
				iiBus = v
			}
		}
		return iiBus, nComm
	}
	for _, e := range g.Edges {
		if e.Kind == ddg.Data && assign[e.From] != assign[e.To] {
			x.cross[e.From] = true
		}
	}
	for _, crossed := range x.cross {
		if crossed {
			nComm++
		}
	}
	return ceilDiv(nComm*occ, m.NBus), nComm
}

// computeWeights fills p.weights with the §3.2.1 edge weights, computed on
// the original graph (coarse edges sum the weights of their constituents,
// per §2.1.2).
func (p *Partitioner) computeWeights(ii int) {
	g := p.g
	p.weights = resizeInt64s(p.ar.weights, len(g.Edges))
	p.ar.weights = p.weights
	for i := range p.weights {
		p.weights[i] = 0
	}
	if p.opts.Weights == UniformWeights {
		for i, e := range g.Edges {
			if e.Kind == ddg.Data {
				p.weights[i] = 1
			}
		}
		return
	}
	// EstimateTimeInto leaves p.sc.times holding the ASAP times at usedII;
	// one ALAP completion gives the slacks with no second forward pass.
	baseT, usedII := g.EstimateTimeInto(p.m, ii, nil, &p.sc.times)
	g.LatestInto(p.m, nil, &p.sc.times)
	// Slack and maxslack over data edges.
	slack := resizeInts(p.sc.slack, len(g.Edges))
	p.sc.slack = slack
	maxsl := 0
	for i, e := range g.Edges {
		if e.Kind != ddg.Data {
			continue
		}
		slack[i] = g.Slack(&p.sc.times, i, nil)
		if slack[i] > maxsl {
			maxsl = slack[i]
		}
	}
	probe := resizeInts(p.sc.probe, len(g.Edges))
	p.sc.probe = probe
	for i := range probe {
		probe[i] = 0
	}
	for i, e := range g.Edges {
		if e.Kind != ddg.Data {
			continue
		}
		probe[i] = p.m.LatBus
		delayT, _ := g.EstimateTimeInto(p.m, usedII, probe, &p.sc.times)
		probe[i] = 0
		delay := delayT - baseT
		if delay < 0 {
			delay = 0
		}
		p.weights[i] = delay*int64(maxsl+1) + int64(maxsl-slack[i]) + 1
	}
}

// level is one coarsening level: groups[i] lists the original node IDs
// fused into macro-node i. The membership lists live in the level's slab
// (every level partitions the original node set, so the slab holds exactly
// g.N() entries); both are arena-owned and reused across runs.
type level struct {
	groups [][]int
	slab   []int // flat member storage backing groups
	used   int   // slab entries consumed
	// edges are the collapsed inter-group data edges with summed weights.
	edges []graph.Edge
	// gcs caches the per-group unit counts (lazily, via groupCountsOf):
	// they depend only on the fixed group membership, not the assignment.
	gcs   [][isa.NumUnitKinds]int
	gcsOK bool
}

// coarsen builds the level hierarchy, finest first, stopping once the
// number of macro-nodes reaches the cluster count (§3.2.1). All levels are
// arena-owned; the returned slice is valid until the arena's next run.
func (p *Partitioner) coarsen() []*level {
	g := p.g
	n := g.N()
	lv0 := p.freshLevel(0)
	if cap(lv0.groups) >= n {
		lv0.groups = lv0.groups[:n]
	} else {
		lv0.groups = make([][]int, n)
	}
	for v := 0; v < n; v++ {
		lv0.slab[v] = v
		lv0.groups[v] = lv0.slab[v : v+1 : v+1]
	}
	lv0.used = n
	p.collapseEdgesInto(lv0)
	count := 1

	for cur := lv0; len(cur.groups) > p.m.Clusters; {
		gg := &graph.Graph{N: len(cur.groups), Edges: cur.edges}
		var m *graph.Matching
		if p.opts.GreedyMatchingOnly {
			m = graph.GreedyMatching(gg)
		} else {
			m = graph.MaxWeightMatching(gg)
		}
		next := p.fuse(cur, m, count)
		if len(next.groups) == len(cur.groups) {
			// No matched edges (disconnected remainder): force-pair the two
			// smallest groups so coarsening always terminates.
			next = p.forcePair(cur, count)
			if len(next.groups) == len(cur.groups) {
				break
			}
		}
		count++
		cur = next
	}
	return p.ar.levels[:count]
}

// fuse builds level li by fusing matched macro-node pairs of cur,
// respecting the target count: it never fuses below the cluster count.
func (p *Partitioner) fuse(cur *level, m *graph.Matching, li int) *level {
	n := len(cur.groups)
	target := p.m.Clusters
	remap := resizeInts(p.ar.remap, n)
	p.ar.remap = remap
	for i := range remap {
		remap[i] = -1
	}
	next := p.freshLevel(li)
	budget := n - target // how many fusions we may still perform
	// Matched pairs in decreasing weight order (EdgeIdx is not sorted by
	// weight, so sort indices by edge weight for determinism).
	idx := append(p.ar.idx[:0], m.EdgeIdx...)
	p.ar.idx = idx
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := cur.edges[idx[j-1]], cur.edges[idx[j]]
			if a.W < b.W || (a.W == b.W && idx[j-1] > idx[j]) {
				idx[j-1], idx[j] = idx[j], idx[j-1]
			} else {
				break
			}
		}
	}
	for _, ei := range idx {
		if budget <= 0 {
			break
		}
		e := cur.edges[ei]
		if remap[e.U] != -1 || remap[e.V] != -1 {
			continue
		}
		remap[e.U], remap[e.V] = len(next.groups), len(next.groups)
		next.addGroup(cur.groups[e.U], cur.groups[e.V])
		budget--
	}
	for v := 0; v < n; v++ {
		if remap[v] == -1 {
			remap[v] = len(next.groups)
			next.addGroup(cur.groups[v])
		}
	}
	p.collapseEdgesInto(next)
	return next
}

// forcePair fuses the two smallest groups when matching cannot make
// progress (disconnected graphs), building level li.
func (p *Partitioner) forcePair(cur *level, li int) *level {
	if len(cur.groups) < 2 {
		return cur
	}
	a, b := 0, 1
	for i := range cur.groups {
		if len(cur.groups[i]) < len(cur.groups[a]) {
			b, a = a, i
		} else if i != a && len(cur.groups[i]) < len(cur.groups[b]) {
			b = i
		}
	}
	if a > b {
		a, b = b, a
	}
	next := p.freshLevel(li)
	next.addGroup(cur.groups[a], cur.groups[b])
	for i := range cur.groups {
		if i != a && i != b {
			next.addGroup(cur.groups[i])
		}
	}
	p.collapseEdgesInto(next)
	return next
}

// shuffleSeeded applies a deterministic Fisher–Yates permutation driven by
// a splitmix64 stream: the portfolio's per-seed start variation.
func shuffleSeeded(s []int, seed int) {
	x := uint64(seed)
	next := func() uint64 {
		x += 0x9E3779B97F4A7C15
		z := x
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		return z
	}
	for i := len(s) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		s[i], s[j] = s[j], s[i]
	}
}

func lessPair(a, b [2]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
