package partition

import (
	"math/rand"
	"testing"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
)

// twoChains builds two independent chains of length n each: the natural
// 2-cluster partition keeps each chain whole (zero communications).
func twoChains(n int) *ddg.Graph {
	g := ddg.New("twochains", 100)
	for c := 0; c < 2; c++ {
		var prev int
		for i := 0; i < n; i++ {
			op := isa.IntALU
			if i%3 == 1 {
				op = isa.FPAdd
			}
			if i%3 == 2 {
				op = isa.Load
			}
			v := g.AddNode(op, "")
			if i > 0 {
				g.AddEdge(ddg.Edge{From: prev, To: v, Lat: 1, Kind: ddg.Data})
			}
			prev = v
		}
	}
	return g
}

func mustValidate(t *testing.T, g *ddg.Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// checkAssign verifies every node is assigned to a real cluster.
func checkAssign(t *testing.T, g *ddg.Graph, m *machine.Config, assign []int) {
	t.Helper()
	if len(assign) != g.N() {
		t.Fatalf("assignment length %d, want %d", len(assign), g.N())
	}
	for v, c := range assign {
		if c < 0 || c >= m.Clusters {
			t.Fatalf("node %d assigned to cluster %d of %d", v, c, m.Clusters)
		}
	}
}

func TestUnifiedTrivial(t *testing.T) {
	g := twoChains(5)
	mustValidate(t, g)
	m := machine.NewUnified(32)
	res := New(g, m, nil).Partition(g.MII(m))
	checkAssign(t, g, m, res.Assign)
	if res.IIBus != 0 || res.NComm != 0 {
		t.Errorf("unified: IIBus=%d NComm=%d, want 0,0", res.IIBus, res.NComm)
	}
}

func TestTwoChainsSplitCleanly(t *testing.T) {
	g := twoChains(8)
	mustValidate(t, g)
	m := machine.MustClustered(2, 32, 1, 1)
	res := New(g, m, nil).Partition(g.MII(m))
	checkAssign(t, g, m, res.Assign)
	if res.NComm != 0 {
		t.Errorf("two independent chains cut: NComm=%d, want 0 (assign=%v)", res.NComm, res.Assign)
	}
	// Each chain stays whole.
	for c := 0; c < 2; c++ {
		first := res.Assign[c*8]
		for i := 1; i < 8; i++ {
			if res.Assign[c*8+i] != first {
				t.Fatalf("chain %d split: %v", c, res.Assign)
			}
		}
	}
	if res.Assign[0] == res.Assign[8] {
		t.Errorf("both chains in one cluster: %v", res.Assign)
	}
}

func TestIIBusForCountsValuesOnce(t *testing.T) {
	// One producer feeding two consumers in another cluster counts as a
	// single communicated value (broadcast bus).
	g := ddg.New("fan", 10)
	p := g.AddNode(isa.IntALU, "")
	c1 := g.AddNode(isa.IntALU, "")
	c2 := g.AddNode(isa.IntALU, "")
	g.AddEdge(ddg.Edge{From: p, To: c1, Lat: 1, Kind: ddg.Data})
	g.AddEdge(ddg.Edge{From: p, To: c2, Lat: 1, Kind: ddg.Data})
	m := machine.MustClustered(2, 32, 1, 2)
	iiBus, nComm := IIBusFor(g, m, []int{0, 1, 1})
	if nComm != 1 {
		t.Errorf("NComm = %d, want 1", nComm)
	}
	if iiBus != 2 { // ceil(1·2/1)
		t.Errorf("IIBus = %d, want 2", iiBus)
	}
}

func TestIIBusForMemEdgesFree(t *testing.T) {
	g := ddg.New("mem", 10)
	s := g.AddNode(isa.Store, "")
	l := g.AddNode(isa.Load, "")
	g.AddEdge(ddg.Edge{From: s, To: l, Lat: 1, Kind: ddg.Mem})
	m := machine.MustClustered(2, 32, 1, 1)
	iiBus, nComm := IIBusFor(g, m, []int{0, 1})
	if nComm != 0 || iiBus != 0 {
		t.Errorf("mem ordering edge communicated: NComm=%d IIBus=%d", nComm, iiBus)
	}
}

func TestBalanceRelievesOverload(t *testing.T) {
	// 8 loads in a row: a 4-cluster machine has 1 memory unit per cluster,
	// so no cluster may hold more than II loads. At II = MII = 2, each
	// cluster holds at most 2.
	g := ddg.New("loads", 100)
	for i := 0; i < 8; i++ {
		g.AddNode(isa.Load, "")
	}
	mustValidate(t, g)
	m := machine.MustClustered(4, 64, 1, 1)
	ii := g.MII(m)
	if ii != 2 {
		t.Fatalf("MII = %d, want 2", ii)
	}
	res := New(g, m, nil).Partition(ii)
	checkAssign(t, g, m, res.Assign)
	per := make([]int, 4)
	for _, c := range res.Assign {
		per[c]++
	}
	for c, n := range per {
		if n > res.EstII {
			t.Errorf("cluster %d holds %d loads > estII %d (assign=%v)", c, n, res.EstII, res.Assign)
		}
	}
}

func TestRecurrenceStaysTogether(t *testing.T) {
	// A tight recurrence plus independent work: cutting the recurrence
	// raises RecMII, so the partitioner must keep it in one cluster.
	g := ddg.New("rec", 200)
	a := g.AddNode(isa.IntALU, "a")
	b := g.AddNode(isa.IntALU, "b")
	g.AddEdge(ddg.Edge{From: a, To: b, Lat: 1, Kind: ddg.Data})
	g.AddEdge(ddg.Edge{From: b, To: a, Lat: 1, Dist: 1, Kind: ddg.Data})
	// Independent work for the other cluster.
	for i := 0; i < 6; i++ {
		g.AddNode(isa.FPAdd, "w")
	}
	mustValidate(t, g)
	m := machine.MustClustered(2, 32, 1, 2)
	res := New(g, m, nil).Partition(g.MII(m))
	checkAssign(t, g, m, res.Assign)
	if res.Assign[a] != res.Assign[b] {
		t.Errorf("recurrence cut across clusters: %v", res.Assign)
	}
}

func TestPaperWeightsPositive(t *testing.T) {
	g := twoChains(4)
	m := machine.MustClustered(2, 32, 1, 1)
	p := New(g, m, nil)
	p.computeWeights(g.MII(m))
	for i, e := range g.Edges {
		if e.Kind == ddg.Data && p.weights[i] < 1 {
			t.Errorf("data edge %d has weight %d < 1 (paper: no zero-weight edges)", i, p.weights[i])
		}
	}
}

func TestCriticalEdgeWeightsDominate(t *testing.T) {
	// delay differences must outweigh slack differences: an edge on a tight
	// recurrence (raising II when delayed) must weigh more than a slack
	// edge off the critical path.
	g := ddg.New("w", 1000)
	a := g.AddNode(isa.IntALU, "")
	b := g.AddNode(isa.IntALU, "")
	g.AddEdge(ddg.Edge{From: a, To: b, Lat: 1, Kind: ddg.Data})          // edge 0: recurrence
	g.AddEdge(ddg.Edge{From: b, To: a, Lat: 1, Dist: 1, Kind: ddg.Data}) // edge 1: recurrence
	c := g.AddNode(isa.IntALU, "")
	d := g.AddNode(isa.FPDiv, "")
	g.AddEdge(ddg.Edge{From: c, To: b, Lat: 1, Kind: ddg.Data}) // edge 2: slack side edge
	_ = d
	mustValidate(t, g)
	m := machine.MustClustered(2, 32, 1, 2)
	p := New(g, m, nil)
	p.computeWeights(2)
	if p.weights[1] <= p.weights[2] {
		t.Errorf("recurrence edge weight %d not above slack edge weight %d", p.weights[1], p.weights[2])
	}
}

func TestUniformWeights(t *testing.T) {
	g := twoChains(4)
	m := machine.MustClustered(2, 32, 1, 1)
	p := New(g, m, &Options{Weights: UniformWeights})
	p.computeWeights(1)
	for i, e := range g.Edges {
		want := int64(0)
		if e.Kind == ddg.Data {
			want = 1
		}
		if p.weights[i] != want {
			t.Errorf("uniform weight[%d] = %d, want %d", i, p.weights[i], want)
		}
	}
}

func TestSkipRefinementStillFeasible(t *testing.T) {
	g := twoChains(8)
	m := machine.MustClustered(2, 32, 1, 1)
	res := New(g, m, &Options{SkipRefinement: true}).Partition(g.MII(m))
	checkAssign(t, g, m, res.Assign)
}

func TestRefinementNeverWorseThanInitial(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := machine.MustClustered(2, 64, 1, 1)
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(r, 20+r.Intn(20))
		mustValidate(t, g)
		ii := g.MII(m)
		refined := New(g, m, nil).Partition(ii)
		raw := New(g, m, &Options{SkipRefinement: true}).Partition(ii)
		if refined.EstTime > raw.EstTime {
			t.Errorf("trial %d: refined estimate %d worse than unrefined %d", trial, refined.EstTime, raw.EstTime)
		}
	}
}

// randomDAG builds a random connected loop body with a few loop-carried
// edges.
func randomDAG(r *rand.Rand, n int) *ddg.Graph {
	g := ddg.New("rand", 100+r.Intn(400))
	ops := []isa.OpClass{isa.IntALU, isa.IntMul, isa.FPAdd, isa.FPMul, isa.Load}
	for i := 0; i < n; i++ {
		g.AddNode(ops[r.Intn(len(ops))], "")
	}
	for i := 1; i < n; i++ {
		// 1-2 predecessors from earlier nodes.
		for k := 0; k < 1+r.Intn(2); k++ {
			from := r.Intn(i)
			lat := isa.DefaultLatency(g.Nodes[from].Op)
			g.AddEdge(ddg.Edge{From: from, To: i, Lat: lat, Kind: ddg.Data})
		}
	}
	// A couple of loop-carried recurrences.
	for k := 0; k < 2 && n > 3; k++ {
		to := r.Intn(n - 1)
		from := to + 1 + r.Intn(n-to-1)
		lat := isa.DefaultLatency(g.Nodes[from].Op)
		g.AddEdge(ddg.Edge{From: from, To: to, Lat: lat, Dist: 1 + r.Intn(2), Kind: ddg.Data})
	}
	return g
}

func TestPartitionDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randomDAG(r, 30)
	m := machine.MustClustered(4, 64, 1, 1)
	ii := g.MII(m)
	a := New(g, m, nil).Partition(ii)
	b := New(g, m, nil).Partition(ii)
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatalf("non-deterministic assignment at node %d: %d vs %d", v, a.Assign[v], b.Assign[v])
		}
	}
	if a.EstTime != b.EstTime || a.IIBus != b.IIBus {
		t.Errorf("non-deterministic estimates: %+v vs %+v", a, b)
	}
}

func TestPartitionRandomInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	machines := []*machine.Config{
		machine.MustClustered(2, 32, 1, 1),
		machine.MustClustered(2, 64, 1, 2),
		machine.MustClustered(4, 32, 1, 1),
		machine.MustClustered(4, 64, 2, 2),
	}
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(r, 5+r.Intn(40))
		mustValidate(t, g)
		m := machines[trial%len(machines)]
		res := New(g, m, nil).Partition(g.MII(m))
		checkAssign(t, g, m, res.Assign)
		// IIBus consistency with the returned assignment.
		iiBus, nComm := IIBusFor(g, m, res.Assign)
		if iiBus != res.IIBus || nComm != res.NComm {
			t.Errorf("trial %d: Result says IIBus=%d NComm=%d, recomputed %d,%d",
				trial, res.IIBus, res.NComm, iiBus, nComm)
		}
		if res.EstII < g.RecMII(nil) {
			t.Errorf("trial %d: EstII %d below RecMII %d", trial, res.EstII, g.RecMII(nil))
		}
		if res.EstTime < int64(g.Niter-1) {
			t.Errorf("trial %d: EstTime %d impossibly small", trial, res.EstTime)
		}
	}
}

func TestCoarseningReachesClusterCount(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := randomDAG(r, 25)
	m := machine.MustClustered(4, 64, 1, 1)
	p := New(g, m, nil)
	p.computeWeights(g.MII(m))
	levels := p.coarsen()
	last := levels[len(levels)-1]
	if len(last.groups) != 4 {
		t.Errorf("coarsest level has %d groups, want 4", len(last.groups))
	}
	// Every level preserves the node universe.
	for li, lv := range levels {
		seen := make(map[int]bool)
		for _, grp := range lv.groups {
			for _, v := range grp {
				if seen[v] {
					t.Fatalf("level %d: node %d in two groups", li, v)
				}
				seen[v] = true
			}
		}
		if len(seen) != g.N() {
			t.Fatalf("level %d covers %d of %d nodes", li, len(seen), g.N())
		}
	}
}

func TestDisconnectedGraphCoarsens(t *testing.T) {
	// 6 isolated nodes: matching finds nothing; force-pairing must still
	// reach the cluster count.
	g := ddg.New("iso", 10)
	for i := 0; i < 6; i++ {
		g.AddNode(isa.IntALU, "")
	}
	m := machine.MustClustered(2, 32, 1, 1)
	res := New(g, m, nil).Partition(1)
	checkAssign(t, g, m, res.Assign)
	if res.NComm != 0 {
		t.Errorf("isolated nodes communicate: %d", res.NComm)
	}
}

func TestFewerNodesThanClusters(t *testing.T) {
	g := ddg.New("tiny", 10)
	g.AddNode(isa.IntALU, "")
	g.AddNode(isa.IntALU, "")
	m := machine.MustClustered(4, 64, 1, 1)
	res := New(g, m, nil).Partition(1)
	checkAssign(t, g, m, res.Assign)
}

func TestSingleNode(t *testing.T) {
	g := ddg.New("one", 10)
	g.AddNode(isa.Load, "")
	m := machine.MustClustered(2, 32, 1, 1)
	res := New(g, m, nil).Partition(1)
	checkAssign(t, g, m, res.Assign)
	if res.NComm != 0 {
		t.Errorf("single node communicates: %d", res.NComm)
	}
}
