package partition

import (
	"math/rand"
	"testing"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
)

// pressureLoop builds a loop whose values have long lifetimes: producers
// early, consumers late, so packing everything into one cluster overflows
// a small register file.
func pressureLoop(nvals int) *ddg.Graph {
	g := ddg.New("press", 200)
	producers := make([]int, nvals)
	for i := range producers {
		producers[i] = g.AddNode(isa.Load, "")
	}
	// A long serial chain delays the consumers.
	prev := producers[0]
	for i := 0; i < 10; i++ {
		v := g.AddNode(isa.FPAdd, "")
		g.AddEdge(ddg.Edge{From: prev, To: v, Lat: 3, Kind: ddg.Data})
		prev = v
	}
	sink := g.AddNode(isa.IntALU, "")
	g.AddEdge(ddg.Edge{From: prev, To: sink, Lat: 1, Kind: ddg.Data})
	for _, p := range producers {
		g.AddEdge(ddg.Edge{From: p, To: sink, Lat: 2, Kind: ddg.Data})
	}
	return g
}

func TestRegisterAwareChangesEstimate(t *testing.T) {
	g := pressureLoop(10)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	m := machine.MustClustered(4, 32, 1, 1) // 8 registers per cluster
	ii := g.MII(m)

	plain := New(g, m, nil).Partition(ii)
	aware := New(g, m, &Options{RegisterAware: true}).Partition(ii)

	// Both must be valid assignments.
	for _, res := range []*Result{plain, aware} {
		for v, c := range res.Assign {
			if c < 0 || c >= m.Clusters {
				t.Fatalf("node %d in cluster %d", v, c)
			}
		}
	}
	// The register-aware estimator must never claim a better time than the
	// blind one claims for the same assignment; re-evaluating the aware
	// assignment blindly must give ≤ its aware estimate.
	blind := New(g, m, nil)
	blind.computeWeights(ii)
	if est := blind.evaluate(aware.Assign, ii); est.t > aware.EstTime {
		t.Errorf("aware estimate %d below blind estimate %d of the same assignment",
			aware.EstTime, est.t)
	}
}

func TestSpillPressureIIDetectsOverflow(t *testing.T) {
	g := pressureLoop(12)
	m := machine.MustClustered(4, 32, 1, 1) // 8 regs per cluster
	p := New(g, m, &Options{RegisterAware: true})
	p.computeWeights(g.MII(m))

	// All values in cluster 0: pressure must exceed 8 registers and raise
	// the memory-port bound.
	assign := make([]int, g.N())
	times, ok := g.StartTimes(m, g.MII(m), nil)
	if !ok {
		t.Fatal("infeasible")
	}
	counts := p.clusterCountsInto(assign)
	ii := p.spillPressureII(assign, times, counts)
	if ii <= times.II {
		t.Errorf("packed assignment not penalized: ii=%d base=%d", ii, times.II)
	}

	// Spreading evenly must hurt no more than packing (fewer values per
	// cluster ⇒ less pressure each).
	spread := make([]int, g.N())
	for v := range spread {
		spread[v] = v % m.Clusters
	}
	counts = p.clusterCountsInto(spread)
	if got := p.spillPressureII(spread, times, counts); got > ii {
		t.Errorf("spread assignment penalized more (%d) than packed (%d)", got, ii)
	}

	// Short lifetimes: loads feeding an immediate sink never overflow.
	h := ddg.New("short", 100)
	var loads []int
	for i := 0; i < 8; i++ {
		loads = append(loads, h.AddNode(isa.Load, ""))
	}
	sink := h.AddNode(isa.IntALU, "")
	for _, l := range loads {
		h.AddEdge(ddg.Edge{From: l, To: sink, Lat: 2, Kind: ddg.Data})
	}
	ph := New(h, m, &Options{RegisterAware: true})
	ph.computeWeights(h.MII(m))
	ht, ok := h.StartTimes(m, h.MII(m), nil)
	if !ok {
		t.Fatal("infeasible")
	}
	hAssign := make([]int, h.N())
	for v := range hAssign {
		hAssign[v] = v % m.Clusters
	}
	hCounts := ph.clusterCountsInto(hAssign)
	if got := ph.spillPressureII(hAssign, ht, hCounts); got != ht.II {
		t.Errorf("short lifetimes penalized: ii=%d base=%d", got, ht.II)
	}
}

func TestRegisterAwareStillDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	g := randomDAG(r, 30)
	m := machine.MustClustered(2, 32, 1, 1)
	ii := g.MII(m)
	a := New(g, m, &Options{RegisterAware: true}).Partition(ii)
	b := New(g, m, &Options{RegisterAware: true}).Partition(ii)
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatalf("non-deterministic at node %d", v)
		}
	}
}
