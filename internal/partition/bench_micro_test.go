package partition

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
)

// Micro-benchmarks for the partitioner's phases.

func BenchmarkPartitionMedium(b *testing.B) {
	r := rand.New(rand.NewSource(61))
	g := randomDAG(r, 40)
	m := machine.MustClustered(2, 32, 1, 1)
	ii := g.MII(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(g, m, nil).Partition(ii)
	}
}

func BenchmarkPartitionLarge4Cluster(b *testing.B) {
	r := rand.New(rand.NewSource(62))
	g := randomDAG(r, 100)
	m := machine.MustClustered(4, 64, 1, 2)
	ii := g.MII(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(g, m, nil).Partition(ii)
	}
}

func BenchmarkEdgeWeights(b *testing.B) {
	r := rand.New(rand.NewSource(63))
	g := randomDAG(r, 80)
	m := machine.MustClustered(2, 32, 1, 2)
	ii := g.MII(m)
	p := New(g, m, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.computeWeights(ii)
	}
}

func BenchmarkEvaluate(b *testing.B) {
	r := rand.New(rand.NewSource(64))
	g := randomDAG(r, 60)
	m := machine.MustClustered(4, 64, 1, 1)
	ii := g.MII(m)
	p := New(g, m, nil)
	p.computeWeights(ii)
	assign := make([]int, g.N())
	for v := range assign {
		assign[v] = v % 4
	}
	p.evaluate(assign, ii) // warm the scratch arena: steady state is 0 allocs/op
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.evaluate(assign, ii)
	}
}

// BenchmarkEngineEvaluate measures the incremental path the refinement
// inner loop actually takes: one group move, the full estimate, and the
// undo move. Steady state must be allocation-free.
func BenchmarkEngineEvaluate(b *testing.B) {
	r := rand.New(rand.NewSource(65))
	g := randomDAG(r, 60)
	m := machine.MustClustered(4, 64, 1, 1)
	ii := g.MII(m)
	p := New(g, m, nil)
	p.computeWeights(ii)
	assign := make([]int, g.N())
	for v := range assign {
		assign[v] = v % 4
	}
	en := newEngine(p, assign)
	group := []int{0}
	// One full warm-up round: steady state is 0 allocs/op.
	en.move(group, 1)
	en.estimate(ii)
	en.move(group, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en.move(group, 1)
		en.estimate(ii)
		en.move(group, 0)
	}
}

// BenchmarkEngineScreen measures the screened probe (move + lower bound +
// undo) that rejects most refinement candidates without a time estimate.
func BenchmarkEngineScreen(b *testing.B) {
	r := rand.New(rand.NewSource(66))
	g := randomDAG(r, 60)
	m := machine.MustClustered(4, 64, 1, 1)
	ii := g.MII(m)
	p := New(g, m, nil)
	p.computeWeights(ii)
	assign := make([]int, g.N())
	for v := range assign {
		assign[v] = v % 4
	}
	en := newEngine(p, assign)
	group := []int{0}
	en.move(group, 1)
	en.lowerBoundT(ii)
	en.move(group, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en.move(group, 1)
		en.lowerBoundT(ii)
		en.move(group, 0)
	}
}
