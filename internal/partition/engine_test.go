package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/workload"
)

// The incremental engine must be observationally identical to full
// re-evaluation: same maintained state as a from-scratch rebuild after any
// move sequence, same estimates as Partitioner.evaluate, and — through the
// screening inner loop — the same chosen move sequence as exhaustive
// evaluation of every candidate.

func engineMachines() []*machine.Config {
	p2p := machine.MustClustered(4, 64, 1, 2)
	p2p = &machine.Config{
		Name: "p2p", Clusters: p2p.Clusters, Units: p2p.Units,
		RegsPerCluster: p2p.RegsPerCluster, NBus: 1, LatBus: 2,
		Topology: machine.PointToPoint, Latency: p2p.Latency,
	}
	return []*machine.Config{
		machine.MustClustered(2, 32, 1, 1),
		machine.MustClustered(4, 64, 1, 2),
		machine.MustClustered(4, 32, 2, 1),
		p2p,
	}
}

// estimatesEqual compares every field the selection logic can observe.
func estimatesEqual(a, b estimate) bool {
	return a.t == b.t && a.ii == b.ii && a.iiBus == b.iiBus &&
		a.nComm == b.nComm && a.cutSlack == b.cutSlack && a.nCut == b.nCut
}

// TestEngineStateMatchesRebuild drives random single-group moves through
// one engine and, after every move, compares each piece of delta-maintained
// state against a second engine rebuilt from scratch, plus the estimates
// against the full evaluator.
func TestEngineStateMatchesRebuild(t *testing.T) {
	f := func(seed int64, mIdx uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 5+r.Intn(35))
		m := engineMachines()[int(mIdx)%4]
		p := New(g, m, nil)
		ii := g.MII(m)
		p.computeWeights(ii)

		assign := make([]int, g.N())
		for v := range assign {
			assign[v] = r.Intn(m.Clusters)
		}
		en := newEngine(p, assign)

		// Random macro-nodes of 1-3 members, all drawn from one cluster so
		// the group invariant (members share a cluster) holds.
		for step := 0; step < 40; step++ {
			c1 := r.Intn(m.Clusters)
			var members []int
			for v := range assign {
				if assign[v] == c1 {
					members = append(members, v)
				}
			}
			if len(members) == 0 {
				continue
			}
			r.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
			if n := 1 + r.Intn(3); len(members) > n {
				members = members[:n]
			}
			c2 := r.Intn(m.Clusters)
			en.move(members, c2)

			fresh := newEngine(New(g, m, nil), append([]int(nil), assign...))
			if en.nCut != fresh.nCut || en.nComm != fresh.nComm {
				return false
			}
			for i := range g.Edges {
				if en.cut[i] != fresh.cut[i] || en.extra[i] != fresh.extra[i] {
					return false
				}
			}
			for c := 0; c < m.Clusters; c++ {
				if en.counts[c] != fresh.counts[c] {
					return false
				}
			}
			for v := range g.Nodes {
				if en.crossOut[v] != fresh.crossOut[v] {
					return false
				}
			}
			if m.Topology == machine.PointToPoint {
				for i := range en.perLink {
					if en.perLink[i] != fresh.perLink[i] {
						return false
					}
				}
				for i := range en.destCnt {
					if en.destCnt[i] != fresh.destCnt[i] {
						return false
					}
				}
			}
			if !estimatesEqual(en.estimate(ii), p.evaluate(assign, ii)) {
				return false
			}
			// Undo must restore the state exactly (spot-check via estimate).
			en.move(members, c1)
			if !estimatesEqual(en.estimate(ii), p.evaluate(assign, ii)) {
				return false
			}
			en.move(members, c2) // keep the move and continue
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLowerBoundSound: the screening bound must never exceed the true
// estimate's execution time, for any assignment (otherwise screening could
// drop a winning candidate).
func TestLowerBoundSound(t *testing.T) {
	f := func(seed int64, mIdx uint8, regAware bool) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 4+r.Intn(30))
		m := engineMachines()[int(mIdx)%4]
		opts := &Options{RegisterAware: regAware}
		p := New(g, m, opts)
		ii := g.MII(m)
		assign := make([]int, g.N())
		for v := range assign {
			assign[v] = r.Intn(m.Clusters)
		}
		en := newEngine(p, assign)
		return en.lowerBoundT(ii) <= en.estimate(ii).t
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// partitionResultsEqual compares everything Partition returns.
func partitionResultsEqual(a, b *Result) bool {
	if a.IIBus != b.IIBus || a.NComm != b.NComm || a.EstTime != b.EstTime ||
		a.EstII != b.EstII || a.Levels != b.Levels || a.Moves != b.Moves {
		return false
	}
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			return false
		}
	}
	return true
}

// TestEngineMoveSequenceEquivalence pins the tentpole contract: the
// incremental, screened refinement chooses exactly the moves that
// exhaustive full re-evaluation of every candidate chooses, across fuzzed
// loops, machines and option sets.
func TestEngineMoveSequenceEquivalence(t *testing.T) {
	f := func(seed int64, mIdx uint8, optBits uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 4+r.Intn(40))
		m := engineMachines()[int(mIdx)%4]
		opts := &Options{
			Weights:        WeightScheme(optBits & 1),
			RegisterAware:  optBits&2 != 0,
			BalanceBestFit: optBits&4 != 0,
		}
		ii := g.MII(m)
		fast := New(g, m, opts).Partition(ii)
		ref := New(g, m, opts)
		ref.debugFullEval = true
		slow := ref.Partition(ii)
		return partitionResultsEqual(fast, slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineCorpusEquivalence runs the same screened-vs-exhaustive
// comparison over the real sweep workloads (both corpora, every sweep
// machine) — the loops behind the golden sweep CSV.
func TestEngineCorpusEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-wide equivalence is covered by the fuzz variant in -short mode")
	}
	for _, corpus := range [][]*workload.Benchmark{workload.SPECfp95(), workload.DSP()} {
		for _, bm := range corpus {
			for _, l := range bm.Loops {
				for _, m := range machine.SweepSet() {
					if m.Clusters <= 1 {
						continue
					}
					ii := l.G.MII(m)
					if ii >= 1<<20 {
						continue // machine cannot run this loop at all
					}
					fast := New(l.G, m, nil).Partition(ii)
					ref := New(l.G, m, nil)
					ref.debugFullEval = true
					slow := ref.Partition(ii)
					if !partitionResultsEqual(fast, slow) {
						t.Fatalf("%s/%s on %s: incremental and exhaustive refinement diverge:\nfast %+v\nslow %+v",
							bm.Name, l.G.Name, m.Name, fast, slow)
					}
				}
			}
		}
	}
}

// TestBalanceFirstFit pins the destination-scan semantics of the balancing
// pass: by default the first feasible cluster in index order receives the
// evicted macro-node even when a later cluster is less loaded; with
// Options.BalanceBestFit the least-loaded feasible destination wins.
func TestBalanceFirstFit(t *testing.T) {
	// Cluster 0 has no FP units but holds the FP ops (infinitely
	// overloaded); clusters 1 and 2 both fit them, cluster 1 carrying one
	// FP op already, cluster 2 none.
	spec := func(fp int) machine.ClusterSpec {
		return machine.ClusterSpec{Units: [isa.NumUnitKinds]int{1, fp, 1}, Regs: 16}
	}
	m := machine.MustHetero("balance-pin",
		[]machine.ClusterSpec{spec(0), spec(2), spec(2)}, machine.SharedBus, 1, 1, false)

	build := func() (*Partitioner, []int, *level) {
		g := ddgNewBalanceLoop()
		p := New(g, m, nil)
		p.computeWeights(1)
		assign := []int{0, 1, 2, 1} // FP op in cluster 0; glue elsewhere
		lv := &level{groups: [][]int{{0}, {1}, {2}, {3}}}
		return p, assign, lv
	}

	p, assign, lv := build()
	en := newEngine(p, assign)
	if moves := p.balance(lv, en, 1); moves == 0 {
		t.Fatal("balance did not move the stranded FP op")
	}
	if assign[0] != 1 {
		t.Errorf("first-fit: FP op moved to cluster %d, want 1 (first feasible)", assign[0])
	}

	p, assign, lv = build()
	p.opts.BalanceBestFit = true
	en = newEngine(p, assign)
	if moves := p.balance(lv, en, 1); moves == 0 {
		t.Fatal("best-fit balance did not move the stranded FP op")
	}
	if assign[0] != 2 {
		t.Errorf("best-fit: FP op moved to cluster %d, want 2 (least loaded)", assign[0])
	}
}

// ddgNewBalanceLoop is the four-op loop behind TestBalanceFirstFit: one FP
// op stranded on a cluster without FP units, one FP op pre-loading cluster
// 1, and two int ops as glue.
func ddgNewBalanceLoop() *ddg.Graph {
	g := ddg.New("balance-pin", 10)
	a := g.AddNode(isa.FPAdd, "stranded")
	b := g.AddNode(isa.FPAdd, "preload")
	c := g.AddNode(isa.IntALU, "glue1")
	d := g.AddNode(isa.IntALU, "glue2")
	g.AddDep(a, c, 0)
	g.AddDep(b, d, 0)
	return g
}
