// Incremental partition-evaluation engine.
//
// The refinement heuristics of §3.2.2 probe thousands of candidate moves
// per level; re-deriving the cut-edge set, per-cluster unit counts and
// interconnect tallies from the full assignment for every probe is
// O(candidates × (V+E)) before the longest-path analysis even starts. The
// engine instead delta-maintains that state under an apply/undo move API:
// moving a macro-node touches only its incident data edges, so the cheap
// screening bound below is O(affected edges + clusters) per candidate and
// the expensive time estimate runs only for candidates the bound cannot
// reject.
//
// Invariants (held between moves, checked by the engine equivalence test):
//   - cut[ei] ⇔ edge ei is a Data edge with endpoints in different clusters
//   - extra[ei] = LatBus when cut[ei], else 0
//   - nCut = |{ei : cut[ei]}|
//   - counts[c][k] = number of nodes of unit kind k assigned to cluster c
//   - crossOut[v] = number of cut outgoing data edges of v;
//     nComm = |{v : crossOut[v] > 0}|
//   - point-to-point only: destCnt[v·C+d] = cut out-edges of v into cluster
//     d; perLink[h·C+d] = |{(v,d) : assign[v]=h, destCnt[v·C+d] > 0}|
//
// move(members, c2) is an exact inverse of move(members, c1): every tally
// is integral and updated symmetrically, so apply → undo restores the
// state bit for bit.
package partition

import (
	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
)

// engine carries the delta-maintained evaluation state for one Partitioner
// run. Its assign slice aliases the caller's: moves mutate it in place.
type engine struct {
	p      *Partitioner
	assign []int

	cut      []bool // per edge: cut Data edge
	extra    []int  // per edge: LatBus on cut Data edges, 0 otherwise
	nCut     int
	counts   [][isa.NumUnitKinds]int // per-cluster op counts by unit kind
	crossOut []int                   // per node: cut outgoing Data edges
	nComm    int
	destCnt  []int // node·C+dest tallies (point-to-point only, else nil)
	perLink  []int // home·C+dest distinct-transfer counts (p2p only)

	mark    []int // per-edge visit stamps for move's dedupe
	epoch   int
	touched []int // edges incident to the moving group, deduplicated

	times ddg.Times // reusable start-time buffers for estimate
}

// newEngine returns the partitioner's arena-owned engine, synchronized with
// assign. Reset rebuilds every tally, so whatever a previous run left in the
// arena cannot leak into this one.
func newEngine(p *Partitioner, assign []int) *engine {
	en := &p.ar.en
	en.p = p
	en.reset(assign)
	return en
}

// reset rebuilds the full state from assign (which the engine aliases and
// mutates on move).
func (en *engine) reset(assign []int) {
	g, m := en.p.g, en.p.m
	en.assign = assign
	nE, n, c := len(g.Edges), g.N(), m.Clusters

	en.cut = resizeBools(en.cut, nE)
	en.extra = resizeInts(en.extra, nE)
	en.mark = resizeInts(en.mark, nE)
	for i := 0; i < nE; i++ {
		en.cut[i], en.extra[i], en.mark[i] = false, 0, 0
	}
	en.epoch = 0
	en.crossOut = resizeInts(en.crossOut, n)
	for i := range en.crossOut {
		en.crossOut[i] = 0
	}
	if cap(en.counts) >= c {
		en.counts = en.counts[:c]
	} else {
		en.counts = make([][isa.NumUnitKinds]int, c)
	}
	for i := range en.counts {
		en.counts[i] = [isa.NumUnitKinds]int{}
	}
	en.destCnt, en.perLink = nil, nil
	if m.Topology == machine.PointToPoint {
		en.destCnt = resizeInts(en.destCnt, n*c)
		en.perLink = resizeInts(en.perLink, c*c)
		for i := range en.destCnt {
			en.destCnt[i] = 0
		}
		for i := range en.perLink {
			en.perLink[i] = 0
		}
	}
	en.nCut, en.nComm = 0, 0

	for v, nd := range g.Nodes {
		en.counts[assign[v]][nd.Op.Unit()]++
	}
	for ei := range g.Edges {
		en.admit(ei)
	}
}

// admit installs edge ei's contribution to the cut state if it is a Data
// edge crossing clusters under the current assignment.
func (en *engine) admit(ei int) {
	g, m := en.p.g, en.p.m
	e := &g.Edges[ei]
	if e.Kind != ddg.Data || en.assign[e.From] == en.assign[e.To] {
		return
	}
	en.cut[ei] = true
	en.extra[ei] = m.LatBus
	en.nCut++
	if en.crossOut[e.From]++; en.crossOut[e.From] == 1 {
		en.nComm++
	}
	if en.destCnt != nil {
		c := m.Clusters
		di := e.From*c + en.assign[e.To]
		if en.destCnt[di]++; en.destCnt[di] == 1 {
			en.perLink[en.assign[e.From]*c+en.assign[e.To]]++
		}
	}
}

// retire removes edge ei's contribution, if any, under the current
// assignment (the exact inverse of the admit that installed it).
func (en *engine) retire(ei int) {
	if !en.cut[ei] {
		return
	}
	g, m := en.p.g, en.p.m
	e := &g.Edges[ei]
	en.cut[ei] = false
	en.extra[ei] = 0
	en.nCut--
	if en.crossOut[e.From]--; en.crossOut[e.From] == 0 {
		en.nComm--
	}
	if en.destCnt != nil {
		c := m.Clusters
		di := e.From*c + en.assign[e.To]
		if en.destCnt[di]--; en.destCnt[di] == 0 {
			en.perLink[en.assign[e.From]*c+en.assign[e.To]]--
		}
	}
}

// move reassigns every member of one macro-node to cluster c2, updating the
// state in O(incident data edges). Undo is move(members, c1) with the
// original cluster.
func (en *engine) move(members []int, c2 int) {
	g := en.p.g
	en.epoch++
	en.touched = en.touched[:0]
	for _, v := range members {
		for _, ei := range g.Out(v) {
			if g.Edges[ei].Kind == ddg.Data && en.mark[ei] != en.epoch {
				en.mark[ei] = en.epoch
				en.touched = append(en.touched, ei)
			}
		}
		for _, ei := range g.In(v) {
			if g.Edges[ei].Kind == ddg.Data && en.mark[ei] != en.epoch {
				en.mark[ei] = en.epoch
				en.touched = append(en.touched, ei)
			}
		}
	}
	for _, ei := range en.touched {
		en.retire(ei)
	}
	for _, v := range members {
		k := g.Nodes[v].Op.Unit()
		en.counts[en.assign[v]][k]--
		en.counts[c2][k]++
		en.assign[v] = c2
	}
	for _, ei := range en.touched {
		en.admit(ei)
	}
}

// xfer returns the interconnect II bound and communicated-value count from
// the maintained tallies (same contract as iiXfer).
func (en *engine) xfer() (iiBus, nComm int) {
	m := en.p.m
	if m.Clusters <= 1 || m.NBus == 0 {
		return 0, 0
	}
	occ := m.XferOccupancy()
	if en.destCnt != nil {
		for _, cnt := range en.perLink {
			if v := ceilDiv(cnt*occ, m.NBus); v > iiBus {
				iiBus = v
			}
		}
		return iiBus, en.nComm
	}
	return ceilDiv(en.nComm*occ, m.NBus), en.nComm
}

// estimate computes the full §3.2.2 quality estimate for the current
// assignment from the maintained state: only the longest-path time analysis
// runs on the graph; the cut set, counts and interconnect tallies are
// already up to date. Produces bit-identical results to
// Partitioner.evaluate.
func (en *engine) estimate(ii int) estimate {
	est := en.estimateFast(ii)
	en.finishSlack(&est)
	return est
}

// estimateFast computes everything but the cut-slack tie-break: the
// execution time needs only the forward (ASAP) relaxation, so the ALAP
// pass and the per-edge slack sum are deferred to finishSlack and run only
// for candidates whose primary key is competitive. est.cutSlack is left 0
// and est.slackII records the II the deferred slacks are defined at.
func (en *engine) estimateFast(ii int) estimate {
	p := en.p
	g, m := p.g, p.m
	var est estimate
	est.nCut = en.nCut
	est.iiBus, est.nComm = en.xfer()

	resII := resIIFrom(m, en.counts)
	base := ii
	if resII > base {
		base = resII
	}
	if est.iiBus > base {
		base = est.iiBus
	}
	t, used := g.EstimateTimeInto(m, base, en.extra, &en.times)
	est.t, est.ii = t, used
	est.slackII = used

	if p.opts.RegisterAware {
		if extraMemII := p.spillPressureII(en.assign, &en.times, en.counts); extraMemII > used {
			t2, used2 := g.EstimateTimeInto(m, extraMemII, en.extra, &en.times)
			est.t, est.ii = t2, used2
		}
	}
	return est
}

// finishSlack completes a fast estimate with its cut-slack tie-break. Must
// be called before the next move/estimate on the engine (it reuses the
// forward times estimateFast left behind when they are still at the slack
// II; the register-aware pass may have advanced them, in which case the
// forward pass is re-run).
func (en *engine) finishSlack(est *estimate) {
	g, m := en.p.g, en.p.m
	if en.times.II != est.slackII {
		if !g.StartTimesInto(m, est.slackII, en.extra, &en.times) {
			panic("partition: slack II infeasible") // unreachable: it was used for the estimate
		}
	} else {
		g.LatestInto(m, en.extra, &en.times)
	}
	for i := range g.Edges {
		if en.cut[i] {
			est.cutSlack += int64(g.Slack(&en.times, i, en.extra))
		}
	}
}

// lowerBoundT returns a proven lower bound on estimate(ii).t for the
// current assignment without running the longest-path analysis: the
// estimator never uses an II below max(ii, resource MII, interconnect II),
// and the schedule length is at least the largest single-operation latency
// (every node starts at cycle ≥ 0), so T = (niter−1)·II + SL is bounded
// below accordingly. The register-aware pass can only raise the II, so the
// bound holds there too.
func (en *engine) lowerBoundT(ii int) int64 {
	p := en.p
	iiBus, _ := en.xfer()
	base := ii
	if resII := resIIFrom(p.m, en.counts); resII > base {
		base = resII
	}
	if iiBus > base {
		base = iiBus
	}
	return int64(p.g.Niter-1)*int64(base) + int64(p.maxOpLat)
}
