package partition

import (
	"math"

	"repro/internal/ddg"
	"repro/internal/isa"
)

// estimate is the partition-quality estimate of §3.2.2: execution time on a
// hypothetical machine with the real functional units, buses and memory
// ports but unlimited registers and ideal memory.
type estimate struct {
	t        int64 // estimated execution time, cycles
	ii       int   // II the estimate was computed at
	iiBus    int
	nComm    int
	cutSlack int64 // total slack of inter-cluster data edges (tie-break 1)
	nCut     int   // number of inter-cluster data edges (tie-break 2)
}

// better reports whether a is preferable to b under the paper's ordering:
// smaller execution time; then larger cut slack; then fewer cut edges.
func (a estimate) better(b estimate) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.cutSlack != b.cutSlack {
		return a.cutSlack > b.cutSlack
	}
	return a.nCut < b.nCut
}

// evaluate computes the estimate for an assignment at scheduling interval
// ii. Cut data edges receive the bus latency; the II used is the maximum of
// ii, the per-cluster resource MII, IIbus and the recurrence MII of the
// latency-extended graph.
func (p *Partitioner) evaluate(assign []int, ii int) estimate {
	g, m := p.g, p.m
	for i := range p.extra {
		p.extra[i] = 0
	}
	var est estimate
	for i, e := range g.Edges {
		if e.Kind == ddg.Data && assign[e.From] != assign[e.To] {
			p.extra[i] = m.LatBus
			est.nCut++
		}
	}
	est.iiBus, est.nComm = iiXfer(g, m, assign)

	// Per-cluster resource MII (heterogeneous unit mixes: each cluster is
	// bounded by its own units).
	resII := 1
	counts := p.clusterCounts(assign)
	for c := 0; c < m.Clusters; c++ {
		for k := 0; k < isa.NumUnitKinds; k++ {
			if counts[c][k] == 0 {
				continue
			}
			units := m.UnitsIn(c, isa.UnitKind(k))
			if units == 0 {
				resII = 1 << 20 // unschedulable partition
				continue
			}
			if v := ceilDiv(counts[c][k], units); v > resII {
				resII = v
			}
		}
	}

	base := ii
	if resII > base {
		base = resII
	}
	if est.iiBus > base {
		base = est.iiBus
	}
	t, used := g.EstimateTime(m, base, p.extra)
	est.t, est.ii = t, used

	times, ok := g.StartTimes(m, used, p.extra)
	if ok {
		for i, e := range g.Edges {
			if e.Kind == ddg.Data && assign[e.From] != assign[e.To] {
				est.cutSlack += int64(g.Slack(times, i, p.extra))
			}
		}
	}

	if p.opts.RegisterAware && ok {
		// Estimate per-cluster register pressure from the ASAP lifetimes
		// and charge the spill traffic of overflowing values as extra
		// memory-port load, possibly raising the II (DESIGN.md A6; the
		// paper's §4.2 future-work suggestion).
		if extraMemII := p.spillPressureII(assign, times, counts); extraMemII > used {
			t2, used2 := g.EstimateTime(m, extraMemII, p.extra)
			est.t, est.ii = t2, used2
		}
	}
	return est
}

// spillPressureII estimates, per cluster, the steady-state register
// pressure Σ lifetimes / II; values beyond the register file each cost a
// store and a load per iteration on the cluster's memory ports. It returns
// the resulting resource-MII bound (which equals times.II when nothing
// overflows).
func (p *Partitioner) spillPressureII(assign []int, times *ddg.Times, counts [][isa.NumUnitKinds]int) int {
	g, m := p.g, p.m
	ii := times.II
	lifetime := make([]int64, m.Clusters)
	for u := range g.Nodes {
		if !g.Nodes[u].Op.ProducesValue() {
			continue
		}
		def := times.Earliest[u] + m.OpLatency(g.Nodes[u].Op)
		end := def + 1
		for _, ei := range g.Out(u) {
			e := g.Edges[ei]
			if e.Kind != ddg.Data {
				continue
			}
			if use := times.Earliest[e.To] + ii*e.Dist + 1; use > end {
				end = use
			}
		}
		lifetime[assign[u]] += int64(end - def)
	}
	worst := ii
	for c := 0; c < m.Clusters; c++ {
		memUnits := m.UnitsIn(c, isa.MemUnit)
		if memUnits == 0 {
			continue
		}
		maxLive := int((lifetime[c] + int64(ii) - 1) / int64(ii))
		over := maxLive - m.RegsIn(c)
		if over <= 0 {
			continue
		}
		memOps := counts[c][isa.MemUnit] + 2*over
		if v := ceilDiv(memOps, memUnits); v > worst {
			worst = v
		}
	}
	return worst
}

// clusterCounts returns per-cluster operation counts by unit kind.
func (p *Partitioner) clusterCounts(assign []int) [][isa.NumUnitKinds]int {
	counts := make([][isa.NumUnitKinds]int, p.m.Clusters)
	for v, n := range p.g.Nodes {
		counts[assign[v]][n.Op.Unit()]++
	}
	return counts
}

// groupCounts returns the per-unit-kind operation counts of one macro-node.
func (p *Partitioner) groupCounts(members []int) [isa.NumUnitKinds]int {
	var c [isa.NumUnitKinds]int
	for _, v := range members {
		c[p.g.Nodes[v].Op.Unit()]++
	}
	return c
}

// assignGroup moves every member of a macro-node to cluster c.
func assignGroup(assign []int, members []int, c int) {
	for _, v := range members {
		assign[v] = c
	}
}

// maxMoves returns the refinement move cap for one level.
func (p *Partitioner) maxMoves() int {
	if p.opts.MaxMoves > 0 {
		return p.opts.MaxMoves
	}
	return 4*p.g.N() + 16
}

// balance implements the workload-balancing heuristic (§3.2.2): while any
// per-cluster resource exceeds 100% utilization at the current II estimate,
// move macro-nodes that use the most saturated resource out of the
// overloaded cluster, provided the destination does not become overloaded
// on that resource or any more-critical resource already handled.
func (p *Partitioner) balance(lv *level, assign []int, ii int) int {
	m := p.m
	moves := 0
	limit := p.maxMoves()
	for moves < limit {
		cur := p.evaluate(assign, ii)
		capII := cur.ii
		counts := p.clusterCounts(assign)

		// Find the most saturated overloaded (cluster, kind), measured by
		// utilization ratio ops/(units·II).
		type overload struct {
			c, k  int
			ratio float64
		}
		var worst *overload
		for c := 0; c < m.Clusters; c++ {
			for k := 0; k < isa.NumUnitKinds; k++ {
				units := m.UnitsIn(c, isa.UnitKind(k))
				if counts[c][k] == 0 || counts[c][k] <= units*capII {
					continue
				}
				// A cluster with zero units of a kind it was assigned ops of
				// is infinitely overloaded: those ops can never issue there.
				r := math.Inf(1)
				if units > 0 {
					r = float64(counts[c][k]) / float64(units*capII)
				}
				if worst == nil || r > worst.ratio {
					worst = &overload{c, k, r}
				}
			}
		}
		if worst == nil {
			return moves // nothing overloaded
		}

		// Try moving a group that uses the overloaded resource out of the
		// cluster, preferring the group whose departure relieves the most.
		bestGi, bestC2, bestUse := -1, -1, 0
		for gi, members := range lv.groups {
			if len(members) == 0 || assign[members[0]] != worst.c {
				continue
			}
			gc := p.groupCounts(members)
			if gc[worst.k] == 0 {
				continue
			}
			for c2 := 0; c2 < m.Clusters; c2++ {
				if c2 == worst.c {
					continue
				}
				units := m.UnitsIn(c2, isa.UnitKind(worst.k))
				if counts[c2][worst.k]+gc[worst.k] > units*capII {
					continue // would overload the destination
				}
				if gc[worst.k] > bestUse {
					bestGi, bestC2, bestUse = gi, c2, gc[worst.k]
				}
				break
			}
		}
		if bestGi == -1 {
			// No beneficial movement at this granularity; wait for a finer
			// level (paper: "we wait for the next step").
			return moves
		}
		assignGroup(assign, lv.groups[bestGi], bestC2)
		moves++
	}
	return moves
}

// minimizeCut implements the cut-impact heuristic (§3.2.2): repeatedly
// evaluate all single macro-node moves toward a neighbor's cluster and,
// when resources do not allow a move, all pair interchanges; apply the
// transformation with the largest execution-time benefit (ties: maximize
// slack of cut edges, then minimize the cut size); stop when no
// transformation has positive benefit.
func (p *Partitioner) minimizeCut(lv *level, assign []int, ii int) int {
	m := p.m
	moves := 0
	limit := p.maxMoves()

	owner := make([]int, p.g.N())
	for gi, members := range lv.groups {
		for _, v := range members {
			owner[v] = gi
		}
	}
	// Neighbor groups via original data edges.
	neighbors := make(map[int]map[int]bool, len(lv.groups))
	addNb := func(a, b int) {
		if a == b {
			return
		}
		if neighbors[a] == nil {
			neighbors[a] = make(map[int]bool)
		}
		neighbors[a][b] = true
	}
	for _, e := range p.g.Edges {
		if e.Kind == ddg.Data {
			addNb(owner[e.From], owner[e.To])
			addNb(owner[e.To], owner[e.From])
		}
	}

	for moves < limit {
		cur := p.evaluate(assign, ii)
		counts := p.clusterCounts(assign)
		capII := cur.ii

		type move struct {
			gi, c2  int // single move: group gi → cluster c2
			swapGj  int // ≥ 0: interchange with group gj (in c2)
			est     estimate
			applied bool
		}
		var best *move

		consider := func(mv move, e estimate) {
			if best == nil || e.better(best.est) {
				mv.est = e
				best = &mv
			}
		}

		fits := func(gc [isa.NumUnitKinds]int, c2 int, minus [isa.NumUnitKinds]int) bool {
			for k := 0; k < isa.NumUnitKinds; k++ {
				if gc[k] == 0 {
					continue
				}
				units := m.UnitsIn(c2, isa.UnitKind(k))
				if counts[c2][k]-minus[k]+gc[k] > units*capII {
					return false
				}
			}
			return true
		}

		for gi, members := range lv.groups {
			if len(members) == 0 {
				continue
			}
			c1 := assign[members[0]]
			gc := p.groupCounts(members)
			// Candidate destination clusters: clusters of neighbor groups.
			dests := make(map[int]bool)
			for nb := range neighbors[gi] {
				if len(lv.groups[nb]) > 0 {
					if c := assign[lv.groups[nb][0]]; c != c1 {
						dests[c] = true
					}
				}
			}
			for c2 := range dests {
				if fits(gc, c2, [isa.NumUnitKinds]int{}) {
					assignGroup(assign, members, c2)
					e := p.evaluate(assign, ii)
					assignGroup(assign, members, c1)
					consider(move{gi: gi, c2: c2, swapGj: -1}, e)
					continue
				}
				// Single move does not fit: consider interchanges with
				// groups currently in c2 (paper: "all feasible interchanges
				// between pairs of nodes").
				for gj, other := range lv.groups {
					if gj == gi || len(other) == 0 || assign[other[0]] != c2 {
						continue
					}
					oc := p.groupCounts(other)
					if !fits(gc, c2, oc) || !fitsReverse(p, counts, oc, gc, c1, capII) {
						continue
					}
					assignGroup(assign, members, c2)
					assignGroup(assign, other, c1)
					e := p.evaluate(assign, ii)
					assignGroup(assign, members, c1)
					assignGroup(assign, other, c2)
					consider(move{gi: gi, c2: c2, swapGj: gj}, e)
				}
			}
		}

		if best == nil || !best.est.better(cur) || best.est.t >= cur.t {
			return moves // no strictly positive execution-time benefit
		}
		members := lv.groups[best.gi]
		c1 := assign[members[0]]
		assignGroup(assign, members, best.c2)
		if best.swapGj >= 0 {
			assignGroup(assign, lv.groups[best.swapGj], c1)
		}
		moves++
	}
	return moves
}

// fitsReverse checks the source-cluster side of an interchange: after the
// swap, cluster c1 holds its ops minus gc plus oc without overloading.
func fitsReverse(p *Partitioner, counts [][isa.NumUnitKinds]int, oc, gc [isa.NumUnitKinds]int, c1, capII int) bool {
	for k := 0; k < isa.NumUnitKinds; k++ {
		if oc[k] == 0 {
			continue
		}
		units := p.m.UnitsIn(c1, isa.UnitKind(k))
		if counts[c1][k]-gc[k]+oc[k] > units*capII {
			return false
		}
	}
	return true
}
