package partition

import (
	"math"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
)

// estimate is the partition-quality estimate of §3.2.2: execution time on a
// hypothetical machine with the real functional units, buses and memory
// ports but unlimited registers and ideal memory.
type estimate struct {
	t        int64 // estimated execution time, cycles
	ii       int   // II the estimate was computed at
	iiBus    int
	nComm    int
	cutSlack int64 // total slack of inter-cluster data edges (tie-break 1)
	nCut     int   // number of inter-cluster data edges (tie-break 2)
	slackII  int   // II cutSlack is defined at (engine.finishSlack bookkeeping)
}

// better reports whether a is preferable to b under the paper's ordering:
// smaller execution time; then larger cut slack; then fewer cut edges.
func (a estimate) better(b estimate) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.cutSlack != b.cutSlack {
		return a.cutSlack > b.cutSlack
	}
	return a.nCut < b.nCut
}

// scratch is the Partitioner's persistent evaluation arena: every buffer
// the estimator needs, allocated once and reused across all evaluations so
// the refinement inner loop runs allocation-free in the steady state.
type scratch struct {
	counts   [][isa.NumUnitKinds]int // per-cluster op counts by unit kind
	times    ddg.Times               // start-time buffers for the estimator
	lifetime []int64                 // spillPressureII per-cluster lifetimes
	xfer     xferScratch             // interconnect-tally buffers
	owner    []int                   // node → group, per level
	dests    []int                   // candidate destination clusters
	destSeen []bool                  // per-cluster dedupe marks
	slack    []int                   // computeWeights per-edge slack
	probe    []int                   // computeWeights delay(e) probe extras
}

// evaluate computes the estimate for an assignment at scheduling interval
// ii, from scratch but into the persistent arena (no allocation in the
// steady state). Cut data edges receive the bus latency; the II used is the
// maximum of ii, the per-cluster resource MII, IIbus and the recurrence MII
// of the latency-extended graph.
func (p *Partitioner) evaluate(assign []int, ii int) estimate {
	g, m := p.g, p.m
	for i := range p.extra {
		p.extra[i] = 0
	}
	var est estimate
	for i, e := range g.Edges {
		if e.Kind == ddg.Data && assign[e.From] != assign[e.To] {
			p.extra[i] = m.LatBus
			est.nCut++
		}
	}
	est.iiBus, est.nComm = p.sc.xfer.compute(g, m, assign)

	counts := p.clusterCountsInto(assign)
	resII := resIIFrom(m, counts)

	base := ii
	if resII > base {
		base = resII
	}
	if est.iiBus > base {
		base = est.iiBus
	}
	t, used := g.EstimateTimeInto(m, base, p.extra, &p.sc.times)
	est.t, est.ii = t, used
	est.slackII = used

	// Complete the ALAP times at used for the cut-slack tie-break.
	g.LatestInto(m, p.extra, &p.sc.times)
	for i, e := range g.Edges {
		if e.Kind == ddg.Data && assign[e.From] != assign[e.To] {
			est.cutSlack += int64(g.Slack(&p.sc.times, i, p.extra))
		}
	}

	if p.opts.RegisterAware {
		// Estimate per-cluster register pressure from the ASAP lifetimes
		// and charge the spill traffic of overflowing values as extra
		// memory-port load, possibly raising the II (DESIGN.md A6; the
		// paper's §4.2 future-work suggestion).
		if extraMemII := p.spillPressureII(assign, &p.sc.times, counts); extraMemII > used {
			t2, used2 := g.EstimateTimeInto(m, extraMemII, p.extra, &p.sc.times)
			est.t, est.ii = t2, used2
		}
	}
	return est
}

// resIIFrom returns the per-cluster resource MII (heterogeneous unit mixes:
// each cluster is bounded by its own units).
func resIIFrom(m *machine.Config, counts [][isa.NumUnitKinds]int) int {
	resII := 1
	for c := 0; c < m.Clusters; c++ {
		for k := 0; k < isa.NumUnitKinds; k++ {
			if counts[c][k] == 0 {
				continue
			}
			units := m.UnitsIn(c, isa.UnitKind(k))
			if units == 0 {
				resII = 1 << 20 // unschedulable partition
				continue
			}
			if v := ceilDiv(counts[c][k], units); v > resII {
				resII = v
			}
		}
	}
	return resII
}

// spillPressureII estimates, per cluster, the steady-state register
// pressure Σ lifetimes / II; values beyond the register file each cost a
// store and a load per iteration on the cluster's memory ports. It returns
// the resulting resource-MII bound (which equals times.II when nothing
// overflows).
func (p *Partitioner) spillPressureII(assign []int, times *ddg.Times, counts [][isa.NumUnitKinds]int) int {
	g, m := p.g, p.m
	ii := times.II
	lifetime := resizeInt64s(p.sc.lifetime, m.Clusters)
	p.sc.lifetime = lifetime
	for i := range lifetime {
		lifetime[i] = 0
	}
	for u := range g.Nodes {
		if !g.Nodes[u].Op.ProducesValue() {
			continue
		}
		def := times.Earliest[u] + m.OpLatency(g.Nodes[u].Op)
		end := def + 1
		for _, ei := range g.Out(u) {
			e := g.Edges[ei]
			if e.Kind != ddg.Data {
				continue
			}
			if use := times.Earliest[e.To] + ii*e.Dist + 1; use > end {
				end = use
			}
		}
		lifetime[assign[u]] += int64(end - def)
	}
	worst := ii
	for c := 0; c < m.Clusters; c++ {
		memUnits := m.UnitsIn(c, isa.MemUnit)
		if memUnits == 0 {
			continue
		}
		maxLive := int((lifetime[c] + int64(ii) - 1) / int64(ii))
		over := maxLive - m.RegsIn(c)
		if over <= 0 {
			continue
		}
		memOps := counts[c][isa.MemUnit] + 2*over
		if v := ceilDiv(memOps, memUnits); v > worst {
			worst = v
		}
	}
	return worst
}

// clusterCountsInto fills the scratch per-cluster operation counts by unit
// kind and returns them.
func (p *Partitioner) clusterCountsInto(assign []int) [][isa.NumUnitKinds]int {
	if cap(p.sc.counts) >= p.m.Clusters {
		p.sc.counts = p.sc.counts[:p.m.Clusters]
	} else {
		p.sc.counts = make([][isa.NumUnitKinds]int, p.m.Clusters)
	}
	counts := p.sc.counts
	for i := range counts {
		counts[i] = [isa.NumUnitKinds]int{}
	}
	for v, n := range p.g.Nodes {
		counts[assign[v]][n.Op.Unit()]++
	}
	return counts
}

// groupCounts returns the per-unit-kind operation counts of one macro-node.
func (p *Partitioner) groupCounts(members []int) [isa.NumUnitKinds]int {
	var c [isa.NumUnitKinds]int
	for _, v := range members {
		c[p.g.Nodes[v].Op.Unit()]++
	}
	return c
}

// groupCountsOf returns the level's per-group unit counts, computed once
// (the groups of a level never change; only their cluster assignment does).
func (p *Partitioner) groupCountsOf(lv *level) [][isa.NumUnitKinds]int {
	if !lv.gcsOK {
		if cap(lv.gcs) >= len(lv.groups) {
			lv.gcs = lv.gcs[:len(lv.groups)]
		} else {
			lv.gcs = make([][isa.NumUnitKinds]int, len(lv.groups))
		}
		for gi, members := range lv.groups {
			lv.gcs[gi] = p.groupCounts(members)
		}
		lv.gcsOK = true
	}
	return lv.gcs
}

// maxMoves returns the refinement move cap for one level.
func (p *Partitioner) maxMoves() int {
	if p.opts.MaxMoves > 0 {
		return p.opts.MaxMoves
	}
	return 4*p.g.N() + 16
}

// balance implements the workload-balancing heuristic (§3.2.2): while any
// per-cluster resource exceeds 100% utilization at the current II estimate,
// move macro-nodes that use the most saturated resource out of the
// overloaded cluster, provided the destination does not become overloaded
// on that resource or any more-critical resource already handled.
func (p *Partitioner) balance(lv *level, en *engine, ii int) int {
	m := p.m
	moves := 0
	limit := p.maxMoves()
	gcs := p.groupCountsOf(lv)
	for moves < limit {
		// Only the capping II is needed here — skip the cut-slack
		// tie-break half of the estimate.
		cur := en.estimateFast(ii)
		capII := cur.ii
		counts := en.counts

		// Find the most saturated overloaded (cluster, kind), measured by
		// utilization ratio ops/(units·II).
		worstC, worstK, worstRatio, found := 0, 0, 0.0, false
		for c := 0; c < m.Clusters; c++ {
			for k := 0; k < isa.NumUnitKinds; k++ {
				units := m.UnitsIn(c, isa.UnitKind(k))
				if counts[c][k] == 0 || counts[c][k] <= units*capII {
					continue
				}
				// A cluster with zero units of a kind it was assigned ops of
				// is infinitely overloaded: those ops can never issue there.
				r := math.Inf(1)
				if units > 0 {
					r = float64(counts[c][k]) / float64(units*capII)
				}
				if !found || r > worstRatio {
					worstC, worstK, worstRatio, found = c, k, r, true
				}
			}
		}
		if !found {
			return moves // nothing overloaded
		}

		// Try moving a group that uses the overloaded resource out of the
		// cluster, preferring the group whose departure relieves the most.
		// The destination scan is first-fit by construction (the first
		// feasible cluster in index order wins; see TestBalanceFirstFit);
		// Options.BalanceBestFit instead scans all destinations and takes
		// the one least loaded on the overloaded resource.
		bestGi, bestC2, bestUse := -1, -1, 0
		for gi := range lv.groups {
			members := lv.groups[gi]
			if len(members) == 0 || en.assign[members[0]] != worstC {
				continue
			}
			gc := gcs[gi]
			if gc[worstK] == 0 {
				continue
			}
			destC2 := -1
			for c2 := 0; c2 < m.Clusters; c2++ {
				if c2 == worstC {
					continue
				}
				units := m.UnitsIn(c2, isa.UnitKind(worstK))
				if counts[c2][worstK]+gc[worstK] > units*capII {
					continue // would overload the destination
				}
				if p.opts.BalanceBestFit {
					if destC2 == -1 || counts[c2][worstK] < counts[destC2][worstK] {
						destC2 = c2
					}
					continue
				}
				destC2 = c2
				break
			}
			if destC2 >= 0 && gc[worstK] > bestUse {
				bestGi, bestC2, bestUse = gi, destC2, gc[worstK]
			}
		}
		if bestGi == -1 {
			// No beneficial movement at this granularity; wait for a finer
			// level (paper: "we wait for the next step").
			return moves
		}
		en.move(lv.groups[bestGi], bestC2)
		moves++
	}
	return moves
}

// minimizeCut implements the cut-impact heuristic (§3.2.2): repeatedly
// evaluate all single macro-node moves toward a neighbor's cluster and,
// when resources do not allow a move, all pair interchanges; apply the
// transformation with the largest execution-time benefit (ties: maximize
// slack of cut edges, then minimize the cut size); stop when no
// transformation has positive benefit.
//
// Candidate evaluation is incremental: each candidate is applied to the
// engine (O(affected edges)), screened against a proven lower bound on its
// execution time, fully estimated only when the bound cannot rule it out,
// and undone. The screen is conservative — a rejected candidate's true
// estimate is strictly worse than the incumbent's on the primary key — so
// the chosen move sequence is identical to exhaustive full evaluation
// (TestEngineMoveSequenceEquivalence pins this).
func (p *Partitioner) minimizeCut(lv *level, en *engine, ii int) int {
	m := p.m
	moves := 0
	limit := p.maxMoves()
	gcs := p.groupCountsOf(lv)

	owner := resizeInts(p.sc.owner, p.g.N())
	p.sc.owner = owner
	for gi, members := range lv.groups {
		for _, v := range members {
			owner[v] = gi
		}
	}
	// Neighbor groups via original data edges: a sorted, deduplicated CSR
	// adjacency built once per level, so the per-iteration scans below are
	// deterministic and allocation-free.
	nbrHead, nbrList := p.buildGroupAdjacency(owner, len(lv.groups))
	p.sc.destSeen = resizeBools(p.sc.destSeen, m.Clusters)
	for i := range p.sc.destSeen {
		p.sc.destSeen[i] = false
	}

	for moves < limit {
		cur := en.estimate(ii)
		counts := en.counts
		capII := cur.ii

		type move struct {
			gi, c2 int // single move: group gi → cluster c2
			swapGj int // ≥ 0: interchange with group gj (in c2)
			est    estimate
		}
		var best move
		haveBest := false

		consider := func(mv move, e estimate) {
			if !haveBest || e.better(best.est) {
				mv.est = e
				best = mv
				haveBest = true
			}
		}

		// evalCandidate estimates the move just applied to the engine, in
		// three stages of increasing cost, each rejecting only candidates
		// that provably cannot change the chosen move. A candidate is
		// applied only when its t is strictly below cur.t, and displaces
		// the incumbent only when it at least ties best's t — so t ≥ cur.t
		// (or a lower bound on t ≥ cur.t) rules a candidate out entirely:
		// any real winner beats it on the primary key, and when no winner
		// exists the iteration terminates identically. The stages:
		//  1. a closed-form lower bound on t from the maintained tallies,
		//  2. the exact t (forward longest-path analysis only),
		//  3. the cut-slack tie-break (ALAP pass), computed last and only
		//     for candidates still in the running.
		evalCandidate := func() (estimate, bool) {
			if p.debugFullEval {
				p.screenFull++
				return p.evaluate(en.assign, ii), true
			}
			lb := en.lowerBoundT(ii)
			if lb >= cur.t || (haveBest && lb > best.est.t) {
				p.screenLB++
				return estimate{}, false
			}
			e := en.estimateFast(ii)
			if e.t >= cur.t || (haveBest && e.t > best.est.t) {
				p.screenExact++
				return estimate{}, false
			}
			p.screenFull++
			en.finishSlack(&e)
			return e, true
		}

		fits := func(gc [isa.NumUnitKinds]int, c2 int, minus [isa.NumUnitKinds]int) bool {
			for k := 0; k < isa.NumUnitKinds; k++ {
				if gc[k] == 0 {
					continue
				}
				units := m.UnitsIn(c2, isa.UnitKind(k))
				if counts[c2][k]-minus[k]+gc[k] > units*capII {
					return false
				}
			}
			return true
		}

		for gi := range lv.groups {
			members := lv.groups[gi]
			if len(members) == 0 {
				continue
			}
			c1 := en.assign[members[0]]
			gc := gcs[gi]
			// Candidate destination clusters: clusters of neighbor groups,
			// deduplicated and in ascending order.
			dests := p.sc.dests[:0]
			for _, nb := range nbrList[nbrHead[gi]:nbrHead[gi+1]] {
				if len(lv.groups[nb]) == 0 {
					continue
				}
				c := en.assign[lv.groups[nb][0]]
				if c == c1 || p.sc.destSeen[c] {
					continue
				}
				p.sc.destSeen[c] = true
				dests = append(dests, c)
			}
			p.sc.dests = dests
			for _, c := range dests {
				p.sc.destSeen[c] = false
			}
			sortInts(dests)
			for _, c2 := range dests {
				if fits(gc, c2, [isa.NumUnitKinds]int{}) {
					en.move(members, c2)
					if e, ok := evalCandidate(); ok {
						consider(move{gi: gi, c2: c2, swapGj: -1}, e)
					}
					en.move(members, c1)
					continue
				}
				// Single move does not fit: consider interchanges with
				// groups currently in c2 (paper: "all feasible interchanges
				// between pairs of nodes").
				for gj := range lv.groups {
					other := lv.groups[gj]
					if gj == gi || len(other) == 0 || en.assign[other[0]] != c2 {
						continue
					}
					oc := gcs[gj]
					if !fits(gc, c2, oc) || !fitsReverse(p, counts, oc, gc, c1, capII) {
						continue
					}
					en.move(members, c2)
					en.move(other, c1)
					if e, ok := evalCandidate(); ok {
						consider(move{gi: gi, c2: c2, swapGj: gj}, e)
					}
					en.move(other, c2)
					en.move(members, c1)
				}
			}
		}

		if !haveBest || !best.est.better(cur) || best.est.t >= cur.t {
			return moves // no strictly positive execution-time benefit
		}
		members := lv.groups[best.gi]
		c1 := en.assign[members[0]]
		en.move(members, best.c2)
		if best.swapGj >= 0 {
			en.move(lv.groups[best.swapGj], c1)
		}
		moves++
	}
	return moves
}

// buildGroupAdjacency returns the macro-node neighbor lists as a CSR pair
// (head, list): group gi's neighbors are list[head[gi]:head[gi+1]], sorted
// ascending and deduplicated. Built once per refinement level into the
// arena's buffers (explicitly re-zeroed: arena contents are unspecified).
func (p *Partitioner) buildGroupAdjacency(owner []int, nG int) (head, list []int) {
	g, ar := p.g, p.ar
	head = resizeInts(ar.nbrHead, nG+1)
	ar.nbrHead = head
	for i := range head {
		head[i] = 0
	}
	for _, e := range g.Edges {
		if e.Kind != ddg.Data {
			continue
		}
		a, b := owner[e.From], owner[e.To]
		if a == b {
			continue
		}
		head[a+1]++
		head[b+1]++
	}
	for i := 0; i < nG; i++ {
		head[i+1] += head[i]
	}
	list = resizeInts(ar.nbrList, head[nG])
	ar.nbrList = list
	fill := resizeInts(ar.nbrFill, nG)
	ar.nbrFill = fill
	for i := range fill {
		fill[i] = 0
	}
	for _, e := range g.Edges {
		if e.Kind != ddg.Data {
			continue
		}
		a, b := owner[e.From], owner[e.To]
		if a == b {
			continue
		}
		list[head[a]+fill[a]] = b
		fill[a]++
		list[head[b]+fill[b]] = a
		fill[b]++
	}
	// Sort and deduplicate each row in place, compacting list and head.
	w := 0
	prevEnd := 0
	for gi := 0; gi < nG; gi++ {
		row := list[prevEnd:head[gi+1]]
		prevEnd = head[gi+1]
		sortInts(row)
		start := w
		for i, v := range row {
			if i == 0 || v != list[w-1] {
				list[w] = v
				w++
			}
		}
		head[gi] = start
	}
	// head[gi] now holds the compacted row starts (rows stay contiguous,
	// so each row's end is the next row's start); w is the final sentinel.
	head[nG] = w
	return head, list[:w]
}

// fitsReverse checks the source-cluster side of an interchange: after the
// swap, cluster c1 holds its ops minus gc plus oc without overloading.
func fitsReverse(p *Partitioner, counts [][isa.NumUnitKinds]int, oc, gc [isa.NumUnitKinds]int, c1, capII int) bool {
	for k := 0; k < isa.NumUnitKinds; k++ {
		if oc[k] == 0 {
			continue
		}
		units := p.m.UnitsIn(c1, isa.UnitKind(k))
		if counts[c1][k]-gc[k]+oc[k] > units*capII {
			return false
		}
	}
	return true
}

// sortInts is an allocation-free insertion sort for the short slices
// (cluster lists, adjacency rows) the refinement loop handles.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// resizeInts returns s resliced to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func resizeInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func resizeInt64s(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}
