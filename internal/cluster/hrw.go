package cluster

import (
	"hash/fnv"
	"math"
	"sort"
)

// Placement is rendezvous (highest-random-weight) hashing on the request's
// content-address key: every coordinator ranks every node for a key by
// hashing (node, key) pairs and picks the highest score. Identical requests
// therefore always land on the same worker while that worker is placeable,
// which turns the per-worker LRU caches into one sharded distributed cache
// — and when a node joins or leaves, only the keys whose top-ranked node
// changed move, unlike mod-N hashing where nearly everything reshuffles.

// hrwScore is the rendezvous weight of (node, key). FNV-1a over
// node \x00 key: placement is not an integrity boundary (the key itself is
// already a sha256 content address), it just has to be fast, well mixed and
// stable across coordinator restarts.
func hrwScore(nodeID, key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(nodeID))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// hrwRank orders nodes by descending rendezvous weight for key, breaking
// the (astronomically unlikely) score tie by ID so the order is total and
// deterministic. The full ranking is the failover order: attempt i+1 goes
// to the (i+1)-th ranked node.
func hrwRank(nodes []candidate, key string) []candidate {
	ranked := make([]candidate, len(nodes))
	copy(ranked, nodes)
	scores := make(map[string]uint64, len(ranked))
	for _, n := range ranked {
		scores[n.id] = hrwScore(n.id, key)
	}
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := scores[ranked[i].id], scores[ranked[j].id]
		if si != sj {
			return si > sj
		}
		return ranked[i].id < ranked[j].id
	})
	return ranked
}

// place picks the highest-ranked placeable node for key that is not in
// exclude. The zero candidate and false mean no node qualifies. This is
// the proxy hot path (once per request and per cell attempt), so it is a
// single allocation-free argmax scan rather than a full hrwRank sort; the
// tie-break matches hrwRank's, so place(exclude) always returns the first
// non-excluded entry of the ranking (tests pin the equivalence).
// placeBounded is place with a load bound (consistent hashing with bounded
// loads): the HRW owner serves the key only while its in-flight count stays
// under ceil(bound·(m+1)/n), where m is the total in-flight across the
// non-excluded candidates and n their count. An overloaded owner spills to
// the next node in HRW rank order that is under the bound — so under a
// Zipf-skewed workload the hot key fans out across the ranking instead of
// melting its owner, while an idle fleet keeps perfect cache affinity (every
// node is under the bound, so the owner always wins). bound ≤ 0 disables the
// check and degenerates to plain place. spilled reports that a node other
// than the HRW owner was picked. If no candidate is under the bound (bound
// < 1 can starve everyone) the owner serves anyway: bounded load must never
// turn a placeable fleet into a 503.
func placeBounded(nodes []candidate, key string, exclude map[string]bool, bound float64) (picked candidate, spilled, ok bool) {
	picked, _, _, spilled, ok = placeBoundedOwner(nodes, key, exclude, bound)
	return picked, spilled, ok
}

// placeBoundedOwner is placeBounded, additionally reporting the key's HRW
// owner among the non-excluded candidates and the picked node's rank in the
// failover order (0 = the owner itself). The decision is identical to
// placeBounded's; the extra returns exist so callers can attribute a spill —
// which node shed the key, which absorbed it, how far down the ranking it
// traveled — in traces and per-node metrics.
func placeBoundedOwner(nodes []candidate, key string, exclude map[string]bool, bound float64) (picked candidate, owner string, rank int, spilled, ok bool) {
	if bound <= 0 {
		picked, ok = place(nodes, key, exclude)
		return picked, picked.id, 0, false, ok
	}
	eligible := make([]candidate, 0, len(nodes))
	var total int64
	for _, n := range nodes {
		if exclude[n.id] {
			continue
		}
		eligible = append(eligible, n)
		total += n.inflight
	}
	if len(eligible) == 0 {
		return candidate{}, "", 0, false, false
	}
	threshold := int64(math.Ceil(bound * float64(total+1) / float64(len(eligible))))
	ranked := hrwRank(eligible, key)
	for i, n := range ranked {
		if n.inflight+1 <= threshold {
			return n, ranked[0].id, i, i > 0, true
		}
	}
	return ranked[0], ranked[0].id, 0, false, true
}

func place(nodes []candidate, key string, exclude map[string]bool) (candidate, bool) {
	var best candidate
	var bestScore uint64
	found := false
	for _, n := range nodes {
		if exclude[n.id] {
			continue
		}
		s := hrwScore(n.id, key)
		if !found || s > bestScore || (s == bestScore && n.id < best.id) {
			best, bestScore, found = n, s, true
		}
	}
	return best, found
}
