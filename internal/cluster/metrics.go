package cluster

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// metrics holds the coordinator's counters, Prometheus-style monotonic
// totals. Per-node request/failure counters and the health gauges live on
// the registry and are rendered from its snapshot.
type metrics struct {
	requests     atomic.Int64 // every HTTP request seen
	scheduleReqs atomic.Int64
	batchReqs    atomic.Int64 // /v1/schedule/batch requests
	batchLoops   atomic.Int64 // loops fanned out from batch requests
	placements   atomic.Int64 // successful placement decisions
	spills       atomic.Int64 // placements bounded-load moved off the HRW owner
	retries      atomic.Int64 // re-placements after a worker 429/503
	failovers    atomic.Int64 // re-placements after a worker failure
	noCapacity   atomic.Int64 // requests shed because no node was placeable
	badRequests  atomic.Int64

	// placeTransitions counts every placement-protocol edge taken,
	// [from][to]-indexed; placeInvalid counts refused illegal edges.
	placeTransitions [placeStates][placeStates]atomic.Int64
	placeInvalid     atomic.Int64

	schemaRefusals atomic.Int64 // register/heartbeat refused for a mixed wire schema
	drainFlips     atomic.Int64 // operator drain/undrain requests applied

	jobsCreated      atomic.Int64
	jobsDone         atomic.Int64
	jobsFailed       atomic.Int64
	cellsDone        atomic.Int64
	cellsRequeued    atomic.Int64 // cell attempts redone on another node
	reconcilePlaced  atomic.Int64 // cells canceled off dead nodes by the reconciler
	exclusionsResets atomic.Int64 // cells that exhausted the fleet and started over

	storeErrors   atomic.Int64 // best-effort persistence failures
	nodesAdopted  atomic.Int64 // nodes adopted from the journal at startup
	jobsResumed   atomic.Int64 // unfinished jobs re-dispatched at startup
	cellsRestored atomic.Int64 // done cells restored from the journal, not recomputed

	cacheFlushes    atomic.Int64 // fleet cache-flush fan-outs
	versionRefusals atomic.Int64 // placements refused to avoid mixing algorithm versions in a job
	shadowSampled   atomic.Int64 // schedule responses replayed against a shadow worker
	shadowMismatch  atomic.Int64 // shadow replays whose bytes diverged

	// durations is gpcoordd_request_duration_seconds{endpoint,outcome}: the
	// proxy path's latency histograms over the fleet-shared bucket layout
	// (obs.LatencyBuckets), from which the p50/p99 gauges are derived.
	// Outcomes classify how placement resolved: owner (served by the HRW
	// owner), spill (bounded load moved it), failover (at least one worker
	// failed first), and the terminal failures.
	durations *obs.Vec

	// spillClasses tracks which key classes (first 8 hex chars of the
	// content-address key) spill most, as a space-saving top-K counter so
	// gpcoordd_spills_total{key_class=...} stays bounded-cardinality no
	// matter how many distinct keys pass through.
	spillClasses *obs.TopK
}

// spillClassK bounds the labeled spill series; spillClassLen is the key
// prefix used as the class label.
const (
	spillClassK   = 8
	spillClassLen = 8
)

// keyClass is the low-cardinality spill-attribution label for a
// content-address key.
func keyClass(key string) string {
	if len(key) > spillClassLen {
		return key[:spillClassLen]
	}
	return key
}

// init wires the histogram family and the spill-class counter; must run
// before any observation.
func (m *metrics) init() {
	m.durations = obs.NewVec()
	m.spillClasses = obs.NewTopK(spillClassK)
}

// observe records one proxied request's duration under its endpoint and
// placement outcome.
func (m *metrics) observe(endpoint, outcome string, d time.Duration) {
	m.durations.With(fmt.Sprintf("endpoint=%q,outcome=%q", endpoint, outcome)).Observe(d)
}

// noteSpill feeds the per-key-class spill counter.
func (m *metrics) noteSpill(key string) {
	m.spillClasses.Add(keyClass(key))
}

// coordGauges is the lint allowlist for gpcoordd metric names that are
// neither counters nor histogram series. The metrics test and the smoke
// observability phase check /metrics against it.
var coordGauges = map[string]bool{
	"gpcoordd_fleet_advice":            true,
	"gpcoordd_jobs_running":            true,
	"gpcoordd_fleet_epoch":             true,
	"gpcoordd_recovery_nodes_adopted":  true,
	"gpcoordd_recovery_jobs_resumed":   true,
	"gpcoordd_recovery_cells_restored": true,
	"gpcoordd_nodes":                   true,
	"gpcoordd_node_health":             true,
	"gpcoordd_node_epoch":              true,
	"gpcoordd_node_inflight":           true,
	"gpcoordd_node_draining":           true,
	"gpcoordd_latency_p50_seconds":     true,
	"gpcoordd_latency_p99_seconds":     true,
}

// render writes the coordinator metrics in the Prometheus text exposition
// format, including one health gauge (0 ready / 1 suspect / 2 dead) and the
// routed/failed counters per registered node, plus the store's write and
// replay traffic.
func (m *metrics) render(w io.Writer, nodes []NodeInfo, jobsRunning int, epoch uint64, st store.Stats, advice FleetAdvice) {
	fmt.Fprintf(w, "gpcoordd_requests_total %d\n", m.requests.Load())
	fmt.Fprintf(w, "gpcoordd_schedule_requests_total %d\n", m.scheduleReqs.Load())
	fmt.Fprintf(w, "gpcoordd_batch_requests_total %d\n", m.batchReqs.Load())
	fmt.Fprintf(w, "gpcoordd_batch_loops_total %d\n", m.batchLoops.Load())
	fmt.Fprintf(w, "gpcoordd_placements_total %d\n", m.placements.Load())
	// The unlabeled total renders first — existing scrapers (and the smoke
	// script's sed) parse it positionally — then the bounded top-K key-class
	// attribution as labeled series of the same family.
	fmt.Fprintf(w, "gpcoordd_spills_total %d\n", m.spills.Load())
	for _, e := range m.spillClasses.Snapshot() {
		fmt.Fprintf(w, "gpcoordd_spills_total{key_class=%q} %d\n", e.Key, e.Count)
	}
	for from := placementState(0); from < placeStates; from++ {
		for to := placementState(0); to < placeStates; to++ {
			if n := m.placeTransitions[from][to].Load(); n > 0 {
				fmt.Fprintf(w, "gpcoordd_placement_transitions_total{from=%q,to=%q} %d\n", from.String(), to.String(), n)
			}
		}
	}
	if n := m.placeInvalid.Load(); n > 0 {
		fmt.Fprintf(w, "gpcoordd_placement_invalid_transitions_total %d\n", n)
	}
	fmt.Fprintf(w, "gpcoordd_schema_refusals_total %d\n", m.schemaRefusals.Load())
	fmt.Fprintf(w, "gpcoordd_drain_flips_total %d\n", m.drainFlips.Load())
	fmt.Fprintf(w, "gpcoordd_fleet_advice %d\n", adviceValue(advice.Advice))
	fmt.Fprintf(w, "gpcoordd_retries_total %d\n", m.retries.Load())
	fmt.Fprintf(w, "gpcoordd_failovers_total %d\n", m.failovers.Load())
	fmt.Fprintf(w, "gpcoordd_no_capacity_total %d\n", m.noCapacity.Load())
	fmt.Fprintf(w, "gpcoordd_bad_requests_total %d\n", m.badRequests.Load())
	fmt.Fprintf(w, "gpcoordd_jobs_created_total %d\n", m.jobsCreated.Load())
	fmt.Fprintf(w, "gpcoordd_jobs_done_total %d\n", m.jobsDone.Load())
	fmt.Fprintf(w, "gpcoordd_jobs_failed_total %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "gpcoordd_jobs_running %d\n", jobsRunning)
	fmt.Fprintf(w, "gpcoordd_cells_done_total %d\n", m.cellsDone.Load())
	fmt.Fprintf(w, "gpcoordd_cells_requeued_total %d\n", m.cellsRequeued.Load())
	fmt.Fprintf(w, "gpcoordd_reconcile_replacements_total %d\n", m.reconcilePlaced.Load())
	fmt.Fprintf(w, "gpcoordd_exclusion_resets_total %d\n", m.exclusionsResets.Load())
	fmt.Fprintf(w, "gpcoordd_fleet_epoch %d\n", epoch)
	fmt.Fprintf(w, "gpcoordd_cache_flushes_total %d\n", m.cacheFlushes.Load())
	fmt.Fprintf(w, "gpcoordd_version_refusals_total %d\n", m.versionRefusals.Load())
	fmt.Fprintf(w, "gpcoordd_shadow_sampled_total %d\n", m.shadowSampled.Load())
	fmt.Fprintf(w, "gpcoordd_shadow_mismatch_total %d\n", m.shadowMismatch.Load())
	fmt.Fprintf(w, "gpcoordd_store_appends_total %d\n", st.Appends)
	fmt.Fprintf(w, "gpcoordd_store_appended_bytes_total %d\n", st.AppendedBytes)
	fmt.Fprintf(w, "gpcoordd_store_compactions_total %d\n", st.Compactions)
	fmt.Fprintf(w, "gpcoordd_store_replayed_records_total %d\n", st.ReplayedRecords)
	fmt.Fprintf(w, "gpcoordd_store_truncated_bytes_total %d\n", st.TruncatedBytes)
	fmt.Fprintf(w, "gpcoordd_store_errors_total %d\n", m.storeErrors.Load())
	fmt.Fprintf(w, "gpcoordd_recovery_nodes_adopted %d\n", m.nodesAdopted.Load())
	fmt.Fprintf(w, "gpcoordd_recovery_jobs_resumed %d\n", m.jobsResumed.Load())
	fmt.Fprintf(w, "gpcoordd_recovery_cells_restored %d\n", m.cellsRestored.Load())
	fmt.Fprintf(w, "gpcoordd_nodes %d\n", len(nodes))
	for _, n := range nodes {
		health := 0
		switch n.State {
		case NodeSuspect.String():
			health = 1
		case NodeDead.String():
			health = 2
		}
		fmt.Fprintf(w, "gpcoordd_node_health{node=%q} %d\n", n.ID, health)
		fmt.Fprintf(w, "gpcoordd_node_requests_total{node=%q} %d\n", n.ID, n.Requests)
		fmt.Fprintf(w, "gpcoordd_node_failures_total{node=%q} %d\n", n.ID, n.Failures)
		fmt.Fprintf(w, "gpcoordd_node_epoch{node=%q} %d\n", n.ID, n.Epoch)
		fmt.Fprintf(w, "gpcoordd_node_inflight{node=%q} %d\n", n.ID, n.Inflight)
		if n.SpillOut > 0 {
			fmt.Fprintf(w, "gpcoordd_node_spill_out_total{node=%q} %d\n", n.ID, n.SpillOut)
		}
		if n.SpillIn > 0 {
			fmt.Fprintf(w, "gpcoordd_node_spill_in_total{node=%q} %d\n", n.ID, n.SpillIn)
		}
		if n.Draining {
			fmt.Fprintf(w, "gpcoordd_node_draining{node=%q} 1\n", n.ID)
		}
	}
	fmt.Fprintf(w, "gpcoordd_latency_p50_seconds %g\n", m.durations.Quantile(0.50).Seconds())
	fmt.Fprintf(w, "gpcoordd_latency_p99_seconds %g\n", m.durations.Quantile(0.99).Seconds())
	m.durations.Write(w, "gpcoordd_request_duration_seconds")
}
