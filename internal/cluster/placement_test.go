package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/server"
)

// Unit coverage for bounded-load HRW: the spill order is exactly the HRW
// ranking, the bound only engages when the owner is actually overloaded,
// and a fleet where nobody fits still serves from the owner rather than
// turning placeable capacity into a 503.
func TestPlaceBoundedSpillOrder(t *testing.T) {
	key := "spill-order-key"
	base := []candidate{{id: "nA"}, {id: "nB"}, {id: "nC"}}
	ranked := hrwRank(base, key)
	owner, second, third := ranked[0], ranked[1], ranked[2]

	withLoad := func(load map[string]int64) []candidate {
		out := make([]candidate, len(base))
		copy(out, base)
		for i := range out {
			out[i].inflight = load[out[i].id]
		}
		return out
	}

	// Idle fleet: perfect cache affinity, the owner always wins.
	got, spilled, ok := placeBounded(base, key, nil, 1.25)
	if !ok || spilled || got.id != owner.id {
		t.Fatalf("idle fleet: got %q spilled=%v ok=%v, want owner %q", got.id, spilled, ok, owner.id)
	}

	// Overloaded owner: 8 in flight against an otherwise idle 3-node fleet
	// puts the owner past ceil(1.25·9/3)=4, so the key spills to exactly
	// the next node in HRW rank order.
	got, spilled, ok = placeBounded(withLoad(map[string]int64{owner.id: 8}), key, nil, 1.25)
	if !ok || !spilled || got.id != second.id {
		t.Fatalf("overloaded owner: got %q spilled=%v ok=%v, want spill to %q", got.id, spilled, ok, second.id)
	}

	// Both the owner and the next-ranked node overloaded: the spill walks
	// one more rank down.
	got, spilled, ok = placeBounded(withLoad(map[string]int64{owner.id: 8, second.id: 8}), key, nil, 1.25)
	if !ok || !spilled || got.id != third.id {
		t.Fatalf("two overloaded: got %q spilled=%v ok=%v, want spill to %q", got.id, spilled, ok, third.id)
	}

	// Nobody under the bound (a sub-1 bound with uniform load starves every
	// node): the owner serves anyway instead of failing the request.
	got, spilled, ok = placeBounded(withLoad(map[string]int64{owner.id: 5, second.id: 5, third.id: 5}), key, nil, 0.5)
	if !ok || spilled || got.id != owner.id {
		t.Fatalf("all over bound: got %q spilled=%v ok=%v, want owner %q fallback", got.id, spilled, ok, owner.id)
	}

	// Exclusion composes: with the owner excluded the next-ranked node is
	// the de-facto owner, not a spill.
	got, spilled, ok = placeBounded(base, key, map[string]bool{owner.id: true}, 1.25)
	if !ok || spilled || got.id != second.id {
		t.Fatalf("owner excluded: got %q spilled=%v ok=%v, want %q", got.id, spilled, ok, second.id)
	}

	// bound <= 0 degenerates to plain HRW place().
	want, wantOK := place(base, key, map[string]bool{owner.id: true})
	got, spilled, ok = placeBounded(base, key, map[string]bool{owner.id: true}, 0)
	if ok != wantOK || spilled || got.id != want.id {
		t.Fatalf("bound 0: got %q spilled=%v ok=%v, want place() result %q", got.id, spilled, ok, want.id)
	}

	// Empty eligible set: not placeable.
	if _, _, ok = placeBounded(nil, key, nil, 1.25); ok {
		t.Fatal("no candidates: placeBounded reported ok")
	}
}

// The placement protocol's transition table: legal edges are counted,
// illegal ones are refused, counted, and leave the state untouched.
func TestPlacementProtocolTransitions(t *testing.T) {
	coord, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	pl := coord.newPlacement("proto-key", false)
	if pl.state != placePending {
		t.Fatalf("new placement state %v, want pending", pl.state)
	}
	pl.prepare(candidate{id: "ghost"}, true)
	if pl.state != placePreparing {
		t.Fatalf("after prepare: %v", pl.state)
	}
	if got := coord.metrics.spills.Load(); got != 1 {
		t.Fatalf("spills = %d, want 1", got)
	}
	pl.abort()
	if pl.state != placePending || !pl.exclude["ghost"] {
		t.Fatalf("after abort: state %v exclude %v", pl.state, pl.exclude)
	}
	pl.prepare(candidate{id: "ghost2"}, false)
	pl.ready()
	if pl.state != placeReady {
		t.Fatalf("after ready: %v", pl.state)
	}
	pl.drop()
	if pl.state != placeDropped {
		t.Fatalf("after drop: %v", pl.state)
	}
	for _, tc := range []struct {
		from, to placementState
		want     int64
	}{
		{placePending, placePreparing, 2}, // first attempt + re-prepare after abort
		{placePreparing, placePending, 1},
		{placePreparing, placeReady, 1},
		{placeReady, placeDropped, 1},
	} {
		if got := coord.metrics.placeTransitions[tc.from][tc.to].Load(); got != tc.want {
			t.Fatalf("transition %v->%v counted %d times, want %d", tc.from, tc.to, got, tc.want)
		}
	}

	// Illegal edge: Pending→Ready is not in the protocol.
	bad := coord.newPlacement("bad-key", false)
	bad.transition(placeReady)
	if bad.state != placePending {
		t.Fatalf("illegal transition changed state to %v", bad.state)
	}
	if got := coord.metrics.placeInvalid.Load(); got != 1 {
		t.Fatalf("placeInvalid = %d, want 1", got)
	}
}

// The /v1/fleet API group: /v1/fleet/nodes supersedes /v1/nodes (same
// listing, old path still answering), the listing carries the load and
// schema fields, and /v1/fleet/advice returns a well-formed verdict.
func TestFleetNodesAndAdvice(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	startWorker(t, base, "wA")
	startWorker(t, base, "wB")
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	getJSON := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: %v\n%s", path, err, body)
		}
	}

	var fleet, legacy []map[string]any
	getJSON("/v1/fleet/nodes", &fleet)
	getJSON("/v1/nodes", &legacy)
	if len(fleet) != 2 || len(legacy) != 2 {
		t.Fatalf("fleet=%d legacy=%d nodes, want 2 each", len(fleet), len(legacy))
	}
	for _, n := range fleet {
		if n["state"] != "ready" {
			t.Fatalf("fleet node not ready: %v", n)
		}
		for _, field := range []string{"id", "inflight", "epoch"} {
			if _, present := n[field]; !present {
				t.Fatalf("fleet listing missing %q: %v", field, n)
			}
		}
	}

	// The advisor ticks with the reconcile loop; poll until it has seen
	// the full fleet.
	var adv FleetAdvice
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON("/v1/fleet/advice", &adv)
		if adv.ReadyNodes == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("advice never saw 2 ready nodes: %+v", adv)
		}
		time.Sleep(10 * time.Millisecond)
	}
	switch adv.Advice {
	case "hold", "scale_up", "scale_down":
	default:
		t.Fatalf("advice verdict %q not in the vocabulary", adv.Advice)
	}
	if adv.Reason == "" {
		t.Fatalf("advice carries no reason: %+v", adv)
	}
}

// Draining: an operator drain moves new placements off the node while it
// stays registered, undrain restores it, and an unknown node is a
// not_found envelope.
func TestDrainUndrain(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	startWorker(t, base, "wA")
	startWorker(t, base, "wB")
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	drain := func(id, verb string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/v1/fleet/nodes/"+id+"/"+verb, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, body
	}

	resp, body := drain("wA", "drain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d %s", resp.StatusCode, body)
	}
	var ack struct {
		Node     string `json:"node"`
		Draining bool   `json:"draining"`
	}
	if err := json.Unmarshal(body, &ack); err != nil || ack.Node != "wA" || !ack.Draining {
		t.Fatalf("drain ack: %v %s", err, body)
	}

	// Every new key lands on the surviving node while wA drains.
	for i := 0; i < 8; i++ {
		r, out := postSchedule(t, base, scheduleBody(t, fmt.Sprintf("drained%d", i)))
		if r.StatusCode != http.StatusOK {
			t.Fatalf("drained schedule %d: %d %s", i, r.StatusCode, out)
		}
		if got := r.Header.Get("X-Node"); got != "wB" {
			t.Fatalf("key %d placed on %s during drain, want wB", i, got)
		}
	}

	// The listing shows the drain.
	nresp, err := http.Get(base + "/v1/fleet/nodes")
	if err != nil {
		t.Fatal(err)
	}
	nbody, _ := io.ReadAll(nresp.Body)
	nresp.Body.Close()
	var nodes []NodeInfo
	if err := json.Unmarshal(nbody, &nodes); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if n.ID == "wA" && !n.Draining {
			t.Fatalf("wA not marked draining in listing: %s", nbody)
		}
	}

	// Undrain restores wA as a placement target: a key it owns returns.
	resp, body = drain("wA", "undrain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("undrain: %d %s", resp.StatusCode, body)
	}
	var ownedByA []byte
	for i := 0; ownedByA == nil && i < 64; i++ {
		b := scheduleBody(t, fmt.Sprintf("undrained%d", i))
		key, err := server.ScheduleCacheKey(b)
		if err != nil {
			t.Fatal(err)
		}
		if cand, ok := place(coord.reg.candidates(), key, nil); ok && cand.id == "wA" {
			ownedByA = b
		}
	}
	if ownedByA == nil {
		t.Fatal("no key HRW-owned by wA in 64 tries")
	}
	r, out := postSchedule(t, base, ownedByA)
	if r.StatusCode != http.StatusOK || r.Header.Get("X-Node") != "wA" {
		t.Fatalf("after undrain: %d served by %q, want wA\n%s", r.StatusCode, r.Header.Get("X-Node"), out)
	}

	// Unknown node: not_found envelope.
	resp, body = drain("nope", "drain")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drain unknown: %d %s", resp.StatusCode, body)
	}
	var e struct {
		Error server.ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != server.ErrCodeNotFound {
		t.Fatalf("drain unknown envelope: %v %s", err, body)
	}
}

// Schema gating: a worker announcing a different wire schema is refused at
// register and at heartbeat with a schema_mismatch envelope, and never
// joins the fleet.
func TestSchemaMismatchRefused(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())

	post := func(path string, body any) (*http.Response, []byte) {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp, out
	}

	resp, body := post("/v1/nodes/register", server.RegisterRequest{
		ID: "s1", Endpoint: "http://127.0.0.1:1", Capacity: 2, SchemaVersion: server.SchemaVersion,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register s1: %d %s", resp.StatusCode, body)
	}

	resp, body = post("/v1/nodes/register", server.RegisterRequest{
		ID: "s2", Endpoint: "http://127.0.0.1:2", Capacity: 2, SchemaVersion: "wire/999",
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("register mixed schema: %d %s", resp.StatusCode, body)
	}
	var e struct {
		Error server.ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != server.ErrCodeSchemaMismatch {
		t.Fatalf("mixed-schema envelope: %v %s", err, body)
	}
	for _, n := range coord.Nodes() {
		if n.ID == "s2" {
			t.Fatal("mismatched worker joined the fleet")
		}
	}

	// A heartbeat that changes its story is refused the same way.
	resp, body = post("/v1/nodes/heartbeat", server.HeartbeatRequest{ID: "s1", SchemaVersion: "wire/999"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mixed-schema heartbeat: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != server.ErrCodeSchemaMismatch {
		t.Fatalf("heartbeat envelope: %v %s", err, body)
	}
	if got := coord.metrics.schemaRefusals.Load(); got != 2 {
		t.Fatalf("schemaRefusals = %d, want 2", got)
	}
}

// The tentpole chaos test: a key spills off its overloaded owner, the spill
// target dies mid-request, and the failover still returns bytes identical
// to what the owner served — spilling and failover move computation, never
// output.
func TestScheduleSpillFailoverByteIdentical(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	wA := startWorker(t, base, "wA")
	wB := startWorker(t, base, "wB")
	wC := startWorker(t, base, "wC")
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready", "wC": "ready"})
	workers := map[string]*testWorker{"wA": wA, "wB": wB, "wC": wC}

	body := scheduleBody(t, "hotspill")
	key, err := server.ScheduleCacheKey(body)
	if err != nil {
		t.Fatal(err)
	}
	ranked := hrwRank(coord.reg.candidates(), key)
	owner, second, third := ranked[0], ranked[1], ranked[2]

	// Idle fleet: the owner serves; these are the reference bytes.
	resp1, out1 := postSchedule(t, base, body)
	if resp1.StatusCode != http.StatusOK || resp1.Header.Get("X-Node") != owner.id {
		t.Fatalf("reference request: %d served by %q, want owner %q", resp1.StatusCode, resp1.Header.Get("X-Node"), owner.id)
	}

	// Overload the owner: 8 phantom in-flight requests push it past
	// ceil(1.25·9/3)=4, so the same key must spill to the next HRW rank.
	for i := 0; i < 8; i++ {
		coord.reg.incInflight(owner.id)
	}
	resp2, out2 := postSchedule(t, base, body)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Node") != second.id {
		t.Fatalf("spill request: %d served by %q, want spill target %q", resp2.StatusCode, resp2.Header.Get("X-Node"), second.id)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatal("spilled response differs from owner's bytes")
	}
	if got := coord.metrics.spills.Load(); got < 1 {
		t.Fatalf("spills metric = %d after a spill", got)
	}

	// Kill the spill target mid-request: the placement aborts, excludes it,
	// and re-places — still overloaded owner, so the third-ranked node
	// serves, and the bytes still match.
	workers[second.id].chaos.armKillSchedule(1)
	resp3, out3 := postSchedule(t, base, body)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("failover after spill-target death: %d %s", resp3.StatusCode, out3)
	}
	if got := resp3.Header.Get("X-Node"); got != third.id {
		t.Fatalf("failover served by %q, want third-ranked %q", got, third.id)
	}
	if !bytes.Equal(out1, out3) {
		t.Fatal("failover response differs from owner's bytes")
	}
}

// Every coordinator error is the unified envelope with a stable code and
// an honest retryable flag.
func TestCoordinatorErrorEnvelope(t *testing.T) {
	// No fleet at all: schedule is a retryable no_workers 503.
	_, emptyBase := startCoordinator(t, testConfig())

	coord, base := startCoordinator(t, testConfig())
	startWorker(t, base, "wA")
	waitForStates(t, coord, map[string]string{"wA": "ready"})

	cases := []struct {
		name      string
		method    string
		base      string
		path      string
		body      string
		status    int
		code      string
		retryable bool
	}{
		{"no workers", "POST", emptyBase, "/v1/schedule", string(scheduleBody(t, "noworkers")), http.StatusServiceUnavailable, server.ErrCodeNoWorkers, true},
		{"bad schedule body", "POST", base, "/v1/schedule", `{nope`, http.StatusBadRequest, server.ErrCodeBadRequest, false},
		{"bad job body", "POST", base, "/v1/jobs", `{nope`, http.StatusBadRequest, server.ErrCodeBadRequest, false},
		{"unknown job", "GET", base, "/v1/jobs/nope", "", http.StatusNotFound, server.ErrCodeNotFound, false},
		{"unknown job csv", "GET", base, "/v1/jobs/nope/csv", "", http.StatusNotFound, server.ErrCodeNotFound, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.method == "POST" {
				resp, err = http.Post(tc.base+tc.path, "application/json", bytes.NewReader([]byte(tc.body)))
			} else {
				resp, err = http.Get(tc.base + tc.path)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			out, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, out)
			}
			var e struct {
				Error server.ErrorBody `json:"error"`
			}
			if err := json.Unmarshal(out, &e); err != nil {
				t.Fatalf("not an envelope: %v %s", err, out)
			}
			if e.Error.Code != tc.code || e.Error.Message == "" || e.Error.Retryable != tc.retryable {
				t.Fatalf("envelope {code %q, msg %q, retryable %v}, want {%q, non-empty, %v}",
					e.Error.Code, e.Error.Message, e.Error.Retryable, tc.code, tc.retryable)
			}
		})
	}
}
