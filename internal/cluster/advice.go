package cluster

import (
	"sync"
)

// The fleet scaling advisor behind GET /v1/fleet/advice: a small
// hysteresis-damped controller an autoscaler (or an operator) can poll.
// Every reconcile tick it folds the fleet's shed delta, worst reported p99
// and live in-flight total into a raw verdict — scale_up, scale_down or
// hold — and only adopts a verdict after it has held for AdviceHysteresis
// consecutive ticks, so one shed burst or one idle tick cannot flap the
// advice (and an HPA consuming it cannot thrash the fleet).

// FleetAdvice is the body of GET /v1/fleet/advice.
type FleetAdvice struct {
	// Advice is "scale_up", "scale_down" or "hold".
	Advice string `json:"advice"`
	// Reason is the human-readable trigger of the current verdict.
	Reason string `json:"reason"`
	// DesiredDelta is the suggested change in worker count (+1, -1 or 0):
	// one step per hysteresis window, so the advisor observes each change
	// before suggesting the next.
	DesiredDelta int `json:"desired_delta"`
	// ReadyNodes and DrainingNodes summarize the placeable fleet.
	ReadyNodes    int `json:"ready_nodes"`
	DrainingNodes int `json:"draining_nodes"`
	// ShedTotal is the fleet-wide cumulative 429 count (from worker
	// heartbeat load reports); ShedDelta is its growth over the last tick —
	// the scale-up trigger.
	ShedTotal int64 `json:"shed_total"`
	ShedDelta int64 `json:"shed_delta"`
	// InflightTotal is the coordinator's live outstanding-work count.
	InflightTotal int64 `json:"inflight_total"`
	// P99MicrosMax is the worst reported p99 across the fleet.
	P99MicrosMax float64 `json:"p99_micros_max"`
}

// adviceValue maps a verdict to the gpcoordd_fleet_advice gauge.
func adviceValue(advice string) int {
	switch advice {
	case "scale_up":
		return 1
	case "scale_down":
		return 2
	}
	return 0
}

type advisor struct {
	mu       sync.Mutex
	current  FleetAdvice
	pending  string // raw verdict awaiting hysteresis
	streak   int    // consecutive ticks pending has held
	lastShed int64
	primed   bool // first tick only establishes the shed baseline
}

// tick folds one reconcile-interval observation into the advisor. nodes is
// the registry snapshot; hysteresis is the tick count a raw verdict must
// hold; p99Limit (µs) is the latency scale-up trigger.
func (a *advisor) tick(nodes []NodeInfo, hysteresis int, p99Limit float64) {
	var (
		ready, draining int
		shed, inflight  int64
		p99Max          float64
	)
	for _, n := range nodes {
		if n.Draining {
			draining++
		} else if n.State == NodeReady.String() {
			ready++
		}
		shed += n.Shed
		inflight += n.Inflight
		if n.P99Micros > p99Max {
			p99Max = n.P99Micros
		}
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	shedDelta := shed - a.lastShed
	if !a.primed {
		// First tick: the cumulative shed total is history, not news.
		shedDelta = 0
		a.primed = true
	}
	a.lastShed = shed

	raw, reason, delta := "hold", "fleet load within bounds", 0
	switch {
	case shedDelta > 0:
		raw, reason, delta = "scale_up", "workers are shedding load (429s growing)", 1
	case p99Limit > 0 && p99Max > p99Limit && inflight > 0:
		raw, reason, delta = "scale_up", "worker p99 latency over threshold under load", 1
	case inflight == 0 && ready > 1:
		raw, reason, delta = "scale_down", "fleet idle with spare ready workers", -1
	}

	if raw == a.pending {
		a.streak++
	} else {
		a.pending, a.streak = raw, 1
	}
	// Adopt only a verdict that survived the hysteresis window; the
	// current verdict's own fleet numbers stay live either way.
	adopt := a.streak >= hysteresis && raw != a.current.Advice
	if adopt || a.current.Advice == "" {
		a.current.Advice = raw
		a.current.Reason = reason
		a.current.DesiredDelta = delta
		if !adopt {
			// Initial verdict before the first window closes: hold.
			a.current.Advice, a.current.Reason, a.current.DesiredDelta = "hold", "observing", 0
		}
	}
	a.current.ReadyNodes = ready
	a.current.DrainingNodes = draining
	a.current.ShedTotal = shed
	a.current.ShedDelta = shedDelta
	a.current.InflightTotal = inflight
	a.current.P99MicrosMax = p99Max
}

// snapshot returns the advice as of the last tick.
func (a *advisor) snapshot() FleetAdvice {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.current
	if out.Advice == "" {
		out.Advice, out.Reason = "hold", "observing"
	}
	return out
}
