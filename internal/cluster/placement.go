package cluster

import (
	"fmt"
	"sync"

	"repro/internal/store"
)

// The explicit placement protocol. Every unit of routed work — a proxied
// /v1/schedule request, a batch loop, a sweep cell — is a placement that
// walks one state machine:
//
//	Pending ──► Preparing ──► Ready ──► Dropped
//	   ▲            │           │
//	   └────────────┘       Draining ──► Dropped
//	     (abort:            │    ▲
//	      node failed)      └────┘ (abort: drain canceled)
//
// Pending: admitted, no node chosen. Preparing: a node was chosen (by
// bounded-load HRW) and the work is in flight. Ready: the node answered and
// owns the key's cache residency. Draining: the node is being retired by an
// operator and the key will re-place. Dropped: retired. The two abort edges
// are Preparing→Pending (the chosen node failed; the placement re-enters
// placement with the node excluded) and Draining→Ready (the drain was
// canceled).
//
// Schedule-request placements are transient: they walk the machine for the
// metrics and the in-flight accounting, then drop when the response is
// relayed. Sweep-cell placements are durable: each transition writes the
// placement record through the store, so a restarted coordinator knows
// which node each in-flight cell was on — including a spill target — and
// re-places it there first instead of bouncing it back to an owner the
// bound had rejected.

// placementState is a placement's position in the protocol.
type placementState int

const (
	placePending placementState = iota
	placePreparing
	placeReady
	placeDraining
	placeDropped
	placeStates // count, for the transition matrix
)

func (s placementState) String() string {
	switch s {
	case placePending:
		return "pending"
	case placePreparing:
		return "preparing"
	case placeReady:
		return "ready"
	case placeDraining:
		return "draining"
	case placeDropped:
		return "dropped"
	}
	return fmt.Sprintf("placementState(%d)", int(s))
}

// validPlaceEdge is the protocol's legal-transition table.
func validPlaceEdge(from, to placementState) bool {
	switch from {
	case placePending:
		return to == placePreparing || to == placeDropped
	case placePreparing:
		return to == placeReady || to == placePending || to == placeDropped
	case placeReady:
		return to == placeDraining || to == placeDropped
	case placeDraining:
		return to == placeReady || to == placeDropped
	}
	return false
}

// placement is one unit of work walking the protocol. Not safe for
// concurrent use: each belongs to the one goroutine driving its request or
// cell attempt (the durable table has its own lock).
type placement struct {
	c       *Coordinator
	key     string
	durable bool // write transitions through the store (sweep cells)

	state   placementState
	node    candidate
	spilled bool
	exclude map[string]bool
}

// newPlacement admits a key into the protocol at Pending.
func (c *Coordinator) newPlacement(key string, durable bool) *placement {
	return &placement{c: c, key: key, durable: durable, state: placePending, exclude: make(map[string]bool)}
}

// transition moves the placement along one edge, counting it in the
// per-transition metrics. Illegal edges are counted and refused — a
// protocol bug must be visible, not state-corrupting.
func (p *placement) transition(to placementState) {
	if !validPlaceEdge(p.state, to) {
		p.c.metrics.placeInvalid.Add(1)
		p.c.log.Warn("illegal placement transition refused",
			"key", p.key, "from", p.state.String(), "to", to.String())
		return
	}
	p.c.metrics.placeTransitions[p.state][to].Add(1)
	p.state = to
}

// prepare binds the placement to a node (Pending→Preparing) and starts the
// coordinator-side in-flight accounting bounded-load placement spills on.
func (p *placement) prepare(node candidate, spilled bool) {
	p.node = node
	p.spilled = spilled
	if spilled {
		p.c.metrics.spills.Add(1)
	}
	p.transition(placePreparing)
	p.c.reg.incInflight(node.id)
	if p.durable {
		p.c.putPlacement(store.PlacementRecord{Key: p.key, Node: node.id, State: placePreparing.String(), Spilled: spilled})
	}
}

// abort walks the Preparing→Pending edge after the chosen node failed,
// excluding it from the next placement round.
func (p *placement) abort() {
	p.c.reg.decInflight(p.node.id)
	p.exclude[p.node.id] = true
	p.transition(placePending)
	if p.durable {
		p.c.delPlacement(p.key)
	}
}

// ready marks the node's answer landed (Preparing→Ready).
func (p *placement) ready() {
	p.c.reg.decInflight(p.node.id)
	p.transition(placeReady)
	if p.durable {
		p.c.putPlacement(store.PlacementRecord{Key: p.key, Node: p.node.id, State: placeReady.String(), Spilled: p.spilled})
	}
}

// drop retires the placement from whatever state it reached. In-flight
// accounting is released only by ready/abort, so drop from Preparing (a
// canceled job) must release it too.
func (p *placement) drop() {
	if p.state == placePreparing {
		p.c.reg.decInflight(p.node.id)
	}
	if p.state != placeDropped {
		p.transition(placeDropped)
	}
	if p.durable {
		p.c.delPlacement(p.key)
	}
}

// resetExclusions starts the placement's exclusion list over (the fleet may
// have churned entirely since the excluded attempts).
func (p *placement) resetExclusions() {
	p.exclude = make(map[string]bool)
}

// placementTable is the coordinator's live view of the durable placements,
// mirroring the store. Recovery seeds it from the journal; the job layer
// consults it as affinity hints so resumed cells re-land where they were —
// including on a spill target the bound had moved them to.
type placementTable struct {
	mu    sync.Mutex
	byKey map[string]store.PlacementRecord
}

// putPlacement records a durable placement in the live table and the store.
func (c *Coordinator) putPlacement(rec store.PlacementRecord) {
	c.placements.mu.Lock()
	if c.placements.byKey == nil {
		c.placements.byKey = make(map[string]store.PlacementRecord)
	}
	c.placements.byKey[rec.Key] = rec
	c.placements.mu.Unlock()
	if err := c.st.PutPlacement(rec); err != nil {
		c.storeError("put_placement", err)
	}
}

// delPlacement retires a durable placement from the live table and store.
func (c *Coordinator) delPlacement(key string) {
	c.placements.mu.Lock()
	delete(c.placements.byKey, key)
	c.placements.mu.Unlock()
	if err := c.st.DeletePlacement(key); err != nil {
		c.storeError("delete_placement", err)
	}
}

// placementHint returns the node a durable placement was last bound to, or
// "" when there is none — or when the record is draining (a draining
// placement must re-place elsewhere, so its old node is an anti-hint).
func (c *Coordinator) placementHint(key string) string {
	c.placements.mu.Lock()
	defer c.placements.mu.Unlock()
	rec, ok := c.placements.byKey[key]
	if !ok || rec.State == placeDraining.String() {
		return ""
	}
	return rec.Node
}

// drainPlacements walks every durable placement on a node across the
// Ready→Draining edge (or back, Draining→Ready, when the drain is
// canceled), persisting each flip. In-flight (Preparing) placements keep
// running — a draining node finishes what it has, like a suspect one.
func (c *Coordinator) drainPlacements(nodeID string, draining bool) int {
	from, to := placeReady, placeDraining
	if !draining {
		from, to = placeDraining, placeReady
	}
	c.placements.mu.Lock()
	var flipped []store.PlacementRecord
	for key, rec := range c.placements.byKey {
		if rec.Node == nodeID && rec.State == from.String() {
			rec.State = to.String()
			c.placements.byKey[key] = rec
			flipped = append(flipped, rec)
		}
	}
	c.placements.mu.Unlock()
	for _, rec := range flipped {
		c.metrics.placeTransitions[from][to].Add(1)
		if err := c.st.PutPlacement(rec); err != nil {
			c.storeError("put_placement", err)
		}
	}
	return len(flipped)
}
