package cluster

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/store"
)

// fakeClock drives the registry's injectable time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestRegistry() (*registry, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := newRegistry(store.NewMemory(), func(op string, err error) {})
	r.now = clk.now
	return r, clk
}

const (
	testSuspectAfter = 3 * time.Second
	testDeadAfter    = 6 * time.Second
)

func TestLifecycleTransitions(t *testing.T) {
	r, clk := newTestRegistry()
	r.register("w1", "http://w1", 4, "", 0)
	if got := r.state("w1"); got != NodeReady {
		t.Fatalf("after register: %v", got)
	}

	// Below the suspect threshold nothing changes.
	clk.advance(testSuspectAfter - time.Second)
	if _, died := r.sweepHealth(testSuspectAfter, testDeadAfter); len(died) != 0 {
		t.Fatalf("premature deaths: %v", died)
	}
	if got := r.state("w1"); got != NodeReady {
		t.Fatalf("fresh node became %v", got)
	}

	// Crossing suspect.
	clk.advance(2 * time.Second)
	r.sweepHealth(testSuspectAfter, testDeadAfter)
	if got := r.state("w1"); got != NodeSuspect {
		t.Fatalf("stale node is %v, want suspect", got)
	}

	// A heartbeat revives a suspect node.
	if !r.heartbeat("w1", "", 0) {
		t.Fatal("heartbeat for known node rejected")
	}
	if got := r.state("w1"); got != NodeReady {
		t.Fatalf("heartbeat left node %v", got)
	}

	// Crossing dead reports the transition exactly once.
	clk.advance(testDeadAfter)
	if _, died := r.sweepHealth(testSuspectAfter, testDeadAfter); !reflect.DeepEqual(died, []string{"w1"}) {
		t.Fatalf("died = %v, want [w1]", died)
	}
	if _, died := r.sweepHealth(testSuspectAfter, testDeadAfter); len(died) != 0 {
		t.Fatalf("death reported twice: %v", died)
	}
	if got := r.state("w1"); got != NodeDead {
		t.Fatalf("node is %v, want dead", got)
	}

	// Even a dead node revives on heartbeat (it is evidently alive), and
	// re-registration resets everything.
	if !r.heartbeat("w1", "", 0) {
		t.Fatal("heartbeat for dead node rejected")
	}
	if got := r.state("w1"); got != NodeReady {
		t.Fatalf("revived node is %v", got)
	}
}

func TestHeartbeatUnknownNode(t *testing.T) {
	r, _ := newTestRegistry()
	if r.heartbeat("ghost", "", 0) {
		t.Fatal("heartbeat for unregistered node accepted")
	}
	if r.deregister("ghost") {
		t.Fatal("deregister for unregistered node reported success")
	}
}

func TestReportFailureMarksSuspect(t *testing.T) {
	r, _ := newTestRegistry()
	r.register("w1", "http://w1", 1, "", 0)
	r.reportFailure("w1")
	if got := r.state("w1"); got != NodeSuspect {
		t.Fatalf("after failure: %v", got)
	}
	snap := r.snapshot()
	if len(snap) != 1 || snap[0].Failures != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// A failure must not demote a dead node back to suspect.
	clk := &fakeClock{t: time.Unix(2000, 0)}
	r.now = clk.now
	clk.advance(testDeadAfter)
	r.sweepHealth(testSuspectAfter, testDeadAfter)
	r.reportFailure("w1")
	if got := r.state("w1"); got != NodeDead {
		t.Fatalf("failure revived dead node to %v", got)
	}
}

func TestCandidatesPreferReady(t *testing.T) {
	r, _ := newTestRegistry()
	r.register("ready1", "http://r1", 1, "", 0)
	r.register("ready2", "http://r2", 1, "", 0)
	r.register("slow", "http://s", 1, "", 0)
	r.reportFailure("slow")

	got := map[string]bool{}
	for _, c := range r.candidates() {
		got[c.id] = true
	}
	if got["slow"] || len(got) != 2 {
		t.Fatalf("candidates include suspect while ready nodes exist: %v", got)
	}

	// With every node suspect, placement falls back to them rather than
	// refusing all traffic.
	r.reportFailure("ready1")
	r.reportFailure("ready2")
	if got := r.candidates(); len(got) != 3 {
		t.Fatalf("suspect fallback returned %v", got)
	}

	// Deregistered nodes disappear outright.
	r.deregister("slow")
	r.deregister("ready1")
	r.deregister("ready2")
	if got := r.candidates(); len(got) != 0 {
		t.Fatalf("candidates after full deregister: %v", got)
	}
}

func TestExpireDeadGarbageCollects(t *testing.T) {
	r, clk := newTestRegistry()
	r.register("gone", "http://gone", 1, "", 0)
	r.register("alive", "http://alive", 1, "", 0)

	clk.advance(testDeadAfter)
	r.heartbeat("alive", "", 0)
	r.sweepHealth(testSuspectAfter, testDeadAfter)
	if got := r.state("gone"); got != NodeDead {
		t.Fatalf("stale node is %v", got)
	}

	// Dead but not yet expired: retained for observability.
	r.expireDead(time.Minute)
	if len(r.snapshot()) != 2 {
		t.Fatalf("dead node expired early: %+v", r.snapshot())
	}

	// Past expiry it disappears; live nodes are untouched.
	clk.advance(time.Minute)
	r.expireDead(time.Minute)
	snap := r.snapshot()
	if len(snap) != 1 || snap[0].ID != "alive" {
		t.Fatalf("expiry kept/removed the wrong nodes: %+v", snap)
	}
}

// TestAdoptSuspectUntilHeartbeat covers the recovery handshake: journaled
// nodes come back suspect (placeable only as a fallback), a heartbeat
// promotes them without re-registering, silence walks them to dead on the
// normal thresholds, and adoption never clobbers a live registration.
func TestAdoptSuspectUntilHeartbeat(t *testing.T) {
	r, clk := newTestRegistry()
	r.register("live", "http://live-new", 2, "", 0)
	n := r.adopt([]store.NodeRecord{
		{ID: "ghost", Endpoint: "http://ghost", Capacity: 1},
		{ID: "live", Endpoint: "http://live-old", Capacity: 1},
	})
	if n != 1 {
		t.Fatalf("adopted %d nodes, want 1 (live registration must win)", n)
	}
	if got := r.state("ghost"); got != NodeSuspect {
		t.Fatalf("adopted node is %v, want suspect", got)
	}
	if got := r.state("live"); got != NodeReady {
		t.Fatalf("adoption demoted live node to %v", got)
	}

	// Suspect means fallback-only placement: with a ready node present the
	// adopted one attracts nothing, but an all-adopted fleet still serves.
	for _, c := range r.candidates() {
		if c.id == "ghost" {
			t.Fatal("adopted node placed while a ready node exists")
		}
	}

	// A heartbeat is enough to promote it — the journal kept its endpoint,
	// so no re-register round trip is needed.
	if !r.heartbeat("ghost", "", 0) {
		t.Fatal("heartbeat for adopted node rejected")
	}
	if got := r.state("ghost"); got != NodeReady {
		t.Fatalf("heartbeat left adopted node %v", got)
	}

	// An adopted node that never calls back dies on the usual schedule;
	// the ones that kept heartbeating do not.
	r.adopt([]store.NodeRecord{{ID: "silent", Endpoint: "http://silent", Capacity: 1}})
	clk.advance(testDeadAfter)
	r.heartbeat("live", "", 0)
	r.heartbeat("ghost", "", 0)
	if _, died := r.sweepHealth(testSuspectAfter, testDeadAfter); !reflect.DeepEqual(died, []string{"silent"}) {
		t.Fatalf("died = %v, want [silent]", died)
	}
}

func TestSnapshotSortedAndCounted(t *testing.T) {
	r, _ := newTestRegistry()
	r.register("b", "http://b", 2, "", 0)
	r.register("a", "http://a", 4, "", 0)
	r.countRequest("b")
	r.countRequest("b")
	snap := r.snapshot()
	if len(snap) != 2 || snap[0].ID != "a" || snap[1].ID != "b" {
		t.Fatalf("snapshot order: %+v", snap)
	}
	if snap[1].Requests != 2 || snap[0].Capacity != 4 {
		t.Fatalf("snapshot counters: %+v", snap)
	}
}
