package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NodeState is a worker's position in the health lifecycle. Registration
// and heartbeats move a node toward NodeReady; missed heartbeats walk it
// through NodeSuspect to NodeDead; a proxy failure short-circuits straight
// to NodeSuspect without waiting for the detector.
type NodeState int

const (
	// NodeReady nodes receive new placements.
	NodeReady NodeState = iota
	// NodeSuspect nodes missed at least the suspect threshold of
	// heartbeats (or just failed a proxied request). They receive no new
	// placements while any ready node remains, but keep their in-flight
	// work: a suspect node may merely be slow, and yanking its work early
	// would duplicate computation.
	NodeSuspect
	// NodeDead nodes missed the dead threshold. The reconciler cancels and
	// re-places everything assigned to them; only a fresh heartbeat or
	// re-registration revives them.
	NodeDead
)

func (s NodeState) String() string {
	switch s {
	case NodeReady:
		return "ready"
	case NodeSuspect:
		return "suspect"
	case NodeDead:
		return "dead"
	}
	return fmt.Sprintf("NodeState(%d)", int(s))
}

// node is a registered worker. Immutable fields are set at registration;
// the mutable tail is guarded by the registry mutex, except the counters,
// which are atomic so the proxy path never takes the registry lock just to
// count.
type node struct {
	id       string
	endpoint string
	capacity int

	state         NodeState
	lastHeartbeat time.Time

	requests atomic.Int64 // proxied requests + job cells routed here
	failures atomic.Int64 // transport errors and 5xx answers observed
}

// NodeInfo is a point-in-time snapshot of one node, the JSON shape of
// GET /v1/nodes.
type NodeInfo struct {
	ID       string `json:"id"`
	Endpoint string `json:"endpoint"`
	Capacity int    `json:"capacity"`
	State    string `json:"state"`
	// SinceHeartbeatMillis is the age of the last heartbeat.
	SinceHeartbeatMillis int64 `json:"since_heartbeat_millis"`
	Requests             int64 `json:"requests"`
	Failures             int64 `json:"failures"`
}

// registry is the coordinator's in-memory node table. gpcoordd keeps no
// persistent state: workers re-register on coordinator restart (the agent
// treats a heartbeat 404 as "register again"), which rebuilds the table.
type registry struct {
	mu    sync.Mutex
	nodes map[string]*node
	now   func() time.Time // injectable for lifecycle tests
}

func newRegistry() *registry {
	return &registry{nodes: make(map[string]*node), now: time.Now}
}

// register adds or refreshes a node: a known ID gets its endpoint and
// capacity updated and its state reset to ready (the worker is plainly
// alive — it just spoke to us).
func (r *registry) register(id, endpoint string, capacity int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[id]
	if !ok {
		n = &node{id: id}
		r.nodes[id] = n
	}
	n.endpoint = endpoint
	n.capacity = capacity
	n.state = NodeReady
	n.lastHeartbeat = r.now()
}

// heartbeat refreshes a node's liveness, reviving suspect and dead nodes.
// It reports false for an unknown ID: the worker must re-register so the
// coordinator relearns its endpoint and capacity.
func (r *registry) heartbeat(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[id]
	if !ok {
		return false
	}
	n.state = NodeReady
	n.lastHeartbeat = r.now()
	return true
}

// deregister removes a node entirely (graceful worker shutdown).
func (r *registry) deregister(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[id]; !ok {
		return false
	}
	delete(r.nodes, id)
	return true
}

// reportFailure marks a node suspect after a proxied request failed on it
// (transport error, truncated response or 5xx). The health detector — not
// the proxy — owns the dead transition: one failed request on a live node
// must not strand its whole queue, but it should stop attracting new work
// until a heartbeat clears it.
func (r *registry) reportFailure(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[id]; ok {
		n.failures.Add(1)
		if n.state == NodeReady {
			n.state = NodeSuspect
		}
	}
}

// sweepHealth applies the missed-heartbeat thresholds and returns the IDs
// of nodes that transitioned to dead in this pass (the reconciler re-places
// their work exactly once per transition).
func (r *registry) sweepHealth(suspectAfter, deadAfter time.Duration) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	var died []string
	for _, n := range r.nodes {
		age := now.Sub(n.lastHeartbeat)
		switch {
		case age >= deadAfter:
			if n.state != NodeDead {
				n.state = NodeDead
				died = append(died, n.id)
			}
		case age >= suspectAfter:
			if n.state == NodeReady {
				n.state = NodeSuspect
			}
		}
	}
	sort.Strings(died)
	return died
}

// expireDead garbage-collects nodes that have been silent longer than
// expiry. Without this, crashed workers with churned IDs (the default ID is
// the advertised host:port, often an ephemeral port) would accumulate as
// dead entries forever, growing /v1/nodes, the per-node metric series and
// every health sweep without bound.
func (r *registry) expireDead(expiry time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	for id, n := range r.nodes {
		if n.state == NodeDead && now.Sub(n.lastHeartbeat) >= expiry {
			delete(r.nodes, id)
		}
	}
}

// state returns a node's current state (dead for unknown IDs — an
// unregistered node is as gone as a dead one to the reconciler).
func (r *registry) state(id string) NodeState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[id]; ok {
		return n.state
	}
	return NodeDead
}

// candidate is the placement view of a node: just identity and endpoint,
// snapshotted under the lock so placement itself runs lock-free.
type candidate struct {
	id       string
	endpoint string
}

// candidates returns the placeable nodes: all ready ones, or — when no
// node is ready — the suspect ones, so a fleet that is merely slow keeps
// serving instead of answering 503. Dead nodes are never placed on.
func (r *registry) candidates() []candidate {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ready, suspect []candidate
	for _, n := range r.nodes {
		switch n.state {
		case NodeReady:
			ready = append(ready, candidate{id: n.id, endpoint: n.endpoint})
		case NodeSuspect:
			suspect = append(suspect, candidate{id: n.id, endpoint: n.endpoint})
		}
	}
	if len(ready) > 0 {
		return ready
	}
	return suspect
}

// countRequest bumps a node's routed-request counter.
func (r *registry) countRequest(id string) {
	r.mu.Lock()
	n, ok := r.nodes[id]
	r.mu.Unlock()
	if ok {
		n.requests.Add(1)
	}
}

// snapshot returns every node sorted by ID (the /v1/nodes and /metrics
// view).
func (r *registry) snapshot() []NodeInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	infos := make([]NodeInfo, 0, len(r.nodes))
	for _, n := range r.nodes {
		infos = append(infos, NodeInfo{
			ID:                   n.id,
			Endpoint:             n.endpoint,
			Capacity:             n.capacity,
			State:                n.state.String(),
			SinceHeartbeatMillis: now.Sub(n.lastHeartbeat).Milliseconds(),
			Requests:             n.requests.Load(),
			Failures:             n.failures.Load(),
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}
