package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// NodeState is a worker's position in the health lifecycle. Registration
// and heartbeats move a node toward NodeReady; missed heartbeats walk it
// through NodeSuspect to NodeDead; a proxy failure short-circuits straight
// to NodeSuspect without waiting for the detector.
type NodeState int

const (
	// NodeReady nodes receive new placements.
	NodeReady NodeState = iota
	// NodeSuspect nodes missed at least the suspect threshold of
	// heartbeats (or just failed a proxied request). They receive no new
	// placements while any ready node remains, but keep their in-flight
	// work: a suspect node may merely be slow, and yanking its work early
	// would duplicate computation.
	NodeSuspect
	// NodeDead nodes missed the dead threshold. The reconciler cancels and
	// re-places everything assigned to them; only a fresh heartbeat or
	// re-registration revives them.
	NodeDead
)

func (s NodeState) String() string {
	switch s {
	case NodeReady:
		return "ready"
	case NodeSuspect:
		return "suspect"
	case NodeDead:
		return "dead"
	}
	return fmt.Sprintf("NodeState(%d)", int(s))
}

// node is a registered worker. Immutable fields are set at registration;
// the mutable tail is guarded by the registry mutex, except the counters,
// which are atomic so the proxy path never takes the registry lock just to
// count.
type node struct {
	id       string
	endpoint string
	capacity int

	state         NodeState
	lastHeartbeat time.Time
	// algoVersion is the worker's advertised algorithm identity, refreshed
	// on every register and heartbeat. Placement refuses to mix versions
	// within one sweep job, and the shadow verifier attributes divergence
	// with it.
	algoVersion string
	// epoch is the worker's last reported cache epoch (runtime state, like
	// health — only the worker's own reports can prove it).
	epoch uint64

	requests atomic.Int64 // proxied requests + job cells routed here
	failures atomic.Int64 // transport errors and 5xx answers observed
}

// NodeInfo is a point-in-time snapshot of one node, the JSON shape of
// GET /v1/nodes.
type NodeInfo struct {
	ID          string `json:"id"`
	Endpoint    string `json:"endpoint"`
	Capacity    int    `json:"capacity"`
	State       string `json:"state"`
	AlgoVersion string `json:"algo_version,omitempty"`
	Epoch       uint64 `json:"epoch"`
	// SinceHeartbeatMillis is the age of the last heartbeat.
	SinceHeartbeatMillis int64 `json:"since_heartbeat_millis"`
	Requests             int64 `json:"requests"`
	Failures             int64 `json:"failures"`
}

// registry is the coordinator's node table. Registration facts (ID,
// endpoint, capacity) are persisted through the store; health is runtime
// state only heartbeats can prove, so a restarted coordinator adopts
// journaled nodes as suspect and lets the next heartbeat — or the agent's
// heartbeat-404 re-register fallback — promote them. The store and the
// registry stay reconciled: every register writes through, every removal
// (deregister, dead-node expiry) deletes through.
type registry struct {
	mu       sync.Mutex
	nodes    map[string]*node
	now      func() time.Time // injectable for lifecycle tests
	st       store.Store
	storeErr func(op string, err error) // best-effort persistence failures
}

func newRegistry(st store.Store, storeErr func(op string, err error)) *registry {
	return &registry{nodes: make(map[string]*node), now: time.Now, st: st, storeErr: storeErr}
}

// register adds or refreshes a node: a known ID gets its endpoint and
// capacity updated and its state reset to ready (the worker is plainly
// alive — it just spoke to us). The registration facts are persisted
// before the node becomes placeable; a store failure rejects the
// registration so the worker retries rather than running un-journaled.
func (r *registry) register(id, endpoint string, capacity int, algoVersion string, epoch uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.st.PutNode(store.NodeRecord{ID: id, Endpoint: endpoint, Capacity: capacity, AlgoVersion: algoVersion}); err != nil {
		return err
	}
	n, ok := r.nodes[id]
	if !ok {
		n = &node{id: id}
		r.nodes[id] = n
	}
	n.endpoint = endpoint
	n.capacity = capacity
	n.algoVersion = algoVersion
	n.epoch = epoch
	n.state = NodeReady
	n.lastHeartbeat = r.now()
	return nil
}

// adopt seeds the registry from journaled registration facts at startup.
// Adopted nodes enter suspect — the journal proves they existed, not that
// they are alive — with a fresh heartbeat stamp so the health sweeps walk
// them to dead on the normal thresholds if they never call back. Suspect
// (not dead) matters: a mid-sweep fleet keeps receiving placements through
// the no-ready-nodes fallback while everyone's first post-restart
// heartbeat is still in flight.
func (r *registry) adopt(recs []store.NodeRecord) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	adopted := 0
	for _, rec := range recs {
		if _, ok := r.nodes[rec.ID]; ok {
			continue
		}
		r.nodes[rec.ID] = &node{
			id:            rec.ID,
			endpoint:      rec.Endpoint,
			capacity:      rec.Capacity,
			algoVersion:   rec.AlgoVersion,
			state:         NodeSuspect,
			lastHeartbeat: r.now(),
		}
		adopted++
	}
	return adopted
}

// heartbeat refreshes a node's liveness, reviving suspect and dead nodes,
// and absorbs the version and epoch the worker piggybacked on the beat (an
// empty version is an older worker and leaves the registered one alone).
// It reports false for an unknown ID: the worker must re-register so the
// coordinator relearns its endpoint and capacity.
func (r *registry) heartbeat(id, algoVersion string, epoch uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[id]
	if !ok {
		return false
	}
	if algoVersion != "" && algoVersion != n.algoVersion {
		n.algoVersion = algoVersion
		if err := r.st.PutNode(store.NodeRecord{ID: id, Endpoint: n.endpoint, Capacity: n.capacity, AlgoVersion: algoVersion}); err != nil {
			r.storeErr("put_node", err)
		}
	}
	n.epoch = epoch
	n.state = NodeReady
	n.lastHeartbeat = r.now()
	return true
}

// deregister removes a node entirely (graceful worker shutdown). The
// store delete is best-effort: an already-gone worker must not stay
// placeable just because the journal hiccuped.
func (r *registry) deregister(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[id]; !ok {
		return false
	}
	delete(r.nodes, id)
	if err := r.st.DeleteNode(id); err != nil {
		r.storeErr("delete_node", err)
	}
	return true
}

// reportFailure marks a node suspect after a proxied request failed on it
// (transport error, truncated response or 5xx). The health detector — not
// the proxy — owns the dead transition: one failed request on a live node
// must not strand its whole queue, but it should stop attracting new work
// until a heartbeat clears it.
func (r *registry) reportFailure(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[id]; ok {
		n.failures.Add(1)
		if n.state == NodeReady {
			n.state = NodeSuspect
		}
	}
}

// sweepHealth applies the missed-heartbeat thresholds and returns the IDs
// of nodes that transitioned to dead in this pass (the reconciler re-places
// their work exactly once per transition).
func (r *registry) sweepHealth(suspectAfter, deadAfter time.Duration) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	var died []string
	for _, n := range r.nodes {
		age := now.Sub(n.lastHeartbeat)
		switch {
		case age >= deadAfter:
			if n.state != NodeDead {
				n.state = NodeDead
				died = append(died, n.id)
			}
		case age >= suspectAfter:
			if n.state == NodeReady {
				n.state = NodeSuspect
			}
		}
	}
	sort.Strings(died)
	return died
}

// expireDead garbage-collects nodes that have been silent longer than
// expiry. Without this, crashed workers with churned IDs (the default ID is
// the advertised host:port, often an ephemeral port) would accumulate as
// dead entries forever, growing /v1/nodes, the per-node metric series and
// every health sweep without bound.
func (r *registry) expireDead(expiry time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	for id, n := range r.nodes {
		if n.state == NodeDead && now.Sub(n.lastHeartbeat) >= expiry {
			delete(r.nodes, id)
			if err := r.st.DeleteNode(id); err != nil {
				r.storeErr("delete_node", err)
			}
		}
	}
}

// state returns a node's current state (dead for unknown IDs — an
// unregistered node is as gone as a dead one to the reconciler).
func (r *registry) state(id string) NodeState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[id]; ok {
		return n.state
	}
	return NodeDead
}

// candidate is the placement view of a node: identity, endpoint and
// algorithm version, snapshotted under the lock so placement itself runs
// lock-free.
type candidate struct {
	id       string
	endpoint string
	version  string
}

// candidates returns the placeable nodes: all ready ones, or — when no
// node is ready — the suspect ones, so a fleet that is merely slow keeps
// serving instead of answering 503. Dead nodes are never placed on.
func (r *registry) candidates() []candidate {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ready, suspect []candidate
	for _, n := range r.nodes {
		switch n.state {
		case NodeReady:
			ready = append(ready, candidate{id: n.id, endpoint: n.endpoint, version: n.algoVersion})
		case NodeSuspect:
			suspect = append(suspect, candidate{id: n.id, endpoint: n.endpoint, version: n.algoVersion})
		}
	}
	if len(ready) > 0 {
		return ready
	}
	return suspect
}

// versionOf returns a node's current algorithm version ("" for unknown
// IDs).
func (r *registry) versionOf(id string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[id]; ok {
		return n.algoVersion
	}
	return ""
}

// dominantVersion returns the algorithm version the majority of non-dead
// nodes advertise (ties broken toward the lexicographically greater
// version — during a rolling upgrade that is the incoming one). The shadow
// verifier uses it to decide which side of a divergence is the outlier.
func (r *registry) dominantVersion() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	counts := make(map[string]int)
	for _, n := range r.nodes {
		if n.state != NodeDead {
			counts[n.algoVersion]++
		}
	}
	best, bestN := "", -1
	for v, c := range counts {
		if c > bestN || (c == bestN && v > best) {
			best, bestN = v, c
		}
	}
	return best
}

// markSuspect demotes a ready node to suspect without touching its failure
// counter semantics (the shadow verifier's "this node's bytes diverge"
// verdict is a health signal, not a transport failure).
func (r *registry) markSuspect(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[id]; ok && n.state == NodeReady {
		n.state = NodeSuspect
	}
}

// setNodeEpoch records the epoch a node confirmed during a flush fan-out,
// so /v1/nodes reflects convergence immediately instead of one heartbeat
// later.
func (r *registry) setNodeEpoch(id string, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[id]; ok {
		n.epoch = epoch
	}
}

// countRequest bumps a node's routed-request counter.
func (r *registry) countRequest(id string) {
	r.mu.Lock()
	n, ok := r.nodes[id]
	r.mu.Unlock()
	if ok {
		n.requests.Add(1)
	}
}

// snapshot returns every node sorted by ID (the /v1/nodes and /metrics
// view).
func (r *registry) snapshot() []NodeInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	infos := make([]NodeInfo, 0, len(r.nodes))
	for _, n := range r.nodes {
		infos = append(infos, NodeInfo{
			ID:                   n.id,
			Endpoint:             n.endpoint,
			Capacity:             n.capacity,
			State:                n.state.String(),
			AlgoVersion:          n.algoVersion,
			Epoch:                n.epoch,
			SinceHeartbeatMillis: now.Sub(n.lastHeartbeat).Milliseconds(),
			Requests:             n.requests.Load(),
			Failures:             n.failures.Load(),
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}
