package cluster

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// NodeState is a worker's position in the health lifecycle. Registration
// and heartbeats move a node toward NodeReady; missed heartbeats walk it
// through NodeSuspect to NodeDead; a proxy failure short-circuits straight
// to NodeSuspect without waiting for the detector.
type NodeState int

const (
	// NodeReady nodes receive new placements.
	NodeReady NodeState = iota
	// NodeSuspect nodes missed at least the suspect threshold of
	// heartbeats (or just failed a proxied request). They receive no new
	// placements while any ready node remains, but keep their in-flight
	// work: a suspect node may merely be slow, and yanking its work early
	// would duplicate computation.
	NodeSuspect
	// NodeDead nodes missed the dead threshold. The reconciler cancels and
	// re-places everything assigned to them; only a fresh heartbeat or
	// re-registration revives them.
	NodeDead
)

func (s NodeState) String() string {
	switch s {
	case NodeReady:
		return "ready"
	case NodeSuspect:
		return "suspect"
	case NodeDead:
		return "dead"
	}
	return fmt.Sprintf("NodeState(%d)", int(s))
}

// node is a registered worker. Immutable fields are set at registration;
// the mutable tail is guarded by the registry mutex, except the counters,
// which are atomic so the proxy path never takes the registry lock just to
// count.
type node struct {
	id       string
	endpoint string
	capacity int

	state         NodeState
	lastHeartbeat time.Time
	// algoVersion is the worker's advertised algorithm identity, refreshed
	// on every register and heartbeat. Placement refuses to mix versions
	// within one sweep job, and the shadow verifier attributes divergence
	// with it.
	algoVersion string
	// schemaVersion is the worker's advertised wire-codec identity. The
	// coordinator refuses to mix schemas in one fleet; empty means a
	// pre-schema worker and is compatible with anything.
	schemaVersion string
	// draining marks a node the operator is retiring via
	// POST /v1/fleet/nodes/{id}/drain: it stays registered and healthy but
	// attracts no new placements. Persisted so a drain survives a
	// coordinator restart.
	draining bool
	// epoch is the worker's last reported cache epoch (runtime state, like
	// health — only the worker's own reports can prove it).
	epoch uint64

	requests atomic.Int64 // proxied requests + job cells routed here
	failures atomic.Int64 // transport errors and 5xx answers observed
	// inflight is the coordinator's own count of work outstanding on this
	// node (proxied schedule requests, batch loops, sweep cells). It is the
	// load signal bounded-load placement spills on: locally maintained, so
	// it moves request-by-request instead of once per heartbeat.
	inflight atomic.Int64
	// spillOut counts placements this node — as the key's HRW owner — shed
	// to a lower-ranked node because it was over the load bound; spillIn
	// counts placements this node absorbed from an overloaded owner.
	// Together they show where a skewed workload's heat actually flows.
	spillOut atomic.Int64
	spillIn  atomic.Int64

	// Load signals the worker itself reported on its last heartbeat
	// (observability only — placement uses the coordinator-side inflight).
	repInflight atomic.Int64
	repShed     atomic.Int64
	repP99      atomic.Uint64 // math.Float64bits of p99 in microseconds
}

// NodeInfo is a point-in-time snapshot of one node, the JSON shape of
// GET /v1/nodes.
type NodeInfo struct {
	ID            string `json:"id"`
	Endpoint      string `json:"endpoint"`
	Capacity      int    `json:"capacity"`
	State         string `json:"state"`
	AlgoVersion   string `json:"algo_version,omitempty"`
	SchemaVersion string `json:"schema_version,omitempty"`
	Draining      bool   `json:"draining,omitempty"`
	Epoch         uint64 `json:"epoch"`
	// SinceHeartbeatMillis is the age of the last heartbeat.
	SinceHeartbeatMillis int64 `json:"since_heartbeat_millis"`
	Requests             int64 `json:"requests"`
	Failures             int64 `json:"failures"`
	// Inflight is the coordinator's live count of work outstanding on this
	// node — the signal bounded-load placement spills on.
	Inflight int64 `json:"inflight"`
	// SpillOut counts placements this node (as HRW owner) shed over the load
	// bound; SpillIn counts placements it absorbed from overloaded owners.
	SpillOut int64 `json:"spill_out,omitempty"`
	SpillIn  int64 `json:"spill_in,omitempty"`
	// ReportedInflight, Shed and P99Micros are the worker's own last
	// heartbeat-reported load signals.
	ReportedInflight int64   `json:"reported_inflight,omitempty"`
	Shed             int64   `json:"shed,omitempty"`
	P99Micros        float64 `json:"p99_micros,omitempty"`
}

// registry is the coordinator's node table. Registration facts (ID,
// endpoint, capacity) are persisted through the store; health is runtime
// state only heartbeats can prove, so a restarted coordinator adopts
// journaled nodes as suspect and lets the next heartbeat — or the agent's
// heartbeat-404 re-register fallback — promote them. The store and the
// registry stay reconciled: every register writes through, every removal
// (deregister, dead-node expiry) deletes through.
type registry struct {
	mu       sync.Mutex
	nodes    map[string]*node
	now      func() time.Time // injectable for lifecycle tests
	st       store.Store
	storeErr func(op string, err error) // best-effort persistence failures
}

func newRegistry(st store.Store, storeErr func(op string, err error)) *registry {
	return &registry{nodes: make(map[string]*node), now: time.Now, st: st, storeErr: storeErr}
}

// register adds or refreshes a node: a known ID gets its endpoint and
// capacity updated and its state reset to ready (the worker is plainly
// alive — it just spoke to us). The registration facts are persisted
// before the node becomes placeable; a store failure rejects the
// registration so the worker retries rather than running un-journaled.
func (r *registry) register(id, endpoint string, capacity int, algoVersion string, epoch uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[id]
	// Draining and schema are sticky across re-registration (a drain is
	// operator intent about the node, not about one worker process), so the
	// write-through must not wipe them from the journal.
	rec := store.NodeRecord{ID: id, Endpoint: endpoint, Capacity: capacity, AlgoVersion: algoVersion}
	if ok {
		rec.SchemaVersion = n.schemaVersion
		rec.Draining = n.draining
	}
	if err := r.st.PutNode(rec); err != nil {
		return err
	}
	if !ok {
		n = &node{id: id}
		r.nodes[id] = n
	}
	n.endpoint = endpoint
	n.capacity = capacity
	n.algoVersion = algoVersion
	n.epoch = epoch
	n.state = NodeReady
	n.lastHeartbeat = r.now()
	return nil
}

// adopt seeds the registry from journaled registration facts at startup.
// Adopted nodes enter suspect — the journal proves they existed, not that
// they are alive — with a fresh heartbeat stamp so the health sweeps walk
// them to dead on the normal thresholds if they never call back. Suspect
// (not dead) matters: a mid-sweep fleet keeps receiving placements through
// the no-ready-nodes fallback while everyone's first post-restart
// heartbeat is still in flight.
func (r *registry) adopt(recs []store.NodeRecord) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	adopted := 0
	for _, rec := range recs {
		if _, ok := r.nodes[rec.ID]; ok {
			continue
		}
		r.nodes[rec.ID] = &node{
			id:            rec.ID,
			endpoint:      rec.Endpoint,
			capacity:      rec.Capacity,
			algoVersion:   rec.AlgoVersion,
			schemaVersion: rec.SchemaVersion,
			draining:      rec.Draining,
			state:         NodeSuspect,
			lastHeartbeat: r.now(),
		}
		adopted++
	}
	return adopted
}

// heartbeat refreshes a node's liveness, reviving suspect and dead nodes,
// and absorbs the version and epoch the worker piggybacked on the beat (an
// empty version is an older worker and leaves the registered one alone).
// It reports false for an unknown ID: the worker must re-register so the
// coordinator relearns its endpoint and capacity.
func (r *registry) heartbeat(id, algoVersion string, epoch uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[id]
	if !ok {
		return false
	}
	if algoVersion != "" && algoVersion != n.algoVersion {
		n.algoVersion = algoVersion
		if err := r.st.PutNode(store.NodeRecord{ID: id, Endpoint: n.endpoint, Capacity: n.capacity, AlgoVersion: algoVersion}); err != nil {
			r.storeErr("put_node", err)
		}
	}
	n.epoch = epoch
	n.state = NodeReady
	n.lastHeartbeat = r.now()
	return true
}

// schemaConflict reports whether an incoming schema version is incompatible
// with the fleet's: some non-dead node advertises a different non-empty
// schema. Empty on either side is a pre-schema build and compatible with
// anything. It returns the conflicting fleet schema for the error message.
func (r *registry) schemaConflict(schema string) (string, bool) {
	if schema == "" {
		return "", false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.nodes {
		if n.state != NodeDead && n.schemaVersion != "" && n.schemaVersion != schema {
			return n.schemaVersion, true
		}
	}
	return "", false
}

// noteSchema records a node's advertised wire-codec identity and persists
// it (so a restarted coordinator still refuses a mixed-schema joiner).
// Empty schemas — older workers — leave the recorded one alone.
func (r *registry) noteSchema(id, schema string) {
	if schema == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[id]
	if !ok || n.schemaVersion == schema {
		return
	}
	n.schemaVersion = schema
	rec := store.NodeRecord{ID: id, Endpoint: n.endpoint, Capacity: n.capacity,
		AlgoVersion: n.algoVersion, SchemaVersion: schema, Draining: n.draining}
	if err := r.st.PutNode(rec); err != nil {
		r.storeErr("put_node", err)
	}
}

// absorbLoad records the load signals a worker piggybacked on its
// heartbeat. Observability only: placement spills on the coordinator's own
// inflight counter, which moves request-by-request.
func (r *registry) absorbLoad(id string, inflight, shed int64, p99Micros float64) {
	r.mu.Lock()
	n, ok := r.nodes[id]
	r.mu.Unlock()
	if !ok {
		return
	}
	n.repInflight.Store(inflight)
	n.repShed.Store(shed)
	n.repP99.Store(math.Float64bits(p99Micros))
}

// incInflight/decInflight maintain the coordinator-side outstanding-work
// count bounded-load placement spills on. Atomic so the proxy hot path
// never takes the registry lock twice per request.
func (r *registry) incInflight(id string) {
	r.mu.Lock()
	n, ok := r.nodes[id]
	r.mu.Unlock()
	if ok {
		n.inflight.Add(1)
	}
}

func (r *registry) decInflight(id string) {
	r.mu.Lock()
	n, ok := r.nodes[id]
	r.mu.Unlock()
	if ok {
		n.inflight.Add(-1)
	}
}

// setDraining flips a node's drain flag (operator intent from
// POST /v1/fleet/nodes/{id}/drain and /undrain), persisting it so the
// decision survives a coordinator restart. False means unknown ID.
func (r *registry) setDraining(id string, draining bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[id]
	if !ok {
		return false
	}
	if n.draining == draining {
		return true
	}
	n.draining = draining
	rec := store.NodeRecord{ID: id, Endpoint: n.endpoint, Capacity: n.capacity,
		AlgoVersion: n.algoVersion, SchemaVersion: n.schemaVersion, Draining: draining}
	if err := r.st.PutNode(rec); err != nil {
		r.storeErr("put_node", err)
	}
	return true
}

// shedTotal sums the workers' reported 429 counts — the fleet-wide shed
// signal the scaling advisor watches.
func (r *registry) shedTotal() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, n := range r.nodes {
		total += n.repShed.Load()
	}
	return total
}

// deregister removes a node entirely (graceful worker shutdown). The
// store delete is best-effort: an already-gone worker must not stay
// placeable just because the journal hiccuped.
func (r *registry) deregister(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[id]; !ok {
		return false
	}
	delete(r.nodes, id)
	if err := r.st.DeleteNode(id); err != nil {
		r.storeErr("delete_node", err)
	}
	return true
}

// reportFailure marks a node suspect after a proxied request failed on it
// (transport error, truncated response or 5xx). The health detector — not
// the proxy — owns the dead transition: one failed request on a live node
// must not strand its whole queue, but it should stop attracting new work
// until a heartbeat clears it.
func (r *registry) reportFailure(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[id]; ok {
		n.failures.Add(1)
		if n.state == NodeReady {
			n.state = NodeSuspect
		}
	}
}

// sweepHealth applies the missed-heartbeat thresholds and returns the IDs
// of nodes that transitioned in this pass: suspected is every ready node
// that just went suspect (logged once per transition), died every node that
// just went dead (the reconciler re-places their work exactly once per
// transition).
func (r *registry) sweepHealth(suspectAfter, deadAfter time.Duration) (suspected, died []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	for _, n := range r.nodes {
		age := now.Sub(n.lastHeartbeat)
		switch {
		case age >= deadAfter:
			if n.state != NodeDead {
				n.state = NodeDead
				died = append(died, n.id)
			}
		case age >= suspectAfter:
			if n.state == NodeReady {
				n.state = NodeSuspect
				suspected = append(suspected, n.id)
			}
		}
	}
	sort.Strings(suspected)
	sort.Strings(died)
	return suspected, died
}

// expireDead garbage-collects nodes that have been silent longer than
// expiry. Without this, crashed workers with churned IDs (the default ID is
// the advertised host:port, often an ephemeral port) would accumulate as
// dead entries forever, growing /v1/nodes, the per-node metric series and
// every health sweep without bound.
func (r *registry) expireDead(expiry time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	for id, n := range r.nodes {
		if n.state == NodeDead && now.Sub(n.lastHeartbeat) >= expiry {
			delete(r.nodes, id)
			if err := r.st.DeleteNode(id); err != nil {
				r.storeErr("delete_node", err)
			}
		}
	}
}

// state returns a node's current state (dead for unknown IDs — an
// unregistered node is as gone as a dead one to the reconciler).
func (r *registry) state(id string) NodeState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[id]; ok {
		return n.state
	}
	return NodeDead
}

// candidate is the placement view of a node: identity, endpoint, algorithm
// version and the in-flight count at snapshot time, taken under the lock so
// placement itself runs lock-free.
type candidate struct {
	id       string
	endpoint string
	version  string
	inflight int64
}

// candidates returns the placeable nodes: all ready ones, or — when no
// node is ready — the suspect ones, so a fleet that is merely slow keeps
// serving instead of answering 503. Dead nodes are never placed on, and
// draining nodes only when the whole fleet is draining (an operator who
// drained everything still wants requests answered, not 503s).
func (r *registry) candidates() []candidate {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ready, suspect, draining []candidate
	for _, n := range r.nodes {
		c := candidate{id: n.id, endpoint: n.endpoint, version: n.algoVersion, inflight: n.inflight.Load()}
		switch {
		case n.state == NodeDead:
		case n.draining:
			draining = append(draining, c)
		case n.state == NodeReady:
			ready = append(ready, c)
		default:
			suspect = append(suspect, c)
		}
	}
	if len(ready) > 0 {
		return ready
	}
	if len(suspect) > 0 {
		return suspect
	}
	return draining
}

// versionOf returns a node's current algorithm version ("" for unknown
// IDs).
func (r *registry) versionOf(id string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[id]; ok {
		return n.algoVersion
	}
	return ""
}

// dominantVersion returns the algorithm version the majority of non-dead
// nodes advertise (ties broken toward the lexicographically greater
// version — during a rolling upgrade that is the incoming one). The shadow
// verifier uses it to decide which side of a divergence is the outlier.
func (r *registry) dominantVersion() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	counts := make(map[string]int)
	for _, n := range r.nodes {
		if n.state != NodeDead {
			counts[n.algoVersion]++
		}
	}
	best, bestN := "", -1
	for v, c := range counts {
		if c > bestN || (c == bestN && v > best) {
			best, bestN = v, c
		}
	}
	return best
}

// markSuspect demotes a ready node to suspect without touching its failure
// counter semantics (the shadow verifier's "this node's bytes diverge"
// verdict is a health signal, not a transport failure).
func (r *registry) markSuspect(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[id]; ok && n.state == NodeReady {
		n.state = NodeSuspect
	}
}

// setNodeEpoch records the epoch a node confirmed during a flush fan-out,
// so /v1/nodes reflects convergence immediately instead of one heartbeat
// later.
func (r *registry) setNodeEpoch(id string, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[id]; ok {
		n.epoch = epoch
	}
}

// countSpill attributes one bounded-load spill: the key's HRW owner shed it
// (spill-out), the picked node absorbed it (spill-in). Atomic counters, same
// discipline as the request/failure tallies.
func (r *registry) countSpill(ownerID, pickedID string) {
	r.mu.Lock()
	owner, okOwner := r.nodes[ownerID]
	picked, okPicked := r.nodes[pickedID]
	r.mu.Unlock()
	if okOwner {
		owner.spillOut.Add(1)
	}
	if okPicked {
		picked.spillIn.Add(1)
	}
}

// countRequest bumps a node's routed-request counter.
func (r *registry) countRequest(id string) {
	r.mu.Lock()
	n, ok := r.nodes[id]
	r.mu.Unlock()
	if ok {
		n.requests.Add(1)
	}
}

// snapshot returns every node sorted by ID (the /v1/nodes and /metrics
// view).
func (r *registry) snapshot() []NodeInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	infos := make([]NodeInfo, 0, len(r.nodes))
	for _, n := range r.nodes {
		infos = append(infos, NodeInfo{
			ID:                   n.id,
			Endpoint:             n.endpoint,
			Capacity:             n.capacity,
			State:                n.state.String(),
			AlgoVersion:          n.algoVersion,
			SchemaVersion:        n.schemaVersion,
			Draining:             n.draining,
			Epoch:                n.epoch,
			SinceHeartbeatMillis: now.Sub(n.lastHeartbeat).Milliseconds(),
			Requests:             n.requests.Load(),
			Failures:             n.failures.Load(),
			Inflight:             n.inflight.Load(),
			SpillOut:             n.spillOut.Load(),
			SpillIn:              n.spillIn.Load(),
			ReportedInflight:     n.repInflight.Load(),
			Shed:                 n.repShed.Load(),
			P99Micros:            math.Float64frombits(n.repP99.Load()),
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}
