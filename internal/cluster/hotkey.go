package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/server"
)

// The Zipf hot-key benchmark: proof that bounded-load placement converts a
// skewed workload's owner bottleneck into fleet-wide throughput without
// changing a byte of any response.
//
// A plain in-process fleet cannot show the effect — cache hits cost
// nanoseconds, so one owner absorbs any skew. Each worker is therefore
// wrapped in a serve gate (ServeSlots concurrent requests, ServeDelay each)
// modeling a node with finite serving capacity, the same way for every
// phase. Three phases run, each on a freshly booted coordinator + fleet:
//
//  1. uniform traffic, spilling enabled — the throughput ceiling;
//  2. Zipf-skewed traffic, spilling disabled — pure HRW pins the hot key
//     to its owner, collapsing throughput toward one node's capacity;
//  3. the identical Zipf traffic, spilling enabled — the owner sheds the
//     hot key's overflow down the HRW ranking, and throughput climbs back
//     toward the uniform ceiling.
//
// The hottest key's response bytes are captured in every phase and must be
// identical across all of them: spilling moves computation, never output.

// HotKeyOptions tunes MeasureHotKey.
type HotKeyOptions struct {
	// Requests is the per-phase request count (default 600).
	Requests int
	// Concurrency is the number of client goroutines (default 24).
	Concurrency int
	// Workers is the fleet size (default 3).
	Workers int
	// ZipfS is the skew exponent (default 2.0: the hottest of 81 keys
	// draws ~60% of the traffic).
	ZipfS float64
	// Seed fixes the Zipf sequence (default 1).
	Seed int64
	// ServeSlots is each worker's concurrent-serve capacity (default 2).
	ServeSlots int
	// ServeDelay is the modeled per-request service time (default 5ms).
	ServeDelay time.Duration
}

func (o HotKeyOptions) requests() int {
	if o.Requests > 0 {
		return o.Requests
	}
	return 600
}

func (o HotKeyOptions) concurrency() int {
	if o.Concurrency > 0 {
		return o.Concurrency
	}
	return 24
}

func (o HotKeyOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 3
}

func (o HotKeyOptions) zipfS() float64 {
	if o.ZipfS > 1 {
		return o.ZipfS
	}
	return 2.0
}

func (o HotKeyOptions) seed() int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

func (o HotKeyOptions) serveSlots() int {
	if o.ServeSlots > 0 {
		return o.ServeSlots
	}
	return 2
}

func (o HotKeyOptions) serveDelay() time.Duration {
	if o.ServeDelay > 0 {
		return o.ServeDelay
	}
	return 5 * time.Millisecond
}

// hotKeyBodies builds n distinct trivially-cheap schedule requests. The
// benchmark deliberately does not use the heavyweight perf mix: real
// scheduling cost would swamp the serve gate and the phases would measure
// compute, not placement. With near-free bodies the gate is each worker's
// entire capacity, which is the regime where placement policy decides
// throughput.
func hotKeyBodies(n int) ([][]byte, error) {
	bodies := make([][]byte, n)
	for i := range bodies {
		loop := fmt.Sprintf(`loop hot%d 100
node 0 Load a[i]
node 1 FPMul *c
node 2 FPAdd +s
node 3 Store s=
edge 0 1 2 0 data
edge 1 2 4 0 data
edge 2 3 4 0 data
edge 2 2 4 1 data
`, i)
		b, err := json.Marshal(map[string]any{
			"loop_text": loop,
			"clusters":  2, "regs": 32, "nbus": 1, "latbus": 1,
			"scheme": "GP",
		})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

// hotKeyPhase boots a fresh coordinator + serve-gated fleet, drives the
// request sequence through it, and returns requests/sec, the spill count,
// shed/error counts, and the hottest key's response bytes.
func hotKeyPhase(cfg Config, opts HotKeyOptions, bodies [][]byte, seq []int) (perSec float64, spills int64, rejected, errs int, hotBody []byte, err error) {
	cfg.Store = nil // every phase owns a fresh in-memory store
	coord, err := New(cfg)
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		coord.Close()
		return 0, 0, 0, 0, nil, err
	}
	chs := &http.Server{Handler: coord.Handler()}
	go func() { _ = chs.Serve(cln) }()
	defer func() {
		_ = chs.Close()
		coord.Close()
	}()
	base := "http://" + cln.Addr().String()

	type worker struct {
		srv   *server.Server
		hs    *http.Server
		agent *server.Agent
	}
	var fleet []worker
	defer func() {
		for _, w := range fleet {
			w.agent.Close()
			_ = w.hs.Close()
			w.srv.Close()
		}
	}()
	for i := 0; i < opts.workers(); i++ {
		id := fmt.Sprintf("hot-worker-%d", i)
		srv := server.New(server.Config{NodeID: id})
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return 0, 0, 0, 0, nil, lerr
		}
		// The serve gate: ServeSlots concurrent requests, ServeDelay each —
		// a node with finite capacity, applied identically in every phase so
		// the phases differ only in traffic shape and placement policy.
		gate := make(chan struct{}, opts.serveSlots())
		inner := srv.Handler()
		gated := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			gate <- struct{}{}
			defer func() { <-gate }()
			time.Sleep(opts.serveDelay())
			inner.ServeHTTP(w, r)
		})
		hs := &http.Server{Handler: gated}
		go func() { _ = hs.Serve(ln) }()
		agent := server.StartAgent(server.AgentConfig{
			Coordinator: base,
			NodeID:      id,
			Endpoint:    "http://" + ln.Addr().String(),
			Capacity:    runtime.GOMAXPROCS(0),
			Load:        srv.Load,
		})
		fleet = append(fleet, worker{srv: srv, hs: hs, agent: agent})
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ready := 0
		for _, n := range coord.Nodes() {
			if n.State == NodeReady.String() {
				ready++
			}
		}
		if ready == opts.workers() {
			break
		}
		if time.Now().After(deadline) {
			return 0, 0, 0, 0, nil, fmt.Errorf("cluster: only %d/%d hot-key workers registered", ready, opts.workers())
		}
		time.Sleep(5 * time.Millisecond)
	}

	total := len(seq)
	client := &http.Client{}
	var next atomic.Int64
	var errCount, shedCount atomic.Int64
	var hotMu sync.Mutex
	var hot []byte
	hotMismatch := false

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < opts.concurrency(); c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				idx := seq[i]
				resp, err := client.Post(base+"/v1/schedule", "application/json", bytes.NewReader(bodies[idx]))
				if err != nil {
					errCount.Add(1)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					shedCount.Add(1)
				case resp.StatusCode != http.StatusOK:
					errCount.Add(1)
				case idx == 0:
					// The hottest key: every response must be byte-identical
					// no matter which node the bound placed it on.
					hotMu.Lock()
					if hot == nil {
						hot = body
					} else if !bytes.Equal(hot, body) {
						hotMismatch = true
					}
					hotMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if hotMismatch {
		return 0, 0, 0, 0, nil, fmt.Errorf("cluster: hot-key responses diverged within one phase")
	}
	return float64(total) / elapsed.Seconds(), coord.metrics.spills.Load(),
		int(shedCount.Load()), int(errCount.Load()), hot, nil
}

// MeasureHotKey runs the three-phase hot-key benchmark and returns its
// snapshot (embedded in BENCH_cluster.json by gpcoordd -bench-json).
// cfg.Store is ignored; each phase boots on a fresh in-memory store.
func MeasureHotKey(cfg Config, opts HotKeyOptions) (*bench.HotKeySnapshot, error) {
	bodies, err := hotKeyBodies(81)
	if err != nil {
		return nil, err
	}

	total := opts.requests()
	// The skewed sequence is drawn once and replayed verbatim in both hot
	// phases: the no-spill and spill measurements see the exact same
	// traffic, so the only difference between them is the placement policy.
	sampler := bench.NewZipfSampler(opts.seed(), opts.zipfS(), uint64(len(bodies)-1))
	hotSeq := make([]int, total)
	hotCount := 0
	for i := range hotSeq {
		hotSeq[i] = int(sampler.Next())
		if hotSeq[i] == 0 {
			hotCount++
		}
	}
	uniformSeq := make([]int, total)
	for i := range uniformSeq {
		uniformSeq[i] = i % len(bodies)
	}

	spillCfg := cfg
	spillCfg.LoadBound = cfg.loadBound() // default 1.25 unless overridden
	noSpillCfg := cfg
	noSpillCfg.LoadBound = -1 // pure HRW: the owner takes everything

	uniformPerSec, _, shed1, err1, hot1, uerr := hotKeyPhase(spillCfg, opts, bodies, uniformSeq)
	if uerr != nil {
		return nil, uerr
	}
	noSpillPerSec, _, shed2, err2, hot2, nerr := hotKeyPhase(noSpillCfg, opts, bodies, hotSeq)
	if nerr != nil {
		return nil, nerr
	}
	spillPerSec, spills, shed3, err3, hot3, serr := hotKeyPhase(spillCfg, opts, bodies, hotSeq)
	if serr != nil {
		return nil, serr
	}
	// Across phases too: a spilled hot key must serve the same bytes the
	// unspilled owner did.
	if !bytes.Equal(hot1, hot2) || !bytes.Equal(hot2, hot3) {
		return nil, fmt.Errorf("cluster: hot-key responses diverged across phases")
	}

	snap := &bench.HotKeySnapshot{
		Workers:          opts.workers(),
		Requests:         total,
		Concurrency:      opts.concurrency(),
		ZipfS:            opts.zipfS(),
		ZipfSeed:         opts.seed(),
		UniqueKeys:       len(bodies),
		HotKeyShare:      float64(hotCount) / float64(total),
		LoadBound:        spillCfg.loadBound(),
		UniformPerSec:    uniformPerSec,
		HotNoSpillPerSec: noSpillPerSec,
		HotSpillPerSec:   spillPerSec,
		Spills:           spills,
		Errors:           err1 + err2 + err3,
		Rejected:         shed1 + shed2 + shed3,
	}
	if noSpillPerSec > 0 {
		snap.SpeedupVsNoSpill = spillPerSec / noSpillPerSec
	}
	if spillPerSec > 0 {
		snap.UniformOverSpill = uniformPerSec / spillPerSec
	}
	return snap, nil
}
