package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/server"
	"repro/internal/store"
)

// The async batch layer: POST /v1/jobs accepts one machines × corpora ×
// schemes sweep, shards it cell-by-cell (one machine × corpus pair each,
// the unit bench.SweepCells enumerates) across the worker fleet, and
// reassembles the per-cell CSV fragments in enumeration order — so a
// finished job is byte-identical to single-node bench.Sweep output. Cells
// are placed by rendezvous hashing on their content key (machine text,
// corpus, trim, verify), so re-running the same job re-lands each cell on
// the worker that already computed it.

type cellState int

const (
	cellPending cellState = iota
	cellRunning
	cellDone
	cellFailed
)

func (s cellState) String() string {
	switch s {
	case cellPending:
		return "pending"
	case cellRunning:
		return "running"
	case cellDone:
		return "done"
	case cellFailed:
		return "failed"
	}
	return fmt.Sprintf("cellState(%d)", int(s))
}

// jobCell is one shard of a job. Mutable fields are guarded by the owning
// job's mutex.
type jobCell struct {
	index       int
	machineName string
	corpus      string
	key         string // content address, the HRW placement key
	reqBody     []byte // the worker /v1/sweep body for exactly this cell

	state    cellState
	node     string // node of the current/last attempt
	attempts int
	exclude  map[string]bool
	cancel   context.CancelFunc // in-flight attempt cancel, nil when idle
	rows     []byte             // CSV fragment (header stripped) once done
	err      string
}

type jobState int

const (
	jobRunning jobState = iota
	jobDone
	jobFailed
)

func (s jobState) String() string {
	switch s {
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	}
	return fmt.Sprintf("jobState(%d)", int(s))
}

// job is one async sweep. Its durable core — the request body, completed
// cell fragments and terminal state — is written through to the
// coordinator's store as it happens; placement, attempts and in-flight
// cancels stay in memory. A journaled coordinator restart therefore
// rebuilds every job from its request (the cell enumeration is
// deterministic), restores the cells the journal proves finished, and
// re-dispatches only the rest.
type job struct {
	id      string
	resumed bool // rebuilt from the journal after a restart
	ctx     context.Context
	cancel  context.CancelFunc

	mu    sync.Mutex
	state jobState
	cells []*jobCell
	csv   []byte // assembled on completion
	done  chan struct{}
	// algoVersion pins the job to the algorithm version of the first
	// worker a cell lands on ("" until then, or forever on a fleet that
	// does not advertise versions). Every later placement filters to the
	// pinned version: one job's CSV must never mix fragments computed by
	// different scheduler generations, because the mix would be silently
	// irreproducible on any single binary.
	algoVersion string
}

// JobCellStatus is the per-cell slice of a job-status response.
type JobCellStatus struct {
	Machine  string `json:"machine"`
	Corpus   string `json:"corpus"`
	State    string `json:"state"`
	Node     string `json:"node,omitempty"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`
	// Rows carries a done cell's CSV fragment when the status request asked
	// for partial results (?partial=1).
	Rows string `json:"rows,omitempty"`
}

// JobStatus is the body of GET /v1/jobs/{id} (and of the POST /v1/jobs
// acknowledgement); without Detail it is one entry of the GET /v1/jobs
// listing.
type JobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cells  int    `json:"cells"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
	// Resumed marks a job rebuilt from the journal after a coordinator
	// restart.
	Resumed bool            `json:"resumed,omitempty"`
	Detail  []JobCellStatus `json:"cell_status,omitempty"`
}

// summary is the Detail-free status used by the GET /v1/jobs listing.
func (j *job) summary() JobStatus {
	st := j.status(false)
	st.Detail = nil
	return st
}

// status snapshots the job under its lock.
func (j *job) status(partial bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, State: j.state.String(), Cells: len(j.cells), Resumed: j.resumed}
	for _, cl := range j.cells {
		cs := JobCellStatus{
			Machine:  cl.machineName,
			Corpus:   cl.corpus,
			State:    cl.state.String(),
			Node:     cl.node,
			Attempts: cl.attempts,
			Error:    cl.err,
		}
		switch cl.state {
		case cellDone:
			st.Done++
			if partial {
				cs.Rows = string(cl.rows)
			}
		case cellFailed:
			st.Failed++
		}
		st.Detail = append(st.Detail, cs)
	}
	return st
}

// jobTable is the coordinator's runtime job index; the durable record of
// each job lives in the store.
type jobTable struct {
	mu    sync.Mutex
	byID  map[string]*job
	order []string // creation order, for bounded retention
	seq   int64
	wg    sync.WaitGroup
}

func (t *jobTable) get(id string) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byID[id]
}

func (t *jobTable) running() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, j := range t.byID {
		j.mu.Lock()
		if j.state == jobRunning {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// insert registers a new job, evicting the oldest finished job when the
// table is full. It reports false when every retained job is still running
// (the caller sheds with 429); the evicted ID, if any, is returned so the
// caller can drop it from the store too.
func (t *jobTable) insert(j *job, max int) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var evictedID string
	if len(t.byID) >= max {
		evicted := false
		for i, id := range t.order {
			old := t.byID[id]
			old.mu.Lock()
			finished := old.state != jobRunning
			old.mu.Unlock()
			if finished {
				delete(t.byID, id)
				t.order = append(t.order[:i], t.order[i+1:]...)
				evictedID = id
				evicted = true
				break
			}
		}
		if !evicted {
			return "", false
		}
	}
	t.byID[j.id] = j
	t.order = append(t.order, j.id)
	return evictedID, true
}

// remove deletes a job the coordinator could not persist (insert's
// mirror, for the create path's store-failure unwind).
func (t *jobTable) remove(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.byID, id)
	for i, o := range t.order {
		if o == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// list returns the retained jobs in creation order.
func (t *jobTable) list() []*job {
	t.mu.Lock()
	defer t.mu.Unlock()
	jobs := make([]*job, 0, len(t.order))
	for _, id := range t.order {
		jobs = append(jobs, t.byID[id])
	}
	return jobs
}

func (t *jobTable) nextID() (string, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	return "job-" + strconv.FormatInt(t.seq, 10), t.seq
}

// cancelInflightOn cancels every in-flight cell attempt currently placed
// on the given (now dead) node, returning how many it re-queued. The cell
// dispatchers observe the canceled context as a failed attempt and re-place
// the cell on a survivor with the dead node excluded.
func (t *jobTable) cancelInflightOn(nodeID string) int64 {
	t.mu.Lock()
	jobs := make([]*job, 0, len(t.byID))
	for _, j := range t.byID {
		jobs = append(jobs, j)
	}
	t.mu.Unlock()
	var n int64
	for _, j := range jobs {
		j.mu.Lock()
		for _, cl := range j.cells {
			if cl.state == cellRunning && cl.node == nodeID && cl.cancel != nil {
				cl.cancel()
				cl.cancel = nil
				n++
			}
		}
		j.mu.Unlock()
	}
	return n
}

// sweepCSVHeader is the header line every worker cell response starts with.
var sweepCSVHeader = func() []byte {
	var buf bytes.Buffer
	if err := bench.WriteSweepHeader(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}()

// cellKey content-addresses one cell the same way gpserved content-
// addresses a schedule request: over canonical inputs, so the key is
// stable across coordinators and restarts and the cell re-lands on the
// worker whose cache is warm.
func cellKey(m *machine.Config, corpus string, maxLoops int, verify bool) string {
	h := sha256.New()
	h.Write([]byte(machine.Format(m)))
	h.Write([]byte{0})
	h.Write([]byte(corpus))
	h.Write([]byte{0})
	fmt.Fprintf(h, "%d|%t", maxLoops, verify)
	return hex.EncodeToString(h.Sum(nil))
}

// buildJobCells enumerates a resolved sweep request's cells — the create
// path and the journal-recovery rebuild must agree byte-for-byte, which is
// what makes restored fragments verifiable against recomputed keys.
func buildJobCells(req *server.SweepRequest, machines []*machine.Config, corpora []bench.Corpus) ([]*jobCell, error) {
	var cells []*jobCell
	for i, cell := range bench.SweepCells(machines, corpora) {
		body, err := json.Marshal(&server.SweepRequest{
			Machines: []machine.Config{*cell.Machine},
			Corpora:  []string{cell.Corpus.Name},
			MaxLoops: req.MaxLoops,
			Verify:   req.Verify,
		})
		if err != nil {
			return nil, fmt.Errorf("marshal cell: %v", err)
		}
		cells = append(cells, &jobCell{
			index:       i,
			machineName: cell.Machine.Name,
			corpus:      cell.Corpus.Name,
			key:         cellKey(cell.Machine, cell.Corpus.Name, req.MaxLoops, req.Verify),
			reqBody:     body,
			exclude:     make(map[string]bool),
		})
	}
	return cells, nil
}

func (c *Coordinator) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	var req server.SweepRequest
	if err := c.readJSON(w, r, &req); err != nil {
		c.writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "bad job body: %v", err)
		return
	}
	// Resolve with gpserved's own defaulting and limits so a job the
	// workers would reject is shed here, and so the cell enumeration
	// matches the single-node sweep exactly.
	machines, corpora, err := server.ResolveSweep(&req)
	if err != nil {
		c.writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "%v", err)
		return
	}
	// The resolved request is the job's durable record: recovery re-derives
	// the identical cell enumeration from these bytes.
	reqBytes, err := json.Marshal(&req)
	if err != nil {
		c.writeError(w, http.StatusInternalServerError, server.ErrCodeInternal, "marshal request: %v", err)
		return
	}

	id, seq := c.jobs.nextID()
	j := &job{id: id, done: make(chan struct{})}
	j.ctx, j.cancel = context.WithCancel(c.ctx)
	j.cells, err = buildJobCells(&req, machines, corpora)
	if err != nil {
		j.cancel()
		c.writeError(w, http.StatusInternalServerError, server.ErrCodeInternal, "%v", err)
		return
	}
	evicted, ok := c.jobs.insert(j, c.cfg.maxJobs())
	if !ok {
		j.cancel()
		c.writeError(w, http.StatusTooManyRequests, server.ErrCodeJobTableFull, "job table full (%d jobs running)", c.cfg.maxJobs())
		return
	}
	if evicted != "" {
		if err := c.st.DeleteJob(evicted); err != nil {
			c.storeError("delete_job", err)
		}
	}
	// Journal the job before acknowledging it: a 202 is a durability
	// promise when -journal is set.
	if err := c.st.PutJob(j.id, seq, reqBytes); err != nil {
		c.jobs.remove(j.id)
		j.cancel()
		c.writeError(w, http.StatusInternalServerError, server.ErrCodeInternal, "persist job: %v", err)
		return
	}
	c.metrics.jobsCreated.Add(1)
	c.jobs.wg.Add(1)
	go c.runJob(j)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(j.status(false))
}

// handleListJobs answers GET /v1/jobs: every retained job's summary in
// creation order, so operators can find resumable and resumed jobs after
// a coordinator restart without knowing their IDs.
func (c *Coordinator) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := c.jobs.list()
	summaries := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		summaries = append(summaries, j.summary())
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(summaries)
}

func (c *Coordinator) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := c.jobs.get(r.PathValue("id"))
	if j == nil {
		c.writeError(w, http.StatusNotFound, server.ErrCodeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(j.status(r.URL.Query().Get("partial") == "1"))
}

func (c *Coordinator) handleJobCSV(w http.ResponseWriter, r *http.Request) {
	j := c.jobs.get(r.PathValue("id"))
	if j == nil {
		c.writeError(w, http.StatusNotFound, server.ErrCodeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	state, csv := j.state, j.csv
	j.mu.Unlock()
	switch state {
	case jobRunning:
		// Not done yet: answer 202 with the status body so pollers can use
		// this one endpoint.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(j.status(false))
	case jobFailed:
		c.writeError(w, http.StatusInternalServerError, server.ErrCodeInternal, "job %s failed, see its cell_status", j.id)
	default:
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		_, _ = w.Write(csv)
	}
}

// runJob dispatches the job's cells with bounded concurrency and assembles
// the final CSV when the last cell lands. Cells the journal already proved
// done (a resumed job) are never re-dispatched.
func (c *Coordinator) runJob(j *job) {
	defer c.jobs.wg.Done()
	// Release the job context once every cell has landed, so long-lived
	// coordinators don't accumulate finished jobs' contexts under c.ctx.
	defer j.cancel()
	sem := make(chan struct{}, c.cfg.jobWorkers())
	var wg sync.WaitGroup
	for _, cell := range j.cells {
		j.mu.Lock()
		alreadyDone := cell.state == cellDone
		j.mu.Unlock()
		if alreadyDone {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(cl *jobCell) {
			defer wg.Done()
			defer func() { <-sem }()
			c.runCell(j, cl)
		}(cell)
	}
	wg.Wait()

	// A shutting-down coordinator abandons rather than finalizes: the cells
	// that were canceled mid-flight would otherwise mark the job failed in
	// the journal, destroying exactly the resumability the journal exists
	// for. Leaving the journaled state "running" makes even a graceful
	// restart resume the job.
	if c.ctx.Err() != nil {
		close(j.done)
		return
	}

	j.mu.Lock()
	failed := false
	for _, cl := range j.cells {
		if cl.state != cellDone {
			failed = true
		}
	}
	if failed {
		j.state = jobFailed
	} else {
		j.state = jobDone
		var buf bytes.Buffer
		buf.Write(sweepCSVHeader)
		for _, cl := range j.cells {
			buf.Write(cl.rows)
		}
		j.csv = buf.Bytes()
	}
	j.mu.Unlock()
	if failed {
		c.metrics.jobsFailed.Add(1)
		if err := c.st.SetJobState(j.id, store.JobFailed); err != nil {
			c.storeError("set_job_state", err)
		}
	} else {
		c.metrics.jobsDone.Add(1)
		if err := c.st.SetJobState(j.id, store.JobDone); err != nil {
			c.storeError("set_job_state", err)
		}
	}
	close(j.done)
}

// runCell drives one cell to done or failed: place by bounded-load HRW,
// post to the worker, and on any node-shaped failure walk the placement
// protocol's abort edge and re-place on the next-ranked survivor with the
// failed node excluded. A canceled attempt context is the reconciler
// yanking the cell off a dead node — the same re-place path. The cell
// survives a fully excluded fleet by starting its exclusion list over (the
// fleet may have churned entirely), and waits out an empty fleet rather
// than failing: workers may still be on their way up. The cell's placement
// is durable: each transition is journaled, so a coordinator killed
// mid-cell re-places the cell on the node it was on — including a spill
// target the load bound had moved it to — instead of recomputing the
// placement from scratch.
func (c *Coordinator) runCell(j *job, cl *jobCell) {
	pl := c.newPlacement(cl.key, true)
	defer pl.drop()
	for {
		if j.ctx.Err() != nil {
			c.finishCell(j, cl, nil, "job canceled")
			return
		}
		j.mu.Lock()
		attempts, exclude, pin := cl.attempts, cloneSet(cl.exclude), j.algoVersion
		j.mu.Unlock()
		if attempts >= c.cfg.maxCellAttempts() {
			c.finishCell(j, cl, nil, fmt.Sprintf("gave up after %d attempts", attempts))
			return
		}
		cands := c.reg.candidates()
		if pin != "" {
			// The job is pinned: never place a cell on a worker running a
			// different algorithm version, even if that means waiting for
			// one of the right generation to come (back) up.
			matching := cands[:0:0]
			for _, cand := range cands {
				if cand.version == pin {
					matching = append(matching, cand)
				}
			}
			if len(matching) < len(cands) {
				c.metrics.versionRefusals.Add(1)
			}
			cands = matching
		}
		// A journaled hint — the node a pre-restart coordinator had this
		// cell on — wins over a fresh placement while it is placeable, so
		// resumed cells land where their work (and cache residency) is.
		var node candidate
		var owner string
		var spilled, ok bool
		if hint := c.placementHint(cl.key); hint != "" && !exclude[hint] {
			for _, cand := range cands {
				if cand.id == hint {
					node, owner, ok = cand, cand.id, true
					break
				}
			}
		}
		if !ok {
			node, owner, _, spilled, ok = placeBoundedOwner(cands, cl.key, exclude, c.cfg.loadBound())
		}
		if !ok {
			if len(exclude) > 0 {
				j.mu.Lock()
				cl.exclude = make(map[string]bool)
				j.mu.Unlock()
				c.metrics.exclusionsResets.Add(1)
				continue
			}
			// No (version-compatible) workers at all: wait for
			// registrations instead of failing.
			select {
			case <-j.ctx.Done():
			case <-time.After(c.cfg.reconcileInterval()):
			}
			continue
		}
		if node.version != "" {
			// Pin the job to the first placed worker's version; a cell that
			// concurrently placed onto a different version loses the race
			// and re-places on the pinned generation (uncounted — the
			// worker did nothing wrong).
			raced := false
			j.mu.Lock()
			if j.algoVersion == "" {
				j.algoVersion = node.version
			} else if j.algoVersion != node.version {
				raced = true
			}
			j.mu.Unlock()
			if raced {
				c.metrics.versionRefusals.Add(1)
				j.mu.Lock()
				cl.exclude[node.id] = true
				cl.state = cellPending
				j.mu.Unlock()
				continue
			}
		}

		// The attempt deadline itself lives in forward; this context exists
		// so the reconciler can yank the attempt off a dead node early.
		attemptCtx, cancel := context.WithCancel(j.ctx)
		j.mu.Lock()
		cl.state = cellRunning
		cl.node = node.id
		cl.attempts++
		cl.cancel = cancel
		j.mu.Unlock()
		c.metrics.placements.Add(1)
		c.reg.countRequest(node.id)
		pl.prepare(node, spilled)
		if spilled {
			c.reg.countSpill(owner, node.id)
			c.metrics.noteSpill(cl.key)
		}

		// Every cell attempt forwards under one deterministic request ID
		// (<job>.cell<index>), so the worker's sweep trace for this cell is
		// retrievable by an ID derivable from the job listing alone — and
		// retried attempts republish under it, newest winning, exactly like
		// singleton failover.
		cellID := fmt.Sprintf("%s.cell%d", j.id, cl.index)
		resp, out, err := c.forward(attemptCtx, node, "/v1/sweep", cl.reqBody, c.cfg.cellTimeout(), cellID)
		cancel()
		j.mu.Lock()
		cl.cancel = nil
		j.mu.Unlock()

		switch {
		case err != nil:
			// Transport error, reconciler cancel or timeout: node-shaped.
			c.reg.reportFailure(node.id)
			pl.abort()
			c.requeueCell(j, cl, node.id, err.Error())
		case resp.StatusCode == http.StatusOK:
			rows, ok := cellRows(out)
			if !ok {
				// A 200 whose CSV is truncated or carries an in-band ERROR
				// row: the worker failed mid-stream.
				c.reg.reportFailure(node.id)
				pl.abort()
				c.requeueCell(j, cl, node.id, "truncated or error CSV")
				continue
			}
			if v := c.reg.versionOf(node.id); v != node.version {
				// The worker changed algorithm generation mid-attempt (a
				// restart under the same ID): its fragment may be from
				// either side of the change, so recompute rather than risk
				// a mixed-version CSV. Uncounted, like the pin race.
				c.metrics.versionRefusals.Add(1)
				pl.abort()
				j.mu.Lock()
				cl.attempts--
				cl.exclude[node.id] = true
				cl.state = cellPending
				j.mu.Unlock()
				continue
			}
			pl.ready()
			c.finishCell(j, cl, rows, "")
			return
		case resp.StatusCode == http.StatusTooManyRequests, resp.StatusCode == http.StatusServiceUnavailable:
			// Saturated or draining, not sick: another worker takes the
			// cell. Load must not burn the attempt budget (a transiently
			// full fleet would fail the job in milliseconds), so the
			// attempt is uncounted and the retry waits a beat — the same
			// policy as an empty fleet. Progress is still guaranteed: a
			// canceled job context exits above, and actual failures still
			// count attempts.
			c.metrics.retries.Add(1)
			pl.abort()
			j.mu.Lock()
			cl.attempts--
			cl.exclude[node.id] = true
			cl.state = cellPending
			j.mu.Unlock()
			select {
			case <-j.ctx.Done():
			case <-time.After(c.cfg.reconcileInterval()):
			}
		case resp.StatusCode >= 500:
			c.reg.reportFailure(node.id)
			pl.abort()
			c.requeueCell(j, cl, node.id, fmt.Sprintf("HTTP %d: %s", resp.StatusCode, firstLine(out)))
		default:
			// 4xx: the cell itself is bad; every worker would agree.
			c.finishCell(j, cl, nil, fmt.Sprintf("worker %s rejected cell: %d %s", node.id, resp.StatusCode, firstLine(out)))
			return
		}
	}
}

// requeueCell walks a cell's failover edge after a node-shaped failure,
// excluding the failed node, and emits the one structured event that
// attributes the retry: which cell, which node, which attempt, why.
func (c *Coordinator) requeueCell(j *job, cl *jobCell, nodeID, reason string) {
	c.metrics.failovers.Add(1)
	c.metrics.cellsRequeued.Add(1)
	j.mu.Lock()
	cl.exclude[nodeID] = true
	cl.state = cellPending
	attempt := cl.attempts
	j.mu.Unlock()
	c.log.Warn("cell attempt failed, requeueing",
		"request", fmt.Sprintf("%s.cell%d", j.id, cl.index),
		"job", j.id, "cell", cl.index, "node", nodeID,
		"attempt", attempt, "reason", reason)
}

// finishCell terminates a cell: done with its CSV fragment, or failed with
// a reason. Done fragments are journaled — content-addressed by the cell
// key — so a restarted coordinator restores them instead of recomputing;
// failures are runtime judgment calls ("gave up after N attempts", "job
// canceled") that a fresh coordinator should get to re-make, so they are
// deliberately not persisted.
func (c *Coordinator) finishCell(j *job, cl *jobCell, rows []byte, failReason string) {
	j.mu.Lock()
	pin := j.algoVersion
	if failReason != "" {
		cl.state = cellFailed
		cl.err = failReason
	} else {
		cl.state = cellDone
		cl.rows = rows
	}
	j.mu.Unlock()
	if failReason == "" {
		c.metrics.cellsDone.Add(1)
		// The fragment is journaled with the job's pinned version, so a
		// restarted coordinator can tell fragments of different scheduler
		// generations apart and never mixes them into one resumed CSV.
		if err := c.st.FinishCell(j.id, store.CellRecord{Index: cl.index, Key: cl.key, Rows: rows, AlgoVersion: pin}); err != nil {
			c.storeError("finish_cell", err)
		}
	}
}

// cellRows validates one worker cell response and strips the header: it
// must start with the sweep header and contain no in-band ERROR row.
func cellRows(body []byte) ([]byte, bool) {
	if !bytes.HasPrefix(body, sweepCSVHeader) {
		return nil, false
	}
	rows := body[len(sweepCSVHeader):]
	if len(rows) == 0 || rows[len(rows)-1] != '\n' {
		return nil, false // truncated mid-row
	}
	if bytes.HasPrefix(rows, []byte("ERROR,")) || bytes.Contains(rows, []byte("\nERROR,")) {
		return nil, false
	}
	return rows, true
}

func cloneSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
