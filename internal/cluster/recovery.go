package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/server"
	"repro/internal/store"
)

// recover replays the store into the coordinator at construction time.
// With the default fresh in-memory store this is a no-op; with a journal
// it is the restart path: adopt the registered nodes as suspect, rebuild
// every retained job from its journaled request, restore the cell
// fragments the journal proves done, and re-dispatch the rest.
func (c *Coordinator) recover() error {
	state, err := c.st.Load()
	if err != nil {
		return fmt.Errorf("load store: %w", err)
	}
	c.jobs.seq = state.JobSeq
	// The fleet epoch is journaled before any flush fans out, so restoring
	// it here is what keeps a restarted coordinator from resurrecting the
	// pre-flush view of the fleet.
	c.epoch.Store(state.Epoch)
	adopted := c.reg.adopt(state.Nodes)
	c.metrics.nodesAdopted.Add(int64(adopted))

	// Durable placements become the live table — and thereby affinity
	// hints: a resumed cell re-lands on the node the pre-restart
	// coordinator had it on, including a spill target the load bound chose,
	// instead of recomputing placement against a fleet that has not even
	// heartbeated yet.
	if len(state.Placements) > 0 {
		c.placements.byKey = make(map[string]store.PlacementRecord, len(state.Placements))
		for _, rec := range state.Placements {
			c.placements.byKey[rec.Key] = rec
		}
		c.log.Info("recovery restored placement records", "placements", len(state.Placements))
	}

	resumed, restored := 0, 0
	for i := range state.Jobs {
		j, cells := c.rebuildJob(&state.Jobs[i])
		c.jobs.byID[j.id] = j
		c.jobs.order = append(c.jobs.order, j.id)
		restored += cells
		j.mu.Lock()
		running := j.state == jobRunning
		j.mu.Unlock()
		if running {
			resumed++
			c.jobs.wg.Add(1)
			go c.runJob(j)
		}
	}
	c.metrics.jobsResumed.Add(int64(resumed))
	c.metrics.cellsRestored.Add(int64(restored))
	if adopted > 0 || len(state.Jobs) > 0 {
		c.log.Info("recovery complete",
			"nodes_adopted", adopted, "jobs_rebuilt", len(state.Jobs),
			"jobs_resumed", resumed, "cells_restored", restored)
	}
	return nil
}

// rebuildJob reconstructs one job from its journal record. The cell list
// is re-derived from the journaled request — the enumeration is
// deterministic, so indices and content keys line up with what the
// pre-restart coordinator computed — and each journaled fragment is
// restored only if its content key matches the recomputed one; a mismatch
// (a tampered or stale fragment) is dropped and that cell recomputed. A
// record whose request no longer parses or resolves becomes a failed
// placeholder: visible in the listing with its error rather than silently
// vanishing. It returns the job and how many done cells were restored.
func (c *Coordinator) rebuildJob(rec *store.JobRecord) (*job, int) {
	j := &job{id: rec.ID, resumed: true, done: make(chan struct{})}
	j.ctx, j.cancel = context.WithCancel(c.ctx)

	fail := func(reason string) (*job, int) {
		c.log.Warn("recovery: job unrecoverable", "job", rec.ID, "reason", reason)
		j.state = jobFailed
		j.cancel()
		close(j.done)
		return j, 0
	}

	var req server.SweepRequest
	if err := json.Unmarshal(rec.Request, &req); err != nil {
		return fail(fmt.Sprintf("unmarshal journaled request: %v", err))
	}
	machines, corpora, err := server.ResolveSweep(&req)
	if err != nil {
		return fail(fmt.Sprintf("resolve journaled request: %v", err))
	}
	j.cells, err = buildJobCells(&req, machines, corpora)
	if err != nil {
		return fail(err.Error())
	}

	restored := 0
	for _, frag := range rec.Cells {
		if frag.Index < 0 || frag.Index >= len(j.cells) {
			c.log.Warn("recovery: journaled cell out of range, recomputing",
				"job", rec.ID, "cell", frag.Index)
			continue
		}
		cl := j.cells[frag.Index]
		if cl.key != frag.Key {
			c.log.Warn("recovery: journaled cell key mismatch, recomputing",
				"job", rec.ID, "cell", frag.Index)
			continue
		}
		// Restored fragments must all come from one scheduler generation:
		// the first valid fragment's version becomes the resumed job's pin,
		// and fragments of any other version are dropped and recomputed —
		// the same no-mixing rule the live placement path enforces.
		if restored == 0 {
			j.algoVersion = frag.AlgoVersion
		} else if frag.AlgoVersion != j.algoVersion {
			c.log.Warn("recovery: journaled cell version mismatch, recomputing",
				"job", rec.ID, "cell", frag.Index,
				"cell_version", frag.AlgoVersion, "job_version", j.algoVersion)
			continue
		}
		cl.state = cellDone
		cl.rows = append([]byte(nil), frag.Rows...)
		restored++
	}

	complete := restored == len(j.cells)
	switch {
	case rec.State == store.JobDone && complete:
		j.state = jobDone
		var buf bytes.Buffer
		buf.Write(sweepCSVHeader)
		for _, cl := range j.cells {
			buf.Write(cl.rows)
		}
		j.csv = buf.Bytes()
		j.cancel()
		close(j.done)
	case rec.State == store.JobFailed:
		// The pre-restart coordinator gave up on it; keep the verdict (and
		// any restored fragments, for the partial-status view).
		j.state = jobFailed
		j.cancel()
		close(j.done)
	default:
		// Running — or journaled done with fragments that no longer check
		// out: resume and recompute what's missing. runJob skips the
		// restored cells and re-persists the terminal state when it lands.
		j.state = jobRunning
	}
	return j, restored
}
