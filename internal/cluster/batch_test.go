package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/server"
)

// batchBody builds a /v1/schedule/batch envelope carrying the named loops
// (scheduleBody's loop shape) plus optionally a broken one.
func batchBody(t *testing.T, names []string, withBroken bool) []byte {
	t.Helper()
	var loops []map[string]any
	for _, n := range names {
		loop := fmt.Sprintf(`loop %s 100
node 0 Load a[i]
node 1 FPMul *c
node 2 FPAdd +s
node 3 Store s=
edge 0 1 2 0 data
edge 1 2 4 0 data
edge 2 3 4 0 data
edge 2 2 4 1 data
`, n)
		loops = append(loops, map[string]any{"loop_text": loop})
	}
	if withBroken {
		loops = append(loops, map[string]any{"loop_text": "loop broken"})
	}
	body, err := json.Marshal(map[string]any{
		"clusters": 2, "regs": 32, "nbus": 1, "latbus": 1,
		"scheme": "GP",
		"loops":  loops,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postBatch(t *testing.T, base string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/schedule/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/schedule/batch: %v", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestBatchDistributedByteIdenticalToSingleNode pins the batch fan-out
// contract: a batch through the coordinator — its loops rendezvous-placed
// across two workers, one of which dies mid-batch and fails over — produces
// exactly the bytes a single standalone worker's batch endpoint does,
// including the per-loop error element for a broken loop.
func TestBatchDistributedByteIdenticalToSingleNode(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	wA := startWorker(t, base, "wA")
	startWorker(t, base, "wB")

	ref := server.New(server.Config{})
	rts := httptest.NewServer(ref.Handler())
	t.Cleanup(func() {
		rts.Close()
		ref.Close()
	})

	names := []string{"ba", "bb", "bc", "bd"}
	body := batchBody(t, names, true)

	refResp, want := postBatch(t, rts.URL, body)
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("single-node batch: %d %s", refResp.StatusCode, want)
	}

	// Kill the next schedule connection wA accepts: one of the batch's
	// loops fails over to wB mid-batch.
	wA.chaos.armKillSchedule(1)
	resp, got := postBatch(t, base, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distributed batch: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed batch diverges from single-node bytes:\ngot:  %s\nwant: %s", got, want)
	}
	if coord.metrics.failovers.Load() == 0 {
		t.Fatal("chaos did not trigger a failover; the kill path went untested")
	}
	if n := coord.metrics.batchLoops.Load(); n != int64(len(names)+1) {
		t.Fatalf("batch loops metric = %d, want %d", n, len(names)+1)
	}

	// Affinity: rerunning the same batch is all cache hits on the workers,
	// still byte-identical.
	resp2, got2 := postBatch(t, base, body)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(got2, want) {
		t.Fatal("batch rerun diverged")
	}
}

// TestBatchEnvelopeRejectedAtEdge pins that a malformed batch envelope is
// shed by the coordinator without consuming any worker.
func TestBatchEnvelopeRejectedAtEdge(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	startWorker(t, base, "wA")
	resp, out := postBatch(t, base, []byte(`{"clusters":2,"loops":[]}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d (want 400), body %s", resp.StatusCode, out)
	}
	if coord.metrics.placements.Load() != 0 {
		t.Fatal("malformed batch reached a worker")
	}
}
