package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// Integration harness: a real coordinator and real gpserved-stack workers
// on loopback listeners, talking the real HTTP protocol. Workers heartbeat
// from a test-controlled loop (not the production agent) so tests can stop
// a worker's heartbeats without deregistering — the difference between "it
// left politely" and "it died", which is exactly what these tests probe.

func testConfig() Config {
	return Config{
		HeartbeatInterval: 50 * time.Millisecond,
		SuspectAfter:      150 * time.Millisecond,
		DeadAfter:         300 * time.Millisecond,
		ReconcileInterval: 25 * time.Millisecond,
		ScheduleTimeout:   10 * time.Second,
		CellTimeout:       30 * time.Second,
		JobWorkers:        4,
	}
}

func startCoordinator(t *testing.T, cfg Config) (*Coordinator, string) {
	t.Helper()
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: coord.Handler()}
	go func() { _ = hs.Serve(ln) }()
	t.Cleanup(func() {
		_ = hs.Close()
		coord.Close()
	})
	return coord, "http://" + ln.Addr().String()
}

// chaosHandler wraps a worker's handler with fault injection.
type chaosHandler struct {
	inner http.Handler

	mu            sync.Mutex
	killSchedules int           // hijack+close the next N /v1/schedule conns
	stallSweeps   chan struct{} // when non-nil, /v1/sweep blocks on it
}

func (h *chaosHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	kill := false
	if r.URL.Path == "/v1/schedule" && h.killSchedules > 0 {
		h.killSchedules--
		kill = true
	}
	stall := h.stallSweeps
	h.mu.Unlock()
	if kill {
		// Accept the request, then slam the TCP connection: the worker
		// "fails mid-request" from the coordinator's point of view.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
		return
	}
	if stall != nil && r.URL.Path == "/v1/sweep" {
		select {
		case <-stall:
		case <-r.Context().Done():
			return
		}
	}
	h.inner.ServeHTTP(w, r)
}

func (h *chaosHandler) armKillSchedule(n int) {
	h.mu.Lock()
	h.killSchedules = n
	h.mu.Unlock()
}

func (h *chaosHandler) armStallSweeps() chan struct{} {
	release := make(chan struct{})
	h.mu.Lock()
	h.stallSweeps = release
	h.mu.Unlock()
	return release
}

type testWorker struct {
	t        *testing.T
	id       string
	endpoint string
	base     string // coordinator base URL
	srv      *server.Server
	hs       *http.Server
	chaos    *chaosHandler

	hbStop chan struct{}
	hbDone chan struct{}
}

func startWorker(t *testing.T, coordBase, id string) *testWorker {
	t.Helper()
	srv := server.New(server.Config{NodeID: id})
	chaos := &chaosHandler{inner: srv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: chaos}
	go func() { _ = hs.Serve(ln) }()

	w := &testWorker{
		t:        t,
		id:       id,
		endpoint: "http://" + ln.Addr().String(),
		base:     coordBase,
		srv:      srv,
		hs:       hs,
		chaos:    chaos,
		hbStop:   make(chan struct{}),
		hbDone:   make(chan struct{}),
	}
	w.post("/v1/nodes/register", server.RegisterRequest{ID: id, Endpoint: w.endpoint, Capacity: 2})
	go func() {
		defer close(w.hbDone)
		tick := time.NewTicker(40 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-w.hbStop:
				return
			case <-tick.C:
				w.post("/v1/nodes/heartbeat", server.HeartbeatRequest{ID: id})
			}
		}
	}()
	t.Cleanup(w.stop)
	return w
}

func (w *testWorker) post(path string, body any) {
	b, err := json.Marshal(body)
	if err != nil {
		w.t.Fatal(err)
	}
	resp, err := http.Post(w.base+path, "application/json", bytes.NewReader(b))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// stopHeartbeats silences the worker without deregistering: the dead-node
// detector, not the deregister path, must notice.
func (w *testWorker) stopHeartbeats() {
	select {
	case <-w.hbStop:
	default:
		close(w.hbStop)
		<-w.hbDone
	}
}

// kill is a crash: heartbeats stop and every open and future connection
// dies.
func (w *testWorker) kill() {
	w.stopHeartbeats()
	_ = w.hs.Close()
}

func (w *testWorker) stop() {
	w.stopHeartbeats()
	w.post("/v1/nodes/deregister", server.HeartbeatRequest{ID: w.id})
	_ = w.hs.Close()
	w.srv.Close()
}

// scheduleBody builds a distinct /v1/schedule request.
func scheduleBody(t *testing.T, name string) []byte {
	t.Helper()
	loop := fmt.Sprintf(`loop %s 100
node 0 Load a[i]
node 1 FPMul *c
node 2 FPAdd +s
node 3 Store s=
edge 0 1 2 0 data
edge 1 2 4 0 data
edge 2 3 4 0 data
edge 2 2 4 1 data
`, name)
	body, err := json.Marshal(map[string]any{
		"loop_text": loop,
		"clusters":  2, "regs": 32, "nbus": 1, "latbus": 1,
		"scheme": "GP",
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postSchedule(t *testing.T, base string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/schedule: %v", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func waitForStates(t *testing.T, coord *Coordinator, want map[string]string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := map[string]string{}
		for _, n := range coord.Nodes() {
			got[n.ID] = n.State
		}
		ok := len(got) == len(want)
		for id, st := range want {
			if got[id] != st {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node states %v never reached %v", got, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestScheduleRoutingAffinityAndSharedCache(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	startWorker(t, base, "wA")
	startWorker(t, base, "wB")
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	body := scheduleBody(t, "affine")
	key, err := server.ScheduleCacheKey(body)
	if err != nil {
		t.Fatal(err)
	}
	predicted, ok := place(coord.reg.candidates(), key, nil)
	if !ok {
		t.Fatal("no placement candidate")
	}

	resp1, out1 := postSchedule(t, base, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold: %d %s", resp1.StatusCode, out1)
	}
	if got := resp1.Header.Get("X-Node"); got != predicted.id {
		t.Fatalf("routed to %s, HRW predicts %s", got, predicted.id)
	}
	if resp1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold X-Cache = %q", resp1.Header.Get("X-Cache"))
	}

	// Identical requests keep landing on the same worker and hit its LRU —
	// the per-worker caches behave as one sharded distributed cache, and
	// the hit is observable through the coordinator.
	for i := 0; i < 3; i++ {
		resp2, out2 := postSchedule(t, base, body)
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("hot %d: %d %s", i, resp2.StatusCode, out2)
		}
		if got := resp2.Header.Get("X-Node"); got != predicted.id {
			t.Fatalf("repeat %d routed to %s, want %s", i, got, predicted.id)
		}
		if resp2.Header.Get("X-Cache") != "hit" {
			t.Fatalf("repeat %d X-Cache = %q, want hit", i, resp2.Header.Get("X-Cache"))
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("cache hit bytes differ from cold response")
		}
	}

	// Distinct requests spread: with enough keys both workers serve some.
	seen := map[string]bool{}
	for i := 0; i < 16; i++ {
		resp, out := postSchedule(t, base, scheduleBody(t, fmt.Sprintf("spread%d", i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("spread %d: %d %s", i, resp.StatusCode, out)
		}
		seen[resp.Header.Get("X-Node")] = true
	}
	if !seen["wA"] || !seen["wB"] {
		t.Fatalf("16 distinct keys never spread across both workers: %v", seen)
	}
}

func TestScheduleFailoverMidRequest(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	wA := startWorker(t, base, "wA")
	wB := startWorker(t, base, "wB")
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})
	workers := map[string]*testWorker{"wA": wA, "wB": wB}

	// Find a body HRW-routed to a known worker, then make that worker kill
	// the connection mid-request.
	body := scheduleBody(t, "victim")
	key, err := server.ScheduleCacheKey(body)
	if err != nil {
		t.Fatal(err)
	}
	target, _ := place(coord.reg.candidates(), key, nil)
	victim := workers[target.id]
	survivorID := "wA"
	if target.id == "wA" {
		survivorID = "wB"
	}
	victim.chaos.armKillSchedule(1)

	resp, out := postSchedule(t, base, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover request: %d %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Node"); got != survivorID {
		t.Fatalf("served by %s, want survivor %s (victim %s)", got, survivorID, target.id)
	}

	// The victim was marked suspect by the failed proxy attempt...
	snap := coord.Nodes()
	var victimInfo *NodeInfo
	for i := range snap {
		if snap[i].ID == target.id {
			victimInfo = &snap[i]
		}
	}
	if victimInfo == nil || victimInfo.Failures == 0 {
		t.Fatalf("victim %s has no recorded failure: %+v", target.id, snap)
	}

	// ...and its ongoing heartbeats bring it back to ready, after which the
	// same key routes to it again (cache affinity survives a blip).
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})
	resp2, out2 := postSchedule(t, base, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery request: %d %s", resp2.StatusCode, out2)
	}
	if got := resp2.Header.Get("X-Node"); got != target.id {
		t.Fatalf("recovered key served by %s, want original owner %s", got, target.id)
	}
}

func TestScheduleDeadWorkerExcludedUntilRevived(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	wA := startWorker(t, base, "wA")
	startWorker(t, base, "wB")
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	// Crash wA: heartbeats stop, connections die. The detector walks it
	// ready → suspect → dead.
	wA.kill()
	waitForStates(t, coord, map[string]string{"wA": "dead", "wB": "ready"})

	// Every request now lands on wB, including keys wA owned.
	for i := 0; i < 8; i++ {
		resp, out := postSchedule(t, base, scheduleBody(t, fmt.Sprintf("afterdeath%d", i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after death: %d %s", i, resp.StatusCode, out)
		}
		if got := resp.Header.Get("X-Node"); got != "wB" {
			t.Fatalf("request %d served by %s, want wB", i, got)
		}
	}
}

// TestScheduleAllSaturatedRelays429 pins the backpressure contract: a
// fleet that is loaded (every worker sheds 429) must look loaded to the
// client — 429 + Retry-After, no suspect-marking — not broken (502).
func TestScheduleAllSaturatedRelays429(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	saturated := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer saturated.Close()
	reg, _ := json.Marshal(server.RegisterRequest{ID: "busy", Endpoint: saturated.URL, Capacity: 1})
	resp, err := http.Post(base+"/v1/nodes/register", "application/json", bytes.NewReader(reg))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	got, out := postSchedule(t, base, scheduleBody(t, "overload"))
	if got.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("all-saturated fleet answered %d %s, want 429", got.StatusCode, out)
	}
	if got.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	for _, n := range coord.Nodes() {
		if n.ID == "busy" && n.State != "ready" {
			t.Fatalf("saturation marked the node %s", n.State)
		}
	}
}

func TestScheduleNoWorkers(t *testing.T) {
	_, base := startCoordinator(t, testConfig())
	resp, out := postSchedule(t, base, scheduleBody(t, "nobody"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty fleet: %d %s", resp.StatusCode, out)
	}
}

func TestScheduleBadRequestShedAtEdge(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	w := startWorker(t, base, "wA")
	waitForStates(t, coord, map[string]string{"wA": "ready"})

	resp, out := postSchedule(t, base, []byte(`{"loop_text": "not a loop"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: %d %s", resp.StatusCode, out)
	}
	// The worker never saw it.
	if _, misses, _, _ := w.srv.Metrics(); misses != 0 {
		t.Fatalf("bad request reached a worker (%d misses)", misses)
	}
}

func TestMetricsExposeNodeHealth(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	wA := startWorker(t, base, "wA")
	startWorker(t, base, "wB")
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})
	wA.kill()
	waitForStates(t, coord, map[string]string{"wA": "dead", "wB": "ready"})

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`gpcoordd_node_health{node="wA"} 2`,
		`gpcoordd_node_health{node="wB"} 0`,
		"gpcoordd_nodes 2",
		"gpcoordd_requests_total",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}
