package cluster

// Tests for the algorithm-epoch machinery: failover header hygiene,
// coordinator-driven fleet flushes, version-pinned sweep placement and the
// shadow-verify canary. These are the regression proofs for the
// stale-cache-across-deploys class of bug: a response must never mix
// headers, bytes or cache entries from two different scheduler
// generations.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/schedule"
	"repro/internal/server"
	"repro/internal/store"
)

// slowDetectorConfig is testConfig with the missed-heartbeat detector
// effectively off, so fake workers registered without a heartbeat loop
// stay ready and the only thing that can demote them is the behavior
// under test.
func slowDetectorConfig() Config {
	cfg := testConfig()
	cfg.SuspectAfter = 10 * time.Second
	cfg.DeadAfter = 20 * time.Second
	return cfg
}

// registerFakeWorker registers an httptest-backed fake worker under a
// fixed ID and advertised algorithm version. It never heartbeats — pair it
// with slowDetectorConfig.
func registerFakeWorker(t *testing.T, base, id, version string, handler http.Handler) {
	t.Helper()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	reg, err := json.Marshal(server.RegisterRequest{ID: id, Endpoint: ts.URL, Capacity: 2, AlgoVersion: version})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/nodes/register", "application/json", bytes.NewReader(reg))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: %d", id, resp.StatusCode)
	}
}

func postFlush(t *testing.T, base, body string) FlushFleetResponse {
	t.Helper()
	resp, err := http.Post(base+"/v1/cache/flush", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out FlushFleetResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("flush response not JSON: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %d %+v", resp.StatusCode, out)
	}
	return out
}

// TestFailoverRelaysOnlyServingHeaders pins the header-relay contract: a
// failed-over request must carry only the headers of the attempt whose
// body the client receives. The regression this guards: the proxy used to
// copy headers from every attempt, so a 429's Retry-After (or a stale
// X-Algo-Epoch) leaked onto the 200 another worker served.
func TestFailoverRelaysOnlyServingHeaders(t *testing.T) {
	_, base := startCoordinator(t, slowDetectorConfig())

	// Rank the two fake IDs for this body's key so the saturated worker is
	// provably the first attempt and the healthy one the failover target.
	body := scheduleBody(t, "hdrrelay")
	key, err := server.ScheduleCacheKey(body)
	if err != nil {
		t.Fatal(err)
	}
	ranked := hrwRank([]candidate{{id: "fwA"}, {id: "fwB"}}, key)
	satID, okID := ranked[0].id, ranked[1].id

	registerFakeWorker(t, base, satID, "", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Poisoned headers: none of these may reach the client.
		w.Header().Set("Retry-After", "9")
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("X-Algo-Epoch", "99")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	registerFakeWorker(t, base, okID, "", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "miss")
		w.Header().Set("X-Algo-Version", schedule.AlgoVersion)
		fmt.Fprint(w, `{"fake":"schedule"}`)
	}))

	resp, out := postSchedule(t, base, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover answered %d %s, want 200", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Node"); got != okID {
		t.Fatalf("X-Node = %q, want the serving worker %q", got, okID)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Fatalf("Retry-After %q leaked from the saturated attempt", ra)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Fatalf("X-Cache = %q, want the serving attempt's miss", xc)
	}
	if ep := resp.Header.Get("X-Algo-Epoch"); ep != "0" {
		t.Fatalf("X-Algo-Epoch = %q, want the fleet's 0 (the 429's 99 must not leak)", ep)
	}
	if v := resp.Header.Get("X-Algo-Version"); v != schedule.AlgoVersion {
		t.Fatalf("X-Algo-Version = %q, want %q", v, schedule.AlgoVersion)
	}
}

// TestFleetFlushConvergesEpochs drives a full coordinator-led flush:
// /v1/cache/flush raises the fleet epoch, fans out to every worker, the
// warmed cache entry is gone (the re-ask recomputes, byte-identically),
// and the registry view converges immediately.
func TestFleetFlushConvergesEpochs(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	wA := startWorker(t, base, "wA")
	wB := startWorker(t, base, "wB")
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	// Warm the fleet cache and prove it serves hits.
	body := scheduleBody(t, "flushfleet")
	first, firstOut := postSchedule(t, base, body)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("cold request: %d %s", first.StatusCode, firstOut)
	}
	warm, _ := postSchedule(t, base, body)
	if got := warm.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second identical request X-Cache = %q, want hit", got)
	}

	out := postFlush(t, base, `{"epoch": 5}`)
	if out.Epoch != 5 {
		t.Fatalf("flush settled at epoch %d, want 5", out.Epoch)
	}
	if len(out.Nodes) != 2 {
		t.Fatalf("flush reached %d node(s), want 2: %+v", len(out.Nodes), out.Nodes)
	}
	for _, n := range out.Nodes {
		if n.Error != "" || n.Epoch != 5 {
			t.Fatalf("node %s did not converge: %+v", n.Node, n)
		}
	}
	if coord.Epoch() != 5 {
		t.Fatalf("coordinator epoch %d, want 5", coord.Epoch())
	}
	if wA.srv.Epoch() != 5 || wB.srv.Epoch() != 5 {
		t.Fatalf("worker epochs %d/%d, want 5/5", wA.srv.Epoch(), wB.srv.Epoch())
	}
	// The registry reflects convergence without waiting a heartbeat.
	for _, n := range coord.Nodes() {
		if n.Epoch != 5 {
			t.Fatalf("registry still shows %s at epoch %d", n.ID, n.Epoch)
		}
	}

	// The flushed fleet recomputes — a miss, not a resurrected hit — and
	// the bytes are identical because the algorithm did not change.
	after, afterOut := postSchedule(t, base, body)
	if after.StatusCode != http.StatusOK {
		t.Fatalf("post-flush request: %d %s", after.StatusCode, afterOut)
	}
	if got := after.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("post-flush X-Cache = %q, want miss (stale entry served)", got)
	}
	if got := after.Header.Get("X-Algo-Epoch"); got != "5" {
		t.Fatalf("post-flush X-Algo-Epoch = %q, want 5", got)
	}
	if !bytes.Equal(afterOut, firstOut) {
		t.Fatalf("same algorithm, different bytes after flush:\npre:  %s\npost: %s", firstOut, afterOut)
	}

	// An empty-body flush bumps the epoch by one.
	if out := postFlush(t, base, ""); out.Epoch != 6 {
		t.Fatalf("empty-body flush settled at %d, want 6", out.Epoch)
	}
}

// TestFlushEpochSurvivesRestart proves the durability ordering: the fleet
// epoch is journaled before the flush fans out, so a restarted coordinator
// resumes at the post-flush epoch instead of resurrecting the pre-flush
// view of the fleet.
func TestFlushEpochSurvivesRestart(t *testing.T) {
	journalDir := t.TempDir()
	openJournal := func() *store.Journal {
		j, err := store.OpenJournal(journalDir, store.JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	cfgA := testConfig()
	cfgA.Store = openJournal()
	coordA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hsA := &http.Server{Handler: coordA.Handler()}
	go func() { _ = hsA.Serve(ln) }()

	postFlush(t, "http://"+ln.Addr().String(), `{"epoch": 7}`)
	if coordA.Epoch() != 7 {
		t.Fatalf("pre-restart epoch %d, want 7", coordA.Epoch())
	}
	_ = hsA.Close()
	coordA.Close()

	cfgB := testConfig()
	cfgB.Store = openJournal()
	coordB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coordB.Close)
	if coordB.Epoch() != 7 {
		t.Fatalf("restarted coordinator woke at epoch %d, want the journaled 7", coordB.Epoch())
	}
}

// TestJobRefusesMixedVersionFleet is the rolling-upgrade placement proof:
// with two ready workers advertising different algorithm versions, a sweep
// job pins the version of its first placement and refuses the other — the
// finished CSV comes from one scheduler generation, never a mix.
func TestJobRefusesMixedVersionFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second distributed sweep; the cluster-smoke CI job runs it")
	}
	coord, base := startCoordinator(t, testConfig())
	wA := startWorker(t, base, "wA")
	wB := startWorker(t, base, "wB")
	// Re-register with diverging advertised versions: a rolling upgrade
	// caught mid-flight. (The version-less heartbeat loop leaves the
	// registered version alone.)
	wA.post("/v1/nodes/register", server.RegisterRequest{ID: "wA", Endpoint: wA.endpoint, Capacity: 2, AlgoVersion: "gp/2"})
	wB.post("/v1/nodes/register", server.RegisterRequest{ID: "wB", Endpoint: wB.endpoint, Capacity: 2, AlgoVersion: "gp/3"})
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	// jobMachines guarantees the cells HRW-spread across both workers, so
	// without the version pin this job would mix generations.
	req := server.SweepRequest{
		Machines: jobMachines(t, coord, 1),
		Corpora:  []string{"SPECfp95", "DSP"},
		MaxLoops: 1,
	}
	ack := createJob(t, base, req)
	st := waitForJob(t, base, ack.ID, 120*time.Second)
	if st.State != "done" || st.Done != st.Cells || st.Failed != 0 {
		t.Fatalf("job did not finish cleanly: %+v", st)
	}
	nodes := map[string]bool{}
	for _, cell := range st.Detail {
		nodes[cell.Node] = true
	}
	if len(nodes) != 1 {
		t.Fatalf("job mixed workers across algorithm versions: %+v", st.Detail)
	}
	if coord.metrics.versionRefusals.Load() == 0 {
		t.Fatal("placement never refused a cross-version candidate")
	}
}

// TestShadowVerifyCleanFleetMatches is the canary's no-false-positive
// half: with every worker on the same binary, a sampled replay against the
// next-ranked node byte-matches and the mismatch counter stays zero.
func TestShadowVerifyCleanFleetMatches(t *testing.T) {
	cfg := testConfig()
	cfg.ShadowRate = 1
	coord, base := startCoordinator(t, cfg)
	verdicts := make(chan bool, 8)
	coord.shadow.hook = func(primary, shadow string, match bool) { verdicts <- match }

	startWorker(t, base, "wA")
	startWorker(t, base, "wB")
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	resp, out := postSchedule(t, base, scheduleBody(t, "shadowclean"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d %s", resp.StatusCode, out)
	}
	select {
	case match := <-verdicts:
		if !match {
			t.Fatal("identical workers reported divergent bytes")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shadow replay never completed")
	}
	if coord.metrics.shadowSampled.Load() == 0 {
		t.Fatal("rate-1 shadow verify sampled nothing")
	}
	if n := coord.metrics.shadowMismatch.Load(); n != 0 {
		t.Fatalf("clean fleet produced %d shadow mismatches", n)
	}
}

// TestShadowVerifyFlagsPlantedDivergence is the negative proof the issue
// demands: a canary worker that advertises a different algorithm version
// and serves different bytes for the same content-addressed request is
// caught by the replay — gpcoordd_shadow_mismatch_total goes above zero
// and the version outlier (not the healthy primary) is marked suspect.
func TestShadowVerifyFlagsPlantedDivergence(t *testing.T) {
	cfg := slowDetectorConfig()
	cfg.ShadowRate = 1
	cfg.ShadowCanary = "canary"
	coord, base := startCoordinator(t, cfg)
	type verdict struct {
		primary, shadow string
		match           bool
	}
	verdicts := make(chan verdict, 8)
	coord.shadow.hook = func(p, s string, m bool) { verdicts <- verdict{p, s, m} }

	startWorker(t, base, "wA")
	startWorker(t, base, "wB")
	registerFakeWorker(t, base, "canary", "gp/999", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ii": 999, "diverged": true}`)
	}))
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready", "canary": "ready"})

	// Pick a body whose key does not rank the canary first: the planted
	// divergence must be found by the replay, not served to the client.
	var body []byte
	for i := 0; ; i++ {
		b := scheduleBody(t, fmt.Sprintf("shadowdrift%d", i))
		key, err := server.ScheduleCacheKey(b)
		if err != nil {
			t.Fatal(err)
		}
		if n, ok := place([]candidate{{id: "wA"}, {id: "wB"}, {id: "canary"}}, key, nil); ok && n.id != "canary" {
			body = b
			break
		}
	}

	resp, out := postSchedule(t, base, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d %s", resp.StatusCode, out)
	}
	select {
	case v := <-verdicts:
		if v.shadow != "canary" {
			t.Fatalf("replay targeted %q, want the designated canary", v.shadow)
		}
		if v.match {
			t.Fatal("planted divergence byte-matched")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shadow replay never completed")
	}
	if coord.metrics.shadowMismatch.Load() == 0 {
		t.Fatal("gpcoordd_shadow_mismatch_total stayed 0 despite planted divergence")
	}
	// Attribution: the divergent-version canary goes suspect, the healthy
	// dominant-version workers stay ready.
	states := map[string]string{}
	for _, n := range coord.Nodes() {
		states[n.ID] = n.State
	}
	if states["canary"] != "suspect" {
		t.Fatalf("divergent-version canary is %q, want suspect", states["canary"])
	}
	if states["wA"] != "ready" || states["wB"] != "ready" {
		t.Fatalf("healthy workers demoted: %v", states)
	}
}
