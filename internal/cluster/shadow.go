package cluster

import (
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
)

// shadowVerifier is the coordinator's deploy-safety canary. It samples a
// configurable fraction of live, successful /v1/schedule responses and
// replays each against a second worker — the designated canary, or the
// next-HRW-ranked node after the one that served — then byte-compares the
// two bodies. The fleet's responses are deterministic by construction
// (content-addressed requests, verified schedules, no wall-clock fields),
// so any divergence means two workers are running different algorithms:
// exactly the silent failure a rolling upgrade or a drifted binary smuggles
// past per-node health checks. A mismatch increments
// gpcoordd_shadow_mismatch_total and marks the node whose advertised
// version is the fleet outlier suspect.
type shadowVerifier struct {
	c   *Coordinator
	seq atomic.Int64
	wg  sync.WaitGroup

	// hook, when set, observes every completed replay (tests synchronize
	// on it). Called after the counters are updated.
	hook func(primary, shadow string, match bool)
}

// sampled reports whether request n of the stream falls in the sampled
// fraction. Counter-based instead of random: with rate r, replay fires
// whenever the integer part of n·r advances, which spreads samples evenly
// and makes tests deterministic (rate 1 samples everything).
func (s *shadowVerifier) sampled(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		s.seq.Add(1)
		return true
	}
	n := s.seq.Add(1)
	return math.Floor(float64(n)*rate) > math.Floor(float64(n-1)*rate)
}

// maybeReplay runs after a 200 response has been relayed to the client: if
// this request is sampled and a distinct shadow worker exists, replay the
// request against it asynchronously (the client never waits on the canary)
// and compare bytes.
func (s *shadowVerifier) maybeReplay(primary candidate, key string, reqBody, served []byte) {
	if !s.sampled(s.c.cfg.ShadowRate) {
		return
	}
	shadow, ok := s.pick(primary, key)
	if !ok {
		return
	}
	s.c.metrics.shadowSampled.Add(1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.replay(primary, shadow, reqBody, served)
	}()
}

// pick chooses the shadow worker: the designated canary when configured,
// otherwise the next node down the request's HRW ranking — the worker that
// would have served this exact request had the primary been away, so the
// comparison exercises the same placement the next failover will.
func (s *shadowVerifier) pick(primary candidate, key string) (candidate, bool) {
	cands := s.c.reg.candidates()
	if canary := s.c.cfg.ShadowCanary; canary != "" {
		for _, cand := range cands {
			if cand.id == canary && cand.id != primary.id {
				return cand, true
			}
		}
		return candidate{}, false
	}
	return place(cands, key, map[string]bool{primary.id: true})
}

// replay posts the request to the shadow worker and compares its bytes to
// the ones the client received. The replay context is the coordinator's
// own (not the original request's — the client is long gone), so Close
// aborts in-flight replays.
func (s *shadowVerifier) replay(primary, shadow candidate, reqBody, served []byte) {
	resp, body, err := s.c.forward(s.c.ctx, shadow, "/v1/schedule", reqBody, s.c.cfg.scheduleTimeout(), "")
	match := false
	switch {
	case err != nil || resp.StatusCode != http.StatusOK:
		// A failed replay is a shadow-worker health problem, not a
		// divergence verdict: report it like any failed proxied request and
		// leave the mismatch counter alone.
		if s.c.ctx.Err() == nil {
			s.c.reg.reportFailure(shadow.id)
		}
	case string(body) == string(served):
		match = true
	default:
		s.c.metrics.shadowMismatch.Add(1)
		s.diverged(primary, shadow)
	}
	if s.hook != nil {
		s.hook(primary.id, shadow.id, match)
	}
}

// diverged attributes a byte mismatch: the node whose advertised algorithm
// version differs from the fleet's dominant version is the outlier and
// goes suspect. When both sides claim the same version the divergence is
// unattributable — one of them is lying about its algorithm — so both go
// suspect and the operator decides.
func (s *shadowVerifier) diverged(primary, shadow candidate) {
	dominant := s.c.reg.dominantVersion()
	pv, sv := s.c.reg.versionOf(primary.id), s.c.reg.versionOf(shadow.id)
	suspects := []string{}
	if pv != dominant {
		suspects = append(suspects, primary.id)
	}
	if sv != dominant {
		suspects = append(suspects, shadow.id)
	}
	if len(suspects) == 0 {
		suspects = []string{primary.id, shadow.id}
	}
	for _, id := range suspects {
		s.c.reg.markSuspect(id)
	}
	s.c.log.Warn("shadow verify: identical request diverged",
		"primary", primary.id, "primary_version", pv,
		"shadow", shadow.id, "shadow_version", sv,
		"dominant_version", dominant, "suspects", strings.Join(suspects, ","))
}
