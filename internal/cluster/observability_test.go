package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/server"
)

// fetchTrace GETs one published trace by request ID from a daemon's debug
// endpoint, reporting ok=false on a 404 (not yet published / evicted). The
// ID is path-escaped: batch loop IDs carry a '#'.
func fetchTrace(t *testing.T, base, id string) (obs.Trace, bool) {
	t.Helper()
	resp, err := http.Get(base + "/v1/debug/traces/" + url.PathEscape(id))
	if err != nil {
		t.Fatalf("GET trace %s: %v", id, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusNotFound {
		return obs.Trace{}, false
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace %s: %d %s", id, resp.StatusCode, body)
	}
	var tr obs.Trace
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("trace %s: %v in %s", id, err, body)
	}
	return tr, true
}

func postScheduleWithID(t *testing.T, base, id string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/schedule", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/schedule: %v", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func phaseNames(tr obs.Trace) []string {
	names := make([]string, 0, len(tr.Phases()))
	for _, p := range tr.Phases() {
		names = append(names, p.Name)
	}
	return names
}

// TestRequestIDStitchesCoordinatorAndWorker pins the tentpole contract: one
// client-supplied X-Request-Id identifies the request end to end — echoed on
// the response, filed in the coordinator's trace ring with the placement
// phases, and filed in the serving worker's ring with the scheduler phases.
func TestRequestIDStitchesCoordinatorAndWorker(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	workers := map[string]*testWorker{
		"wA": startWorker(t, base, "wA"),
		"wB": startWorker(t, base, "wB"),
	}
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	const id = "deadbeef01234567"
	resp, out := postScheduleWithID(t, base, id, scheduleBody(t, "stitch"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != id {
		t.Fatalf("response %s = %q, want %q", obs.RequestIDHeader, got, id)
	}
	if resp.Header.Get("X-Phase-Timing") == "" {
		t.Fatal("response missing X-Phase-Timing")
	}

	ctr, ok := fetchTrace(t, base, id)
	if !ok {
		t.Fatalf("coordinator has no trace for %s", id)
	}
	if ctr.Op != "proxy-schedule" || ctr.Outcome != "owner" {
		t.Fatalf("coordinator trace op=%q outcome=%q, want proxy-schedule/owner", ctr.Op, ctr.Outcome)
	}
	names := phaseNames(ctr)
	for _, want := range []string{"admission", "place", "proxy"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("coordinator trace phases %v missing %q", names, want)
		}
	}

	serving := resp.Header.Get("X-Node")
	w, ok := workers[serving]
	if !ok {
		t.Fatalf("unknown serving node %q", serving)
	}
	if ctr.Node != serving {
		t.Fatalf("coordinator trace node %q, response X-Node %q", ctr.Node, serving)
	}
	wtr, ok := fetchTrace(t, w.endpoint, id)
	if !ok {
		t.Fatalf("worker %s has no trace for %s", serving, id)
	}
	if wtr.Op != "schedule" {
		t.Fatalf("worker trace op = %q, want schedule", wtr.Op)
	}
	if wtr.ID != ctr.ID {
		t.Fatalf("trace IDs diverge: worker %q coordinator %q", wtr.ID, ctr.ID)
	}
}

// TestRequestIDSurvivesFailover pins that failover is invisible to the
// request's identity: the first-ranked worker eats the connection, the
// retry serves from the survivor, and both the coordinator's trace (now
// outcome=failover, with one proxy phase per attempt) and the survivor's
// trace file under the original ID.
func TestRequestIDSurvivesFailover(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	workers := map[string]*testWorker{
		"wA": startWorker(t, base, "wA"),
		"wB": startWorker(t, base, "wB"),
	}
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	body := scheduleBody(t, "failover-id")
	key, err := server.ScheduleCacheKey(body)
	if err != nil {
		t.Fatal(err)
	}
	predicted, ok := place(coord.reg.candidates(), key, nil)
	if !ok {
		t.Fatal("no placement candidate")
	}
	workers[predicted.id].chaos.armKillSchedule(1)

	const id = "cafebabe89abcdef"
	resp, out := postScheduleWithID(t, base, id, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != id {
		t.Fatalf("failover changed the request ID: %q", got)
	}
	serving := resp.Header.Get("X-Node")
	if serving == predicted.id {
		t.Fatalf("served by the killed worker %s", serving)
	}

	ctr, ok := fetchTrace(t, base, id)
	if !ok {
		t.Fatalf("coordinator has no trace for %s", id)
	}
	if ctr.Outcome != "failover" {
		t.Fatalf("coordinator trace outcome = %q, want failover", ctr.Outcome)
	}
	proxies := 0
	for _, p := range ctr.Phases() {
		if p.Name == "proxy" {
			proxies++
		}
	}
	if proxies < 2 {
		t.Fatalf("failover trace has %d proxy phases, want >= 2:\n%v", proxies, ctr.Phases())
	}
	wtr, ok := fetchTrace(t, workers[serving].endpoint, id)
	if !ok {
		t.Fatalf("surviving worker %s has no trace for %s", serving, id)
	}
	if wtr.ID != id {
		t.Fatalf("worker trace ID = %q, want %q", wtr.ID, id)
	}
}

// TestBatchLoopRequestIDSuffixes pins the fan-out identity scheme: batch
// loop i forwards under <envelope-id>#i, deterministically, so every
// worker-side trace of a batch is retrievable from the envelope ID alone.
func TestBatchLoopRequestIDSuffixes(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	workers := []*testWorker{
		startWorker(t, base, "wA"),
		startWorker(t, base, "wB"),
	}
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	const id = "feedface00000000"
	body := batchBody(t, []string{"obsa", "obsb", "obsc"}, false)
	req, err := http.NewRequest(http.MethodPost, base+"/v1/schedule/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != id {
		t.Fatalf("batch response ID = %q, want %q", got, id)
	}

	// The envelope trace files on the coordinator under the bare ID...
	ctr, ok := fetchTrace(t, base, id)
	if !ok {
		t.Fatalf("coordinator has no batch trace for %s", id)
	}
	if ctr.Op != "proxy-batch" {
		t.Fatalf("coordinator batch trace op = %q", ctr.Op)
	}
	// ...and every loop's worker-side trace under the #i suffix, on exactly
	// one worker each.
	for i := 0; i < 3; i++ {
		loopID := obs.SuffixID(id, i)
		if want := fmt.Sprintf("%s#%d", id, i); loopID != want {
			t.Fatalf("SuffixID(%q, %d) = %q, want %q", id, i, loopID, want)
		}
		found := 0
		for _, w := range workers {
			if wtr, ok := fetchTrace(t, w.endpoint, loopID); ok {
				found++
				if wtr.Op != "schedule" {
					t.Fatalf("loop %d trace op = %q", i, wtr.Op)
				}
			}
		}
		if found != 1 {
			t.Fatalf("loop trace %s found on %d workers, want exactly 1", loopID, found)
		}
	}
}

// TestCoordinatorMetricsLint scrapes a traffic-warmed coordinator and holds
// /metrics to the fleet naming contract: every family is a counter
// (*_total), an allowlisted gauge, or a complete histogram triple — and the
// duration histogram actually renders with its endpoint/outcome labels.
func TestCoordinatorMetricsLint(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	startWorker(t, base, "wA")
	startWorker(t, base, "wB")
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	for i := 0; i < 4; i++ {
		resp, out := postSchedule(t, base, scheduleBody(t, fmt.Sprintf("lint%d", i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("schedule %d: %d %s", i, resp.StatusCode, out)
		}
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)

	if problems := obs.CheckMetrics(text, coordGauges); len(problems) != 0 {
		t.Fatalf("metrics lint:\n%s", strings.Join(problems, "\n"))
	}
	for _, want := range []string{
		`gpcoordd_request_duration_seconds_bucket{endpoint="schedule",outcome="owner",le="+Inf"}`,
		`gpcoordd_request_duration_seconds_sum{endpoint="schedule",outcome="owner"}`,
		`gpcoordd_request_duration_seconds_count{endpoint="schedule",outcome="owner"}`,
		"gpcoordd_latency_p50_seconds",
		"gpcoordd_latency_p99_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The unlabeled spills total must render before any key_class series:
	// the smoke script parses it positionally with a prefix match.
	unlabeled := strings.Index(text, "gpcoordd_spills_total ")
	if unlabeled < 0 {
		t.Fatal("metrics missing unlabeled gpcoordd_spills_total")
	}
	if labeled := strings.Index(text, "gpcoordd_spills_total{"); labeled >= 0 && labeled < unlabeled {
		t.Fatal("labeled gpcoordd_spills_total renders before the unlabeled total")
	}
}

// TestSpillAttribution drives a hot key through a tiny load bound until the
// owner spills, then checks all three attribution surfaces: the key_class
// spill series, the per-node spill-out/spill-in counters on /metrics, and
// the SpillOut/SpillIn fields of /v1/fleet/nodes.
func TestSpillAttribution(t *testing.T) {
	cfg := testConfig()
	cfg.LoadBound = 1.05
	coord, base := startCoordinator(t, cfg)
	startWorker(t, base, "wA")
	startWorker(t, base, "wB")
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	body := scheduleBody(t, "hotkey")
	key, err := server.ScheduleCacheKey(body)
	if err != nil {
		t.Fatal(err)
	}

	// Hold one in-flight slot on the owner so a concurrent identical request
	// crosses the bound and spills deterministically.
	owner, ok := place(coord.reg.candidates(), key, nil)
	if !ok {
		t.Fatal("no owner")
	}
	coord.reg.incInflight(owner.id)
	coord.reg.incInflight(owner.id)
	defer coord.reg.decInflight(owner.id)
	defer coord.reg.decInflight(owner.id)

	resp, out := postSchedule(t, base, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Node"); got == owner.id {
		t.Fatalf("expected a spill off %s, served by owner", owner.id)
	}

	resp2, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	mb, _ := io.ReadAll(resp2.Body)
	text := string(mb)
	wantClass := fmt.Sprintf("gpcoordd_spills_total{key_class=%q}", keyClass(key))
	for _, want := range []string{
		wantClass,
		fmt.Sprintf("gpcoordd_node_spill_out_total{node=%q} 1", owner.id),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	var nodes []NodeInfo
	resp3, err := http.Get(base + "/v1/fleet/nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if err := json.NewDecoder(resp3.Body).Decode(&nodes); err != nil {
		t.Fatal(err)
	}
	var spillOut, spillIn int64
	for _, n := range nodes {
		spillOut += n.SpillOut
		spillIn += n.SpillIn
	}
	if spillOut != 1 || spillIn != 1 {
		t.Fatalf("fleet spill_out=%d spill_in=%d, want 1/1 (%+v)", spillOut, spillIn, nodes)
	}
}
