// Package cluster is the distributed scheduling control plane: the
// gpcoordd coordinator fronting a fleet of gpserved workers.
//
// Workers register with capacity and endpoint, heartbeat periodically and
// deregister on graceful shutdown; the coordinator tracks their health
// (ready / suspect / dead via missed-heartbeat thresholds), routes
// POST /v1/schedule by rendezvous hashing on the request's content-address
// key — so identical requests land on the same worker and the per-worker
// LRU caches form one sharded distributed cache — and fails over to the
// next-ranked node, with the failed one excluded, when a worker dies
// mid-request. An async job layer (POST /v1/jobs) shards a machines ×
// corpora sweep cell-by-cell across the fleet and survives worker loss: a
// reconciliation loop cancels work stranded on dead nodes and the cells are
// re-placed on survivors, so a finished job's CSV is byte-identical to the
// single-node bench.Sweep output no matter how many workers died on the
// way.
//
// Endpoints:
//
//	POST /v1/nodes/register            worker announces {id, endpoint, capacity}
//	POST /v1/nodes/heartbeat           worker liveness (+ piggybacked load report)
//	POST /v1/nodes/deregister          graceful worker exit
//	GET  /v1/fleet/nodes               node table: health, schema, in-flight, load
//	GET  /v1/fleet/advice              hysteresis-damped scale up/down/hold verdict
//	POST /v1/fleet/nodes/{id}/drain    stop placing on a node (undrain reverses)
//	GET  /v1/nodes                     deprecated alias of /v1/fleet/nodes
//	POST /v1/schedule                  proxied single-loop scheduling (cache-affine)
//	POST /v1/schedule/batch            per-loop fan-out of a batch, reassembled in order
//	POST /v1/jobs                      async sweep job; returns {id, cells}
//	GET  /v1/jobs                      all retained jobs' status summaries
//	GET  /v1/jobs/{id}                 job status and per-cell placement detail
//	GET  /v1/jobs/{id}/csv             assembled CSV once the job is done
//	GET  /healthz                      liveness + fleet summary (JSON)
//	GET  /metrics                      coordinator + per-node Prometheus text
//
// Placement is rendezvous hashing with bounded loads: the HRW owner of a
// key serves it while its in-flight count stays under LoadBound × the
// fleet mean; beyond that the request spills to the next-ranked node, so a
// Zipf-hot key saturates neither its owner nor the response contract —
// responses stay byte-identical wherever they are computed. Every routed
// unit of work walks the explicit placement protocol in placement.go.
//
// All mutable control-plane state — node registrations, job specs,
// completed cell fragments — is written through a pluggable store
// (internal/store). With the default in-memory store a restart forgets
// everything, exactly the pre-durability behavior; with the journal store
// (gpcoordd -journal <dir>) a restarted coordinator replays the journal,
// adopts the registered nodes as suspect until their next heartbeat, and
// resumes every unfinished job, re-dispatching only the cells the journal
// does not prove done.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
)

// Config tunes the coordinator. The zero value picks the defaults noted on
// each field.
type Config struct {
	// Store persists the coordinator's control-plane state. Nil means a
	// fresh in-memory store: no durability, no recovery, the exact
	// behavior of a journal-less gpcoordd. The Coordinator takes ownership
	// and closes it in Close.
	Store store.Store
	// Logger, when set, receives the coordinator's structured events —
	// recovery, store failures, failovers, suspect/dead transitions — with
	// request and node identities as fields. Nil drops them.
	Logger *slog.Logger
	// HeartbeatInterval is the cadence workers are told to heartbeat at
	// (default 2s).
	HeartbeatInterval time.Duration
	// SuspectAfter is the heartbeat age that turns a node suspect
	// (default 3 × HeartbeatInterval).
	SuspectAfter time.Duration
	// DeadAfter is the heartbeat age that turns a node dead and hands its
	// in-flight work to the reconciler (default 6 × HeartbeatInterval).
	DeadAfter time.Duration
	// DeadExpiry is how long a dead node is retained for observability
	// before it is garbage-collected from the registry (default 10m).
	DeadExpiry time.Duration
	// ReconcileInterval is the health-sweep and reconciliation cadence
	// (default HeartbeatInterval / 2).
	ReconcileInterval time.Duration
	// ScheduleTimeout bounds one proxied /v1/schedule attempt (default 60s).
	ScheduleTimeout time.Duration
	// CellTimeout bounds one job-cell attempt on one worker (default 10m —
	// a full four-scheme panel over a corpus is real work; the reconciler
	// usually re-places a dead node's cells long before this backstop).
	CellTimeout time.Duration
	// MaxCellAttempts bounds how many workers one cell is tried on before
	// the job is failed (default 8).
	MaxCellAttempts int
	// JobWorkers is the number of concurrently dispatched cells per job
	// (default 4).
	JobWorkers int
	// MaxJobs bounds the retained job table; creating a job beyond it
	// evicts the oldest finished job, and fails with 429 when every
	// retained job is still running (default 64).
	MaxJobs int
	// MaxBodyBytes caps a request body (default 8 MiB).
	MaxBodyBytes int64
	// ShadowRate is the fraction of successful proxied /v1/schedule
	// responses replayed against a second worker and byte-compared
	// (0 disables, 1 shadows everything). Any divergence increments
	// gpcoordd_shadow_mismatch_total and marks the outlier-version node
	// suspect: determinism across the fleet is a correctness invariant, so
	// a mismatch means a worker is running a different algorithm than it
	// claims — exactly the failure a rolling upgrade can smuggle in.
	ShadowRate float64
	// ShadowCanary, when set, names the node every shadow replay is sent
	// to (a designated canary running the incoming version). Empty picks
	// the next-HRW-ranked worker after the one that served the request.
	ShadowCanary string
	// LoadBound is the bounded-load factor c of placement: the HRW owner
	// serves a key only while its in-flight count stays under
	// ceil(c·(m+1)/n) (m = fleet in-flight, n = candidates); an overloaded
	// owner spills to the next-ranked node under the bound. 0 picks the
	// default 1.25; negative disables spilling (pure HRW).
	LoadBound float64
	// AdviceHysteresis is how many consecutive reconcile ticks a raw
	// scaling verdict must hold before /v1/fleet/advice adopts it
	// (default 3).
	AdviceHysteresis int
	// AdviceP99Micros is the worst-node p99 (µs) above which the advisor
	// recommends scaling up while load is in flight (default 250000 —
	// 250ms; 0 keeps the default, negative disables the latency trigger).
	AdviceP99Micros float64
}

func (c Config) heartbeatInterval() time.Duration {
	if c.HeartbeatInterval > 0 {
		return c.HeartbeatInterval
	}
	return 2 * time.Second
}

func (c Config) suspectAfter() time.Duration {
	if c.SuspectAfter > 0 {
		return c.SuspectAfter
	}
	return 3 * c.heartbeatInterval()
}

func (c Config) deadAfter() time.Duration {
	if c.DeadAfter > 0 {
		return c.DeadAfter
	}
	return 6 * c.heartbeatInterval()
}

func (c Config) deadExpiry() time.Duration {
	if c.DeadExpiry > 0 {
		return c.DeadExpiry
	}
	return 10 * time.Minute
}

func (c Config) reconcileInterval() time.Duration {
	if c.ReconcileInterval > 0 {
		return c.ReconcileInterval
	}
	return c.heartbeatInterval() / 2
}

func (c Config) scheduleTimeout() time.Duration {
	if c.ScheduleTimeout > 0 {
		return c.ScheduleTimeout
	}
	return 60 * time.Second
}

func (c Config) cellTimeout() time.Duration {
	if c.CellTimeout > 0 {
		return c.CellTimeout
	}
	return 10 * time.Minute
}

func (c Config) maxCellAttempts() int {
	if c.MaxCellAttempts > 0 {
		return c.MaxCellAttempts
	}
	return 8
}

func (c Config) jobWorkers() int {
	if c.JobWorkers > 0 {
		return c.JobWorkers
	}
	return 4
}

func (c Config) maxJobs() int {
	if c.MaxJobs > 0 {
		return c.MaxJobs
	}
	return 64
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 8 << 20
}

func (c Config) loadBound() float64 {
	switch {
	case c.LoadBound < 0:
		return 0 // disabled: placeBounded degenerates to plain HRW
	case c.LoadBound == 0:
		return 1.25
	}
	return c.LoadBound
}

func (c Config) adviceHysteresis() int {
	if c.AdviceHysteresis > 0 {
		return c.AdviceHysteresis
	}
	return 3
}

func (c Config) adviceP99Micros() float64 {
	switch {
	case c.AdviceP99Micros < 0:
		return 0 // latency trigger disabled
	case c.AdviceP99Micros == 0:
		return 250_000
	}
	return c.AdviceP99Micros
}

// Coordinator is the gpcoordd daemon. Create with New, serve Handler, and
// Close after the HTTP server has shut down (Close stops the reconciler
// and aborts running jobs).
type Coordinator struct {
	cfg     Config
	reg     *registry
	st      store.Store
	metrics metrics
	mux     *http.ServeMux
	client  *http.Client
	log     *slog.Logger

	// traces is the bounded ring of recent placement traces behind
	// GET /v1/debug/traces; one request ID indexes the coordinator's view
	// here and the worker's view in its own ring.
	traces *obs.Ring

	ctx           context.Context
	stop          context.CancelFunc
	reconcileDone chan struct{}

	// epoch is the fleet cache epoch: raised (and journaled first) by
	// POST /v1/cache/flush, pushed to workers by the fan-out and by every
	// heartbeat response, restored from the store on restart.
	epoch atomic.Uint64
	// flushMu serializes flush fan-outs so two concurrent flushes cannot
	// interleave their journal write and fleet broadcast.
	flushMu sync.Mutex

	shadow shadowVerifier

	jobs jobTable

	// placements is the live table of durable (sweep-cell) placements,
	// mirroring the store; adv is the fleet scaling advisor behind
	// GET /v1/fleet/advice.
	placements placementTable
	adv        advisor
}

// New returns a running coordinator (its reconciliation loop is live),
// after replaying whatever state cfg.Store holds: journaled nodes are
// adopted as suspect, journaled unfinished jobs are resumed. A store that
// cannot be loaded or whose jobs cannot be indexed fails construction —
// silently discarding a journal would break the durability promise.
func New(cfg Config) (*Coordinator, error) {
	st := cfg.Store
	if st == nil {
		st = store.NewMemory()
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	ctx, stop := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:           cfg,
		st:            st,
		mux:           http.NewServeMux(),
		client:        &http.Client{},
		log:           log,
		traces:        obs.NewRing(coordTraceRingSize),
		ctx:           ctx,
		stop:          stop,
		reconcileDone: make(chan struct{}),
	}
	c.metrics.init()
	c.reg = newRegistry(st, c.storeError)
	c.shadow.c = c
	c.jobs.byID = make(map[string]*job)
	c.mux.HandleFunc("POST /v1/nodes/register", c.handleRegister)
	c.mux.HandleFunc("POST /v1/nodes/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /v1/nodes/deregister", c.handleDeregister)
	// /v1/nodes is the deprecated alias of /v1/fleet/nodes (same handler,
	// same bytes); kept so pre-fleet-API tooling keeps working.
	c.mux.HandleFunc("GET /v1/nodes", c.handleNodes)
	c.mux.HandleFunc("GET /v1/fleet/nodes", c.handleNodes)
	c.mux.HandleFunc("GET /v1/fleet/advice", c.handleFleetAdvice)
	c.mux.HandleFunc("POST /v1/fleet/nodes/{id}/drain", c.handleDrain)
	c.mux.HandleFunc("POST /v1/fleet/nodes/{id}/undrain", c.handleUndrain)
	c.mux.HandleFunc("POST /v1/schedule", c.handleSchedule)
	c.mux.HandleFunc("POST /v1/schedule/batch", c.handleScheduleBatch)
	c.mux.HandleFunc("POST /v1/cache/flush", c.handleCacheFlush)
	c.mux.HandleFunc("POST /v1/jobs", c.handleCreateJob)
	c.mux.HandleFunc("GET /v1/jobs", c.handleListJobs)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJobStatus)
	c.mux.HandleFunc("GET /v1/jobs/{id}/csv", c.handleJobCSV)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /v1/debug/traces", c.handleDebugTraces)
	c.mux.HandleFunc("GET /v1/debug/traces/{id}", c.handleDebugTrace)
	if err := c.recover(); err != nil {
		stop()
		close(c.reconcileDone)
		return nil, err
	}
	go c.reconcileLoop()
	return c, nil
}

// coordTraceRingSize bounds the coordinator's buffer of recent placement
// traces served by /v1/debug/traces.
const coordTraceRingSize = 128

// storeError records a best-effort persistence failure: counted, logged,
// never fatal to the serving path.
func (c *Coordinator) storeError(op string, err error) {
	c.metrics.storeErrors.Add(1)
	c.log.Warn("store operation failed", "op", op, "err", err.Error())
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c }

// ServeHTTP dispatches to the coordinator's endpoints. Every response
// carries the fleet cache epoch, so clients can tell at a glance whether
// the fleet has converged past a flush they initiated; every response also
// echoes the request ID (propagated or minted here — the coordinator is the
// edge), which the proxy paths forward to workers so one ID stitches the
// coordinator's placement trace to the worker's phase trace.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.metrics.requests.Add(1)
	id, _ := obs.RequestID(r)
	w.Header().Set(obs.RequestIDHeader, id)
	w.Header().Set("X-Algo-Epoch", strconv.FormatUint(c.epoch.Load(), 10))
	c.mux.ServeHTTP(w, r)
}

// Close stops the reconciler, cancels running jobs, waits for their
// dispatchers to exit, and closes the store. Running jobs are abandoned,
// not failed: their journaled state stays "running" so the next
// coordinator on the same journal resumes them. Call after the HTTP
// server has shut down.
func (c *Coordinator) Close() {
	c.stop()
	<-c.reconcileDone
	c.jobs.wg.Wait()
	c.shadow.wg.Wait()
	if err := c.st.Close(); err != nil {
		c.log.Warn("store close failed", "err", err.Error())
	}
}

// Nodes returns the current node table (tests and gpcoordd logs use it).
func (c *Coordinator) Nodes() []NodeInfo { return c.reg.snapshot() }

// HealthSummary is the body of the coordinator's GET /healthz: liveness
// plus a one-glance fleet summary (durability mode, node-health counts,
// running jobs, epoch and the current scaling advice).
type HealthSummary struct {
	Status  string `json:"status"`
	Journal bool   `json:"journal"`
	Epoch   uint64 `json:"epoch"`
	Nodes   struct {
		Ready    int `json:"ready"`
		Suspect  int `json:"suspect"`
		Dead     int `json:"dead"`
		Draining int `json:"draining"`
	} `json:"nodes"`
	JobsRunning int    `json:"jobs_running"`
	Advice      string `json:"advice"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sum := HealthSummary{Status: "ok", Journal: c.st.Durable(), Epoch: c.epoch.Load()}
	for _, n := range c.reg.snapshot() {
		switch {
		case n.Draining:
			sum.Nodes.Draining++
		case n.State == NodeReady.String():
			sum.Nodes.Ready++
		case n.State == NodeSuspect.String():
			sum.Nodes.Suspect++
		default:
			sum.Nodes.Dead++
		}
	}
	sum.JobsRunning = c.jobs.running()
	sum.Advice = c.adv.snapshot().Advice
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(sum)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	c.metrics.render(w, c.reg.snapshot(), c.jobs.running(), c.epoch.Load(), c.st.Stats(), c.adv.snapshot())
}

// writeError answers with the fleet-wide error envelope
// {"error":{"code","message","retryable"}} — the same shape gpserved
// renders, so clients parse one format no matter which daemon refused them.
func (c *Coordinator) writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	if status == http.StatusBadRequest {
		c.metrics.badRequests.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(server.MarshalError(code, fmt.Sprintf(format, args...)))
	_, _ = io.WriteString(w, "\n")
}

func (c *Coordinator) readJSON(w http.ResponseWriter, r *http.Request, out any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.cfg.maxBodyBytes()))
	dec.DisallowUnknownFields()
	return dec.Decode(out)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req server.RegisterRequest
	if err := c.readJSON(w, r, &req); err != nil {
		c.writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "bad register body: %v", err)
		return
	}
	if req.ID == "" || req.Endpoint == "" {
		c.writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "register needs id and endpoint")
		return
	}
	// A joiner speaking a different wire schema is refused outright: the
	// coordinator relays worker bytes verbatim, so one fleet must speak one
	// codec or clients would see responses they cannot parse.
	if fleet, conflict := c.reg.schemaConflict(req.SchemaVersion); conflict {
		c.metrics.schemaRefusals.Add(1)
		c.writeError(w, http.StatusConflict, server.ErrCodeSchemaMismatch,
			"node %s speaks schema %q but the fleet speaks %q", req.ID, req.SchemaVersion, fleet)
		return
	}
	if err := c.reg.register(req.ID, req.Endpoint, req.Capacity, req.AlgoVersion, req.Epoch); err != nil {
		c.storeError("put_node", err)
		c.writeError(w, http.StatusInternalServerError, server.ErrCodeInternal, "persist registration: %v", err)
		return
	}
	c.reg.noteSchema(req.ID, req.SchemaVersion)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(server.RegisterResponse{
		HeartbeatMillis: int(c.cfg.heartbeatInterval() / time.Millisecond),
		Epoch:           c.epoch.Load(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req server.HeartbeatRequest
	if err := c.readJSON(w, r, &req); err != nil {
		c.writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "bad heartbeat body: %v", err)
		return
	}
	// A worker that upgraded in place to a different wire schema is as
	// unwelcome as a mixed-schema joiner (it restarted, so the register
	// gate never saw the new codec): refuse the beat so it stops serving
	// the fleet rather than smuggling a second codec in.
	if fleet, conflict := c.reg.schemaConflict(req.SchemaVersion); conflict {
		c.metrics.schemaRefusals.Add(1)
		c.writeError(w, http.StatusConflict, server.ErrCodeSchemaMismatch,
			"node %s speaks schema %q but the fleet speaks %q", req.ID, req.SchemaVersion, fleet)
		return
	}
	if !c.reg.heartbeat(req.ID, req.AlgoVersion, req.Epoch) {
		// Unknown ID: the coordinator restarted (or the node was evicted);
		// 404 tells the agent to fall back to the register path.
		c.writeError(w, http.StatusNotFound, server.ErrCodeNotFound, "unknown node %q, re-register", req.ID)
		return
	}
	c.reg.noteSchema(req.ID, req.SchemaVersion)
	if req.Load != nil {
		c.reg.absorbLoad(req.ID, req.Load.Inflight, req.Load.Shed, req.Load.P99Micros)
	}
	// Answer with the fleet epoch: a worker that missed the flush fan-out
	// converges on its next beat instead of serving stale bytes forever.
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(server.HeartbeatResponse{Epoch: c.epoch.Load()})
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req server.HeartbeatRequest
	if err := c.readJSON(w, r, &req); err != nil {
		c.writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "bad deregister body: %v", err)
		return
	}
	c.reg.deregister(req.ID)
	w.WriteHeader(http.StatusNoContent)
}

// handleFleetAdvice answers GET /v1/fleet/advice with the advisor's
// hysteresis-damped scaling verdict.
func (c *Coordinator) handleFleetAdvice(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(c.adv.snapshot())
}

// handleDrain and handleUndrain flip a node's drain flag
// (POST /v1/fleet/nodes/{id}/drain and /undrain): a draining node keeps
// its in-flight work and heartbeats but attracts no new placements, and
// its durable placements walk the Ready→Draining edge (back on undrain).
func (c *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request)   { c.setDrain(w, r, true) }
func (c *Coordinator) handleUndrain(w http.ResponseWriter, r *http.Request) { c.setDrain(w, r, false) }

func (c *Coordinator) setDrain(w http.ResponseWriter, r *http.Request, draining bool) {
	id := r.PathValue("id")
	if !c.reg.setDraining(id, draining) {
		c.writeError(w, http.StatusNotFound, server.ErrCodeNotFound, "unknown node %q", id)
		return
	}
	c.metrics.drainFlips.Add(1)
	flipped := c.drainPlacements(id, draining)
	c.log.Info("node drain flag flipped", "node", id, "draining", draining, "placements_flipped", flipped)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"node": id, "draining": draining, "placements_flipped": flipped})
}

func (c *Coordinator) handleNodes(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(c.reg.snapshot())
}

// handleDebugTraces is GET /v1/debug/traces: the most recent placement
// traces, newest first. Debug surface only — never part of a relayed body.
func (c *Coordinator) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(c.traces.Recent(64))
}

// handleDebugTrace is GET /v1/debug/traces/{id}: one placement trace by
// request ID, if it is still in the ring.
func (c *Coordinator) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	t, ok := c.traces.Get(r.PathValue("id"))
	if !ok {
		c.writeError(w, http.StatusNotFound, server.ErrCodeNotFound, "no trace for request id %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&t)
}

// finishProxy stamps a proxy trace's outcome, exposes its phases in the
// X-Phase-Timing response header (strictly outside the relayed body — the
// byte-determinism contract covers bodies only), publishes it to the debug
// ring, and observes the endpoint/outcome latency cell. Must run before the
// response status is written.
func (c *Coordinator) finishProxy(w http.ResponseWriter, tr *obs.Trace, endpoint, outcome string, start time.Time) {
	tr.SetOutcome(outcome)
	if st := tr.ServerTiming(); st != "" {
		w.Header().Set("X-Phase-Timing", st)
	}
	c.traces.Publish(tr)
	c.metrics.observe(endpoint, outcome, time.Since(start))
}

// outcomeOf classifies how placement resolved a served request, the
// low-cardinality outcome label of the duration histogram.
func outcomeOf(fr fleetResult) string {
	switch {
	case fr.failedOver:
		return "failover"
	case fr.spilled:
		return "spill"
	}
	return "owner"
}

// handleSchedule proxies one scheduling request to the fleet: rendezvous
// placement on the content-address key, then failover down the ranking
// with an exclusion list when workers fail. The worker's response —
// including its X-Cache verdict — is relayed byte-for-byte, plus an X-Node
// header naming the worker that served it.
func (c *Coordinator) handleSchedule(w http.ResponseWriter, r *http.Request) {
	c.metrics.scheduleReqs.Add(1)
	start := time.Now()
	tr := obs.AcquireTrace(r.Header.Get(obs.RequestIDHeader), "proxy-schedule")
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, c.cfg.maxBodyBytes())); err != nil {
		c.finishProxy(w, tr, "schedule", "bad-request", start)
		c.writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "read body: %v", err)
		return
	}
	reqBody := buf.Bytes()
	// Admission at the edge: a body gpserved would reject burns no worker,
	// and the parse yields the placement key.
	key, err := server.ScheduleCacheKey(reqBody)
	if err != nil {
		c.finishProxy(w, tr, "schedule", "bad-request", start)
		c.writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "%v", err)
		return
	}
	tr.Phase("admission", time.Since(start))

	fr := c.scheduleOnFleet(r.Context(), key, reqBody, tr.ID, tr)
	if fr.resp != nil {
		// 2xx and request-defect 4xx relay as-is: a 400 is wrong on
		// every worker, retrying it elsewhere would just burn the fleet.
		tr.SetNode(fr.node.id)
		relayServed(w, fr.node.id, fr.resp)
		c.finishProxy(w, tr, "schedule", outcomeOf(fr), start)
		w.WriteHeader(fr.resp.StatusCode)
		_, _ = w.Write(fr.body)
		if fr.resp.StatusCode == http.StatusOK {
			c.shadow.maybeReplay(fr.node, key, reqBody, fr.body)
		}
		return
	}
	switch {
	case fr.noWorkers:
		c.metrics.noCapacity.Add(1)
		c.finishProxy(w, tr, "schedule", "no-workers", start)
		c.writeError(w, http.StatusServiceUnavailable, server.ErrCodeNoWorkers, "no ready workers")
	case fr.allSaturated:
		// Every worker shed with 429: the fleet is loaded, not broken.
		// Relay the single-node backpressure contract so clients back off
		// instead of hard-retrying a "failure".
		c.metrics.noCapacity.Add(1)
		w.Header().Set("Retry-After", "1")
		c.finishProxy(w, tr, "schedule", "saturated", start)
		c.writeError(w, http.StatusTooManyRequests, server.ErrCodeSaturated, "every worker is saturated, retry later")
	default:
		c.finishProxy(w, tr, "schedule", "error", start)
		c.writeError(w, http.StatusBadGateway, server.ErrCodeUpstreamFailed, "all workers failed, last: %v", fr.lastErr)
	}
}

// fleetResult is scheduleOnFleet's outcome: a served response (resp != nil,
// any status below 500 except 429) or a terminal failure classification.
type fleetResult struct {
	node candidate
	resp *http.Response
	body []byte

	spilled    bool // the serving node was a bounded-load spill target
	failedOver bool // at least one worker failed before one served

	noWorkers    bool  // no placeable candidate remained
	allSaturated bool  // at least one attempt, every one shed with 429
	lastErr      error // last worker failure; nil when noWorkers
}

// scheduleOnFleet runs the placement protocol for one singleton schedule
// body: bounded-load rendezvous placement on the content-address key
// (Pending→Preparing), then — when the chosen worker fails — the abort edge
// back to Pending with the node excluded, and the next round places down
// the HRW ranking. Both the singleton proxy and the batch fan-out ride on
// it. The placement is transient: it drives the in-flight accounting and
// the per-transition metrics, then drops when the response is relayed.
// Every attempt is recorded on tr (nil-safe) and forwarded under reqID, and
// every failure emits one structured event carrying the request ID, node,
// attempt number and reason.
func (c *Coordinator) scheduleOnFleet(ctx context.Context, key string, reqBody []byte, reqID string, tr *obs.Trace) fleetResult {
	pl := c.newPlacement(key, false)
	defer pl.drop()
	var lastErr error
	var everSpilled, failedOver bool
	allSaturated := true
	attempt := 0
	for {
		placeStart := time.Now()
		node, owner, rank, spilled, ok := placeBoundedOwner(c.reg.candidates(), key, pl.exclude, c.cfg.loadBound())
		if !ok {
			break
		}
		attempt++
		c.metrics.placements.Add(1)
		c.reg.countRequest(node.id)
		pl.prepare(node, spilled)
		if spilled {
			everSpilled = true
			c.reg.countSpill(owner, node.id)
			c.metrics.noteSpill(key)
		}
		tr.PhaseNote("place", fmt.Sprintf("node=%s rank=%d owner=%s spilled=%t excluded=%d",
			node.id, rank, owner, spilled, len(pl.exclude)), time.Since(placeStart))
		proxyStart := time.Now()
		resp, body, err := c.forward(ctx, node, "/v1/schedule", reqBody, c.cfg.scheduleTimeout(), reqID)
		switch {
		case err != nil:
			// Transport failure or truncated body: the worker is gone or
			// going — suspect it and fail over down the HRW ranking.
			c.reg.reportFailure(node.id)
			c.metrics.failovers.Add(1)
			pl.abort()
			failedOver = true
			lastErr = fmt.Errorf("worker %s: %v", node.id, err)
			allSaturated = false
			tr.PhaseNote("proxy", "node="+node.id+" transport-error", time.Since(proxyStart))
			c.log.Warn("worker attempt failed, failing over",
				"request", reqID, "node", node.id, "attempt", attempt, "reason", err.Error())
		case resp.StatusCode >= 500:
			c.reg.reportFailure(node.id)
			c.metrics.failovers.Add(1)
			pl.abort()
			failedOver = true
			lastErr = fmt.Errorf("worker %s answered %d: %s", node.id, resp.StatusCode, firstLine(body))
			allSaturated = false
			tr.PhaseNote("proxy", fmt.Sprintf("node=%s http-%d", node.id, resp.StatusCode), time.Since(proxyStart))
			c.log.Warn("worker attempt failed, failing over",
				"request", reqID, "node", node.id, "attempt", attempt, "reason", fmt.Sprintf("HTTP %d: %s", resp.StatusCode, firstLine(body)))
		case resp.StatusCode == http.StatusTooManyRequests:
			// Saturation is load, not sickness: try another worker without
			// marking this one suspect.
			c.metrics.retries.Add(1)
			pl.abort()
			lastErr = fmt.Errorf("worker %s saturated", node.id)
			tr.PhaseNote("proxy", "node="+node.id+" saturated", time.Since(proxyStart))
			c.log.Info("worker saturated, retrying on another",
				"request", reqID, "node", node.id, "attempt", attempt)
		default:
			pl.ready()
			tr.PhaseNote("proxy", fmt.Sprintf("node=%s http-%d", node.id, resp.StatusCode), time.Since(proxyStart))
			return fleetResult{node: node, resp: resp, body: body, spilled: everSpilled, failedOver: failedOver}
		}
	}
	return fleetResult{
		spilled:      everSpilled,
		failedOver:   failedOver,
		noWorkers:    lastErr == nil,
		allSaturated: lastErr != nil && allSaturated,
		lastErr:      lastErr,
	}
}

// handleScheduleBatch fans a /v1/schedule/batch envelope out across the
// fleet loop by loop: every loop is forwarded as its equivalent singleton
// request to the worker that rendezvous placement would pick for that
// singleton — so batch loops hit exactly the cache shards singleton traffic
// warms — and the responses are reassembled under the server package's
// batch framing, byte-identical to a single worker's batch of the same
// envelope (asserted by the cluster smoke test, including under worker
// kill: a dead worker's loops fail over and the bytes do not change).
// Per-loop failures render as error elements in place; loops that cannot be
// forwarded at all (no workers, fleet saturated) do too, keeping partial
// results useful. Shadow replay stays a singleton-path concern.
func (c *Coordinator) handleScheduleBatch(w http.ResponseWriter, r *http.Request) {
	c.metrics.batchReqs.Add(1)
	start := time.Now()
	tr := obs.AcquireTrace(r.Header.Get(obs.RequestIDHeader), "proxy-batch")
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, c.cfg.maxBodyBytes())); err != nil {
		c.finishProxy(w, tr, "batch", "bad-request", start)
		c.writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "read body: %v", err)
		return
	}
	items, err := server.BatchItems(buf.Bytes())
	if err != nil {
		c.finishProxy(w, tr, "batch", "bad-request", start)
		c.writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "%v", err)
		return
	}
	c.metrics.batchLoops.Add(int64(len(items)))
	tr.PhaseNote("admission", fmt.Sprintf("loops=%d", len(items)), time.Since(start))

	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/json")
	// The envelope streams, so X-Phase-Timing goes out before any loop runs
	// and carries admission only; per-loop place/proxy phases land in the
	// published trace, each loop forwarded under the deterministic suffixed
	// request ID (envelope#i) so a client can pull the full fan-out from
	// /v1/debug/traces by prefix.
	if st := tr.ServerTiming(); st != "" {
		w.Header().Set("X-Phase-Timing", st)
	}
	_, _ = io.WriteString(w, server.BatchOpen)
	for i := range items {
		if i > 0 {
			_, _ = io.WriteString(w, server.BatchSep)
		}
		_, _ = w.Write(c.batchElement(r.Context(), &items[i], obs.SuffixID(tr.ID, i), tr))
		if flusher != nil {
			flusher.Flush()
		}
	}
	_, _ = io.WriteString(w, server.BatchClose)
	tr.SetOutcome("ok")
	c.traces.Publish(tr)
}

// batchElement resolves one batch loop to its element bytes: a loop with a
// local admission error renders it without burning a worker; otherwise the
// forwarded singleton response body (success or per-loop 4xx alike) is the
// element, trailing newline trimmed to fit the framing. Each forwarded loop
// is observed as one endpoint="batch" histogram sample under its own
// placement outcome (the envelope itself is not observed again).
func (c *Coordinator) batchElement(ctx context.Context, it *server.BatchItem, loopID string, tr *obs.Trace) []byte {
	if it.Err != nil {
		return server.ErrorElement(server.ErrCodeBadRequest, it.Err.Error())
	}
	start := time.Now()
	fr := c.scheduleOnFleet(ctx, it.Key, it.Body, loopID, tr)
	var outcome string
	var elem []byte
	switch {
	case fr.resp != nil:
		outcome = outcomeOf(fr)
		elem = bytes.TrimSuffix(fr.body, []byte("\n"))
	case fr.noWorkers:
		c.metrics.noCapacity.Add(1)
		outcome = "no-workers"
		elem = server.ErrorElement(server.ErrCodeNoWorkers, "no ready workers")
	case fr.allSaturated:
		c.metrics.noCapacity.Add(1)
		outcome = "saturated"
		elem = server.ErrorElement(server.ErrCodeSaturated, "every worker is saturated, retry later")
	default:
		outcome = "error"
		elem = server.ErrorElement(server.ErrCodeUpstreamFailed, fmt.Sprintf("all workers failed, last: %v", fr.lastErr))
	}
	c.metrics.observe("batch", outcome, time.Since(start))
	return elem
}

// relayServed copies the response headers of the attempt actually being
// relayed to the client, by explicit whitelist. Only this helper may write
// proxied headers: failed attempts (a 429's Retry-After, a dying worker's
// X-Cache) never touch w, so a failover can't leak headers from a worker
// whose body the client never sees.
func relayServed(w http.ResponseWriter, nodeID string, resp *http.Response) {
	h := w.Header()
	h.Set("X-Node", nodeID)
	for _, name := range []string{"Content-Type", "X-Cache", "Retry-After", "X-Algo-Version", "X-Algo-Epoch", "X-Schema-Version"} {
		if v := resp.Header.Get(name); v != "" {
			h.Set(name, v)
		}
	}
}

// Epoch returns the current fleet cache epoch (tests and gpcoordd logs).
func (c *Coordinator) Epoch() uint64 { return c.epoch.Load() }

// FlushNodeResult is one node's outcome in a flush fan-out response.
type FlushNodeResult struct {
	Node  string `json:"node"`
	Epoch uint64 `json:"epoch,omitempty"`
	Error string `json:"error,omitempty"`
}

// FlushFleetResponse is the body of a successful coordinator
// POST /v1/cache/flush.
type FlushFleetResponse struct {
	Epoch uint64            `json:"epoch"`
	Nodes []FlushNodeResult `json:"nodes"`
}

// handleCacheFlush is POST /v1/cache/flush on the coordinator: raise the
// fleet cache epoch and fan the flush out to every non-dead worker. The
// order is the durability contract: the new epoch is journaled before
// anything else happens, so a coordinator that crashes mid-fan-out
// restarts at the post-flush epoch and the heartbeat path converges the
// workers the broadcast missed — the one unacceptable outcome, a restart
// resurrecting the pre-flush view, cannot happen. A journal failure is a
// 500 with the epoch unchanged.
func (c *Coordinator) handleCacheFlush(w http.ResponseWriter, r *http.Request) {
	var req server.FlushRequest
	if err := c.readJSON(w, r, &req); err != nil && err != io.EOF {
		c.writeError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "bad flush body: %v", err)
		return
	}
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	epoch := c.epoch.Load() + 1
	if req.Epoch > epoch {
		epoch = req.Epoch
	}
	if err := c.st.SetEpoch(epoch); err != nil {
		c.storeError("set_epoch", err)
		c.writeError(w, http.StatusInternalServerError, server.ErrCodeInternal, "persist epoch: %v", err)
		return
	}
	c.epoch.Store(epoch)
	c.metrics.cacheFlushes.Add(1)
	c.log.Info("cache flush raised fleet epoch",
		"request", r.Header.Get(obs.RequestIDHeader), "epoch", epoch)

	flushBody, _ := json.Marshal(server.FlushRequest{Epoch: epoch})
	out := FlushFleetResponse{Epoch: epoch}
	for _, node := range c.reg.candidates() {
		res := FlushNodeResult{Node: node.id}
		resp, body, err := c.forward(r.Context(), node, "/v1/cache/flush", flushBody, c.cfg.scheduleTimeout(), r.Header.Get(obs.RequestIDHeader))
		switch {
		case err != nil:
			res.Error = err.Error()
		case resp.StatusCode != http.StatusOK:
			res.Error = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, firstLine(body))
		default:
			var fr server.FlushResponse
			if err := json.Unmarshal(body, &fr); err != nil {
				res.Error = fmt.Sprintf("bad flush response: %v", err)
				break
			}
			res.Epoch = fr.Epoch
			c.reg.setNodeEpoch(node.id, fr.Epoch)
		}
		out.Nodes = append(out.Nodes, res)
	}
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].Node < out.Nodes[j].Node })

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Algo-Epoch", strconv.FormatUint(epoch, 10)) // ServeHTTP stamped the pre-flush epoch
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// forward posts body to node's path and reads the full response body
// before reporting success, so a connection that dies mid-response counts
// as a node failure while the coordinator can still fail over (nothing has
// been written to the client yet). A non-empty reqID propagates as the
// X-Request-Id header, so the worker's own trace of the forwarded request
// files under the same identity the coordinator's placement trace carries.
func (c *Coordinator) forward(ctx context.Context, node candidate, path string, body []byte, timeout time.Duration, reqID string) (*http.Response, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node.endpoint+path, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set(obs.RequestIDHeader, reqID)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, out, nil
}

// firstLine trims an error body for log/relay contexts.
func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}

// reconcileLoop is the coordinator's health detector and work re-placer:
// every tick it applies the missed-heartbeat thresholds, then cancels
// in-flight job cells assigned to nodes that just died so their
// dispatchers immediately re-place them on survivors (the persys-style
// desired-state reconciliation, specialized to sweep cells).
func (c *Coordinator) reconcileLoop() {
	defer close(c.reconcileDone)
	t := time.NewTicker(c.cfg.reconcileInterval())
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
		}
		suspected, died := c.reg.sweepHealth(c.cfg.suspectAfter(), c.cfg.deadAfter())
		for _, id := range suspected {
			c.log.Warn("node suspected: missed heartbeats", "node", id)
		}
		for _, id := range died {
			canceled := c.jobs.cancelInflightOn(id)
			c.metrics.reconcilePlaced.Add(canceled)
			c.log.Warn("node dead, re-placing its work", "node", id, "cells_canceled", canceled)
		}
		c.reg.expireDead(c.cfg.deadExpiry())
		// Fold this tick's fleet observation into the scaling advisor.
		c.adv.tick(c.reg.snapshot(), c.cfg.adviceHysteresis(), c.cfg.adviceP99Micros())
	}
}
