package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func mkCandidates(ids ...string) []candidate {
	out := make([]candidate, len(ids))
	for i, id := range ids {
		out[i] = candidate{id: id, endpoint: "http://" + id}
	}
	return out
}

func TestHRWRankDeterministic(t *testing.T) {
	nodes := mkCandidates("a", "b", "c", "d")
	first := hrwRank(nodes, "some-key")
	for i := 0; i < 10; i++ {
		if got := hrwRank(nodes, "some-key"); !reflect.DeepEqual(got, first) {
			t.Fatalf("ranking not deterministic: %v vs %v", got, first)
		}
	}
	// Input order must not matter.
	shuffled := mkCandidates("d", "b", "a", "c")
	if got := hrwRank(shuffled, "some-key"); !reflect.DeepEqual(got, first) {
		t.Fatalf("ranking depends on input order: %v vs %v", got, first)
	}
}

// TestHRWMinimalDisruption is rendezvous hashing's defining property: when
// a node leaves, only the keys it owned move; every other key keeps its
// worker (and therefore its warm cache).
func TestHRWMinimalDisruption(t *testing.T) {
	nodes := mkCandidates("a", "b", "c")
	without := mkCandidates("a", "b")
	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, _ := place(nodes, key, nil)
		after, _ := place(without, key, nil)
		if before.id == "c" {
			moved++
			continue
		}
		if before.id != after.id {
			t.Fatalf("key %q moved from %s to %s although %s did not leave", key, before.id, after.id, before.id)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestHRWSpreadsKeys(t *testing.T) {
	nodes := mkCandidates("a", "b", "c")
	counts := map[string]int{}
	for i := 0; i < 900; i++ {
		n, ok := place(nodes, fmt.Sprintf("key-%d", i), nil)
		if !ok {
			t.Fatal("no placement")
		}
		counts[n.id]++
	}
	for id, c := range counts {
		// Loose bound: each node should carry a real share of 900 keys.
		if c < 150 {
			t.Fatalf("node %s got only %d/900 keys: %v", id, c, counts)
		}
	}
}

func TestPlaceExclusionIsFailoverOrder(t *testing.T) {
	nodes := mkCandidates("a", "b", "c")
	ranked := hrwRank(nodes, "k")
	exclude := map[string]bool{}
	for i := range ranked {
		got, ok := place(nodes, "k", exclude)
		if !ok {
			t.Fatalf("no candidate at step %d", i)
		}
		if got.id != ranked[i].id {
			t.Fatalf("step %d placed %s, want next-ranked %s", i, got.id, ranked[i].id)
		}
		exclude[got.id] = true
	}
	if _, ok := place(nodes, "k", exclude); ok {
		t.Fatal("placement succeeded with every node excluded")
	}
}
