package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/server"
)

// PerfOptions tunes MeasureThroughput.
type PerfOptions struct {
	// Requests is the total number of /v1/schedule requests (default 400).
	Requests int
	// Concurrency is the number of client goroutines (default 8).
	Concurrency int
	// Workers is the fleet size (default 2).
	Workers int
}

func (o PerfOptions) requests() int {
	if o.Requests > 0 {
		return o.Requests
	}
	return 400
}

func (o PerfOptions) concurrency() int {
	if o.Concurrency > 0 {
		return o.Concurrency
	}
	return 8
}

func (o PerfOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 2
}

// MeasureThroughput boots a coordinator and a small in-process worker
// fleet on loopback listeners, registers the workers through the real
// lifecycle protocol, drives the same sustained /v1/schedule mix as the
// single-node measurement — now proxied and rendezvous-routed — and
// returns the throughput snapshot written to BENCH_cluster.json. The
// cache-hit rate aggregates over the whole fleet: with HRW routing each
// key hits exactly one worker's LRU, so steady state matches the
// single-node hit rate despite the sharding.
func MeasureThroughput(cfg Config, opts PerfOptions) (*bench.ServerPerfSnapshot, error) {
	bodies, err := server.PerfRequestBodies()
	if err != nil {
		return nil, err
	}

	coord, err := New(cfg)
	if err != nil {
		return nil, err
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	chs := &http.Server{Handler: coord.Handler()}
	go func() { _ = chs.Serve(cln) }()
	defer func() {
		_ = chs.Close()
		coord.Close()
	}()
	base := "http://" + cln.Addr().String()

	type worker struct {
		srv   *server.Server
		hs    *http.Server
		agent *server.Agent
	}
	var fleet []worker
	defer func() {
		for _, w := range fleet {
			w.agent.Close()
			_ = w.hs.Close()
			w.srv.Close()
		}
	}()
	for i := 0; i < opts.workers(); i++ {
		id := fmt.Sprintf("perf-worker-%d", i)
		srv := server.New(server.Config{NodeID: id})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		agent := server.StartAgent(server.AgentConfig{
			Coordinator: base,
			NodeID:      id,
			Endpoint:    "http://" + ln.Addr().String(),
			Capacity:    runtime.GOMAXPROCS(0),
		})
		fleet = append(fleet, worker{srv: srv, hs: hs, agent: agent})
	}
	// Wait for the fleet to register before opening traffic.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ready := 0
		for _, n := range coord.Nodes() {
			if n.State == NodeReady.String() {
				ready++
			}
		}
		if ready == opts.workers() {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: only %d/%d workers registered", ready, opts.workers())
		}
		time.Sleep(5 * time.Millisecond)
	}

	total := opts.requests()
	conc := opts.concurrency()
	client := &http.Client{}

	var next atomic.Int64
	var errCount, rejected atomic.Int64
	latencies := make([]time.Duration, total)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/schedule", "application/json", bytes.NewReader(body))
				if err != nil {
					errCount.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected.Add(1)
				case resp.StatusCode != http.StatusOK:
					errCount.Add(1)
				default:
					latencies[i] = time.Since(t0)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	served := make([]time.Duration, 0, total)
	for _, d := range latencies {
		if d > 0 {
			served = append(served, d)
		}
	}
	sort.Slice(served, func(i, j int) bool { return served[i] < served[j] })
	var p50, p99 time.Duration
	if n := len(served); n > 0 {
		p50 = served[n/2]
		idx := int(0.99 * float64(n-1))
		p99 = served[idx]
	}

	var hits, misses int64
	for _, w := range fleet {
		h, m, _, _ := w.srv.Metrics()
		hits += h
		misses += m
	}
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}

	return &bench.ServerPerfSnapshot{
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		Requests:       total,
		UniqueRequests: len(bodies),
		Concurrency:    conc,
		Errors:         int(errCount.Load()),
		Rejected:       int(rejected.Load()),
		DurationSec:    elapsed.Seconds(),
		RequestsPerSec: float64(total) / elapsed.Seconds(),
		CacheHitRate:   hitRate,
		P50Micros:      float64(p50) / float64(time.Microsecond),
		P99Micros:      float64(p99) / float64(time.Microsecond),
	}, nil
}
