package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/server"
	"repro/internal/store"
)

// testLogWriter funnels a coordinator's structured log lines into the test
// log, trailing newline trimmed.
type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimSuffix(p, []byte("\n")))
	return len(p), nil
}

// jobMachines picks two machines whose four cells (× two corpora) HRW-map
// to both workers, so sharding and failover tests are guaranteed to involve
// the whole fleet. The pool is small clustered variants; with two workers a
// suitable pair practically always exists.
func jobMachines(t *testing.T, coord *Coordinator, maxLoops int) []machine.Config {
	t.Helper()
	pool := []*machine.Config{
		machine.MustClustered(2, 64, 1, 1),
		machine.MustClustered(4, 64, 1, 1),
		machine.MustClustered(2, 32, 1, 1),
		machine.MustClustered(4, 32, 1, 1),
		machine.MustClustered(4, 128, 1, 1),
		machine.MustClustered(2, 64, 2, 1),
	}
	cands := coord.reg.candidates()
	for i := 0; i < len(pool); i++ {
		for j := i + 1; j < len(pool); j++ {
			owners := map[string]bool{}
			for _, m := range []*machine.Config{pool[i], pool[j]} {
				for _, corpus := range []string{"SPECfp95", "DSP"} {
					n, ok := place(cands, cellKey(m, corpus, maxLoops, false), nil)
					if !ok {
						t.Fatal("no placement candidates")
					}
					owners[n.id] = true
				}
			}
			if len(owners) >= 2 {
				return []machine.Config{*pool[i], *pool[j]}
			}
		}
	}
	t.Fatal("no machine pair spreads across both workers")
	return nil
}

func createJob(t *testing.T, base string, req server.SweepRequest) JobStatus {
	t.Helper()
	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create job: %d %s", resp.StatusCode, out)
	}
	var st JobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatalf("job ack not JSON: %v\n%s", err, out)
	}
	return st
}

func jobStatus(t *testing.T, base, id string, partial bool) JobStatus {
	t.Helper()
	url := base + "/v1/jobs/" + id
	if partial {
		url += "?partial=1"
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job status: %d %s", resp.StatusCode, out)
	}
	var st JobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatalf("status not JSON: %v\n%s", err, out)
	}
	return st
}

func waitForJob(t *testing.T, base, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := jobStatus(t, base, id, false)
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after %v: %+v", id, timeout, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func jobCSV(t *testing.T, base, id string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

// singleNodeCSV computes the same sweep in-process through bench.Sweep —
// the distributed job's ground truth.
func singleNodeCSV(t *testing.T, req server.SweepRequest) []byte {
	t.Helper()
	machines, corpora, err := server.ResolveSweep(&req)
	if err != nil {
		t.Fatal(err)
	}
	points, err := bench.Sweep(context.Background(), machines, corpora, bench.Config{Parallel: 4, Verify: req.Verify})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bench.WriteSweepCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestJobShardedCSVByteIdenticalToSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second distributed sweep; the cluster-smoke CI job runs it")
	}
	coord, base := startCoordinator(t, testConfig())
	startWorker(t, base, "wA")
	startWorker(t, base, "wB")
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	req := server.SweepRequest{
		Machines: jobMachines(t, coord, 1),
		Corpora:  []string{"SPECfp95", "DSP"},
		MaxLoops: 1,
	}
	ack := createJob(t, base, req)
	if ack.Cells != 4 {
		t.Fatalf("job has %d cells, want 4", ack.Cells)
	}

	st := waitForJob(t, base, ack.ID, 120*time.Second)
	if st.State != "done" || st.Done != st.Cells || st.Failed != 0 {
		t.Fatalf("job did not finish cleanly: %+v", st)
	}
	// Both workers actually computed cells (the machine pair was chosen so
	// HRW spreads them).
	nodes := map[string]bool{}
	for _, cell := range st.Detail {
		nodes[cell.Node] = true
	}
	if !nodes["wA"] || !nodes["wB"] {
		t.Fatalf("cells not sharded across the fleet: %+v", st.Detail)
	}

	code, got := jobCSV(t, base, ack.ID)
	if code != http.StatusOK {
		t.Fatalf("csv: %d %s", code, got)
	}
	if want := singleNodeCSV(t, req); !bytes.Equal(got, want) {
		t.Fatalf("distributed CSV differs from single-node sweep:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestJobSurvivesWorkerKilledMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second distributed sweep; the cluster-smoke CI job runs it")
	}
	coord, base := startCoordinator(t, testConfig())
	wA := startWorker(t, base, "wA")
	startWorker(t, base, "wB")
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	req := server.SweepRequest{
		Machines: jobMachines(t, coord, 1),
		Corpora:  []string{"SPECfp95", "DSP"},
		MaxLoops: 1,
	}

	// wA accepts sweep cells but never answers them; once a cell is
	// in-flight there, crash it.
	release := wA.chaos.armStallSweeps()
	defer close(release)
	ack := createJob(t, base, req)

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := jobStatus(t, base, ack.ID, false)
		inflight := false
		for _, cell := range st.Detail {
			if cell.Node == "wA" && cell.State == "running" {
				inflight = true
			}
		}
		if inflight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no cell ever in flight on wA: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	wA.kill()

	// The job must complete with no lost cells: wA's cells re-place on wB.
	st := waitForJob(t, base, ack.ID, 120*time.Second)
	if st.State != "done" || st.Done != st.Cells || st.Failed != 0 {
		t.Fatalf("job lost cells after worker death: %+v", st)
	}
	for _, cell := range st.Detail {
		if cell.Node != "wB" && cell.State == "done" && cell.Node == "wA" {
			t.Fatalf("cell reported done on the dead worker: %+v", cell)
		}
	}
	waitForStates(t, coord, map[string]string{"wA": "dead", "wB": "ready"})

	// And the reassembled CSV is still byte-identical to the single-node
	// sweep: failover changed placement, never bytes.
	code, got := jobCSV(t, base, ack.ID)
	if code != http.StatusOK {
		t.Fatalf("csv: %d %s", code, got)
	}
	if want := singleNodeCSV(t, req); !bytes.Equal(got, want) {
		t.Fatalf("post-failover CSV differs from single-node sweep:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestReconcilerReplacesStrandedCells covers the hang (not crash) failure:
// the worker keeps TCP open but never answers and stops heartbeating. Only
// the reconciliation loop can notice — it must mark the node dead, cancel
// the stranded attempt and re-place the cell.
func TestReconcilerReplacesStrandedCells(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second distributed sweep; the cluster-smoke CI job runs it")
	}
	coord, base := startCoordinator(t, testConfig())
	wA := startWorker(t, base, "wA")
	startWorker(t, base, "wB")
	waitForStates(t, coord, map[string]string{"wA": "ready", "wB": "ready"})

	req := server.SweepRequest{
		Machines: jobMachines(t, coord, 1),
		Corpora:  []string{"SPECfp95", "DSP"},
		MaxLoops: 1,
	}
	release := wA.chaos.armStallSweeps()
	defer close(release)
	ack := createJob(t, base, req)

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := jobStatus(t, base, ack.ID, false)
		inflight := false
		for _, cell := range st.Detail {
			if cell.Node == "wA" && cell.State == "running" {
				inflight = true
			}
		}
		if inflight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no cell ever in flight on wA: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Silence, don't crash: connections stay open, heartbeats stop.
	wA.stopHeartbeats()

	st := waitForJob(t, base, ack.ID, 120*time.Second)
	if st.State != "done" || st.Done != st.Cells || st.Failed != 0 {
		t.Fatalf("job lost cells after worker went silent: %+v", st)
	}
	waitForStates(t, coord, map[string]string{"wA": "dead", "wB": "ready"})

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	found := false
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, "gpcoordd_reconcile_replacements_total ") &&
			!strings.HasSuffix(line, " 0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("reconciler never re-placed a stranded cell:\n%s", text)
	}
}

// TestJobResumesAfterCoordinatorRestart is the tentpole's in-process
// proof: a journaled coordinator is killed mid-sweep (HTTP server closed,
// coordinator closed — the journal sees no terminal state, exactly as
// after a kill -9 plus fsync'd WAL), a fresh coordinator on the same
// journal and address resumes the job, restores the journaled cells
// without recomputing them, and the final CSV is byte-identical to the
// single-node sweep.
func TestJobResumesAfterCoordinatorRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second distributed sweep; the cluster-smoke CI job runs it")
	}
	journalDir := t.TempDir()
	openJournal := func() *store.Journal {
		j, err := store.OpenJournal(journalDir, store.JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	cfgA := testConfig()
	cfgA.Store = openJournal()
	coordA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	base := "http://" + addr
	hsA := &http.Server{Handler: coordA.Handler()}
	go func() { _ = hsA.Serve(ln) }()

	// The workers heartbeat at the fixed address for the whole test; after
	// the restart their next beat reaches the successor coordinator, whose
	// journal already knows their IDs.
	wA := startWorker(t, base, "wA")
	startWorker(t, base, "wB")
	waitForStates(t, coordA, map[string]string{"wA": "ready", "wB": "ready"})

	req := server.SweepRequest{
		Machines: jobMachines(t, coordA, 1),
		Corpora:  []string{"SPECfp95", "DSP"},
		MaxLoops: 1,
	}
	// wA stalls its sweep cells, so at crash time the job is guaranteed
	// half-finished: wB's cells journaled done, wA's still pending.
	release := wA.chaos.armStallSweeps()
	ack := createJob(t, base, req)

	deadline := time.Now().Add(30 * time.Second)
	for {
		st := jobStatus(t, base, ack.ID, false)
		stalled := false
		for _, cell := range st.Detail {
			if cell.Node == "wA" && cell.State == "running" {
				stalled = true
			}
		}
		if st.Done >= 1 && stalled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached the half-done crash point: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Crash the coordinator. Close() abandons the running job — its
	// journaled state stays "running" — and closes the journal.
	_ = hsA.Close()
	coordA.Close()
	close(release)

	// Successor: same journal, same address.
	cfgB := testConfig()
	cfgB.Store = openJournal()
	cfgB.Logger = slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
	coordB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	var ln2 net.Listener
	for attempt := 0; ; attempt++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if attempt > 100 {
			t.Fatalf("relisten on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	hsB := &http.Server{Handler: coordB.Handler()}
	go func() { _ = hsB.Serve(ln2) }()
	t.Cleanup(func() {
		_ = hsB.Close()
		coordB.Close()
	})

	// The listing names the resumed job without knowing its ID.
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing) != 1 || listing[0].ID != ack.ID || !listing[0].Resumed {
		t.Fatalf("job listing after restart: %+v", listing)
	}

	st := waitForJob(t, base, ack.ID, 120*time.Second)
	if st.State != "done" || st.Done != st.Cells || st.Failed != 0 {
		t.Fatalf("resumed job did not finish cleanly: %+v", st)
	}
	if !st.Resumed {
		t.Fatalf("finished job lost its resumed mark: %+v", st)
	}
	// The cells wB finished before the crash were restored from the
	// journal, not recomputed: a restored cell has no post-restart attempts.
	restored := 0
	for _, cell := range st.Detail {
		if cell.State == "done" && cell.Attempts == 0 {
			restored++
		}
	}
	if restored == 0 {
		t.Fatalf("no cell was restored from the journal: %+v", st.Detail)
	}

	code, got := jobCSV(t, base, ack.ID)
	if code != http.StatusOK {
		t.Fatalf("csv: %d %s", code, got)
	}
	if want := singleNodeCSV(t, req); !bytes.Equal(got, want) {
		t.Fatalf("post-restart CSV differs from single-node sweep:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Recovery surfaces in the metrics.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtext, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"gpcoordd_recovery_jobs_resumed 1", "gpcoordd_recovery_nodes_adopted 2"} {
		if !strings.Contains(string(mtext), want+"\n") {
			t.Fatalf("metrics missing %q:\n%s", want, mtext)
		}
	}
	for _, line := range strings.Split(string(mtext), "\n") {
		if strings.HasPrefix(line, "gpcoordd_recovery_cells_restored ") && strings.HasSuffix(line, " 0") {
			t.Fatalf("no cells restored per metrics:\n%s", mtext)
		}
	}
}

func TestJobEndpoints(t *testing.T) {
	coord, base := startCoordinator(t, testConfig())
	wA := startWorker(t, base, "wA")
	waitForStates(t, coord, map[string]string{"wA": "ready"})

	// Unknown job.
	resp, err := http.Get(base + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}

	// A stalled job answers 202 on its CSV endpoint while running.
	release := wA.chaos.armStallSweeps()
	ack := createJob(t, base, server.SweepRequest{
		Machines: []machine.Config{*machine.MustClustered(2, 64, 1, 1)},
		Corpora:  []string{"SPECfp95"},
		MaxLoops: 1,
	})
	code, _ := jobCSV(t, base, ack.ID)
	if code != http.StatusAccepted {
		t.Fatalf("running job CSV endpoint: %d, want 202", code)
	}
	close(release)

	st := waitForJob(t, base, ack.ID, 120*time.Second)
	if st.State != "done" {
		t.Fatalf("job: %+v", st)
	}

	// partial=1 exposes per-cell rows.
	withRows := jobStatus(t, base, ack.ID, true)
	if len(withRows.Detail) != 1 || withRows.Detail[0].Rows == "" {
		t.Fatalf("partial status has no rows: %+v", withRows)
	}
	if !strings.Contains(withRows.Detail[0].Rows, "MEAN") {
		t.Fatalf("cell rows missing MEAN row: %q", withRows.Detail[0].Rows)
	}
}

func TestCellRowsValidation(t *testing.T) {
	header := string(sweepCSVHeader)
	cases := []struct {
		name string
		body string
		ok   bool
	}{
		{"good", header + "SPECfp95,m,prog,1,2,3,4\n", true},
		{"missing header", "SPECfp95,m,prog,1,2,3,4\n", false},
		{"truncated row", header + "SPECfp95,m,prog,1,2", false},
		{"empty fragment", header, false},
		{"in-band error first", header + "ERROR,\"boom\",,,,,\n", false},
		{"in-band error later", header + "SPECfp95,m,prog,1,2,3,4\nERROR,\"boom\",,,,,\n", false},
	}
	for _, tc := range cases {
		if _, got := cellRows([]byte(tc.body)); got != tc.ok {
			t.Errorf("%s: cellRows ok=%v, want %v", tc.name, got, tc.ok)
		}
	}
}

func TestJobTableBounded(t *testing.T) {
	tbl := &jobTable{byID: make(map[string]*job)}
	mkJob := func(id string, state jobState) *job {
		j := &job{id: id, done: make(chan struct{}), state: state}
		j.ctx, j.cancel = context.WithCancel(context.Background())
		return j
	}
	if _, ok := tbl.insert(mkJob("a", jobDone), 2); !ok {
		t.Fatal("insert under capacity failed")
	}
	if _, ok := tbl.insert(mkJob("b", jobRunning), 2); !ok {
		t.Fatal("insert under capacity failed")
	}
	// Full table evicts the oldest finished job and reports which.
	evicted, ok := tbl.insert(mkJob("c", jobRunning), 2)
	if !ok || evicted != "a" {
		t.Fatalf("insert with evictable job: evicted=%q ok=%v", evicted, ok)
	}
	if tbl.get("a") != nil {
		t.Fatal("finished job not evicted")
	}
	// Everything running: shed.
	if _, ok := tbl.insert(mkJob("d", jobRunning), 2); ok {
		t.Fatal("insert succeeded with every retained job running")
	}
	if tbl.get("b") == nil || tbl.get("c") == nil {
		t.Fatal("running jobs were evicted")
	}
}
