package ddgio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/isa"
)

func jsonSampleLoop(t *testing.T) *ddg.Graph {
	t.Helper()
	g := ddg.New("daxpy", 1000)
	x := g.AddNode(isa.Load, "x[i]")
	y := g.AddNode(isa.Load, "y[i]")
	m := g.AddNode(isa.FPMul, "a*x")
	a := g.AddNode(isa.FPAdd, "")
	s := g.AddNode(isa.Store, "y[i]=")
	g.AddDep(x, m, 0)
	g.AddDep(m, a, 0)
	g.AddDep(y, a, 0)
	g.AddDep(a, s, 0)
	g.AddEdge(ddg.Edge{From: s, To: y, Lat: 1, Dist: 1, Kind: ddg.Mem})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestJSONRoundTrip(t *testing.T) {
	g := jsonSampleLoop(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	loops, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	got := loops[0]
	if got.Name != g.Name || got.Niter != g.Niter || got.N() != g.N() || len(got.Edges) != len(g.Edges) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, g)
	}
	for i := range g.Nodes {
		if got.Nodes[i].Op != g.Nodes[i].Op || got.Nodes[i].Name != g.Nodes[i].Name {
			t.Errorf("node %d: got %+v want %+v", i, got.Nodes[i], g.Nodes[i])
		}
	}
	for i := range g.Edges {
		if got.Edges[i] != g.Edges[i] {
			t.Errorf("edge %d: got %+v want %+v", i, got.Edges[i], g.Edges[i])
		}
	}
}

func TestJSONTextEquivalence(t *testing.T) {
	// The two codecs describe the same graph: text → JSON → text is identity.
	g := jsonSampleLoop(t)
	var text1 bytes.Buffer
	if err := Write(&text1, g); err != nil {
		t.Fatal(err)
	}
	var jbuf bytes.Buffer
	if err := WriteJSON(&jbuf, g); err != nil {
		t.Fatal(err)
	}
	loops, err := ReadJSON(&jbuf)
	if err != nil {
		t.Fatal(err)
	}
	var text2 bytes.Buffer
	if err := Write(&text2, loops[0]); err != nil {
		t.Fatal(err)
	}
	if text1.String() != text2.String() {
		t.Fatalf("text after JSON round trip differs:\n%s\nvs\n%s", text1.String(), text2.String())
	}
}

func TestReadJSONSingleObject(t *testing.T) {
	in := `{"name":"one","niter":10,"nodes":[{"op":"IntALU"}]}`
	loops, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 || loops[0].Name != "one" || loops[0].N() != 1 {
		t.Fatalf("bad parse: %+v", loops)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", `{{{`},
		{"no nodes", `{"name":"x","niter":1,"nodes":[]}`},
		{"bad op", `{"name":"x","niter":1,"nodes":[{"op":"Quantum"}]}`},
		{"bad kind", `{"name":"x","niter":1,"nodes":[{"op":"IntALU"},{"op":"IntALU"}],"edges":[{"from":0,"to":1,"lat":1,"kind":"psychic"}]}`},
		{"edge out of range", `{"name":"x","niter":1,"nodes":[{"op":"IntALU"}],"edges":[{"from":0,"to":5,"lat":1}]}`},
		{"zero niter", `{"name":"x","niter":0,"nodes":[{"op":"IntALU"}]}`},
		{"data edge from store", `{"name":"x","niter":1,"nodes":[{"op":"Store"},{"op":"IntALU"}],"edges":[{"from":0,"to":1,"lat":1}]}`},
	}
	for _, tc := range cases {
		if _, err := ReadJSON(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: want error, got none", tc.name)
		}
	}
}
