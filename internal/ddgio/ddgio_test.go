package ddgio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	g := ddg.New("rt", 42)
	a := g.AddNode(isa.Load, "x")
	b := g.AddNode(isa.FPMul, "")
	c := g.AddNode(isa.Store, "out y")
	g.AddEdge(ddg.Edge{From: a, To: b, Lat: 2, Dist: 0, Kind: ddg.Data})
	g.AddEdge(ddg.Edge{From: b, To: c, Lat: 4, Dist: 0, Kind: ddg.Data})
	g.AddEdge(ddg.Edge{From: c, To: a, Lat: 1, Dist: 1, Kind: ddg.Mem})

	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	loops, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 {
		t.Fatalf("got %d loops", len(loops))
	}
	got := loops[0]
	if got.Name != "rt" || got.Niter != 42 || got.N() != 3 || len(got.Edges) != 3 {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	for i := range g.Edges {
		if g.Edges[i] != got.Edges[i] {
			t.Errorf("edge %d: %+v != %+v", i, g.Edges[i], got.Edges[i])
		}
	}
	if got.Nodes[0].Name != "x" {
		t.Errorf("label lost: %q", got.Nodes[0].Name)
	}
	// Spaces in labels are flattened to underscores.
	if got.Nodes[2].Name != "out_y" {
		t.Errorf("spaced label = %q, want out_y", got.Nodes[2].Name)
	}
}

func TestMultipleLoops(t *testing.T) {
	a := ddg.New("a", 10)
	a.AddNode(isa.IntALU, "")
	b := ddg.New("b", 20)
	b.AddNode(isa.Load, "")
	var buf bytes.Buffer
	if err := Write(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	loops, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 2 || loops[0].Name != "a" || loops[1].Name != "b" {
		t.Fatalf("multi-loop round trip failed: %d loops", len(loops))
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
loop l 5

node 0 IntALU
# another
node 1 Load
edge 1 0 2 1 data
`
	loops, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if loops[0].N() != 2 || len(loops[0].Edges) != 1 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"node 0 IntALU",                     // node before loop
		"loop l x",                          // bad niter
		"loop l 5\nnode 1 IntALU",           // non-dense ID
		"loop l 5\nnode 0 Bogus",            // bad op
		"loop l 5\nnode 0 IntALU\nedge 0 0", // short edge
		"loop l 5\nedge 0 1 1 0 data",       // edge refs missing node (validate)
		"loop l 5\nnode 0 IntALU\nwhat 1 2", // unknown directive
		"loop l 0\nnode 0 IntALU",           // invalid trip count (validate)
		"loop l 5\nnode 0 IntALU\nnode 1 IntALU\nedge 0 1 1 0 bogus", // bad kind
	}
	for i, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("case %d parsed without error:\n%s", i, src)
		}
	}
}

func TestParseOpClassCaseInsensitive(t *testing.T) {
	for _, s := range []string{"load", "LOAD", "Load"} {
		c, err := ParseOpClass(s)
		if err != nil || c != isa.Load {
			t.Errorf("ParseOpClass(%q) = %v, %v", s, c, err)
		}
	}
	if _, err := ParseOpClass("nope"); err == nil {
		t.Error("bogus class parsed")
	}
}

func TestCorpusRoundTrips(t *testing.T) {
	// The whole synthetic corpus must survive serialization.
	for _, bm := range workload.SPECfp95()[:3] {
		for _, l := range bm.Loops {
			var buf bytes.Buffer
			if err := Write(&buf, l.G); err != nil {
				t.Fatal(err)
			}
			back, err := Read(&buf)
			if err != nil {
				t.Fatalf("%s: %v", l.G.Name, err)
			}
			if back[0].N() != l.G.N() || len(back[0].Edges) != len(l.G.Edges) {
				t.Fatalf("%s: structure lost", l.G.Name)
			}
		}
	}
}
