// Package ddgio serializes data dependence graphs in a line-oriented text
// format so loops can be exchanged with the command-line tools:
//
//	# comment
//	loop <name> <niter>
//	node <id> <opclass> [label]
//	edge <from> <to> <lat> <dist> <data|mem>
//
// Node lines must appear in ID order starting at 0. A file may contain
// several loops; each starts with a loop line.
package ddgio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/ddg"
	"repro/internal/isa"
)

// Write serializes loops to w.
func Write(w io.Writer, loops ...*ddg.Graph) error {
	bw := bufio.NewWriter(w)
	for _, g := range loops {
		name := g.Name
		if name == "" {
			name = "loop"
		}
		fmt.Fprintf(bw, "loop %s %d\n", strings.ReplaceAll(name, " ", "_"), g.Niter)
		for _, n := range g.Nodes {
			if n.Name != "" {
				fmt.Fprintf(bw, "node %d %s %s\n", n.ID, n.Op, strings.ReplaceAll(n.Name, " ", "_"))
			} else {
				fmt.Fprintf(bw, "node %d %s\n", n.ID, n.Op)
			}
		}
		for _, e := range g.Edges {
			fmt.Fprintf(bw, "edge %d %d %d %d %s\n", e.From, e.To, e.Lat, e.Dist, e.Kind)
		}
	}
	return bw.Flush()
}

// Read parses all loops from r and validates each.
func Read(r io.Reader) ([]*ddg.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var loops []*ddg.Graph
	var cur *ddg.Graph
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "loop":
			if len(fields) != 3 {
				return nil, fmt.Errorf("ddgio: line %d: loop wants <name> <niter>", lineno)
			}
			niter, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("ddgio: line %d: bad trip count %q", lineno, fields[2])
			}
			cur = ddg.New(fields[1], niter)
			loops = append(loops, cur)
		case "node":
			if cur == nil {
				return nil, fmt.Errorf("ddgio: line %d: node before loop", lineno)
			}
			if len(fields) < 3 || len(fields) > 4 {
				return nil, fmt.Errorf("ddgio: line %d: node wants <id> <opclass> [label]", lineno)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != cur.N() {
				return nil, fmt.Errorf("ddgio: line %d: node IDs must be dense and ordered (got %q, want %d)", lineno, fields[1], cur.N())
			}
			op, err := ParseOpClass(fields[2])
			if err != nil {
				return nil, fmt.Errorf("ddgio: line %d: %v", lineno, err)
			}
			label := ""
			if len(fields) == 4 {
				label = fields[3]
			}
			cur.AddNode(op, label)
		case "edge":
			if cur == nil {
				return nil, fmt.Errorf("ddgio: line %d: edge before loop", lineno)
			}
			if len(fields) != 6 {
				return nil, fmt.Errorf("ddgio: line %d: edge wants <from> <to> <lat> <dist> <kind>", lineno)
			}
			var nums [4]int
			for i := 0; i < 4; i++ {
				v, err := strconv.Atoi(fields[1+i])
				if err != nil {
					return nil, fmt.Errorf("ddgio: line %d: bad number %q", lineno, fields[1+i])
				}
				nums[i] = v
			}
			var kind ddg.EdgeKind
			switch fields[5] {
			case "data":
				kind = ddg.Data
			case "mem":
				kind = ddg.Mem
			default:
				return nil, fmt.Errorf("ddgio: line %d: bad edge kind %q", lineno, fields[5])
			}
			cur.AddEdge(ddg.Edge{From: nums[0], To: nums[1], Lat: nums[2], Dist: nums[3], Kind: kind})
		default:
			return nil, fmt.Errorf("ddgio: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ddgio: %w", err)
	}
	for _, g := range loops {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("ddgio: %w", err)
		}
	}
	return loops, nil
}

// ParseOpClass parses an operation-class mnemonic ("IntALU", "Load", ...).
func ParseOpClass(s string) (isa.OpClass, error) {
	for c := 0; c < isa.NumOpClasses; c++ {
		if strings.EqualFold(isa.OpClass(c).String(), s) {
			return isa.OpClass(c), nil
		}
	}
	return 0, fmt.Errorf("unknown op class %q", s)
}
