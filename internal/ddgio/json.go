package ddgio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ddg"
)

// JSONLoop is the JSON encoding of one loop DDG, the wire format of the
// gpserved HTTP API. It carries exactly the information of the text format:
//
//	{"name": "daxpy", "niter": 1000,
//	 "nodes": [{"op": "Load", "name": "x[i]"}, ...],
//	 "edges": [{"from": 0, "to": 2, "lat": 2, "dist": 0, "kind": "data"}, ...]}
//
// Node IDs are implicit array indices, so a JSONLoop cannot express the
// sparse-ID graphs the text format already rejects.
type JSONLoop struct {
	Name  string     `json:"name"`
	Niter int        `json:"niter"`
	Nodes []JSONNode `json:"nodes"`
	Edges []JSONEdge `json:"edges,omitempty"`
}

// JSONNode is one operation: its class mnemonic and an optional label.
type JSONNode struct {
	Op   string `json:"op"`
	Name string `json:"name,omitempty"`
}

// JSONEdge is one dependence. Kind is "data" or "mem"; empty means "data".
type JSONEdge struct {
	From int    `json:"from"`
	To   int    `json:"to"`
	Lat  int    `json:"lat"`
	Dist int    `json:"dist"`
	Kind string `json:"kind,omitempty"`
}

// ToJSON converts a graph to its JSON form. It does not validate; graphs
// from the constructors or Read/FromJSON are already valid.
func ToJSON(g *ddg.Graph) *JSONLoop {
	l := &JSONLoop{Name: g.Name, Niter: g.Niter, Nodes: make([]JSONNode, 0, len(g.Nodes))}
	for _, n := range g.Nodes {
		l.Nodes = append(l.Nodes, JSONNode{Op: n.Op.String(), Name: n.Name})
	}
	for _, e := range g.Edges {
		l.Edges = append(l.Edges, JSONEdge{From: e.From, To: e.To, Lat: e.Lat, Dist: e.Dist, Kind: e.Kind.String()})
	}
	return l
}

// FromJSON builds and validates a graph from its JSON form.
func FromJSON(l *JSONLoop) (*ddg.Graph, error) {
	if l == nil {
		return nil, fmt.Errorf("ddgio: nil loop")
	}
	if len(l.Nodes) == 0 {
		return nil, fmt.Errorf("ddgio: loop %q has no nodes", l.Name)
	}
	g := ddg.New(l.Name, l.Niter)
	for i, n := range l.Nodes {
		op, err := ParseOpClass(n.Op)
		if err != nil {
			return nil, fmt.Errorf("ddgio: node %d: %v", i, err)
		}
		g.AddNode(op, n.Name)
	}
	for i, e := range l.Edges {
		var kind ddg.EdgeKind
		switch e.Kind {
		case "data", "":
			kind = ddg.Data
		case "mem":
			kind = ddg.Mem
		default:
			return nil, fmt.Errorf("ddgio: edge %d: bad kind %q", i, e.Kind)
		}
		g.AddEdge(ddg.Edge{From: e.From, To: e.To, Lat: e.Lat, Dist: e.Dist, Kind: kind})
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("ddgio: %w", err)
	}
	return g, nil
}

// WriteJSON serializes loops as one JSON array.
func WriteJSON(w io.Writer, loops ...*ddg.Graph) error {
	out := make([]*JSONLoop, 0, len(loops))
	for _, g := range loops {
		out = append(out, ToJSON(g))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses loops from JSON: either an array of loop objects or a
// single loop object. Every loop is validated.
func ReadJSON(r io.Reader) ([]*ddg.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ddgio: %w", err)
	}
	var arr []*JSONLoop
	if err := json.Unmarshal(data, &arr); err != nil {
		var one JSONLoop
		if err2 := json.Unmarshal(data, &one); err2 != nil {
			return nil, fmt.Errorf("ddgio: %w", err)
		}
		arr = []*JSONLoop{&one}
	}
	loops := make([]*ddg.Graph, 0, len(arr))
	for _, l := range arr {
		g, err := FromJSON(l)
		if err != nil {
			return nil, err
		}
		loops = append(loops, g)
	}
	return loops, nil
}
