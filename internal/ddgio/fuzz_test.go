package ddgio

import (
	"bytes"
	"testing"

	"repro/internal/workload"
)

// FuzzReadLoops round-trips the text format: any input that Read accepts
// must serialize with Write and re-parse to semantically identical graphs.
func FuzzReadLoops(f *testing.F) {
	// Seed corpus: a hand-written file exercising every directive, plus the
	// first generated benchmark of each corpus family.
	f.Add([]byte("# comment\nloop daxpy 1000\nnode 0 Load x\nnode 1 FPMul\nnode 2 Store y\nedge 0 1 2 0 data\nedge 1 2 4 0 data\nedge 2 0 1 1 mem\n"))
	f.Add([]byte("loop a 1\nnode 0 IntALU\n\nloop b 2\nnode 0 FPDiv\nedge 0 0 8 1 data\n"))
	f.Add([]byte("loop bad 0\n"))
	for _, bms := range [][]*workload.Benchmark{workload.SPECfp95()[:1], workload.DSP()[:1]} {
		var buf bytes.Buffer
		for _, l := range bms[0].Loops[:2] {
			if err := Write(&buf, l.G); err != nil {
				f.Fatal(err)
			}
		}
		f.Add(buf.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		loops, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Skip() // rejected input: nothing to round-trip
		}
		var out bytes.Buffer
		if err := Write(&out, loops...); err != nil {
			t.Fatalf("Write of accepted input: %v", err)
		}
		back, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read of Write output: %v\n%s", err, out.Bytes())
		}
		if len(back) != len(loops) {
			t.Fatalf("round trip lost loops: %d → %d", len(loops), len(back))
		}
		for i := range loops {
			a, b := loops[i], back[i]
			if a.Name != b.Name && b.Name != "loop" { // empty names serialize as "loop"
				t.Fatalf("loop %d name %q → %q", i, a.Name, b.Name)
			}
			if a.Niter != b.Niter || a.N() != b.N() || len(a.Edges) != len(b.Edges) {
				t.Fatalf("loop %d shape changed: niter %d→%d nodes %d→%d edges %d→%d",
					i, a.Niter, b.Niter, a.N(), b.N(), len(a.Edges), len(b.Edges))
			}
			for v := range a.Nodes {
				if a.Nodes[v].Op != b.Nodes[v].Op || a.Nodes[v].Name != b.Nodes[v].Name {
					t.Fatalf("loop %d node %d changed: %+v → %+v", i, v, a.Nodes[v], b.Nodes[v])
				}
			}
			for e := range a.Edges {
				if a.Edges[e] != b.Edges[e] {
					t.Fatalf("loop %d edge %d changed: %+v → %+v", i, e, a.Edges[e], b.Edges[e])
				}
			}
		}
	})
}
