package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/machine"
)

// machineCache is a small LRU of parsed-and-validated machine
// configurations, keyed by the sha256 of the machine-description JSON
// value. The overwhelming fleet pattern is many loops against one machine
// (a compilation unit compiles against one target), so repeated requests
// skip machine.Parse, Validate and the admission size checks entirely.
//
// Cached configs are shared across requests and goroutines: everything
// downstream (partitioner, scheduler, verifier) treats machine.Config as
// read-only, the same contract the parallel sweep harness relies on.
//
// Unlike the result cache, entries carry no epoch: parsing is
// algorithm-independent, so a fleet epoch flush does not invalidate them.
type machineCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List
	byKey map[[sha256.Size]byte]*list.Element
}

type machineEntry struct {
	key [sha256.Size]byte
	cfg *machine.Config
}

// machineCacheEntries bounds the cache: a fleet serves a handful of live
// machine descriptions at a time; 64 is generous.
const machineCacheEntries = 64

func newMachineCache() *machineCache {
	return &machineCache{
		cap:   machineCacheEntries,
		order: list.New(),
		byKey: make(map[[sha256.Size]byte]*list.Element, machineCacheEntries),
	}
}

func (c *machineCache) get(key [sha256.Size]byte) (*machine.Config, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*machineEntry).cfg, true
}

func (c *machineCache) add(key [sha256.Size]byte, cfg *machine.Config) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*machineEntry).cfg = cfg
		return
	}
	c.byKey[key] = c.order.PushFront(&machineEntry{key: key, cfg: cfg})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*machineEntry).key)
	}
}

// resolveMachine turns the raw machine JSON value (a JSON string holding a
// machine-description text) into a validated, admission-checked config,
// through mc when non-nil. The returned state is "hit" or "miss" for the
// X-Machine-Cache header; validation is skipped on a hit (the cached config
// already passed it).
func resolveMachine(raw json.RawMessage, mc *machineCache) (*machine.Config, string, error) {
	var key [sha256.Size]byte
	if mc != nil {
		key = sha256.Sum256(raw)
		if cfg, ok := mc.get(key); ok {
			return cfg, "hit", nil
		}
	}
	m := new(machine.Config)
	if err := json.Unmarshal(raw, m); err != nil {
		return nil, "", fmt.Errorf("bad machine: %v", err)
	}
	if err := m.Validate(); err != nil {
		return nil, "", err
	}
	if err := checkServedMachine(m); err != nil {
		return nil, "", err
	}
	if mc != nil {
		mc.add(key, m)
	}
	return m, "miss", nil
}
