// POST /v1/schedule/batch: many loops against one machine, amortizing the
// machine parse, the admission bookkeeping and the HTTP round-trips over the
// whole compilation unit.
//
// The response is a streamed JSON array, one element per loop in input
// order. Each element is either the exact singleton /v1/schedule response
// body for that loop — batch and singleton requests share cache entries, so
// the bytes are identical by construction — or an errorResponse object when
// that loop fails admission or scheduling (partial failure is per-loop: one
// bad loop never turns the whole batch into a 400). The framing constants
// below are exported so the cluster coordinator's distributed reassembly is
// byte-identical to a single worker's batch.

package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/ddgio"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/schedule"
)

// BatchRequest is the body of POST /v1/schedule/batch: the shared machine
// half of a ScheduleRequest (machine text or grid), the shared scheme and
// portfolio knob, and one entry per loop.
type BatchRequest struct {
	Machine   *machine.Config `json:"machine,omitempty"`
	Clusters  int             `json:"clusters,omitempty"`
	Regs      int             `json:"regs,omitempty"`
	NBus      int             `json:"nbus,omitempty"`
	LatBus    int             `json:"latbus,omitempty"`
	Scheme    string          `json:"scheme,omitempty"`
	Portfolio int             `json:"portfolio,omitempty"`
	Loops     []BatchLoop     `json:"loops"`
}

// BatchLoop is one loop of a batch, in either ScheduleRequest encoding.
type BatchLoop struct {
	Loop     *ddgio.JSONLoop `json:"loop,omitempty"`
	LoopText string          `json:"loop_text,omitempty"`
}

// Batch response framing. An N-element batch is exactly
//
//	BatchOpen elem1 BatchSep elem2 ... BatchSep elemN BatchClose
//
// where each element is a singleton response body with its trailing newline
// trimmed, or an ErrorElement. The result is valid JSON.
const (
	BatchOpen  = "[\n"
	BatchSep   = ",\n"
	BatchClose = "\n]\n"
)

// ErrorElement renders one failed loop's batch element in the unified
// error envelope. The coordinator uses it for loops it cannot forward,
// producing the same bytes the worker batch path would for the same code
// and message.
func ErrorElement(code, msg string) []byte {
	return MarshalError(code, msg)
}

// Batch admission: per-loop limits are the singleton ones (each synthesized
// item passes parseScheduleRequest); on top, the loop count and the summed
// graph size are capped so a batch cannot multiply the worst admitted
// request by an unbounded fan-out.
const (
	maxBatchLoops = 64
	maxBatchNodes = 8 * maxServedNodes
	maxBatchEdges = 8 * maxServedEdges
)

// batchRequestWire is the raw-decode mirror of BatchRequest (see
// scheduleRequestWire for why the machine and loops stay raw).
type batchRequestWire struct {
	Machine   json.RawMessage `json:"machine,omitempty"`
	Clusters  int             `json:"clusters,omitempty"`
	Regs      int             `json:"regs,omitempty"`
	NBus      int             `json:"nbus,omitempty"`
	LatBus    int             `json:"latbus,omitempty"`
	Scheme    string          `json:"scheme,omitempty"`
	Portfolio int             `json:"portfolio,omitempty"`
	Loops     []batchLoopWire `json:"loops"`
}

type batchLoopWire struct {
	Loop     json.RawMessage `json:"loop,omitempty"`
	LoopText string          `json:"loop_text,omitempty"`
}

// batchItem is one parsed loop of a batch: the synthesized singleton body
// (identical at worker and coordinator, so both sides parse, key and render
// the same bytes), plus its parse outcome.
type batchItem struct {
	body []byte
	job  *scheduleJob // nil when err != nil
	err  error        // this loop's admission error, rendered per-loop
}

// parseBatch decodes a batch envelope, synthesizes each loop's singleton
// body, and parses every item. A returned error is an envelope-level client
// error (HTTP 400); per-loop failures land in the item's err instead.
func parseBatch(body []byte, mc *machineCache) ([]batchItem, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req batchRequestWire
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad request body: %v", err)
	}
	if len(req.Loops) == 0 {
		return nil, fmt.Errorf("batch has no loops")
	}
	if len(req.Loops) > maxBatchLoops {
		return nil, fmt.Errorf("batch has %d loops, limit %d", len(req.Loops), maxBatchLoops)
	}

	items := make([]batchItem, len(req.Loops))
	nodes, edges := 0, 0
	for i, l := range req.Loops {
		single := scheduleRequestWire{
			Loop:      l.Loop,
			LoopText:  l.LoopText,
			Machine:   req.Machine,
			Clusters:  req.Clusters,
			Regs:      req.Regs,
			NBus:      req.NBus,
			LatBus:    req.LatBus,
			Scheme:    req.Scheme,
			Portfolio: req.Portfolio,
		}
		b, err := json.Marshal(single)
		if err != nil {
			return nil, fmt.Errorf("loops[%d]: %v", i, err)
		}
		items[i].body = b
		items[i].job, items[i].err = parseScheduleRequestCached(b, mc)
		if j := items[i].job; j != nil {
			nodes += j.g.N()
			edges += len(j.g.Edges)
		}
	}
	if nodes > maxBatchNodes {
		return nil, fmt.Errorf("batch carries %d nodes, limit %d", nodes, maxBatchNodes)
	}
	if edges > maxBatchEdges {
		return nil, fmt.Errorf("batch carries %d edges, limit %d", edges, maxBatchEdges)
	}
	return items, nil
}

// BatchItem is one loop of a batch envelope as the cluster coordinator sees
// it: the singleton body to forward, the placement key to route it by, and
// the loop's own admission error when it has one (the coordinator renders
// ErrorElement in place instead of consuming a worker).
type BatchItem struct {
	Key  string // content-address key at epoch 0; empty when Err != nil
	Body []byte // synthesized singleton /v1/schedule body
	Err  error
}

// BatchItems validates a /v1/schedule/batch body exactly as a worker's
// envelope admission does and splits it into per-loop singleton requests.
// The keys are computed like ScheduleCacheKey — compiled-in algorithm
// version, epoch zero — so rendezvous placement of a batch's loops matches
// the placement of the equivalent singleton requests.
func BatchItems(body []byte) ([]BatchItem, error) {
	items, err := parseBatch(body, nil)
	if err != nil {
		return nil, err
	}
	out := make([]BatchItem, len(items))
	for i := range items {
		out[i] = BatchItem{Body: items[i].body, Err: items[i].err}
		if items[i].job != nil {
			out[i].Key = items[i].job.cacheKey(keySalt(schedule.AlgoVersion, 0))
		}
	}
	return out, nil
}

func (s *Server) handleScheduleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.batchReqs.Add(1)
	start := time.Now()
	tr := obs.AcquireTrace(r.Header.Get(obs.RequestIDHeader), "batch")
	tr.SetNode(s.cfg.NodeID)

	body, release, err := s.readBodyPooled(w, r)
	if err != nil {
		s.finishTrace(w, tr, "bad-request")
		s.writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "read body: %v", err)
		return
	}
	defer release()

	// Parse-free fast path, envelope-wide: a verbatim repeat of a fully
	// served batch body is answered from the body-hash alias index without
	// re-parsing a single loop — the same one-hash-one-probe-one-write
	// path singletons take, amortized over the whole compilation unit.
	// (No per-loop bookkeeping happens here, so batchLoops only counts
	// parsed fan-outs.)
	lookup := time.Now()
	bodyHash := sha256.Sum256(body)
	if cached, ok := s.cache.GetByBody(bodyHash); ok {
		s.metrics.cacheHits.Add(1)
		s.metrics.bodyHits.Add(1)
		tr.PhaseNote("cache-lookup", "body-hit", time.Since(lookup))
		s.finishTrace(w, tr, "hit")
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "hit")
		_, _ = w.Write(cached)
		s.metrics.batchHit.Observe(time.Since(start))
		return
	}

	parse := time.Now()
	items, err := parseBatch(body, s.machines)
	if err != nil {
		s.finishTrace(w, tr, "bad-request")
		s.writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	tr.PhaseNote("parse", fmt.Sprintf("loops=%d", len(items)), time.Since(parse))
	s.metrics.batchLoops.Add(int64(len(items)))
	for i := range items {
		if items[i].job == nil {
			continue
		}
		switch items[i].job.mcState {
		case "hit":
			s.metrics.machineCacheHits.Add(1)
		case "miss":
			s.metrics.machineCacheMisses.Add(1)
		}
	}

	// Snapshot the epoch once for the whole batch: every element keys with
	// it and the assembled response is inserted under it, so a flush that
	// lands mid-batch invalidates this envelope's insert instead of letting
	// a mixed-epoch body linger.
	epoch := s.cache.Epoch()

	// Like a sweep, the whole batch is one long-running unit of work on a
	// single pool slot; its loops run sequentially inside it. Batch items
	// deliberately bypass the singleflight group: a batch already inside
	// its slot waiting as a follower on a singleton leader that is queued
	// behind that same slot would deadlock, so a rare concurrent identical
	// computation is recomputed instead. The shared cache still unifies
	// the bytes either way.
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer encBufPool.Put(buf)
	clean := true
	flusher, _ := w.(http.Flusher)
	queued := time.Now()
	poolErr := s.pool.Do(context.Background(), func() {
		tr.Phase("queue-wait", time.Since(queued))
		// The envelope streams from here on: only the phases so far make
		// the header. Per-loop compute phases keep accumulating in the
		// trace (past MaxPhases they count as Dropped — the ring entry
		// still shows the first loops' spans and the drop tally).
		if st := tr.ServerTiming(); st != "" {
			w.Header().Set("X-Phase-Timing", st)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "miss")
		mw := io.MultiWriter(w, buf)
		_, _ = io.WriteString(mw, BatchOpen)
		for i := range items {
			if i > 0 {
				_, _ = io.WriteString(mw, BatchSep)
			}
			elem, ok := s.batchElement(&items[i], epoch, tr)
			if !ok {
				clean = false
			}
			_, _ = mw.Write(elem)
			if flusher != nil {
				flusher.Flush()
			}
		}
		_, _ = io.WriteString(mw, BatchClose)
	})
	outcome := "miss"
	switch {
	case errors.Is(poolErr, ErrSaturated):
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.retryAfter().Round(time.Second)/time.Second)))
		s.writeError(w, http.StatusTooManyRequests, ErrCodeSaturated, "scheduling queue is full, retry later")
		outcome = "shed"
	case errors.Is(poolErr, ErrClosed):
		s.writeError(w, http.StatusServiceUnavailable, ErrCodeShuttingDown, "server is shutting down")
		outcome = "shutting-down"
	default:
		// Cache the assembled envelope for the verbatim fast path — but
		// only fully served ones, matching the singleton rule that error
		// responses are never cached. The "batch!" prefix cannot collide
		// with content-address keys (those are pure hex).
		if clean {
			out := append(make([]byte, 0, buf.Len()), buf.Bytes()...)
			key := "batch!" + hex.EncodeToString(bodyHash[:])
			if s.cache.Add(key, out, epoch) {
				s.cache.LinkBody(key, bodyHash)
			}
		}
		s.metrics.batchMiss.Observe(time.Since(start))
	}
	tr.SetOutcome(outcome)
	s.traces.Publish(tr)
}

// batchElement produces one loop's element: the singleton response body
// (shared cache entry, trailing newline trimmed) or an error object, with
// ok reporting which. Runs inside the batch's pool slot; tr is the
// envelope's trace, accumulating each computed loop's scheduler phases.
func (s *Server) batchElement(it *batchItem, epoch uint64, tr *obs.Trace) ([]byte, bool) {
	if it.err != nil {
		return ErrorElement(ErrCodeBadRequest, it.err.Error()), false
	}
	key := it.job.cacheKey(keySalt(s.algo, epoch))
	if cached, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		return trimElement(cached), true
	}
	s.metrics.cacheMisses.Add(1)
	out, err := s.compute(key, it.job, epoch, tr)
	if err != nil {
		code := ErrCodeInternal
		var cerr *clientError
		if errors.As(err, &cerr) {
			code = ErrCodeBadRequest
		}
		return ErrorElement(code, err.Error()), false
	}
	return trimElement(out), true
}

// trimElement strips the trailing newline a singleton response body carries
// (json.Encoder appends one) so elements join cleanly under the framing.
func trimElement(body []byte) []byte {
	if n := len(body); n > 0 && body[n-1] == '\n' {
		return body[:n-1]
	}
	return body
}
