package server

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := newWorkerPool(2, 4)
	defer p.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Retry on saturation: 8 submitters vs. 2 workers + 4 slots.
			for {
				err := p.Do(context.Background(), func() { n.Add(1) })
				if err == nil {
					return
				}
				if !errors.Is(err, ErrSaturated) {
					t.Errorf("Do: %v", err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if n.Load() != 8 {
		t.Fatalf("ran %d tasks, want 8", n.Load())
	}
}

func TestPoolSaturation(t *testing.T) {
	p := newWorkerPool(1, 1)
	defer p.Close()

	gate := make(chan struct{})
	running := make(chan struct{})

	// Occupy the single worker.
	go p.Do(context.Background(), func() { close(running); <-gate })
	<-running

	// Fill the single queue slot.
	queued := make(chan error, 1)
	go func() {
		queued <- p.Do(context.Background(), func() {})
	}()
	for p.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}

	// The queue is full: the next submission must shed, not wait.
	if err := p.Do(context.Background(), func() {}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("Do on full queue = %v, want ErrSaturated", err)
	}

	close(gate)
	if err := <-queued; err != nil {
		t.Fatalf("queued task: %v", err)
	}
}

func TestPoolCloseDrainsQueue(t *testing.T) {
	p := newWorkerPool(1, 4)

	gate := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func() { close(running); <-gate })
	<-running

	// Queue three more tasks behind the blocked worker.
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), func() { done.Add(1) }); err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	for p.QueueDepth() != 3 {
		time.Sleep(time.Millisecond)
	}

	// Release the worker and close: every queued task must still run.
	close(gate)
	p.Close()
	wg.Wait()
	if done.Load() != 3 {
		t.Fatalf("drained %d queued tasks, want 3", done.Load())
	}

	// After Close, submissions are refused.
	if err := p.Do(context.Background(), func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after Close = %v, want ErrClosed", err)
	}
}

func TestPoolRecoversPanic(t *testing.T) {
	p := newWorkerPool(1, 2)
	defer p.Close()

	err := p.Do(context.Background(), func() { panic("scheduler bug") })
	if !errors.Is(err, ErrWorkerPanic) || !strings.Contains(err.Error(), "scheduler bug") {
		t.Fatalf("Do with panicking fn = %v, want ErrWorkerPanic", err)
	}

	// The worker survives the panic and keeps serving.
	ran := false
	if err := p.Do(context.Background(), func() { ran = true }); err != nil || !ran {
		t.Fatalf("pool dead after recovered panic: err=%v ran=%v", err, ran)
	}
}

func TestPoolCanceledContext(t *testing.T) {
	p := newWorkerPool(1, 1)
	defer p.Close()

	gate := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func() { close(running); <-gate })
	<-running

	// A canceled waiter returns promptly, but its task still runs once a
	// worker frees up (side effects like cache insertion must survive
	// client disconnects).
	ctx, cancel := context.WithCancel(context.Background())
	ran := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- p.Do(ctx, func() { close(ran) }) }()
	for p.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Do with canceled ctx = %v", err)
	}
	close(gate)
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned task never ran")
	}
}
