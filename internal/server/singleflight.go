package server

import (
	"sync"
	"sync/atomic"
)

// flightGroup coalesces concurrent calls with the same key into one
// execution: the first caller (the leader) runs fn, every caller that
// arrives while it is in flight blocks and shares the leader's result.
// This is the classic singleflight pattern, implemented locally because the
// module deliberately has no external dependencies.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg      sync.WaitGroup
	waiters atomic.Int64 // callers coalesced into this in-flight execution
	val     []byte
	err     error
}

// Do runs fn under key, coalescing concurrent duplicates. shared reports
// whether the result was produced by another caller's in-flight execution.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.waiters.Add(1)
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true, c.err
	}
	c := new(flightCall)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, false, c.err
}

// Waiters reports how many callers are currently coalesced behind key's
// in-flight execution (0 when nothing is in flight). Tests use it to drive
// deterministic coalescing scenarios.
func (g *flightGroup) Waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return int(c.waiters.Load())
	}
	return 0
}
