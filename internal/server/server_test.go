package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ddgio"
	"repro/internal/obs"
)

// tinyLoopText is a small, fast-to-schedule loop in the ddgio text format.
const tinyLoopText = `loop tiny 100
node 0 Load a[i]
node 1 IntALU +1
node 2 Store a[i]=
edge 0 1 2 0 data
edge 1 2 1 0 data
`

func scheduleBody(t *testing.T, mutate func(*ScheduleRequest)) []byte {
	t.Helper()
	req := &ScheduleRequest{LoopText: tinyLoopText, Clusters: 2, Regs: 32, NBus: 1, LatBus: 1, Scheme: "GP"}
	if mutate != nil {
		mutate(req)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postSchedule(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}

func TestScheduleCacheHitByteIdentical(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	body := scheduleBody(t, nil)
	respCold, cold := postSchedule(t, ts, body)
	if respCold.StatusCode != http.StatusOK {
		t.Fatalf("cold: %d %s", respCold.StatusCode, cold)
	}
	if got := respCold.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("cold X-Cache = %q", got)
	}

	respHot, hot := postSchedule(t, ts, body)
	if respHot.StatusCode != http.StatusOK {
		t.Fatalf("hot: %d %s", respHot.StatusCode, hot)
	}
	if got := respHot.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("hot X-Cache = %q", got)
	}
	if !bytes.Equal(cold, hot) {
		t.Fatalf("cache hit not byte-identical:\ncold: %s\nhot:  %s", cold, hot)
	}

	var parsed ScheduleResponse
	if err := json.Unmarshal(cold, &parsed); err != nil {
		t.Fatalf("response not valid JSON: %v", err)
	}
	if !parsed.Verified || parsed.II < 1 || len(parsed.Time) != 3 || parsed.Scheme != "GP" {
		t.Fatalf("bad response: %+v", parsed)
	}

	hits, misses, _, _ := srv.Metrics()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestScheduleEquivalentEncodingsShareCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	// Text encoding, grid machine.
	respA, bodyA := postSchedule(t, ts, scheduleBody(t, nil))
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("text: %d %s", respA.StatusCode, bodyA)
	}

	// Same loop as JSON: content-addressing must find the same entry.
	respB, bodyB := postSchedule(t, ts, scheduleBody(t, func(r *ScheduleRequest) {
		r.LoopText = ""
		r.Loop = &ddgio.JSONLoop{
			Name: "tiny", Niter: 100,
			Nodes: []ddgio.JSONNode{{Op: "Load", Name: "a[i]"}, {Op: "IntALU", Name: "+1"}, {Op: "Store", Name: "a[i]="}},
			Edges: []ddgio.JSONEdge{{From: 0, To: 1, Lat: 2}, {From: 1, To: 2, Lat: 1}},
		}
	}))
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("json: %d %s", respB.StatusCode, bodyB)
	}
	if respB.Header.Get("X-Cache") != "hit" {
		t.Fatalf("JSON twin was not a cache hit (X-Cache=%q)", respB.Header.Get("X-Cache"))
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatal("equivalent encodings produced different bytes")
	}
	if hits, misses, _, _ := srv.Metrics(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func mustJSON(t *testing.T, s string) []byte {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestScheduleMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"not json", `{{{`},
		{"unknown field", `{"loop_text":"x","clusters":2,"bogus":1}`},
		{"missing loop", `{"clusters":2}`},
		{"both loops", `{"loop_text":"loop x 1\nnode 0 IntALU\n","loop":{"name":"x","niter":1,"nodes":[{"op":"IntALU"}]},"clusters":2}`},
		{"bad loop text", `{"loop_text":"loop broken","clusters":2}`},
		{"two loops in text", `{"loop_text":"loop a 1\nnode 0 IntALU\nloop b 1\nnode 0 IntALU\n","clusters":2}`},
		{"bad op class", `{"loop":{"name":"x","niter":1,"nodes":[{"op":"Quantum"}]},"clusters":2}`},
		{"missing machine", `{"loop":{"name":"x","niter":1,"nodes":[{"op":"IntALU"}]}}`},
		{"machine and grid", `{"loop":{"name":"x","niter":1,"nodes":[{"op":"IntALU"}]},"machine":"machine m\ncluster 1 1 1 8\n","clusters":2}`},
		{"bad machine text", `{"loop":{"name":"x","niter":1,"nodes":[{"op":"IntALU"}]},"machine":"machine broken"}`},
		{"bad grid", `{"loop":{"name":"x","niter":1,"nodes":[{"op":"IntALU"}]},"clusters":3}`},
		{"negative regs unified", `{"loop":{"name":"x","niter":1,"nodes":[{"op":"IntALU"}]},"clusters":1,"regs":-8}`},
		{"negative regs clustered", `{"loop":{"name":"x","niter":1,"nodes":[{"op":"IntALU"}]},"clusters":2,"regs":-8}`},
		// A single huge self-recurrence latency would drive the MII — and
		// the scheduler's O(units·II) reservation tables — to its own
		// magnitude; admission must shed it, not the OOM killer.
		{"huge latency", `{"loop":{"name":"x","niter":2,"nodes":[{"op":"FPAdd"}],"edges":[{"from":0,"to":0,"lat":1099511627776,"dist":1}]},"clusters":4}`},
		{"huge distance", `{"loop":{"name":"x","niter":2,"nodes":[{"op":"FPAdd"}],"edges":[{"from":0,"to":0,"lat":1,"dist":1000000}]},"clusters":4}`},
		{"mii over cap", `{"loop":{"name":"x","niter":2,"nodes":[{"op":"FPAdd"}],"edges":[{"from":0,"to":0,"lat":65536,"dist":1}]},"clusters":4}`},
		// The machine half of a request is bounded like the loop half:
		// reservation tables scale with clusters² on p2p machines and with
		// every latency, so hostile descriptions are shed at admission.
		{"too many clusters", `{"loop":{"name":"x","niter":1,"nodes":[{"op":"IntALU"}]},"machine":` +
			string(mustJSON(t, "machine big\n"+strings.Repeat("cluster 1 1 1 8\n", 20)+"interconnect p2p 1 1 blocking\n")) + `}`},
		{"huge op latency", `{"loop":{"name":"x","niter":1,"nodes":[{"op":"IntALU"}]},"machine":` +
			string(mustJSON(t, "machine slow\ncluster 1 1 1 8\nlatency FPDiv 1000000000\n")) + `}`},
		{"unknown scheme", `{"loop":{"name":"x","niter":1,"nodes":[{"op":"IntALU"}]},"clusters":2,"scheme":"LLM"}`},
		{"infeasible machine", `{"loop":{"name":"x","niter":1,"nodes":[{"op":"FPAdd"}]},"machine":"machine intonly\ncluster 1 0 1 8\n"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postSchedule(t, ts, []byte(tc.body))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d (want 400), body %s", resp.StatusCode, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != ErrCodeBadRequest || e.Error.Message == "" {
				t.Fatalf("error body not a bad_request envelope: %s", body)
			}
			if e.Error.Retryable {
				t.Fatalf("bad_request marked retryable: %s", body)
			}
		})
	}
}

func TestScheduleSingleflightCoalescing(t *testing.T) {
	const followers = 7

	srv := New(Config{Workers: 1, QueueDepth: 4})
	gate := make(chan struct{})
	entered := make(chan string, 1)
	computes := 0
	srv.computeHook = func(key string) {
		computes++
		entered <- key
		<-gate
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	body := scheduleBody(t, nil)

	// Leader: occupies the worker inside computeHook.
	results := make(chan []byte, followers+1)
	var wg sync.WaitGroup
	fire := func() {
		defer wg.Done()
		resp, out := postSchedule(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("status %d: %s", resp.StatusCode, out)
		}
		results <- out
	}
	wg.Add(1)
	go fire()
	key := <-entered

	// Followers: must coalesce behind the in-flight leader, not enqueue
	// their own pool tasks. Wait until every one of them is registered as
	// a waiter before releasing the leader — fully deterministic.
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go fire()
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.flight.Waiters(key) != followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers coalesced", srv.flight.Waiters(key), followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if computes != 1 {
		t.Fatalf("%d computations for %d concurrent identical requests, want exactly 1", computes, followers+1)
	}
	first := <-results
	for i := 0; i < followers; i++ {
		if got := <-results; !bytes.Equal(first, got) {
			t.Fatal("coalesced responses are not byte-identical")
		}
	}
	if _, _, coalesced, _ := srv.Metrics(); coalesced != followers {
		t.Fatalf("coalesced metric = %d, want %d", coalesced, followers)
	}
}

func TestScheduleSaturation429(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	entered := make(chan string, 2)
	srv.computeHook = func(key string) {
		entered <- key
		<-gate
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	distinct := func(i int) []byte {
		return scheduleBody(t, func(r *ScheduleRequest) {
			r.LoopText = strings.Replace(tinyLoopText, "loop tiny 100", fmt.Sprintf("loop tiny%d 100", i), 1)
		})
	}

	var wg sync.WaitGroup
	// Request 1 occupies the worker (blocked in the hook).
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, out := postSchedule(t, ts, distinct(1))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("first request: %d %s", resp.StatusCode, out)
		}
	}()
	<-entered

	// Request 2 fills the single queue slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, out := postSchedule(t, ts, distinct(2))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("second request: %d %s", resp.StatusCode, out)
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for srv.pool.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Request 3 must be shed with 429 + Retry-After, not queued.
	resp, out := postSchedule(t, ts, distinct(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: %d %s (want 429)", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(gate)
	wg.Wait()
	// The gated hook consumed one `entered` send per computation; drain the
	// second request's if present.
	select {
	case <-entered:
	default:
	}
	if _, _, _, rejected := srv.Metrics(); rejected != 1 {
		t.Fatalf("rejected metric = %d, want 1", rejected)
	}
}

func TestGracefulDrain(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	gate := make(chan struct{})
	entered := make(chan string, 1)
	srv.computeHook = func(key string) {
		entered <- key
		<-gate
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	// An in-flight request is blocked inside the worker.
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/schedule", "application/json", bytes.NewReader(scheduleBody(t, nil)))
		if err != nil {
			done <- result{status: -1}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: b}
	}()
	<-entered

	// Shutdown must wait for that request, serve it fully, then return.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- hs.Shutdown(ctx)
	}()
	// Give Shutdown a moment to stop the listener, then release the worker.
	time.Sleep(50 * time.Millisecond)
	close(gate)

	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	res := <-done
	if res.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d body %s", res.status, res.body)
	}
	var parsed ScheduleResponse
	if err := json.Unmarshal(res.body, &parsed); err != nil || !parsed.Verified {
		t.Fatalf("drained response invalid: %v %s", err, res.body)
	}
	srv.Close()
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, _ := postSchedule(t, ts, scheduleBody(t, nil)); resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"gpserved_requests_total",
		"gpserved_schedule_requests_total",
		"gpserved_cache_hits_total",
		"gpserved_cache_misses_total 1",
		"gpserved_cache_entries 1",
		"gpserved_cache_body_hits_total",
		"gpserved_machine_cache_hits_total",
		"gpserved_machine_cache_misses_total",
		"gpserved_batch_requests_total",
		"gpserved_batch_loops_total",
		"gpserved_queue_depth",
		"gpserved_latency_p50_seconds",
		"gpserved_latency_p99_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestMetricsLint holds a traffic-warmed /metrics page to the fleet naming
// contract: counters end _total, gauges are allowlisted, histogram families
// emit their complete _bucket/_sum/_count triple — including the
// endpoint/cache-labeled duration histogram over the shared bucket layout.
func TestMetricsLint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := scheduleBody(t, nil)
	for i := 0; i < 2; i++ { // one miss, one hit: both cache label values
		if resp, _ := postSchedule(t, ts, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("schedule %d: %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	if problems := obs.CheckMetrics(text, workerGauges); len(problems) != 0 {
		t.Fatalf("metrics lint:\n%s", strings.Join(problems, "\n"))
	}
	for _, want := range []string{
		`gpserved_request_duration_seconds_bucket{endpoint="schedule",cache="miss",le="+Inf"}`,
		`gpserved_request_duration_seconds_bucket{endpoint="schedule",cache="hit",le="+Inf"}`,
		`gpserved_request_duration_seconds_sum{endpoint="schedule",cache="miss"}`,
		`gpserved_request_duration_seconds_count{endpoint="schedule",cache="miss"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestSweepEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep cell is slow; skipped with -short")
	}
	_, ts := newTestServer(t, Config{})
	req := `{"machines":["machine test2\ncluster 2 2 2 16\ncluster 2 2 2 16\ninterconnect bus 1 1 blocking\n"],"corpora":["SPECfp95"],"max_loops":1,"verify":true}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "corpus,config,program") {
		t.Fatalf("sweep CSV malformed:\n%s", body)
	}
	if !strings.Contains(string(body), "MEAN") {
		t.Fatalf("sweep CSV missing MEAN rows:\n%s", body)
	}
}

func TestSweepMalformed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hugeMachine, err := json.Marshal("machine big\n" + strings.Repeat("cluster 1 1 1 8\n", 20) + "interconnect p2p 1 1 blocking\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, body := range []string{
		`{{{`,
		`{"corpora":["NoSuchCorpus"]}`,
		`{"machines":["machine broken"]}`,
		`{"max_loops":-1}`,
		`{"machines":[` + string(hugeMachine) + `]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestCacheFlushEndpoint proves the stale-cache kill switch end to end: a
// cached response survives re-requests byte-identically, POST
// /v1/cache/flush wipes it and raises the advertised epoch, and the next
// identical request is a recomputed miss.
func TestCacheFlushEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	body := scheduleBody(t, nil)

	respCold, cold := postSchedule(t, ts, body)
	if respCold.StatusCode != http.StatusOK {
		t.Fatalf("cold: %d %s", respCold.StatusCode, cold)
	}
	if v := respCold.Header.Get("X-Algo-Version"); v != srv.AlgoVersion() {
		t.Fatalf("X-Algo-Version = %q, want %q", v, srv.AlgoVersion())
	}
	if e := respCold.Header.Get("X-Algo-Epoch"); e != "0" {
		t.Fatalf("pre-flush X-Algo-Epoch = %q, want 0", e)
	}

	// Flush with an explicit fleet epoch.
	resp, err := http.Post(ts.URL+"/v1/cache/flush", "application/json", strings.NewReader(`{"epoch": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	var fr FlushResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || fr.Epoch != 7 {
		t.Fatalf("flush: %d epoch=%d, want 200 epoch=7", resp.StatusCode, fr.Epoch)
	}
	if got := resp.Header.Get("X-Algo-Epoch"); got != "7" {
		t.Fatalf("flush X-Algo-Epoch = %q, want 7", got)
	}
	if srv.Epoch() != 7 {
		t.Fatalf("Epoch() = %d, want 7", srv.Epoch())
	}

	// The identical request recomputes: the flush really emptied the cache.
	respAfter, after := postSchedule(t, ts, body)
	if respAfter.StatusCode != http.StatusOK {
		t.Fatalf("post-flush: %d %s", respAfter.StatusCode, after)
	}
	if got := respAfter.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("post-flush X-Cache = %q, want miss", got)
	}
	if got := respAfter.Header.Get("X-Algo-Epoch"); got != "7" {
		t.Fatalf("post-flush X-Algo-Epoch = %q, want 7", got)
	}
	// Same binary, same algorithm: the recomputed bytes must match.
	if !bytes.Equal(cold, after) {
		t.Fatal("recomputed response differs from pre-flush response")
	}

	// An empty flush body bumps by one.
	resp2, err := http.Post(ts.URL+"/v1/cache/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if srv.Epoch() != 8 {
		t.Fatalf("epoch after empty flush = %d, want 8", srv.Epoch())
	}
}

// TestBalanceBestFitDivergesIdentity pins the satellite fix for
// output-affecting server options: a worker with -balance-best-fit must
// advertise a different algorithm version and compute under different
// cache keys than a stock worker, so the two can never cross-pollute a
// shared (coordinator-sharded) cache.
func TestBalanceBestFitDivergesIdentity(t *testing.T) {
	var mu sync.Mutex
	keys := make(map[string][]string)
	hook := func(tag string) func(string) {
		return func(key string) {
			mu.Lock()
			keys[tag] = append(keys[tag], key)
			mu.Unlock()
		}
	}
	stock := New(Config{})
	stock.computeHook = hook("stock")
	bestfit := New(Config{BalanceBestFit: true})
	bestfit.computeHook = hook("bestfit")
	tsStock := httptest.NewServer(stock.Handler())
	tsBest := httptest.NewServer(bestfit.Handler())
	t.Cleanup(func() {
		tsStock.Close()
		tsBest.Close()
		stock.Close()
		bestfit.Close()
	})

	if stock.AlgoVersion() == bestfit.AlgoVersion() {
		t.Fatalf("BalanceBestFit did not change the advertised version: %q", stock.AlgoVersion())
	}
	if !strings.HasSuffix(bestfit.AlgoVersion(), "+bestfit") {
		t.Fatalf("bestfit version = %q, want +bestfit suffix", bestfit.AlgoVersion())
	}

	body := scheduleBody(t, nil)
	if resp, out := postSchedule(t, tsStock, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("stock: %d %s", resp.StatusCode, out)
	}
	if resp, out := postSchedule(t, tsBest, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("bestfit: %d %s", resp.StatusCode, out)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys["stock"]) != 1 || len(keys["bestfit"]) != 1 {
		t.Fatalf("computes: %v", keys)
	}
	if keys["stock"][0] == keys["bestfit"][0] {
		t.Fatal("identical cache key across diverging BalanceBestFit configs")
	}
}
