package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrSaturated reports that the worker pool's queue is full: the caller
// should shed the request (the HTTP layer turns this into 429 +
// Retry-After).
var ErrSaturated = errors.New("server: worker pool saturated")

// ErrClosed reports a submission after Close; the HTTP layer turns it into
// 503 during shutdown.
var ErrClosed = errors.New("server: worker pool closed")

// ErrWorkerPanic reports that the submitted function panicked. The worker
// recovers it — tasks run untrusted-input compute outside net/http's
// per-connection recover, so an unrecovered panic would kill the whole
// daemon — and Do surfaces it as this error (a 500, not a crash).
var ErrWorkerPanic = errors.New("server: worker panicked")

// workerPool executes submitted functions on a fixed number of goroutines
// with a bounded queue. Admission is non-blocking: a full queue rejects
// immediately with ErrSaturated instead of building unbounded latency —
// the admission-control half of the service's backpressure story.
type workerPool struct {
	tasks chan *poolTask
	depth atomic.Int64 // queued, not yet started
	wg    sync.WaitGroup

	// mu orders admissions against Close: submissions hold the read side
	// across the enqueue attempt, Close flips closed and closes the channel
	// under the write side, so Do can never send on a closed channel.
	mu     sync.RWMutex
	closed bool
}

type poolTask struct {
	fn       func()
	done     chan struct{}
	panicErr error // set before done closes when fn panicked
}

// run executes the task, converting a panic into panicErr.
func (t *poolTask) run() {
	defer func() {
		if r := recover(); r != nil {
			t.panicErr = fmt.Errorf("%w: %v", ErrWorkerPanic, r)
		}
		close(t.done)
	}()
	t.fn()
}

func newWorkerPool(workers, queue int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &workerPool{tasks: make(chan *poolTask, queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				p.depth.Add(-1)
				t.run()
			}
		}()
	}
	return p
}

// Do submits fn and waits for it to finish, or rejects immediately when the
// queue is full. A canceled ctx stops the wait but NOT the task: once
// admitted, fn still runs to completion when a worker picks it up, so
// shared side effects like cache insertion survive abandoned waits. A
// caller whose fn captures per-request state (like an http.ResponseWriter)
// must therefore pass a context that outlives fn — not the request context.
func (p *workerPool) Do(ctx context.Context, fn func()) error {
	t := &poolTask{fn: fn, done: make(chan struct{})}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrClosed
	}
	admitted := false
	select {
	case p.tasks <- t:
		// Counted after the send succeeds, so an observed QueueDepth
		// happens-after the enqueue.
		p.depth.Add(1)
		admitted = true
	default:
	}
	p.mu.RUnlock()
	if !admitted {
		return ErrSaturated
	}
	select {
	case <-t.done:
		return t.panicErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueueDepth returns the number of queued tasks not yet picked up. The
// count can transiently read as negative when a worker picks a task between
// its enqueue and the submitter's increment; clamp for display.
func (p *workerPool) QueueDepth() int {
	if d := p.depth.Load(); d > 0 {
		return int(d)
	}
	return 0
}

// Close drains the pool: no new submissions are admitted (they get
// ErrClosed), every already queued task still runs, and Close returns when
// the workers have exited. Safe to call concurrently with Do and more than
// once.
func (p *workerPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}
