package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used result cache. Keys are
// content hashes of canonicalized requests; values are the exact response
// bodies that were served cold, so a hit replays byte-identical bytes.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	byKey map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element, capacity)}
}

// Get returns the cached value and refreshes its recency.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add inserts or refreshes a value, evicting the least recently used entry
// when over capacity.
func (c *lruCache) Add(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Keys returns the keys from most to least recently used (tests assert
// eviction order through this).
func (c *lruCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*lruEntry).key)
	}
	return keys
}
