package server

import (
	"container/list"
	"crypto/sha256"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used result cache. Keys are
// content hashes of canonicalized requests; values are the exact response
// bodies that were served cold, so a hit replays byte-identical bytes.
//
// The cache owns the worker's cache epoch. Every entry is recorded under
// the epoch it was computed in; FlushTo wipes the table and raises the
// epoch, after which entries from older epochs can neither be served (Get
// re-checks the entry's epoch) nor inserted (Add rejects a stale epoch).
// The double guard matters for the flush/insert race: a compute that
// started before a flush finishes after it, and its Add must not
// repopulate the post-flush cache with pre-flush bytes.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	epoch uint64
	order *list.List // front = most recently used
	byKey map[string]*list.Element

	// byBody maps sha256(request body) → entry, an alias index over the
	// same entries: a repeat of the exact bytes of an earlier request is
	// served without parsing it at all (the content-hash key above still
	// unifies equivalent-but-differently-spelled requests; this index only
	// accelerates verbatim repeats, the common replay pattern). Aliases are
	// recorded by LinkBody after the canonical key resolved, bounded per
	// entry, and die with their entry.
	byBody map[[sha256.Size]byte]*list.Element
}

type lruEntry struct {
	key    string
	val    []byte
	epoch  uint64
	bodies [][sha256.Size]byte // body hashes aliasing this entry
}

// maxBodyAliases bounds the body-hash aliases per entry: the same job can be
// spelled many ways (whitespace, field order), and the alias index must not
// grow past a small factor of the entry count.
const maxBodyAliases = 4

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		cap:    capacity,
		order:  list.New(),
		byKey:  make(map[string]*list.Element, capacity),
		byBody: make(map[[sha256.Size]byte]*list.Element, capacity),
	}
}

// dropLocked removes an element and all its indexes. Caller holds mu.
func (c *lruCache) dropLocked(el *list.Element) {
	e := el.Value.(*lruEntry)
	c.order.Remove(el)
	delete(c.byKey, e.key)
	for _, h := range e.bodies {
		delete(c.byBody, h)
	}
	e.bodies = nil
}

// Epoch returns the current cache epoch. Callers snapshot it once per
// request and pass the same value to Add, so a flush racing the request is
// detected rather than overwritten.
func (c *lruCache) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// FlushTo wipes the cache and raises the epoch to at least target
// (monotonic — a lower target still bumps by one, so a local flush always
// invalidates). It returns the new epoch.
func (c *lruCache) FlushTo(target uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.byKey = make(map[string]*list.Element, c.cap)
	c.byBody = make(map[[sha256.Size]byte]*list.Element, c.cap)
	if target > c.epoch {
		c.epoch = target
	} else {
		c.epoch++
	}
	return c.epoch
}

// Get returns the cached value and refreshes its recency. An entry
// recorded under an older epoch is never served: it is dropped and the
// lookup misses (defense in depth — FlushTo already wiped the table, this
// guards the window where a racing insert slipped in between wipe and
// epoch check).
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	if e := el.Value.(*lruEntry); e.epoch != c.epoch {
		c.dropLocked(el)
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// GetByBody serves a hit for an exact byte-for-byte repeat of a previously
// linked request body, without the caller parsing anything. The fast path is
// allocation-free (asserted by TestHitPathZeroAllocs); epoch and recency
// semantics match Get.
func (c *lruCache) GetByBody(h [sha256.Size]byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byBody[h]
	if !ok {
		return nil, false
	}
	if e := el.Value.(*lruEntry); e.epoch != c.epoch {
		c.dropLocked(el)
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// LinkBody records a body hash as an alias of the entry under key, so the
// next verbatim repeat of those bytes takes the parse-free GetByBody path.
// A missing key (entry evicted or flushed since resolution) is a no-op.
func (c *lruCache) LinkBody(key string, h [sha256.Size]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return
	}
	if prev, ok := c.byBody[h]; ok && prev == el {
		return
	}
	e := el.Value.(*lruEntry)
	if len(e.bodies) >= maxBodyAliases {
		delete(c.byBody, e.bodies[0])
		e.bodies = append(e.bodies[:0], e.bodies[1:]...)
	}
	e.bodies = append(e.bodies, h)
	c.byBody[h] = el
}

// Add inserts or refreshes a value computed under the given epoch,
// evicting the least recently used entry when over capacity. A stale
// epoch — the cache was flushed after the caller snapshotted it — is
// rejected: the computation may predate an algorithm change the flush
// announced, so its bytes must not outlive it.
func (c *lruCache) Add(key string, val []byte, epoch uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		return false
	}
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*lruEntry)
		e.val = val
		e.epoch = epoch
		return true
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, val: val, epoch: epoch})
	for c.order.Len() > c.cap {
		c.dropLocked(c.order.Back())
	}
	return true
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Keys returns the keys from most to least recently used (tests assert
// eviction order through this).
func (c *lruCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*lruEntry).key)
	}
	return keys
}
