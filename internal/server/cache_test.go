package server

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRUCache(3)
	c.Add("a", []byte("A"))
	c.Add("b", []byte("B"))
	c.Add("c", []byte("C"))
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"c", "b", "a"}) {
		t.Fatalf("keys after fill: %v", got)
	}

	// A Get refreshes recency: "a" moves to the front, so the next insert
	// evicts "b", the least recently used.
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Add("d", []byte("D"))
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"d", "a", "c"}) {
		t.Fatalf("keys after eviction: %v (want [d a c])", got)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("evicted entry b still present")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}

	// Re-adding an existing key refreshes value and recency, no eviction.
	c.Add("c", []byte("C2"))
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"c", "d", "a"}) {
		t.Fatalf("keys after re-add: %v", got)
	}
	if v, _ := c.Get("c"); string(v) != "C2" {
		t.Fatalf("re-added value = %q", v)
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	c := newLRUCache(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (w*7+i)%32)
				c.Add(key, []byte(key))
				if v, ok := c.Get(key); ok && string(v) != key {
					t.Errorf("got %q for key %q", v, key)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}

func TestSingleflightSequentialNotShared(t *testing.T) {
	var g flightGroup
	calls := 0
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do("k", func() ([]byte, error) {
			calls++
			return []byte("v"), nil
		})
		if err != nil || shared || string(v) != "v" {
			t.Fatalf("Do #%d = %q, shared=%v, err=%v", i, v, shared, err)
		}
	}
	if calls != 3 {
		// Sequential calls must each execute: singleflight coalesces only
		// concurrent duplicates, it is not a cache.
		t.Fatalf("sequential calls executed %d times, want 3", calls)
	}
}
