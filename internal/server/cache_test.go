package server

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRUCache(3)
	c.Add("a", []byte("A"), 0)
	c.Add("b", []byte("B"), 0)
	c.Add("c", []byte("C"), 0)
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"c", "b", "a"}) {
		t.Fatalf("keys after fill: %v", got)
	}

	// A Get refreshes recency: "a" moves to the front, so the next insert
	// evicts "b", the least recently used.
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Add("d", []byte("D"), 0)
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"d", "a", "c"}) {
		t.Fatalf("keys after eviction: %v (want [d a c])", got)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("evicted entry b still present")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}

	// Re-adding an existing key refreshes value and recency, no eviction.
	c.Add("c", []byte("C2"), 0)
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"c", "d", "a"}) {
		t.Fatalf("keys after re-add: %v", got)
	}
	if v, _ := c.Get("c"); string(v) != "C2" {
		t.Fatalf("re-added value = %q", v)
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	c := newLRUCache(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (w*7+i)%32)
				c.Add(key, []byte(key), 0)
				if v, ok := c.Get(key); ok && string(v) != key {
					t.Errorf("got %q for key %q", v, key)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}

func TestLRUFlushRejectsStaleEpochInsert(t *testing.T) {
	c := newLRUCache(8)
	e0 := c.Epoch()
	c.Add("k", []byte("old"), e0)

	// The flush wipes and raises the epoch.
	e1 := c.FlushTo(0)
	if e1 <= e0 {
		t.Fatalf("FlushTo did not raise the epoch: %d -> %d", e0, e1)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived a flush")
	}

	// An in-flight computation that snapshotted the pre-flush epoch must
	// not repopulate the cache: its bytes may predate the algorithm change
	// the flush announced.
	if c.Add("k", []byte("stale"), e0) {
		t.Fatal("Add accepted a stale-epoch insert after flush")
	}
	if v, ok := c.Get("k"); ok {
		t.Fatalf("stale insert is being served: %q", v)
	}
	if !c.Add("k", []byte("fresh"), e1) {
		t.Fatal("Add rejected a current-epoch insert")
	}
	if v, _ := c.Get("k"); string(v) != "fresh" {
		t.Fatalf("post-flush value = %q, want fresh", v)
	}

	// FlushTo converges to a higher fleet epoch verbatim.
	if e := c.FlushTo(e1 + 10); e != e1+10 {
		t.Fatalf("FlushTo(%d) = %d", e1+10, e)
	}
}

// TestLRUFlushInsertRace drives concurrent flushes against inserts under
// -race: at every point the cache may only serve bytes recorded under its
// current epoch.
func TestLRUFlushInsertRace(t *testing.T) {
	c := newLRUCache(32)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.FlushTo(0)
		}
		close(stop)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d", (w*5+i)%16)
				e := c.Epoch()
				want := fmt.Sprintf("%s@%d", key, e)
				c.Add(key, []byte(want), e)
				if v, ok := c.Get(key); ok {
					// Whatever is served must carry the epoch it was
					// inserted under — never bytes from before a flush.
					if got := string(v); got != want && c.Epoch() == e {
						t.Errorf("epoch %d served %q, want %q", e, got, want)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestSingleflightSequentialNotShared(t *testing.T) {
	var g flightGroup
	calls := 0
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do("k", func() ([]byte, error) {
			calls++
			return []byte("v"), nil
		})
		if err != nil || shared || string(v) != "v" {
			t.Fatalf("Do #%d = %q, shared=%v, err=%v", i, v, shared, err)
		}
	}
	if calls != 3 {
		// Sequential calls must each execute: singleflight coalesces only
		// concurrent duplicates, it is not a cache.
		t.Fatalf("sequential calls executed %d times, want 3", calls)
	}
}
