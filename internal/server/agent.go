package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// The node-lifecycle wire protocol between a gpserved worker and the
// gpcoordd coordinator. The types live here (not in internal/cluster) so
// the dependency stays one-way: cluster imports server for them, never the
// reverse.

// RegisterRequest is the body of POST /v1/nodes/register: a worker
// announcing itself (or re-announcing after a coordinator restart).
type RegisterRequest struct {
	// ID is the worker's stable identity; re-registering an existing ID
	// updates its endpoint and capacity and resets it to ready.
	ID string `json:"id"`
	// Endpoint is the base URL other nodes reach this worker at.
	Endpoint string `json:"endpoint"`
	// Capacity is the worker's scheduling-goroutine count, exported for
	// observability and future load-aware placement.
	Capacity int `json:"capacity"`
	// AlgoVersion is the worker's complete algorithm identity (version
	// plus option suffixes). The coordinator refuses to mix fragments from
	// different versions within one sweep job and uses it to attribute
	// shadow-verify divergence.
	AlgoVersion string `json:"algo_version,omitempty"`
	// SchemaVersion is the worker's wire-codec identity (the SchemaVersion
	// constant of its build). The coordinator refuses registrations whose
	// schema differs from the fleet's: mixed codecs could relay bodies a
	// client of the other generation cannot parse. Empty is legal (a
	// pre-schema worker) and accepted for compatibility.
	SchemaVersion string `json:"schema_version,omitempty"`
	// Epoch is the worker's cache epoch at registration.
	Epoch uint64 `json:"epoch,omitempty"`
}

// RegisterResponse acknowledges a registration and tells the worker how
// often the coordinator expects heartbeats and which cache epoch the
// fleet is at (a worker joining after a flush converges immediately).
type RegisterResponse struct {
	HeartbeatMillis int    `json:"heartbeat_millis"`
	Epoch           uint64 `json:"epoch,omitempty"`
}

// HeartbeatRequest is the body of POST /v1/nodes/heartbeat and
// /v1/nodes/deregister.
type HeartbeatRequest struct {
	ID string `json:"id"`
	// AlgoVersion and Epoch piggyback the worker's current identity on
	// every heartbeat, so the coordinator's registry tracks them live.
	AlgoVersion string `json:"algo_version,omitempty"`
	// SchemaVersion piggybacks the worker's wire-codec identity (see
	// RegisterRequest.SchemaVersion).
	SchemaVersion string `json:"schema_version,omitempty"`
	Epoch         uint64 `json:"epoch,omitempty"`
	// Load, when present, reports the worker's live load signals; the
	// coordinator surfaces them on GET /v1/fleet/nodes and feeds them into
	// the /v1/fleet/advice verdict.
	Load *LoadReport `json:"load,omitempty"`
}

// LoadReport is a worker's live load signal, piggybacked on heartbeats.
type LoadReport struct {
	// Inflight is the number of requests the worker is serving right now.
	Inflight int64 `json:"inflight"`
	// Shed is the worker's cumulative 429 count.
	Shed int64 `json:"shed"`
	// P99Micros is the rolling p99 latency of served requests.
	P99Micros float64 `json:"p99_micros"`
}

// HeartbeatResponse carries the fleet cache epoch back on every beat: a
// worker that missed the flush fan-out (restarting, partitioned) catches
// up within one heartbeat interval.
type HeartbeatResponse struct {
	Epoch uint64 `json:"epoch,omitempty"`
}

// FlushRequest is the body of POST /v1/cache/flush on both daemons. Epoch
// names the fleet epoch to converge to; zero (or an empty body) means
// "bump by one".
type FlushRequest struct {
	Epoch uint64 `json:"epoch,omitempty"`
}

// FlushResponse reports the cache epoch now in force after a flush.
type FlushResponse struct {
	Epoch uint64 `json:"epoch"`
}

// AgentConfig tunes a worker's coordinator-registration agent.
type AgentConfig struct {
	// Coordinator is the gpcoordd base URL, e.g. http://10.0.0.1:8038.
	Coordinator string
	// NodeID is this worker's stable identity.
	NodeID string
	// Endpoint is the advertised base URL of this worker.
	Endpoint string
	// Capacity is the advertised scheduling-goroutine count.
	Capacity int
	// Interval overrides the heartbeat cadence; 0 adopts the coordinator's
	// suggestion from the register response (2s until registered).
	Interval time.Duration
	// AlgoVersion is the worker's advertised algorithm identity
	// (Server.AlgoVersion()). Empty is legal for tests.
	AlgoVersion string
	// SchemaVersion is the advertised wire-codec identity. Empty defaults
	// to the SchemaVersion constant of this build; tests may override.
	SchemaVersion string
	// Load, when set, samples the worker's live load signals for each
	// heartbeat (normally Server.Load).
	Load func() LoadReport
	// Epoch, when set, reports the worker's current cache epoch; it is
	// sent with every register and heartbeat.
	Epoch func() uint64
	// ApplyEpoch, when set, receives the fleet cache epoch whenever the
	// coordinator reports one ahead of ours (normally Server.FlushTo), so
	// a worker that missed a flush converges instead of serving stale
	// bytes forever.
	ApplyEpoch func(epoch uint64)
	// Logger, when set, receives structured agent lifecycle events (node
	// and coordinator identities as fields). Nil drops them.
	Logger *slog.Logger
}

func (c AgentConfig) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 2 * time.Second
}

// Agent keeps a worker registered with its coordinator: an initial
// register (retried until it lands — the coordinator may boot after the
// workers), a periodic heartbeat, re-registration when the coordinator
// forgot us (its restart loses the in-memory registry, so a heartbeat for
// an unknown ID answers 404), and a best-effort deregister on Close so a
// graceful worker shutdown never has to wait out the dead-node detector.
type Agent struct {
	cfg        AgentConfig
	log        *slog.Logger
	client     *http.Client
	cancel     context.CancelFunc
	done       chan struct{}
	registered atomic.Bool
}

// StartAgent launches the registration loop and returns immediately; the
// loop keeps retrying until the coordinator accepts the registration.
func StartAgent(cfg AgentConfig) *Agent {
	if cfg.SchemaVersion == "" {
		cfg.SchemaVersion = SchemaVersion
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	ctx, cancel := context.WithCancel(context.Background())
	a := &Agent{
		cfg:    cfg,
		log:    log.With("node", cfg.NodeID, "coordinator", cfg.Coordinator),
		client: &http.Client{Timeout: 5 * time.Second},
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go a.loop(ctx)
	return a
}

// Registered reports whether the last register/heartbeat round-trip
// succeeded (tests and /healthz handlers poll it).
func (a *Agent) Registered() bool { return a.registered.Load() }

// Close stops the loop and best-effort deregisters from the coordinator.
func (a *Agent) Close() {
	a.cancel()
	<-a.done
	if a.registered.Load() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = a.post(ctx, "/v1/nodes/deregister", HeartbeatRequest{ID: a.cfg.NodeID}, nil)
		a.registered.Store(false)
	}
}

func (a *Agent) loop(ctx context.Context) {
	defer close(a.done)
	interval := a.cfg.interval()
	for {
		if !a.registered.Load() {
			var resp RegisterResponse
			err := a.post(ctx, "/v1/nodes/register", RegisterRequest{
				ID:            a.cfg.NodeID,
				Endpoint:      a.cfg.Endpoint,
				Capacity:      a.cfg.Capacity,
				AlgoVersion:   a.cfg.AlgoVersion,
				SchemaVersion: a.cfg.SchemaVersion,
				Epoch:         a.epoch(),
			}, &resp)
			switch {
			case err == nil:
				a.registered.Store(true)
				if a.cfg.Interval == 0 && resp.HeartbeatMillis > 0 {
					interval = time.Duration(resp.HeartbeatMillis) * time.Millisecond
				}
				a.converge(resp.Epoch)
				a.log.Info("registered with coordinator", "heartbeat", interval.String())
			case ctx.Err() == nil:
				a.log.Warn("register failed, will retry", "err", err.Error())
			}
		} else {
			var resp HeartbeatResponse
			hb := HeartbeatRequest{
				ID:            a.cfg.NodeID,
				AlgoVersion:   a.cfg.AlgoVersion,
				SchemaVersion: a.cfg.SchemaVersion,
				Epoch:         a.epoch(),
			}
			if a.cfg.Load != nil {
				rep := a.cfg.Load()
				hb.Load = &rep
			}
			err := a.post(ctx, "/v1/nodes/heartbeat", hb, &resp)
			var se *statusError
			switch {
			case err == nil:
				a.converge(resp.Epoch)
			case errors.As(err, &se) && (se.code == http.StatusNotFound || se.code == http.StatusGone):
				// The coordinator restarted and lost the registry: fall back
				// to the register path next tick.
				a.registered.Store(false)
				a.log.Warn("coordinator forgot node, re-registering")
			case ctx.Err() == nil:
				a.log.Warn("heartbeat failed", "err", err.Error())
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}

func (a *Agent) epoch() uint64 {
	if a.cfg.Epoch == nil {
		return 0
	}
	return a.cfg.Epoch()
}

// converge pulls the worker's cache epoch up to the fleet's. Only forward:
// the fleet epoch is monotonic, and a zero from an older coordinator (or
// an empty response body) is a no-op.
func (a *Agent) converge(fleet uint64) {
	if a.cfg.ApplyEpoch == nil || fleet == 0 || fleet <= a.epoch() {
		return
	}
	a.cfg.ApplyEpoch(fleet)
	a.log.Info("converged to fleet cache epoch", "epoch", fleet)
}

// post sends a JSON body and decodes a JSON response into out (when
// non-nil). Non-2xx statuses come back as *statusError.
func (a *Agent) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return &statusError{code: resp.StatusCode}
	}
	if out != nil {
		// An empty 2xx body (a 204, or an older coordinator) is "no
		// information", not a protocol error: leave out at its zero value.
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && !errors.Is(err, io.EOF) {
			return err
		}
	}
	return nil
}

type statusError struct{ code int }

func (e *statusError) Error() string { return fmt.Sprintf("coordinator answered HTTP %d", e.code) }
