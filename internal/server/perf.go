package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/ddgio"
	"repro/internal/machine"
	"repro/internal/workload"
)

// PerfOptions tunes MeasureThroughput.
type PerfOptions struct {
	// Requests is the total number of /v1/schedule requests (default 400).
	Requests int
	// Concurrency is the number of client goroutines (default 8).
	Concurrency int
}

func (o PerfOptions) requests() int {
	if o.Requests > 0 {
		return o.Requests
	}
	return 400
}

func (o PerfOptions) concurrency() int {
	if o.Concurrency > 0 {
		return o.Concurrency
	}
	return 8
}

// MeasureThroughput boots a daemon on a loopback listener, drives it with a
// sustained mix of distinct and repeated /v1/schedule requests over real
// HTTP, and returns the throughput snapshot written to BENCH_server.json.
// The request mix cycles through every SPECfp95 loop on the paper's
// 4-cluster machine, so steady state is mostly cache hits with periodic
// cold misses — the service's intended traffic shape.
func MeasureThroughput(cfg Config, opts PerfOptions) (*bench.ServerPerfSnapshot, error) {
	bodies, err := perfRequestBodies()
	if err != nil {
		return nil, err
	}

	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer func() {
		_ = hs.Close()
		srv.Close()
	}()
	base := "http://" + ln.Addr().String()

	total := opts.requests()
	conc := opts.concurrency()
	client := &http.Client{}

	var next atomic.Int64
	var errCount, rejected atomic.Int64
	latencies := make([]time.Duration, total)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/schedule", "application/json", bytes.NewReader(body))
				if err != nil {
					errCount.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected.Add(1)
				case resp.StatusCode != http.StatusOK:
					errCount.Add(1)
				default:
					// Only served responses count toward the latency
					// quantiles; errors and sheds would skew them low.
					latencies[i] = time.Since(t0)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	served := make([]time.Duration, 0, total)
	for _, d := range latencies {
		if d > 0 {
			served = append(served, d)
		}
	}
	sort.Slice(served, func(i, j int) bool { return served[i] < served[j] })
	var p50, p99 time.Duration
	if len(served) > 0 {
		p50 = served[quantileIndex(len(served), 0.50)]
		p99 = served[quantileIndex(len(served), 0.99)]
	}

	// Warm-path comparison: the mix above left every distinct loop cached,
	// so re-driving the same working set measures pure serving overhead —
	// verbatim singletons ride the body-hash fast path, batches amortize
	// the round-trips. One sequential client for both, so the comparison
	// is per-loop service cost, not client parallelism.
	singleWarm, err := measureWarm(client, base+"/v1/schedule", bodies)
	if err != nil {
		return nil, err
	}
	batches, batchLoops, err := perfBatchBodies()
	if err != nil {
		return nil, err
	}
	batchWarm, err := measureWarm(client, base+"/v1/schedule/batch", batches)
	if err != nil {
		return nil, err
	}

	snap := &bench.ServerPerfSnapshot{
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		Requests:       total,
		UniqueRequests: len(bodies),
		Concurrency:    conc,
		Errors:         int(errCount.Load()),
		Rejected:       int(rejected.Load()),
		DurationSec:    elapsed.Seconds(),
		RequestsPerSec: float64(total) / elapsed.Seconds(),
		CacheHitRate:   srv.metrics.hitRate(),
		P50Micros:      float64(p50) / float64(time.Microsecond),
		P99Micros:      float64(p99) / float64(time.Microsecond),
		BatchLoops:     batchLoops,
	}
	nLoops := warmPasses * len(bodies)
	if s := singleWarm.Seconds(); s > 0 {
		snap.SingletonWarmPerSec = float64(nLoops) / s
	}
	if s := batchWarm.Seconds(); s > 0 {
		snap.BatchLoopsPerSec = float64(warmPasses*batchLoops) / s
	}
	if snap.SingletonWarmPerSec > 0 {
		snap.BatchSpeedup = snap.BatchLoopsPerSec / snap.SingletonWarmPerSec
	}
	return snap, nil
}

// warmPasses is how many times the warm-path comparison re-drives the full
// working set through each endpoint.
const warmPasses = 3

// measureWarm posts every body sequentially warmPasses times and returns the
// wall-clock total, after one untimed priming pass so both endpoints'
// verbatim fast paths are hot before the clock starts. Every response must
// be a 200: the working set is already cached, so sheds or errors would mean
// the comparison is not measuring the warm path.
func measureWarm(client *http.Client, url string, bodies [][]byte) (time.Duration, error) {
	var start time.Time
	for p := -1; p < warmPasses; p++ {
		if p == 0 {
			start = time.Now()
		}
		for _, body := range bodies {
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				return 0, err
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return 0, fmt.Errorf("warm %s: status %d", url, resp.StatusCode)
			}
		}
	}
	return time.Since(start), nil
}

// perfBatchBodies packs the singleton working set's loops into
// /v1/schedule/batch envelopes (same machine, same scheme, chunked under the
// batch admission caps) and returns the envelopes plus the total loop count.
// Batch and singleton requests content-address identically, so these ride
// the cache entries the singleton mix already filled.
func perfBatchBodies() ([][]byte, int, error) {
	const perBatch = 32
	m4 := machine.MustClustered(4, 64, 1, 1)
	var loops []BatchLoop
	for _, bm := range workload.SPECfp95() {
		for _, l := range bm.Loops {
			var text bytes.Buffer
			if err := ddgio.Write(&text, l.G); err != nil {
				return nil, 0, err
			}
			loops = append(loops, BatchLoop{LoopText: text.String()})
		}
	}
	var bodies [][]byte
	for i := 0; i < len(loops); i += perBatch {
		end := i + perBatch
		if end > len(loops) {
			end = len(loops)
		}
		body, err := json.Marshal(&BatchRequest{
			Machine: m4,
			Scheme:  "GP",
			Loops:   loops[i:end],
		})
		if err != nil {
			return nil, 0, err
		}
		bodies = append(bodies, body)
	}
	return bodies, len(loops), nil
}

// PerfRequestBodies returns the throughput benchmark's distinct-request
// working set (one /v1/schedule body per SPECfp95 loop). The cluster
// throughput measurement drives gpcoordd with the same mix so
// BENCH_cluster.json and BENCH_server.json are directly comparable.
func PerfRequestBodies() ([][]byte, error) { return perfRequestBodies() }

// perfRequestBodies builds one request body per SPECfp95 loop (the paper's
// 4-cluster machine as a typed description — machine.Config.MarshalText
// puts it on the wire — GP scheme), the distinct-request working set of
// the benchmark.
func perfRequestBodies() ([][]byte, error) {
	m4 := machine.MustClustered(4, 64, 1, 1)
	var bodies [][]byte
	for _, bm := range workload.SPECfp95() {
		for _, l := range bm.Loops {
			var text bytes.Buffer
			if err := ddgio.Write(&text, l.G); err != nil {
				return nil, err
			}
			body, err := json.Marshal(&ScheduleRequest{
				LoopText: text.String(),
				Machine:  m4,
				Scheme:   "GP",
			})
			if err != nil {
				return nil, err
			}
			bodies = append(bodies, body)
		}
	}
	if len(bodies) == 0 {
		return nil, fmt.Errorf("server: empty SPECfp95 corpus")
	}
	return bodies, nil
}

// quantileIndex is the index of the q-quantile in a sorted n-sample slice.
func quantileIndex(n int, q float64) int {
	i := int(q * float64(n-1))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}
