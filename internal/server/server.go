package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/schedule"
)

// Config tunes the daemon. The zero value picks the defaults below.
type Config struct {
	// Workers is the number of scheduling goroutines (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of admitted-but-not-started jobs
	// (default 64). A full queue sheds load with 429.
	QueueDepth int
	// CacheEntries is the LRU result-cache capacity (default 1024).
	CacheEntries int
	// MaxBodyBytes caps a request body (default 8 MiB).
	MaxBodyBytes int64
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// NodeID, when set, is stamped on every response as the X-Node header
	// so a cluster coordinator (and its clients) can observe which worker
	// actually served a proxied request.
	NodeID string
	// AlgoVersion overrides the compiled-in schedule.AlgoVersion this
	// daemon advertises and salts its cache keys with. Tests and canary
	// deploys use it; production builds leave it empty.
	AlgoVersion string
	// BalanceBestFit turns on the best-fit partition balancing variant.
	// It changes schedule bytes, so it is folded into the advertised
	// algorithm version (and through it into every cache key) — two
	// workers differing only in this flag must never share cache entries.
	BalanceBestFit bool
	// Portfolio is the default number of seeded partition starts raced per
	// request (core.Options.Portfolio); 0 or 1 keeps the sequential path.
	// Like BalanceBestFit it can change schedule bytes, so K>1 is folded
	// into the advertised algorithm version. Requests may override it with
	// their own portfolio field.
	Portfolio int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) cacheEntries() int {
	if c.CacheEntries > 0 {
		return c.CacheEntries
	}
	return 1024
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 8 << 20
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return time.Second
}

// algoVersion is the complete algorithm identity this daemon advertises:
// the base version plus a suffix for every output-affecting option, so
// any configuration that can change schedule bytes is visible in the
// version string and distinct in the cache keyspace.
func (c Config) algoVersion() string {
	v := c.AlgoVersion
	if v == "" {
		v = schedule.AlgoVersion
	}
	if c.BalanceBestFit {
		v += "+bestfit"
	}
	if c.Portfolio > 1 {
		v += "+p" + strconv.Itoa(c.Portfolio)
	}
	return v
}

// Server is the gpserved HTTP daemon. Create with New, serve its Handler,
// and Close it after the HTTP server has shut down (Close drains the
// worker pool).
type Server struct {
	cfg      Config
	algo     string // complete advertised algorithm identity, from cfg.algoVersion()
	cache    *lruCache
	machines *machineCache
	flight   flightGroup
	pool     *workerPool
	metrics  metrics
	traces   *obs.Ring
	mux      *http.ServeMux

	// computeHook, when set, observes every actual schedule computation
	// (cache misses that reached a worker). Tests use it to prove
	// singleflight coalescing.
	computeHook func(key string)
}

// New returns a ready-to-serve daemon.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		algo:     cfg.algoVersion(),
		cache:    newLRUCache(cfg.cacheEntries()),
		machines: newMachineCache(),
		pool:     newWorkerPool(cfg.workers(), cfg.queueDepth()),
		traces:   obs.NewRing(traceRingSize),
		mux:      http.NewServeMux(),
	}
	s.metrics.init()
	s.mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /v1/schedule/batch", s.handleScheduleBatch)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/cache/flush", s.handleCacheFlush)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/debug/traces", s.handleDebugTraces)
	s.mux.HandleFunc("GET /v1/debug/traces/{id}", s.handleDebugTrace)
	return s
}

// traceRingSize bounds the per-daemon buffer of recent request traces
// served by /v1/debug/traces.
const traceRingSize = 128

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP dispatches to the daemon's endpoints. Every response carries
// the worker's algorithm identity and cache epoch so clients — above all
// the coordinator's shadow verifier — can attribute any byte divergence to
// a specific scheduler generation.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	// Resolve the request ID: keep a propagated one (the coordinator is the
	// edge), mint otherwise (this worker is). Handlers read it back off
	// r.Header; every response echoes it.
	id, _ := obs.RequestID(r)
	w.Header().Set(obs.RequestIDHeader, id)
	if s.cfg.NodeID != "" {
		w.Header().Set("X-Node", s.cfg.NodeID)
	}
	w.Header().Set("X-Algo-Version", s.algo)
	w.Header().Set("X-Algo-Epoch", strconv.FormatUint(s.cache.Epoch(), 10))
	w.Header().Set("X-Schema-Version", SchemaVersion)
	s.mux.ServeHTTP(w, r)
}

// Close drains the worker pool: queued work finishes, later submissions
// get 503. Normally called after the HTTP server has shut down, but safe
// against stragglers either way.
func (s *Server) Close() { s.pool.Close() }

// Metrics returns a point-in-time snapshot of selected counters (used by
// the throughput benchmark and tests).
func (s *Server) Metrics() (cacheHits, cacheMisses, coalesced, rejected int64) {
	return s.metrics.cacheHits.Load(), s.metrics.cacheMisses.Load(),
		s.metrics.coalesced.Load(), s.metrics.rejected.Load()
}

// AlgoVersion returns the complete algorithm identity this daemon
// advertises (compiled-in version plus option suffixes).
func (s *Server) AlgoVersion() string { return s.algo }

// Load returns the daemon's live load signals: requests currently in
// flight, the cumulative shed (429) count, and the rolling p99 latency.
// The agent reports them to the coordinator on every heartbeat, feeding
// the /v1/fleet/advice scaling verdict.
func (s *Server) Load() LoadReport {
	_, p99 := s.metrics.quantiles()
	return LoadReport{
		Inflight:  s.metrics.inflight.Load(),
		Shed:      s.metrics.rejected.Load(),
		P99Micros: float64(p99) / float64(time.Microsecond),
	}
}

// Epoch returns the daemon's current cache epoch.
func (s *Server) Epoch() uint64 { return s.cache.Epoch() }

// FlushTo wipes the result cache and raises the epoch to at least target
// (a lower or zero target still bumps by one). The coordinator's agent
// calls it when the fleet epoch moves; the /v1/cache/flush endpoint is the
// same operation over HTTP.
func (s *Server) FlushTo(target uint64) uint64 {
	e := s.cache.FlushTo(target)
	s.metrics.cacheFlushes.Add(1)
	return e
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.render(w, s.pool.QueueDepth(), s.cache.Len(), s.cache.Epoch())
}

// handleDebugTraces is GET /v1/debug/traces: the most recent request
// traces, newest first. Debug surface only — never part of a cached body.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.traces.Recent(64))
}

// handleDebugTrace is GET /v1/debug/traces/{id}: one trace by request ID,
// if it is still in the ring.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	t, ok := s.traces.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, ErrCodeBadRequest, "no trace for request id %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&t)
}

// finishTrace stamps the trace's outcome, exposes its phases in the
// X-Phase-Timing response header (Server-Timing syntax; strictly outside
// the body, so cached bytes are untouched), and publishes it to the ring.
// Must run before the response body is written.
func (s *Server) finishTrace(w http.ResponseWriter, tr *obs.Trace, outcome string) {
	if tr == nil {
		return
	}
	tr.SetOutcome(outcome)
	if st := tr.ServerTiming(); st != "" {
		w.Header().Set("X-Phase-Timing", st)
	}
	s.traces.Publish(tr)
}

// readBody reads at most MaxBodyBytes of the request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// bodyPool recycles request-body read buffers across requests (part of the
// request-arena discipline: the schedule hot path should not pay a growing
// buffer per request).
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readBodyPooled is readBody on pooled storage. The returned release func
// recycles the backing array; the caller must not retain the bytes past it.
// That holds on the schedule paths: parsing copies everything it keeps (JSON
// decoding allocates fresh strings), cache entries store response bytes, and
// the alias index stores only a hash.
func (s *Server) readBodyPooled(w http.ResponseWriter, r *http.Request) ([]byte, func(), error) {
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	release := func() { bodyPool.Put(buf) }
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())); err != nil {
		release()
		return nil, nil, err
	}
	return buf.Bytes(), release, nil
}

// writeError renders the unified error envelope
// {"error": {"code", "message", "retryable"}}. code is one of the ErrCode
// constants; retryable derives from it.
func (s *Server) writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	if status == http.StatusBadRequest {
		s.metrics.badRequests.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(MarshalError(code, fmt.Sprintf(format, args...)))
	_, _ = w.Write([]byte("\n"))
}

// handleCacheFlush is POST /v1/cache/flush: wipe the result cache and
// raise the cache epoch. The body is an optional JSON FlushRequest naming
// the fleet epoch to converge to; an empty body (or a lower epoch) is a
// plain local flush that bumps by one. The response reports the epoch now
// in force.
func (s *Server) handleCacheFlush(w http.ResponseWriter, r *http.Request) {
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "read body: %v", err)
		return
	}
	var req FlushRequest
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad request body: %v", err)
			return
		}
	}
	epoch := s.FlushTo(req.Epoch)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Algo-Epoch", strconv.FormatUint(epoch, 10)) // ServeHTTP stamped the pre-flush epoch
	_ = json.NewEncoder(w).Encode(FlushResponse{Epoch: epoch})
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	s.metrics.scheduleReqs.Add(1)
	start := time.Now()
	tr := obs.AcquireTrace(r.Header.Get(obs.RequestIDHeader), "schedule")
	tr.SetNode(s.cfg.NodeID)

	body, release, err := s.readBodyPooled(w, r)
	if err != nil {
		s.finishTrace(w, tr, "bad-request")
		s.writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "read body: %v", err)
		return
	}
	defer release()

	// Parse-free fast path: a verbatim repeat of a previously served body
	// is answered from the body-hash alias index with zero schedule-side
	// allocations — one sha256 over the bytes, one map probe, write.
	lookup := time.Now()
	bodyHash := sha256.Sum256(body)
	if cached, ok := s.cache.GetByBody(bodyHash); ok {
		s.metrics.cacheHits.Add(1)
		s.metrics.bodyHits.Add(1)
		tr.PhaseNote("cache-lookup", "body-hit", time.Since(lookup))
		s.finishTrace(w, tr, "hit")
		s.writeScheduleBody(w, cached, "hit")
		s.metrics.schedHit.Observe(time.Since(start))
		return
	}

	parse := time.Now()
	job, err := parseScheduleRequestCached(body, s.machines)
	if err != nil {
		s.finishTrace(w, tr, "bad-request")
		s.writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	tr.PhaseNote("machine-parse", "machine-cache="+job.mcState, time.Since(parse))
	if job.mcState != "" {
		// Only machine-description requests touch the parsed-machine
		// cache; grid requests construct their config directly.
		w.Header().Set("X-Machine-Cache", job.mcState)
		if job.mcState == "hit" {
			s.metrics.machineCacheHits.Add(1)
		} else {
			s.metrics.machineCacheMisses.Add(1)
		}
	}
	// Snapshot the epoch once: the key is salted with it, and the same
	// value travels to cache.Add, so a flush that lands mid-computation
	// invalidates this request's insert instead of being overwritten.
	epoch := s.cache.Epoch()
	key := job.cacheKey(keySalt(s.algo, epoch))

	lookup = time.Now()
	if cached, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		s.cache.LinkBody(key, bodyHash)
		tr.PhaseNote("cache-lookup", "key-hit", time.Since(lookup))
		s.finishTrace(w, tr, "hit")
		s.writeScheduleBody(w, cached, "hit")
		s.metrics.schedHit.Observe(time.Since(start))
		return
	}
	s.metrics.cacheMisses.Add(1)
	tr.PhaseNote("cache-lookup", "miss", time.Since(lookup))

	// Coalesce concurrent identical requests: one leader computes on the
	// pool, followers share its bytes without occupying a worker slot. The
	// leader waits with a detached context: a compute is short, its result
	// is cached for everyone, and tying the wait to the leader's request
	// context would turn one client's disconnect into spurious
	// context-canceled errors for every coalesced follower. The closure
	// runs on the leader's goroutine, so the leader's trace records the
	// queue wait and compute phases; followers record only the fold.
	flightStart := time.Now()
	resp, shared, err := s.flight.Do(key, func() ([]byte, error) {
		queued := time.Now()
		var out []byte
		var computeErr error
		poolErr := s.pool.Do(context.Background(), func() {
			tr.Phase("queue-wait", time.Since(queued))
			out, computeErr = s.compute(key, job, epoch, tr)
		})
		if poolErr != nil {
			return nil, poolErr
		}
		return out, computeErr
	})
	if shared {
		s.metrics.coalesced.Add(1)
		tr.PhaseNote("coalesced-wait", "folded into in-flight twin", time.Since(flightStart))
	}
	var cerr *clientError
	switch {
	case errors.Is(err, ErrSaturated):
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.retryAfter().Round(time.Second)/time.Second)))
		s.finishTrace(w, tr, "shed")
		s.writeError(w, http.StatusTooManyRequests, ErrCodeSaturated, "scheduling queue is full, retry later")
		return
	case errors.Is(err, ErrClosed):
		s.finishTrace(w, tr, "shutting-down")
		s.writeError(w, http.StatusServiceUnavailable, ErrCodeShuttingDown, "server is shutting down")
		return
	case errors.As(err, &cerr):
		s.finishTrace(w, tr, "bad-request")
		s.writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", cerr)
		return
	case err != nil:
		s.finishTrace(w, tr, "error")
		s.writeError(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	s.cache.LinkBody(key, bodyHash)
	s.finishTrace(w, tr, "miss")
	s.writeScheduleBody(w, resp, "miss")
	s.metrics.schedMiss.Observe(time.Since(start))
}

func (s *Server) writeScheduleBody(w http.ResponseWriter, body []byte, xcache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", xcache)
	_, _ = w.Write(body)
}

// encBufPool recycles response-encoding buffers: the encoder's growth
// reallocs are paid once per pool entry instead of once per compute; the
// cached body is a single exact-size copy out of the pooled buffer.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// compute schedules the job, Verify-checks the result, marshals the
// deterministic response body and inserts it into the cache under the
// epoch the request was keyed with (a flush in between rejects the
// insert). It runs on a pool worker; tr (nil-safe) collects the scheduler
// phase spans.
func (s *Server) compute(key string, job *scheduleJob, epoch uint64, tr *obs.Trace) ([]byte, error) {
	if s.computeHook != nil {
		s.computeHook(key)
	}
	// The expensive half of admission, deliberately behind backpressure.
	adm := time.Now()
	if err := job.admissionCheck(); err != nil {
		return nil, err
	}
	tr.Phase("admission", time.Since(adm))
	// The partitioner runs out of a pooled arena: across requests the
	// coarsening levels, engine state and work lists reuse their capacity.
	// The portfolio path acquires its own arena per racer and ignores this
	// one (see core.Options.Arena).
	ar := partition.AcquireArena()
	defer ar.Release()
	k := job.portfolio
	if k == 0 {
		k = s.cfg.Portfolio
	}
	opts := &core.Options{Algorithm: job.alg, Portfolio: k, Arena: ar}
	if s.cfg.BalanceBestFit {
		opts.Partition = &partition.Options{BalanceBestFit: true}
	}
	res, err := core.ScheduleLoop(job.g, job.m, opts)
	if err != nil {
		return nil, fmt.Errorf("schedule: %v", err)
	}
	tr.Phase("mii", res.MIIDur)
	tr.PhaseNote("partition",
		fmt.Sprintf("partitions=%d moves=%d screen=%d/%d/%d",
			res.Partitions, res.RefineMoves, res.ScreenLowerBound, res.ScreenExact, res.ScreenFull),
		res.PartitionDur)
	tr.PhaseNote("schedule",
		fmt.Sprintf("attempts=%d ii=%d seed=%d", res.Attempts, res.Schedule.II, res.PortfolioSeed),
		res.ScheduleDur)
	s.metrics.refineMoves.Add(res.RefineMoves)
	s.metrics.screenLB.Add(res.ScreenLowerBound)
	s.metrics.screenExact.Add(res.ScreenExact)
	s.metrics.screenFull.Add(res.ScreenFull)
	// The oracle gate: nothing unverified is ever served or cached.
	ver := time.Now()
	if err := schedule.Verify(job.g, job.m, res.Schedule); err != nil {
		s.metrics.verifyFailures.Add(1)
		return nil, fmt.Errorf("schedule failed verification: %v", err)
	}
	tr.Phase("verify", time.Since(ver))
	if k > 1 && res.PortfolioSeed >= 0 && res.PortfolioSeed < len(s.metrics.portfolioWins) {
		s.metrics.portfolioWins[res.PortfolioSeed].Add(1)
		s.metrics.portfolioWinSec.With(fmt.Sprintf("seed=%q", strconv.Itoa(res.PortfolioSeed))).Observe(res.Elapsed)
	}
	encT := time.Now()
	buf := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(buf)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(buildResponse(job, res)); err != nil {
		return nil, err
	}
	body := append(make([]byte, 0, buf.Len()), buf.Bytes()...)
	s.cache.Add(key, body, epoch)
	tr.Phase("encode", time.Since(encT))
	return body, nil
}

// SweepRequest is the body of POST /v1/sweep. Empty Machines means the
// built-in machine.SweepSet; empty Corpora means both workload families.
type SweepRequest struct {
	// Machines are machine-description texts on the wire (JSON strings,
	// machine.Parse format); decoding parses and validates each via
	// machine.Config's TextUnmarshaler.
	Machines []machine.Config `json:"machines,omitempty"`
	// Corpora picks workload families by name: "SPECfp95", "DSP".
	Corpora []string `json:"corpora,omitempty"`
	// MaxLoops > 0 trims every benchmark to its first MaxLoops loops.
	MaxLoops int `json:"max_loops,omitempty"`
	// Verify runs the schedule.Verify oracle on every produced schedule.
	Verify bool `json:"verify,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.metrics.sweepReqs.Add(1)
	start := time.Now()
	tr := obs.AcquireTrace(r.Header.Get(obs.RequestIDHeader), "sweep")
	tr.SetNode(s.cfg.NodeID)

	body, err := s.readBody(w, r)
	if err != nil {
		s.finishTrace(w, tr, "bad-request")
		s.writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "read body: %v", err)
		return
	}
	var req SweepRequest
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad request body: %v", err)
			return
		}
	}
	machines, corpora, err := resolveSweep(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}

	// A sweep is one long-running unit of work: it takes a single pool slot
	// so schedule traffic and sweeps share the same admission control. The
	// handler waits for the task with a detached context — the task writes
	// to w, so it must never outlive this handler (net/http recycles the
	// ResponseWriter once the handler returns). A disconnected client
	// cancels r.Context(), which aborts the sweep itself promptly.
	flusher, _ := w.(http.Flusher)
	cw := &countingWriter{w: w}
	var streamErr error
	queued := time.Now()
	poolErr := s.pool.Do(context.Background(), func() {
		tr.Phase("queue-wait", time.Since(queued))
		// Streaming starts now, so only the phases recorded so far can make
		// the header; the stream phase itself lands in the published trace.
		if st := tr.ServerTiming(); st != "" {
			w.Header().Set("X-Phase-Timing", st)
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		streamStart := time.Now()
		defer func() { tr.Phase("stream", time.Since(streamStart)) }()
		if streamErr = bench.WriteSweepHeader(cw); streamErr != nil {
			return
		}
		cfg := bench.Config{Verify: req.Verify, Parallel: 1}
		streamErr = bench.SweepStream(r.Context(), machines, corpora, cfg, func(pt bench.SweepPoint) error {
			if err := bench.WriteSweepPointCSV(cw, pt); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
	})
	outcome := "ok"
	switch {
	case errors.Is(poolErr, ErrSaturated):
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.retryAfter().Round(time.Second)/time.Second)))
		s.writeError(w, http.StatusTooManyRequests, ErrCodeSaturated, "scheduling queue is full, retry later")
		outcome = "shed"
	case errors.Is(poolErr, ErrClosed):
		s.writeError(w, http.StatusServiceUnavailable, ErrCodeShuttingDown, "server is shutting down")
		outcome = "shutting-down"
	case streamErr != nil && cw.n == 0:
		// Nothing streamed yet: the status code is still ours to set.
		s.writeError(w, http.StatusInternalServerError, ErrCodeInternal, "sweep: %v", streamErr)
		outcome = "error"
	case streamErr != nil:
		// The 200 and part of the CSV are already on the wire; mark the
		// truncation in-band so clients can tell it from a complete sweep.
		fmt.Fprintf(w, "ERROR,%q,,,,,\n", streamErr.Error())
		outcome = "truncated"
	}
	tr.SetOutcome(outcome)
	s.traces.Publish(tr)
	s.metrics.sweepDur.Observe(time.Since(start))
}

// maxSweepMachines bounds a sweep request's machine list (a sweep runs one
// full four-scheme panel per machine × corpus cell).
const maxSweepMachines = 32

// countingWriter tracks whether any response bytes were written, i.e.
// whether the status code is already committed.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ResolveSweep materializes a sweep request's machine and corpus lists with
// the daemon's defaults and limits applied (empty machines → the built-in
// sweep set, empty corpora → both families, every machine validated and
// size-bounded). Exported for the cluster coordinator, which enumerates the
// same cross-product to shard a job cell-by-cell across the fleet.
func ResolveSweep(req *SweepRequest) ([]*machine.Config, []bench.Corpus, error) {
	return resolveSweep(req)
}

// resolveSweep materializes the request's machine and corpus lists.
func resolveSweep(req *SweepRequest) ([]*machine.Config, []bench.Corpus, error) {
	var machines []*machine.Config
	if len(req.Machines) == 0 {
		machines = machine.SweepSet()
	} else {
		if len(req.Machines) > maxSweepMachines {
			return nil, nil, fmt.Errorf("%d machines, limit %d", len(req.Machines), maxSweepMachines)
		}
		for i := range req.Machines {
			if err := checkServedMachine(&req.Machines[i]); err != nil {
				return nil, nil, fmt.Errorf("machines[%d]: %v", i, err)
			}
			machines = append(machines, &req.Machines[i])
		}
	}
	if req.MaxLoops < 0 {
		return nil, nil, fmt.Errorf("max_loops %d < 0", req.MaxLoops)
	}

	all := bench.SweepCorpora(req.MaxLoops)
	if len(req.Corpora) == 0 {
		return machines, all, nil
	}
	var corpora []bench.Corpus
	for _, name := range req.Corpora {
		found := false
		for _, c := range all {
			if strings.EqualFold(c.Name, name) {
				corpora = append(corpora, c)
				found = true
				break
			}
		}
		if !found {
			return nil, nil, fmt.Errorf("unknown corpus %q (want SPECfp95 or DSP)", name)
		}
	}
	return machines, corpora, nil
}
