package server

import (
	"bytes"
	"testing"

	"repro/internal/schedule"
)

// FuzzScheduleRequest fuzzes the /v1/schedule JSON decoder: arbitrary bytes
// must never panic, and any body it accepts must yield a validated graph
// and machine with a deterministic cache key (the content address the whole
// caching story hangs on).
func FuzzScheduleRequest(f *testing.F) {
	f.Add([]byte(`{"loop_text":"loop t 10\nnode 0 IntALU\n","clusters":2}`))
	f.Add([]byte(`{"loop":{"name":"x","niter":5,"nodes":[{"op":"Load"},{"op":"IntALU"}],"edges":[{"from":0,"to":1,"lat":2}]},"clusters":4,"regs":64}`))
	f.Add([]byte(`{"loop":{"name":"h","niter":1,"nodes":[{"op":"FPMul"}]},"machine":"machine m\ncluster 1 1 1 8\n","scheme":"URACAM"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{{{`))
	f.Add([]byte(`{"loop_text":"loop t 10\nnode 0 Store\nedge 0 0 1 1 data\n","clusters":2}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		job, err := parseScheduleRequest(data)
		if err != nil {
			return
		}
		// Accepted requests are fully validated and deterministically keyed.
		if err := job.g.Validate(); err != nil {
			t.Fatalf("accepted an invalid graph: %v", err)
		}
		if err := job.m.Validate(); err != nil {
			t.Fatalf("accepted an invalid machine: %v", err)
		}
		salt := keySalt(schedule.AlgoVersion, 0)
		k1 := job.cacheKey(salt)
		job2, err := parseScheduleRequest(data)
		if err != nil {
			t.Fatalf("second parse of accepted body failed: %v", err)
		}
		if k2 := job2.cacheKey(salt); k1 != k2 {
			t.Fatalf("cache key not deterministic: %s vs %s", k1, k2)
		}
		if bytes.ContainsAny([]byte(k1), " \n") || len(k1) != 64 {
			t.Fatalf("malformed cache key %q", k1)
		}
		// The salt is load-bearing: a different algorithm version or a
		// different epoch must move the key, and deterministically so.
		for _, other := range []string{
			keySalt(schedule.AlgoVersion+"+bestfit", 0),
			keySalt(schedule.AlgoVersion, 1),
		} {
			ko := job.cacheKey(other)
			if ko == k1 {
				t.Fatalf("salt %q did not change the cache key", other)
			}
			if ko2 := job2.cacheKey(other); ko2 != ko {
				t.Fatalf("salted key not deterministic: %s vs %s", ko, ko2)
			}
		}
	})
}

// FuzzBatchRequest fuzzes the /v1/schedule/batch envelope decoder: arbitrary
// bytes must never panic, and any envelope it accepts must synthesize
// per-loop singleton bodies that reparse to the same verdicts and keys at
// the worker (which parses with a machine cache) and at the coordinator
// (which parses without one) — the equivalence the distributed batch's
// byte-identity rests on.
func FuzzBatchRequest(f *testing.F) {
	f.Add([]byte(`{"clusters":2,"loops":[{"loop_text":"loop t 10\nnode 0 IntALU\n"}]}`))
	f.Add([]byte(`{"machine":"machine m\ncluster 1 1 1 8\n","scheme":"Fixed","portfolio":4,"loops":[{"loop":{"name":"x","niter":5,"nodes":[{"op":"Load"}]}},{"loop_text":"loop broken"}]}`))
	f.Add([]byte(`{"clusters":2,"loops":[]}`))
	f.Add([]byte(`{"loops":1}`))
	f.Add([]byte(`{{{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		mc := newMachineCache()
		items, err := parseBatch(data, mc)
		if err != nil {
			return
		}
		pub, err := BatchItems(data)
		if err != nil {
			t.Fatalf("worker accepted an envelope BatchItems rejects: %v", err)
		}
		if len(pub) != len(items) {
			t.Fatalf("item counts diverge: %d vs %d", len(items), len(pub))
		}
		salt := keySalt(schedule.AlgoVersion, 0)
		for i := range items {
			if !bytes.Equal(items[i].body, pub[i].Body) {
				t.Fatalf("item %d synthesized bodies diverge", i)
			}
			if (items[i].err == nil) != (pub[i].Err == nil) {
				t.Fatalf("item %d verdicts diverge: %v vs %v", i, items[i].err, pub[i].Err)
			}
			if items[i].err != nil {
				if items[i].err.Error() != pub[i].Err.Error() {
					t.Fatalf("item %d error strings diverge (batch elements would too): %q vs %q",
						i, items[i].err, pub[i].Err)
				}
				continue
			}
			if k := items[i].job.cacheKey(salt); k != pub[i].Key {
				t.Fatalf("item %d keys diverge: %s vs %s", i, k, pub[i].Key)
			}
			// Round-trip: the synthesized singleton body must itself be
			// admitted, with the same content address.
			job2, err := parseScheduleRequest(items[i].body)
			if err != nil {
				t.Fatalf("item %d synthesized body rejected on reparse: %v", i, err)
			}
			if k2 := job2.cacheKey(salt); k2 != pub[i].Key {
				t.Fatalf("item %d reparse key diverges: %s vs %s", i, k2, pub[i].Key)
			}
		}
	})
}
