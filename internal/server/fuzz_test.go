package server

import (
	"bytes"
	"testing"

	"repro/internal/schedule"
)

// FuzzScheduleRequest fuzzes the /v1/schedule JSON decoder: arbitrary bytes
// must never panic, and any body it accepts must yield a validated graph
// and machine with a deterministic cache key (the content address the whole
// caching story hangs on).
func FuzzScheduleRequest(f *testing.F) {
	f.Add([]byte(`{"loop_text":"loop t 10\nnode 0 IntALU\n","clusters":2}`))
	f.Add([]byte(`{"loop":{"name":"x","niter":5,"nodes":[{"op":"Load"},{"op":"IntALU"}],"edges":[{"from":0,"to":1,"lat":2}]},"clusters":4,"regs":64}`))
	f.Add([]byte(`{"loop":{"name":"h","niter":1,"nodes":[{"op":"FPMul"}]},"machine":"machine m\ncluster 1 1 1 8\n","scheme":"URACAM"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{{{`))
	f.Add([]byte(`{"loop_text":"loop t 10\nnode 0 Store\nedge 0 0 1 1 data\n","clusters":2}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		job, err := parseScheduleRequest(data)
		if err != nil {
			return
		}
		// Accepted requests are fully validated and deterministically keyed.
		if err := job.g.Validate(); err != nil {
			t.Fatalf("accepted an invalid graph: %v", err)
		}
		if err := job.m.Validate(); err != nil {
			t.Fatalf("accepted an invalid machine: %v", err)
		}
		salt := keySalt(schedule.AlgoVersion, 0)
		k1 := job.cacheKey(salt)
		job2, err := parseScheduleRequest(data)
		if err != nil {
			t.Fatalf("second parse of accepted body failed: %v", err)
		}
		if k2 := job2.cacheKey(salt); k1 != k2 {
			t.Fatalf("cache key not deterministic: %s vs %s", k1, k2)
		}
		if bytes.ContainsAny([]byte(k1), " \n") || len(k1) != 64 {
			t.Fatalf("malformed cache key %q", k1)
		}
		// The salt is load-bearing: a different algorithm version or a
		// different epoch must move the key, and deterministically so.
		for _, other := range []string{
			keySalt(schedule.AlgoVersion+"+bestfit", 0),
			keySalt(schedule.AlgoVersion, 1),
		} {
			ko := job.cacheKey(other)
			if ko == k1 {
				t.Fatalf("salt %q did not change the cache key", other)
			}
			if ko2 := job2.cacheKey(other); ko2 != ko {
				t.Fatalf("salted key not deterministic: %s vs %s", ko, ko2)
			}
		}
	})
}
