package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeCoordinator records the lifecycle calls an Agent makes and can be
// told to forget the node (answering heartbeats with 404 the way a
// restarted gpcoordd would).
type fakeCoordinator struct {
	mu          sync.Mutex
	registers   []RegisterRequest
	heartbeats  int
	deregisters int
	forget      bool
}

func (f *fakeCoordinator) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/nodes/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		f.registers = append(f.registers, req)
		f.forget = false
		f.mu.Unlock()
		_ = json.NewEncoder(w).Encode(RegisterResponse{HeartbeatMillis: 10})
	})
	mux.HandleFunc("POST /v1/nodes/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		forget := f.forget
		if !forget {
			f.heartbeats++
		}
		f.mu.Unlock()
		if forget {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/nodes/deregister", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.deregisters++
		f.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func (f *fakeCoordinator) counts() (registers, heartbeats, deregisters int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.registers), f.heartbeats, f.deregisters
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAgentLifecycle(t *testing.T) {
	fake := &fakeCoordinator{}
	ts := httptest.NewServer(fake.handler())
	defer ts.Close()

	agent := StartAgent(AgentConfig{
		Coordinator: ts.URL,
		NodeID:      "w1",
		Endpoint:    "http://127.0.0.1:1",
		Capacity:    3,
	})

	// Registers with its identity, then adopts the coordinator's suggested
	// cadence and heartbeats.
	waitFor(t, "registration", func() bool { r, _, _ := fake.counts(); return r >= 1 })
	fake.mu.Lock()
	got := fake.registers[0]
	fake.mu.Unlock()
	if got.ID != "w1" || got.Endpoint != "http://127.0.0.1:1" || got.Capacity != 3 {
		t.Fatalf("register request = %+v", got)
	}
	waitFor(t, "heartbeats", func() bool { _, h, _ := fake.counts(); return h >= 3 })
	if !agent.Registered() {
		t.Fatal("agent does not report registered")
	}

	// Coordinator restart: heartbeats answer 404 until the agent
	// re-registers.
	fake.mu.Lock()
	fake.forget = true
	fake.mu.Unlock()
	waitFor(t, "re-registration", func() bool { r, _, _ := fake.counts(); return r >= 2 })

	// Close deregisters exactly once.
	agent.Close()
	if _, _, d := fake.counts(); d != 1 {
		t.Fatalf("deregisters = %d, want 1", d)
	}
}

func TestAgentRetriesUntilCoordinatorExists(t *testing.T) {
	// Point the agent at a dead port: it must keep retrying, not crash,
	// and Close must return promptly without a deregister call.
	agent := StartAgent(AgentConfig{
		Coordinator: "http://127.0.0.1:1",
		NodeID:      "w1",
		Endpoint:    "http://127.0.0.1:2",
		Interval:    5 * time.Millisecond,
	})
	time.Sleep(30 * time.Millisecond)
	if agent.Registered() {
		t.Fatal("agent claims registration against a dead coordinator")
	}
	done := make(chan struct{})
	go func() { agent.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung")
	}
}
