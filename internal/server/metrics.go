package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow is the number of recent request latencies kept for the
// p50/p99 estimates. A fixed ring keeps /metrics allocation-bounded under
// sustained traffic.
const latencyWindow = 1024

// metrics holds the daemon's counters and the recent-latency ring. All
// counters are monotonic totals in the Prometheus style.
type metrics struct {
	requests       atomic.Int64 // every HTTP request seen
	inflight       atomic.Int64 // requests currently being served (gauge)
	scheduleReqs   atomic.Int64
	sweepReqs      atomic.Int64
	batchReqs      atomic.Int64 // /v1/schedule/batch requests
	batchLoops     atomic.Int64 // loops carried inside batch requests
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	bodyHits       atomic.Int64 // cache hits served off the parse-free body-hash index
	coalesced      atomic.Int64 // requests folded into an in-flight twin
	rejected       atomic.Int64 // 429 backpressure rejections
	badRequests    atomic.Int64 // 400s
	verifyFailures atomic.Int64 // schedules the Verify oracle rejected
	cacheFlushes   atomic.Int64 // cache wipes (epoch bumps)

	machineCacheHits   atomic.Int64 // parsed-machine cache hits
	machineCacheMisses atomic.Int64

	// portfolioWins counts, per seed index, how often that seed produced
	// the served schedule of a portfolio (K>1) computation.
	portfolioWins [maxRequestPortfolio]atomic.Int64

	mu      sync.Mutex
	ring    [latencyWindow]time.Duration
	ringLen int
	ringPos int
}

// observe records one served /v1/schedule latency.
func (m *metrics) observe(d time.Duration) {
	m.mu.Lock()
	m.ring[m.ringPos] = d
	m.ringPos = (m.ringPos + 1) % latencyWindow
	if m.ringLen < latencyWindow {
		m.ringLen++
	}
	m.mu.Unlock()
}

// quantiles returns the p50 and p99 of the recent-latency window.
func (m *metrics) quantiles() (p50, p99 time.Duration) {
	m.mu.Lock()
	n := m.ringLen
	buf := make([]time.Duration, n)
	copy(buf, m.ring[:n])
	m.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[quantileIndex(n, 0.50)], buf[quantileIndex(n, 0.99)]
}

func quantileIndex(n int, q float64) int {
	i := int(q * float64(n-1))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// render writes the metrics in the Prometheus text exposition format.
func (m *metrics) render(w io.Writer, queueDepth, cacheEntries int, epoch uint64) {
	p50, p99 := m.quantiles()
	fmt.Fprintf(w, "gpserved_requests_total %d\n", m.requests.Load())
	fmt.Fprintf(w, "gpserved_schedule_requests_total %d\n", m.scheduleReqs.Load())
	fmt.Fprintf(w, "gpserved_sweep_requests_total %d\n", m.sweepReqs.Load())
	fmt.Fprintf(w, "gpserved_batch_requests_total %d\n", m.batchReqs.Load())
	fmt.Fprintf(w, "gpserved_batch_loops_total %d\n", m.batchLoops.Load())
	fmt.Fprintf(w, "gpserved_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(w, "gpserved_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintf(w, "gpserved_cache_body_hits_total %d\n", m.bodyHits.Load())
	fmt.Fprintf(w, "gpserved_machine_cache_hits_total %d\n", m.machineCacheHits.Load())
	fmt.Fprintf(w, "gpserved_machine_cache_misses_total %d\n", m.machineCacheMisses.Load())
	fmt.Fprintf(w, "gpserved_cache_entries %d\n", cacheEntries)
	fmt.Fprintf(w, "gpserved_cache_flushes_total %d\n", m.cacheFlushes.Load())
	fmt.Fprintf(w, "gpserved_algo_epoch %d\n", epoch)
	fmt.Fprintf(w, "gpserved_coalesced_total %d\n", m.coalesced.Load())
	fmt.Fprintf(w, "gpserved_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "gpserved_bad_requests_total %d\n", m.badRequests.Load())
	fmt.Fprintf(w, "gpserved_verify_failures_total %d\n", m.verifyFailures.Load())
	for seed := range m.portfolioWins {
		if n := m.portfolioWins[seed].Load(); n > 0 {
			fmt.Fprintf(w, "gpserved_portfolio_wins_total{seed=\"%d\"} %d\n", seed, n)
		}
	}
	fmt.Fprintf(w, "gpserved_inflight %d\n", m.inflight.Load())
	fmt.Fprintf(w, "gpserved_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "gpserved_latency_p50_seconds %g\n", p50.Seconds())
	fmt.Fprintf(w, "gpserved_latency_p99_seconds %g\n", p99.Seconds())
}

// hitRate returns cache hits / (hits + misses), or 0 before any lookup.
func (m *metrics) hitRate() float64 {
	h, mi := m.cacheHits.Load(), m.cacheMisses.Load()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}
