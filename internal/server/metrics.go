package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// metrics holds the daemon's counters and latency histograms. All counters
// are monotonic totals in the Prometheus style; latencies live in
// fixed-bucket histogram families (obs.LatencyBuckets) labeled by endpoint
// and cache outcome, from which the legacy p50/p99 gauges are derived.
type metrics struct {
	requests       atomic.Int64 // every HTTP request seen
	inflight       atomic.Int64 // requests currently being served (gauge)
	scheduleReqs   atomic.Int64
	sweepReqs      atomic.Int64
	batchReqs      atomic.Int64 // /v1/schedule/batch requests
	batchLoops     atomic.Int64 // loops carried inside batch requests
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	bodyHits       atomic.Int64 // cache hits served off the parse-free body-hash index
	coalesced      atomic.Int64 // requests folded into an in-flight twin
	rejected       atomic.Int64 // 429 backpressure rejections
	badRequests    atomic.Int64 // 400s
	verifyFailures atomic.Int64 // schedules the Verify oracle rejected
	cacheFlushes   atomic.Int64 // cache wipes (epoch bumps)

	machineCacheHits   atomic.Int64 // parsed-machine cache hits
	machineCacheMisses atomic.Int64

	// Scheduler-internal work counters, summed over every computed
	// schedule: refinement transformations applied, and the refinement
	// candidate screen's per-stage tallies (see partition.Result).
	refineMoves atomic.Int64
	screenLB    atomic.Int64
	screenExact atomic.Int64
	screenFull  atomic.Int64

	// portfolioWins counts, per seed index, how often that seed produced
	// the served schedule of a portfolio (K>1) computation.
	portfolioWins [maxRequestPortfolio]atomic.Int64

	// durations is gpserved_request_duration_seconds{endpoint,cache}; the
	// hot-path cells are resolved once here. Body-hash hits count as
	// cache="hit" — the finer split stays in cache_body_hits_total.
	durations *obs.Vec
	schedHit  *obs.Histogram
	schedMiss *obs.Histogram
	batchHit  *obs.Histogram
	batchMiss *obs.Histogram
	sweepDur  *obs.Histogram

	// portfolioWinSec is gpserved_portfolio_win_seconds{seed}: the
	// scheduling latency of portfolio computations, bucketed by which seed
	// won. Cells appear as seeds win.
	portfolioWinSec *obs.Vec
}

// init wires the histogram families; must run before any observation.
func (m *metrics) init() {
	m.durations = obs.NewVec()
	m.schedHit = m.durations.With(`endpoint="schedule",cache="hit"`)
	m.schedMiss = m.durations.With(`endpoint="schedule",cache="miss"`)
	m.batchHit = m.durations.With(`endpoint="batch",cache="hit"`)
	m.batchMiss = m.durations.With(`endpoint="batch",cache="miss"`)
	m.sweepDur = m.durations.With(`endpoint="sweep",cache="none"`)
	m.portfolioWinSec = obs.NewVec()
}

// quantiles returns the p50 and p99 across every endpoint and outcome —
// derived from the shared-layout buckets, replacing the old sorted ring.
func (m *metrics) quantiles() (p50, p99 time.Duration) {
	return m.durations.Quantile(0.50), m.durations.Quantile(0.99)
}

// workerGauges is the lint allowlist for gpserved metric names that are
// neither counters nor histogram series. The metrics test and the smoke
// observability phase check /metrics against it.
var workerGauges = map[string]bool{
	"gpserved_cache_entries":       true,
	"gpserved_algo_epoch":          true,
	"gpserved_inflight":            true,
	"gpserved_queue_depth":         true,
	"gpserved_latency_p50_seconds": true,
	"gpserved_latency_p99_seconds": true,
}

// render writes the metrics in the Prometheus text exposition format.
func (m *metrics) render(w io.Writer, queueDepth, cacheEntries int, epoch uint64) {
	p50, p99 := m.quantiles()
	fmt.Fprintf(w, "gpserved_requests_total %d\n", m.requests.Load())
	fmt.Fprintf(w, "gpserved_schedule_requests_total %d\n", m.scheduleReqs.Load())
	fmt.Fprintf(w, "gpserved_sweep_requests_total %d\n", m.sweepReqs.Load())
	fmt.Fprintf(w, "gpserved_batch_requests_total %d\n", m.batchReqs.Load())
	fmt.Fprintf(w, "gpserved_batch_loops_total %d\n", m.batchLoops.Load())
	fmt.Fprintf(w, "gpserved_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(w, "gpserved_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintf(w, "gpserved_cache_body_hits_total %d\n", m.bodyHits.Load())
	fmt.Fprintf(w, "gpserved_machine_cache_hits_total %d\n", m.machineCacheHits.Load())
	fmt.Fprintf(w, "gpserved_machine_cache_misses_total %d\n", m.machineCacheMisses.Load())
	fmt.Fprintf(w, "gpserved_cache_entries %d\n", cacheEntries)
	fmt.Fprintf(w, "gpserved_cache_flushes_total %d\n", m.cacheFlushes.Load())
	fmt.Fprintf(w, "gpserved_algo_epoch %d\n", epoch)
	fmt.Fprintf(w, "gpserved_coalesced_total %d\n", m.coalesced.Load())
	fmt.Fprintf(w, "gpserved_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "gpserved_bad_requests_total %d\n", m.badRequests.Load())
	fmt.Fprintf(w, "gpserved_verify_failures_total %d\n", m.verifyFailures.Load())
	fmt.Fprintf(w, "gpserved_refine_moves_total %d\n", m.refineMoves.Load())
	fmt.Fprintf(w, "gpserved_refine_screen_total{stage=\"lower_bound\"} %d\n", m.screenLB.Load())
	fmt.Fprintf(w, "gpserved_refine_screen_total{stage=\"exact_t\"} %d\n", m.screenExact.Load())
	fmt.Fprintf(w, "gpserved_refine_screen_total{stage=\"full_eval\"} %d\n", m.screenFull.Load())
	for seed := range m.portfolioWins {
		if n := m.portfolioWins[seed].Load(); n > 0 {
			fmt.Fprintf(w, "gpserved_portfolio_wins_total{seed=\"%d\"} %d\n", seed, n)
		}
	}
	fmt.Fprintf(w, "gpserved_inflight %d\n", m.inflight.Load())
	fmt.Fprintf(w, "gpserved_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "gpserved_latency_p50_seconds %g\n", p50.Seconds())
	fmt.Fprintf(w, "gpserved_latency_p99_seconds %g\n", p99.Seconds())
	m.durations.Write(w, "gpserved_request_duration_seconds")
	m.portfolioWinSec.Write(w, "gpserved_portfolio_win_seconds")
}

// hitRate returns cache hits / (hits + misses), or 0 before any lookup.
func (m *metrics) hitRate() float64 {
	h, mi := m.cacheHits.Load(), m.cacheMisses.Load()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}
