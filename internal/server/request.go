// Package server implements the gpserved HTTP daemon: modulo scheduling as
// a service over the repository's core packages.
//
// Endpoints:
//
//	POST /v1/schedule  one loop + machine + scheme → schedule, IPC, verdict
//	POST /v1/sweep     machines × corpora × schemes sweep, streamed as CSV
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus-style counters and latency quantiles
//
// Identical requests are content-hash keyed into an LRU cache and replayed
// byte-identically; concurrent identical requests coalesce into a single
// computation (singleflight); distinct requests run on a bounded worker
// pool whose full queue sheds load with 429 + Retry-After. Every cache miss
// is re-checked by the schedule.Verify oracle before the result is cached.
package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/ddgio"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/schedule"
)

// ScheduleRequest is the body of POST /v1/schedule. The loop arrives either
// as the ddgio text format (LoopText) or as the JSON encoding (Loop) —
// exactly one. The machine is either a machine-description text (Machine)
// or the paper's homogeneous grid (Clusters/Regs/NBus/LatBus). Scheme
// defaults to GP.
type ScheduleRequest struct {
	Loop     *ddgio.JSONLoop `json:"loop,omitempty"`
	LoopText string          `json:"loop_text,omitempty"`

	// Machine is a machine-description text on the wire (a JSON string);
	// machine.Config's TextMarshaler/TextUnmarshaler do the round-trip, so
	// decoding parses and validates it in one step.
	Machine  *machine.Config `json:"machine,omitempty"`
	Clusters int             `json:"clusters,omitempty"`
	Regs     int             `json:"regs,omitempty"`
	NBus     int             `json:"nbus,omitempty"`
	LatBus   int             `json:"latbus,omitempty"`

	Scheme string `json:"scheme,omitempty"`

	// Portfolio races K deterministically seeded partition starts and keeps
	// the best schedule (core.Options.Portfolio). 0 means the server
	// default; 1 forces sequential. Values above 1 are folded into the
	// cache key (the response bytes may differ), so K=1 and absent keep
	// their historical keys — and their coordinator placement.
	Portfolio int `json:"portfolio,omitempty"`
}

// scheduleRequestWire mirrors ScheduleRequest but holds the loop and
// machine values raw: the parsed-machine cache intercepts the machine
// before machine.Config's UnmarshalText (parse + validate) runs, and the
// batch endpoint synthesizes per-loop singleton bodies by re-marshaling
// this struct with the envelope's raw segments spliced in verbatim.
type scheduleRequestWire struct {
	Loop      json.RawMessage `json:"loop,omitempty"`
	LoopText  string          `json:"loop_text,omitempty"`
	Machine   json.RawMessage `json:"machine,omitempty"`
	Clusters  int             `json:"clusters,omitempty"`
	Regs      int             `json:"regs,omitempty"`
	NBus      int             `json:"nbus,omitempty"`
	LatBus    int             `json:"latbus,omitempty"`
	Scheme    string          `json:"scheme,omitempty"`
	Portfolio int             `json:"portfolio,omitempty"`
}

// rawPresent reports whether a raw JSON field carries a value ("null"
// counts as absent, matching the typed decode it replaced).
func rawPresent(raw json.RawMessage) bool {
	return len(raw) > 0 && string(raw) != "null"
}

// ScheduleResponse is the body of a successful POST /v1/schedule. It is
// fully deterministic for a given request — no wall-clock fields — so a
// cache hit is byte-identical to the cold response. Whether a response came
// from the cache is reported out of band in the X-Cache header.
type ScheduleResponse struct {
	Loop    string `json:"loop"`
	Machine string `json:"machine"`
	Scheme  string `json:"scheme"`

	MII          int     `json:"mii"`
	II           int     `json:"ii"`
	SL           int     `json:"sl"`
	Stages       int     `json:"stages"`
	IPC          float64 `json:"ipc"`
	Cycles       int64   `json:"cycles"`
	ListFallback bool    `json:"list_fallback,omitempty"`
	Spills       int     `json:"spills"`
	MemRoutes    int     `json:"mem_routes"`
	MaxLive      []int   `json:"max_live"`

	Time    []int            `json:"time"`
	Cluster []int            `json:"cluster"`
	Comms   []schedule.Comm  `json:"comms,omitempty"`
	MemOps  []schedule.MemOp `json:"mem_ops,omitempty"`

	// Verified reports that the schedule.Verify oracle re-checked this
	// schedule from scratch. Always true in a served response: a verdict
	// failure is a 500, never a cached result.
	Verified bool `json:"verified"`
}

// SchemaVersion identifies the wire codec: the request/response JSON
// shapes, the batch framing, and the error envelope. Bump it on any
// incompatible change to those shapes. It is folded into every cache key
// (two codec generations never share an entry), advertised on every
// response as X-Schema-Version and in the register/heartbeat payloads, and
// the coordinator refuses mixed-schema fleets the same way it refuses
// mixed algorithm versions.
const SchemaVersion = "wire/1"

// Stable machine-readable error codes carried by every error envelope.
// Clients branch on the code, not the message; the message is for humans.
const (
	ErrCodeBadRequest     = "bad_request"     // 400: request failed admission
	ErrCodeSaturated      = "saturated"       // 429: queue full, Retry-After set
	ErrCodeShuttingDown   = "shutting_down"   // 503: daemon draining
	ErrCodeNotFound       = "not_found"       // 404: unknown resource
	ErrCodeInternal       = "internal"        // 500: scheduling or verify failure
	ErrCodeNoWorkers      = "no_workers"      // 503: coordinator has no ready workers
	ErrCodeUpstreamFailed = "upstream_failed" // 502: every placement attempt failed
	ErrCodeSchemaMismatch = "schema_mismatch" // 409: worker's wire codec differs from the fleet's
	ErrCodeJobTableFull   = "job_table_full"  // 429: job table at capacity
)

// ErrorRetryable reports whether a code names a condition a client should
// retry (possibly after Retry-After) rather than a permanent failure.
func ErrorRetryable(code string) bool {
	switch code {
	case ErrCodeSaturated, ErrCodeShuttingDown, ErrCodeNoWorkers, ErrCodeUpstreamFailed, ErrCodeJobTableFull:
		return true
	}
	return false
}

// ErrorBody is the inner object of the unified error envelope
// {"error": {"code", "message", "retryable"}} shared by gpserved and
// gpcoordd.
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable,omitempty"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error ErrorBody `json:"error"`
}

// MarshalError renders the unified error envelope for a code and message.
// The coordinator shares it so both daemons' error bodies are shaped — and
// byte-rendered — identically.
func MarshalError(code, msg string) []byte {
	b, err := json.Marshal(errorResponse{Error: ErrorBody{Code: code, Message: msg, Retryable: ErrorRetryable(code)}})
	if err != nil {
		// ErrorBody has only plain fields; Marshal cannot fail.
		return []byte(`{"error":{"code":"internal","message":"unrenderable error"}}`)
	}
	return b
}

// scheduleJob is a decoded, validated schedule request.
type scheduleJob struct {
	g         *ddg.Graph
	m         *machine.Config
	alg       core.Algorithm
	scheme    string
	portfolio int    // explicit request K (0 = server default)
	mcState   string // machine-cache outcome: "hit", "miss", or "" (grid)
}

// parseScheduleRequest decodes and validates a request body. Any error is a
// client error (HTTP 400).
func parseScheduleRequest(body []byte) (*scheduleJob, error) {
	return parseScheduleRequestCached(body, nil)
}

// parseScheduleRequestCached is parseScheduleRequest with an optional
// parsed-machine cache: when mc is non-nil and the machine arrives as a
// description text, a cache hit skips machine parsing and validation.
func parseScheduleRequestCached(body []byte, mc *machineCache) (*scheduleJob, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req scheduleRequestWire
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad request body: %v", err)
	}

	var g *ddg.Graph
	haveLoop := rawPresent(req.Loop)
	switch {
	case haveLoop && req.LoopText != "":
		return nil, fmt.Errorf("give exactly one of loop and loop_text, not both")
	case haveLoop:
		jl := new(ddgio.JSONLoop)
		if err := json.Unmarshal(req.Loop, jl); err != nil {
			return nil, fmt.Errorf("bad loop: %v", err)
		}
		var err error
		g, err = ddgio.FromJSON(jl)
		if err != nil {
			return nil, err
		}
	case req.LoopText != "":
		loops, err := ddgio.Read(strings.NewReader(req.LoopText))
		if err != nil {
			return nil, err
		}
		if len(loops) != 1 {
			return nil, fmt.Errorf("loop_text must contain exactly one loop, got %d", len(loops))
		}
		g = loops[0]
	default:
		return nil, fmt.Errorf("missing loop: give loop (JSON) or loop_text (ddgio text)")
	}

	var m *machine.Config
	var mcState string
	haveMachine := rawPresent(req.Machine)
	switch {
	case haveMachine && (req.Clusters != 0 || req.Regs != 0 || req.NBus != 0 || req.LatBus != 0):
		return nil, fmt.Errorf("give either machine or the clusters/regs/nbus/latbus grid, not both")
	case haveMachine:
		var err error
		m, mcState, err = resolveMachine(req.Machine, mc)
		if err != nil {
			return nil, err
		}
	case req.Clusters == 1:
		m = machine.NewUnified(defaultRegs(req.Regs))
	case req.Clusters != 0:
		var err error
		m, err = machine.NewClustered(req.Clusters, defaultRegs(req.Regs), defaultOne(req.NBus), defaultOne(req.LatBus))
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("missing machine: give machine (description text) or clusters")
	}
	if mcState == "" {
		// The grid constructors check divisibility, not positivity (e.g. -8
		// registers split evenly); Parse validates internally, the grid
		// paths must too, so nothing invalid gets past admission. (The
		// machine-text path validated inside resolveMachine — or skipped it
		// on a cache hit, where the cached config already passed.)
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if err := checkServedMachine(m); err != nil {
			return nil, err
		}
	}

	alg, scheme, err := parseScheme(req.Scheme)
	if err != nil {
		return nil, err
	}
	if req.Portfolio < 0 || req.Portfolio > maxRequestPortfolio {
		return nil, fmt.Errorf("portfolio %d outside served range [0, %d]", req.Portfolio, maxRequestPortfolio)
	}

	// Cheap admission guards, O(nodes + edges) — everything on the handler
	// goroutine must stay linear; the expensive MII analysis runs behind
	// the worker pool (see admissionCheck). The scheduler's working-set
	// size scales with loop size and initiation interval (reservation
	// tables allocate O(units·II) per cluster), so an unauthenticated
	// request must not drive either unbounded: a loop needing a unit kind
	// the machine lacks has an unbounded resource MII, and a single huge
	// edge latency drives the recurrence MII (and every schedule-time
	// buffer) to its own magnitude.
	if g.N() > maxServedNodes {
		return nil, fmt.Errorf("loop has %d nodes, limit %d", g.N(), maxServedNodes)
	}
	if len(g.Edges) > maxServedEdges {
		return nil, fmt.Errorf("loop has %d edges, limit %d", len(g.Edges), maxServedEdges)
	}
	if g.Niter > maxServedNiter {
		return nil, fmt.Errorf("trip count %d exceeds limit %d", g.Niter, maxServedNiter)
	}
	for i, e := range g.Edges {
		if e.Lat > maxServedLat {
			return nil, fmt.Errorf("edge %d latency %d exceeds limit %d", i, e.Lat, maxServedLat)
		}
		if e.Dist > maxServedDist {
			return nil, fmt.Errorf("edge %d distance %d exceeds limit %d", i, e.Dist, maxServedDist)
		}
	}
	counts := g.OpCounts()
	for k := 0; k < isa.NumUnitKinds; k++ {
		if counts[k] > 0 && m.TotalUnits(isa.UnitKind(k)) == 0 {
			return nil, fmt.Errorf("machine %s has no %v units but the loop needs %d", m.Name, isa.UnitKind(k), counts[k])
		}
	}
	return &scheduleJob{g: g, m: m, alg: alg, scheme: scheme, portfolio: req.Portfolio, mcState: mcState}, nil
}

// maxRequestPortfolio mirrors core's portfolio clamp: admission rejects what
// the core would silently truncate, so a request's K is always exactly what
// it pays for in the cache key.
const maxRequestPortfolio = 16

// Admission limits for served scheduling work. Generous against every real
// workload (the corpora top out at ~100 ops, latencies and distances in
// single digits) while keeping the worst admitted request's memory — and
// the pooled MII analysis, which is O(nodes·edges) per feasibility probe —
// bounded.
const (
	maxServedNodes = 1024
	maxServedEdges = 8192
	maxServedNiter = 1 << 31
	maxServedLat   = 1 << 16
	maxServedDist  = 256
	maxServedII    = 4096
)

// checkServedMachine bounds the machine half of a request the same way the
// loop half is bounded: machine.Validate accepts arbitrarily large
// configurations (it checks consistency, not size), but reservation tables
// allocate O(clusters·II) functional-unit slots and O(channels·II)
// transfer slots — channels is clusters² on point-to-point machines — and
// scheduling work grows with every latency. None of that may scale with a
// hostile description.
func checkServedMachine(m *machine.Config) error {
	if m.Clusters > maxServedClusters {
		return fmt.Errorf("machine has %d clusters, limit %d", m.Clusters, maxServedClusters)
	}
	if m.NBus > maxServedNBus {
		return fmt.Errorf("machine has %d buses/links, limit %d", m.NBus, maxServedNBus)
	}
	if m.LatBus > maxServedLat {
		return fmt.Errorf("bus latency %d exceeds limit %d", m.LatBus, maxServedLat)
	}
	for op := 0; op < isa.NumOpClasses; op++ {
		if m.Latency[op] > maxServedLat {
			return fmt.Errorf("latency %d for %v exceeds limit %d", m.Latency[op], isa.OpClass(op), maxServedLat)
		}
	}
	for cl := 0; cl < m.Clusters; cl++ {
		for k := 0; k < isa.NumUnitKinds; k++ {
			if u := m.UnitsIn(cl, isa.UnitKind(k)); u > maxServedUnits {
				return fmt.Errorf("cluster %d has %d %v units, limit %d", cl, u, isa.UnitKind(k), maxServedUnits)
			}
		}
	}
	return nil
}

const (
	maxServedClusters = 16
	maxServedNBus     = 64
	maxServedUnits    = 64
)

// clientError marks a defect in the request content discovered after
// admission, on a worker; the handler maps it to 400 instead of 500.
type clientError struct{ err error }

func (e *clientError) Error() string { return e.err.Error() }
func (e *clientError) Unwrap() error { return e.err }

// admissionCheck runs the request-dependent analysis too expensive for the
// handler goroutine: the MII (a Bellman-Ford binary search) must land in
// the served range, or the schedule-time buffers would scale with a
// hostile request. It runs on a pool worker, behind backpressure.
func (j *scheduleJob) admissionCheck() error {
	if mii := j.g.MII(j.m); mii < 1 || mii > maxServedII {
		return &clientError{fmt.Errorf("minimum initiation interval %d outside served range [1, %d]", mii, maxServedII)}
	}
	return nil
}

func defaultRegs(v int) int {
	if v == 0 {
		return 64
	}
	return v
}

func defaultOne(v int) int {
	if v == 0 {
		return 1
	}
	return v
}

// parseScheme maps the wire scheme name to the algorithm and its canonical
// spelling.
func parseScheme(s string) (core.Algorithm, string, error) {
	switch strings.ToLower(s) {
	case "", "gp":
		return core.GP, "GP", nil
	case "fixed", "fixedpartition":
		return core.FixedPartition, "Fixed", nil
	case "uracam":
		return core.URACAM, "URACAM", nil
	}
	return 0, "", fmt.Errorf("unknown scheme %q (want GP, Fixed or URACAM)", s)
}

// keySalt builds the identity salt folded into every cache key: the wire
// schema version, the algorithm version string and the cache epoch. Two
// workers running different scheduler generations or codec generations —
// or one worker across a flush — can therefore never collide on a key,
// even for byte-identical requests.
func keySalt(algoVersion string, epoch uint64) string {
	return SchemaVersion + "\x00" + algoVersion + "\x00" + strconv.FormatUint(epoch, 10)
}

// cacheKey content-addresses the job under an algorithm-identity salt: the
// salt, the canonical machine description, the canonical ddgio text of the
// loop, and the scheme. Equivalent requests — JSON loop vs. text loop,
// grid machine vs. its description — share one cache entry; requests
// scheduled by different algorithm generations never do.
func (j *scheduleJob) cacheKey(salt string) string {
	h := sha256.New()
	h.Write([]byte(salt))
	h.Write([]byte{0})
	h.Write([]byte(machine.Format(j.m)))
	h.Write([]byte{0})
	h.Write([]byte(j.scheme))
	h.Write([]byte{0})
	_ = ddgio.Write(h, j.g) // writes to a hash never fail
	if j.portfolio > 1 {
		// An explicit K>1 can change the response bytes, so it gets its
		// own entries. K=1 and absent hash exactly as before, keeping the
		// coordinator's rendezvous placement stable for existing traffic.
		h.Write([]byte{0})
		h.Write([]byte("portfolio:" + strconv.Itoa(j.portfolio)))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ScheduleCacheKey parses and validates a /v1/schedule body exactly as the
// daemon's admission does and returns the request's content-address cache
// key under the compiled-in algorithm version at epoch zero. The cluster
// coordinator routes on it — rendezvous hashing the key over the worker
// fleet sends identical requests to the same worker, whose LRU then acts
// as one shard of a distributed cache — and uses the parse error to shed
// malformed bodies before they consume a worker. Placement deliberately
// ignores the runtime epoch: a fleet-wide flush must invalidate bytes, not
// reshuffle which shard owns which request.
func ScheduleCacheKey(body []byte) (string, error) {
	job, err := parseScheduleRequest(body)
	if err != nil {
		return "", err
	}
	return job.cacheKey(keySalt(schedule.AlgoVersion, 0)), nil
}

// buildResponse assembles the deterministic response body from a scheduling
// result. It excludes every wall-clock field of core.Result on purpose.
func buildResponse(j *scheduleJob, res *core.Result) *ScheduleResponse {
	s := res.Schedule
	return &ScheduleResponse{
		Loop:         j.g.Name,
		Machine:      j.m.Name,
		Scheme:       j.scheme,
		MII:          res.MII,
		II:           s.II,
		SL:           s.SL,
		Stages:       s.Stages(),
		IPC:          res.IPC(j.g),
		Cycles:       s.Cycles(j.g.Niter),
		ListFallback: res.ListFallback,
		Spills:       s.Spills,
		MemRoutes:    s.MemRoutes,
		MaxLive:      s.MaxLive,
		Time:         s.Time,
		Cluster:      s.Cluster,
		Comms:        s.Comms,
		MemOps:       s.MemOps,
		Verified:     true,
	}
}
