package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/machine"
)

// batchLoopText returns tinyLoopText with a distinct loop name, so a batch
// can carry several distinct-but-similar loops.
func batchLoopText(name string) string {
	return strings.Replace(tinyLoopText, "loop tiny", "loop "+name, 1)
}

func postBatch(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/schedule/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func testMachineText(t *testing.T) string {
	t.Helper()
	m, err := machine.NewClustered(2, 32, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return machine.Format(m)
}

// TestBatchMatchesSingletons pins the batch contract: elements arrive in
// input order, each element is byte-identical to the singleton response for
// the same loop, and batch and singleton traffic share cache entries in
// both directions.
func TestBatchMatchesSingletons(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	mtext := testMachineText(t)

	names := []string{"alpha", "beta", "gamma"}
	req := BatchRequest{Scheme: "GP"}
	cfg := new(machine.Config)
	if err := cfg.UnmarshalText([]byte(mtext)); err != nil {
		t.Fatal(err)
	}
	req.Machine = cfg
	for _, n := range names {
		req.Loops = append(req.Loops, BatchLoop{LoopText: batchLoopText(n)})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	// Warm the cache with a singleton for the middle loop: its batch
	// element must be a cache hit with the very same bytes.
	singleton := func(n string) []byte {
		b, err := json.Marshal(&ScheduleRequest{LoopText: batchLoopText(n), Machine: cfg, Scheme: "GP"})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	respWarm, warmBody := postSchedule(t, ts, singleton("beta"))
	if respWarm.StatusCode != http.StatusOK {
		t.Fatalf("warm singleton: %d %s", respWarm.StatusCode, warmBody)
	}

	resp, out := postBatch(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, out)
	}

	var elems []ScheduleResponse
	if err := json.Unmarshal(out, &elems); err != nil {
		t.Fatalf("batch body is not a JSON array: %v\n%s", err, out)
	}
	if len(elems) != len(names) {
		t.Fatalf("%d elements, want %d", len(elems), len(names))
	}
	for i, n := range names {
		if elems[i].Loop != n {
			t.Errorf("element %d is loop %q, want %q (ordering)", i, elems[i].Loop, n)
		}
		if !elems[i].Verified {
			t.Errorf("element %d not verified", i)
		}
	}

	// Reconstruct the exact expected batch bytes from the singleton
	// responses (the ones after the batch must be cache hits — reverse
	// direction of entry sharing).
	var want bytes.Buffer
	want.WriteString(BatchOpen)
	for i, n := range names {
		if i > 0 {
			want.WriteString(BatchSep)
		}
		respS, sBody := postSchedule(t, ts, singleton(n))
		if respS.StatusCode != http.StatusOK {
			t.Fatalf("singleton %s: %d %s", n, respS.StatusCode, sBody)
		}
		if respS.Header.Get("X-Cache") != "hit" {
			t.Fatalf("singleton %s after batch: X-Cache %q, want hit", n, respS.Header.Get("X-Cache"))
		}
		want.Write(bytes.TrimSuffix(sBody, []byte("\n")))
	}
	want.WriteString(BatchClose)
	if !bytes.Equal(out, want.Bytes()) {
		t.Fatalf("batch bytes differ from singleton reassembly:\nbatch: %s\nwant:  %s", out, want.Bytes())
	}

	// The shared machine text resolves through the parsed-machine cache:
	// the warm singleton misses once, everything after hits.
	if h, m := srv.metrics.machineCacheHits.Load(), srv.metrics.machineCacheMisses.Load(); m != 1 || h < int64(len(names)) {
		t.Fatalf("machine cache hits=%d misses=%d, want misses=1 and hits>=%d", h, m, len(names))
	}
}

// TestBatchPartialFailure pins per-loop failure semantics: one bad loop
// yields an error element in its slot, the rest of the batch still
// schedules, and the response is a 200.
func TestBatchPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := []byte(`{"clusters":2,"regs":32,"loops":[` +
		`{"loop_text":` + string(mustJSON(t, batchLoopText("good"))) + `},` +
		`{"loop_text":"loop broken"},` +
		`{"loop_text":` + string(mustJSON(t, batchLoopText("tail"))) + `}]}`)
	resp, out := postBatch(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, out)
	}
	var elems []json.RawMessage
	if err := json.Unmarshal(out, &elems); err != nil {
		t.Fatalf("batch body is not a JSON array: %v\n%s", err, out)
	}
	if len(elems) != 3 {
		t.Fatalf("%d elements, want 3", len(elems))
	}
	var okElem ScheduleResponse
	if err := json.Unmarshal(elems[0], &okElem); err != nil || okElem.Loop != "good" {
		t.Fatalf("element 0: %v %s", err, elems[0])
	}
	var errElem errorResponse
	if err := json.Unmarshal(elems[1], &errElem); err != nil || errElem.Error.Code == "" {
		t.Fatalf("element 1 is not an error object: %s", elems[1])
	}
	var tailElem ScheduleResponse
	if err := json.Unmarshal(elems[2], &tailElem); err != nil || tailElem.Loop != "tail" {
		t.Fatalf("element 2: %v %s", err, elems[2])
	}
}

// TestBatchEnvelopeFastPath pins the verbatim-repeat fast path for whole
// batch envelopes: a fully served batch body is re-answered from the
// body-hash index (X-Cache hit, identical bytes, no re-parse), while an
// envelope whose response carries an error element is never cached.
func TestBatchEnvelopeFastPath(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	clean := []byte(`{"clusters":2,"regs":32,"loops":[` +
		`{"loop_text":` + string(mustJSON(t, batchLoopText("fp-a"))) + `},` +
		`{"loop_text":` + string(mustJSON(t, batchLoopText("fp-b"))) + `}]}`)
	resp1, out1 := postBatch(t, ts, clean)
	if resp1.StatusCode != http.StatusOK || resp1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold batch: status %d X-Cache %q", resp1.StatusCode, resp1.Header.Get("X-Cache"))
	}
	resp2, out2 := postBatch(t, ts, clean)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("verbatim repeat: status %d X-Cache %q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(out1, out2) {
		t.Fatalf("fast-path bytes differ:\n%s\nvs\n%s", out1, out2)
	}
	if h := srv.metrics.bodyHits.Load(); h != 1 {
		t.Fatalf("body hits = %d, want 1", h)
	}
	loops := srv.metrics.batchLoops.Load()
	if loops != 2 {
		t.Fatalf("batchLoops = %d, want 2 (fast path must not re-count)", loops)
	}

	// Error elements follow the singleton rule: never cached, so a repeat
	// of a partially failed envelope re-parses every time.
	dirty := []byte(`{"clusters":2,"regs":32,"loops":[` +
		`{"loop_text":` + string(mustJSON(t, batchLoopText("fp-c"))) + `},` +
		`{"loop_text":"loop broken"}]}`)
	for i := 0; i < 2; i++ {
		resp, _ := postBatch(t, ts, dirty)
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
			t.Fatalf("dirty post %d: status %d X-Cache %q (error envelopes must not be cached)",
				i, resp.StatusCode, resp.Header.Get("X-Cache"))
		}
	}
}

// TestBatchEnvelopeErrors pins the envelope-level 400s: admission failures
// of the batch itself, as opposed to per-loop errors, reject the request.
func TestBatchEnvelopeErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var many strings.Builder
	many.WriteString(`{"clusters":2,"loops":[`)
	for i := 0; i <= maxBatchLoops; i++ {
		if i > 0 {
			many.WriteString(",")
		}
		fmt.Fprintf(&many, `{"loop_text":%s}`, mustJSON(t, batchLoopText(fmt.Sprintf("l%d", i))))
	}
	many.WriteString(`]}`)
	cases := []struct {
		name string
		body string
	}{
		{"not json", `{{{`},
		{"unknown field", `{"clusters":2,"bogus":1,"loops":[{"loop_text":"x"}]}`},
		{"no loops", `{"clusters":2,"loops":[]}`},
		{"missing loops", `{"clusters":2}`},
		{"too many loops", many.String()},
		{"bad portfolio", `{"clusters":2,"portfolio":-1,"loops":[{"loop_text":"loop x 1\nnode 0 IntALU\n"}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, out := postBatch(t, ts, []byte(tc.body))
			if tc.name == "bad portfolio" {
				// Portfolio is validated per synthesized loop, so it
				// surfaces as a per-loop error element, not a 400.
				if resp.StatusCode != http.StatusOK || !bytes.Contains(out, []byte("portfolio")) {
					t.Fatalf("status %d, body %s", resp.StatusCode, out)
				}
				return
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d (want 400), body %s", resp.StatusCode, out)
			}
		})
	}
}

// TestBatchPortfolioDeterminism pins that a portfolio batch is byte-stable
// across runs and that the explicit K is folded into the cache key: the
// same loops with K=1 and K=4 are distinct entries, while a K=4 singleton
// after a K=4 batch is a hit.
func TestBatchPortfolioDeterminism(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	body := func(k int) []byte {
		return []byte(fmt.Sprintf(`{"clusters":2,"regs":32,"portfolio":%d,"loops":[{"loop_text":%s},{"loop_text":%s}]}`,
			k, mustJSON(t, batchLoopText("pa")), mustJSON(t, batchLoopText("pb"))))
	}
	respA, outA := postBatch(t, ts, body(4))
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("K=4 batch: %d %s", respA.StatusCode, outA)
	}
	// Flush nothing; rerun must be served from cache with identical bytes.
	respB, outB := postBatch(t, ts, body(4))
	if respB.StatusCode != http.StatusOK || !bytes.Equal(outA, outB) {
		t.Fatalf("K=4 batch not byte-stable")
	}

	// K=1 must not share the K>1 entries: it computes fresh.
	_, missesBefore, _, _ := srv.Metrics()
	respC, outC := postBatch(t, ts, body(1))
	if respC.StatusCode != http.StatusOK {
		t.Fatalf("K=1 batch: %d %s", respC.StatusCode, outC)
	}
	if _, missesAfter, _, _ := srv.Metrics(); missesAfter == missesBefore {
		t.Fatal("K=1 batch hit K=4 cache entries; portfolio not folded into key")
	}

	// A K=4 singleton shares the batch's entries.
	sBody, err := json.Marshal(&ScheduleRequest{LoopText: batchLoopText("pa"), Clusters: 2, Regs: 32, Portfolio: 4})
	if err != nil {
		t.Fatal(err)
	}
	respS, _ := postSchedule(t, ts, sBody)
	if respS.StatusCode != http.StatusOK || respS.Header.Get("X-Cache") != "hit" {
		t.Fatalf("K=4 singleton after batch: status %d X-Cache %q, want 200 hit", respS.StatusCode, respS.Header.Get("X-Cache"))
	}
}

// TestMachineCacheHeader pins the X-Machine-Cache header: first sighting of
// a machine text is a miss, a different request reusing the same text is a
// hit, and grid requests don't touch the cache at all.
func TestMachineCacheHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mtext := testMachineText(t)
	body := func(name string) []byte {
		return []byte(`{"loop_text":` + string(mustJSON(t, batchLoopText(name))) + `,"machine":` + string(mustJSON(t, mtext)) + `}`)
	}
	respA, outA := postSchedule(t, ts, body("mc1"))
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("first: %d %s", respA.StatusCode, outA)
	}
	if got := respA.Header.Get("X-Machine-Cache"); got != "miss" {
		t.Fatalf("first X-Machine-Cache = %q, want miss", got)
	}
	respB, outB := postSchedule(t, ts, body("mc2"))
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("second: %d %s", respB.StatusCode, outB)
	}
	if got := respB.Header.Get("X-Machine-Cache"); got != "hit" {
		t.Fatalf("second X-Machine-Cache = %q, want hit", got)
	}
	respC, _ := postSchedule(t, ts, scheduleBody(t, nil))
	if got := respC.Header.Get("X-Machine-Cache"); got != "" {
		t.Fatalf("grid request X-Machine-Cache = %q, want unset", got)
	}
}

// TestHitPathZeroAllocs pins the fast hit path's allocation budget: serving
// a verbatim repeat out of the body-hash index allocates nothing on the
// schedule side (hash + probe + bytes already in hand).
func TestHitPathZeroAllocs(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	body := scheduleBody(t, nil)
	if resp, out := postSchedule(t, ts, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: %d %s", resp.StatusCode, out)
	}
	if _, ok := srv.cache.GetByBody(sha256.Sum256(body)); !ok {
		t.Fatal("body hash not linked after cold request")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := srv.cache.GetByBody(sha256.Sum256(body)); !ok {
			panic("lost cache entry mid-run")
		}
	})
	if allocs != 0 {
		t.Fatalf("hit path allocates %.1f objects per lookup, want 0", allocs)
	}
}

// TestBodyHashFastPathServesVerbatimRepeat pins the end-to-end fast path:
// the second posting of identical bytes is a hit whose body matches the
// cold one, and the dedicated counter moves.
func TestBodyHashFastPathServesVerbatimRepeat(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	body := scheduleBody(t, nil)
	_, cold := postSchedule(t, ts, body)
	resp, hot := postSchedule(t, ts, body)
	if resp.Header.Get("X-Cache") != "hit" || !bytes.Equal(cold, hot) {
		t.Fatalf("verbatim repeat not a byte-identical hit")
	}
	if n := srv.metrics.bodyHits.Load(); n != 1 {
		t.Fatalf("body-hash hits = %d, want 1", n)
	}
}
