package isa

import "testing"

func TestOpClassString(t *testing.T) {
	cases := map[OpClass]string{
		IntALU: "IntALU", IntMul: "IntMul", FPAdd: "FPAdd", FPMul: "FPMul",
		FPDiv: "FPDiv", Load: "Load", Store: "Store", Copy: "Copy",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
	if got := OpClass(99).String(); got != "OpClass(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestOpClassValid(t *testing.T) {
	for c := 0; c < NumOpClasses; c++ {
		if !OpClass(c).Valid() {
			t.Errorf("OpClass(%d).Valid() = false", c)
		}
	}
	for _, c := range []OpClass{-1, OpClass(NumOpClasses), 120} {
		if c.Valid() {
			t.Errorf("OpClass(%d).Valid() = true", int(c))
		}
	}
}

func TestUnitMapping(t *testing.T) {
	cases := map[OpClass]UnitKind{
		IntALU: IntUnit, IntMul: IntUnit, Copy: IntUnit,
		FPAdd: FPUnit, FPMul: FPUnit, FPDiv: FPUnit,
		Load: MemUnit, Store: MemUnit,
	}
	for c, want := range cases {
		if got := c.Unit(); got != want {
			t.Errorf("%v.Unit() = %v, want %v", c, got, want)
		}
	}
}

func TestUnitKindString(t *testing.T) {
	cases := map[UnitKind]string{IntUnit: "INT", FPUnit: "FP", MemUnit: "MEM"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := UnitKind(9).String(); got != "UnitKind(9)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestProducesValue(t *testing.T) {
	if Store.ProducesValue() {
		t.Error("Store.ProducesValue() = true")
	}
	for _, c := range []OpClass{IntALU, IntMul, FPAdd, FPMul, FPDiv, Load, Copy} {
		if !c.ProducesValue() {
			t.Errorf("%v.ProducesValue() = false", c)
		}
	}
}

func TestDefaultLatencyPositive(t *testing.T) {
	for c := 0; c < NumOpClasses; c++ {
		if DefaultLatency(OpClass(c)) < 1 {
			t.Errorf("DefaultLatency(%v) = %d < 1", OpClass(c), DefaultLatency(OpClass(c)))
		}
	}
}

func TestDefaultLatencyOrdering(t *testing.T) {
	// The model's broad shape: FP slower than integer, divide slowest,
	// loads slower than stores.
	if !(DefaultLatency(FPMul) > DefaultLatency(IntALU)) {
		t.Error("FPMul should be slower than IntALU")
	}
	if !(DefaultLatency(FPDiv) > DefaultLatency(FPMul)) {
		t.Error("FPDiv should be slower than FPMul")
	}
	if !(DefaultLatency(Load) > DefaultLatency(Store)) {
		t.Error("Load should be slower than Store")
	}
}

func TestDefaultLatenciesTable(t *testing.T) {
	tab := DefaultLatencies()
	for c := 0; c < NumOpClasses; c++ {
		if tab[c] != DefaultLatency(OpClass(c)) {
			t.Errorf("table[%v] = %d, want %d", OpClass(c), tab[c], DefaultLatency(OpClass(c)))
		}
	}
}
