// Package isa defines the operation classes and functional-unit kinds shared
// by the data-dependence-graph and machine-model packages.
//
// The paper's machine model (MICRO-34, Table 1) groups operations into three
// functional-unit kinds — integer, floating point and memory — and assigns
// each operation class a fixed latency. The latencies used here follow the
// values used across the UPC clustered-VLIW modulo-scheduling papers
// (Sánchez & González; Codina, Sánchez & González): single-cycle integer
// arithmetic, multi-cycle floating point, two-cycle loads and single-cycle
// stores. Table 1's latency entries are not legible in the archival scan, so
// the exact values are configurable per machine (see package machine); the
// defaults below are used throughout the reproduction.
package isa

import "fmt"

// OpClass identifies the class of an operation in a loop body. The class
// determines which functional-unit kind executes the operation and its
// default latency.
type OpClass int8

// Operation classes. Copy is an inter-cluster register move; it is only
// created by the scheduler when routing a communication and never appears in
// source DDGs.
const (
	IntALU OpClass = iota // integer add/sub/logic/compare
	IntMul                // integer multiply
	FPAdd                 // floating-point add/sub/convert
	FPMul                 // floating-point multiply
	FPDiv                 // floating-point divide/sqrt
	Load                  // memory load
	Store                 // memory store
	Copy                  // inter-cluster copy (bus transfer)

	NumOpClasses = int(Copy) + 1
)

var opClassNames = [...]string{"IntALU", "IntMul", "FPAdd", "FPMul", "FPDiv", "Load", "Store", "Copy"}

// String returns the mnemonic name of the class.
func (c OpClass) String() string {
	if c < 0 || int(c) >= len(opClassNames) {
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
	return opClassNames[c]
}

// Valid reports whether c is one of the defined operation classes.
func (c OpClass) Valid() bool { return c >= 0 && int(c) < NumOpClasses }

// ProducesValue reports whether operations of this class define a register
// value that downstream operations may read. Stores write memory only.
func (c OpClass) ProducesValue() bool { return c != Store }

// UnitKind identifies one of the three functional-unit kinds of the paper's
// clustered VLIW machine.
type UnitKind int8

// Functional-unit kinds. BusUnit is not a per-cluster functional unit; it
// names the shared inter-cluster bus for resource accounting.
const (
	IntUnit UnitKind = iota
	FPUnit
	MemUnit

	NumUnitKinds = int(MemUnit) + 1
)

var unitKindNames = [...]string{"INT", "FP", "MEM"}

// String returns the short name of the unit kind.
func (k UnitKind) String() string {
	if k < 0 || int(k) >= len(unitKindNames) {
		return fmt.Sprintf("UnitKind(%d)", int(k))
	}
	return unitKindNames[k]
}

// Unit returns the functional-unit kind that executes operations of class c.
// Copy operations use the inter-cluster bus, which is not a functional unit;
// Unit reports IntUnit for them only so that every class maps somewhere, and
// callers must special-case Copy (the scheduler does).
func (c OpClass) Unit() UnitKind {
	switch c {
	case IntALU, IntMul, Copy:
		return IntUnit
	case FPAdd, FPMul, FPDiv:
		return FPUnit
	case Load, Store:
		return MemUnit
	}
	return IntUnit
}

// DefaultLatency returns the default producer latency, in cycles, of an
// operation of class c: the number of cycles after issue at which the
// produced value (or, for stores, the memory effect) becomes available.
func DefaultLatency(c OpClass) int {
	switch c {
	case IntALU:
		return 1
	case IntMul:
		return 2
	case FPAdd:
		return 3
	case FPMul:
		return 4
	case FPDiv:
		return 8
	case Load:
		return 2
	case Store:
		return 1
	case Copy:
		return 1
	}
	return 1
}

// DefaultLatencies returns the default latency table indexed by OpClass.
func DefaultLatencies() [NumOpClasses]int {
	var t [NumOpClasses]int
	for c := 0; c < NumOpClasses; c++ {
		t[c] = DefaultLatency(OpClass(c))
	}
	return t
}
