package ddg

// Recurrence analysis: strongly connected components of the full dependence
// graph (including loop-carried edges) identify the recurrences that bound
// the initiation interval. The Swing Modulo Scheduling ordering (paper
// §3.3.3, Llosa et al.) processes recurrences in decreasing order of their
// individual RecMII.

// Recurrence is one strongly connected component with at least one cycle.
type Recurrence struct {
	// Nodes are the member node IDs.
	Nodes []int
	// RecMII is the recurrence-constrained minimum II of the subgraph
	// induced by Nodes.
	RecMII int
}

// SCCs returns the strongly connected components of the graph (Tarjan),
// in reverse topological order of the condensation.
func (g *Graph) SCCs() [][]int {
	n := len(g.Nodes)
	g.buildAdj()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0

	// Iterative Tarjan to avoid recursion depth limits on long chains.
	type frame struct {
		v, ei int
	}
	var callStack []frame
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		callStack = append(callStack[:0], frame{root, 0})
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			if f.ei < len(g.out[v]) {
				e := g.Edges[g.out[v][f.ei]]
				f.ei++
				w := e.To
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// Recurrences returns the graph's recurrences: SCCs that contain at least
// one edge (a self-loop counts), each with the RecMII of its induced
// subgraph. The slice is sorted by decreasing RecMII (ties: larger first
// node ID last, for determinism).
func (g *Graph) Recurrences() []Recurrence {
	comps := g.SCCs()
	var recs []Recurrence
	inComp := make([]int, len(g.Nodes))
	for i := range inComp {
		inComp[i] = -1
	}
	for ci, comp := range comps {
		for _, v := range comp {
			inComp[v] = ci
		}
	}
	for ci, comp := range comps {
		hasCycle := len(comp) > 1
		if !hasCycle {
			v := comp[0]
			for _, ei := range g.Out(v) {
				if g.Edges[ei].To == v {
					hasCycle = true
					break
				}
			}
		}
		if !hasCycle {
			continue
		}
		sub := g.inducedSubgraph(comp, inComp, ci)
		recs = append(recs, Recurrence{Nodes: comp, RecMII: sub.RecMII(nil)})
	}
	// Sort by decreasing RecMII; stable on first node ID for determinism.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && less(recs[j-1], recs[j]); j-- {
			recs[j-1], recs[j] = recs[j], recs[j-1]
		}
	}
	return recs
}

func less(a, b Recurrence) bool {
	if a.RecMII != b.RecMII {
		return a.RecMII < b.RecMII
	}
	return a.Nodes[0] > b.Nodes[0]
}

// inducedSubgraph builds the subgraph over comp (component index ci in
// inComp), remapping node IDs densely. Trip count is inherited.
func (g *Graph) inducedSubgraph(comp []int, inComp []int, ci int) *Graph {
	sub := New(g.Name+"/scc", g.Niter)
	remap := make(map[int]int, len(comp))
	for _, v := range comp {
		remap[v] = sub.AddNode(g.Nodes[v].Op, g.Nodes[v].Name)
	}
	for _, e := range g.Edges {
		if inComp[e.From] == ci && inComp[e.To] == ci {
			sub.AddEdge(Edge{From: remap[e.From], To: remap[e.To], Lat: e.Lat, Dist: e.Dist, Kind: e.Kind})
		}
	}
	return sub
}
