package ddg

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
)

func TestUnrollShape(t *testing.T) {
	g := New("u", 100)
	a := g.AddNode(isa.Load, "x")
	b := g.AddNode(isa.FPAdd, "acc")
	g.AddEdge(Edge{From: a, To: b, Lat: 2, Kind: Data})
	g.AddEdge(Edge{From: b, To: b, Lat: 3, Dist: 1, Kind: Data})

	u, err := g.Unroll(3)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 6 {
		t.Errorf("unrolled nodes = %d, want 6", u.N())
	}
	if len(u.Edges) != 6 {
		t.Errorf("unrolled edges = %d, want 6", len(u.Edges))
	}
	if u.Niter != 34 {
		t.Errorf("unrolled trip = %d, want ceil(100/3)=34", u.Niter)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnrollDependenceRenaming(t *testing.T) {
	// A dist-1 self recurrence on node b (index 1) in a 2-node body,
	// unrolled by 2: copy0.b → copy1.b dist 0, copy1.b → copy0.b dist 1.
	g := New("u", 100)
	g.AddNode(isa.IntALU, "")
	b := g.AddNode(isa.IntALU, "")
	g.AddEdge(Edge{From: b, To: b, Lat: 1, Dist: 1, Kind: Data})
	u, err := g.Unroll(2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[[3]int]bool{{1, 3, 0}: true, {3, 1, 1}: true} // {from,to,dist}
	for _, e := range u.Edges {
		if !want[[3]int{e.From, e.To, e.Dist}] {
			t.Errorf("unexpected edge %+v", e)
		}
		delete(want, [3]int{e.From, e.To, e.Dist})
	}
	if len(want) != 0 {
		t.Errorf("missing edges: %v", want)
	}
}

func TestUnrollPreservesPerIterationRecurrenceBound(t *testing.T) {
	// The recurrence bound per ORIGINAL iteration is invariant under
	// unrolling: RecMII(unrolled)/factor == RecMII(original) for a simple
	// self-loop.
	g := New("u", 100)
	v := g.AddNode(isa.FPAdd, "")
	g.AddEdge(Edge{From: v, To: v, Lat: 6, Dist: 1, Kind: Data})
	base := g.RecMII(nil)
	for _, f := range []int{2, 3, 4} {
		u, err := g.Unroll(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := u.RecMII(nil); got != base*f {
			t.Errorf("factor %d: RecMII %d, want %d", f, got, base*f)
		}
	}
}

func TestUnrollResMIIScales(t *testing.T) {
	m := machine.NewUnified(64)
	g := New("u", 100)
	for i := 0; i < 4; i++ {
		g.AddNode(isa.Load, "")
	}
	// 4 loads on 4 mem units: ResMII 1; unrolled by 3: 12 loads → 3.
	u, err := g.Unroll(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.ResMII(m); got != 3 {
		t.Errorf("unrolled ResMII = %d, want 3", got)
	}
}

func TestUnrollIdentity(t *testing.T) {
	g := New("u", 10)
	g.AddNode(isa.IntALU, "")
	u, err := g.Unroll(1)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 1 || u.Niter != 10 {
		t.Error("Unroll(1) is not a clone")
	}
	if _, err := g.Unroll(0); err == nil {
		t.Error("Unroll(0) accepted")
	}
}

func TestUnrollNames(t *testing.T) {
	g := New("loop", 10)
	g.AddNode(isa.IntALU, "op")
	u, err := g.Unroll(2)
	if err != nil {
		t.Fatal(err)
	}
	if u.Name != "loop/u2" {
		t.Errorf("name = %q", u.Name)
	}
	if u.Nodes[0].Name != "op.0" || u.Nodes[1].Name != "op.1" {
		t.Errorf("node names = %q, %q", u.Nodes[0].Name, u.Nodes[1].Name)
	}
}
