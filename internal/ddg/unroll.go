package ddg

import "fmt"

// Unroll returns the loop body replicated factor times, the standard
// preprocessing for clustered modulo scheduling studied by Sánchez &
// González (ICPP 2000), which the paper cites as related work: unrolling
// widens the body so the partitioner has more independent work to spread
// across clusters.
//
// Node i of copy k maps to k·n + i. A dependence (u → v, lat, dist)
// becomes, for each copy k, an edge from copy k of u to copy
// (k + dist) mod factor of v with distance (k + dist) / factor — the
// standard modulo renaming of loop-carried dependences. The trip count is
// divided (rounded up, modelling the epilogue remainder as a full
// iteration). Unroll(1) returns a plain clone.
func (g *Graph) Unroll(factor int) (*Graph, error) {
	if factor < 1 {
		return nil, fmt.Errorf("ddg: unroll factor %d < 1", factor)
	}
	if factor == 1 {
		return g.Clone(), nil
	}
	n := g.N()
	u := New(fmt.Sprintf("%s/u%d", g.Name, factor), (g.Niter+factor-1)/factor)
	for k := 0; k < factor; k++ {
		for _, nd := range g.Nodes {
			name := nd.Name
			if name != "" {
				name = fmt.Sprintf("%s.%d", name, k)
			}
			u.AddNode(nd.Op, name)
		}
	}
	for _, e := range g.Edges {
		for k := 0; k < factor; k++ {
			kv := k + e.Dist
			u.AddEdge(Edge{
				From: k*n + e.From,
				To:   (kv%factor)*n + e.To,
				Lat:  e.Lat,
				Dist: kv / factor,
				Kind: e.Kind,
			})
		}
	}
	if err := u.Validate(); err != nil {
		return nil, fmt.Errorf("ddg: unroll produced invalid graph: %w", err)
	}
	return u, nil
}
