package ddg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

// The *Into analysis variants are the allocation-free backbone of the
// partitioner's refinement loop. They must match the classic entry points
// exactly and, once a Times is warm, stop allocating.

// TestIntoVariantsMatchClassic: one retained Times driven through a random
// sequence of analyses must reproduce StartTimes/EstimateTime/FeasibleII/
// RecMII exactly, including with per-edge extra latencies.
func TestIntoVariantsMatchClassic(t *testing.T) {
	m := machine.NewUnified(64)
	f := func(seed int64, iiBump uint8, which uint8, add uint8) bool {
		g := genGraph(seed, 24)
		extra := make([]int, len(g.Edges))
		extra[int(which)%len(g.Edges)] = int(add % 6)
		var reused Times
		r := rand.New(rand.NewSource(seed ^ 0x5eed))
		for probe := 0; probe < 8; probe++ {
			ii := 1 + r.Intn(g.RecMII(extra)+int(iiBump%4))
			ext := extra
			if r.Intn(2) == 0 {
				ext = nil
			}
			cyc, used := g.EstimateTime(m, ii, ext)
			cycInto, usedInto := g.EstimateTimeInto(m, ii, ext, &reused)
			if cyc != cycInto || used != usedInto {
				return false
			}
			want, ok := g.StartTimes(m, used, ext)
			if !ok {
				return false
			}
			// EstimateTimeInto leaves the ASAP half; LatestInto completes it.
			if !g.LatestInto(m, ext, &reused) {
				return false
			}
			if reused.II != want.II || reused.SL != want.SL {
				return false
			}
			for v := range g.Nodes {
				if reused.Earliest[v] != want.Earliest[v] || reused.Latest[v] != want.Latest[v] {
					return false
				}
			}
			// A fresh StartTimesInto must agree too (forward+backward path).
			if !g.StartTimesInto(m, used, ext, &reused) {
				return false
			}
			for v := range g.Nodes {
				if reused.Earliest[v] != want.Earliest[v] || reused.Latest[v] != want.Latest[v] {
					return false
				}
			}
			for i := range g.Edges {
				if g.Slack(&reused, i, ext) != g.Slack(want, i, ext) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestIntoInfeasibleMatchesClassic: below RecMII both paths must agree on
// infeasibility, and the reused buffers must stay usable afterwards.
func TestIntoInfeasibleMatchesClassic(t *testing.T) {
	m := machine.NewUnified(64)
	f := func(seed int64) bool {
		g := genGraph(seed, 20)
		rec := g.RecMII(nil)
		if rec <= 1 {
			return true
		}
		var reused Times
		if g.StartTimesInto(m, rec-1, nil, &reused) {
			return false // classic StartTimes also rejects rec-1
		}
		if _, ok := g.StartTimes(m, rec-1, nil); ok {
			return false
		}
		// The failed probe must not corrupt the buffers for the next call.
		if !g.StartTimesInto(m, rec, nil, &reused) {
			return false
		}
		want, _ := g.StartTimes(m, rec, nil)
		for v := range g.Nodes {
			if reused.Earliest[v] != want.Earliest[v] || reused.Latest[v] != want.Latest[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestIntoVariantsZeroAlloc pins the steady-state allocation contract: with
// a warm Times, the analyses allocate nothing.
func TestIntoVariantsZeroAlloc(t *testing.T) {
	m := machine.NewUnified(64)
	g := genGraph(99, 24)
	g.Freeze()
	extra := make([]int, len(g.Edges))
	var reused Times
	ii := g.RecMII(nil)
	g.EstimateTimeInto(m, ii, extra, &reused) // warm the buffers
	if n := testing.AllocsPerRun(50, func() {
		g.EstimateTimeInto(m, ii, extra, &reused)
		g.LatestInto(m, extra, &reused)
	}); n != 0 {
		t.Errorf("warm EstimateTimeInto+LatestInto allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		g.StartTimesInto(m, ii, extra, &reused)
	}); n != 0 {
		t.Errorf("warm StartTimesInto allocates %.1f/op, want 0", n)
	}
}
