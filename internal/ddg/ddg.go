// Package ddg implements the data dependence graphs (DDGs) of innermost
// loops that the paper's partitioner and modulo scheduler operate on.
//
// A DDG node is one operation of the loop body. A DDG edge (u → v, lat,
// dist) constrains the modulo schedule: operation v of iteration i+dist may
// not start before lat cycles after operation u of iteration i, i.e.
//
//	t(v) ≥ t(u) + lat − II·dist
//
// where II is the initiation interval. Edges with dist = 0 are
// intra-iteration dependences and must form a DAG; edges with dist > 0 are
// loop-carried and may close recurrence cycles.
//
// The package provides the static loop analyses the paper relies on:
// the resource-constrained minimum II (ResMII), the recurrence-constrained
// minimum II (RecMII, via positive-cycle detection on the constraint graph),
// earliest/latest start times for a given II, edge slack, and the
// software-pipelined execution-time estimate T = (niter−1)·II + SL used by
// the partitioner's delay(e) edge weights (paper §3.2.1).
package ddg

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/machine"
)

// Node is one operation of the loop body.
type Node struct {
	// ID is the node's index in Graph.Nodes.
	ID int
	// Op is the operation class, which determines the functional-unit kind
	// and the latency under a given machine.
	Op isa.OpClass
	// Name is an optional human-readable label ("load a[i]").
	Name string
}

// EdgeKind distinguishes true data dependences, which carry a register
// value, from memory and control ordering dependences, which do not.
type EdgeKind int8

const (
	// Data is a register flow dependence: the destination reads the value
	// produced by the source. Only Data edges consume registers and only
	// Data edges need an inter-cluster communication when cut.
	Data EdgeKind = iota
	// Mem is a memory ordering dependence (store→load, store→store, …).
	Mem
)

// String returns "data" or "mem".
func (k EdgeKind) String() string {
	if k == Data {
		return "data"
	}
	return "mem"
}

// Edge is a dependence between two operations.
type Edge struct {
	// From and To are node IDs.
	From, To int
	// Lat is the dependence latency in cycles (usually the producer's
	// operation latency for Data edges).
	Lat int
	// Dist is the iteration distance: 0 for intra-iteration dependences,
	// ≥ 1 for loop-carried ones.
	Dist int
	// Kind tells register dependences from memory ordering dependences.
	Kind EdgeKind
}

// Graph is the data dependence graph of one innermost loop.
//
// Build a Graph with New, AddNode and AddEdge, then call Validate (or use
// the top-level gpsched builder, which validates for you). Graphs are cheap
// to clone and the analyses never mutate the graph.
type Graph struct {
	// Name labels the loop ("tomcatv/loop3").
	Name string
	// Nodes and Edges are the operations and dependences. Node IDs are
	// dense indices into Nodes.
	Nodes []Node
	Edges []Edge
	// Niter is the profiled trip count of the loop, used by the
	// execution-time estimate. Must be ≥ 1.
	Niter int

	// out and in are adjacency lists of edge indices, built lazily.
	out, in [][]int
	dirty   bool
}

// New returns an empty DDG with the given name and profiled trip count.
func New(name string, niter int) *Graph {
	return &Graph{Name: name, Niter: niter, dirty: true}
}

// AddNode appends an operation and returns its node ID.
func (g *Graph) AddNode(op isa.OpClass, name string) int {
	id := len(g.Nodes)
	g.Nodes = append(g.Nodes, Node{ID: id, Op: op, Name: name})
	g.dirty = true
	return id
}

// AddEdge appends a dependence edge. It does not validate node IDs; call
// Validate after construction.
func (g *Graph) AddEdge(e Edge) {
	g.Edges = append(g.Edges, e)
	g.dirty = true
}

// AddDep is shorthand for adding a Data edge whose latency is the default
// latency of the producer's operation class.
func (g *Graph) AddDep(from, to, dist int) {
	lat := 1
	if from >= 0 && from < len(g.Nodes) {
		lat = isa.DefaultLatency(g.Nodes[from].Op)
	}
	g.AddEdge(Edge{From: from, To: to, Lat: lat, Dist: dist, Kind: Data})
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Nodes) }

// Clone returns a deep copy of the graph (adjacency caches are rebuilt
// lazily in the copy).
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name, Niter: g.Niter, dirty: true}
	c.Nodes = append([]Node(nil), g.Nodes...)
	c.Edges = append([]Edge(nil), g.Edges...)
	return c
}

// Validate checks structural invariants:
//   - node IDs are dense and match indices,
//   - edges reference valid nodes, with Lat ≥ 0 and Dist ≥ 0,
//   - Data edges originate from value-producing operations,
//   - the subgraph of dist-0 edges is acyclic,
//   - Niter ≥ 1.
func (g *Graph) Validate() error {
	if g.Niter < 1 {
		return fmt.Errorf("ddg %q: trip count %d < 1", g.Name, g.Niter)
	}
	for i, n := range g.Nodes {
		if n.ID != i {
			return fmt.Errorf("ddg %q: node %d has ID %d", g.Name, i, n.ID)
		}
		if !n.Op.Valid() {
			return fmt.Errorf("ddg %q: node %d has invalid op class %d", g.Name, i, int(n.Op))
		}
	}
	for i, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			return fmt.Errorf("ddg %q: edge %d (%d→%d) references missing node", g.Name, i, e.From, e.To)
		}
		if e.Lat < 0 {
			return fmt.Errorf("ddg %q: edge %d has negative latency %d", g.Name, i, e.Lat)
		}
		if e.Dist < 0 {
			return fmt.Errorf("ddg %q: edge %d has negative distance %d", g.Name, i, e.Dist)
		}
		if e.Kind == Data && !g.Nodes[e.From].Op.ProducesValue() {
			return fmt.Errorf("ddg %q: edge %d is a data edge from a store", g.Name, i)
		}
		if e.From == e.To && e.Dist == 0 {
			return fmt.Errorf("ddg %q: edge %d is a zero-distance self loop", g.Name, i)
		}
	}
	if !g.acyclicDist0() {
		return fmt.Errorf("ddg %q: zero-distance dependences form a cycle", g.Name)
	}
	return nil
}

// acyclicDist0 reports whether the dist-0 subgraph is a DAG (Kahn's
// algorithm).
func (g *Graph) acyclicDist0() bool {
	n := len(g.Nodes)
	indeg := make([]int, n)
	adj := make([][]int, n)
	for _, e := range g.Edges {
		if e.Dist == 0 {
			adj[e.From] = append(adj[e.From], e.To)
			indeg[e.To]++
		}
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, w := range adj[v] {
			if indeg[w]--; indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return seen == n
}

// buildAdj populates the adjacency caches.
func (g *Graph) buildAdj() {
	if !g.dirty && g.out != nil {
		return
	}
	n := len(g.Nodes)
	g.out = make([][]int, n)
	g.in = make([][]int, n)
	for i, e := range g.Edges {
		g.out[e.From] = append(g.out[e.From], i)
		g.in[e.To] = append(g.in[e.To], i)
	}
	g.dirty = false
}

// Freeze precomputes the lazily built adjacency caches so that subsequent
// read-only use of the graph (Out, In and every analysis built on them) is
// safe for concurrent readers. The experiment harness calls this before
// fanning a loop out to worker goroutines. Mutating the graph afterwards
// (AddNode, AddEdge, AddDep) makes it unsafe for concurrent use again until
// the next Freeze.
func (g *Graph) Freeze() { g.buildAdj() }

// Out returns the indices into Edges of v's outgoing edges.
func (g *Graph) Out(v int) []int { g.buildAdj(); return g.out[v] }

// In returns the indices into Edges of v's incoming edges.
func (g *Graph) In(v int) []int { g.buildAdj(); return g.in[v] }

// OpCounts returns the number of operations per functional-unit kind.
func (g *Graph) OpCounts() [isa.NumUnitKinds]int {
	var c [isa.NumUnitKinds]int
	for _, n := range g.Nodes {
		c[n.Op.Unit()]++
	}
	return c
}

// ResMII returns the resource-constrained minimum initiation interval on
// machine m: the most saturated functional-unit kind, machine-wide
// (cluster assignment is not yet known at MII time).
func (g *Graph) ResMII(m *machine.Config) int {
	mii := 1
	counts := g.OpCounts()
	for k := 0; k < isa.NumUnitKinds; k++ {
		total := m.TotalUnits(isa.UnitKind(k))
		if counts[k] == 0 {
			continue
		}
		if total == 0 {
			// No unit can execute these operations; treat as unbounded.
			return math.MaxInt32
		}
		if v := ceilDiv(counts[k], total); v > mii {
			mii = v
		}
	}
	return mii
}

// FeasibleII reports whether the recurrence constraints admit a schedule at
// initiation interval ii: the constraint graph with arc weights
// lat(e) − ii·dist(e) must contain no positive-weight cycle.
//
// Latency overrides for individual edges may be supplied through extra,
// indexed by edge (used by the partitioner's delay(e) and cut estimates);
// extra may be nil or shorter than Edges (missing entries are zero).
func (g *Graph) FeasibleII(ii int, extra []int) bool {
	var t Times
	return g.feasibleIIInto(ii, extra, &t)
}

// feasibleIIInto is FeasibleII probing with t.Earliest as the relaxation
// buffer (left in an unspecified state afterwards).
func (g *Graph) feasibleIIInto(ii int, extra []int, t *Times) bool {
	est, ok := g.longestPathsInto(ii, extra, t.Earliest)
	t.Earliest = est
	return ok
}

// RecMII returns the recurrence-constrained minimum initiation interval:
// the smallest ii ≥ 1 such that FeasibleII(ii, extra) holds. extra may be
// nil. The result is found by binary search over [1, maxLat·maxDistSum],
// using the property that feasibility is monotone in ii.
func (g *Graph) RecMII(extra []int) int {
	var t Times
	return g.recMIIInto(extra, &t)
}

// recMIIInto is RecMII using t's buffers for every feasibility probe.
func (g *Graph) recMIIInto(extra []int, t *Times) int {
	// Upper bound: the latency of any cycle is at most the sum of all edge
	// latencies, and every cycle has distance ≥ 1, so RecMII ≤ that sum.
	lo, hi := 1, 1
	for i, e := range g.Edges {
		lat := e.Lat + extraAt(extra, i)
		if lat > 0 {
			hi += lat
		}
	}
	if g.feasibleIIInto(lo, extra, t) {
		return lo
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if g.feasibleIIInto(mid, extra, t) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// MII returns the minimum initiation interval max(ResMII, RecMII) on m.
func (g *Graph) MII(m *machine.Config) int {
	res := g.ResMII(m)
	rec := g.RecMII(nil)
	if rec > res {
		return rec
	}
	return res
}

// longestPathsInto computes earliest start times consistent with II = ii
// using Bellman-Ford longest-path relaxation over arcs of weight
// lat − ii·dist, with every node's start clamped at ≥ 0. It reports
// ok = false when a positive-weight cycle exists (ii below RecMII). The
// relaxation runs in buf when its capacity suffices (the returned slice is
// always the buffer actually used, so callers can retain it for reuse).
func (g *Graph) longestPathsInto(ii int, extra []int, buf []int) (est []int, ok bool) {
	n := len(g.Nodes)
	est = resizeInts(buf, n)
	for i := range est {
		est[i] = 0 // every node may start at cycle 0
	}
	if n == 0 {
		return est, true
	}
	for round := 0; ; round++ {
		changed := false
		for i, e := range g.Edges {
			lat := e.Lat + extraAt(extra, i)
			if t := est[e.From] + lat - ii*e.Dist; t > est[e.To] {
				est[e.To] = t
				changed = true
			}
		}
		if !changed {
			return est, true
		}
		if round >= n {
			return est, false
		}
	}
}

// Times bundles the per-node earliest and latest start times for a given II
// together with the schedule length they imply.
type Times struct {
	II       int
	Earliest []int // ASAP start per node
	Latest   []int // ALAP start per node, for the same schedule length
	// SL is the schedule length: the maximum over nodes of
	// Earliest[v] + latency(v).
	SL int
}

// StartTimes computes earliest and latest start times for initiation
// interval ii on machine m, with optional per-edge latency additions. It
// reports ok = false when ii is below the recurrence-constrained minimum.
func (g *Graph) StartTimes(m *machine.Config, ii int, extra []int) (*Times, bool) {
	t := &Times{}
	if !g.StartTimesInto(m, ii, extra, t) {
		return nil, false
	}
	return t, true
}

// StartTimesInto is StartTimes writing into t: the Earliest and Latest
// buffers are reused when their capacity suffices, so a caller that keeps
// one Times across calls performs no allocation in the steady state. On
// ok = false, t's buffers remain usable but its contents are unspecified.
func (g *Graph) StartTimesInto(m *machine.Config, ii int, extra []int, t *Times) bool {
	return g.earliestInto(m, ii, extra, t) && g.LatestInto(m, extra, t)
}

// earliestInto computes the ASAP half of StartTimesInto: it fills t.II,
// t.Earliest and t.SL, reporting false when ii is below the
// recurrence-constrained minimum. t.Latest is left untouched.
func (g *Graph) earliestInto(m *machine.Config, ii int, extra []int, t *Times) bool {
	est, ok := g.longestPathsInto(ii, extra, t.Earliest)
	t.Earliest = est
	if !ok {
		return false
	}
	sl := 0
	for v := 0; v < len(g.Nodes); v++ {
		if f := est[v] + m.OpLatency(g.Nodes[v].Op); f > sl {
			sl = f
		}
	}
	t.II, t.SL = ii, sl
	return true
}

// LatestInto completes t with the ALAP start times for the schedule length
// already recorded in t: a backward relaxation from the deadline implied by
// t.SL, at t.II, with the same extra latencies the forward pass used.
// Callers that only need the execution-time estimate (no edge slacks) can
// skip this pass entirely — that is the point of the split: the refinement
// inner loop completes the tie-break slacks only for candidate moves whose
// primary key survives screening.
func (g *Graph) LatestInto(m *machine.Config, extra []int, t *Times) bool {
	n := len(g.Nodes)
	ii, sl := t.II, t.SL
	lst := resizeInts(t.Latest, n)
	t.Latest = lst
	for v := 0; v < n; v++ {
		lst[v] = sl - m.OpLatency(g.Nodes[v].Op)
	}
	for round := 0; ; round++ {
		changed := false
		for i, e := range g.Edges {
			lat := e.Lat + extraAt(extra, i)
			if t := lst[e.To] - lat + ii*e.Dist; t < lst[e.From] {
				lst[e.From] = t
				changed = true
			}
		}
		if !changed {
			return true
		}
		if round >= n {
			// Cannot happen when the forward pass succeeded, but guard
			// against inconsistent extra maps.
			return false
		}
	}
}

// Slack returns the slack of edge ei under the given start times: the
// number of delay cycles that could be added to the edge without affecting
// the schedule length (paper §3.2.1). The result is never negative.
func (g *Graph) Slack(t *Times, ei int, extra []int) int {
	e := g.Edges[ei]
	lat := e.Lat + extraAt(extra, ei)
	s := t.Latest[e.To] - t.Earliest[e.From] - lat + t.II*e.Dist
	if s < 0 {
		return 0
	}
	return s
}

// EstimateTime returns the estimated execution time, in cycles, of the
// software-pipelined loop at initiation interval ii:
//
//	T = (niter−1)·II + SL
//
// where SL is the dependence-constrained schedule length. When ii is below
// the recurrence-constrained minimum for the (possibly latency-extended)
// graph, the smallest feasible II ≥ ii is used instead, mirroring the
// paper's delay(e) definition where adding a bus latency to an edge may
// raise the II. The II actually used is returned alongside the time.
func (g *Graph) EstimateTime(m *machine.Config, ii int, extra []int) (cycles int64, usedII int) {
	var t Times
	return g.EstimateTimeInto(m, ii, extra, &t)
}

// EstimateTimeInto is EstimateTime reusing t's buffers for the feasibility
// probes, the RecMII search and the start-time computation — with a
// retained Times, zero allocations. The forward pass doubles as the
// feasibility probe (one relaxation instead of two in the common, feasible
// case). On return t holds the ASAP times at the used II: t.II, t.Earliest
// and t.SL are valid; t.Latest is NOT computed — call LatestInto when edge
// slacks are needed.
func (g *Graph) EstimateTimeInto(m *machine.Config, ii int, extra []int, t *Times) (cycles int64, usedII int) {
	use := ii
	if !g.earliestInto(m, use, extra, t) {
		// Infeasible at ii: the recurrence minimum is above it.
		if rec := g.recMIIInto(extra, t); rec > use {
			use = rec
		}
		if !g.earliestInto(m, use, extra, t) {
			// Unreachable: use ≥ RecMII by construction.
			panic("ddg: EstimateTime: infeasible II after RecMII adjustment")
		}
	}
	return int64(g.Niter-1)*int64(use) + int64(t.SL), use
}

// CriticalOps returns the node IDs whose earliest and latest start times
// coincide (zero mobility) under t.
func (g *Graph) CriticalOps(t *Times) []int {
	var crit []int
	for v := range g.Nodes {
		if t.Earliest[v] == t.Latest[v] {
			crit = append(crit, v)
		}
	}
	return crit
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// resizeInts returns s resliced to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func resizeInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// extraAt reads an optional per-edge latency addition.
func extraAt(extra []int, i int) int {
	if i < len(extra) {
		return extra[i]
	}
	return 0
}
