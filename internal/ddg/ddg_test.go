package ddg

import (
	"sync"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
)

// chain builds a linear chain of n IntALU ops with unit-latency deps.
func chain(n, niter int) *Graph {
	g := New("chain", niter)
	for i := 0; i < n; i++ {
		g.AddNode(isa.IntALU, "")
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(Edge{From: i, To: i + 1, Lat: 1, Dist: 0, Kind: Data})
	}
	return g
}

// selfRec builds a single-node recurrence: v depends on itself with the
// given latency and distance.
func selfRec(lat, dist, niter int) *Graph {
	g := New("rec", niter)
	v := g.AddNode(isa.IntALU, "")
	g.AddEdge(Edge{From: v, To: v, Lat: lat, Dist: dist, Kind: Data})
	return g
}

func TestValidateOK(t *testing.T) {
	g := chain(4, 10)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("badTrip", func(t *testing.T) {
		g := chain(2, 0)
		if g.Validate() == nil {
			t.Error("trip count 0 validated")
		}
	})
	t.Run("danglingEdge", func(t *testing.T) {
		g := chain(2, 5)
		g.AddEdge(Edge{From: 0, To: 7, Lat: 1})
		if g.Validate() == nil {
			t.Error("edge to missing node validated")
		}
	})
	t.Run("negativeLatency", func(t *testing.T) {
		g := chain(2, 5)
		g.AddEdge(Edge{From: 0, To: 1, Lat: -1})
		if g.Validate() == nil {
			t.Error("negative latency validated")
		}
	})
	t.Run("negativeDistance", func(t *testing.T) {
		g := chain(2, 5)
		g.AddEdge(Edge{From: 0, To: 1, Lat: 1, Dist: -1})
		if g.Validate() == nil {
			t.Error("negative distance validated")
		}
	})
	t.Run("dataFromStore", func(t *testing.T) {
		g := New("s", 5)
		s := g.AddNode(isa.Store, "")
		v := g.AddNode(isa.IntALU, "")
		g.AddEdge(Edge{From: s, To: v, Lat: 1, Kind: Data})
		if g.Validate() == nil {
			t.Error("data edge from store validated")
		}
	})
	t.Run("dist0SelfLoop", func(t *testing.T) {
		g := selfRec(1, 0, 5)
		if g.Validate() == nil {
			t.Error("zero-distance self loop validated")
		}
	})
	t.Run("dist0Cycle", func(t *testing.T) {
		g := chain(3, 5)
		g.AddEdge(Edge{From: 2, To: 0, Lat: 1, Dist: 0})
		if g.Validate() == nil {
			t.Error("zero-distance cycle validated")
		}
	})
	t.Run("memEdgeFromStoreOK", func(t *testing.T) {
		g := New("s", 5)
		s := g.AddNode(isa.Store, "")
		l := g.AddNode(isa.Load, "")
		g.AddEdge(Edge{From: s, To: l, Lat: 1, Kind: Mem})
		if err := g.Validate(); err != nil {
			t.Errorf("mem edge from store rejected: %v", err)
		}
	})
}

func TestResMII(t *testing.T) {
	m := machine.NewUnified(64) // 4 units of each kind
	g := New("res", 10)
	for i := 0; i < 9; i++ {
		g.AddNode(isa.Load, "")
	}
	// 9 loads on 4 memory units → ceil(9/4) = 3.
	if got := g.ResMII(m); got != 3 {
		t.Errorf("ResMII = %d, want 3", got)
	}
	// On a 4-cluster machine the total units are the same.
	c4 := machine.MustClustered(4, 64, 1, 1)
	if got := g.ResMII(c4); got != 3 {
		t.Errorf("4-cluster ResMII = %d, want 3", got)
	}
}

func TestResMIIEmptyKinds(t *testing.T) {
	m := machine.NewUnified(64)
	g := chain(3, 10) // 3 int ops, 4 int units → 1
	if got := g.ResMII(m); got != 1 {
		t.Errorf("ResMII = %d, want 1", got)
	}
}

func TestRecMIISelfLoop(t *testing.T) {
	// lat 4 dist 2 → RecMII = ceil(4/2) = 2; lat 5 dist 2 → 3.
	cases := []struct {
		lat, dist, want int
	}{
		{4, 2, 2}, {5, 2, 3}, {1, 1, 1}, {3, 1, 3}, {7, 3, 3},
	}
	for _, tc := range cases {
		g := selfRec(tc.lat, tc.dist, 10)
		if got := g.RecMII(nil); got != tc.want {
			t.Errorf("RecMII(lat=%d,dist=%d) = %d, want %d", tc.lat, tc.dist, got, tc.want)
		}
	}
}

func TestRecMIITwoNodeCycle(t *testing.T) {
	g := New("cyc", 10)
	a := g.AddNode(isa.FPAdd, "")
	b := g.AddNode(isa.FPMul, "")
	g.AddEdge(Edge{From: a, To: b, Lat: 3, Dist: 0, Kind: Data})
	g.AddEdge(Edge{From: b, To: a, Lat: 4, Dist: 1, Kind: Data})
	// Cycle latency 7 over distance 1 → RecMII 7.
	if got := g.RecMII(nil); got != 7 {
		t.Errorf("RecMII = %d, want 7", got)
	}
	if g.FeasibleII(6, nil) {
		t.Error("FeasibleII(6) = true below RecMII")
	}
	if !g.FeasibleII(7, nil) {
		t.Error("FeasibleII(7) = false at RecMII")
	}
}

func TestRecMIIAcyclic(t *testing.T) {
	g := chain(5, 10)
	if got := g.RecMII(nil); got != 1 {
		t.Errorf("RecMII of acyclic graph = %d, want 1", got)
	}
}

func TestRecMIIWithExtraLatency(t *testing.T) {
	g := New("cyc", 10)
	a := g.AddNode(isa.IntALU, "")
	b := g.AddNode(isa.IntALU, "")
	g.AddEdge(Edge{From: a, To: b, Lat: 1, Dist: 0, Kind: Data}) // edge 0
	g.AddEdge(Edge{From: b, To: a, Lat: 1, Dist: 1, Kind: Data}) // edge 1
	if got := g.RecMII(nil); got != 2 {
		t.Fatalf("base RecMII = %d, want 2", got)
	}
	// Adding 2 cycles of bus latency to edge 0 raises the cycle to 4.
	if got := g.RecMII([]int{2}); got != 4 {
		t.Errorf("RecMII with extra = %d, want 4", got)
	}
}

func TestStartTimesChain(t *testing.T) {
	m := machine.NewUnified(32)
	g := chain(4, 10)
	tt, ok := g.StartTimes(m, 1, nil)
	if !ok {
		t.Fatal("StartTimes infeasible")
	}
	want := []int{0, 1, 2, 3}
	for v, w := range want {
		if tt.Earliest[v] != w {
			t.Errorf("Earliest[%d] = %d, want %d", v, tt.Earliest[v], w)
		}
		if tt.Latest[v] != w {
			t.Errorf("Latest[%d] = %d, want %d (chain is critical)", v, tt.Latest[v], w)
		}
	}
	if tt.SL != 4 {
		t.Errorf("SL = %d, want 4", tt.SL)
	}
}

func TestStartTimesMobility(t *testing.T) {
	m := machine.NewUnified(32)
	// Diamond: a → b (lat 3, FPAdd), a → c (lat 1), b → d, c → d.
	g := New("diamond", 10)
	a := g.AddNode(isa.FPAdd, "a")
	b := g.AddNode(isa.FPAdd, "b")
	c := g.AddNode(isa.IntALU, "c")
	d := g.AddNode(isa.IntALU, "d")
	g.AddEdge(Edge{From: a, To: b, Lat: 3, Kind: Data})
	g.AddEdge(Edge{From: a, To: c, Lat: 3, Kind: Data})
	g.AddEdge(Edge{From: b, To: d, Lat: 3, Kind: Data})
	g.AddEdge(Edge{From: c, To: d, Lat: 1, Kind: Data})
	tt, ok := g.StartTimes(m, 1, nil)
	if !ok {
		t.Fatal("infeasible")
	}
	// Critical path a(3) b(3) d(1): SL = 7. c earliest 3, latest 5.
	if tt.SL != 7 {
		t.Fatalf("SL = %d, want 7", tt.SL)
	}
	if tt.Earliest[c] != 3 || tt.Latest[c] != 5 {
		t.Errorf("c window = [%d,%d], want [3,5]", tt.Earliest[c], tt.Latest[c])
	}
	// Slack of the short edge c→d: latest(d) - earliest(c) - lat = 6-3-1 = 2.
	if got := g.Slack(tt, 3, nil); got != 2 {
		t.Errorf("Slack(c→d) = %d, want 2", got)
	}
	// Critical edges have zero slack.
	if got := g.Slack(tt, 0, nil); got != 0 {
		t.Errorf("Slack(a→b) = %d, want 0", got)
	}
	crit := g.CriticalOps(tt)
	if len(crit) != 3 {
		t.Errorf("CriticalOps = %v, want {a,b,d}", crit)
	}
}

func TestSlackNonNegativeWithExtra(t *testing.T) {
	m := machine.NewUnified(32)
	g := chain(3, 10)
	tt, _ := g.StartTimes(m, 1, nil)
	// Extra latency beyond slack must clamp at 0 rather than go negative.
	if got := g.Slack(tt, 0, []int{100}); got != 0 {
		t.Errorf("Slack with huge extra = %d, want 0", got)
	}
}

func TestEstimateTime(t *testing.T) {
	m := machine.NewUnified(32)
	g := chain(4, 100)
	cyc, used := g.EstimateTime(m, 1, nil)
	if used != 1 {
		t.Errorf("usedII = %d, want 1", used)
	}
	// (100-1)*1 + 4 = 103.
	if cyc != 103 {
		t.Errorf("cycles = %d, want 103", cyc)
	}
}

func TestEstimateTimeRaisesII(t *testing.T) {
	m := machine.NewUnified(32)
	g := New("cyc", 50)
	a := g.AddNode(isa.IntALU, "")
	b := g.AddNode(isa.IntALU, "")
	g.AddEdge(Edge{From: a, To: b, Lat: 1, Dist: 0, Kind: Data})
	g.AddEdge(Edge{From: b, To: a, Lat: 1, Dist: 1, Kind: Data})
	// At requested II=1 the recurrence (total lat 2, dist 1) is infeasible;
	// EstimateTime must raise to II=2.
	cyc, used := g.EstimateTime(m, 1, nil)
	if used != 2 {
		t.Errorf("usedII = %d, want 2", used)
	}
	wantSL := 2 // a at 0, b at 1, b finishes at 2
	want := int64(49)*2 + int64(wantSL)
	if cyc != want {
		t.Errorf("cycles = %d, want %d", cyc, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := chain(3, 10)
	c := g.Clone()
	c.AddNode(isa.Load, "")
	c.AddEdge(Edge{From: 0, To: 3, Lat: 2, Kind: Data})
	if g.N() != 3 || len(g.Edges) != 2 {
		t.Errorf("mutating clone changed original: n=%d edges=%d", g.N(), len(g.Edges))
	}
	if c.N() != 4 || len(c.Edges) != 3 {
		t.Errorf("clone wrong shape: n=%d edges=%d", c.N(), len(c.Edges))
	}
}

func TestAdjacency(t *testing.T) {
	g := chain(3, 10)
	if got := g.Out(0); len(got) != 1 || g.Edges[got[0]].To != 1 {
		t.Errorf("Out(0) = %v", got)
	}
	if got := g.In(2); len(got) != 1 || g.Edges[got[0]].From != 1 {
		t.Errorf("In(2) = %v", got)
	}
	// Adjacency must refresh after mutation.
	g.AddEdge(Edge{From: 0, To: 2, Lat: 1})
	if got := g.Out(0); len(got) != 2 {
		t.Errorf("Out(0) after AddEdge = %v, want 2 edges", got)
	}
}

func TestOpCounts(t *testing.T) {
	g := New("mix", 5)
	g.AddNode(isa.Load, "")
	g.AddNode(isa.Store, "")
	g.AddNode(isa.FPMul, "")
	g.AddNode(isa.IntALU, "")
	c := g.OpCounts()
	if c[isa.MemUnit] != 2 || c[isa.FPUnit] != 1 || c[isa.IntUnit] != 1 {
		t.Errorf("OpCounts = %v", c)
	}
}

func TestMIIMaxOfBoth(t *testing.T) {
	m := machine.NewUnified(64)
	// Recurrence-bound: RecMII 5 > ResMII 1.
	g := selfRec(5, 1, 10)
	if got := g.MII(m); got != 5 {
		t.Errorf("MII = %d, want 5", got)
	}
	// Resource-bound: 9 loads, RecMII 1.
	h := New("res", 10)
	for i := 0; i < 9; i++ {
		h.AddNode(isa.Load, "")
	}
	if got := h.MII(m); got != 3 {
		t.Errorf("MII = %d, want 3", got)
	}
}

func TestEmptyGraph(t *testing.T) {
	m := machine.NewUnified(32)
	g := New("empty", 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := g.RecMII(nil); got != 1 {
		t.Errorf("RecMII = %d, want 1", got)
	}
	tt, ok := g.StartTimes(m, 1, nil)
	if !ok || tt.SL != 0 {
		t.Errorf("StartTimes: ok=%v SL=%d", ok, tt.SL)
	}
}

func TestSCCs(t *testing.T) {
	g := New("scc", 10)
	a := g.AddNode(isa.IntALU, "")
	b := g.AddNode(isa.IntALU, "")
	c := g.AddNode(isa.IntALU, "")
	d := g.AddNode(isa.IntALU, "")
	// a↔b cycle (through dist-1 back edge), c→d chain.
	g.AddEdge(Edge{From: a, To: b, Lat: 1, Dist: 0})
	g.AddEdge(Edge{From: b, To: a, Lat: 1, Dist: 1})
	g.AddEdge(Edge{From: b, To: c, Lat: 1, Dist: 0})
	g.AddEdge(Edge{From: c, To: d, Lat: 1, Dist: 0})
	comps := g.SCCs()
	if len(comps) != 3 {
		t.Fatalf("got %d SCCs, want 3: %v", len(comps), comps)
	}
	sizes := map[int]int{}
	for _, comp := range comps {
		sizes[len(comp)]++
	}
	if sizes[2] != 1 || sizes[1] != 2 {
		t.Errorf("SCC sizes wrong: %v", comps)
	}
}

func TestRecurrences(t *testing.T) {
	g := New("recs", 10)
	a := g.AddNode(isa.FPAdd, "")
	b := g.AddNode(isa.FPAdd, "")
	c := g.AddNode(isa.IntALU, "")
	// Recurrence 1: a→b lat 3, b→a lat 3 dist 1 → RecMII 6.
	g.AddEdge(Edge{From: a, To: b, Lat: 3, Dist: 0, Kind: Data})
	g.AddEdge(Edge{From: b, To: a, Lat: 3, Dist: 1, Kind: Data})
	// Recurrence 2: c self-loop lat 2 dist 1 → RecMII 2.
	g.AddEdge(Edge{From: c, To: c, Lat: 2, Dist: 1, Kind: Data})
	recs := g.Recurrences()
	if len(recs) != 2 {
		t.Fatalf("got %d recurrences, want 2", len(recs))
	}
	if recs[0].RecMII != 6 || recs[1].RecMII != 2 {
		t.Errorf("RecMIIs = %d,%d; want 6,2 (sorted descending)", recs[0].RecMII, recs[1].RecMII)
	}
	if len(recs[0].Nodes) != 2 || len(recs[1].Nodes) != 1 {
		t.Errorf("recurrence sizes = %d,%d; want 2,1", len(recs[0].Nodes), len(recs[1].Nodes))
	}
}

func TestRecurrencesNoneInDAG(t *testing.T) {
	g := chain(5, 10)
	if recs := g.Recurrences(); len(recs) != 0 {
		t.Errorf("DAG has %d recurrences, want 0", len(recs))
	}
}

func TestAddDepUsesProducerLatency(t *testing.T) {
	g := New("dep", 5)
	a := g.AddNode(isa.FPMul, "") // default latency 4
	b := g.AddNode(isa.IntALU, "")
	g.AddDep(a, b, 0)
	if got := g.Edges[0].Lat; got != 4 {
		t.Errorf("AddDep latency = %d, want 4", got)
	}
}

// TestFreezeAllowsConcurrentReaders pins Freeze's contract: after a
// Freeze, read-only analyses on the same graph are safe from multiple
// goroutines (run under -race to enforce it).
func TestFreezeAllowsConcurrentReaders(t *testing.T) {
	g := New("conc", 100)
	a := g.AddNode(isa.Load, "")
	b := g.AddNode(isa.FPAdd, "")
	c := g.AddNode(isa.Store, "")
	g.AddDep(a, b, 0)
	g.AddDep(b, c, 0)
	g.AddDep(b, b, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = g.Out(a)
				_ = g.In(c)
				_ = g.RecMII(nil)
				_ = g.SCCs()
			}
		}()
	}
	wg.Wait()
}

func TestResMIIHeterogeneousMachine(t *testing.T) {
	// Six FP ops on a machine whose FP units are unevenly split (1 + 3):
	// the machine-wide bound is ceil(6/4) = 2, not 6/1 or 6/3.
	m := machine.MustHetero("het", []machine.ClusterSpec{
		{Units: [isa.NumUnitKinds]int{3, 1, 2}, Regs: 16},
		{Units: [isa.NumUnitKinds]int{1, 3, 2}, Regs: 16},
	}, machine.SharedBus, 1, 1, false)
	g := New("fp6", 10)
	for i := 0; i < 6; i++ {
		g.AddNode(isa.FPAdd, "")
	}
	if got := g.ResMII(m); got != 2 {
		t.Errorf("ResMII = %d, want 2 (summed per-cluster FP units)", got)
	}
	// A kind with units in only one cluster bounds at that cluster's count.
	noInt1 := machine.MustHetero("het2", []machine.ClusterSpec{
		{Units: [isa.NumUnitKinds]int{2, 1, 1}, Regs: 16},
		{Units: [isa.NumUnitKinds]int{0, 3, 3}, Regs: 16},
	}, machine.SharedBus, 1, 1, false)
	gi := New("int4", 10)
	for i := 0; i < 4; i++ {
		gi.AddNode(isa.IntALU, "")
	}
	if got := gi.ResMII(noInt1); got != 2 {
		t.Errorf("ResMII = %d, want 2 (4 ops / 2 INT units, all in cluster 0)", got)
	}
}
