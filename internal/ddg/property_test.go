package ddg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/machine"
)

// genGraph builds a random valid loop body from a seed.
func genGraph(seed int64, maxN int) *Graph {
	r := rand.New(rand.NewSource(seed))
	n := 2 + r.Intn(maxN)
	g := New("prop", 1+r.Intn(300))
	ops := []isa.OpClass{isa.IntALU, isa.IntMul, isa.FPAdd, isa.FPMul, isa.FPDiv, isa.Load}
	for i := 0; i < n; i++ {
		g.AddNode(ops[r.Intn(len(ops))], "")
	}
	for i := 1; i < n; i++ {
		from := r.Intn(i)
		g.AddEdge(Edge{From: from, To: i, Lat: isa.DefaultLatency(g.Nodes[from].Op), Kind: Data})
	}
	for k := 0; k < r.Intn(4); k++ {
		to := r.Intn(n - 1)
		from := to + 1 + r.Intn(n-to-1)
		g.AddEdge(Edge{From: from, To: to, Lat: isa.DefaultLatency(g.Nodes[from].Op), Dist: 1 + r.Intn(3), Kind: Data})
	}
	return g
}

// Property: feasibility is monotone in II.
func TestPropFeasibilityMonotone(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(seed, 20)
		rec := g.RecMII(nil)
		return !g.FeasibleII(rec-1, nil) || rec == 1
	}
	g2 := func(seed int64) bool {
		g := genGraph(seed, 20)
		rec := g.RecMII(nil)
		return g.FeasibleII(rec, nil) && g.FeasibleII(rec+1, nil) && g.FeasibleII(rec+7, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
	if err := quick.Check(g2, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: extra latency never lowers RecMII.
func TestPropRecMIIMonotoneInLatency(t *testing.T) {
	f := func(seed int64, which uint8, add uint8) bool {
		g := genGraph(seed, 16)
		base := g.RecMII(nil)
		extra := make([]int, len(g.Edges))
		extra[int(which)%len(g.Edges)] = int(add % 8)
		return g.RecMII(extra) >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: earliest ≤ latest for every node, slack ≥ 0 for every edge, and
// every edge constraint holds under the earliest times.
func TestPropStartTimesConsistent(t *testing.T) {
	m := machine.NewUnified(64)
	f := func(seed int64, iiBump uint8) bool {
		g := genGraph(seed, 24)
		ii := g.RecMII(nil) + int(iiBump%5)
		times, ok := g.StartTimes(m, ii, nil)
		if !ok {
			return false
		}
		for v := range g.Nodes {
			if times.Earliest[v] > times.Latest[v] {
				return false
			}
		}
		for i, e := range g.Edges {
			if g.Slack(times, i, nil) < 0 {
				return false
			}
			if times.Earliest[e.To]+ii*e.Dist < times.Earliest[e.From]+e.Lat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: EstimateTime is consistent with its parts and monotone in the
// trip count.
func TestPropEstimateTimeStructure(t *testing.T) {
	m := machine.NewUnified(64)
	f := func(seed int64) bool {
		g := genGraph(seed, 20)
		ii := g.RecMII(nil)
		cyc, used := g.EstimateTime(m, ii, nil)
		if used < ii {
			return false
		}
		times, ok := g.StartTimes(m, used, nil)
		if !ok {
			return false
		}
		return cyc == int64(g.Niter-1)*int64(used)+int64(times.SL)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the MII never exceeds an achievable schedule bound and is
// positive; SCC decomposition covers each node exactly once.
func TestPropSCCPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(seed, 24)
		seen := make([]int, g.N())
		for _, comp := range g.SCCs() {
			for _, v := range comp {
				seen[v]++
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: unrolling preserves validity and scales node count.
func TestPropUnrollValid(t *testing.T) {
	f := func(seed int64, fRaw uint8) bool {
		g := genGraph(seed, 12)
		factor := 1 + int(fRaw%4)
		u, err := g.Unroll(factor)
		if err != nil {
			return false
		}
		return u.N() == factor*g.N() && len(u.Edges) == factor*len(g.Edges) && u.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
