package regpress

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naive is the per-cycle reference implementation the optimized tracker
// must match: every cycle of every span walked individually, exactly as the
// pre-optimization code did.
type naive struct {
	ii   int
	live []int
	used int64
}

func newNaive(ii int) *naive { return &naive{ii: ii, live: make([]int, ii)} }

func (n *naive) slot(t int) int {
	s := t % n.ii
	if s < 0 {
		s += n.ii
	}
	return s
}

func (n *naive) add(start, end int) {
	for t := start; t < end; t++ {
		n.live[n.slot(t)]++
		n.used++
	}
}

func (n *naive) remove(start, end int) {
	for t := start; t < end; t++ {
		n.live[n.slot(t)]--
		n.used--
	}
}

func (n *naive) canAdd(spans []Span, regs int) bool {
	tmp := make([]int, n.ii)
	copy(tmp, n.live)
	for _, sp := range spans {
		for t := sp.Start; t < sp.End; t++ {
			s := n.slot(t)
			if tmp[s]++; tmp[s] > regs {
				return false
			}
		}
	}
	return true
}

func (n *naive) fitsWith(rem, add []Span, regs int) bool {
	tmp := make([]int, n.ii)
	copy(tmp, n.live)
	for _, sp := range rem {
		for t := sp.Start; t < sp.End; t++ {
			tmp[n.slot(t)]--
		}
	}
	for _, sp := range add {
		for t := sp.Start; t < sp.End; t++ {
			tmp[n.slot(t)]++
		}
	}
	for _, v := range tmp {
		if v > regs {
			return false
		}
	}
	return true
}

// randSpan draws a span with negative starts and lengths well beyond II, so
// the clamped whole-window fast path is exercised.
func randSpan(r *rand.Rand, ii int) Span {
	start := r.Intn(6*ii) - 3*ii
	length := r.Intn(3*ii + 2)
	return Span{Start: start, End: start + length}
}

// TestPropClampedMatchesNaive drives random add/remove sequences through
// the optimized tracker and the per-cycle reference in lockstep: the live
// windows, MaxLive and Used must agree after every operation, and
// CanAdd/FitsWith probes must return the same verdicts.
func TestPropClampedMatchesNaive(t *testing.T) {
	f := func(seed int64, iiRaw uint8, regsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ii := 1 + int(iiRaw)%13
		regs := 1 + int(regsRaw)%8
		p := New(ii)
		n := newNaive(ii)
		var added []Span
		for step := 0; step < 60; step++ {
			switch op := r.Intn(4); {
			case op == 0 && len(added) > 0: // remove a previously added span
				i := r.Intn(len(added))
				sp := added[i]
				added = append(added[:i], added[i+1:]...)
				p.Remove(sp.Start, sp.End)
				n.remove(sp.Start, sp.End)
			case op == 1: // probe CanAdd
				spans := []Span{randSpan(r, ii), randSpan(r, ii)}
				if p.CanAdd(spans, regs) != n.canAdd(spans, regs) {
					return false
				}
			case op == 2: // probe FitsWith over a subset of live spans
				var rem []Span
				if len(added) > 0 {
					rem = []Span{added[r.Intn(len(added))]}
				}
				add := []Span{randSpan(r, ii)}
				scratch := make([]int, ii)
				if p.FitsWith(rem, add, regs, scratch) != n.fitsWith(rem, add, regs) {
					return false
				}
			default:
				sp := randSpan(r, ii)
				added = append(added, sp)
				p.Add(sp.Start, sp.End)
				n.add(sp.Start, sp.End)
			}
			if p.MaxLive() != maxOf(n.live) || p.Used() != n.used {
				return false
			}
			for s := 0; s < ii; s++ {
				if p.live[s] != n.live[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func maxOf(s []int) int {
	m := 0
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// TestRemoveUnderflowPanics pins the misuse guard: removing a span that was
// never added must panic once a slot would go negative.
func TestRemoveUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Remove of a never-added span did not panic")
		}
	}()
	p := New(4)
	p.Add(0, 2)
	p.Remove(0, 8) // length ≥ II: exercises the whole-window fast path too
}

func BenchmarkAddLongSpan(b *testing.B) {
	p := New(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Add(0, 4096)
		p.Remove(0, 4096)
	}
}
