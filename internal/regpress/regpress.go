// Package regpress tracks register pressure of a modulo schedule.
//
// A value live over the absolute cycle interval [start, end) occupies one
// register in every cycle of the interval; in the steady state of a
// software-pipelined loop, cycle t maps to modulo slot t mod II, so an
// interval longer than II contributes several simultaneously-live copies
// to the same slot (the overlapped lifetimes of consecutive iterations).
// MaxLive — the maximum over slots of the live count — must not exceed the
// cluster's register-file size; the URACAM figure of merit additionally
// uses the consumed fraction of the total lifetime capacity regs·II
// (paper §3.3.1).
package regpress

import "fmt"

// Pressure tracks live-value counts per modulo slot for one cluster.
type Pressure struct {
	II      int
	live    []int
	used    int64 // total live slot-units across the window
	scratch []int // CanAdd probe window, lazily allocated and retained
}

// New returns an empty pressure tracker at initiation interval ii ≥ 1.
func New(ii int) *Pressure {
	if ii < 1 {
		panic(fmt.Sprintf("regpress: II %d < 1", ii))
	}
	return &Pressure{II: ii, live: make([]int, ii)}
}

// spanApply adds delta to every slot covered by [start, end), walking at
// most min(end−start, ii) cycles: a span of length L ≥ ii saturates every
// modulo slot ⌊L/ii⌋ times (whole-window fast path, one pass over buf),
// and only the L mod ii remainder cycles starting at start need the
// per-cycle walk. Returns the span length (0 for empty/inverted spans).
func spanApply(buf []int, ii, start, end, delta int) int {
	length := end - start
	if length <= 0 {
		return 0
	}
	if q := length / ii; q > 0 {
		w := q * delta
		for s := range buf {
			buf[s] += w
		}
	}
	r := length % ii
	s := start % ii
	if s < 0 {
		s += ii
	}
	for i := 0; i < r; i++ {
		buf[s] += delta
		if s++; s == ii {
			s = 0
		}
	}
	return length
}

// Add marks a value live over [start, end). Empty or inverted intervals are
// no-ops.
func (p *Pressure) Add(start, end int) {
	p.used += int64(spanApply(p.live, p.II, start, end, 1))
}

// Remove undoes a prior Add of exactly [start, end).
func (p *Pressure) Remove(start, end int) {
	length := end - start
	if length <= 0 {
		return
	}
	if q := length / p.II; q > 0 {
		for s := range p.live {
			if p.live[s] -= q; p.live[s] < 0 {
				panic(fmt.Sprintf("regpress: removing from empty slot %d", s))
			}
		}
	}
	r := length % p.II
	s := start % p.II
	if s < 0 {
		s += p.II
	}
	for i := 0; i < r; i++ {
		if p.live[s]--; p.live[s] < 0 {
			panic(fmt.Sprintf("regpress: removing from empty slot %d", s))
		}
		if s++; s == p.II {
			s = 0
		}
	}
	p.used -= int64(length)
}

// MaxLive returns the maximum simultaneous live count across slots.
func (p *Pressure) MaxLive() int {
	m := 0
	for _, v := range p.live {
		if v > m {
			m = v
		}
	}
	return m
}

// Used returns the total live slot-units.
func (p *Pressure) Used() int64 { return p.used }

// Free returns the remaining lifetime capacity against a register file of
// the given size: regs·II − used (never negative).
func (p *Pressure) Free(regs int) int64 {
	f := int64(regs)*int64(p.II) - p.used
	if f < 0 {
		return 0
	}
	return f
}

// Span is a half-open absolute-cycle interval.
type Span struct{ Start, End int }

// Len returns the span's length (0 when inverted).
func (s Span) Len() int {
	if s.End <= s.Start {
		return 0
	}
	return s.End - s.Start
}

// CanAdd reports whether adding all spans keeps MaxLive ≤ regs. It does not
// modify the tracker. The scratch window is retained on the tracker, so
// repeated probes allocate nothing after the first.
func (p *Pressure) CanAdd(spans []Span, regs int) bool {
	if len(spans) == 0 {
		return p.MaxLive() <= regs
	}
	if p.scratch == nil {
		p.scratch = make([]int, p.II)
	}
	tmp := p.scratch
	copy(tmp, p.live)
	for _, sp := range spans {
		spanApply(tmp, p.II, sp.Start, sp.End, 1)
	}
	// The naive walk rejects only when a slot it increments exceeds regs —
	// pre-existing overflow in slots the spans never touch does not fail
	// the probe — and counts only grow while adding, so checking each
	// span's covered slots after applying everything is equivalent.
	for _, sp := range spans {
		length := sp.End - sp.Start
		if length <= 0 {
			continue
		}
		if length >= p.II {
			// Whole window covered: one scan settles every span.
			for _, v := range tmp {
				if v > regs {
					return false
				}
			}
			return true
		}
		s := sp.Start % p.II
		if s < 0 {
			s += p.II
		}
		for i := 0; i < length; i++ {
			if tmp[s] > regs {
				return false
			}
			if s++; s == p.II {
				s = 0
			}
		}
	}
	return true
}

// FitsWith reports whether, after removing the rem spans and adding the
// add spans, MaxLive stays within regs. scratch must have length II; it is
// overwritten (callers reuse one buffer to avoid allocation). The tracker
// itself is not modified.
func (p *Pressure) FitsWith(rem, add []Span, regs int, scratch []int) bool {
	copy(scratch, p.live)
	for _, sp := range rem {
		spanApply(scratch, p.II, sp.Start, sp.End, -1)
	}
	for _, sp := range add {
		spanApply(scratch, p.II, sp.Start, sp.End, 1)
	}
	for _, v := range scratch {
		if v > regs {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (p *Pressure) Clone() *Pressure {
	c := &Pressure{II: p.II, used: p.used, live: make([]int, p.II)}
	copy(c.live, p.live)
	return c
}
