// Package regpress tracks register pressure of a modulo schedule.
//
// A value live over the absolute cycle interval [start, end) occupies one
// register in every cycle of the interval; in the steady state of a
// software-pipelined loop, cycle t maps to modulo slot t mod II, so an
// interval longer than II contributes several simultaneously-live copies
// to the same slot (the overlapped lifetimes of consecutive iterations).
// MaxLive — the maximum over slots of the live count — must not exceed the
// cluster's register-file size; the URACAM figure of merit additionally
// uses the consumed fraction of the total lifetime capacity regs·II
// (paper §3.3.1).
package regpress

import "fmt"

// Pressure tracks live-value counts per modulo slot for one cluster.
type Pressure struct {
	II   int
	live []int
	used int64 // total live slot-units across the window
}

// New returns an empty pressure tracker at initiation interval ii ≥ 1.
func New(ii int) *Pressure {
	if ii < 1 {
		panic(fmt.Sprintf("regpress: II %d < 1", ii))
	}
	return &Pressure{II: ii, live: make([]int, ii)}
}

// Add marks a value live over [start, end). Empty or inverted intervals are
// no-ops.
func (p *Pressure) Add(start, end int) {
	for t := start; t < end; t++ {
		s := t % p.II
		if s < 0 {
			s += p.II
		}
		p.live[s]++
		p.used++
	}
}

// Remove undoes a prior Add of exactly [start, end).
func (p *Pressure) Remove(start, end int) {
	for t := start; t < end; t++ {
		s := t % p.II
		if s < 0 {
			s += p.II
		}
		if p.live[s] <= 0 {
			panic(fmt.Sprintf("regpress: removing from empty slot %d", s))
		}
		p.live[s]--
		p.used--
	}
}

// MaxLive returns the maximum simultaneous live count across slots.
func (p *Pressure) MaxLive() int {
	m := 0
	for _, v := range p.live {
		if v > m {
			m = v
		}
	}
	return m
}

// Used returns the total live slot-units.
func (p *Pressure) Used() int64 { return p.used }

// Free returns the remaining lifetime capacity against a register file of
// the given size: regs·II − used (never negative).
func (p *Pressure) Free(regs int) int64 {
	f := int64(regs)*int64(p.II) - p.used
	if f < 0 {
		return 0
	}
	return f
}

// Span is a half-open absolute-cycle interval.
type Span struct{ Start, End int }

// Len returns the span's length (0 when inverted).
func (s Span) Len() int {
	if s.End <= s.Start {
		return 0
	}
	return s.End - s.Start
}

// CanAdd reports whether adding all spans keeps MaxLive ≤ regs. It does not
// modify the tracker.
func (p *Pressure) CanAdd(spans []Span, regs int) bool {
	if len(spans) == 0 {
		return p.MaxLive() <= regs
	}
	tmp := make([]int, p.II)
	copy(tmp, p.live)
	for _, sp := range spans {
		for t := sp.Start; t < sp.End; t++ {
			s := t % p.II
			if s < 0 {
				s += p.II
			}
			if tmp[s]++; tmp[s] > regs {
				return false
			}
		}
	}
	return true
}

// FitsWith reports whether, after removing the rem spans and adding the
// add spans, MaxLive stays within regs. scratch must have length II; it is
// overwritten (callers reuse one buffer to avoid allocation). The tracker
// itself is not modified.
func (p *Pressure) FitsWith(rem, add []Span, regs int, scratch []int) bool {
	copy(scratch, p.live)
	for _, sp := range rem {
		for t := sp.Start; t < sp.End; t++ {
			s := t % p.II
			if s < 0 {
				s += p.II
			}
			scratch[s]--
		}
	}
	for _, sp := range add {
		for t := sp.Start; t < sp.End; t++ {
			s := t % p.II
			if s < 0 {
				s += p.II
			}
			scratch[s]++
		}
	}
	for _, v := range scratch {
		if v > regs {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (p *Pressure) Clone() *Pressure {
	c := &Pressure{II: p.II, used: p.used, live: make([]int, p.II)}
	copy(c.live, p.live)
	return c
}
