package regpress

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddRemoveRoundTrip(t *testing.T) {
	p := New(4)
	p.Add(2, 9) // 7 units
	if p.Used() != 7 {
		t.Errorf("Used = %d, want 7", p.Used())
	}
	p.Remove(2, 9)
	if p.Used() != 0 || p.MaxLive() != 0 {
		t.Errorf("after remove: used=%d maxlive=%d", p.Used(), p.MaxLive())
	}
}

func TestMaxLiveWraparound(t *testing.T) {
	// II=3, interval [0,7): slots get ceil coverage 3,2,2 → MaxLive 3.
	p := New(3)
	p.Add(0, 7)
	if got := p.MaxLive(); got != 3 {
		t.Errorf("MaxLive = %d, want 3 (lifetime spans 2⅓ iterations)", got)
	}
}

func TestOverlappingValues(t *testing.T) {
	p := New(4)
	p.Add(0, 2)
	p.Add(1, 3)
	p.Add(2, 4)
	// Slot live counts: s0:1, s1:2, s2:2, s3:1.
	if got := p.MaxLive(); got != 2 {
		t.Errorf("MaxLive = %d, want 2", got)
	}
}

func TestEmptyAndInvertedIntervals(t *testing.T) {
	p := New(5)
	p.Add(3, 3)
	p.Add(7, 2)
	if p.Used() != 0 {
		t.Errorf("empty/inverted intervals consumed %d units", p.Used())
	}
}

func TestNegativeCycles(t *testing.T) {
	p := New(4)
	p.Add(-2, 1) // cycles -2,-1,0 → slots 2,3,0
	if p.Used() != 3 || p.MaxLive() != 1 {
		t.Errorf("used=%d maxlive=%d, want 3,1", p.Used(), p.MaxLive())
	}
	p.Remove(-2, 1)
	if p.Used() != 0 {
		t.Error("negative interval not removed cleanly")
	}
}

func TestFreeCapacity(t *testing.T) {
	p := New(4)
	if got := p.Free(8); got != 32 {
		t.Errorf("Free = %d, want 32", got)
	}
	p.Add(0, 10)
	if got := p.Free(8); got != 22 {
		t.Errorf("Free = %d, want 22", got)
	}
	if got := p.Free(2); got != 0 {
		t.Errorf("Free with tiny file = %d, want 0 (clamped)", got)
	}
}

func TestCanAdd(t *testing.T) {
	p := New(2)
	p.Add(0, 2) // one value live the whole window
	if !p.CanAdd([]Span{{0, 2}}, 2) {
		t.Error("CanAdd refused second value with 2 registers")
	}
	if p.CanAdd([]Span{{0, 2}}, 1) {
		t.Error("CanAdd allowed overflow with 1 register")
	}
	// CanAdd must not mutate.
	if p.Used() != 2 || p.MaxLive() != 1 {
		t.Errorf("CanAdd mutated tracker: used=%d maxlive=%d", p.Used(), p.MaxLive())
	}
}

func TestCanAddNoSpans(t *testing.T) {
	p := New(2)
	p.Add(0, 4) // MaxLive 2
	if !p.CanAdd(nil, 2) {
		t.Error("CanAdd(nil) should report current feasibility")
	}
	if p.CanAdd(nil, 1) {
		t.Error("CanAdd(nil) should reject when already over")
	}
}

func TestRemovePanicsOnUnderflow(t *testing.T) {
	p := New(3)
	defer func() {
		if recover() == nil {
			t.Error("Remove on empty tracker did not panic")
		}
	}()
	p.Remove(0, 1)
}

func TestSpanLen(t *testing.T) {
	if (Span{3, 7}).Len() != 4 {
		t.Error("Span{3,7}.Len() != 4")
	}
	if (Span{7, 3}).Len() != 0 {
		t.Error("inverted span must have length 0")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := New(3)
	p.Add(0, 5)
	c := p.Clone()
	c.Add(0, 3)
	if p.Used() != 5 {
		t.Errorf("mutating clone changed original: used=%d", p.Used())
	}
	if c.Used() != 8 {
		t.Errorf("clone used=%d, want 8", c.Used())
	}
}

// Property: Used equals the sum of interval lengths, and MaxLive ≥
// Used/II ≥ MaxLive/II bounds hold.
func TestUsedMatchesIntervalSum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ii := r.Intn(16) + 1
		p := New(ii)
		var total int64
		for i := 0; i < r.Intn(20); i++ {
			s := r.Intn(40) - 10
			l := r.Intn(30)
			p.Add(s, s+l)
			total += int64(l)
		}
		if p.Used() != total {
			return false
		}
		// MaxLive·II ≥ Used.
		return int64(p.MaxLive())*int64(ii) >= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
