package core

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/schedule"
	"repro/internal/workload"
)

// portfolioCorpus returns a deterministic slice of real loops: the first
// loop of each SPECfp95 benchmark.
func portfolioCorpus() []*workload.Loop {
	var loops []*workload.Loop
	for _, bm := range workload.SPECfp95() {
		loops = append(loops, bm.Loops[0])
	}
	return loops
}

// TestPortfolioK1EqualsSequential pins that Portfolio=1 (and 0) takes the
// sequential path and produces exactly today's output.
func TestPortfolioK1EqualsSequential(t *testing.T) {
	m := machine.MustClustered(4, 64, 1, 1)
	for _, l := range portfolioCorpus() {
		base, err := ScheduleLoop(l.G, m, nil)
		if err != nil {
			t.Fatalf("%s: %v", l.G.Name, err)
		}
		for _, k := range []int{0, 1} {
			got, err := ScheduleLoop(l.G, m, &Options{Portfolio: k})
			if err != nil {
				t.Fatalf("%s K=%d: %v", l.G.Name, k, err)
			}
			if !reflect.DeepEqual(got.Schedule, base.Schedule) || !reflect.DeepEqual(got.Assign, base.Assign) {
				t.Errorf("%s: Portfolio=%d output differs from sequential", l.G.Name, k)
			}
			if got.PortfolioSeed != 0 {
				t.Errorf("%s: Portfolio=%d reported seed %d", l.G.Name, k, got.PortfolioSeed)
			}
		}
	}
}

// TestPortfolioDeterministicAndNeverWorse pins the two acceptance
// properties: for fixed K the result is bit-identical across runs (no
// goroutine-interleaving leakage), and K=4 never finishes at a worse II
// than K=1 (seed 0 always races). Every winner must satisfy the
// independent verifier.
func TestPortfolioDeterministicAndNeverWorse(t *testing.T) {
	m := machine.MustClustered(4, 64, 1, 1)
	for _, l := range portfolioCorpus() {
		seq, err := ScheduleLoop(l.G, m, nil)
		if err != nil {
			t.Fatalf("%s: %v", l.G.Name, err)
		}
		a, err := ScheduleLoop(l.G, m, &Options{Portfolio: 4})
		if err != nil {
			t.Fatalf("%s K=4: %v", l.G.Name, err)
		}
		b, err := ScheduleLoop(l.G, m, &Options{Portfolio: 4})
		if err != nil {
			t.Fatalf("%s K=4 rerun: %v", l.G.Name, err)
		}
		if !reflect.DeepEqual(a.Schedule, b.Schedule) || !reflect.DeepEqual(a.Assign, b.Assign) ||
			a.PortfolioSeed != b.PortfolioSeed {
			t.Errorf("%s: K=4 output differs between runs", l.G.Name)
		}
		if !a.ListFallback && a.Schedule.II > seq.Schedule.II {
			t.Errorf("%s: K=4 II %d worse than K=1 II %d", l.G.Name, a.Schedule.II, seq.Schedule.II)
		}
		if a.PortfolioSeed < 0 || a.PortfolioSeed >= 4 {
			t.Errorf("%s: winner seed %d out of range", l.G.Name, a.PortfolioSeed)
		}
		if !a.ListFallback {
			if err := schedule.Verify(l.G, m, a.Schedule); err != nil {
				t.Errorf("%s: K=4 winner fails verification: %v", l.G.Name, err)
			}
		}
	}
}

// TestPortfolioURACAMIgnored pins that URACAM (no partition to vary)
// ignores the portfolio knob rather than spawning pointless racers.
func TestPortfolioURACAMIgnored(t *testing.T) {
	g := sampleLoop()
	m := machine.MustClustered(2, 32, 1, 1)
	base, err := ScheduleLoop(g, m, &Options{Algorithm: URACAM})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ScheduleLoop(g, m, &Options{Algorithm: URACAM, Portfolio: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Schedule, base.Schedule) || got.Partitions != 0 {
		t.Errorf("URACAM portfolio output differs from sequential")
	}
}
