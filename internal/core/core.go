// Package core implements the paper's primary contribution: the GP code
// generation framework (Figure 1) that couples the multilevel
// graph-partitioning cluster assignment with the URACAM-based modulo
// scheduler.
//
// The control flow follows §3.1 exactly:
//
//  1. Compute the MII and partition the DDG at that II; the partition also
//     yields IIbus, the bus-imposed II bound.
//  2. Try to schedule at the current II — which starts at the MII even when
//     IIbus is larger, "on the hope that some communications will be
//     performed through memory instead of the bus".
//  3. On failure, increase the II. The GP scheme recomputes the partition
//     only when IIbus > II (the partition, not the machine resources, is
//     the binding constraint); the Fixed Partition variant never
//     recomputes; URACAM never had a partition.
//  4. Loops whose II escalates past a limit fall back to acyclic list
//     scheduling, as the paper does for the few loops where modulo
//     scheduling becomes inappropriate (§4.1).
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/schedule"
)

// Algorithm selects one of the compared schedulers.
type Algorithm int8

const (
	// GP is the paper's scheme: graph partitioning, flexible scheduling,
	// selective repartitioning.
	GP Algorithm = iota
	// FixedPartition follows the initial partition rigidly and only ever
	// raises the II.
	FixedPartition
	// URACAM is the best previously published scheme: integrated per-node
	// cluster assignment with no global partition.
	URACAM
)

var algNames = [...]string{"GP", "Fixed", "URACAM"}

// String returns the algorithm's short name as used in tables.
func (a Algorithm) String() string {
	if a < 0 || int(a) >= len(algNames) {
		return fmt.Sprintf("Algorithm(%d)", int8(a))
	}
	return algNames[a]
}

// Options configures ScheduleLoop. The zero value is the paper-faithful GP
// configuration.
type Options struct {
	// Algorithm selects the scheduling scheme.
	Algorithm Algorithm
	// Partition tunes the graph partitioner (ablations); nil for defaults.
	Partition *partition.Options
	// MeritThreshold is forwarded to the scheduler's figure of merit.
	MeritThreshold float64
	// IIWindow bounds how far past the MII the II may escalate before the
	// list-scheduling fallback engages. Zero means the default MII+64.
	IIWindow int
	// Portfolio, when > 1, races K deterministically-seeded partition
	// starts (seeds 0..K−1; seed 0 is the canonical paper start) in
	// parallel at every II of the escalation and keeps the best schedule
	// under a fixed tie-break: lowest II, then the partition's
	// execution-time bound, then seed index. Output is byte-identical for a
	// given K, and never a worse II than Portfolio=1 (seed 0 always races).
	// Ignored for URACAM, which has no partition to vary. Values above 16
	// are clamped; 0 and 1 mean the sequential paper path.
	Portfolio int
	// Arena, when non-nil, supplies the partitioner's scratch arena so a
	// serving path can pool the cold-path allocations across requests. Only
	// the sequential (Portfolio ≤ 1) path uses it; portfolio search
	// acquires one pooled arena per seed. The arena must not be shared with
	// a concurrent ScheduleLoop call.
	Arena *partition.Arena
}

// maxPortfolio caps the racer count: past this the marginal II benefit is
// noise while goroutine and arena cost keep growing.
const maxPortfolio = 16

func (o *Options) window() int {
	if o.IIWindow > 0 {
		return o.IIWindow
	}
	return 64
}

func (o *Options) portfolio() int {
	if o.Portfolio > maxPortfolio {
		return maxPortfolio
	}
	if o.Portfolio > 1 {
		return o.Portfolio
	}
	return 1
}

// Result is the outcome of scheduling one loop.
type Result struct {
	// Schedule is the final schedule (modulo or list).
	Schedule *schedule.Schedule
	// Assign is the cluster assignment actually used (nil for URACAM with
	// list fallback).
	Assign []int
	// MII is the lower bound the search started from.
	MII int
	// IIBus is the bus bound of the final partition (0 for URACAM).
	IIBus int
	// Partitions counts partition computations (≥ 1 for GP/Fixed).
	Partitions int
	// Attempts counts scheduling attempts (II values tried).
	Attempts int
	// ListFallback reports that modulo scheduling was abandoned.
	ListFallback bool
	// PortfolioSeed is the seed index of the winning portfolio racer (0
	// when Portfolio ≤ 1: the canonical start).
	PortfolioSeed int
	// Elapsed is the wall-clock scheduling time, the paper's Table 2 metric.
	Elapsed time.Duration

	// Phase wall times within Elapsed: MII computation, partitioning
	// (cumulative over recomputations; for portfolio search, the wall time
	// of the parallel partition phases, not the sum over racers), and
	// scheduling attempts. Feeds the serving daemons' trace phases.
	MIIDur, PartitionDur, ScheduleDur time.Duration
	// RefineMoves totals refinement transformations across every partition
	// computed for this loop (all portfolio racers included).
	RefineMoves int64
	// Candidate-screening tallies summed over the same partitions; see
	// partition.Result.
	ScreenLowerBound, ScreenExact, ScreenFull int64
}

// addPartStats folds one partition computation's work counters into the
// result.
func (r *Result) addPartStats(p *partition.Result) {
	r.RefineMoves += int64(p.Moves)
	r.ScreenLowerBound += p.ScreenLowerBound
	r.ScreenExact += p.ScreenExact
	r.ScreenFull += p.ScreenFull
}

// IPC returns executed operations per cycle for the loop's profiled trip
// count, counting the loop's original operations (spill code and
// communications are overhead, not useful work).
func (r *Result) IPC(g *ddg.Graph) float64 {
	cyc := r.Schedule.Cycles(g.Niter)
	if cyc <= 0 {
		return 0
	}
	return float64(int64(g.N())*int64(g.Niter)) / float64(cyc)
}

// ScheduleLoop schedules one loop on machine m with the selected algorithm.
func ScheduleLoop(g *ddg.Graph, m *machine.Config, opts *Options) (*Result, error) {
	return ScheduleLoopContext(context.Background(), g, m, opts)
}

// ScheduleLoopContext is ScheduleLoop with cancellation: the II escalation
// loop checks ctx between scheduling attempts, so a canceled context stops
// the search promptly and returns ctx's error. The experiment harness uses
// this to abandon in-flight work when a sibling loop fails.
func ScheduleLoopContext(ctx context.Context, g *ddg.Graph, m *machine.Config, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	start := time.Now()
	res := &Result{MII: g.MII(m)}
	res.MIIDur = time.Since(start)

	if opts.portfolio() > 1 && opts.Algorithm != URACAM {
		return schedulePortfolio(ctx, g, m, opts, start, res)
	}

	var assign []int
	var part *partition.Result
	partitioner := partition.NewWithArena(g, m, opts.Partition, opts.Arena)
	mode := schedule.ModeURACAM
	switch opts.Algorithm {
	case GP, FixedPartition:
		pt0 := time.Now()
		part = partitioner.Partition(res.MII)
		res.PartitionDur += time.Since(pt0)
		res.addPartStats(part)
		res.Partitions++
		assign = part.Assign
		res.IIBus = part.IIBus
		mode = schedule.ModeGP
		if opts.Algorithm == FixedPartition {
			mode = schedule.ModeFixed
		}
	case URACAM:
		// no partition phase
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", opts.Algorithm)
	}

	limit := res.MII + opts.window()
	for ii := res.MII; ii <= limit; ii++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: %s at II=%d: %w", g.Name, ii, err)
		}
		res.Attempts++
		sopts := &schedule.Options{Mode: mode, Assign: assign, MeritThreshold: opts.MeritThreshold}
		st0 := time.Now()
		s, fail := schedule.TrySchedule(g, m, ii, sopts)
		res.ScheduleDur += time.Since(st0)
		if fail == nil {
			res.Schedule = s
			res.Assign = assign
			res.Elapsed = time.Since(start)
			return res, nil
		}
		// II will be raised; the GP scheme recomputes the partition when
		// the bus bound exceeds the raised II (§3.1).
		if opts.Algorithm == GP && part != nil && part.IIBus > ii+1 {
			pt0 := time.Now()
			part = partitioner.Partition(ii + 1)
			res.PartitionDur += time.Since(pt0)
			res.addPartStats(part)
			res.Partitions++
			assign = part.Assign
			res.IIBus = part.IIBus
		}
	}

	// Modulo scheduling inappropriate for this loop: list-schedule it.
	res.ListFallback = true
	res.Schedule = schedule.ListSchedule(g, m, assign)
	res.Assign = assign
	res.Elapsed = time.Since(start)
	return res, nil
}
