// Portfolio refinement: race K seeded partition starts per II.
//
// The multilevel partitioner's initial placement (heaviest coarsest
// macro-node first) is a heuristic; refinement only ever improves locally
// from it, so a different — equally deterministic — starting permutation can
// land in a better basin and admit a schedule at a lower II. Portfolio
// search exploits idle cores by racing K such starts: seed 0 is always the
// canonical paper start, seeds 1..K−1 shuffle the coarsest-level seeding
// order with a splitmix64-driven permutation (partition.Options.Seed). At
// every II of the escalation all K candidates attempt a schedule in
// parallel; the first II with any success ends the search, and among the
// successes the winner is chosen by the fixed tie-break (partition
// execution-time bound, then seed index), so the output is byte-identical
// for a given K regardless of goroutine interleaving.
//
// Because seed 0 replays exactly the sequential path's partition trajectory
// (including the §3.1 IIbus > II repartition rule, applied per candidate),
// Portfolio=K can never finish at a worse II than Portfolio=1.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/schedule"
)

// candidate is one portfolio racer: its partitioner (with a pooled arena),
// current partition, and the schedule of the most recent II attempt.
type candidate struct {
	pt   *partition.Partitioner
	ar   *partition.Arena
	part *partition.Result
	s    *schedule.Schedule
}

// schedulePortfolio runs the II escalation with opts.portfolio() seeded
// starts racing at every II. res arrives with MII set and is completed in
// place. Only GP and FixedPartition reach here.
func schedulePortfolio(ctx context.Context, g *ddg.Graph, m *machine.Config, opts *Options, start time.Time, res *Result) (*Result, error) {
	k := opts.portfolio()
	// The racers share g read-only; pre-building the lazy adjacency lists
	// makes that sharing safe.
	g.Freeze()

	mode := schedule.ModeGP
	if opts.Algorithm == FixedPartition {
		mode = schedule.ModeFixed
	}

	cands := make([]candidate, k)
	var wg sync.WaitGroup
	pt0 := time.Now()
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var po partition.Options
			if opts.Partition != nil {
				po = *opts.Partition
			}
			po.Seed = s
			ar := partition.AcquireArena()
			pt := partition.NewWithArena(g, m, &po, ar)
			cands[s] = candidate{pt: pt, ar: ar, part: pt.Partition(res.MII)}
		}(s)
	}
	wg.Wait()
	res.PartitionDur += time.Since(pt0)
	defer func() {
		for i := range cands {
			cands[i].ar.Release()
		}
	}()
	res.Partitions += k
	for s := 0; s < k; s++ {
		res.addPartStats(cands[s].part)
	}
	res.IIBus = cands[0].part.IIBus

	limit := res.MII + opts.window()
	for ii := res.MII; ii <= limit; ii++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: %s at II=%d: %w", g.Name, ii, err)
		}
		res.Attempts++
		st0 := time.Now()
		for s := 0; s < k; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sopts := &schedule.Options{Mode: mode, Assign: cands[s].part.Assign, MeritThreshold: opts.MeritThreshold}
				sc, fail := schedule.TrySchedule(g, m, ii, sopts)
				if fail != nil {
					sc = nil
				}
				cands[s].s = sc
			}(s)
		}
		wg.Wait()
		res.ScheduleDur += time.Since(st0)

		// All successes share this II, so the tie-break reduces to: best
		// partition execution-time bound, then lowest seed (strict < keeps
		// the lowest seed on ties).
		win := -1
		for s := 0; s < k; s++ {
			if cands[s].s == nil {
				continue
			}
			if win == -1 || cands[s].part.EstTime < cands[win].part.EstTime {
				win = s
			}
		}
		if win >= 0 {
			res.Schedule = cands[win].s
			res.Assign = cands[win].part.Assign
			res.IIBus = cands[win].part.IIBus
			res.PortfolioSeed = win
			res.Elapsed = time.Since(start)
			return res, nil
		}

		// The II will be raised; each GP candidate applies the §3.1
		// repartition rule against its own bus bound.
		if opts.Algorithm == GP {
			rt0 := time.Now()
			var redone []int
			for s := 0; s < k; s++ {
				if cands[s].part.IIBus <= ii+1 {
					continue
				}
				res.Partitions++
				redone = append(redone, s)
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					cands[s].part = cands[s].pt.Partition(ii + 1)
				}(s)
			}
			wg.Wait()
			if len(redone) > 0 {
				res.PartitionDur += time.Since(rt0)
				for _, s := range redone {
					res.addPartStats(cands[s].part)
				}
			}
			res.IIBus = cands[0].part.IIBus
		}
	}

	// Modulo scheduling inappropriate for this loop: list-schedule it from
	// seed 0's trajectory, exactly as the sequential path would.
	res.ListFallback = true
	res.Assign = cands[0].part.Assign
	res.IIBus = cands[0].part.IIBus
	res.Schedule = schedule.ListSchedule(g, m, cands[0].part.Assign)
	res.Elapsed = time.Since(start)
	return res, nil
}
