package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ddg"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/schedule"
	"repro/internal/workload"
)

func sampleLoop() *ddg.Graph {
	g := ddg.New("sample", 200)
	x := g.AddNode(isa.Load, "")
	m := g.AddNode(isa.FPMul, "")
	a := g.AddNode(isa.FPAdd, "")
	s := g.AddNode(isa.Store, "")
	g.AddDep(x, m, 0)
	g.AddDep(m, a, 0)
	g.AddDep(a, s, 0)
	g.AddDep(a, a, 1)
	return g
}

func TestScheduleLoopAllAlgorithms(t *testing.T) {
	g := sampleLoop()
	m := machine.MustClustered(2, 32, 1, 1)
	for _, alg := range []Algorithm{GP, FixedPartition, URACAM} {
		res, err := ScheduleLoop(g, m, &Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Schedule == nil {
			t.Fatalf("%v: nil schedule", alg)
		}
		if err := res.Schedule.Validate(g, m); err != nil {
			t.Errorf("%v: invalid schedule: %v", alg, err)
		}
		if res.Schedule.II < res.MII {
			t.Errorf("%v: II %d below MII %d", alg, res.Schedule.II, res.MII)
		}
		if res.Attempts < 1 {
			t.Errorf("%v: no attempts recorded", alg)
		}
		if alg == URACAM && res.Partitions != 0 {
			t.Errorf("URACAM computed %d partitions", res.Partitions)
		}
		if alg != URACAM && res.Partitions < 1 {
			t.Errorf("%v: no partition computed", alg)
		}
		if res.IPC(g) <= 0 {
			t.Errorf("%v: IPC %v", alg, res.IPC(g))
		}
	}
}

func TestScheduleLoopUnified(t *testing.T) {
	g := sampleLoop()
	m := machine.NewUnified(64)
	res, err := ScheduleLoop(g, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.IIBus != 0 {
		t.Errorf("unified IIBus = %d", res.IIBus)
	}
	if len(res.Schedule.Comms) != 0 {
		t.Errorf("unified schedule has comms")
	}
	// The recurrence a→a (FPAdd, lat 3, dist 1) bounds the II at 3.
	if res.Schedule.II != 3 {
		t.Errorf("II = %d, want 3 (RecMII)", res.Schedule.II)
	}
}

func TestInvalidGraphRejected(t *testing.T) {
	g := ddg.New("bad", 0) // trip count 0
	g.AddNode(isa.IntALU, "")
	if _, err := ScheduleLoop(g, machine.NewUnified(32), nil); err == nil {
		t.Error("invalid graph scheduled")
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	g := sampleLoop()
	if _, err := ScheduleLoop(g, machine.NewUnified(32), &Options{Algorithm: Algorithm(9)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestListFallbackEngages(t *testing.T) {
	// An absurdly long recurrence with a tiny II window forces the
	// fallback.
	g := ddg.New("long", 10)
	a := g.AddNode(isa.IntALU, "")
	b := g.AddNode(isa.IntALU, "")
	g.AddEdge(ddg.Edge{From: a, To: b, Lat: 200, Dist: 0, Kind: ddg.Data})
	g.AddEdge(ddg.Edge{From: b, To: a, Lat: 200, Dist: 1, Kind: ddg.Data})
	m := machine.MustClustered(2, 32, 1, 1)
	res, err := ScheduleLoop(g, m, &Options{IIWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	// RecMII = 400 which is schedulable at once, actually. IIWindow=1
	// limits attempts to MII..MII+1, so modulo scheduling should still
	// succeed; force the fallback instead with an impossible Fixed
	// assignment.
	_ = res
	jam := ddg.New("jam", 10)
	for i := 0; i < 5; i++ {
		jam.AddNode(isa.IntALU, "")
	}
	// All five on one 2-wide cluster at II ≤ 2 is impossible; with a tiny
	// II window Fixed must fall back to list scheduling.
	res2, err := ScheduleLoop(jam, m, &Options{Algorithm: FixedPartition, IIWindow: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Schedule == nil {
		t.Fatal("no schedule")
	}
	// (The partitioner balances the jam across clusters, so modulo
	// scheduling normally succeeds; just check the result is valid.)
	if err := res2.Schedule.Validate(jam, m); err != nil {
		t.Error(err)
	}
}

func TestGPRepartitionsOnBusBound(t *testing.T) {
	// A graph whose natural partition needs many communications: IIbus
	// exceeds the MII, so a failed schedule should trigger repartitioning.
	r := rand.New(rand.NewSource(3))
	g := ddg.New("comm-heavy", 100)
	var producers []int
	for i := 0; i < 24; i++ {
		v := g.AddNode(isa.IntALU, "")
		for k := 0; k < 2 && len(producers) > 0; k++ {
			from := producers[r.Intn(len(producers))]
			g.AddDep(from, v, 0)
		}
		producers = append(producers, v)
	}
	m := machine.MustClustered(4, 64, 1, 2)
	res, err := ScheduleLoop(g, m, &Options{Algorithm: GP})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(g, m); err != nil {
		t.Error(err)
	}
	t.Logf("II=%d attempts=%d partitions=%d IIbus=%d",
		res.Schedule.II, res.Attempts, res.Partitions, res.IIBus)
}

func TestFixedNeverRepartitions(t *testing.T) {
	g := sampleLoop()
	m := machine.MustClustered(4, 32, 1, 2)
	res, err := ScheduleLoop(g, m, &Options{Algorithm: FixedPartition})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 1 {
		t.Errorf("Fixed computed %d partitions, want exactly 1", res.Partitions)
	}
}

func TestAlgorithmString(t *testing.T) {
	if GP.String() != "GP" || FixedPartition.String() != "Fixed" || URACAM.String() != "URACAM" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(9).String() == "" {
		t.Error("out-of-range algorithm name empty")
	}
}

func TestDeterministicResults(t *testing.T) {
	g := sampleLoop()
	m := machine.MustClustered(2, 32, 1, 1)
	a, err := ScheduleLoop(g, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScheduleLoop(g, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule.II != b.Schedule.II || a.Schedule.SL != b.Schedule.SL {
		t.Errorf("non-deterministic: II %d/%d SL %d/%d", a.Schedule.II, b.Schedule.II, a.Schedule.SL, b.Schedule.SL)
	}
	for v := range a.Schedule.Time {
		if a.Schedule.Time[v] != b.Schedule.Time[v] || a.Schedule.Cluster[v] != b.Schedule.Cluster[v] {
			t.Fatalf("placement differs at node %d", v)
		}
	}
}

func TestInputGraphNotMutated(t *testing.T) {
	g := sampleLoop()
	nodes, edges := len(g.Nodes), len(g.Edges)
	m := machine.MustClustered(2, 32, 1, 1)
	for _, alg := range []Algorithm{GP, FixedPartition, URACAM} {
		if _, err := ScheduleLoop(g, m, &Options{Algorithm: alg}); err != nil {
			t.Fatal(err)
		}
		if len(g.Nodes) != nodes || len(g.Edges) != edges {
			t.Fatalf("%v mutated the input graph", alg)
		}
	}
}

func TestScheduleLoopContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ScheduleLoopContext(ctx, sampleLoop(), machine.MustClustered(2, 32, 1, 1), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ScheduleLoopContext on canceled ctx = %v, want context.Canceled", err)
	}
}

func TestScheduleLoopContextBackground(t *testing.T) {
	res, err := ScheduleLoopContext(context.Background(), sampleLoop(), machine.MustClustered(2, 32, 1, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ScheduleLoop(sampleLoop(), machine.MustClustered(2, 32, 1, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.II != seq.Schedule.II || res.Attempts != seq.Attempts {
		t.Errorf("context run II=%d attempts=%d differs from plain run II=%d attempts=%d",
			res.Schedule.II, res.Attempts, seq.Schedule.II, seq.Attempts)
	}
}

// TestVerifyOracleAllSchemesAndMachines is the differential oracle: every
// scheme × machine × loop combination must produce a schedule that the
// independent schedule.Verify checker accepts, across the paper's
// homogeneous grid and the generalized machines (heterogeneous unit mixes,
// uneven register files, pipelined bus, point-to-point links).
func TestVerifyOracleAllSchemesAndMachines(t *testing.T) {
	het := machine.MustHetero("het2/24+40reg", []machine.ClusterSpec{
		{Units: [isa.NumUnitKinds]int{3, 1, 2}, Regs: 24},
		{Units: [isa.NumUnitKinds]int{1, 3, 2}, Regs: 40},
	}, machine.SharedBus, 1, 1, false)
	pipe := machine.MustClustered(4, 64, 1, 2)
	pipe.Pipelined = true
	pipe.Name = "4-cluster/64reg/1pbus/lat2"
	p2p := machine.MustClustered(2, 32, 1, 1)
	p2p.Topology = machine.PointToPoint
	p2p.Name = "2-cluster/32reg/p2p/lat1"
	machines := []*machine.Config{
		machine.NewUnified(64),
		machine.MustClustered(2, 32, 1, 1),
		machine.MustClustered(4, 64, 1, 2),
		het,
		pipe,
		p2p,
	}

	var loops []*ddg.Graph
	loops = append(loops, sampleLoop())
	for _, bm := range workload.SPECfp95()[:3] {
		loops = append(loops, bm.Loops[0].G)
	}
	for _, bm := range workload.DSP()[:3] {
		loops = append(loops, bm.Loops[0].G)
	}

	for _, m := range machines {
		for _, alg := range []Algorithm{GP, FixedPartition, URACAM} {
			for _, g := range loops {
				res, err := ScheduleLoop(g, m, &Options{Algorithm: alg})
				if err != nil {
					t.Fatalf("%s/%v/%s: %v", m.Name, alg, g.Name, err)
				}
				if err := schedule.Verify(g, m, res.Schedule); err != nil {
					t.Errorf("%s/%v/%s: oracle: %v", m.Name, alg, g.Name, err)
				}
			}
		}
	}
}

func TestHeterogeneousMachineKeepsOpsOnCapableClusters(t *testing.T) {
	// A machine whose cluster 0 has no FP units: every FP op must land in
	// cluster 1, for every scheme.
	m := machine.MustHetero("nofp0", []machine.ClusterSpec{
		{Units: [isa.NumUnitKinds]int{3, 0, 2}, Regs: 32},
		{Units: [isa.NumUnitKinds]int{1, 4, 2}, Regs: 32},
	}, machine.SharedBus, 1, 1, false)
	g := sampleLoop()
	for _, alg := range []Algorithm{GP, FixedPartition, URACAM} {
		res, err := ScheduleLoop(g, m, &Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for v, nd := range g.Nodes {
			if nd.Op.Unit() == isa.FPUnit && res.Schedule.Cluster[v] != 1 {
				t.Errorf("%v: FP op %d in cluster %d, which has no FP units", alg, v, res.Schedule.Cluster[v])
			}
		}
		if err := schedule.Verify(g, m, res.Schedule); err != nil {
			t.Errorf("%v: oracle: %v", alg, err)
		}
	}
}
