package gpsched

import (
	"bytes"
	"testing"
)

func buildDaxpy() *DDG {
	g := NewLoop("daxpy", 1000)
	x := g.AddNode(Load, "x[i]")
	y := g.AddNode(Load, "y[i]")
	m := g.AddNode(FPMul, "a*x")
	a := g.AddNode(FPAdd, "+y")
	s := g.AddNode(Store, "y[i]=")
	g.AddDep(x, m, 0)
	g.AddDep(m, a, 0)
	g.AddDep(y, a, 0)
	g.AddDep(a, s, 0)
	return g
}

func TestQuickstartFlow(t *testing.T) {
	g := buildDaxpy()
	m := Clustered(2, 64, 1, 1)
	res, err := Run(g, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.II < MII(g, m) {
		t.Errorf("II %d below MII %d", res.Schedule.II, MII(g, m))
	}
	if err := res.Schedule.Validate(g, m); err != nil {
		t.Error(err)
	}
	if res.IPC(g) <= 0 {
		t.Error("non-positive IPC")
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	g := buildDaxpy()
	m := Clustered(2, 32, 1, 2)
	var ipcs []float64
	for _, alg := range []Algorithm{GP, FixedPartition, URACAM} {
		res, err := Run(g, m, &Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		ipcs = append(ipcs, res.IPC(g))
	}
	for i, ipc := range ipcs {
		if ipc <= 0 {
			t.Errorf("algorithm %d: IPC %v", i, ipc)
		}
	}
}

func TestFacadePartition(t *testing.T) {
	g := buildDaxpy()
	m := Clustered(4, 64, 1, 1)
	res := Partition(g, m, MII(g, m), nil)
	if len(res.Assign) != g.N() {
		t.Fatalf("assignment length %d", len(res.Assign))
	}
	for _, c := range res.Assign {
		if c < 0 || c >= 4 {
			t.Fatalf("bad cluster %d", c)
		}
	}
}

func TestFacadeIO(t *testing.T) {
	g := buildDaxpy()
	var buf bytes.Buffer
	if err := WriteLoops(&buf, g); err != nil {
		t.Fatal(err)
	}
	loops, err := ReadLoops(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 || loops[0].N() != g.N() {
		t.Fatal("facade IO round trip failed")
	}
}

func TestFacadeCorpus(t *testing.T) {
	corpus := SPECfp95Corpus()
	if len(corpus) != 10 {
		t.Fatalf("corpus size %d", len(corpus))
	}
	// Schedule one loop of the first benchmark through the facade.
	g := corpus[0].Loops[0].G
	res, err := Run(g, Unified(64), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(g, Unified(64)); err != nil {
		t.Error(err)
	}
}

func TestUnifiedNeverWorseThanClustered(t *testing.T) {
	// The unified machine is the paper's upper bound: for every corpus
	// loop, GP on the unified machine must reach an IPC at least as high
	// as GP on the 2-cluster machine (same total resources).
	uni := Unified(64)
	clu := Clustered(2, 64, 1, 1)
	for _, bm := range SPECfp95Corpus()[:2] {
		for _, l := range bm.Loops {
			ru, err := Run(l.G, uni, nil)
			if err != nil {
				t.Fatal(err)
			}
			rc, err := Run(l.G, clu, nil)
			if err != nil {
				t.Fatal(err)
			}
			if rc.Schedule.II < ru.Schedule.II {
				t.Errorf("%s: clustered II %d beat unified II %d",
					l.G.Name, rc.Schedule.II, ru.Schedule.II)
			}
		}
	}
}
