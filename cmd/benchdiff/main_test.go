package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func writeSnapshot(t *testing.T, dir, name string, benchmarks []bench.PerfBenchmark) string {
	t.Helper()
	snap := bench.PerfSnapshot{GoVersion: "go-test", Benchmarks: benchmarks, LoopsScheduled: 81, SchedulesPerSec: 100}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baselineBenchmarks() []bench.PerfBenchmark {
	return []bench.PerfBenchmark{
		{Name: "partition_medium_2cluster", Iterations: 100, NsPerOp: 1000, AllocsPerOp: 50},
		{Name: "partition_large_4cluster", Iterations: 100, NsPerOp: 5000, AllocsPerOp: 200},
		{Name: "evaluate_steady_state", Iterations: 1000, NsPerOp: 2500, AllocsPerOp: 0},
	}
}

func TestBenchdiffPass(t *testing.T) {
	dir := t.TempDir()
	base := writeSnapshot(t, dir, "base.json", baselineBenchmarks())
	cur := writeSnapshot(t, dir, "cur.json", []bench.PerfBenchmark{
		{Name: "partition_medium_2cluster", NsPerOp: 1250, AllocsPerOp: 50}, // +25% < 30%
		{Name: "partition_large_4cluster", NsPerOp: 4000, AllocsPerOp: 190}, // faster
		{Name: "evaluate_steady_state", NsPerOp: 2400, AllocsPerOp: 0},      // allocation-free held
		{Name: "brand_new_benchmark", NsPerOp: 123456, AllocsPerOp: 999},    // new entries never gate
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "PASS") {
		t.Fatalf("no PASS in output: %s", stdout.String())
	}
}

func TestBenchdiffNsPerOpRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeSnapshot(t, dir, "base.json", baselineBenchmarks())
	cur := writeSnapshot(t, dir, "cur.json", []bench.PerfBenchmark{
		{Name: "partition_medium_2cluster", NsPerOp: 1400, AllocsPerOp: 50}, // +40% > 30%
		{Name: "partition_large_4cluster", NsPerOp: 5000, AllocsPerOp: 200},
		{Name: "evaluate_steady_state", NsPerOp: 2500, AllocsPerOp: 0},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "ns/op regressed") {
		t.Fatalf("missing regression message: %s", stderr.String())
	}

	// The documented override knobs report but do not fail.
	if code := run([]string{"-baseline", base, "-current", cur, "-accept"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-accept: exit %d, want 0", code)
	}
	t.Setenv("BENCHDIFF_ACCEPT", "1")
	if code := run([]string{"-baseline", base, "-current", cur}, &stdout, &stderr); code != 0 {
		t.Fatalf("BENCHDIFF_ACCEPT=1: exit %d, want 0", code)
	}
}

func TestBenchdiffAllocRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeSnapshot(t, dir, "base.json", baselineBenchmarks())
	cur := writeSnapshot(t, dir, "cur.json", []bench.PerfBenchmark{
		{Name: "partition_medium_2cluster", NsPerOp: 1000, AllocsPerOp: 500}, // non-evaluator: allocs not gated
		{Name: "partition_large_4cluster", NsPerOp: 5000, AllocsPerOp: 200},
		{Name: "evaluate_steady_state", NsPerOp: 2500, AllocsPerOp: 1}, // contract broken
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "allocs/op increased 0 → 1") {
		t.Fatalf("missing alloc message: %s", stderr.String())
	}
	if strings.Contains(stderr.String(), "partition_medium_2cluster: allocs") {
		t.Fatalf("non-evaluator allocs wrongly gated: %s", stderr.String())
	}
}

func TestBenchdiffMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	base := writeSnapshot(t, dir, "base.json", baselineBenchmarks())
	cur := writeSnapshot(t, dir, "cur.json", []bench.PerfBenchmark{
		{Name: "partition_medium_2cluster", NsPerOp: 1000, AllocsPerOp: 50},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "missing from current") {
		t.Fatalf("missing-benchmark violation absent: %s", stderr.String())
	}
}

func TestBenchdiffBadInvocation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{}, &stdout, &stderr); code != 2 {
		t.Fatalf("no -current: exit %d, want 2", code)
	}
	if code := run([]string{"-baseline", "/nonexistent.json", "-current", "/nonexistent2.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing files: exit %d, want 2", code)
	}
}
