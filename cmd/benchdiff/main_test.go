package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func writeSnapshot(t *testing.T, dir, name string, benchmarks []bench.PerfBenchmark) string {
	t.Helper()
	snap := bench.PerfSnapshot{GoVersion: "go-test", Benchmarks: benchmarks, LoopsScheduled: 81, SchedulesPerSec: 100}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baselineBenchmarks() []bench.PerfBenchmark {
	return []bench.PerfBenchmark{
		{Name: "partition_medium_2cluster", Iterations: 100, NsPerOp: 1000, AllocsPerOp: 50},
		{Name: "partition_large_4cluster", Iterations: 100, NsPerOp: 5000, AllocsPerOp: 200},
		{Name: "evaluate_steady_state", Iterations: 1000, NsPerOp: 2500, AllocsPerOp: 0},
		{Name: "journal_append", Iterations: 1000, NsPerOp: 800, AllocsPerOp: 10},
	}
}

func TestBenchdiffPass(t *testing.T) {
	dir := t.TempDir()
	base := writeSnapshot(t, dir, "base.json", baselineBenchmarks())
	cur := writeSnapshot(t, dir, "cur.json", []bench.PerfBenchmark{
		{Name: "partition_medium_2cluster", NsPerOp: 1250, AllocsPerOp: 50}, // +25% < 30%
		{Name: "partition_large_4cluster", NsPerOp: 4000, AllocsPerOp: 190}, // faster, fewer allocs
		{Name: "evaluate_steady_state", NsPerOp: 2400, AllocsPerOp: 0},      // allocation-free held
		{Name: "journal_append", NsPerOp: 700, AllocsPerOp: 12},             // not alloc-gated
		{Name: "brand_new_benchmark", NsPerOp: 123456, AllocsPerOp: 999},    // new entries never gate
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "PASS") {
		t.Fatalf("no PASS in output: %s", stdout.String())
	}
}

func TestBenchdiffNsPerOpRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeSnapshot(t, dir, "base.json", baselineBenchmarks())
	cur := writeSnapshot(t, dir, "cur.json", []bench.PerfBenchmark{
		{Name: "partition_medium_2cluster", NsPerOp: 1400, AllocsPerOp: 50}, // +40% > 30%
		{Name: "partition_large_4cluster", NsPerOp: 5000, AllocsPerOp: 200},
		{Name: "evaluate_steady_state", NsPerOp: 2500, AllocsPerOp: 0},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "ns/op regressed") {
		t.Fatalf("missing regression message: %s", stderr.String())
	}

	// The documented override knobs report but do not fail.
	if code := run([]string{"-baseline", base, "-current", cur, "-accept"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-accept: exit %d, want 0", code)
	}
	t.Setenv("BENCHDIFF_ACCEPT", "1")
	if code := run([]string{"-baseline", base, "-current", cur}, &stdout, &stderr); code != 0 {
		t.Fatalf("BENCHDIFF_ACCEPT=1: exit %d, want 0", code)
	}
}

func TestBenchdiffAllocRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeSnapshot(t, dir, "base.json", baselineBenchmarks())
	cur := writeSnapshot(t, dir, "cur.json", []bench.PerfBenchmark{
		{Name: "partition_medium_2cluster", NsPerOp: 1000, AllocsPerOp: 500}, // arena-backed: alloc growth gated
		{Name: "partition_large_4cluster", NsPerOp: 5000, AllocsPerOp: 200},
		{Name: "evaluate_steady_state", NsPerOp: 2500, AllocsPerOp: 1}, // contract broken
		{Name: "journal_append", NsPerOp: 800, AllocsPerOp: 15},        // not gated: allocs may drift
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "allocs/op increased 0 → 1") {
		t.Fatalf("missing alloc message: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "partition_medium_2cluster: allocs") {
		t.Fatalf("arena-backed alloc growth not gated: %s", stderr.String())
	}
	if strings.Contains(stderr.String(), "journal_append: allocs") {
		t.Fatalf("ungated benchmark's allocs wrongly gated: %s", stderr.String())
	}
}

func writeServerSnapshot(t *testing.T, dir, name string, snap bench.ServerPerfSnapshot) string {
	t.Helper()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchdiffServerGate(t *testing.T) {
	dir := t.TempDir()
	good := writeServerSnapshot(t, dir, "good.json", bench.ServerPerfSnapshot{
		Requests: 400, RequestsPerSec: 9000, BatchLoops: 56,
		SingletonWarmPerSec: 10000, BatchLoopsPerSec: 80000, BatchSpeedup: 8.0,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-server-current", good}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "PASS") {
		t.Fatalf("no PASS in output: %s", stdout.String())
	}

	slow := writeServerSnapshot(t, dir, "slow.json", bench.ServerPerfSnapshot{
		Requests: 400, RequestsPerSec: 9000, BatchLoops: 56,
		SingletonWarmPerSec: 10000, BatchLoopsPerSec: 30000, BatchSpeedup: 3.0,
	})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-server-current", slow}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "below the 5.00x floor") {
		t.Fatalf("missing speedup violation: %s", stderr.String())
	}
	// Floors are tunable and the accept override applies here too.
	if code := run([]string{"-server-current", slow, "-min-batch-speedup", "2.5"}, &stdout, &stderr); code != 0 {
		t.Fatalf("relaxed floor: exit %d, want 0; stderr: %s", code, stderr.String())
	}
	if code := run([]string{"-server-current", slow, "-accept"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-accept: exit %d, want 0", code)
	}

	// A snapshot minted before the warm-batch phase existed must not pass
	// silently.
	stale := writeServerSnapshot(t, dir, "stale.json", bench.ServerPerfSnapshot{
		Requests: 400, RequestsPerSec: 9000,
	})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-server-current", stale}, &stdout, &stderr); code != 1 {
		t.Fatalf("stale snapshot: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "no warm batch measurement") {
		t.Fatalf("missing staleness violation: %s", stderr.String())
	}
}

func TestBenchdiffMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	base := writeSnapshot(t, dir, "base.json", baselineBenchmarks())
	cur := writeSnapshot(t, dir, "cur.json", []bench.PerfBenchmark{
		{Name: "partition_medium_2cluster", NsPerOp: 1000, AllocsPerOp: 50},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "missing from current") {
		t.Fatalf("missing-benchmark violation absent: %s", stderr.String())
	}
}

func TestBenchdiffBadInvocation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{}, &stdout, &stderr); code != 2 {
		t.Fatalf("no -current: exit %d, want 2", code)
	}
	if code := run([]string{"-baseline", "/nonexistent.json", "-current", "/nonexistent2.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing files: exit %d, want 2", code)
	}
}
