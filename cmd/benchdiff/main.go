// Command benchdiff is CI's benchmark-regression gate: it compares a
// freshly generated BENCH_partition.json perf snapshot against the
// committed baseline and fails (exit 1) when
//
//   - any benchmark's ns/op regresses by more than -max-regress (default
//     30%), or
//   - allocs/op increases for any steady-state evaluator (benchmarks whose
//     name contains "evaluate" — their allocation-free contract is exact,
//     not statistical) or for any arena-backed hot path (names starting
//     with "partition_", "portfolio_" or "schedule_batch_" — their pooled
//     scratch makes allocs/op deterministic, so growth is a leak), or
//   - a baseline benchmark is missing from the fresh snapshot.
//
// Faster-than-baseline results and new benchmarks never fail the gate.
//
// With -server-current it instead gates a BENCH_server.json throughput
// snapshot: the cache-warm batch speedup (batch loops/sec over verbatim
// singleton loops/sec) must stay at or above -min-batch-speedup (default
// 5.0), and the run must have completed without errors. Absolute req/s is
// machine-dependent and never gated.
//
// Override knob for intentional changes: run with -accept (or set
// BENCHDIFF_ACCEPT=1 in the environment; CI does this when the commit
// message contains "[bench-skip]"), which prints the comparison but always
// exits 0. Then commit the fresh snapshot as the new baseline.
//
// Usage:
//
//	benchdiff -baseline BENCH_partition.json -current fresh.json [-max-regress 0.30] [-accept]
//	benchdiff -server-current BENCH_server.json [-min-batch-speedup 5.0] [-accept]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_partition.json", "committed baseline snapshot")
	currentPath := fs.String("current", "", "freshly generated snapshot to gate")
	maxRegress := fs.Float64("max-regress", 0.30, "maximum tolerated ns/op regression (0.30 = +30%)")
	serverCurrent := fs.String("server-current", "", "gate a BENCH_server.json throughput snapshot instead of a perf snapshot")
	minBatchSpeedup := fs.Float64("min-batch-speedup", 5.0, "minimum cache-warm batch-over-singleton loops/sec ratio (server mode)")
	accept := fs.Bool("accept", false, "report but never fail (override for intentional changes)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if os.Getenv("BENCHDIFF_ACCEPT") == "1" {
		*accept = true
	}
	if *serverCurrent != "" {
		return runServerGate(*serverCurrent, *minBatchSpeedup, *accept, stdout, stderr)
	}
	if *currentPath == "" {
		fmt.Fprintln(stderr, "benchdiff: -current is required")
		return 2
	}

	baseline, err := readSnapshot(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	current, err := readSnapshot(*currentPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	violations := compare(baseline, current, *maxRegress, stdout)
	if len(violations) == 0 {
		fmt.Fprintln(stdout, "benchdiff: PASS")
		return 0
	}
	for _, v := range violations {
		fmt.Fprintf(stderr, "benchdiff: FAIL: %s\n", v)
	}
	if *accept {
		fmt.Fprintln(stdout, "benchdiff: ACCEPTED despite failures (override active); commit the fresh snapshot as the new baseline")
		return 0
	}
	fmt.Fprintln(stderr, `benchdiff: intentional change? re-run with -accept (CI: put "[bench-skip]" in the commit message) and commit the fresh snapshot as the new baseline`)
	return 1
}

func readSnapshot(path string) (*bench.PerfSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap bench.PerfSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: snapshot has no benchmarks", path)
	}
	return &snap, nil
}

// steadyStateEvaluator reports whether the benchmark is one of the
// steady-state evaluators whose allocation-free contract is gated exactly.
func steadyStateEvaluator(name string) bool {
	return strings.Contains(strings.ToLower(name), "evaluate")
}

// allocGated reports whether the benchmark's allocs/op must never grow:
// the steady-state evaluators (exact zero contract) and the arena-backed
// hot paths, whose warmed pooled scratch makes allocation counts
// deterministic — any increase is a retained-buffer regression, not noise.
func allocGated(name string) bool {
	if steadyStateEvaluator(name) {
		return true
	}
	lower := strings.ToLower(name)
	for _, prefix := range []string{"partition_", "portfolio_", "schedule_batch_"} {
		if strings.HasPrefix(lower, prefix) {
			return true
		}
	}
	return false
}

// runServerGate gates a gpserved throughput snapshot (BENCH_server.json):
// the cache-warm batch speedup is a hardware-independent ratio, so unlike
// req/s it can be gated on any CI machine.
func runServerGate(path string, minSpeedup float64, accept bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	var snap bench.ServerPerfSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		fmt.Fprintf(stderr, "benchdiff: %s: %v\n", path, err)
		return 2
	}
	fmt.Fprintf(stdout, "server snapshot %s:\n", path)
	fmt.Fprintf(stdout, "  %-24s %10.0f req/s (%.0f%% cache hits, p99 %.0fµs) [info only]\n",
		"sustained mix", snap.RequestsPerSec, snap.CacheHitRate*100, snap.P99Micros)
	fmt.Fprintf(stdout, "  %-24s %10.0f loops/s\n", "warm singleton", snap.SingletonWarmPerSec)
	fmt.Fprintf(stdout, "  %-24s %10.0f loops/s (%d loops per pass)\n", "warm batch", snap.BatchLoopsPerSec, snap.BatchLoops)
	fmt.Fprintf(stdout, "  %-24s %10.2fx (floor %.2fx)\n", "batch speedup", snap.BatchSpeedup, minSpeedup)

	var violations []string
	if snap.Errors > 0 {
		violations = append(violations, fmt.Sprintf("measurement saw %d errored requests", snap.Errors))
	}
	if snap.BatchLoops == 0 {
		violations = append(violations, "snapshot has no warm batch measurement (stale gpserved -bench-json?)")
	} else if snap.BatchSpeedup < minSpeedup {
		violations = append(violations, fmt.Sprintf("batch speedup %.2fx is below the %.2fx floor", snap.BatchSpeedup, minSpeedup))
	}
	if len(violations) == 0 {
		fmt.Fprintln(stdout, "benchdiff: PASS")
		return 0
	}
	for _, v := range violations {
		fmt.Fprintf(stderr, "benchdiff: FAIL: %s\n", v)
	}
	if accept {
		fmt.Fprintln(stdout, "benchdiff: ACCEPTED despite failures (override active)")
		return 0
	}
	return 1
}

// compare prints a comparison table and returns the gate violations.
func compare(baseline, current *bench.PerfSnapshot, maxRegress float64, w io.Writer) []string {
	cur := make(map[string]bench.PerfBenchmark, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}

	var violations []string
	fmt.Fprintf(w, "%-28s %14s %14s %9s %12s\n", "benchmark", "base ns/op", "cur ns/op", "delta", "allocs b→c")
	for _, base := range baseline.Benchmarks {
		c, ok := cur[base.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: present in baseline but missing from current snapshot", base.Name))
			continue
		}
		delta := 0.0
		if base.NsPerOp > 0 {
			delta = float64(c.NsPerOp-base.NsPerOp) / float64(base.NsPerOp)
		}
		fmt.Fprintf(w, "%-28s %14d %14d %8.1f%% %6d→%d\n",
			base.Name, base.NsPerOp, c.NsPerOp, delta*100, base.AllocsPerOp, c.AllocsPerOp)
		if delta > maxRegress {
			violations = append(violations, fmt.Sprintf("%s: ns/op regressed %.1f%% (%d → %d, limit %.0f%%)",
				base.Name, delta*100, base.NsPerOp, c.NsPerOp, maxRegress*100))
		}
		if allocGated(base.Name) && c.AllocsPerOp > base.AllocsPerOp {
			violations = append(violations, fmt.Sprintf("%s: allocs/op increased %d → %d (steady-state and arena-backed paths must not allocate more)",
				base.Name, base.AllocsPerOp, c.AllocsPerOp))
		}
	}
	if baseline.SchedulesPerSec > 0 && current.SchedulesPerSec > 0 {
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %8.1f%%\n", "schedules/sec (info only)",
			baseline.SchedulesPerSec, current.SchedulesPerSec,
			(current.SchedulesPerSec/baseline.SchedulesPerSec-1)*100)
	}
	return violations
}
