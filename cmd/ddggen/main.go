// Command ddggen emits the synthetic SPECfp95 stand-in corpus (or a single
// benchmark) in the ddgio text format, for use with cmd/gpsched or external
// tools.
//
// Usage:
//
//	ddggen [-bench name] [-list]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/ddgio"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "emit only this benchmark (default: all)")
	list := flag.Bool("list", false, "list benchmark names and stats instead of emitting loops")
	flag.Parse()

	corpus := gpsched.SPECfp95Corpus()
	if *list {
		fmt.Printf("%-10s %6s %6s %6s %6s %6s\n", "benchmark", "loops", "ops", "mem", "fp", "recs")
		for _, b := range corpus {
			s := workload.Summarize(b)
			fmt.Printf("%-10s %6d %6d %6d %6d %6d\n", b.Name, s.Loops, s.Ops, s.MemOps, s.FPOps, s.Recurrences)
		}
		return
	}
	for _, b := range corpus {
		if *bench != "" && b.Name != *bench {
			continue
		}
		for _, l := range b.Loops {
			if err := ddgio.Write(os.Stdout, l.G); err != nil {
				fmt.Fprintf(os.Stderr, "ddggen: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
