// Command ddggen emits the synthetic corpora (SPECfp95 stand-in or the
// DSP/MediaBench-style family) in the ddgio text format, for use with
// cmd/gpsched or external tools.
//
// Usage:
//
//	ddggen [-corpus specfp95|dsp] [-bench name] [-list]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/ddgio"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ddggen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "", "emit only this benchmark (default: all)")
	corpusName := fs.String("corpus", "specfp95", "corpus family: specfp95 or dsp")
	list := fs.Bool("list", false, "list benchmark names and stats instead of emitting loops")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var corpus []*workload.Benchmark
	switch *corpusName {
	case "specfp95":
		corpus = gpsched.SPECfp95Corpus()
	case "dsp":
		corpus = gpsched.DSPCorpus()
	default:
		fmt.Fprintf(stderr, "ddggen: unknown corpus %q (want specfp95 or dsp)\n", *corpusName)
		return 2
	}
	if *list {
		fmt.Fprintf(stdout, "%-10s %6s %6s %6s %6s %6s\n", "benchmark", "loops", "ops", "mem", "fp", "recs")
		for _, b := range corpus {
			s := workload.Summarize(b)
			fmt.Fprintf(stdout, "%-10s %6d %6d %6d %6d %6d\n", b.Name, s.Loops, s.Ops, s.MemOps, s.FPOps, s.Recurrences)
		}
		return 0
	}
	emitted := false
	for _, b := range corpus {
		if *bench != "" && b.Name != *bench {
			continue
		}
		emitted = true
		for _, l := range b.Loops {
			if err := ddgio.Write(stdout, l.G); err != nil {
				fmt.Fprintf(stderr, "ddggen: %v\n", err)
				return 1
			}
		}
	}
	if *bench != "" && !emitted {
		fmt.Fprintf(stderr, "ddggen: no benchmark %q in corpus %s\n", *bench, *corpusName)
		return 1
	}
	return 0
}
