package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ddgio"
)

func TestListOutputShape(t *testing.T) {
	for corpus, want := range map[string]string{"specfp95": "tomcatv", "dsp": "adpcm"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-corpus", corpus, "-list"}, &out, &errb); code != 0 {
			t.Fatalf("-corpus %s -list exited %d: %s", corpus, code, errb.String())
		}
		text := out.String()
		if !strings.HasPrefix(text, "benchmark") {
			t.Errorf("-corpus %s -list missing header:\n%s", corpus, text)
		}
		if !strings.Contains(text, want) {
			t.Errorf("-corpus %s -list missing %q:\n%s", corpus, want, text)
		}
	}
}

func TestEmittedLoopsParseBack(t *testing.T) {
	for _, corpus := range []string{"specfp95", "dsp"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-corpus", corpus}, &out, &errb); code != 0 {
			t.Fatalf("-corpus %s exited %d: %s", corpus, code, errb.String())
		}
		loops, err := ddgio.Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("-corpus %s output does not re-parse: %v", corpus, err)
		}
		if len(loops) == 0 {
			t.Fatalf("-corpus %s emitted no loops", corpus)
		}
	}
}

func TestBenchFilter(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bench", "tomcatv"}, &out, &errb); code != 0 {
		t.Fatalf("exited %d: %s", code, errb.String())
	}
	loops, err := ddgio.Read(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range loops {
		if !strings.HasPrefix(g.Name, "tomcatv/") {
			t.Errorf("loop %q leaked past the -bench filter", g.Name)
		}
	}
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		args []string
		code int
	}{
		{[]string{"-corpus", "bogus"}, 2},
		{[]string{"-nosuchflag"}, 2},
		{[]string{"-bench", "nonexistent"}, 1},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if code := run(tc.args, &out, &errb); code != tc.code {
			t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.code, errb.String())
		}
	}
}
