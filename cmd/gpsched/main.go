// Command gpsched schedules loops from a ddgio text file (or stdin) on a
// chosen clustered VLIW configuration and prints the resulting modulo
// schedules. The machine is either one of the paper's homogeneous grid
// points (-clusters/-regs/-nbus/-latbus) or an arbitrary — possibly
// heterogeneous — description file (-machine). Every schedule is checked
// with the schedule.Verify oracle before printing.
//
// Usage:
//
//	gpsched [-clusters N] [-regs R] [-nbus B] [-latbus L] [-machine file]
//	        [-alg GP|Fixed|URACAM] [-v] [file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/machine"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gpsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	clusters := fs.Int("clusters", 2, "number of clusters (1 = unified)")
	regs := fs.Int("regs", 64, "total registers")
	nbus := fs.Int("nbus", 1, "number of inter-cluster buses")
	latbus := fs.Int("latbus", 1, "bus latency in cycles")
	machineFile := fs.String("machine", "", "machine-description file (overrides -clusters/-regs/-nbus/-latbus)")
	alg := fs.String("alg", "GP", "algorithm: GP, Fixed or URACAM")
	verbose := fs.Bool("v", false, "print the full placement of every operation")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var algorithm core.Algorithm
	switch strings.ToLower(*alg) {
	case "gp":
		algorithm = gpsched.GP
	case "fixed":
		algorithm = gpsched.FixedPartition
	case "uracam":
		algorithm = gpsched.URACAM
	default:
		fmt.Fprintf(stderr, "gpsched: unknown algorithm %q\n", *alg)
		return 2
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "gpsched: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	loops, err := gpsched.ReadLoops(in)
	if err != nil {
		fmt.Fprintf(stderr, "gpsched: %v\n", err)
		return 1
	}

	var m *gpsched.Machine
	switch {
	case *machineFile != "":
		f, err := os.Open(*machineFile)
		if err != nil {
			fmt.Fprintf(stderr, "gpsched: %v\n", err)
			return 1
		}
		m, err = machine.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "gpsched: %s: %v\n", *machineFile, err)
			return 1
		}
	case *clusters == 1:
		m = gpsched.Unified(*regs)
	default:
		m = gpsched.Clustered(*clusters, *regs, *nbus, *latbus)
	}
	fmt.Fprintf(stdout, "machine: %s   algorithm: %v\n\n", m, algorithm)

	for _, g := range loops {
		res, err := gpsched.Run(g, m, &gpsched.Options{Algorithm: algorithm})
		if err != nil {
			fmt.Fprintf(stderr, "gpsched: %s: %v\n", g.Name, err)
			return 1
		}
		s := res.Schedule
		if err := gpsched.Verify(g, m, s); err != nil {
			fmt.Fprintf(stderr, "gpsched: %s: oracle: %v\n", g.Name, err)
			return 1
		}
		kind := "modulo"
		if res.ListFallback {
			kind = "list (fallback)"
		}
		fmt.Fprintf(stdout, "%-24s ops=%-4d MII=%-3d II=%-3d SL=%-4d stages=%d  %s\n",
			g.Name, g.N(), res.MII, s.II, s.SL, s.Stages(), kind)
		fmt.Fprintf(stdout, "%-24s comms=%d spills=%d memroutes=%d maxlive=%v IPC=%.3f cycles=%d\n",
			"", len(s.Comms), s.Spills, s.MemRoutes, s.MaxLive, res.IPC(g), s.Cycles(g.Niter))
		if *verbose {
			for v, n := range g.Nodes {
				fmt.Fprintf(stdout, "  op %-3d %-8s cluster %d cycle %-4d (slot %d)\n",
					v, n.Op, s.Cluster[v], s.Time[v], s.Time[v]%s.II)
			}
			for _, c := range s.Comms {
				if c.Dest < 0 {
					fmt.Fprintf(stdout, "  bus transfer of op %d at cycle %d\n", c.Producer, c.Start)
				} else {
					fmt.Fprintf(stdout, "  link transfer of op %d to cluster %d at cycle %d\n", c.Producer, c.Dest, c.Start)
				}
			}
		}
		fmt.Fprintln(stdout)
	}
	return 0
}
