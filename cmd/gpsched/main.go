// Command gpsched schedules loops from a ddgio text file (or stdin) on a
// chosen clustered VLIW configuration and prints the resulting modulo
// schedules.
//
// Usage:
//
//	gpsched [-clusters N] [-regs R] [-nbus B] [-latbus L] [-alg GP|Fixed|URACAM] [file]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/core"
)

func main() {
	clusters := flag.Int("clusters", 2, "number of clusters (1 = unified)")
	regs := flag.Int("regs", 64, "total registers")
	nbus := flag.Int("nbus", 1, "number of inter-cluster buses")
	latbus := flag.Int("latbus", 1, "bus latency in cycles")
	alg := flag.String("alg", "GP", "algorithm: GP, Fixed or URACAM")
	verbose := flag.Bool("v", false, "print the full placement of every operation")
	flag.Parse()

	var algorithm core.Algorithm
	switch strings.ToLower(*alg) {
	case "gp":
		algorithm = gpsched.GP
	case "fixed":
		algorithm = gpsched.FixedPartition
	case "uracam":
		algorithm = gpsched.URACAM
	default:
		fmt.Fprintf(os.Stderr, "gpsched: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsched: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	loops, err := gpsched.ReadLoops(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsched: %v\n", err)
		os.Exit(1)
	}

	var m *gpsched.Machine
	if *clusters == 1 {
		m = gpsched.Unified(*regs)
	} else {
		m = gpsched.Clustered(*clusters, *regs, *nbus, *latbus)
	}
	fmt.Printf("machine: %s   algorithm: %v\n\n", m, algorithm)

	for _, g := range loops {
		res, err := gpsched.Run(g, m, &gpsched.Options{Algorithm: algorithm})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsched: %s: %v\n", g.Name, err)
			os.Exit(1)
		}
		s := res.Schedule
		kind := "modulo"
		if res.ListFallback {
			kind = "list (fallback)"
		}
		fmt.Printf("%-24s ops=%-4d MII=%-3d II=%-3d SL=%-4d stages=%d  %s\n",
			g.Name, g.N(), res.MII, s.II, s.SL, s.Stages(), kind)
		fmt.Printf("%-24s comms=%d spills=%d memroutes=%d maxlive=%v IPC=%.3f cycles=%d\n",
			"", len(s.Comms), s.Spills, s.MemRoutes, s.MaxLive, res.IPC(g), s.Cycles(g.Niter))
		if *verbose {
			for v, n := range g.Nodes {
				fmt.Printf("  op %-3d %-8s cluster %d cycle %-4d (slot %d)\n",
					v, n.Op, s.Cluster[v], s.Time[v], s.Time[v]%s.II)
			}
			for _, c := range s.Comms {
				fmt.Printf("  bus transfer of op %d at cycle %d\n", c.Producer, c.Start)
			}
		}
		fmt.Println()
	}
}
